(** Repair-planner tests: the restrict-and-count primitives it is
    built on, determinism of witness enumeration, minimality of the
    exact planner on the tractable FD classes (cross-checked against
    the brute-force reference), greedy quality bounds, and the
    repair-then-validate property — a complete plan, applied, leaves
    zero violations by the naive ground truth. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Sat = Fcv_bdd.Sat
module V = Core.Violations
module Rp = Fcv_repair.Repair

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fol = Core.Fol_parser.of_string

(* -- the counting primitives ------------------------------------------------ *)

(* count_over replaces dividing Sat.count by 2^(unused vars): over any
   level superset of the support, the two agree. *)
let test_count_over () =
  let m = M.create ~nvars:8 () in
  let f = O.band m (M.ithvar m 2) (M.ithvar m 5) in
  let per_levels levels = Sat.count_over m f ~levels in
  check "support only" true (per_levels [| 2; 5 |] = 1.);
  check "superset pads by 2^extra" true (per_levels [| 0; 2; 5; 7 |] = 4.);
  check "full space matches count" true
    (per_levels [| 0; 1; 2; 3; 4; 5; 6; 7 |] = Sat.count m f);
  check "terminals" true
    (Sat.count_over m M.one ~levels:[| 1; 3 |] = 4.
    && Sat.count_over m M.zero ~levels:[| 1; 3 |] = 0.)

let test_count_restrict () =
  let m = M.create ~nvars:8 () in
  let f = O.band m (M.ithvar m 2) (M.ithvar m 5) in
  (* cofactor on x2=1: x5 pinned by f, x0/x7 free *)
  check "positive cofactor" true
    (Sat.count_restrict m f ~fix:[ (2, true) ] ~levels:[| 0; 5; 7 |] = 4.);
  check "negative cofactor is empty" true
    (Sat.count_restrict m f ~fix:[ (2, false) ] ~levels:[| 0; 5; 7 |] = 0.);
  check "fixing the whole support" true
    (Sat.count_restrict m f ~fix:[ (2, true); (5, true) ] ~levels:[| 0 |] = 2.);
  check "conflicting fixes rejected" true
    (match Sat.count_restrict m f ~fix:[ (2, true); (2, false) ] ~levels:[| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- deterministic enumeration ---------------------------------------------- *)

let test_enumerate_deterministic () =
  let db = Gen.random_db 11 in
  let index = Core.Index.create db in
  let c = fol "forall x1_1 . t(x1_1) -> (exists x2_1 . r(x1_1, x2_1))" in
  Core.Checker.ensure_indices index [ c ];
  match V.enumerate index c with
  | None -> Alcotest.fail "expected witnesses for a universal constraint"
  | Some ws ->
    check "two enumerations agree" true (V.enumerate index c = Some ws);
    check "witnesses sorted by decoded value" true (List.sort compare ws = ws);
    (match V.count index c with
    | Some n -> check_int "count matches enumeration" (List.length ws) (int_of_float n)
    | None -> Alcotest.fail "count disagreed about witnessability")

(* -- exact vs brute on tractable FD instances ------------------------------- *)

(* products(product_id, category, brand) with the FD brand ->
   category; random small instances, distinct rows. *)
let products_db seed rows =
  let rng = Fcv_util.Rng.create seed in
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "product_id" rows);
  R.Database.add_domain db (R.Dict.of_int_range "category" 3);
  R.Database.add_domain db (R.Dict.of_int_range "brand" 3);
  let t =
    R.Database.create_table db ~name:"products"
      ~attrs:[ ("product_id", "product_id"); ("category", "category"); ("brand", "brand") ]
  in
  for p = 0 to rows - 1 do
    R.Table.insert_coded t [| p; Fcv_util.Rng.int rng 3; Fcv_util.Rng.int rng 3 |]
  done;
  db

let brand_fd = "forall b, c1, c2 . products(_, c1, b) and products(_, c2, b) -> c1 = c2"

(* The dichotomy's tractable side, checked against the exhaustive
   minimum: on every instance the exact plan has brute's cardinality,
   is complete, and — applied — validates clean under the naive
   evaluator. *)
let test_exact_matches_brute () =
  let fd = fol brand_fd in
  for seed = 0 to 11 do
    let db = products_db seed (6 + (seed mod 7)) in
    let exact = Rp.plan ~strategy:Rp.Exact db [ fd ] in
    let brute = Rp.plan ~strategy:Rp.Brute db [ fd ] in
    check
      (Printf.sprintf "seed %d: exact is minimum (%d vs brute %d)" seed
         (List.length exact.Rp.deletions)
         (List.length brute.Rp.deletions))
      true
      (List.length exact.Rp.deletions = List.length brute.Rp.deletions);
    check (Printf.sprintf "seed %d: exact complete" seed) true exact.Rp.complete;
    let scratch = Rp.clone_db db in
    check_int
      (Printf.sprintf "seed %d: every planned deletion applies" seed)
      (List.length exact.Rp.deletions)
      (Rp.apply_to exact scratch);
    check
      (Printf.sprintf "seed %d: applied exact plan validates clean" seed)
      true
      (Core.Naive_eval.holds scratch fd)
  done

let test_greedy_quality () =
  let fd = fol brand_fd in
  for seed = 0 to 11 do
    let db = products_db seed (6 + (seed mod 7)) in
    let greedy = Rp.plan ~strategy:Rp.Greedy db [ fd ] in
    let brute = Rp.plan ~strategy:Rp.Brute db [ fd ] in
    check (Printf.sprintf "seed %d: greedy complete" seed) true greedy.Rp.complete;
    check
      (Printf.sprintf "seed %d: greedy (%d) within 2x of optimal (%d)" seed
         (List.length greedy.Rp.deletions)
         (List.length brute.Rp.deletions))
      true
      (List.length greedy.Rp.deletions <= 2 * List.length brute.Rp.deletions)
  done

(* lhs-chain FD sets are still tractable: {brand} and
   {brand, category} chain under inclusion. *)
let test_exact_lhs_chain () =
  let fds =
    [
      fol brand_fd;
      fol
        "forall b, c, p1, p2 . products(p1, c, b) and products(p2, c, b) -> p1 = p2";
    ]
  in
  for seed = 0 to 5 do
    let db = products_db seed 7 in
    let exact = Rp.plan ~strategy:Rp.Exact db fds in
    let brute = Rp.plan ~strategy:Rp.Brute db fds in
    check
      (Printf.sprintf "seed %d: chain exact is minimum" seed)
      true
      (List.length exact.Rp.deletions = List.length brute.Rp.deletions);
    let scratch = Rp.clone_db db in
    ignore (Rp.apply_to exact scratch);
    check
      (Printf.sprintf "seed %d: chain plan validates clean" seed)
      true
      (List.for_all (fun f -> Core.Naive_eval.holds scratch f) fds)
  done

let test_exact_refuses_intractable () =
  let db = products_db 3 8 in
  let non_chain =
    [
      fol brand_fd;
      (* lhs {category} does not chain with lhs {brand} *)
      fol "forall c, b1, b2 . products(_, c, b1) and products(_, c, b2) -> b1 = b2";
    ]
  in
  check "non-chain FD set refused" true
    (match Rp.plan ~strategy:Rp.Exact db non_chain with
    | exception Rp.Not_tractable _ -> true
    | _ -> false);
  let db2 = Gen.random_db 5 in
  check "non-FD constraint refused" true
    (match
       Rp.plan ~strategy:Rp.Exact db2
         [ fol "forall x1_1 . t(x1_1) -> (exists x2_1 . r(x1_1, x2_1))" ]
     with
    | exception Rp.Not_tractable _ -> true
    | _ -> false)

(* -- repair then validate --------------------------------------------------- *)

(* Deletion-repairable constraint suite over the shared random schema:
   two referential rules and an FD.  Every violation has deletable
   positive support, so greedy must terminate complete; applying the
   plan must leave zero violations by the naive ground truth; and
   planning must never touch the input database. *)
let repairable_suite =
  List.map fol
    [
      "forall x1_1, x2_1 . r(x1_1, x2_1) -> (exists x3_1 . s(x2_1, x3_1))";
      "forall x1_1 . t(x1_1) -> (exists x2_1 . r(x1_1, x2_1))";
      "forall x1_1, x2_1, x2_2 . r(x1_1, x2_1) and r(x1_1, x2_2) -> x2_1 = x2_2";
    ]

let cardinalities db =
  List.map
    (fun n -> (n, R.Table.cardinality (R.Database.table db n)))
    (R.Database.table_names db)

let prop_repair_then_validate =
  QCheck.Test.make ~count:60 ~name:"greedy repair then validate finds zero violations"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let db = Gen.random_db seed in
      let before = cardinalities db in
      let plan = Rp.plan ~strategy:Rp.Greedy db repairable_suite in
      let scratch = Rp.clone_db db in
      ignore (Rp.apply_to plan scratch);
      plan.Rp.complete
      && cardinalities db = before
      && List.for_all (fun f -> Core.Naive_eval.holds scratch f) repairable_suite)

(* max_deletions is a hard cap and a capped plan owns up to it. *)
let test_budget () =
  let fd = fol brand_fd in
  let db = products_db 1 10 in
  let full = Rp.plan ~strategy:Rp.Greedy db [ fd ] in
  if List.length full.Rp.deletions >= 2 then begin
    let capped = Rp.plan ~strategy:Rp.Greedy ~max_deletions:1 db [ fd ] in
    check_int "cap respected" 1 (List.length capped.Rp.deletions);
    check "capped plan is incomplete" false capped.Rp.complete
  end

(* -- wire format ------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let module P = Fcv_server.Protocol in
  let reqs =
    [
      P.Repair { strategy = "greedy"; max_deletions = None; apply = false };
      P.Repair { strategy = "exact"; max_deletions = Some 4; apply = true };
    ]
  in
  List.iter
    (fun req ->
      match P.parse_request (P.request_to_line req) with
      | Ok (None, parsed) -> check "round-trips" true (parsed = req)
      | _ -> Alcotest.fail "repair request did not round-trip")
    reqs;
  check "repair is unlogged" false
    (P.logged (P.Repair { strategy = "greedy"; max_deletions = None; apply = true }));
  check "defaults: greedy, plan-only" true
    (match P.parse_request {|{"op":"repair"}|} with
    | Ok (None, P.Repair { strategy = "greedy"; max_deletions = None; apply = false }) ->
      true
    | _ -> false);
  check "unknown strategy rejected" true
    (match P.parse_request {|{"op":"repair","strategy":"oracle"}|} with
    | Error (P.Bad_request, _) -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "count_over" `Quick test_count_over;
    Alcotest.test_case "count_restrict" `Quick test_count_restrict;
    Alcotest.test_case "enumerate is deterministic and sorted" `Quick
      test_enumerate_deterministic;
    Alcotest.test_case "exact matches brute-force minimum" `Quick test_exact_matches_brute;
    Alcotest.test_case "greedy within 2x of optimal" `Quick test_greedy_quality;
    Alcotest.test_case "exact handles lhs-chain FD sets" `Quick test_exact_lhs_chain;
    Alcotest.test_case "exact refuses the NP-hard side" `Quick test_exact_refuses_intractable;
    Gen.qcheck_case prop_repair_then_validate;
    Alcotest.test_case "deletion budget" `Quick test_budget;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
  ]

let () = Registry.register "repair" suite
