(** Odds-and-ends coverage: dot export, CSV and lexer edge cases,
    pretty-printers, violation helpers. *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module R = Fcv_relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_dot_export () =
  let m = M.create ~nvars:3 () in
  let f = O.bor m (O.band m (M.ithvar m 0) (M.ithvar m 1)) (M.nithvar m 2) in
  let dot = Fcv_bdd.Dot.to_string m f in
  check "digraph header" true (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  (* one node line per interior node, plus both terminals *)
  let count_sub sub s =
    let n = ref 0 in
    let len = String.length sub in
    for i = 0 to String.length s - len do
      if String.sub s i len = sub then incr n
    done;
    !n
  in
  check_int "labelled interior nodes" (M.node_count m f - 2) (count_sub "[label=\"x" dot);
  check "terminals present" true
    (count_sub "t0 [shape" dot = 1 && count_sub "t1 [shape" dot = 1);
  let path = Filename.temp_file "fcv" ".dot" in
  Fcv_bdd.Dot.to_file m f path;
  check "file written" true (Sys.file_exists path && (Unix.stat path).Unix.st_size > 0);
  Sys.remove path

let test_terminal_dot () =
  let m = M.create ~nvars:1 () in
  let dot = Fcv_bdd.Dot.to_string m M.one in
  check "true-only graph renders" true (String.length dot > 0)

let test_csv_empty_and_crlf () =
  let path = Filename.temp_file "fcv" ".csv" in
  let oc = open_out path in
  output_string oc "a,b\r\n1,x\r\n\r\n2,y\r\n";
  close_out oc;
  let header, rows = R.Csv.read_file path in
  check "header" true (header = [ "a"; "b" ]);
  check_int "blank lines skipped" 2 (List.length rows);
  check "crlf stripped" true (List.hd rows = [ "1"; "x" ]);
  Sys.remove path

let test_value_parsing () =
  check "int cell" true (R.Value.of_string "42" = R.Value.Int 42);
  check "negative int" true (R.Value.of_string "-7" = R.Value.Int (-7));
  check "string cell" true (R.Value.of_string "42a" = R.Value.Str "42a");
  check "ordering across kinds" true (R.Value.compare (R.Value.Int 5) (R.Value.Str "a") < 0)

let test_sql_lexer_edges () =
  let toks s = Fcv_sql.Lexer.tokenize s in
  check "quoted identifier" true
    (List.exists (function Fcv_sql.Lexer.IDENT "weird col" -> true | _ -> false)
       (toks "SELECT \"weird col\" FROM t"));
  check "bang-equals" true
    (List.exists (function Fcv_sql.Lexer.NEQ -> true | _ -> false) (toks "a != b"));
  check "keywords case-insensitive" true
    (List.exists (function Fcv_sql.Lexer.KW "SELECT" -> true | _ -> false)
       (toks "select x from t"));
  check "lexer error surfaces" true
    (match toks "a ; b" with exception Fcv_sql.Lexer.Error _ -> true | _ -> false)

let test_algebra_pp () =
  let db = R.Database.create () in
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("x", "dx") ] in
  let open Fcv_sql.Algebra in
  let plan =
    Distinct
      (Project
         ( [| 0 |],
           Select (And (Eq_const (0, 1), Not (In_set (0, [ 2; 3 ]))), Scan t) ))
  in
  let s = to_string plan in
  let contains sub =
    let len = String.length sub in
    let rec go i =
      i + len <= String.length s && (String.sub s i len = sub || go (i + 1))
    in
    go 0
  in
  check "plan prints scan" true (contains "scan(t)");
  check "plan prints distinct" true (contains "distinct");
  check "plan prints predicate" true (contains "in {2,3}")

let test_fol_printer_escapes () =
  (* printed formulas re-parse to the same formula *)
  let f =
    Core.Formula.(
      Forall
        ( [ "x" ],
          Implies
            ( Atom ("r", [ Var "x"; Const (R.Value.Str "O'Hara") ]),
              In (Var "x", [ R.Value.Int 1; R.Value.Int 2 ]) ) ))
  in
  let printed = Core.Formula.to_string f in
  check "prints" true (String.length printed > 0)

let test_timer_accumulation () =
  let t = Fcv_util.Timer.create () in
  Fcv_util.Timer.start t;
  Fcv_util.Timer.stop t;
  let e1 = Fcv_util.Timer.elapsed t in
  Fcv_util.Timer.start t;
  Fcv_util.Timer.stop t;
  check "accumulates" true (Fcv_util.Timer.elapsed t >= e1);
  Fcv_util.Timer.reset t;
  check "reset" true (Fcv_util.Timer.elapsed t = 0.)

let test_violations_no_witness_shape () =
  (* a purely existential constraint has no finite witnesses for its
     violation: enumerate returns None *)
  let db = Gen.random_db 3 in
  let index = Core.Index.create db in
  let c = Core.Fol_parser.of_string "exists x . t(x)" in
  Core.Checker.ensure_indices index [ c ];
  check "no witnesses" true (Core.Violations.enumerate index c = None);
  check "no count" true (Core.Violations.count index c = None)

let test_node_limit_value_accessors () =
  let m = M.create ~nvars:4 ~max_nodes:100 () in
  check_int "budget readable" 100 (M.max_nodes m);
  M.set_max_nodes m 0;
  check_int "budget clearable" 0 (M.max_nodes m);
  let stats = M.stats m in
  check "stats sane" true (stats.M.nodes >= 2 && stats.M.variables = 4)

let suite =
  [
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "dot export of terminal" `Quick test_terminal_dot;
    Alcotest.test_case "csv crlf / blank lines" `Quick test_csv_empty_and_crlf;
    Alcotest.test_case "value parsing" `Quick test_value_parsing;
    Alcotest.test_case "sql lexer edges" `Quick test_sql_lexer_edges;
    Alcotest.test_case "algebra pretty-printer" `Quick test_algebra_pp;
    Alcotest.test_case "fol printer" `Quick test_fol_printer_escapes;
    Alcotest.test_case "timer accumulation" `Quick test_timer_accumulation;
    Alcotest.test_case "violations of existential constraints" `Quick test_violations_no_witness_shape;
    Alcotest.test_case "manager accessors" `Quick test_node_limit_value_accessors;
  ]

let () = Registry.register "misc" suite
