(** SQL substrate tests: algebra evaluator, lexer/parser, and the
    planner — including the correlated NOT EXISTS unnesting and the
    GROUP BY / HAVING path the paper's violation queries need. *)

module R = Fcv_relation
module A = Fcv_sql.Algebra
module E = Fcv_sql.Exec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_db () =
  let db = R.Database.create () in
  let emp =
    R.Database.create_table db ~name:"emp"
      ~attrs:[ ("name", "person"); ("dept", "dept"); ("city", "city") ]
  in
  let dept =
    R.Database.create_table db ~name:"dept" ~attrs:[ ("dept", "dept"); ("city", "city") ]
  in
  let s x = R.Value.Str x in
  List.iter
    (fun (n, d, c) -> ignore (R.Table.insert emp [| s n; s d; s c |]))
    [
      ("alice", "eng", "toronto");
      ("bob", "eng", "oshawa");
      ("carol", "sales", "toronto");
      ("dan", "hr", "ottawa");
    ];
  List.iter
    (fun (d, c) -> ignore (R.Table.insert dept [| s d; s c |]))
    [ ("eng", "toronto"); ("sales", "toronto"); ("hr", "ottawa") ];
  (db, emp, dept)

(* -- algebra --------------------------------------------------------------- *)

let test_scan_select () =
  let _, emp, _ = mk_db () in
  let plan = A.Select (A.Eq_const (1, 0), A.Scan emp) in
  (* dept code 0 = "eng" *)
  check_int "two engineers" 2 (E.count plan)

let test_project_distinct () =
  let _, emp, _ = mk_db () in
  let plan = A.Distinct (A.Project ([| 1 |], A.Scan emp)) in
  check_int "three departments" 3 (E.count plan)

let test_hash_join () =
  let _, emp, dept = mk_db () in
  let plan = A.Hash_join ([ (1, 0) ], A.Scan emp, A.Scan dept) in
  check_int "join on dept" 4 (E.count plan);
  (* add the city agreement predicate: emp.city = dept.city *)
  let consistent = A.Select (A.Eq_col (2, 4), plan) in
  check_int "city-consistent employees" 3 (E.count consistent)

let test_anti_semi_join () =
  let _, emp, dept = mk_db () in
  (* employees whose (dept, city) pair is NOT the dept's registered city *)
  let anti = A.Anti_join ([ (1, 0); (2, 1) ], A.Scan emp, A.Scan dept) in
  check_int "one inconsistent employee" 1 (E.count anti);
  (match E.run anti with
  | [ row ] -> check_int "bob is inconsistent" 1 row.(0)
  | _ -> Alcotest.fail "expected one row");
  let semi = A.Semi_join ([ (1, 0); (2, 1) ], A.Scan emp, A.Scan dept) in
  check_int "three consistent" 3 (E.count semi)

let test_empty_key_semijoin_is_existence () =
  let _, emp, dept = mk_db () in
  check_int "uncorrelated EXISTS keeps all" 4
    (E.count (A.Semi_join ([], A.Scan emp, A.Scan dept)));
  let empty = A.Select (A.False, A.Scan dept) in
  check_int "uncorrelated EXISTS of empty drops all" 0
    (E.count (A.Semi_join ([], A.Scan emp, empty)));
  check_int "uncorrelated NOT EXISTS of empty keeps all" 4
    (E.count (A.Anti_join ([], A.Scan emp, empty)))

let test_union_diff () =
  let _, emp, _ = mk_db () in
  let eng = A.Select (A.Eq_const (1, 0), A.Scan emp) in
  let toronto = A.Select (A.Eq_const (2, 0), A.Scan emp) in
  check_int "union dedupes" 3 (E.count (A.Union (eng, toronto)));
  check_int "diff" 1 (E.count (A.Diff (eng, toronto)))

let test_group_by () =
  let _, emp, _ = mk_db () in
  let plan = A.Group_by ([| 1 |], [| A.Count_all |], A.True, A.Scan emp) in
  let rows = E.run plan in
  check_int "three groups" 3 (List.length rows);
  let eng_count = List.find (fun r -> r.(0) = 0) rows in
  check_int "eng has 2" 2 eng_count.(1)

let test_group_by_having_count_distinct () =
  let _, emp, _ = mk_db () in
  (* departments spanning more than one city: only eng *)
  let plan =
    A.Group_by ([| 1 |], [| A.Count_distinct 2 |], A.Gt_const (1, 1), A.Scan emp)
  in
  let rows = E.run plan in
  check_int "one multi-city dept" 1 (List.length rows);
  check_int "it is eng" 0 (List.hd rows).(0)

let test_product_arity () =
  let _, emp, dept = mk_db () in
  let plan = A.Product (A.Scan emp, A.Scan dept) in
  check_int "product cardinality" 12 (E.count plan);
  check_int "product arity" 5 (A.arity plan)

(* -- lexer / parser -------------------------------------------------------- *)

let test_lexer () =
  let toks = Fcv_sql.Lexer.tokenize "SELECT a.b, 'it''s' FROM t WHERE x <> 3" in
  check_int "token count" 13 (List.length toks);
  check "string escape" true
    (List.exists (function Fcv_sql.Lexer.STRING "it's" -> true | _ -> false) toks)

let test_parser_shapes () =
  let q = Fcv_sql.Parser.query_of_string "SELECT * FROM emp e WHERE e.dept = 'eng'" in
  check_int "one from entry" 1 (List.length q.Fcv_sql.Ast.from);
  check "alias" true (List.hd q.Fcv_sql.Ast.from = ("emp", "e"));
  let q2 =
    Fcv_sql.Parser.query_of_string
      "SELECT dept FROM emp GROUP BY dept HAVING COUNT(DISTINCT city) > 1"
  in
  check "group by parsed" true (List.length q2.Fcv_sql.Ast.group_by = 1);
  check "having parsed" true (q2.Fcv_sql.Ast.having <> None)

let test_parser_errors () =
  let fails s =
    match Fcv_sql.Parser.query_of_string s with
    | exception (Fcv_sql.Parser.Error _ | Fcv_sql.Lexer.Error _) -> true
    | _ -> false
  in
  check "missing FROM" true (fails "SELECT *");
  check "trailing junk" true (fails "SELECT * FROM t )");
  check "bad string" true (fails "SELECT * FROM t WHERE a = 'oops")

(* -- planner ---------------------------------------------------------------- *)

let test_planner_select () =
  let db, _, _ = mk_db () in
  let rows, names = Fcv_sql.Planner.run db "SELECT e.name FROM emp e WHERE e.dept = 'eng'" in
  check_int "two rows" 2 (List.length rows);
  check "column name" true (names = [ "e.name" ])

let test_planner_join () =
  let db, _, _ = mk_db () in
  let rows, _ =
    Fcv_sql.Planner.run db
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.dept AND e.city = d.city"
  in
  check_int "three consistent" 3 (List.length rows)

let test_planner_not_exists () =
  let db, _, _ = mk_db () in
  let rows, _ =
    Fcv_sql.Planner.run db
      "SELECT e.name FROM emp e WHERE NOT EXISTS (SELECT * FROM dept d WHERE d.dept = e.dept AND d.city = e.city)"
  in
  check_int "one violator" 1 (List.length rows)

let test_planner_in_and_literals () =
  let db, _, _ = mk_db () in
  let rows, _ =
    Fcv_sql.Planner.run db "SELECT name FROM emp WHERE city IN ('toronto', 'ottawa')"
  in
  check_int "three in cities" 3 (List.length rows);
  (* a literal missing from the dictionary can never match *)
  let rows2, _ = Fcv_sql.Planner.run db "SELECT name FROM emp WHERE city = 'nowhere'" in
  check_int "unknown literal" 0 (List.length rows2);
  let rows3, _ = Fcv_sql.Planner.run db "SELECT name FROM emp WHERE city <> 'nowhere'" in
  check_int "negated unknown literal" 4 (List.length rows3)

let test_planner_group_by () =
  let db, _, _ = mk_db () in
  let rows, _ =
    Fcv_sql.Planner.run db
      "SELECT dept FROM emp GROUP BY dept HAVING COUNT(DISTINCT city) > 1"
  in
  check_int "one fd violator" 1 (List.length rows)

let test_planner_global_agg () =
  let db, _, _ = mk_db () in
  let rows, _ = Fcv_sql.Planner.run db "SELECT COUNT(*) FROM emp WHERE dept = 'eng'" in
  (match rows with
  | [ row ] -> check_int "count value" 2 row.(0)
  | _ -> Alcotest.fail "expected single row")

let star_db () =
  (* three tables joined in a chain; the middle one is selective *)
  let db = R.Database.create () in
  List.iter
    (fun (n, s) -> R.Database.add_domain db (R.Dict.of_int_range n s))
    [ ("k", 50); ("j", 50); ("v", 10) ];
  let big = R.Database.create_table db ~name:"big" ~attrs:[ ("k", "k"); ("x", "v") ] in
  let mid = R.Database.create_table db ~name:"mid" ~attrs:[ ("k", "k"); ("j", "j") ] in
  let tiny = R.Database.create_table db ~name:"tiny" ~attrs:[ ("j", "j"); ("y", "v") ] in
  let rng = Fcv_util.Rng.create 12 in
  for _ = 1 to 500 do
    R.Table.insert_coded big [| Fcv_util.Rng.int rng 50; Fcv_util.Rng.int rng 10 |]
  done;
  for _ = 1 to 200 do
    R.Table.insert_coded mid [| Fcv_util.Rng.int rng 50; Fcv_util.Rng.int rng 50 |]
  done;
  for _ = 1 to 20 do
    R.Table.insert_coded tiny [| Fcv_util.Rng.int rng 50; Fcv_util.Rng.int rng 10 |]
  done;
  db

let test_planner_pushes_selections () =
  let db = star_db () in
  let q = Fcv_sql.Parser.query_of_string "SELECT b.k FROM big b, mid m WHERE b.k = m.k AND b.x = 3" in
  let plan, _ = Fcv_sql.Planner.plan db q in
  (* the constant selection must sit below the join, on big's scan *)
  let rec select_above_join = function
    | A.Select (A.Eq_const _, A.Hash_join _) -> true
    | A.Select (_, p) | A.Project (_, p) | A.Distinct p -> select_above_join p
    | A.Hash_join (_, l, r) | A.Product (l, r) -> select_above_join l || select_above_join r
    | _ -> false
  in
  check "selection pushed below join" false (select_above_join plan);
  (* and results are unchanged vs the naive semantics *)
  let rows, _ = Fcv_sql.Planner.run db "SELECT b.k FROM big b, mid m WHERE b.k = m.k AND b.x = 3" in
  let big = R.Database.table db "big" and mid = R.Database.table db "mid" in
  let expected = ref 0 in
  R.Table.iter big (fun rb ->
      if rb.(1) = 3 then
        R.Table.iter mid (fun rm -> if rm.(0) = rb.(0) then incr expected));
  check_int "pushed plan result" !expected (List.length rows)

let test_planner_cost_based_join_order () =
  let db = star_db () in
  let q =
    Fcv_sql.Parser.query_of_string
      "SELECT b.x FROM big b, mid m, tiny t WHERE b.k = m.k AND m.j = t.j"
  in
  let plan, _ = Fcv_sql.Planner.plan db q in
  (* the cheaper mid-tiny join (est. 200*20/50 = 80) must happen before
     the big-mid join (est. 500*200/50 = 2000): big's scan belongs to
     the OUTER join, not the inner one *)
  let rec inner_joins = function
    | A.Hash_join (_, l, r) -> (
      match (l, r) with
      | (A.Hash_join _ as j), other | other, (A.Hash_join _ as j) ->
        let rec mentions_big = function
          | A.Scan t -> R.Table.name t = "big"
          | A.Select (_, p) | A.Project (_, p) | A.Distinct p -> mentions_big p
          | A.Hash_join (_, a, b) | A.Product (a, b) -> mentions_big a || mentions_big b
          | _ -> false
        in
        Some (mentions_big j, mentions_big other)
      | _ -> None)
    | A.Select (_, p) | A.Project (_, p) | A.Distinct p -> inner_joins p
    | _ -> None
  in
  (match inner_joins plan with
  | Some (big_in_inner, big_in_outer) ->
    check "big joined last" true ((not big_in_inner) && big_in_outer)
  | None -> Alcotest.fail ("no nested join found: " ^ A.to_string plan));
  (* correctness unchanged *)
  let rows, _ =
    Fcv_sql.Planner.run db "SELECT b.x FROM big b, mid m, tiny t WHERE b.k = m.k AND m.j = t.j"
  in
  let nested = ref 0 in
  let big = R.Database.table db "big"
  and mid = R.Database.table db "mid"
  and tiny = R.Database.table db "tiny" in
  R.Table.iter big (fun rb ->
      R.Table.iter mid (fun rm ->
          if rm.(0) = rb.(0) then
            R.Table.iter tiny (fun rt -> if rt.(0) = rm.(1) then incr nested)));
  check_int "three-way join result" !nested (List.length rows)

let test_planner_cross_domain_rejected () =
  let db, _, _ = mk_db () in
  check "cross-domain comparison rejected" true
    (match Fcv_sql.Planner.run db "SELECT * FROM emp WHERE name = dept" with
    | exception Fcv_sql.Planner.Unsupported _ -> true
    | _ -> false)

let test_planner_ambiguous_column () =
  let db, _, _ = mk_db () in
  check "ambiguous column rejected" true
    (match Fcv_sql.Planner.run db "SELECT city FROM emp e, dept d WHERE e.dept = d.dept" with
    | exception Fcv_sql.Planner.Unsupported _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "scan + select" `Quick test_scan_select;
    Alcotest.test_case "project + distinct" `Quick test_project_distinct;
    Alcotest.test_case "hash join" `Quick test_hash_join;
    Alcotest.test_case "anti/semi join" `Quick test_anti_semi_join;
    Alcotest.test_case "empty-key (anti)semijoin = existence" `Quick test_empty_key_semijoin_is_existence;
    Alcotest.test_case "union / diff" `Quick test_union_diff;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "having count distinct" `Quick test_group_by_having_count_distinct;
    Alcotest.test_case "product" `Quick test_product_arity;
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "parser shapes" `Quick test_parser_shapes;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "planner select" `Quick test_planner_select;
    Alcotest.test_case "planner join" `Quick test_planner_join;
    Alcotest.test_case "planner NOT EXISTS" `Quick test_planner_not_exists;
    Alcotest.test_case "planner IN / literals" `Quick test_planner_in_and_literals;
    Alcotest.test_case "planner group by" `Quick test_planner_group_by;
    Alcotest.test_case "planner global aggregate" `Quick test_planner_global_agg;
    Alcotest.test_case "planner pushes selections" `Quick test_planner_pushes_selections;
    Alcotest.test_case "planner cost-based join order" `Quick test_planner_cost_based_join_order;
    Alcotest.test_case "planner cross-domain rejection" `Quick test_planner_cross_domain_rejected;
    Alcotest.test_case "planner ambiguity rejection" `Quick test_planner_ambiguous_column;
  ]

let () = Registry.register "sql" suite
