(** Data-generator tests: determinism by seed, the structural
    properties each family promises (products, unions of products,
    functional dependencies of the customer data), and violation
    injection. *)

module R = Fcv_relation
module S = Fcv_datagen.Synth

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_synth_determinism () =
  let gen seed =
    let rng = Fcv_util.Rng.create seed in
    let _, t = S.table rng ~name:"r" ~attrs:5 ~dom:50 ~rows:2000 ~family:(S.Prod 4) in
    R.Table.to_list t
  in
  check "same seed, same data" true (gen 7 = gen 7);
  check "different seed, different data" true (gen 7 <> gen 8)

let test_synth_domains () =
  let rng = Fcv_util.Rng.create 1 in
  let _, t = S.table rng ~name:"r" ~attrs:4 ~dom:30 ~rows:1000 ~family:S.Random in
  check_int "cardinality" 1000 (R.Table.cardinality t);
  check_int "arity" 4 (R.Table.arity t);
  for i = 0 to 3 do
    check_int "fixed active domain" 30 (R.Table.dom_size t i)
  done;
  let ok = ref true in
  R.Table.iter t (fun row -> Array.iter (fun c -> if c < 0 || c >= 30 then ok := false) row);
  check "codes in range" true !ok

(* 1-PROD: the relation must factor exactly — |R| = prod of per-factor
   distinct counts for SOME partition.  We verify the weaker but
   telling property that |R| = |pi_A(R)| * |pi_B(R)| holds for the
   generating partition by checking all 2-partitions. *)
let test_one_prod_structure () =
  let rng = Fcv_util.Rng.create 42 in
  let _, t = S.table rng ~name:"r" ~attrs:4 ~dom:40 ~rows:1500 ~family:(S.Prod 1) in
  let n = R.Table.distinct_count t in
  let subsets =
    (* proper nonempty subsets of {0,1,2,3} containing attribute 0 *)
    List.filter
      (fun s -> s <> [] && List.length s < 4 && List.mem 0 s)
      (List.init 16 (fun mask -> List.filter (fun i -> (mask lsr i) land 1 = 1) [ 0; 1; 2; 3 ]))
  in
  let factorises =
    List.exists
      (fun s ->
        let complement = List.filter (fun i -> not (List.mem i s)) [ 0; 1; 2; 3 ] in
        R.Stats.distinct t s * R.Stats.distinct t complement = n)
      subsets
  in
  check "factors as a product" true factorises

let test_family_names () =
  Alcotest.(check string) "1-PROD" "1-PROD" (S.family_name (S.Prod 1));
  Alcotest.(check string) "8-PROD" "8-PROD" (S.family_name (S.Prod 8));
  Alcotest.(check string) "RANDOM" "RANDOM" (S.family_name S.Random)

let test_customers_domains_match_paper () =
  check_int "areacode" 281 Fcv_datagen.Customers.n_areacode;
  check_int "number" 889 Fcv_datagen.Customers.n_number;
  check_int "city" 10894 Fcv_datagen.Customers.n_city;
  check_int "state" 50 Fcv_datagen.Customers.n_state;
  check_int "zipcode" 17557 Fcv_datagen.Customers.n_zip

let test_customers_fds_hold_when_clean () =
  let rng = Fcv_util.Rng.create 3 in
  let db = Fcv_datagen.Customers.make_db () in
  let t, _ = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:3000 in
  check_int "rows" 3000 (R.Table.cardinality t);
  (* schema: areacode number city state zipcode = positions 0..4 *)
  check "city -> state" true (R.Stats.fd_holds t ~lhs:[ 2 ] ~rhs:[ 3 ]);
  check "zipcode -> city" true (R.Stats.fd_holds t ~lhs:[ 4 ] ~rhs:[ 2 ]);
  check "areacode -> state" true (R.Stats.fd_holds t ~lhs:[ 0 ] ~rhs:[ 3 ])

let test_customers_violation_injection () =
  let rng = Fcv_util.Rng.create 4 in
  let db = Fcv_datagen.Customers.make_db () in
  let t, _ =
    Fcv_datagen.Customers.generate ~violation_rate:0.2 rng db ~name:"cust" ~rows:3000
  in
  check "areacode -> state broken" false (R.Stats.fd_holds t ~lhs:[ 0 ] ~rhs:[ 3 ])

let test_constraints_table () =
  let rng = Fcv_util.Rng.create 5 in
  let db = Fcv_datagen.Customers.make_db () in
  let cust, world = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:2000 in
  let cons = Fcv_datagen.Customers.constraints_table rng db world ~name:"cons" ~n:5000 in
  check_int "requested size" 5000 (R.Table.cardinality cons);
  (* constraints list areacodes legitimate for the city's state, so a
     clean customer row never pairs a constrained city with a foreign
     areacode of ANOTHER state *)
  ignore cust;
  let ok = ref true in
  R.Table.iter cons (fun row ->
      let city = row.(0) and areacode = row.(1) in
      if world.Fcv_datagen.Customers.city_state.(city)
         <> world.Fcv_datagen.Customers.area_state.(areacode)
      then ok := false);
  check "constraints respect geography" true !ok

let test_university_violators () =
  let rng = Fcv_util.Rng.create 6 in
  let db, student, course, takes =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 300; violators = 5 }
  in
  ignore (db, course, takes);
  check_int "students" 300 (R.Table.cardinality student);
  let c =
    Core.Fol_parser.of_string
      "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
  in
  let naive = Core.Naive_eval.violating_bindings db c in
  check_int "exactly the injected violators" 5 (List.length naive)

let test_university_zero_violators_clean () =
  let rng = Fcv_util.Rng.create 7 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng { Fcv_datagen.University.default with students = 200 }
  in
  let c =
    Core.Fol_parser.of_string
      "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
  in
  check "clean" true (Core.Naive_eval.holds db c)

let test_retail_clean_and_dirty () =
  let cfg =
    { Fcv_datagen.Retail.default with Fcv_datagen.Retail.customers = 300; products = 80; orders = 1200 }
  in
  let rng = Fcv_util.Rng.create 8 in
  let clean = Fcv_datagen.Retail.generate rng cfg in
  (* all audit constraints hold on clean data (checked through the
     whole pipeline) *)
  let index = Core.Index.create clean.Fcv_datagen.Retail.db in
  let parsed =
    List.map (fun (_, s) -> Core.Fol_parser.of_string s) Fcv_datagen.Retail.audit_constraints
  in
  Core.Checker.ensure_indices index parsed;
  List.iteri
    (fun i c ->
      let r = Core.Checker.check index c in
      check (Printf.sprintf "clean constraint %d" i) true
        (r.Core.Checker.outcome = Core.Checker.Satisfied))
    parsed;
  (* corruption knobs break exactly the matching constraints *)
  let dirty =
    Fcv_datagen.Retail.generate rng
      { cfg with Fcv_datagen.Retail.bad_dest_rate = 0.05; bad_channel_rate = 0.05 }
  in
  let index2 = Core.Index.create dirty.Fcv_datagen.Retail.db in
  Core.Checker.ensure_indices index2 parsed;
  let outcomes = List.map (fun c -> (Core.Checker.check index2 c).Core.Checker.outcome) parsed in
  (* constraint 3 = destination agreement, 4 = channel policy (0-based) *)
  check "destination constraint broken" true (List.nth outcomes 3 = Core.Checker.Violated);
  check "channel constraint broken" true (List.nth outcomes 4 = Core.Checker.Violated);
  check "brand FD still fine" true (List.nth outcomes 5 = Core.Checker.Satisfied)

let suite =
  [
    Alcotest.test_case "retail audit workload" `Quick test_retail_clean_and_dirty;
    Alcotest.test_case "synth determinism" `Quick test_synth_determinism;
    Alcotest.test_case "synth domains/cardinality" `Quick test_synth_domains;
    Alcotest.test_case "1-PROD factorises" `Quick test_one_prod_structure;
    Alcotest.test_case "family names" `Quick test_family_names;
    Alcotest.test_case "customer domain sizes (paper)" `Quick test_customers_domains_match_paper;
    Alcotest.test_case "customer FDs hold when clean" `Quick test_customers_fds_hold_when_clean;
    Alcotest.test_case "customer violation injection" `Quick test_customers_violation_injection;
    Alcotest.test_case "constraints table" `Quick test_constraints_table;
    Alcotest.test_case "university violators" `Quick test_university_violators;
    Alcotest.test_case "university clean" `Quick test_university_zero_violators_clean;
  ]

let () = Registry.register "datagen" suite
