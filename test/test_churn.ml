(** Churn soak: the memory-lifecycle subsystem under a long seeded
    insert/delete/rebuild/register/unregister loop over the
    university and retail generators.  Pins the serving-path
    guarantees:

    - node count, level count and op-cache occupancy stay bounded
      across ≥ 10 GC cycles (after each GC, [Manager.size] ≤ 2× the
      reachable size of the live roots);
    - levels in use do not grow monotonically across rebuild epochs
      (recycling reclaims abandoned level space, so the 511-level
      ceiling is a per-epoch budget, not a lifetime fuse);
    - sequential and parallel verdicts are identical immediately
      before and after every compaction. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let university_constraints =
  [
    "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
    "forall s . student(s, _, _) -> (exists c . takes(s, c))";
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
  ]

(* One random mutation: delete a random row, or insert a perturbed
   clone of one — occasionally carrying a freshly interned value, which
   exceeds the entry's frozen domain capacity and forces a rebuild
   (the level-abandonment source the recycler exists for). *)
let churn_step rng mon db fresh =
  let tables = R.Database.table_names db in
  let tbl = List.nth tables (Fcv_util.Rng.int rng (List.length tables)) in
  let t = R.Database.table db tbl in
  let n = R.Table.cardinality t in
  if n = 0 then ()
  else if Fcv_util.Rng.bernoulli rng 0.4 then
    ignore
      (Core.Monitor.delete mon ~table_name:tbl
         (Array.copy (R.Table.row t (Fcv_util.Rng.int rng n))))
  else begin
    let row = Array.copy (R.Table.row t (Fcv_util.Rng.int rng n)) in
    let j = Fcv_util.Rng.int rng (Array.length row) in
    if Fcv_util.Rng.bernoulli rng 0.2 then begin
      incr fresh;
      row.(j) <-
        R.Dict.intern (R.Table.dict t j)
          (R.Value.of_string (Printf.sprintf "churn!%d" !fresh))
    end
    else row.(j) <- (R.Table.row t (Fcv_util.Rng.int rng n)).(j);
    Core.Monitor.insert mon ~table_name:tbl row
  end

let verdicts_both mon =
  let seq = Core.Monitor.verdicts mon in
  Core.Monitor.set_jobs mon 4;
  let par = Core.Monitor.verdicts mon in
  Core.Monitor.set_jobs mon 1;
  (seq, par)

(* The soak proper, parameterised by base database and constraint
   pool; [cycles] compactions are forced (plus whatever the automatic
   policy triggers through validate). *)
let soak ~seed ~cycles ~ops_per_cycle db sources =
  let rng = Fcv_util.Rng.create seed in
  let max_cache = 1 lsl 12 in
  let index = Core.Index.create ~max_cache db in
  let policy =
    { Core.Lifecycle.default_policy with min_nodes = 1 lsl 8; dead_ratio_hi = 0.4 }
  in
  let mon = Core.Monitor.create ~gc:(Some policy) index in
  (* register/unregister churn: the head constraint cycles in and out *)
  let registered =
    ref (List.map (fun s -> (s, Core.Monitor.add mon s)) sources)
  in
  let fresh = ref 0 in
  let levels_trace = ref [] in
  for cycle = 1 to cycles do
    for _ = 1 to ops_per_cycle do
      churn_step rng mon db fresh
    done;
    (* unregister one constraint and re-register it next cycle, so
       entry liveness changes under the GC *)
    (match !registered with
    | (src, reg) :: rest when List.length rest >= 1 && cycle mod 2 = 0 ->
      Core.Monitor.remove mon reg.Core.Monitor.id;
      registered := rest @ [ (src, Core.Monitor.add mon src) ]
    | _ -> ());
    let before_seq, before_par = verdicts_both mon in
    check "seq/par verdicts agree before compaction" true (before_seq = before_par);
    ignore (Core.Monitor.gc mon);
    (* the acceptance bound: after GC the store holds at most 2× the
       reachable size of the live roots (compact keeps exactly them) *)
    let live = Core.Index.live_nodes index in
    check "size <= 2x live after GC" true (M.size (Core.Index.mgr index) <= 2 * live);
    check "op caches bounded" true (M.cache_entries (Core.Index.mgr index) <= 3 * max_cache);
    check "levels under the ceiling" true (M.nvars (Core.Index.mgr index) <= M.max_level);
    levels_trace := M.nvars (Core.Index.mgr index) :: !levels_trace;
    let after_seq, after_par = verdicts_both mon in
    check "seq/par verdicts agree after compaction" true (after_seq = after_par);
    check "verdicts survive compaction" true (before_seq = after_seq)
  done;
  check "at least 10 GC cycles" true (index.Core.Index.gc_runs >= 10);
  (* rebuilds abandoned levels throughout, so monotone growth would
     mean recycling never reclaimed anything *)
  let trace = List.rev !levels_trace in
  let strictly_growing =
    let rec go = function
      | a :: (b :: _ as rest) -> a < b && go rest
      | _ -> true
    in
    go trace
  in
  check "levels do not grow monotonically" false strictly_growing;
  Core.Monitor.stop mon

let test_soak_university () =
  let rng = Fcv_util.Rng.create 42 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 60; courses = 20 }
  in
  soak ~seed:1042 ~cycles:12 ~ops_per_cycle:25 db university_constraints

let test_soak_retail () =
  let rng = Fcv_util.Rng.create 43 in
  let gen =
    Fcv_datagen.Retail.generate rng
      { Fcv_datagen.Retail.default with customers = 60; products = 25; orders = 150 }
  in
  soak ~seed:1043 ~cycles:12 ~ops_per_cycle:25 gen.Fcv_datagen.Retail.db
    (List.map snd Fcv_datagen.Retail.audit_constraints)

(* Regression for the Level_limit satellite: repeated domain-growth
   rebuilds demand > 511 cumulative levels; without recycling,
   new_var's ceiling was a lifetime fuse that killed the daemon. *)
let test_level_recycling_crosses_ceiling () =
  let db = R.Database.create () in
  let attrs = List.init 8 (fun i -> (Printf.sprintf "a%d" i, Printf.sprintf "d%d" i)) in
  let t = R.Database.create_table db ~name:"t" ~attrs in
  for r = 0 to 3 do
    R.Table.insert_coded t
      (Array.init 8 (fun k ->
           R.Dict.intern (R.Table.dict t k)
             (R.Value.of_string (Printf.sprintf "seed%d_%d" r k))))
  done;
  let index = Core.Index.create db in
  (* eager recycling: any abandoned level triggers a recycle at the
     next validation, so the BDD path always has headroom and the
     checker never falls back to enumeration over these huge domains *)
  let policy = { Core.Lifecycle.default_policy with level_slack = 1 } in
  let mon = Core.Monitor.create ~gc:(Some policy) index in
  let _ =
    Core.Monitor.add mon
      "forall a, b, c, d, e, f, g, h . t(a, b, c, d, e, f, g, h) -> t(a, b, c, d, e, f, g, h)"
  in
  ignore (Core.Monitor.validate mon);
  (* cumulative level demand: within-generation growth summed across
     recycles (a lower bound on what a recycle-less manager would
     have had to allocate) *)
  let cumulative = ref (M.nvars (Core.Index.mgr index)) in
  let last = ref (M.nvars (Core.Index.mgr index)) in
  let note () =
    let nv = M.nvars (Core.Index.mgr index) in
    if nv > !last then cumulative := !cumulative + (nv - !last);
    last := nv
  in
  for epoch = 1 to 10 do
    (* double every attribute's dictionary, then insert a row carrying
       the new max codes — out of frozen capacity, forcing a rebuild
       with doubled block widths *)
    let row =
      Array.init 8 (fun k ->
          let d = R.Table.dict t k in
          let target = 2 * R.Dict.size d in
          let c = ref 0 in
          while R.Dict.size d < target do
            incr c;
            ignore
              (R.Dict.intern d (R.Value.of_string (Printf.sprintf "g%d_%d_%d" epoch k !c)))
          done;
          R.Dict.size d - 1)
    in
    Core.Monitor.insert mon ~table_name:"t" row;
    note ();
    (* validate runs the lifecycle policy between checks *)
    check "violation-free epoch" true
      (List.for_all
         (fun r -> r.Core.Monitor.outcome = Core.Checker.Satisfied)
         (Core.Monitor.validate mon));
    note ()
  done;
  check "cumulative demand crossed the packing ceiling" true (!cumulative > M.max_level);
  check "levels in use stayed under the ceiling" true
    (M.nvars (Core.Index.mgr index) <= M.max_level);
  check "level recycles ran" true (index.Core.Index.level_recycles > 0)

(* A rebuild that hits the level ceiling mid-update defers: the entry
   drops out, the next validation recycles and re-admits it, and the
   verdict is unaffected. *)
let test_deferred_rebuild_recovers () =
  let rng = Fcv_util.Rng.create 7 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 40; courses = 12 }
  in
  let index = Core.Index.create db in
  let mon = Core.Monitor.create index in
  let _ = Core.Monitor.add mon "forall s, c . takes(s, c) -> (exists a . course(c, a))" in
  ignore (Core.Monitor.validate mon);
  (* burn almost all remaining level space so the next rebuild cannot
     fit; the burned levels are abandoned, so a recycle reclaims them *)
  let mgr = Core.Index.mgr index in
  ignore (M.new_vars mgr (M.max_level - M.nvars mgr - 2));
  (* grow a course-table domain and insert an out-of-capacity row *)
  let course = R.Database.table db "course" in
  let fresh_area = R.Dict.intern (R.Table.dict course 1) (R.Value.of_string "churn-area") in
  Core.Monitor.insert mon ~table_name:"course" [| 0; fresh_area |];
  check "entry deferred, not lost" true (index.Core.Index.deferred <> []);
  check_int "course entries dropped for now" 0
    (List.length (Core.Index.entries_for index "course"));
  (* the next validation recycles, re-admits the entry, and the
     verdict is the ground truth *)
  let reports = Core.Monitor.validate mon in
  check "recycle re-admitted the entry" true
    (Core.Index.entries_for index "course" <> []);
  check_int "nothing left deferred" 0 (List.length index.Core.Index.deferred);
  check "levels reclaimed" true (M.nvars (Core.Index.mgr index) < M.max_level / 2);
  check "verdict correct after recovery" true
    (List.for_all (fun r -> r.Core.Monitor.outcome = Core.Checker.Satisfied) reports)

let suite =
  [
    Alcotest.test_case "churn soak (university)" `Slow test_soak_university;
    Alcotest.test_case "churn soak (retail)" `Slow test_soak_retail;
    Alcotest.test_case "level recycling crosses the 511 ceiling" `Quick
      test_level_recycling_crosses_ceiling;
    Alcotest.test_case "deferred rebuild recovers via recycle" `Quick
      test_deferred_rebuild_recovers;
  ]

let () = Registry.register "churn" suite
