(** Parallel validation: the domain pool ({!Fcv_util.Pool}), the
    per-worker index replicas ({!Core.Replica}), and the property that
    parallel {!Core.Checker.check_all} verdicts are identical to the
    sequential run — deterministic unit tests plus a QCheck
    differential over random constraint batches.

    Determinism: {!Gen.qcheck_case} pins the QCheck seed ([QCHECK_SEED]
    overrides, default = the one bench/ci.sh exports) and prints the
    failing seed on a counterexample. *)

module Pool = Fcv_util.Pool
module C = Core.Checker
module F = Core.Formula

let with_pool ~jobs f =
  let pool = Pool.create ~name:"test" ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* -- pool ------------------------------------------------------------------- *)

(* Results keep submission order however the scheduler interleaves the
   tasks: later tasks finish first (earlier ones sleep longest). *)
let test_order_independence () =
  with_pool ~jobs:4 @@ fun pool ->
  let results =
    Pool.run_list pool
      (List.init 16 (fun i () ->
           Unix.sleepf (float_of_int (16 - i) /. 2_000.);
           i * i))
  in
  Alcotest.(check (list int)) "input order" (List.init 16 (fun i -> i * i)) results

exception Boom of int

let test_exception_propagation () =
  with_pool ~jobs:2 @@ fun pool ->
  let ok = Pool.submit pool (fun () -> 1) in
  let bad = Pool.submit pool (fun () -> raise (Boom 7)) in
  Alcotest.(check int) "healthy task unaffected" 1 (Pool.await ok);
  (match Pool.await bad with
  | _ -> Alcotest.fail "await should re-raise the worker exception"
  | exception Boom 7 -> ());
  Alcotest.(check bool) "peek never raises" true (Pool.peek bad = None);
  (* run_list: first failure in INPUT order wins, after all settle *)
  let witness = Atomic.make 0 in
  (match
     Pool.run_list pool
       [
         (fun () -> Atomic.incr witness);
         (fun () -> raise (Boom 1));
         (fun () -> raise (Boom 2));
         (fun () -> Atomic.incr witness);
       ]
   with
  | _ -> Alcotest.fail "run_list should re-raise"
  | exception Boom n ->
    Alcotest.(check int) "first failure in input order" 1 n;
    Alcotest.(check int) "all tasks settled before the raise" 2 (Atomic.get witness))

(* Shutdown drains tasks still queued at the time of the call. *)
let test_shutdown_drains_queue () =
  let pool = Pool.create ~jobs:1 () in
  let gate = Pool.submit pool (fun () -> Unix.sleepf 0.05) in
  (* with one worker busy on [gate], these are certainly still queued *)
  let queued = List.init 8 (fun i -> Pool.submit pool (fun () -> i + 100)) in
  Pool.shutdown pool;
  Pool.await gate;
  List.iteri
    (fun i fut -> Alcotest.(check int) "queued task completed" (i + 100) (Pool.await fut))
    queued;
  (match Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should be refused"
  | exception Invalid_argument _ -> ());
  (* idempotent *)
  Pool.shutdown pool

let test_pool_size_bounds () =
  Alcotest.(check int) "size" 3 (with_pool ~jobs:3 Pool.size);
  (match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs=0 should be refused"
  | exception Invalid_argument _ -> ());
  match Pool.create ~jobs:1000 () with
  | _ -> Alcotest.fail "jobs=1000 should be refused"
  | exception Invalid_argument _ -> ()

(* -- replicas --------------------------------------------------------------- *)

let small_index () =
  let db = Gen.random_db 7 in
  let index = Core.Index.create db in
  List.iter
    (fun table_name ->
      ignore (Core.Index.add index ~table_name ~strategy:Core.Ordering.Prob_converge ()))
    [ "r"; "s"; "t" ];
  index

(* The epoch machinery: replicas hydrate once per epoch per domain and
   are reused until an invalidation.  Exercised on the calling domain —
   DLS works there too, and it keeps the counts deterministic. *)
let test_replica_epoch_reuse () =
  let index = small_index () in
  let replica = Core.Replica.create index in
  Alcotest.(check int) "no hydration yet" 0 (Core.Replica.hydrations replica);
  Core.Replica.prepare replica;
  let r1 = Core.Replica.get replica in
  let r2 = Core.Replica.get replica in
  Alcotest.(check bool) "same epoch reuses the replica" true (r1 == r2);
  Alcotest.(check int) "one hydration" 1 (Core.Replica.hydrations replica);
  Core.Replica.invalidate replica;
  Core.Replica.prepare replica;
  let r3 = Core.Replica.get replica in
  Alcotest.(check bool) "invalidation forces a rebuild" true (r3 != r1);
  Alcotest.(check int) "two hydrations" 2 (Core.Replica.hydrations replica);
  (* replicas share the database but never the manager *)
  Alcotest.(check bool) "shared db" true (r3.Core.Index.db == index.Core.Index.db);
  Alcotest.(check bool) "private manager" true
    (Core.Index.mgr r3 != Core.Index.mgr index)

let test_replica_get_requires_prepare () =
  let replica = Core.Replica.create (small_index ()) in
  match Core.Replica.get replica with
  | _ -> Alcotest.fail "get without prepare should be refused"
  | exception Invalid_argument _ -> ()

(* A replica answers checks exactly like its master. *)
let test_replica_checks_agree () =
  let index = small_index () in
  let f =
    Gen.close
      (F.Forall
         ( [ "x1_1"; "x2_1" ],
           F.Implies
             ( F.Atom ("r", [ F.Var "x1_1"; F.Var "x2_1" ]),
               F.Exists ([ "x3_1" ], F.Atom ("s", [ F.Var "x2_1"; F.Var "x3_1" ])) ) ))
  in
  let replica = Core.Replica.create index in
  Core.Replica.prepare replica;
  let on_master = C.check index f and on_replica = C.check (Core.Replica.get replica) f in
  Alcotest.(check bool) "same outcome" true (on_master.C.outcome = on_replica.C.outcome);
  Alcotest.(check bool) "same method" true
    (on_master.C.method_used = on_replica.C.method_used)

(* -- parallel check_all ----------------------------------------------------- *)

let verdicts results =
  List.map (fun r -> (r.C.outcome, r.C.method_used)) results

(* jobs=1 must not even touch the pool machinery: same code path as
   the plain sequential map. *)
let test_jobs1_equivalence () =
  let index = small_index () in
  let fs =
    List.map Gen.close
      [ F.Exists ([ "x1_1" ], F.Atom ("t", [ F.Var "x1_1" ])); F.True; F.Not F.True ]
  in
  Alcotest.(check bool) "jobs=1 = sequential" true
    (verdicts (C.check_all index fs) = verdicts (C.check_all ~jobs:1 index fs))

let test_check_all_parallel_matches_sequential () =
  let rng = Fcv_util.Rng.create 11 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 120; courses = 20; violators = 3 }
  in
  let sources =
    [
      "forall s, c . takes(s, c) -> (exists a . course(c, a))";
      "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
      "forall s, k . student(s, 0, k) -> (exists c . takes(s, c) and course(c, 0))";
      "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
      "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
      "forall s, k . student(s, 1, k) -> (exists c . takes(s, c) and course(c, 1))";
    ]
  in
  let fs = List.map Core.Fol_parser.of_string sources in
  let index = Core.Index.create db in
  C.ensure_indices index fs;
  let sequential = verdicts (C.check_all index fs) in
  Alcotest.(check bool) "jobs=4 matches" true
    (sequential = verdicts (C.check_all ~jobs:4 index fs));
  (* more workers than constraints: the pool is clamped, not starved *)
  Alcotest.(check bool) "jobs=16 matches" true
    (sequential = verdicts (C.check_all ~jobs:16 index fs))

(* The monitor end of the wiring: parallel validation returns the same
   reports, replicas survive update + invalidate cycles, and stop()
   releases the workers. *)
let test_monitor_parallel_validate () =
  let run jobs =
    let db = Gen.random_db 23 in
    let monitor = Core.Monitor.create (Core.Index.create db) in
    Core.Monitor.set_jobs monitor jobs;
    let outcomes () =
      List.map
        (fun rep -> (rep.Core.Monitor.outcome, rep.Core.Monitor.fresh))
        (Core.Monitor.validate monitor)
    in
    ignore (Core.Monitor.add monitor "forall b . t(0) -> (exists c . s(b, c))");
    ignore (Core.Monitor.add monitor "forall a, b . r(a, b) -> (exists c . s(b, c))");
    ignore (Core.Monitor.add monitor "forall a . t(a) -> (exists b . r(a, b))");
    let first = outcomes () in
    (* cached pass, then dirty one table and revalidate *)
    let cached = outcomes () in
    Core.Monitor.insert monitor ~table_name:"t" [| 0 |];
    let after_insert = outcomes () in
    ignore (Core.Monitor.delete monitor ~table_name:"t" [| 0 |]);
    let after_delete = outcomes () in
    Core.Monitor.stop monitor;
    (first, cached, after_insert, after_delete)
  in
  Alcotest.(check bool) "sequential = parallel monitor" true (run 1 = run 3)

let prop_parallel_differential =
  QCheck.Test.make ~count:100
    ~name:"parallel check_all verdicts = sequential (100 random batches)"
    (QCheck.pair
       (QCheck.triple Gen.formula_arbitrary Gen.formula_arbitrary Gen.formula_arbitrary)
       (QCheck.int_range 0 1_000))
    (fun ((f1, f2, f3), seed) ->
      let db = Gen.random_db seed in
      let well_typed f =
        let f = Gen.close f in
        match Core.Typing.infer db f with
        | _ -> Some f
        | exception Core.Typing.Type_error _ -> None
      in
      (* duplicates included on purpose: identical constraints must
         yield identical verdicts wherever they land *)
      let fs = List.filter_map well_typed [ f1; f2; f3; f1 ] in
      let index = Core.Index.create db in
      C.ensure_indices index fs;
      verdicts (C.check_all index fs) = verdicts (C.check_all ~jobs:3 index fs))

(* -- run_ordered: the claimed-batch scheduler ------------------------------- *)

(* Skewed costs under an expensive-first order: results still index
   like the input, and every task ran exactly once. *)
let test_run_ordered_skewed_costs () =
  with_pool ~jobs:4 @@ fun pool ->
  let n = 12 in
  let ran = Array.init n (fun _ -> Atomic.make 0) in
  let tasks =
    Array.init n (fun i () ->
        (* task 0 is the pathological one; the rest are cheap *)
        Unix.sleepf (if i = 0 then 0.05 else 0.002);
        Atomic.incr ran.(i);
        i * 10)
  in
  let order = Array.init n Fun.id in
  let results = Pool.run_ordered pool ~order tasks in
  Alcotest.(check (list int)) "results keep input indexing"
    (List.init n (fun i -> i * 10))
    (Array.to_list results);
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1 (Atomic.get c))
    ran

(* The execution order is a scheduling hint, never a semantic input:
   any permutation yields the same result array. *)
let test_run_ordered_order_independence () =
  with_pool ~jobs:3 @@ fun pool ->
  let n = 9 in
  let tasks = Array.init n (fun i () -> (i * i) + 1) in
  let expected = Pool.run_ordered pool tasks in
  let reverse = Array.init n (fun k -> n - 1 - k) in
  let interleaved = Array.init n (fun k -> (k * 4) mod n) in
  List.iter
    (fun order ->
      Alcotest.(check (list int)) "same results under permuted order"
        (Array.to_list expected)
        (Array.to_list (Pool.run_ordered pool ~order tasks)))
    [ reverse; interleaved ]

let test_run_ordered_rejects_non_permutation () =
  with_pool ~jobs:2 @@ fun pool ->
  let tasks = Array.init 4 (fun i () -> i) in
  let refused order =
    match Pool.run_ordered pool ~order tasks with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "wrong length" true (refused [| 0; 1; 2 |]);
  Alcotest.(check bool) "duplicate index" true (refused [| 0; 1; 2; 2 |]);
  Alcotest.(check bool) "out of range" true (refused [| 0; 1; 2; 7 |])

(* First failure in INPUT order wins even when the execution order ran
   a later-input failure first, and every task settles before the
   raise. *)
let test_run_ordered_exception_input_order () =
  with_pool ~jobs:2 @@ fun pool ->
  let settled = Atomic.make 0 in
  let tasks =
    [|
      (fun () -> Atomic.incr settled);
      (fun () -> raise (Boom 1));
      (fun () -> raise (Boom 2));
      (fun () -> Atomic.incr settled);
    |]
  in
  (* run the i=2 failure before the i=1 failure *)
  match Pool.run_ordered pool ~order:[| 2; 3; 1; 0 |] tasks with
  | _ -> Alcotest.fail "run_ordered should re-raise"
  | exception Boom n ->
    Alcotest.(check int) "first failure in input order" 1 n;
    Alcotest.(check int) "all tasks settled" 2 (Atomic.get settled)

(* -- delta hydration -------------------------------------------------------- *)

let parity_formula =
  Gen.close
    (F.Forall
       ( [ "x1_1"; "x2_1" ],
         F.Implies
           ( F.Atom ("r", [ F.Var "x1_1"; F.Var "x2_1" ]),
             F.Exists ([ "x3_1" ], F.Atom ("s", [ F.Var "x2_1"; F.Var "x3_1" ])) ) ))

(* A delta-caught-up replica must be indistinguishable from a freshly
   full-hydrated one: same entry shapes, same membership, same
   verdicts — after several mutation bursts replayed purely from the
   op journal. *)
let test_replica_delta_parity () =
  let index = small_index () in
  let replica = Core.Replica.create index in
  Core.Replica.prepare replica;
  ignore (Core.Replica.get replica);
  Alcotest.(check int) "one full hydration to start" 1 (Core.Replica.stats replica).Core.Replica.full;
  let burst tbl_name i =
    let table = Fcv_relation.Database.table index.Core.Index.db tbl_name in
    let row = Array.copy (Fcv_relation.Table.row table (i mod Fcv_relation.Table.cardinality table)) in
    (* duplicate an existing row twice, delete one occurrence: net +1
       occurrence, zero new codes — pure row traffic *)
    Core.Index.insert index ~table_name:tbl_name row;
    Core.Replica.note_insert replica ~table_name:tbl_name row;
    Core.Index.insert index ~table_name:tbl_name row;
    Core.Replica.note_insert replica ~table_name:tbl_name row;
    ignore (Core.Index.delete index ~table_name:tbl_name row);
    Core.Replica.note_delete replica ~table_name:tbl_name row
  in
  List.iteri
    (fun i tbl ->
      burst tbl i;
      Core.Replica.prepare replica;
      ignore (Core.Replica.get replica))
    [ "r"; "s"; "r" ];
  let st = Core.Replica.stats replica in
  Alcotest.(check int) "still exactly one full hydration" 1 st.Core.Replica.full;
  Alcotest.(check int) "three delta catch-ups" 3 st.Core.Replica.delta;
  Alcotest.(check int) "nine ops replayed" 9 st.Core.Replica.delta_ops;
  Alcotest.(check bool) "delta bytes published" true (st.Core.Replica.delta_bytes > 0);
  (* a second replica set hydrates the same master fully, from scratch *)
  let oracle = Core.Replica.create index in
  Core.Replica.prepare oracle;
  let via_delta = Core.Replica.get replica and via_full = Core.Replica.get oracle in
  let sizes ix =
    List.map (fun e -> Core.Index.entry_size ix e) (Core.Index.entries ix)
  in
  Alcotest.(check (list int)) "entry sizes agree" (sizes via_full) (sizes via_delta);
  List.iter2
    (fun ed ef ->
      let row = Fcv_relation.Table.row ed.Core.Index.table 0 in
      Alcotest.(check bool) "membership agrees" (Core.Index.entry_mem via_full ef row)
        (Core.Index.entry_mem via_delta ed row))
    (Core.Index.entries via_delta) (Core.Index.entries via_full);
  let rd = C.check via_delta parity_formula
  and rf = C.check via_full parity_formula
  and rm = C.check index parity_formula in
  Alcotest.(check bool) "verdict: delta = full" true (rd.C.outcome = rf.C.outcome);
  Alcotest.(check bool) "verdict: delta = master" true (rd.C.outcome = rm.C.outcome)

(* Content-preserving GC is invisible to replicas: no epoch bump, no
   rehydration, and the delta window survives across it. *)
let test_replica_survives_compact () =
  let index = small_index () in
  let replica = Core.Replica.create index in
  Core.Replica.prepare replica;
  let before = Core.Replica.get replica in
  let v0 = index.Core.Index.structure_version in
  ignore (Core.Index.compact index);
  Alcotest.(check int) "compact preserves structure_version" v0
    index.Core.Index.structure_version;
  Core.Replica.prepare replica;
  let after = Core.Replica.get replica in
  Alcotest.(check bool) "replica reused across compact" true (before == after);
  Alcotest.(check int) "no extra hydration" 1 (Core.Replica.hydrations replica);
  (* the journal still works after the compact: a row op is a delta,
     not a resnapshot *)
  let table = Fcv_relation.Database.table index.Core.Index.db "r" in
  let row = Array.copy (Fcv_relation.Table.row table 0) in
  Core.Index.insert index ~table_name:"r" row;
  Core.Replica.note_insert replica ~table_name:"r" row;
  Core.Replica.prepare replica;
  ignore (Core.Replica.get replica);
  let st = Core.Replica.stats replica in
  Alcotest.(check int) "delta catch-up after compact" 1 st.Core.Replica.delta;
  Alcotest.(check int) "still one full hydration" 1 st.Core.Replica.full;
  Alcotest.(check bool) "verdicts agree" true
    ((C.check (Core.Replica.get replica) parity_formula).C.outcome
    = (C.check index parity_formula).C.outcome)

(* A structural change (entry rebuild) bumps structure_version, which
   poisons the op journal: the next note degrades to an invalidation
   and workers fall back to a full hydration — never a delta replay
   against mismatched block widths. *)
let test_replica_structural_fallback () =
  let index = small_index () in
  let replica = Core.Replica.create index in
  Core.Replica.prepare replica;
  ignore (Core.Replica.get replica);
  let v0 = index.Core.Index.structure_version in
  (match Core.Index.entries index with
  | e :: _ -> ignore (Core.Index.rebuild_entry index e)
  | [] -> Alcotest.fail "expected entries");
  Alcotest.(check bool) "rebuild bumps structure_version" true
    (index.Core.Index.structure_version > v0);
  let table = Fcv_relation.Database.table index.Core.Index.db "s" in
  let row = Array.copy (Fcv_relation.Table.row table 0) in
  Core.Index.insert index ~table_name:"s" row;
  Core.Replica.note_insert replica ~table_name:"s" row;
  Core.Replica.prepare replica;
  ignore (Core.Replica.get replica);
  let st = Core.Replica.stats replica in
  Alcotest.(check int) "fell back to a second full hydration" 2 st.Core.Replica.full;
  Alcotest.(check int) "no delta replay across a structural change" 0
    st.Core.Replica.delta;
  Alcotest.(check bool) "verdicts agree after fallback" true
    ((C.check (Core.Replica.get replica) parity_formula).C.outcome
    = (C.check index parity_formula).C.outcome)

(* The monitor end of the delta wiring: streamed updates delta-note
   instead of invalidating, so the second parallel validation catches
   workers up without any new full hydration. *)
let test_monitor_delta_hydration () =
  (* dirty BOTH watched tables so the revalidation has two stale
     constraints and takes the pooled path *)
  let mutate m =
    Core.Monitor.insert m ~table_name:"t" [| 0 |];
    ignore (Core.Monitor.delete m ~table_name:"t" [| 0 |]);
    Core.Monitor.insert m ~table_name:"r" [| 0; 0 |];
    ignore (Core.Monitor.delete m ~table_name:"r" [| 0; 0 |])
  in
  let add_constraints m =
    ignore (Core.Monitor.add m "forall a, b . r(a, b) -> (exists c . s(b, c))");
    ignore (Core.Monitor.add m "forall a . t(a) -> (exists b . r(a, b))")
  in
  let seq_verdicts =
    let m2 = Core.Monitor.create (Core.Index.create (Gen.random_db 23)) in
    add_constraints m2;
    ignore (Core.Monitor.validate m2);
    mutate m2;
    Core.Monitor.verdicts m2
  in
  let monitor = Core.Monitor.create (Core.Index.create (Gen.random_db 23)) in
  Core.Monitor.set_jobs monitor 2;
  add_constraints monitor;
  ignore (Core.Monitor.validate monitor);
  mutate monitor;
  let par_verdicts = Core.Monitor.verdicts monitor in
  (match Core.Monitor.replica_stats monitor with
  | Some st ->
    (* which worker domain claims which task is the scheduler's
       business, so assert the scheduling-independent shape: full
       hydrations are bounded by the worker count (never paid per
       epoch), a delta was published, and its 4 row ops were replayed
       by whoever caught up *)
    Alcotest.(check bool) "full hydrations bounded by workers" true
      (st.Core.Replica.full <= 2);
    Alcotest.(check bool) "a delta window was published" true
      (st.Core.Replica.delta_bytes > 0);
    Alcotest.(check int) "the row epoch was replayed, not rehydrated" 4
      st.Core.Replica.delta_ops
  | None -> Alcotest.fail "parallel monitor should expose replica stats");
  Core.Monitor.stop monitor;
  Alcotest.(check bool) "verdicts match the sequential monitor" true
    (par_verdicts = seq_verdicts)

(* -- granularity: batching and splitting ------------------------------------ *)

let test_split_conjuncts () =
  let r x y = F.Atom ("r", [ F.Var x; F.Var y ]) in
  let splits =
    C.split_conjuncts (F.Forall ([ "x"; "y" ], F.And (r "x" "y", r "y" "x")))
  in
  Alcotest.(check int) "conjunction under forall splits" 2 (List.length splits);
  List.iter
    (fun p ->
      match p with
      | F.Forall ([ "x"; "y" ], _) -> ()
      | _ -> Alcotest.fail "every part keeps the full prefix")
    splits;
  (* a part that drops a prefix variable blocks the split: x is not
     free in t(y), so ∀x,y is not distributable without changing
     vacuous-truth semantics *)
  let blocked =
    C.split_conjuncts
      (F.Forall ([ "x"; "y" ], F.And (r "x" "y", F.Atom ("t", [ F.Var "y" ]))))
  in
  Alcotest.(check int) "partial-prefix conjunction does not split" 1
    (List.length blocked);
  (* top-level conjunctions always split *)
  Alcotest.(check int) "top-level conjunction splits" 2
    (List.length (C.split_conjuncts (F.And (Gen.close (r "x" "y"), F.True))))

let batches_granularity =
  (* chunk everything, split nothing *)
  { C.batch_under_ms = infinity; max_batch = 2; split_over_ms = infinity; max_parts = 8 }

let splits_granularity =
  (* split everything splittable, batch nothing *)
  { C.batch_under_ms = 0.; max_batch = 1; split_over_ms = 0.; max_parts = 8 }

let well_typed_batch db fs =
  List.filter_map
    (fun f ->
      let f = Gen.close f in
      match Core.Typing.infer db f with
      | _ -> Some f
      | exception Core.Typing.Type_error _ -> None)
    fs

(* Chunking tiny constraints into shared tasks must not change any
   verdict OR any method: same checks run, just fewer task envelopes. *)
let prop_batching_differential =
  QCheck.Test.make ~count:50
    ~name:"batched check_all_pooled verdicts+methods = sequential (50 batches)"
    (QCheck.pair
       (QCheck.triple Gen.formula_arbitrary Gen.formula_arbitrary Gen.formula_arbitrary)
       (QCheck.int_range 0 1_000))
    (fun ((f1, f2, f3), seed) ->
      let db = Gen.random_db seed in
      let fs = well_typed_batch db [ f1; f2; f3; f1; f2 ] in
      let index = Core.Index.create db in
      C.ensure_indices index fs;
      let sequential = verdicts (C.check_all index fs) in
      with_pool ~jobs:3 @@ fun pool ->
      let replica = Core.Replica.create index in
      sequential
      = verdicts (C.check_all_pooled ~granularity:batches_granularity ~pool replica fs))

(* Splitting a conjunction into part tasks preserves the OUTCOME (the
   method may legitimately differ per part — merged as the weakest,
   so only the verdict is the invariant). *)
let prop_splitting_differential =
  QCheck.Test.make ~count:50
    ~name:"split check_all_pooled outcomes = sequential (50 batches)"
    (QCheck.pair
       (QCheck.triple Gen.formula_arbitrary Gen.formula_arbitrary Gen.formula_arbitrary)
       (QCheck.int_range 0 1_000))
    (fun ((f1, f2, f3), seed) ->
      let db = Gen.random_db seed in
      (* conjoin pairs so there is usually something to split *)
      let fs =
        well_typed_batch db
          [ F.And (f1, f2); F.And (f2, f3); f1; F.And (f3, F.And (f1, f2)) ]
      in
      let index = Core.Index.create db in
      C.ensure_indices index fs;
      let outcomes rs = List.map (fun r -> r.C.outcome) rs in
      let sequential = outcomes (C.check_all index fs) in
      with_pool ~jobs:3 @@ fun pool ->
      let replica = Core.Replica.create index in
      sequential
      = outcomes (C.check_all_pooled ~granularity:splits_granularity ~pool replica fs))

(* Measured costs are a scheduling hint only: wildly wrong ones must
   not change anything. *)
let test_costs_are_only_a_hint () =
  let index = small_index () in
  let fs = [ parity_formula; Gen.close F.True; parity_formula ] in
  let sequential = verdicts (List.map (C.check index) fs) in
  with_pool ~jobs:2 @@ fun pool ->
  let replica = Core.Replica.create index in
  let costs = [ Some 1e6; None; Some 0.0001 ] in
  Alcotest.(check bool) "verdicts independent of cost estimates" true
    (sequential = verdicts (C.check_all_pooled ~costs ~pool replica fs));
  match C.check_all_pooled ~costs:[ Some 1. ] ~pool replica fs with
  | _ -> Alcotest.fail "mismatched costs length should be refused"
  | exception Invalid_argument _ -> ()

let () =
  Registry.register "parallel"
    [
      Alcotest.test_case "pool: results keep submission order" `Quick
        test_order_independence;
      Alcotest.test_case "pool: worker exceptions propagate" `Quick
        test_exception_propagation;
      Alcotest.test_case "pool: shutdown drains queued tasks" `Quick
        test_shutdown_drains_queue;
      Alcotest.test_case "pool: size bounds" `Quick test_pool_size_bounds;
      Alcotest.test_case "replica: epoch reuse and invalidation" `Quick
        test_replica_epoch_reuse;
      Alcotest.test_case "replica: get without prepare is refused" `Quick
        test_replica_get_requires_prepare;
      Alcotest.test_case "replica: checks agree with master" `Quick
        test_replica_checks_agree;
      Alcotest.test_case "check_all: jobs=1 equals sequential" `Quick
        test_jobs1_equivalence;
      Alcotest.test_case "check_all: parallel matches sequential" `Quick
        test_check_all_parallel_matches_sequential;
      Alcotest.test_case "monitor: parallel validate matches sequential" `Quick
        test_monitor_parallel_validate;
      Gen.qcheck_case prop_parallel_differential;
    ];
  Registry.register "parallel_delta"
    [
      Alcotest.test_case "run_ordered: skewed costs, complete and input-indexed" `Quick
        test_run_ordered_skewed_costs;
      Alcotest.test_case "run_ordered: execution order never changes results" `Quick
        test_run_ordered_order_independence;
      Alcotest.test_case "run_ordered: non-permutations are refused" `Quick
        test_run_ordered_rejects_non_permutation;
      Alcotest.test_case "run_ordered: first input-order failure wins" `Quick
        test_run_ordered_exception_input_order;
      Alcotest.test_case "replica: delta catch-up equals full hydration" `Quick
        test_replica_delta_parity;
      Alcotest.test_case "replica: content-preserving GC is invisible" `Quick
        test_replica_survives_compact;
      Alcotest.test_case "replica: structural change falls back to full" `Quick
        test_replica_structural_fallback;
      Alcotest.test_case "monitor: row epochs hydrate via delta" `Quick
        test_monitor_delta_hydration;
      Alcotest.test_case "checker: split_conjuncts keeps full prefixes" `Quick
        test_split_conjuncts;
      Alcotest.test_case "checker: costs are only a scheduling hint" `Quick
        test_costs_are_only_a_hint;
      Gen.qcheck_case prop_batching_differential;
      Gen.qcheck_case prop_splitting_differential;
    ]
