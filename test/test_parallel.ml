(** Parallel validation: the domain pool ({!Fcv_util.Pool}), the
    per-worker index replicas ({!Core.Replica}), and the property that
    parallel {!Core.Checker.check_all} verdicts are identical to the
    sequential run — deterministic unit tests plus a QCheck
    differential over random constraint batches.

    Determinism: {!Gen.qcheck_case} pins the QCheck seed ([QCHECK_SEED]
    overrides, default = the one bench/ci.sh exports) and prints the
    failing seed on a counterexample. *)

module Pool = Fcv_util.Pool
module C = Core.Checker
module F = Core.Formula

let with_pool ~jobs f =
  let pool = Pool.create ~name:"test" ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* -- pool ------------------------------------------------------------------- *)

(* Results keep submission order however the scheduler interleaves the
   tasks: later tasks finish first (earlier ones sleep longest). *)
let test_order_independence () =
  with_pool ~jobs:4 @@ fun pool ->
  let results =
    Pool.run_list pool
      (List.init 16 (fun i () ->
           Unix.sleepf (float_of_int (16 - i) /. 2_000.);
           i * i))
  in
  Alcotest.(check (list int)) "input order" (List.init 16 (fun i -> i * i)) results

exception Boom of int

let test_exception_propagation () =
  with_pool ~jobs:2 @@ fun pool ->
  let ok = Pool.submit pool (fun () -> 1) in
  let bad = Pool.submit pool (fun () -> raise (Boom 7)) in
  Alcotest.(check int) "healthy task unaffected" 1 (Pool.await ok);
  (match Pool.await bad with
  | _ -> Alcotest.fail "await should re-raise the worker exception"
  | exception Boom 7 -> ());
  Alcotest.(check bool) "peek never raises" true (Pool.peek bad = None);
  (* run_list: first failure in INPUT order wins, after all settle *)
  let witness = Atomic.make 0 in
  (match
     Pool.run_list pool
       [
         (fun () -> Atomic.incr witness);
         (fun () -> raise (Boom 1));
         (fun () -> raise (Boom 2));
         (fun () -> Atomic.incr witness);
       ]
   with
  | _ -> Alcotest.fail "run_list should re-raise"
  | exception Boom n ->
    Alcotest.(check int) "first failure in input order" 1 n;
    Alcotest.(check int) "all tasks settled before the raise" 2 (Atomic.get witness))

(* Shutdown drains tasks still queued at the time of the call. *)
let test_shutdown_drains_queue () =
  let pool = Pool.create ~jobs:1 () in
  let gate = Pool.submit pool (fun () -> Unix.sleepf 0.05) in
  (* with one worker busy on [gate], these are certainly still queued *)
  let queued = List.init 8 (fun i -> Pool.submit pool (fun () -> i + 100)) in
  Pool.shutdown pool;
  Pool.await gate;
  List.iteri
    (fun i fut -> Alcotest.(check int) "queued task completed" (i + 100) (Pool.await fut))
    queued;
  (match Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should be refused"
  | exception Invalid_argument _ -> ());
  (* idempotent *)
  Pool.shutdown pool

let test_pool_size_bounds () =
  Alcotest.(check int) "size" 3 (with_pool ~jobs:3 Pool.size);
  (match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs=0 should be refused"
  | exception Invalid_argument _ -> ());
  match Pool.create ~jobs:1000 () with
  | _ -> Alcotest.fail "jobs=1000 should be refused"
  | exception Invalid_argument _ -> ()

(* -- replicas --------------------------------------------------------------- *)

let small_index () =
  let db = Gen.random_db 7 in
  let index = Core.Index.create db in
  List.iter
    (fun table_name ->
      ignore (Core.Index.add index ~table_name ~strategy:Core.Ordering.Prob_converge ()))
    [ "r"; "s"; "t" ];
  index

(* The epoch machinery: replicas hydrate once per epoch per domain and
   are reused until an invalidation.  Exercised on the calling domain —
   DLS works there too, and it keeps the counts deterministic. *)
let test_replica_epoch_reuse () =
  let index = small_index () in
  let replica = Core.Replica.create index in
  Alcotest.(check int) "no hydration yet" 0 (Core.Replica.hydrations replica);
  Core.Replica.prepare replica;
  let r1 = Core.Replica.get replica in
  let r2 = Core.Replica.get replica in
  Alcotest.(check bool) "same epoch reuses the replica" true (r1 == r2);
  Alcotest.(check int) "one hydration" 1 (Core.Replica.hydrations replica);
  Core.Replica.invalidate replica;
  Core.Replica.prepare replica;
  let r3 = Core.Replica.get replica in
  Alcotest.(check bool) "invalidation forces a rebuild" true (r3 != r1);
  Alcotest.(check int) "two hydrations" 2 (Core.Replica.hydrations replica);
  (* replicas share the database but never the manager *)
  Alcotest.(check bool) "shared db" true (r3.Core.Index.db == index.Core.Index.db);
  Alcotest.(check bool) "private manager" true
    (Core.Index.mgr r3 != Core.Index.mgr index)

let test_replica_get_requires_prepare () =
  let replica = Core.Replica.create (small_index ()) in
  match Core.Replica.get replica with
  | _ -> Alcotest.fail "get without prepare should be refused"
  | exception Invalid_argument _ -> ()

(* A replica answers checks exactly like its master. *)
let test_replica_checks_agree () =
  let index = small_index () in
  let f =
    Gen.close
      (F.Forall
         ( [ "x1_1"; "x2_1" ],
           F.Implies
             ( F.Atom ("r", [ F.Var "x1_1"; F.Var "x2_1" ]),
               F.Exists ([ "x3_1" ], F.Atom ("s", [ F.Var "x2_1"; F.Var "x3_1" ])) ) ))
  in
  let replica = Core.Replica.create index in
  Core.Replica.prepare replica;
  let on_master = C.check index f and on_replica = C.check (Core.Replica.get replica) f in
  Alcotest.(check bool) "same outcome" true (on_master.C.outcome = on_replica.C.outcome);
  Alcotest.(check bool) "same method" true
    (on_master.C.method_used = on_replica.C.method_used)

(* -- parallel check_all ----------------------------------------------------- *)

let verdicts results =
  List.map (fun r -> (r.C.outcome, r.C.method_used)) results

(* jobs=1 must not even touch the pool machinery: same code path as
   the plain sequential map. *)
let test_jobs1_equivalence () =
  let index = small_index () in
  let fs =
    List.map Gen.close
      [ F.Exists ([ "x1_1" ], F.Atom ("t", [ F.Var "x1_1" ])); F.True; F.Not F.True ]
  in
  Alcotest.(check bool) "jobs=1 = sequential" true
    (verdicts (C.check_all index fs) = verdicts (C.check_all ~jobs:1 index fs))

let test_check_all_parallel_matches_sequential () =
  let rng = Fcv_util.Rng.create 11 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 120; courses = 20; violators = 3 }
  in
  let sources =
    [
      "forall s, c . takes(s, c) -> (exists a . course(c, a))";
      "forall s, c . takes(s, c) -> (exists d, k . student(s, d, k))";
      "forall s, k . student(s, 0, k) -> (exists c . takes(s, c) and course(c, 0))";
      "forall s, d1, k1, d2, k2 . student(s, d1, k1) and student(s, d2, k2) -> d1 = d2";
      "forall c, a1, a2 . course(c, a1) and course(c, a2) -> a1 = a2";
      "forall s, k . student(s, 1, k) -> (exists c . takes(s, c) and course(c, 1))";
    ]
  in
  let fs = List.map Core.Fol_parser.of_string sources in
  let index = Core.Index.create db in
  C.ensure_indices index fs;
  let sequential = verdicts (C.check_all index fs) in
  Alcotest.(check bool) "jobs=4 matches" true
    (sequential = verdicts (C.check_all ~jobs:4 index fs));
  (* more workers than constraints: the pool is clamped, not starved *)
  Alcotest.(check bool) "jobs=16 matches" true
    (sequential = verdicts (C.check_all ~jobs:16 index fs))

(* The monitor end of the wiring: parallel validation returns the same
   reports, replicas survive update + invalidate cycles, and stop()
   releases the workers. *)
let test_monitor_parallel_validate () =
  let run jobs =
    let db = Gen.random_db 23 in
    let monitor = Core.Monitor.create (Core.Index.create db) in
    Core.Monitor.set_jobs monitor jobs;
    let outcomes () =
      List.map
        (fun rep -> (rep.Core.Monitor.outcome, rep.Core.Monitor.fresh))
        (Core.Monitor.validate monitor)
    in
    ignore (Core.Monitor.add monitor "forall b . t(0) -> (exists c . s(b, c))");
    ignore (Core.Monitor.add monitor "forall a, b . r(a, b) -> (exists c . s(b, c))");
    ignore (Core.Monitor.add monitor "forall a . t(a) -> (exists b . r(a, b))");
    let first = outcomes () in
    (* cached pass, then dirty one table and revalidate *)
    let cached = outcomes () in
    Core.Monitor.insert monitor ~table_name:"t" [| 0 |];
    let after_insert = outcomes () in
    ignore (Core.Monitor.delete monitor ~table_name:"t" [| 0 |]);
    let after_delete = outcomes () in
    Core.Monitor.stop monitor;
    (first, cached, after_insert, after_delete)
  in
  Alcotest.(check bool) "sequential = parallel monitor" true (run 1 = run 3)

let prop_parallel_differential =
  QCheck.Test.make ~count:100
    ~name:"parallel check_all verdicts = sequential (100 random batches)"
    (QCheck.pair
       (QCheck.triple Gen.formula_arbitrary Gen.formula_arbitrary Gen.formula_arbitrary)
       (QCheck.int_range 0 1_000))
    (fun ((f1, f2, f3), seed) ->
      let db = Gen.random_db seed in
      let well_typed f =
        let f = Gen.close f in
        match Core.Typing.infer db f with
        | _ -> Some f
        | exception Core.Typing.Type_error _ -> None
      in
      (* duplicates included on purpose: identical constraints must
         yield identical verdicts wherever they land *)
      let fs = List.filter_map well_typed [ f1; f2; f3; f1 ] in
      let index = Core.Index.create db in
      C.ensure_indices index fs;
      verdicts (C.check_all index fs) = verdicts (C.check_all ~jobs:3 index fs))

let () =
  Registry.register "parallel"
    [
      Alcotest.test_case "pool: results keep submission order" `Quick
        test_order_independence;
      Alcotest.test_case "pool: worker exceptions propagate" `Quick
        test_exception_propagation;
      Alcotest.test_case "pool: shutdown drains queued tasks" `Quick
        test_shutdown_drains_queue;
      Alcotest.test_case "pool: size bounds" `Quick test_pool_size_bounds;
      Alcotest.test_case "replica: epoch reuse and invalidation" `Quick
        test_replica_epoch_reuse;
      Alcotest.test_case "replica: get without prepare is refused" `Quick
        test_replica_get_requires_prepare;
      Alcotest.test_case "replica: checks agree with master" `Quick
        test_replica_checks_agree;
      Alcotest.test_case "check_all: jobs=1 equals sequential" `Quick
        test_jobs1_equivalence;
      Alcotest.test_case "check_all: parallel matches sequential" `Quick
        test_check_all_parallel_matches_sequential;
      Alcotest.test_case "monitor: parallel validate matches sequential" `Quick
        test_monitor_parallel_validate;
      Gen.qcheck_case prop_parallel_differential;
    ]
