(** Unit tests for {!Fcv_util.Telemetry}: counter/gauge/histogram
    semantics, span nesting, JSON-lines export round-trip, the
    disabled fast path, and the end-to-end budget-fallback regression
    (a tiny node budget must produce exactly one budget-trip event and
    a correct SQL-fallback verdict). *)

module T = Fcv_util.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Telemetry is global state: every test runs against a fresh enabled
   instance and leaves it disabled. *)
let with_telemetry f () =
  T.reset ();
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    f

let test_counters () =
  let c = T.counter "test.c" in
  check_int "fresh counter is zero" 0 (T.counter_value c);
  T.incr c;
  T.incr ~by:41 c;
  check_int "incr accumulates" 42 (T.counter_value c);
  check "interning returns the same counter" true (T.counter "test.c" == c);
  T.reset ();
  check_int "reset zeroes" 0 (T.counter_value c)

let test_gauges () =
  let g = T.gauge "test.g" in
  T.gauge_set g 7;
  T.gauge_set g 3;
  check_int "gauge holds last value" 3 (T.gauge_value g);
  check_int "gauge tracks peak" 7 (T.gauge_peak g);
  T.gauge_set g 11;
  check_int "peak moves up" 11 (T.gauge_peak g)

let test_histograms () =
  let h = T.histogram "test.h" in
  List.iter (T.observe h) [ 1.0; 1.5; 3.0; 1024.0 ];
  check_int "count" 4 (T.histogram_count h);
  check (Printf.sprintf "sum = %f" (T.histogram_sum h)) true
    (abs_float (T.histogram_sum h -. 1029.5) < 1e-9);
  let buckets = T.histogram_buckets h in
  (* log2 buckets: 1.0 and 1.5 share [1,2); 3.0 in [2,4); 1024 in [1024,2048) *)
  check "bucket lows" true
    (List.map fst buckets = [ 1.0; 2.0; 1024.0 ]
    && List.map snd buckets = [ 2; 1; 1 ])

let test_span_nesting () =
  let v =
    T.with_span "outer" (fun () ->
        T.with_span "inner" (fun () -> 21 * 2))
  in
  check_int "with_span returns the body's value" 42 v;
  let paths =
    List.filter_map
      (fun ev ->
        match (T.Json.member "kind" ev, T.Json.member "path" ev) with
        | Some (T.String "span"), Some (T.String p) -> Some p
        | _ -> None)
      (T.events ())
  in
  (* inner completes (and records) first *)
  check "nested paths" true (paths = [ "outer/inner"; "outer" ]);
  (* the stack unwinds even when the body raises *)
  (try T.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let v2 = T.with_span "after" (fun () -> 1) in
  check_int "span stack survives exceptions" 1 v2;
  let paths2 =
    List.filter_map
      (fun ev ->
        match (T.Json.member "kind" ev, T.Json.member "path" ev) with
        | Some (T.String "span"), Some (T.String p) -> Some p
        | _ -> None)
      (T.events ())
  in
  check "no stale frame after an exception" true
    (List.mem "after" paths2 && not (List.exists (fun p -> p = "boom/after") paths2))

let test_jsonl_round_trip () =
  T.incr ~by:3 (T.counter "rt.counter");
  T.observe (T.histogram "rt.hist") 2.5;
  T.event "rt.event"
    [
      ("answer", T.Int 42);
      ("pi", T.Float 3.25);
      ("label", T.String "quotes \" and \\ and\nnewline");
      ("flag", T.Bool true);
      ("nothing", T.Null);
      ("list", T.List [ T.Int 1; T.Int 2 ]);
    ];
  let lines =
    String.split_on_char '\n' (T.jsonl ()) |> List.filter (fun l -> l <> "")
  in
  check "export is non-empty" true (List.length lines >= 3);
  List.iter
    (fun line ->
      let parsed = T.Json.of_string line in
      (* canonical: parse(print(parse(line))) = parse(line) *)
      let reprinted = T.Json.of_string (T.Json.to_string parsed) in
      check ("round-trips: " ^ line) true (parsed = reprinted))
    lines;
  (* the event line carries its fields through the export *)
  let ev =
    List.find
      (fun l ->
        match T.Json.member "kind" (T.Json.of_string l) with
        | Some (T.String "rt.event") -> true
        | _ -> false)
      lines
    |> T.Json.of_string
  in
  check "int field" true (T.Json.member "answer" ev = Some (T.Int 42));
  check "string field" true
    (T.Json.member "label" ev = Some (T.String "quotes \" and \\ and\nnewline"));
  check "list field" true (T.Json.member "list" ev = Some (T.List [ T.Int 1; T.Int 2 ]))

let test_json_parser_errors () =
  List.iter
    (fun s ->
      match T.Json.of_string s with
      | exception T.Json.Parse_error _ -> ()
      | j -> Alcotest.failf "parsed %S to %s" s (T.Json.to_string j))
    [ ""; "{"; "[1,"; "{\"a\":}"; "truex"; "\"unterminated" ]

let test_disabled_is_noop () =
  (* with_telemetry enabled us; turn it off and hammer the API *)
  T.disable ();
  let c = T.counter "off.c" in
  let g = T.gauge "off.g" in
  let h = T.histogram "off.h" in
  T.incr ~by:100 c;
  T.gauge_set g 9;
  T.observe h 1.0;
  T.event "off.event" [ ("x", T.Int 1) ];
  let v = T.with_span "off.span" (fun () -> 5) in
  check_int "span still runs the body" 5 v;
  check_int "counter untouched" 0 (T.counter_value c);
  check_int "gauge untouched" 0 (T.gauge_peak g);
  check_int "histogram untouched" 0 (T.histogram_count h);
  check_int "no events recorded" 0 (List.length (T.events ()));
  check_int "nothing dropped" 0 (T.dropped_events ())

(* -- budget-fallback regression ------------------------------------------------ *)

(* A non-FD-shaped constraint, so the checker takes the generic
   compile path (the FD fast path would otherwise trip the budget a
   second time on its own). *)
let fallback_constraint = "forall x, y . r(x, y) -> (exists c . s(y, c))"

let test_budget_fallback () =
  let db = Gen.random_db 42 in
  let f = Core.Fol_parser.of_string fallback_constraint in
  let index = Core.Index.create db in
  Core.Checker.ensure_indices index [ f ];
  let expected = Core.Naive_eval.holds db f in
  (* leave just enough headroom that compilation, not index building,
     trips the budget *)
  let mgr = Core.Index.mgr index in
  Fcv_bdd.Manager.set_max_nodes mgr (Fcv_bdd.Manager.size mgr + 8);
  let r = Core.Checker.check index f in
  check "fell back off the BDD path" true (r.Core.Checker.method_used <> Core.Checker.Bdd);
  check "fallback verdict matches the naive evaluator" expected
    (r.Core.Checker.outcome = Core.Checker.Satisfied);
  check "abandoned BDD attempt was accounted" true (r.Core.Checker.bdd_overhead_ms >= 0.);
  (* a budget trip charges the whole fallback run to fallback_ms *)
  check "fallback_ms is the fallback's elapsed time" true
    (r.Core.Checker.fallback_ms = r.Core.Checker.elapsed_ms);
  let trips =
    List.filter
      (fun ev -> T.Json.member "kind" ev = Some (T.String "bdd.budget_trip"))
      (T.events ())
  in
  check_int "exactly one budget-trip event" 1 (List.length trips);
  (match trips with
  | [ ev ] ->
    check "trip records the budget" true
      (T.Json.member "budget" ev = Some (T.Int (Fcv_bdd.Manager.max_nodes mgr)))
  | _ -> ());
  let fallbacks =
    List.filter
      (fun ev -> T.Json.member "kind" ev = Some (T.String "check.fallback"))
      (T.events ())
  in
  check_int "exactly one fallback event" 1 (List.length fallbacks);
  match fallbacks with
  | [ ev ] ->
    (match T.Json.member "method" ev with
    | Some (T.String m) ->
      check_string "fallback method matches the result" (Core.Checker.method_name r.Core.Checker.method_used) m
    | _ -> Alcotest.fail "fallback event lacks a method field");
    (match T.Json.member "bdd_overhead_ms" ev with
    | Some (T.Float ms) -> check "overhead is non-negative" true (ms >= 0.)
    | _ -> Alcotest.fail "fallback event lacks bdd_overhead_ms")
  | _ -> ()

(* Regression: choosing SQL up-front (the planner's [Force_sql]) pays
   neither the abandoned BDD attempt nor a "fallback" — both cost
   fields must be exactly zero, unlike the budget-trip path above. *)
let test_force_sql_costs_nothing_extra () =
  let db = Gen.random_db 42 in
  let f = Core.Fol_parser.of_string fallback_constraint in
  let index = Core.Index.create db in
  Core.Checker.ensure_indices index [ f ];
  let expected = Core.Naive_eval.holds db f in
  let r = Core.Checker.check ~strategy:Core.Checker.Force_sql index f in
  check "method is SQL" true (r.Core.Checker.method_used = Core.Checker.Sql);
  check "verdict matches the naive evaluator" expected
    (r.Core.Checker.outcome = Core.Checker.Satisfied);
  check "no abandoned-attempt cost when SQL was chosen up-front" true
    (r.Core.Checker.bdd_overhead_ms = 0.);
  check "no fallback cost when SQL was chosen up-front" true
    (r.Core.Checker.fallback_ms = 0.);
  check_int "no budget-trip events" 0
    (List.length
       (List.filter
          (fun ev -> T.Json.member "kind" ev = Some (T.String "bdd.budget_trip"))
          (T.events ())))

(* The planner's cache telemetry: every plan outcome ticks exactly one
   of planner.{hit,miss,probe,replans}, in step with Planner.stats. *)
let test_planner_counters () =
  let module P = Core.Planner in
  let db = Gen.random_db 7 in
  let f = Core.Fol_parser.of_string fallback_constraint in
  let index = Core.Index.create db in
  Core.Checker.ensure_indices index [ f ];
  let p = P.create ~config:{ P.default_config with P.probe_every = 1 } () in
  (* expensive measured SQL history pins the first plan to BDD *)
  let slow_sql =
    {
      Core.Checker.outcome = Core.Checker.Satisfied;
      method_used = Core.Checker.Sql;
      elapsed_ms = 5.0;
      bdd_overhead_ms = 0.;
      fallback_ms = 0.;
      rewritten = f;
      check = Core.Rewrite.Check_valid;
      rate = None;
    }
  in
  let trip = { slow_sql with Core.Checker.elapsed_ms = 1.0; bdd_overhead_ms = 3.0 } in
  List.iter (P.observe p f) [ slow_sql; slow_sql; slow_sql ];
  ignore (P.plan p index f) (* miss *);
  ignore (P.plan p index f) (* hit *);
  List.iter (P.observe p f) [ trip; trip ] (* decision flip drops the cache *);
  ignore (P.plan p index f) (* replan, cached SQL *);
  ignore (P.plan p index f) (* hit (probe clock 0 -> 1) *);
  ignore (P.plan p index f) (* ε-probe *);
  let counters = [ ("planner.hit", 2); ("planner.miss", 1); ("planner.probe", 1); ("planner.replans", 1) ] in
  List.iter
    (fun (name, expect) -> check_int name expect (T.counter_value (T.counter name)))
    counters;
  let s = P.stats p in
  check_int "stats.hits agrees" s.P.hits (T.counter_value (T.counter "planner.hit"));
  check_int "stats.misses agrees" s.P.misses (T.counter_value (T.counter "planner.miss"));
  check_int "stats.probes agrees" s.P.probes (T.counter_value (T.counter "planner.probe"));
  check_int "stats.replans agrees" s.P.replans
    (T.counter_value (T.counter "planner.replans"))

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick (with_telemetry test_counters);
    Alcotest.test_case "gauge peak tracking" `Quick (with_telemetry test_gauges);
    Alcotest.test_case "histogram log buckets" `Quick (with_telemetry test_histograms);
    Alcotest.test_case "span nesting paths" `Quick (with_telemetry test_span_nesting);
    Alcotest.test_case "JSON-lines round-trip" `Quick (with_telemetry test_jsonl_round_trip);
    Alcotest.test_case "JSON parse errors" `Quick (with_telemetry test_json_parser_errors);
    Alcotest.test_case "disabled path records nothing" `Quick
      (with_telemetry test_disabled_is_noop);
    Alcotest.test_case "budget fallback: one trip, correct verdict" `Quick
      (with_telemetry test_budget_fallback);
    Alcotest.test_case "Force_sql up-front: zero overhead and fallback cost" `Quick
      (with_telemetry test_force_sql_costs_nothing_extra);
    Alcotest.test_case "planner cache counters" `Quick
      (with_telemetry test_planner_counters);
  ]

let () = Registry.register "telemetry" suite
