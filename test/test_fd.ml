(** Finite-domain layer tests: block encodings, comparators, active
    domain guards and guarded quantification — including the
    non-power-of-two domain sizes the paper's data has. *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module F = Fcv_bdd.Fd
module Sat = Fcv_bdd.Sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Evaluate a single-block predicate on every code in [0, 2^width). *)
let truth m block f =
  let env = Array.make (M.nvars m) false in
  List.init (1 lsl F.width block) (fun c ->
      F.set_env block c env;
      M.eval m f env)

let test_width_allocation () =
  let m = M.create ~nvars:0 () in
  let b10 = F.alloc m ~name:"x" ~dom_size:10 in
  let b1 = F.alloc m ~name:"y" ~dom_size:1 in
  let b16 = F.alloc m ~name:"z" ~dom_size:16 in
  check_int "dom 10 needs 4 bits" 4 (F.width b10);
  check_int "dom 1 needs 1 bit" 1 (F.width b1);
  check_int "dom 16 needs 4 bits" 4 (F.width b16)

let test_paper_bit_counts () =
  (* §5.2: ncs = ceil(log 281)+ceil(log 10894)+ceil(log 50) = 29,
     csz = ceil(log 10894)+ceil(log 50)+ceil(log 17557) = 35 *)
  let w n = Fcv_util.Bits.width n in
  check_int "ncs bits" 29 (w 281 + w 10894 + w 50);
  check_int "csz bits" 35 (w 10894 + w 50 + w 17557)

let test_eq_const () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:10 in
  let f = F.eq_const m b 6 in
  List.iteri
    (fun c v -> check (Printf.sprintf "code %d" c) (c = 6) v)
    (truth m b f)

let test_eq_const_out_of_domain () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:10 in
  Alcotest.check_raises "rejects code 10"
    (Invalid_argument "Fd.eq_const: value out of domain") (fun () ->
      ignore (F.eq_const m b 10))

let test_lt_const () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:16 in
  let f = F.lt_const m b 11 in
  List.iteri (fun c v -> check (Printf.sprintf "lt code %d" c) (c < 11) v) (truth m b f);
  check "lt 0 is false" true (F.lt_const m b 0 = M.zero);
  check "lt 16 is true" true (F.lt_const m b 16 = M.one)

let test_valid_guard () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:10 in
  let v = F.valid m b in
  List.iteri (fun c ok -> check (Printf.sprintf "valid %d" c) (c < 10) ok) (truth m b v);
  let b8 = F.alloc m ~name:"y" ~dom_size:8 in
  check "power-of-two domain has trivial guard" true (F.valid m b8 = M.one)

let test_in_set () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:12 in
  let f = F.in_set m b [ 3; 7; 7; 0 ] in
  List.iteri
    (fun c v -> check (Printf.sprintf "in_set %d" c) (List.mem c [ 0; 3; 7 ]) v)
    (truth m b f);
  check "empty set" true (F.in_set m b [] = M.zero)

let test_eq_blocks_same_width () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:8 in
  let b2 = F.alloc m ~name:"y" ~dom_size:8 in
  let f = F.eq_blocks m b1 b2 in
  let env = Array.make (M.nvars m) false in
  for c1 = 0 to 7 do
    for c2 = 0 to 7 do
      F.set_env b1 c1 env;
      F.set_env b2 c2 env;
      check (Printf.sprintf "%d=%d" c1 c2) (c1 = c2) (M.eval m f env)
    done
  done

let test_eq_blocks_mixed_width () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:4 in
  (* 2 bits *)
  let b2 = F.alloc m ~name:"y" ~dom_size:16 in
  (* 4 bits *)
  let f = F.eq_blocks m b1 b2 in
  let env = Array.make (M.nvars m) false in
  for c1 = 0 to 3 do
    for c2 = 0 to 15 do
      F.set_env b1 c1 env;
      F.set_env b2 c2 env;
      check (Printf.sprintf "%d=%d" c1 c2) (c1 = c2) (M.eval m f env)
    done
  done

let test_tuple_minterm () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:5 in
  let b2 = F.alloc m ~name:"y" ~dom_size:3 in
  let f = F.tuple_minterm m [ (b1, 4); (b2, 2) ] in
  check "count = 1" true (Sat.count m f = 1.);
  let env = Array.make (M.nvars m) false in
  F.set_env b1 4 env;
  F.set_env b2 2 env;
  check "the tuple" true (M.eval m f env);
  F.set_env b2 1 env;
  check "other tuple" false (M.eval m f env)

let test_guarded_exists () =
  (* domain {0..9}; f true only at the invalid code 12: ∃x over the
     active domain must be FALSE even though a bit pattern satisfies f *)
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:10 in
  let f12 =
    F.cube m (List.init (F.width b) (fun j -> (F.level_of_bit b j, Fcv_util.Bits.test 12 j)))
  in
  check "unguarded sees it" true (O.is_satisfiable (F.exists_bits m b f12));
  check "guarded does not" true (O.is_false (F.exists m b f12));
  check "guarded sees valid code" true (O.is_true (F.exists m b (F.eq_const m b 9)))

let test_guarded_forall () =
  (* f = (x < 10): true on the whole active domain, false on 10..15;
     guarded ∀ is true, unguarded ∀ is false *)
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:10 in
  let f = F.lt_const m b 10 in
  check "guarded forall true" true (O.is_true (F.forall m b f));
  check "unguarded forall false" true (O.is_false (F.forall_bits m b f));
  check "guarded forall of x=3 is false" true (O.is_false (F.forall m b (F.eq_const m b 3)))

let test_quantifier_removes_support () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:6 in
  let b2 = F.alloc m ~name:"y" ~dom_size:6 in
  let f = O.band m (F.eq_const m b1 3) (F.eq_const m b2 4) in
  let g = F.exists m b1 f in
  check "support excludes quantified block" true
    (List.for_all
       (fun l -> not (Array.exists (( = ) l) b1.F.levels))
       (M.support m g));
  check "remaining predicate" true (g = F.eq_const m b2 4)

let test_rename_blocks () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:10 in
  let b2 = F.alloc m ~name:"y" ~dom_size:10 in
  let f = F.in_set m b1 [ 2; 9 ] in
  let g = F.rename m f ~src:b1 ~dst:b2 in
  check "renamed equals rebuilt" true (g = F.in_set m b2 [ 2; 9 ]);
  check "rename to self is id" true (F.rename m f ~src:b1 ~dst:b1 = f)

let test_rename_domain_mismatch () =
  let m = M.create ~nvars:0 () in
  let b1 = F.alloc m ~name:"x" ~dom_size:10 in
  let b2 = F.alloc m ~name:"y" ~dom_size:20 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Fd.rename: domain mismatch")
    (fun () -> ignore (F.rename m (F.eq_const m b1 1) ~src:b1 ~dst:b2))

let test_env_roundtrip () =
  let m = M.create ~nvars:0 () in
  let b = F.alloc m ~name:"x" ~dom_size:1000 in
  let env = Array.make (M.nvars m) false in
  List.iter
    (fun c ->
      F.set_env b c env;
      check_int (Printf.sprintf "roundtrip %d" c) c (F.read_env b env))
    [ 0; 1; 511; 512; 999 ]

(* property: eq_const through set_env/eval for random domains *)
let prop_eq_const_semantics =
  QCheck.Test.make ~count:100 ~name:"eq_const holds exactly at its code"
    QCheck.(pair (int_range 2 300) (int_range 0 299))
    (fun (dom, c) ->
      QCheck.assume (c < dom);
      let m = M.create ~nvars:0 () in
      let b = F.alloc m ~name:"x" ~dom_size:dom in
      let f = F.eq_const m b c in
      let env = Array.make (M.nvars m) false in
      List.for_all
        (fun c' ->
          F.set_env b c' env;
          M.eval m f env = (c = c'))
        (List.init dom Fun.id))

let prop_in_set_count =
  QCheck.Test.make ~count:100 ~name:"in_set model count equals set size"
    QCheck.(pair (int_range 2 200) (list_of_size Gen.(int_range 0 20) (int_range 0 199)))
    (fun (dom, codes) ->
      let codes = List.sort_uniq compare (List.filter (fun c -> c < dom) codes) in
      let m = M.create ~nvars:0 () in
      let b = F.alloc m ~name:"x" ~dom_size:dom in
      let f = F.in_set m b codes in
      Sat.count m f = float_of_int (List.length codes))

let prop_lt_const_count =
  QCheck.Test.make ~count:100 ~name:"lt_const model count equals threshold"
    QCheck.(pair (int_range 2 400) (int_range 0 400))
    (fun (dom, c) ->
      QCheck.assume (c <= dom);
      let m = M.create ~nvars:0 () in
      let b = F.alloc m ~name:"x" ~dom_size:dom in
      Sat.count m (F.lt_const m b c) = float_of_int c)

let suite =
  [
    Alcotest.test_case "block widths" `Quick test_width_allocation;
    Alcotest.test_case "paper's 29/35 bit counts" `Quick test_paper_bit_counts;
    Alcotest.test_case "eq_const" `Quick test_eq_const;
    Alcotest.test_case "eq_const domain check" `Quick test_eq_const_out_of_domain;
    Alcotest.test_case "lt_const" `Quick test_lt_const;
    Alcotest.test_case "valid guard" `Quick test_valid_guard;
    Alcotest.test_case "in_set" `Quick test_in_set;
    Alcotest.test_case "eq_blocks same width" `Quick test_eq_blocks_same_width;
    Alcotest.test_case "eq_blocks mixed width" `Quick test_eq_blocks_mixed_width;
    Alcotest.test_case "tuple minterm" `Quick test_tuple_minterm;
    Alcotest.test_case "guarded exists" `Quick test_guarded_exists;
    Alcotest.test_case "guarded forall" `Quick test_guarded_forall;
    Alcotest.test_case "quantifier removes support" `Quick test_quantifier_removes_support;
    Alcotest.test_case "rename blocks" `Quick test_rename_blocks;
    Alcotest.test_case "rename domain mismatch" `Quick test_rename_domain_mismatch;
    Alcotest.test_case "env roundtrip" `Quick test_env_roundtrip;
    QCheck_alcotest.to_alcotest prop_eq_const_semantics;
    QCheck_alcotest.to_alcotest prop_in_set_count;
    QCheck_alcotest.to_alcotest prop_lt_const_count;
  ]

let () = Registry.register "fd" suite
