(** Serialisation tests: BDD save/load round-trips and logical-index
    persistence. *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module R = Fcv_relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_bdd_roundtrip () =
  let m = M.create ~nvars:8 () in
  let f =
    O.bor m
      (O.band m (M.ithvar m 0) (M.nithvar m 3))
      (O.bxor m (M.ithvar m 5) (M.ithvar m 7))
  in
  let g = O.bimp m f (M.ithvar m 2) in
  let path = Filename.temp_file "fcv" ".bdd" in
  Fcv_bdd.Io.save_file m ~roots:[ f; g; M.zero; M.one ] path;
  let m2 = M.create ~nvars:8 () in
  (match Fcv_bdd.Io.load_file m2 path with
  | [ f'; g'; z'; o' ] ->
    check "terminals preserved" true (z' = M.zero && o' = M.one);
    check_int "same node count f" (M.node_count m f) (M.node_count m2 f');
    (* semantic equality on all assignments *)
    let ok = ref true in
    for mask = 0 to 255 do
      let env = Array.init 8 (fun i -> (mask lsr i) land 1 = 1) in
      if M.eval m f env <> M.eval m2 f' env then ok := false;
      if M.eval m g env <> M.eval m2 g' env then ok := false
    done;
    check "same semantics" true !ok
  | _ -> Alcotest.fail "wrong root count");
  Sys.remove path

let test_bdd_load_into_populated_manager () =
  (* loading must hash-cons against existing nodes *)
  let m = M.create ~nvars:4 () in
  let f = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  let path = Filename.temp_file "fcv" ".bdd" in
  Fcv_bdd.Io.save_file m ~roots:[ f ] path;
  let m2 = M.create ~nvars:4 () in
  let pre = O.band m2 (M.ithvar m2 0) (M.ithvar m2 1) in
  (match Fcv_bdd.Io.load_file m2 path with
  | [ f' ] -> check "deduplicated against existing" true (f' = pre)
  | _ -> Alcotest.fail "wrong root count");
  Sys.remove path

let test_bdd_rejects_garbage () =
  let path = Filename.temp_file "fcv" ".bdd" in
  let oc = open_out path in
  output_string oc "not a bdd file\n";
  close_out oc;
  let m = M.create ~nvars:2 () in
  check "bad magic rejected" true
    (match Fcv_bdd.Io.load_file m path with
    | exception Fcv_bdd.Io.Format_error _ -> true
    | _ -> false);
  Sys.remove path

let test_index_roundtrip () =
  let rng = Fcv_util.Rng.create 33 in
  let db = Fcv_datagen.Customers.make_db () in
  let table, _ = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:2000 in
  let index = Core.Index.create db in
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "city"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "city"; "state"; "zipcode" ]
       ~strategy:Core.Ordering.Prob_converge ());
  let path = Filename.temp_file "fcv" ".idx" in
  Core.Index_io.save_file index path;
  let index2 = Core.Index_io.load_file db path in
  check_int "both entries restored" 2 (List.length (Core.Index.entries index2));
  (* restored indices answer membership identically *)
  let e1 = List.nth (Core.Index.entries index) 0 in
  let e1' =
    List.find
      (fun e -> e.Core.Index.attrs = e1.Core.Index.attrs)
      (Core.Index.entries index2)
  in
  let ok = ref true in
  R.Table.iter table (fun row ->
      let sub = Array.map (fun a -> row.(a)) e1.Core.Index.attrs in
      if not (Core.Index.entry_mem index2 e1' sub) then ok := false);
  check "restored entry contains all rows" true !ok;
  check_int "same size" (Core.Index.entry_size index e1) (Core.Index.entry_size index2 e1');
  (* maintenance still works after load *)
  let fresh = Array.copy (R.Table.row table 0) in
  ignore (Core.Index.delete index2 ~table_name:"cust" fresh);
  Core.Index.insert index2 ~table_name:"cust" fresh;
  check "maintenance after load" true
    (Core.Index.entry_mem index2 e1' (Array.map (fun a -> fresh.(a)) e1'.Core.Index.attrs));
  (* the checker runs against a loaded store *)
  let c =
    Core.Fol_parser.of_string
      "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2"
  in
  let r = Core.Checker.check index2 c in
  let r0 = Core.Checker.check index c in
  check "loaded store agrees with original" true (r.Core.Checker.outcome = r0.Core.Checker.outcome);
  Sys.remove path

let test_index_domain_drift () =
  let db = R.Database.create () in
  let dict = R.Dict.of_int_range "d" 4 in
  R.Database.add_domain db dict;
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("x", "d") ] in
  R.Table.insert_coded t [| 1 |];
  let index = Core.Index.create db in
  ignore (Core.Index.add index ~table_name:"t" ~strategy:Core.Ordering.Prob_converge ());
  let path = Filename.temp_file "fcv" ".idx" in
  Core.Index_io.save_file index path;
  (* growth since the save is fine: the entry is restored at its saved
     width and rebuilds on its first out-of-capacity update, exactly
     as it would have live *)
  for i = 4 to 40 do
    ignore (R.Dict.intern dict (R.Value.Int i))
  done;
  let index2 = Core.Index_io.load_file db path in
  let e = List.hd (Core.Index.entries index2) in
  check_int "saved width restored" 4 e.Core.Index.blocks.(0).Fcv_bdd.Fd.dom_size;
  check "membership intact" true (Core.Index.entry_mem index2 e [| 1 |]);
  Core.Index.insert index2 ~table_name:"t" [| 9 |];
  let e' = List.hd (Core.Index.entries_for index2 "t") in
  check "out-of-capacity update rebuilds the loaded entry" true
    (Core.Index.entry_mem index2 e' [| 9 |]);
  (* a dictionary SMALLER than a saved domain means different data *)
  let db2 = R.Database.create () in
  R.Database.add_domain db2 (R.Dict.of_int_range "d" 2);
  let _ = R.Database.create_table db2 ~name:"t" ~attrs:[ ("x", "d") ] in
  check "shrunken domain rejected" true
    (match Core.Index_io.load_file db2 path with
    | exception Core.Index_io.Format_error _ -> true
    | _ -> false);
  Sys.remove path

let test_manager_compact () =
  let m = M.create ~nvars:8 () in
  (* create garbage: chain of intermediates, keep only the last *)
  let f = ref (M.ithvar m 0) in
  for i = 1 to 7 do
    f := O.bxor m !f (M.ithvar m i)
  done;
  let keep = O.band m !f (M.ithvar m 3) in
  let size_before = M.size m in
  (match M.compact m [ keep ] with
  | [ keep' ] ->
    check "store shrank" true (M.size m < size_before);
    check "store = live nodes" true (M.size m = M.node_count m keep');
    (* semantics preserved *)
    let ok = ref true in
    for mask = 0 to 255 do
      let env = Array.init 8 (fun i -> (mask lsr i) land 1 = 1) in
      let expected =
        env.(3)
        && List.fold_left (fun acc i -> acc <> env.(i)) false [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      if M.eval m keep' env <> expected then ok := false
    done;
    check "semantics preserved" true !ok;
    (* the manager is still fully usable after compaction *)
    let g = O.bor m keep' (M.ithvar m 7) in
    check "operations still work" true (M.node_count m g > 0)
  | _ -> Alcotest.fail "wrong root count")

let test_index_compact () =
  let rng = Fcv_util.Rng.create 55 in
  let db = Fcv_datagen.Customers.make_db () in
  let table, _ = Fcv_datagen.Customers.generate rng db ~name:"cust" ~rows:1500 in
  let index = Core.Index.create db in
  let e =
    Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "state" ]
      ~strategy:Core.Ordering.Prob_converge ()
  in
  (* churn: updates create dead intermediate roots *)
  for i = 0 to 200 do
    let row = Array.copy (R.Table.row table (i mod R.Table.cardinality table)) in
    ignore (Core.Index.delete index ~table_name:"cust" row);
    Core.Index.insert index ~table_name:"cust" row
  done;
  let reclaimed = Core.Index.compact index in
  check "reclaimed something" true (reclaimed > 0);
  (* index answers unchanged *)
  let ok = ref true in
  R.Table.iter table (fun row ->
      if not (Core.Index.entry_mem index e [| row.(0); row.(3) |]) then ok := false);
  check "entries intact after compaction" true !ok;
  (* checking still works *)
  let c =
    Core.Fol_parser.of_string
      "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2"
  in
  ignore (Core.Checker.check index c)

(* property: save/load/compact all preserve semantics of random BDDs *)
let prop_io_compact_roundtrip =
  QCheck.Test.make ~count:80 ~name:"save/load and compact preserve random BDDs"
    (QCheck.pair (Test_bdd.bexp_arb 6) (Test_bdd.bexp_arb 6))
    (fun (e1, e2) ->
      let m = M.create ~nvars:6 () in
      let f = Test_bdd.build_bexp m e1 in
      let g = Test_bdd.build_bexp m e2 in
      let path = Filename.temp_file "fcv" ".bdd" in
      Fcv_bdd.Io.save_file m ~roots:[ f; g ] path;
      let m2 = M.create ~nvars:6 () in
      let loaded = Fcv_bdd.Io.load_file m2 path in
      Sys.remove path;
      let compacted = M.compact m [ f; g ] in
      match (loaded, compacted) with
      | [ f1; g1 ], [ f2; g2 ] ->
        List.for_all
          (fun env ->
            let expect_f = Test_bdd.eval_bexp env e1 in
            let expect_g = Test_bdd.eval_bexp env e2 in
            M.eval m2 f1 env = expect_f
            && M.eval m2 g1 env = expect_g
            && M.eval m f2 env = expect_f
            && M.eval m g2 env = expect_g)
          (Test_bdd.all_envs 6)
      | _ -> false)

(* Round-trip parity after a mixed update stream: run inserts/deletes
   (including domain growth, so an entry is rebuilt, and a check, so
   scratch blocks occupy manager levels), save the index store and the
   database, reload both into a completely fresh database handle, and
   every constraint must answer identically.  This pins down the
   variable renumbering in Index_io.save: the live manager's level
   space has gaps (dead blocks of the rebuilt entry, scratch), the
   reloaded one is compact. *)
let test_index_parity_after_stream () =
  let db, _, _, _ =
    Fcv_datagen.University.generate (Fcv_util.Rng.create 11)
      { Fcv_datagen.University.default with students = 60; courses = 15; takes_per_student = 2 }
  in
  let index = Core.Index.create db in
  let mon = Core.Monitor.create index in
  let sources =
    [
      "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
      "forall s, c . takes(s, c) -> (exists a . course(c, a))";
    ]
  in
  List.iter (fun s -> ignore (Core.Monitor.add mon s)) sources;
  ignore (Core.Monitor.validate mon);
  (* mixed stream *)
  for i = 0 to 149 do
    let row = [| i mod 60; i mod 15 |] in
    if i mod 3 = 2 then ignore (Core.Monitor.delete mon ~table_name:"takes" row)
    else Core.Monitor.insert mon ~table_name:"takes" row
  done;
  (* domain growth: course code 15 is new, the takes entry rebuilds *)
  let course_dict = R.Database.domain db "course_id" in
  let fresh_course = R.Dict.intern course_dict (R.Value.Int 999) in
  Core.Monitor.insert mon ~table_name:"takes" [| 7; fresh_course |];
  ignore (Core.Monitor.delete mon ~table_name:"course" [| 3; 3 |]);
  ignore (Core.Monitor.validate mon);
  let outcomes m =
    List.map (fun r -> (r.Core.Monitor.constraint_.Core.Monitor.id, r.Core.Monitor.outcome))
      (Core.Monitor.validate m)
    |> List.sort compare
  in
  let expected = outcomes mon in
  check "stream produced a violation" true
    (List.exists (fun (_, o) -> o = Core.Checker.Violated) expected);
  (* save, then reload against a FRESH database handle *)
  let db_buf = Buffer.create 4096 in
  let idx_path = Filename.temp_file "fcv" ".idx" in
  Fcv_server.State.save_db db db_buf;
  Core.Index_io.save_file index idx_path;
  let db' = Fcv_server.State.load_db (Buffer.contents db_buf) in
  let index' = Core.Index_io.load_file db' idx_path in
  let mon' = Core.Monitor.create index' in
  List.iter (fun s -> ignore (Core.Monitor.add mon' s)) sources;
  check "parity on a fresh database handle" true (outcomes mon' = expected);
  (* maintenance parity continues after the reload *)
  Core.Monitor.insert mon ~table_name:"takes" [| 9; 4 |];
  Core.Monitor.insert mon' ~table_name:"takes" [| 9; 4 |];
  ignore (Core.Monitor.delete mon ~table_name:"course" [| 4; 4 |]);
  ignore (Core.Monitor.delete mon' ~table_name:"course" [| 4; 4 |]);
  check "parity after further updates" true (outcomes mon' = outcomes mon);
  Sys.remove idx_path

let suite =
  [
    Alcotest.test_case "manager compact" `Quick test_manager_compact;
    QCheck_alcotest.to_alcotest prop_io_compact_roundtrip;
    Alcotest.test_case "index compact" `Quick test_index_compact;
    Alcotest.test_case "bdd roundtrip" `Quick test_bdd_roundtrip;
    Alcotest.test_case "bdd load dedup" `Quick test_bdd_load_into_populated_manager;
    Alcotest.test_case "bdd rejects garbage" `Quick test_bdd_rejects_garbage;
    Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
    Alcotest.test_case "index domain drift" `Quick test_index_domain_drift;
    Alcotest.test_case "index stream parity on fresh db" `Quick test_index_parity_after_stream;
  ]

let () = Registry.register "io" suite
