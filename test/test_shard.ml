(** Shard routing invariants: the N-shard tier is semantically
    invisible — any request stream answered by a 3-shard tier, a
    1-shard tier and a bare library-level {!Core.Monitor} (driven
    through {!Fcv_server.Mutator}) yields identical acks, identical
    registries and identical verdicts (a QCheck property, shrinking on
    the stream length) — and the on-disk [SHARDS] lineage refuses a
    restart with a different shard count instead of silently
    misrouting tables. *)

module R = Fcv_relation
module P = Fcv_server.Protocol
module Router = Fcv_server.Router
module Shard = Fcv_server.Shard
module Tier = Fcv_server.Tier
module Mutator = Fcv_server.Mutator
module U = Fcv_datagen.University

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpdir () =
  let path = Filename.temp_file "fcv" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let univ_cfg = { U.default with U.students = 20; courses = 8; takes_per_student = 2 }

let make_base () =
  let db, _, _, _ = U.generate (Fcv_util.Rng.create 7) univ_cfg in
  db

let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"
let enrolment = "forall s . student(s, _, _) -> (exists c . takes(s, c))"
let sources = [ curriculum; referential; enrolment ]

(* -- router units ---------------------------------------------------------- *)

let test_router_units () =
  check_int "hash deterministic" (Router.table_hash "takes") (Router.table_hash "takes");
  check_int "1 shard owns everything" 0 (Router.owner ~shards:1 "takes");
  List.iter
    (fun n ->
      List.iter
        (fun t ->
          let o = Router.owner ~shards:n t in
          check (Printf.sprintf "owner of %s in range over %d shards" t n) true
            (o >= 0 && o < n);
          check_int (t ^ " owner stable") o (Router.owner ~shards:n t))
        [ "student"; "course"; "takes" ])
    [ 2; 3; 4; 7 ];
  check_int "closed constraint lands on shard 0" 0 (Router.constraint_shard ~shards:4 []);
  check_int "constraint follows its first watched table"
    (Router.owner ~shards:4 "takes")
    (Router.constraint_shard ~shards:4 [ "takes"; "course" ])

let test_router_watchers () =
  let shards = 3 in
  let cs = Router.constraint_shard ~shards [ "takes"; "course" ] in
  let r = Router.create shards in
  let watched = List.init shards (fun i -> if i = cs then [ "takes"; "course" ] else []) in
  Router.recompute r ~watched;
  List.iter
    (fun t ->
      let targets = Router.mutation_targets r t in
      check_int (t ^ ": owner first") (Router.owner ~shards t) (List.hd targets);
      check (t ^ ": reaches the constraint's shard") true (List.mem cs targets);
      check (t ^ ": no duplicate targets") true
        (List.sort_uniq compare targets = List.sort compare targets);
      check (t ^ ": watches = non-owner membership") true
        (Router.watches r ~shard:cs t = (Router.owner ~shards t <> cs)))
    [ "takes"; "course" ];
  (* a table no constraint watches goes to its owner alone *)
  check "unwatched table has owner-only fan-out" true
    (Router.mutation_targets r "student" = [ Router.owner ~shards "student" ])

(* -- 3-way semantic parity (QCheck, shrinking on stream length) ------------ *)

(* A seeded request stream over the university base: registers (valid,
   duplicate and rejected), unregisters (live and dangling ids),
   inserts/deletes of seen and unseen values, unknown tables, wrong
   arities — everything a client could send. *)
let gen_requests seed n =
  let rng = Fcv_util.Rng.create seed in
  let db = make_base () in
  let names = R.Database.table_names db in
  let tables = List.map (fun n -> (n, R.Database.table db n)) names in
  let cells tbl =
    List.init (R.Table.arity tbl) (fun j ->
        let dict = R.Table.dict tbl j in
        let sz = R.Dict.size dict in
        if Fcv_util.Rng.bernoulli rng 0.85 then
          R.Value.to_string (R.Dict.value dict (Fcv_util.Rng.int rng sz))
        else string_of_int (sz + Fcv_util.Rng.int rng 4))
  in
  List.init n (fun _ ->
      let name, tbl = List.nth tables (Fcv_util.Rng.int rng (List.length tables)) in
      match Fcv_util.Rng.int rng 100 with
      | r when r < 40 -> P.Insert (name, cells tbl)
      | r when r < 60 -> P.Delete (name, cells tbl)
      | r when r < 75 ->
        P.Register { source = List.nth sources (Fcv_util.Rng.int rng 3); id = None }
      | r when r < 80 -> P.Register { source = "forall z . nosuchtable(z)"; id = None }
      | r when r < 90 -> P.Unregister (Fcv_util.Rng.int rng 6)
      | r when r < 95 -> P.Insert ("nonesuch", [ "1" ])
      | _ -> P.Insert (name, "0" :: cells tbl))

(* One request's observable outcome, comparable across tiers: the ack
   fields on success, the error code on rejection. *)
let outcome = function
  | Ok fields -> Ok fields
  | Error (code, _msg) -> Error code

let registry_fingerprint cs =
  List.map (fun r -> (r.Core.Monitor.id, r.Core.Monitor.source)) cs

let prop_shard_parity =
  QCheck.Test.make ~count:40 ~name:"N-shard = 1-shard = library monitor (3-way parity)"
    (QCheck.pair (QCheck.int_range 0 100_000) (QCheck.int_range 0 50))
    (fun (seed, n) ->
      let reqs = gen_requests seed n in
      let t3 = Tier.create_fresh ~fsync:false ~shards:3 ~load_base:make_base () in
      let t1 = Tier.create_fresh ~fsync:false ~shards:1 ~load_base:make_base () in
      let mut = Mutator.create (Core.Monitor.create (Core.Index.create (make_base ()))) in
      let ok = ref true in
      List.iter
        (fun req ->
          let a = outcome (Tier.apply t3 req) in
          let b = outcome (Tier.apply t1 req) in
          let c = outcome (Mutator.apply mut req) in
          if not (a = b && b = c) then ok := false)
        reqs;
      let verdicts_of_monitor m =
        List.sort compare (Core.Monitor.verdicts m)
      in
      let parity =
        !ok
        && Tier.verdicts t3 = Tier.verdicts t1
        && Tier.verdicts t1 = verdicts_of_monitor (Mutator.monitor mut)
        && registry_fingerprint (Tier.constraints t3)
           = registry_fingerprint (Tier.constraints t1)
        && registry_fingerprint (Tier.constraints t1)
           = registry_fingerprint (Core.Monitor.constraints (Mutator.monitor mut))
      in
      Tier.close t3;
      Tier.close t1;
      Core.Monitor.stop (Mutator.monitor mut);
      parity)

(* Deterministic spot check of the cross-shard case: a dangling
   [takes] row violates the referential constraint identically on 1
   and 3 shards (the 3-shard tier sees it through a watcher replica
   kept in sync by fan-out). *)
let test_cross_shard_violation () =
  let run shards =
    let tier = Tier.create_fresh ~fsync:false ~shards ~load_base:make_base () in
    ignore (Tier.register tier referential);
    (match Tier.apply tier (P.Insert ("takes", [ "17"; "999" ])) with
    | Ok _ -> ()
    | Error (_, msg) -> Alcotest.failf "insert rejected: %s" msg);
    let v = Tier.verdicts tier in
    Tier.close tier;
    v
  in
  let v1 = run 1 and v3 = run 3 in
  check "dangling takes violates" true
    (List.exists (fun (_, o) -> o = Core.Checker.Violated) v1);
  check "1-shard and 3-shard verdicts identical" true (v1 = v3)

(* -- re-sharding refusal --------------------------------------------------- *)

let test_resharding_refused () =
  let dir = tmpdir () in
  let tier, _ = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  ignore (Tier.register tier curriculum);
  Tier.snapshot tier;
  Tier.close tier;
  (match Tier.recover ~shards:3 ~state_dir:dir ~load_base:make_base () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "restart with a changed shard count must be refused");
  (* the same count restarts fine, constraints intact *)
  let tier2, _ = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  check_int "restart with the recorded count recovers" 1
    (List.length (Tier.constraints tier2));
  Tier.close tier2;
  (* even with the SHARDS lineage file gone, the layout itself betrays
     the count: inference still refuses the mismatch *)
  Sys.remove (Filename.concat dir "SHARDS");
  (match Tier.recover ~shards:4 ~state_dir:dir ~load_base:make_base () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "layout-inferred shard count must also refuse a mismatch");
  (* a flat legacy (1-shard) directory refuses a sharded restart too *)
  let dir1 = tmpdir () in
  let t1, _ = Tier.recover ~shards:1 ~state_dir:dir1 ~load_base:make_base () in
  ignore (Tier.register t1 curriculum);
  Tier.snapshot t1;
  Tier.close t1;
  match Tier.recover ~shards:2 ~state_dir:dir1 ~load_base:make_base () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flat single-shard directory must refuse a 2-shard restart"

let suite =
  [
    Alcotest.test_case "router: ownership units" `Quick test_router_units;
    Alcotest.test_case "router: watcher fan-out" `Quick test_router_watchers;
    Gen.qcheck_case prop_shard_parity;
    Alcotest.test_case "cross-shard violation parity" `Quick test_cross_shard_violation;
    Alcotest.test_case "re-sharding a state dir is refused" `Quick test_resharding_refused;
  ]

let () = Registry.register "shard" suite
