(** Tests for the continuous-validation monitor and the IND check. *)

module C = Core.Checker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setup () =
  let rng = Fcv_util.Rng.create 17 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 120; courses = 30 }
  in
  let index = Core.Index.create db in
  (db, index)

let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
let enrolment = "forall s . student(s, _, _) -> (exists c . takes(s, c))"
let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"

let test_monitor_basic () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let r1 = Core.Monitor.add mon curriculum in
  let _ = Core.Monitor.add mon referential in
  check "tables recorded" true (r1.Core.Monitor.tables = [ "course"; "student"; "takes" ]);
  let reports = Core.Monitor.validate mon in
  check_int "both checked" 2 (List.length reports);
  check "all fresh on first validation" true
    (List.for_all (fun r -> r.Core.Monitor.fresh) reports);
  check "clean data satisfies" true
    (List.for_all (fun r -> r.Core.Monitor.outcome = C.Satisfied) reports)

let test_monitor_caches_clean_constraints () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let _ = Core.Monitor.add mon curriculum in
  ignore (Core.Monitor.validate mon);
  (* nothing changed: second validation is all cached *)
  let reports = Core.Monitor.validate mon in
  check "cached" true (List.for_all (fun r -> not r.Core.Monitor.fresh) reports)

let test_monitor_detects_injected_violation () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let reg = Core.Monitor.add mon curriculum in
  ignore (Core.Monitor.validate mon);
  (* a fresh CS student with no enrolments violates the curriculum *)
  Core.Monitor.insert mon ~table_name:"student" [| 119; 0; 5 |];
  let reports = Core.Monitor.validate mon in
  (match reports with
  | [ r ] ->
    check "fresh re-check" true r.Core.Monitor.fresh;
    check "violation detected" true (r.Core.Monitor.outcome = C.Violated)
  | _ -> Alcotest.fail "expected one report");
  check "violated list" true
    (List.exists (fun r -> r.Core.Monitor.id = reg.Core.Monitor.id) (Core.Monitor.violated mon))

let test_monitor_dirty_scoping () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let _ = Core.Monitor.add mon curriculum in
  let _ = Core.Monitor.add mon enrolment in
  ignore (Core.Monitor.validate mon);
  (* dirty only the courses table: both constraints watch different
     table sets — curriculum watches course, enrolment does not *)
  Core.Monitor.insert mon ~table_name:"course" [| 29; 1 |];
  let reports = Core.Monitor.validate mon in
  let fresh_of src =
    (List.find (fun r -> r.Core.Monitor.constraint_.Core.Monitor.source = src) reports)
      .Core.Monitor.fresh
  in
  check "curriculum re-checked" true (fresh_of curriculum);
  check "enrolment cached" false (fresh_of enrolment)

let test_monitor_delete_path () =
  let db, index = setup () in
  let mon = Core.Monitor.create index in
  let _ = Core.Monitor.add mon enrolment in
  ignore (Core.Monitor.validate mon);
  (* removing every enrolment of student 0 violates the policy *)
  let takes = Fcv_relation.Database.table db "takes" in
  let victims = ref [] in
  Fcv_relation.Table.iter takes (fun row -> if row.(0) = 0 then victims := Array.copy row :: !victims);
  List.iter (fun row -> ignore (Core.Monitor.delete mon ~table_name:"takes" row)) !victims;
  let reports = Core.Monitor.validate mon in
  check "violated after deletes" true
    (List.exists (fun r -> r.Core.Monitor.outcome = C.Violated) reports)

let test_monitor_remove () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let reg = Core.Monitor.add mon curriculum in
  Core.Monitor.remove mon reg.Core.Monitor.id;
  check_int "no constraints left" 0 (List.length (Core.Monitor.validate mon))

(* Regression: Monitor.remove used to leak the removed constraint's
   index entries and BDD roots forever (and never invalidated
   replicas) — unregistering the last constraint on a table must free
   its nodes on the next GC. *)
let test_remove_frees_index_memory () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let reg = Core.Monitor.add mon referential in
  ignore (Core.Monitor.validate mon);
  check "entries built" true (Core.Index.entries index <> []);
  Core.Monitor.remove mon reg.Core.Monitor.id;
  check_int "takes entries dropped" 0 (List.length (Core.Index.entries_for index "takes"));
  check_int "course entries dropped" 0 (List.length (Core.Index.entries_for index "course"));
  ignore (Core.Monitor.gc mon);
  (* nothing is live: the GC collapses the store to the terminals *)
  check_int "all nodes freed on next GC" 2 (Fcv_bdd.Manager.size (Core.Index.mgr index))

(* Removing one constraint must keep entries on tables another
   registered constraint still watches. *)
let test_remove_keeps_shared_tables () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let r1 = Core.Monitor.add mon curriculum in
  let _ = Core.Monitor.add mon enrolment in
  (* both watch student and takes; only curriculum watches course *)
  Core.Monitor.remove mon r1.Core.Monitor.id;
  check "student entries kept" true (Core.Index.entries_for index "student" <> []);
  check "takes entries kept" true (Core.Index.entries_for index "takes" <> []);
  check_int "course entries dropped" 0 (List.length (Core.Index.entries_for index "course"));
  (* the survivor still validates correctly *)
  check "enrolment still satisfied" true
    (List.for_all
       (fun r -> r.Core.Monitor.outcome = C.Satisfied)
       (Core.Monitor.validate mon))

(* Regression: a node-budget trip inside ensure_indices used to leave
   partially-built index entries behind with the registration failed. *)
let test_add_budget_trip_rolls_back () =
  let rng = Fcv_util.Rng.create 17 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 120; courses = 30 }
  in
  (* a budget too small to build the university indices *)
  let index = Core.Index.create ~max_nodes:30 db in
  let mon = Core.Monitor.create index in
  (match Core.Monitor.add mon curriculum with
  | _ -> Alcotest.fail "expected Node_limit"
  | exception Fcv_bdd.Manager.Node_limit _ -> ());
  check_int "no constraint registered" 0 (List.length (Core.Monitor.constraints mon));
  check_int "no partial entries left" 0 (List.length (Core.Index.entries index));
  (* the monitor is still usable once the budget allows *)
  Fcv_bdd.Manager.set_max_nodes (Core.Index.mgr index) 0;
  let reg = Core.Monitor.add mon curriculum in
  check "registers cleanly afterwards" true (reg.Core.Monitor.id >= 0);
  check "validates" true (Core.Monitor.validate mon <> [])

(* Registration used to be a quadratic [l @ [reg]]; the O(1) prepend
   must still present constraints oldest-first with increasing ids. *)
let test_add_preserves_order () =
  let _, index = setup () in
  let mon = Core.Monitor.create index in
  let r1 = Core.Monitor.add mon curriculum in
  let r2 = Core.Monitor.add mon enrolment in
  let r3 = Core.Monitor.add mon referential in
  check "ids increase" true (r1.Core.Monitor.id < r2.Core.Monitor.id && r2.Core.Monitor.id < r3.Core.Monitor.id);
  check "constraints oldest first" true
    (List.map (fun r -> r.Core.Monitor.id) (Core.Monitor.constraints mon)
    = [ r1.Core.Monitor.id; r2.Core.Monitor.id; r3.Core.Monitor.id ]);
  (* reports come back in registration order too *)
  check "reports in registration order" true
    (List.map (fun r -> r.Core.Monitor.constraint_.Core.Monitor.id) (Core.Monitor.validate mon)
    = [ r1.Core.Monitor.id; r2.Core.Monitor.id; r3.Core.Monitor.id ])

(* -- inclusion dependencies -------------------------------------------------- *)

let test_ind () =
  let db, index = setup () in
  Core.Checker.ensure_indices index
    [ Core.Fol_parser.of_string referential; Core.Fol_parser.of_string enrolment ];
  (* takes[course_id] ⊆ course[course_id] holds by construction *)
  check "takes.course in course" true
    (Core.Fd_check.ind_holds index ~r:"takes" ~attrs_r:[ "course_id" ] ~s:"course"
       ~attrs_s:[ "course_id" ]);
  check "takes.student in student" true
    (Core.Fd_check.ind_holds index ~r:"takes" ~attrs_r:[ "student_id" ] ~s:"student"
       ~attrs_s:[ "student_id" ]);
  (* break it: a takes row referencing a course that exists only if
     inserted; first verify direction sensitivity via reverse IND *)
  let course = Fcv_relation.Database.table db "course" in
  let reverse =
    Core.Fd_check.ind_holds index ~r:"course" ~attrs_r:[ "course_id" ] ~s:"takes"
      ~attrs_s:[ "course_id" ]
  in
  let takes = Fcv_relation.Database.table db "takes" in
  let taken = Hashtbl.create 64 in
  Fcv_relation.Table.iter takes (fun row -> Hashtbl.replace taken row.(1) ());
  check "reverse IND matches ground truth"
    (Fcv_relation.Table.fold course ~init:true ~f:(fun acc row -> acc && Hashtbl.mem taken row.(0)))
    reverse;
  (* arity mismatch rejected *)
  check "arity mismatch" true
    (match
       Core.Fd_check.ind_holds index ~r:"takes" ~attrs_r:[ "course_id" ] ~s:"course"
         ~attrs_s:[]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ind_violation_detected () =
  let db, index = setup () in
  Core.Checker.ensure_indices index [ Core.Fol_parser.of_string referential ];
  (* insert an enrolment for a course id that no course row defines;
     course ids live in a domain of size [courses], so use a code that
     is in-domain but absent from the course table *)
  let course = Fcv_relation.Database.table db "course" in
  let present = Hashtbl.create 32 in
  Fcv_relation.Table.iter course (fun row -> Hashtbl.replace present row.(0) ());
  (* all 30 course ids exist by construction: delete one and re-check *)
  let victim = Fcv_relation.Table.row course 0 in
  let cid = victim.(0) in
  ignore (Core.Index.delete index ~table_name:"course" (Array.copy victim));
  check "IND broken after delete" true
    (Core.Fd_check.ind_holds index ~r:"takes" ~attrs_r:[ "course_id" ] ~s:"course"
       ~attrs_s:[ "course_id" ]
    = false);
  ignore cid

let suite =
  [
    Alcotest.test_case "monitor basics" `Quick test_monitor_basic;
    Alcotest.test_case "monitor caches clean constraints" `Quick test_monitor_caches_clean_constraints;
    Alcotest.test_case "monitor detects injected violation" `Quick test_monitor_detects_injected_violation;
    Alcotest.test_case "monitor dirty scoping" `Quick test_monitor_dirty_scoping;
    Alcotest.test_case "monitor delete path" `Quick test_monitor_delete_path;
    Alcotest.test_case "monitor remove" `Quick test_monitor_remove;
    Alcotest.test_case "remove frees index memory on next GC" `Quick test_remove_frees_index_memory;
    Alcotest.test_case "remove keeps entries shared with survivors" `Quick test_remove_keeps_shared_tables;
    Alcotest.test_case "add rolls back on budget trip" `Quick test_add_budget_trip_rolls_back;
    Alcotest.test_case "add keeps registration order" `Quick test_add_preserves_order;
    Alcotest.test_case "inclusion dependencies" `Quick test_ind;
    Alcotest.test_case "IND violation detected" `Quick test_ind_violation_detected;
  ]

let () = Registry.register "monitor" suite
