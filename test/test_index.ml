(** Logical-index store tests: registration, covering lookup, and the
    §5.2 incremental maintenance (insert/delete) staying consistent
    with a from-scratch rebuild. *)

module R = Fcv_relation
module I = Core.Index

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_db seed ~rows =
  let rng = Fcv_util.Rng.create seed in
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "da" 9);
  R.Database.add_domain db (R.Dict.of_int_range "db" 6);
  R.Database.add_domain db (R.Dict.of_int_range "dc" 11);
  let t =
    R.Database.create_table db ~name:"t" ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ]
  in
  for _ = 1 to rows do
    R.Table.insert_coded t
      [| Fcv_util.Rng.int rng 9; Fcv_util.Rng.int rng 6; Fcv_util.Rng.int rng 11 |]
  done;
  (db, t, rng)

let test_add_and_find () =
  let db, _, _ = make_db 1 ~rows:100 in
  let idx = I.create db in
  let full = I.add idx ~table_name:"t" ~strategy:Core.Ordering.Prob_converge () in
  check_int "full arity" 3 (Array.length full.I.attrs);
  let proj = I.add idx ~table_name:"t" ~attrs:[ "a"; "c" ] ~strategy:(Core.Ordering.Fixed [| 0; 1 |]) () in
  check_int "projection arity" 2 (Array.length proj.I.attrs);
  check "find full" true (I.find_covering idx ~table_name:"t" ~needed:[ 0; 1; 2 ] <> None);
  (match I.find_covering idx ~table_name:"t" ~needed:[ 0; 2 ] with
  | Some e -> check "narrowest first is fine" true (Array.length e.I.attrs >= 2)
  | None -> Alcotest.fail "expected covering entry");
  check "no index on unknown table" true (I.find_covering idx ~table_name:"zzz" ~needed:[] = None)

let test_index_contents () =
  let db, t, _ = make_db 2 ~rows:150 in
  let idx = I.create db in
  let e = I.add idx ~table_name:"t" ~strategy:Core.Ordering.Max_inf_gain () in
  R.Table.iter t (fun row -> check "row indexed" true (I.entry_mem idx e row));
  check "absent row" (R.Table.mem_coded t [| 8; 5; 10 |]) (I.entry_mem idx e [| 8; 5; 10 |])

let test_projection_contents () =
  let db, t, _ = make_db 3 ~rows:150 in
  let idx = I.create db in
  let e = I.add idx ~table_name:"t" ~attrs:[ "a"; "b" ] ~strategy:Core.Ordering.Prob_converge () in
  R.Table.iter t (fun row -> check "projected row indexed" true (I.entry_mem idx e [| row.(0); row.(1) |]))

(* maintenance consistency: apply a random workload of inserts and
   deletes through the index, then compare against a rebuilt index *)
let test_maintenance_consistency () =
  let db, t, rng = make_db 4 ~rows:120 in
  let idx = I.create db in
  let e = I.add idx ~table_name:"t" ~strategy:Core.Ordering.Prob_converge () in
  for _ = 1 to 300 do
    if Fcv_util.Rng.bool rng || R.Table.cardinality t = 0 then
      I.insert idx ~table_name:"t"
        [| Fcv_util.Rng.int rng 9; Fcv_util.Rng.int rng 6; Fcv_util.Rng.int rng 11 |]
    else begin
      let victim = Array.copy (R.Table.row t (Fcv_util.Rng.int rng (R.Table.cardinality t))) in
      ignore (I.delete idx ~table_name:"t" victim)
    end
  done;
  (* rebuild from the mutated base table and compare as sets *)
  let idx2 = I.create db in
  let e2 = I.add idx2 ~table_name:"t" ~strategy:(Core.Ordering.Fixed e.I.order) () in
  let ok = ref true in
  for a = 0 to 8 do
    for b = 0 to 5 do
      for c = 0 to 10 do
        let row = [| a; b; c |] in
        if I.entry_mem idx e row <> I.entry_mem idx2 e2 row then ok := false
      done
    done
  done;
  check "incremental = rebuilt" true !ok

let test_duplicate_aware_deletion () =
  let db, _, _ = make_db 5 ~rows:0 in
  let idx = I.create db in
  let _ = I.add idx ~table_name:"t" ~strategy:Core.Ordering.Prob_converge () in
  let row = [| 1; 2; 3 |] in
  I.insert idx ~table_name:"t" row;
  I.insert idx ~table_name:"t" row;
  let e = List.hd (I.entries_for idx "t") in
  ignore (I.delete idx ~table_name:"t" row);
  check "still present after deleting one of two" true (I.entry_mem idx e row);
  ignore (I.delete idx ~table_name:"t" row);
  check "gone after deleting the second" false (I.entry_mem idx e row)

let test_out_of_domain_growth_rebuilds () =
  let db = R.Database.create () in
  let dict = R.Dict.create "grow" in
  ignore (R.Dict.intern dict (R.Value.Int 0));
  ignore (R.Dict.intern dict (R.Value.Int 1));
  R.Database.add_domain db dict;
  let t = R.Database.create_table db ~name:"g" ~attrs:[ ("x", "grow") ] in
  ignore (R.Table.insert t [| R.Value.Int 0 |]);
  let idx = I.create db in
  let e0 = I.add idx ~table_name:"g" ~strategy:Core.Ordering.Prob_converge () in
  (* interning new values after the index was built: codes 2.. exceed
     the block's one-bit capacity, so the insert must transparently
     rebuild the entry rather than raise or corrupt it *)
  ignore (R.Dict.intern dict (R.Value.Int 2));
  ignore (R.Dict.intern dict (R.Value.Int 3));
  (* the raw single-entry maintenance hook still signals *)
  check "update_entry signals rebuild" true
    (match I.update_entry idx e0 ~insert:true [| 3 |] with
    | exception I.Needs_rebuild _ -> true
    | _ -> false);
  I.insert idx ~table_name:"g" [| 3 |];
  let e = List.hd (I.entries_for idx "g") in
  check "entry replaced" true (e != e0);
  check_int "block widened to the grown domain" 4 e.I.blocks.(0).Fcv_bdd.Fd.dom_size;
  check "new row present" true (I.entry_mem idx e [| 3 |]);
  check "old row retained" true (I.entry_mem idx e [| 0 |]);
  (* incremental maintenance keeps working on the rebuilt entry *)
  check "deletes one occurrence" true (I.delete idx ~table_name:"g" [| 3 |]);
  check "gone after delete" false (I.entry_mem idx e [| 3 |]);
  check_int "base table back to one row" 1 (R.Table.cardinality t)

let test_entry_size_and_build_time () =
  let db, _, _ = make_db 6 ~rows:200 in
  let idx = I.create db in
  let e = I.add idx ~table_name:"t" ~strategy:Core.Ordering.Prob_converge () in
  check "positive size" true (I.entry_size idx e > 2);
  check "build time recorded" true (e.I.build_time >= 0.)

let suite =
  [
    Alcotest.test_case "add and find" `Quick test_add_and_find;
    Alcotest.test_case "index contents" `Quick test_index_contents;
    Alcotest.test_case "projection contents" `Quick test_projection_contents;
    Alcotest.test_case "maintenance consistency" `Quick test_maintenance_consistency;
    Alcotest.test_case "duplicate-aware deletion" `Quick test_duplicate_aware_deletion;
    Alcotest.test_case "domain growth rebuilds in place" `Quick
      test_out_of_domain_growth_rebuilds;
    Alcotest.test_case "entry size / build time" `Quick test_entry_size_and_build_time;
  ]

let () = Registry.register "index" suite
