(** Variable-ordering tests: the heuristics return valid permutations,
    respect Theorem 1 (product structure ⇒ grouped factors), and are
    sane against the exhaustive optimum on small relations. *)

module R = Fcv_relation
module Ord = Core.Ordering

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* R(a0, a1, a2, a3) = R1(a0, a1) x R2(a2, a3): a clean single-product
   relation where factor grouping matters. *)
let product_table seed =
  let rng = Fcv_util.Rng.create seed in
  let db = R.Database.create () in
  for i = 0 to 3 do
    R.Database.add_domain db (R.Dict.of_int_range (Printf.sprintf "d%d" i) 16)
  done;
  let t =
    R.Database.create_table db ~name:"t"
      ~attrs:(List.init 4 (fun i -> (Printf.sprintf "a%d" i, Printf.sprintf "d%d" i)))
  in
  let pairs n = List.init n (fun _ -> (Fcv_util.Rng.int rng 16, Fcv_util.Rng.int rng 16)) in
  let left = List.sort_uniq compare (pairs 24) in
  let right = List.sort_uniq compare (pairs 24) in
  List.iter
    (fun (a, b) ->
      List.iter (fun (c, d) -> R.Table.insert_coded t [| a; b; c; d |]) right)
    left;
  t

let grouped order =
  (* factor {0,1} and factor {2,3} each occupy consecutive positions *)
  let pos x = Array.to_list order |> List.mapi (fun i a -> (a, i)) |> List.assoc x in
  abs (pos 0 - pos 1) = 1 && abs (pos 2 - pos 3) = 1

let test_heuristics_return_permutations () =
  let t = product_table 3 in
  check "maxinf perm" true (Fcv_util.Perm.is_permutation (Ord.max_inf_gain t));
  check "maxinf id3 perm" true (Fcv_util.Perm.is_permutation (Ord.max_inf_gain_id3 t));
  check "probconv perm" true (Fcv_util.Perm.is_permutation (Ord.prob_converge t));
  check "random perm" true
    (Fcv_util.Perm.is_permutation (Ord.random_order (Fcv_util.Rng.create 1) t))

let test_id3_groups_but_figure1_does_not () =
  (* the prose-faithful ID3 gain groups product factors; the paper's
     literal Figure-1 rule picks the attribute LEAST explained by the
     prefix, which anti-groups (see DESIGN.md) *)
  let grouped_count pick =
    List.length (List.filter (fun seed -> grouped (pick (product_table seed))) [ 1; 2; 3; 4; 5 ])
  in
  let id3 = grouped_count Ord.max_inf_gain_id3 in
  let fig1 = grouped_count Ord.max_inf_gain in
  check (Printf.sprintf "id3 groups on most seeds (%d/5)" id3) true (id3 >= 4);
  check (Printf.sprintf "figure-1 groups rarely (%d/5)" fig1) true (fig1 <= 2)

let test_ranking_scores () =
  let t = product_table 21 in
  let cache = Hashtbl.create 64 in
  let pc = Ord.prob_converge t in
  let area o = List.fold_left ( +. ) 0. (Ord.score_prob_converge ~cache t o) in
  (* the greedy's own pick must score at least as well as the reversed
     worst-case interleaving of its choice *)
  let worst = Array.of_list (List.rev (Array.to_list pc)) in
  check "scores are per-prefix keys" true
    (List.length (Ord.score_prob_converge ~cache t pc) = R.Table.arity t - 1);
  check "greedy's area is competitive" true (area pc <= area worst +. 1e-9);
  check "maxinf key length" true
    (List.length (Ord.score_max_inf_gain t pc) = R.Table.arity t)

let test_prob_converge_groups_factors () =
  (* Theorem 1: optimal orderings keep factors adjacent; Prob-Converge
     is designed to find such orderings on product data *)
  let ok = ref 0 in
  List.iter
    (fun seed ->
      let t = product_table seed in
      if grouped (Ord.prob_converge t) then incr ok)
    [ 1; 2; 3; 4; 5 ];
  check ("grouped on most seeds: " ^ string_of_int !ok) true (!ok >= 4)

let test_optimal_groups_factors () =
  let t = product_table 11 in
  let order, _ = Ord.optimal t in
  check "exhaustive optimum groups factors" true (grouped order)

let test_exhaustive_complete_and_sorted () =
  let t = product_table 12 in
  let all = Ord.exhaustive t in
  check_int "4! orderings" 24 (List.length all);
  let sizes = List.map snd all in
  check "sorted ascending" true (List.sort compare sizes = sizes);
  (* all orderings encode the same set: membership invariance spot check *)
  let (o1, _), (o2, _) = (List.hd all, List.nth all 23) in
  let e1 = R.Encode.encode t ~order:o1 in
  let e2 = R.Encode.encode t ~order:o2 in
  let ok = ref true in
  R.Table.iter t (fun row ->
      if not (R.Encode.mem e1 row && R.Encode.mem e2 row) then ok := false);
  check "same set under both orderings" true !ok

let test_heuristics_close_to_optimal_on_products () =
  let alphas =
    List.map
      (fun seed ->
        let t = product_table (100 + seed) in
        let _, opt = Ord.optimal t in
        let pc = Ord.bdd_size t (Ord.prob_converge t) in
        float_of_int pc /. float_of_int opt)
      [ 1; 2; 3 ]
  in
  (* the paper reports beta < 1.5 for Prob-Converge on products *)
  List.iter (fun a -> check (Printf.sprintf "beta %.3f <= 1.5" a) true (a <= 1.5)) alphas

let test_ordering_effect_on_products () =
  (* worst/best ratio must be noticeably > 1 for structured data *)
  let t = product_table 42 in
  let all = Ord.exhaustive t in
  let best = snd (List.hd all) in
  let worst = snd (List.nth all (List.length all - 1)) in
  check
    (Printf.sprintf "worst/best = %.2f > 1.3" (float_of_int worst /. float_of_int best))
    true
    (float_of_int worst /. float_of_int best > 1.3)

let test_resolve_fixed_and_validation () =
  let t = product_table 13 in
  let order = Ord.resolve (Ord.Fixed [| 3; 1; 0; 2 |]) t in
  check "fixed passthrough" true (order = [| 3; 1; 0; 2 |]);
  check "fixed validated" true
    (match Ord.resolve (Ord.Fixed [| 0; 0; 1; 2 |]) t with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_random_order_deterministic_by_seed () =
  let t = product_table 14 in
  let o1 = Ord.resolve (Ord.Random_order 9) t in
  let o2 = Ord.resolve (Ord.Random_order 9) t in
  check "same seed, same order" true (o1 = o2)

let suite =
  [
    Alcotest.test_case "heuristics return permutations" `Quick test_heuristics_return_permutations;
    Alcotest.test_case "ID3 groups, Figure-1 anti-groups" `Quick test_id3_groups_but_figure1_does_not;
    Alcotest.test_case "ranking scores" `Quick test_ranking_scores;
    Alcotest.test_case "Prob-Converge groups product factors" `Quick test_prob_converge_groups_factors;
    Alcotest.test_case "optimal groups product factors" `Quick test_optimal_groups_factors;
    Alcotest.test_case "exhaustive search complete" `Quick test_exhaustive_complete_and_sorted;
    Alcotest.test_case "Prob-Converge near-optimal on products" `Quick test_heuristics_close_to_optimal_on_products;
    Alcotest.test_case "ordering matters on products" `Quick test_ordering_effect_on_products;
    Alcotest.test_case "resolve fixed order" `Quick test_resolve_fixed_and_validation;
    Alcotest.test_case "random order deterministic" `Quick test_random_order_deterministic_by_seed;
  ]

let () = Registry.register "ordering" suite
