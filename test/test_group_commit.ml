(** Group-commit durability regressions, on the {!Fault} crash-model
    file system and on the real one:

    - a power cut {e immediately after} the batched fsync loses
      nothing — every journaled (hence acknowledgeable) mutation of
      every shard replays on recovery;
    - a power cut {e before} the flush is safe the other way round:
      the tier still holds the batch as pending — no acknowledgement
      was ever released — so whatever the cut tears out of the
      un-fsync'd WAL tails was never promised to anyone, and recovery
      still comes up clean on a prefix;
    - a torn WAL tail is repaired per shard: damage to one shard's log
      truncates that shard to its last complete record and leaves the
      other shards' full history alone. *)

module P = Fcv_server.Protocol
module Shard = Fcv_server.Shard
module Tier = Fcv_server.Tier
module Vfs = Fcv_server.Vfs
module State = Fcv_server.State
module Fault = Fcv_sim.Fault
module U = Fcv_datagen.University

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpdir () =
  let path = Filename.temp_file "fcv" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let univ_cfg = { U.default with U.students = 20; courses = 8; takes_per_student = 2 }

let make_base () =
  let db, _, _, _ = U.generate (Fcv_util.Rng.create 7) univ_cfg in
  db

let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"
let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"

(* A burst that touches every table (and, with [referential]
   registered, fans [takes]/[course] mutations across shards). *)
let burst =
  [
    P.Insert ("takes", [ "1"; "999" ]);
    P.Insert ("course", [ "999"; "3" ]);
    P.Insert ("student", [ "777"; "0"; "1" ]);
    P.Delete ("takes", [ "1"; "999" ]);
    P.Insert ("takes", [ "2"; "998" ]);
    P.Delete ("course", [ "2"; "2" ]);
    P.Insert ("takes", [ "3"; "997" ]);
    P.Insert ("course", [ "998"; "1" ]);
  ]

let apply_all tier reqs =
  List.iter
    (fun r ->
      match Tier.apply tier r with
      | Ok _ -> ()
      | Error (_, msg) -> Alcotest.failf "mutation rejected: %s" msg)
    reqs

(* Power cut right after the group commit: the flush's per-shard
   fsyncs cover the whole batch, so recovery must replay every
   journaled record on every shard and reproduce the verdicts
   exactly. *)
let test_acked_batch_survives_power_cut () =
  let dir = "gc-after" in
  let fs = Fault.create ~seed:42 () in
  Vfs.with_backend (Fault.backend fs) @@ fun () ->
  let tier, _ = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  ignore (Tier.register tier referential);
  ignore (Tier.register tier curriculum);
  apply_all tier burst;
  check "window holds the batch" true (Tier.pending tier > 0);
  Tier.flush tier;
  check_int "flush empties the window" 0 (Tier.pending tier);
  let expect = Tier.verdicts tier in
  let journaled = Array.map Shard.journaled (Tier.shards tier) in
  Fault.power_cut fs;
  Fault.restart fs;
  let rtier, rs = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  Array.iteri
    (fun s r ->
      check_int
        (Printf.sprintf "shard %d replays its whole journal" s)
        journaled.(s) r.Shard.replayed)
    rs;
  check "verdicts survive the cut" true (Tier.verdicts rtier = expect)

(* Power cut before the flush: the batch is still pending — no
   acknowledgement was released — so a torn or empty tail is not a
   durability violation; recovery must still come up clean on a
   per-shard prefix, and everything flushed earlier must survive. *)
let test_unacked_batch_never_promised () =
  let dir = "gc-before" in
  let fs = Fault.create ~seed:1337 () in
  Vfs.with_backend (Fault.backend fs) @@ fun () ->
  let tier, _ = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  ignore (Tier.register tier referential);
  Tier.flush tier;
  let acked = Array.map Shard.journaled (Tier.shards tier) in
  apply_all tier burst;
  let journaled = Array.map Shard.journaled (Tier.shards tier) in
  (* the ack gate: the batch is pending, so the server would still be
     holding every staged reply — nothing was promised *)
  check "batch still pending at the cut" true (Tier.pending tier > 0);
  Fault.power_cut fs;
  Fault.restart fs;
  let rtier, rs = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  Array.iteri
    (fun s r ->
      check
        (Printf.sprintf "shard %d recovers a prefix within [acked, journaled]" s)
        true
        (r.Shard.replayed >= acked.(s) && r.Shard.replayed <= journaled.(s)))
    rs;
  (* the flushed registration was acknowledged — it must be there *)
  check_int "acked registration survives" 1 (List.length (Tier.constraints rtier))

(* Torn-tail repair stays per shard on the real file system: garbage
   appended to one shard's WAL truncates only that shard's tail. *)
let test_torn_tail_is_per_shard () =
  let dir = tmpdir () in
  let tier, _ = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  ignore (Tier.register tier referential);
  apply_all tier burst;
  Tier.flush tier;
  let journaled = Array.map Shard.journaled (Tier.shards tier) in
  Tier.close tier;
  let shard_dir s = Filename.concat dir (Printf.sprintf "shard-%d" s) in
  let wal_file s =
    let d = shard_dir s in
    State.wal_path ~dir:d ~gen:(State.current_gen ~dir:d)
  in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (wal_file 1) in
  output_string oc {|{"op":"insert","table":"takes","values":["9"|};
  close_out oc;
  let rtier, rs = Tier.recover ~shards:2 ~state_dir:dir ~load_base:make_base () in
  check_int "undamaged shard replays everything" journaled.(0) rs.(0).Shard.replayed;
  check_int "damaged shard truncates to its last complete record" journaled.(1)
    rs.(1).Shard.replayed;
  check_int "registration intact" 1 (List.length (Tier.constraints rtier));
  Tier.close rtier

let suite =
  [
    Alcotest.test_case "power cut after flush loses nothing" `Quick
      test_acked_batch_survives_power_cut;
    Alcotest.test_case "power cut before flush promised nothing" `Quick
      test_unacked_batch_never_promised;
    Alcotest.test_case "torn WAL tail repaired per shard" `Quick
      test_torn_tail_is_per_shard;
  ]

let () = Registry.register "group_commit" suite
