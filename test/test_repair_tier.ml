(** End-to-end repair on the sharded serving tier, under the crash
    model: a [repair] request with [apply:true] must route its planned
    deletions through the ordinary journaled mutation path, so that a
    power cut after the group commit recovers a tier that is {e still
    repaired} — replayed from the WAL, with no planner involved. *)

module P = Fcv_server.Protocol
module Shard = Fcv_server.Shard
module Tier = Fcv_server.Tier
module Vfs = Fcv_server.Vfs
module Fault = Fcv_sim.Fault
module U = Fcv_datagen.University
module T = Fcv_util.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Few departments so CS is well populated and every planted violator
   materialises. *)
let univ_cfg =
  {
    U.students = 24;
    courses = 8;
    departments = 4;
    areas = 4;
    takes_per_student = 2;
    violators = 3;
  }

let make_base () =
  let db, _, _, _ = U.generate (Fcv_util.Rng.create 11) univ_cfg in
  db

let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"
let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"

let repair_req ?max_deletions ?(strategy = "greedy") apply =
  P.Repair { strategy; max_deletions; apply }

let all_satisfied tier =
  List.for_all (fun (_, o) -> o = Core.Checker.Satisfied) (Tier.verdicts tier)

let applied_count fields =
  match List.assoc_opt "applied" fields with Some (T.Int n) -> n | _ -> -1

(* Plan then apply on a 4-shard Fault-backed tier; cut the power;
   recover: every shard replays its whole journal and the verdicts
   stay clean. *)
let test_apply_survives_crash () =
  let dir = "repair-tier" in
  let fs = Fault.create ~seed:271 () in
  Vfs.with_backend (Fault.backend fs) @@ fun () ->
  let tier, _ = Tier.recover ~shards:4 ~state_dir:dir ~load_base:make_base () in
  ignore (Tier.register tier curriculum);
  ignore (Tier.register tier referential);
  (* a dangling enrolment so the referential rule is violated too *)
  (match Tier.apply tier (P.Insert ("takes", [ "5"; "999" ])) with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "seed insert rejected: %s" m);
  Tier.flush tier;
  check "violated before repair" false (all_satisfied tier);
  check "repair routes to no shard" true (Tier.targets tier (repair_req true) = []);
  (* plan-only is a pure read: same journals, same verdicts *)
  let journaled0 = Array.map Shard.journaled (Tier.shards tier) in
  (match Tier.apply tier (repair_req false) with
  | Ok fields ->
    check_int "plan-only applies nothing" 0 (applied_count fields);
    check "plan-only reports deletions" true (List.mem_assoc "repair" fields)
  | Error (_, m) -> Alcotest.failf "plan-only repair rejected: %s" m);
  check "plan-only journals nothing" true
    (Array.map Shard.journaled (Tier.shards tier) = journaled0);
  check "plan-only repairs nothing" false (all_satisfied tier);
  (* now apply: deletions flow through the normal mutation path *)
  (match Tier.apply tier (repair_req true) with
  | Ok fields -> check "apply deleted something" true (applied_count fields > 0)
  | Error (_, m) -> Alcotest.failf "repair rejected: %s" m);
  check "repair leaves every constraint satisfied" true (all_satisfied tier);
  check "deletions sit in the group-commit window" true (Tier.pending tier > 0);
  Tier.flush tier;
  let journaled = Array.map Shard.journaled (Tier.shards tier) in
  check "repair journaled as ordinary deletes" true
    (Array.exists2 (fun a b -> b > a) journaled0 journaled);
  Fault.power_cut fs;
  Fault.restart fs;
  let rtier, rs = Tier.recover ~shards:4 ~state_dir:dir ~load_base:make_base () in
  Array.iteri
    (fun s r ->
      check_int
        (Printf.sprintf "shard %d replays its whole journal" s)
        journaled.(s) r.Shard.replayed)
    rs;
  check "recovered tier is still repaired" true (all_satisfied rtier)

(* The exact planner's refusal surfaces as a client error, not a
   crash: the curriculum policy is not FD-shaped. *)
let test_exact_refused_over_the_wire () =
  let tier = Tier.create_fresh ~fsync:false ~shards:2 ~load_base:make_base () in
  ignore (Tier.register tier curriculum);
  check "exact on a non-FD constraint is a constraint error" true
    (match Tier.apply tier (repair_req ~strategy:"exact" false) with
    | Error (P.Constraint_error, _) -> true
    | _ -> false);
  check "bad strategy is a bad request" true
    (match Tier.apply tier (P.Repair { strategy = "oracle"; max_deletions = None; apply = false }) with
    | Error (P.Bad_request, _) -> true
    | _ -> false);
  Tier.close tier

(* max_deletions caps the applied repair too. *)
let test_capped_apply () =
  let tier = Tier.create_fresh ~fsync:false ~shards:2 ~load_base:make_base () in
  ignore (Tier.register tier curriculum);
  (match Tier.apply tier (repair_req ~max_deletions:1 true) with
  | Ok fields -> check_int "cap respected tier-wide" 1 (applied_count fields)
  | Error (_, m) -> Alcotest.failf "capped repair rejected: %s" m);
  Tier.close tier

let suite =
  [
    Alcotest.test_case "applied repair survives crash and recovery" `Quick
      test_apply_survives_crash;
    Alcotest.test_case "exact refusal and bad strategy over the wire" `Quick
      test_exact_refused_over_the_wire;
    Alcotest.test_case "capped apply" `Quick test_capped_apply;
  ]

let () = Registry.register "repair_tier" suite
