(** Approximate (thresholded) constraints: the exact sat-count
    machinery ({!Fcv_bdd.Nat}, {!Core.Checker.clears}), the [holds >=
    p .] concrete syntax, the soft-check differential against the
    naive recount, the p = 1.0 ≡ hard metamorphism, and the soft flow
    through monitor, protocol and repair.

    Includes the count-precision regression: a near-threshold rate
    whose float-rounded sat-counts land {e exactly on} the threshold
    — the pre-fix float comparison reports Satisfied, the exact
    comparison correctly reports Violated. *)

module C = Core.Checker
module F = Core.Formula
module N = Fcv_bdd.Nat
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Sat = Fcv_bdd.Sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let same_float a b = Int64.bits_of_float a = Int64.bits_of_float b

(* -- the count-precision fix ------------------------------------------- *)

(* A planted BDD with exactly 2^54 + 1 models over 55 variables:
   var0, plus the single ¬var0 point where vars 1..54 are all set.
   The float walk cannot represent the +1 (spacing at that magnitude
   is 2; ties-to-even rounds to 2^54), the Nat walk can. *)
let test_exact_count_beyond_float () =
  let m = M.create ~nvars:55 () in
  let point =
    List.fold_left
      (fun acc i -> O.band m acc (M.ithvar m i))
      M.one
      (List.init 54 (fun i -> i + 1))
  in
  let root = O.bor m (M.ithvar m 0) (O.band m (O.neg m (M.ithvar m 0)) point) in
  let exact = Sat.count_exact m root in
  check_string "exact count is 2^54 + 1" "18014398509481985" (N.to_string exact);
  check "float count rounds the +1 away" true (Sat.count m root = ldexp 1. 54);
  check "Nat.to_float agrees with the float walk" true
    (N.to_float exact = ldexp 1. 54)

(* The regression ISSUE.md describes: violations = 2^53 + 1 over
   total = 2^55 bindings gives a satisfied fraction of exactly
   0.75 - 2^-55, strictly below a 0.75 threshold.  Rounding the
   violation count to float loses the +1 (ties-to-even), the ratio
   computes to exactly 0.75, and the float comparison flips the
   verdict to Satisfied.  The exact comparison must not. *)
let test_clears_near_threshold () =
  let violations = N.add (N.shift_left N.one 53) N.one in
  let total = N.shift_left N.one 55 in
  let threshold = 0.75 in
  (* the pre-fix arithmetic: float counts, float ratio, float compare *)
  let float_satisfied =
    (N.to_float total -. N.to_float violations) /. N.to_float total >= threshold
  in
  check "float comparison wrongly satisfies" true float_satisfied;
  check "exact comparison correctly violates" false
    (C.clears ~threshold ~violations ~total);
  (* one fewer violation sits exactly on the boundary and must clear *)
  check "boundary rate clears" true
    (C.clears ~threshold ~violations:(N.shift_left N.one 53) ~total);
  (* sanity far from the boundary, both directions *)
  check "clean clears" true
    (C.clears ~threshold:0.999 ~violations:N.zero ~total:(N.of_int 1000));
  check "dirty fails" false
    (C.clears ~threshold:0.999 ~violations:(N.of_int 2) ~total:(N.of_int 1000));
  (* zero total is vacuous at any threshold *)
  check "vacuous" true (C.clears ~threshold:1.0 ~violations:N.zero ~total:N.zero)

(* -- concrete syntax ---------------------------------------------------- *)

let test_spec_parsing () =
  let fd = "forall s, l1, l2 . readings(s, l1) and readings(s, l2) -> l1 = l2" in
  let s = Core.Fol_parser.spec_of_string ("holds >= 0.999 . " ^ fd) in
  check "threshold parsed bit-for-bit" true (same_float s.F.threshold 0.999);
  check "formula parsed" true (s.F.formula = Core.Fol_parser.of_string fd);
  check "soft spec is not hard" false (F.is_hard s);
  (* the optional "on" reads naturally in prose *)
  let s2 = Core.Fol_parser.spec_of_string ("holds on >= 0.5 . " ^ fd) in
  check "holds-on form" true (same_float s2.F.threshold 0.5);
  (* integer literal 1 is the hard threshold *)
  let s3 = Core.Fol_parser.spec_of_string ("holds >= 1 . " ^ fd) in
  check "p = 1 is hard" true (F.is_hard s3);
  (* no prefix: hard *)
  let s4 = Core.Fol_parser.spec_of_string fd in
  check "plain formula is hard" true
    (F.is_hard s4 && s4.F.formula = Core.Fol_parser.of_string fd);
  (* spec_to_string round-trips, threshold bit-for-bit *)
  List.iter
    (fun p ->
      let sp = { F.threshold = p; formula = Core.Fol_parser.of_string fd } in
      let back = Core.Fol_parser.spec_of_string (F.spec_to_string sp) in
      check
        (Printf.sprintf "round-trip threshold %.17g" p)
        true
        (same_float back.F.threshold p && back.F.formula = sp.F.formula))
    [ 0.999; 0.5; 1.0; 0.1; 1. -. ldexp 1. (-20); 0.123456789012345; ldexp 1. (-10) ];
  (* out-of-range thresholds are parse errors *)
  List.iter
    (fun bad ->
      match Core.Fol_parser.spec_of_string (bad ^ fd) with
      | exception Core.Fol_parser.Error _ -> ()
      | _ -> Alcotest.fail ("accepted out-of-range threshold: " ^ bad))
    [ "holds >= 0 . "; "holds >= 0.0 . "; "holds >= 1.5 . "; "holds >= 2 . " ];
  (* trailing garbage after the formula is still rejected *)
  (match Core.Fol_parser.spec_of_string ("holds >= 0.9 . " ^ fd ^ " junk") with
  | exception Core.Fol_parser.Error _ -> ()
  | _ -> Alcotest.fail "accepted trailing garbage")

(* -- p = 1.0 is exactly the classical checker --------------------------- *)

let prop_hard_spec_is_check =
  QCheck.Test.make ~count:100 ~name:"check_spec at p = 1.0 is check (rate = None)"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 1_000))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let hard = C.check index f in
        let spec = C.check_spec index (F.hard f) in
        spec.C.outcome = hard.C.outcome
        && spec.C.rate = None
        && spec.C.method_used = hard.C.method_used)

(* -- soft differential: checker vs naive recount ------------------------ *)

let thresholds = [| 0.1; 0.25; 0.5; 0.75; 0.9; 0.999 |]

(* The BDD rate counts over the grounded witness space (vacuous
   ∀-variables are projected away); the naive recount enumerates every
   binding.  Both scale numerator and denominator by the same factor,
   so outcomes agree exactly and the correctly-rounded float ratios
   agree bit for bit — that is what this property pins down.  The
   bit-for-bit {e count} equality (no vacuity in play) is asserted on
   the FD acceptance test below. *)
let prop_soft_differential =
  QCheck.Test.make ~count:150
    ~name:"soft verdict and rate agree with the naive recount at every threshold"
    (QCheck.triple Gen.formula_arbitrary (QCheck.int_range 0 1_000)
       (QCheck.int_range 0 (Array.length thresholds - 1)))
    (fun (f, seed, ti) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing ->
        let threshold = thresholds.(ti) in
        let spec = { F.threshold; formula = f } in
        let nv, nt = Core.Naive_eval.soft_counts ~typing db f in
        let expected_outcome =
          if C.clears ~threshold ~violations:(N.of_int nv) ~total:(N.of_int nt) then
            C.Satisfied
          else C.Violated
        in
        let expected_ratio = if nt = 0 then 0. else float_of_int nv /. float_of_int nt in
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let agrees r =
          r.C.outcome = expected_outcome
          &&
          match r.C.rate with
          | None -> false
          | Some rt ->
            same_float rt.C.ratio expected_ratio
            && same_float rt.C.threshold threshold
            && N.compare rt.C.violations rt.C.total <= 0
        in
        let bdd = C.check_spec index spec in
        let sql = C.check_spec ~strategy:C.Force_sql index spec in
        (* the naive-recount path must reproduce the counts themselves *)
        let sql_counts_exact =
          match sql.C.rate with
          | Some rt ->
            N.to_int_opt rt.C.violations = Some nv && N.to_int_opt rt.C.total = Some nt
          | None -> false
        in
        agrees bdd && agrees sql && sql_counts_exact
        &&
        (* a node budget too tight to compile anything: the fallback
           recount must agree too *)
        let mgr = Core.Index.mgr index in
        Fcv_bdd.Manager.set_max_nodes mgr (Fcv_bdd.Manager.size mgr + 8);
        agrees (C.check_spec index spec))

(* -- acceptance: the noise family, bit-for-bit -------------------------- *)

let noise_cfg =
  {
    Fcv_datagen.Noise.rows = 400;
    sensors = 40;
    locations = 12;
    units = 4;
    readings = 50;
    loc_noise = 0.02;
    unit_noise = 0.05;
  }

let noise_setup () =
  let rng = Fcv_util.Rng.create 2007 in
  let db, _ = Fcv_datagen.Noise.generate rng noise_cfg in
  let specs =
    List.map
      (fun (_, src) -> Core.Fol_parser.spec_of_string src)
      (Fcv_datagen.Noise.soft_constraints ~threshold:0.999)
  in
  let index = Core.Index.create db in
  C.ensure_indices index (List.map (fun s -> s.F.formula) specs);
  (db, index, specs)

let test_noise_fd_bit_for_bit () =
  let db, index, specs = noise_setup () in
  List.iter
    (fun spec ->
      let name = F.to_string spec.F.formula in
      let nv, nt = Core.Naive_eval.soft_counts db spec.F.formula in
      check (name ^ ": data is noisy") true (nv > 0);
      let assert_counts label r =
        match r.C.rate with
        | None -> Alcotest.fail (label ^ ": soft check reported no rate")
        | Some rt ->
          check (label ^ ": violations bit-for-bit") true
            (N.to_int_opt rt.C.violations = Some nv);
          check (label ^ ": bindings bit-for-bit") true
            (N.to_int_opt rt.C.total = Some nt);
          check (label ^ ": ratio bit-for-bit") true
            (same_float rt.C.ratio (float_of_int nv /. float_of_int nt))
      in
      (* FD fast path (the default route for FD-shaped constraints) *)
      let fast = C.check_spec index spec in
      check (name ^ ": fast path on BDD engine") true (fast.C.method_used = C.Bdd);
      assert_counts (name ^ " [fd-fast-path]") fast;
      (* generic violation-BDD route *)
      let generic =
        C.check_spec
          ~pipeline:{ C.default_pipeline with C.use_fd_fast_path = false }
          index spec
      in
      assert_counts (name ^ " [violation-bdd]") generic;
      (* naive recount route *)
      assert_counts (name ^ " [naive]") (C.check_spec ~strategy:C.Force_sql index spec);
      (* at p = 1.0 the same formula is hard: Violated, no rate *)
      let hard = C.check_spec index (F.hard spec.F.formula) in
      check (name ^ ": hard verdict is Violated") true (hard.C.outcome = C.Violated);
      check (name ^ ": hard check has no rate") true (hard.C.rate = None);
      (* a generous threshold flips the verdict without changing the rate *)
      let loose = C.check_spec index { spec with F.threshold = 0.5 } in
      check (name ^ ": loose threshold satisfied") true (loose.C.outcome = C.Satisfied);
      assert_counts (name ^ " [loose]") loose)
    specs;
  ignore db

(* -- monitor flow -------------------------------------------------------- *)

let test_monitor_soft_flow () =
  let rng = Fcv_util.Rng.create 2007 in
  let db, _ = Fcv_datagen.Noise.generate rng noise_cfg in
  let index = Core.Index.create db in
  let mon = Core.Monitor.create index in
  let _, soft_src = List.hd (Fcv_datagen.Noise.soft_constraints ~threshold:0.5) in
  let _, hard_src = List.hd Fcv_datagen.Noise.fd_constraints in
  let soft = Core.Monitor.add mon soft_src in
  let hard = Core.Monitor.add mon hard_src in
  check "registered threshold" true (same_float soft.Core.Monitor.threshold 0.5);
  check "hard threshold" true (same_float hard.Core.Monitor.threshold 1.0);
  let reports = Core.Monitor.validate mon in
  let find reg =
    List.find
      (fun r -> r.Core.Monitor.constraint_.Core.Monitor.id = reg.Core.Monitor.id)
      reports
  in
  let soft_r = find soft and hard_r = find hard in
  check "soft fresh report carries a rate" true (soft_r.Core.Monitor.rate <> None);
  check "soft satisfied at 0.5" true (soft_r.Core.Monitor.outcome = C.Satisfied);
  check "hard report has no rate" true (hard_r.Core.Monitor.rate = None);
  check "hard violated" true (hard_r.Core.Monitor.outcome = C.Violated);
  (* cached revalidation keeps the measured rate *)
  let reports2 = Core.Monitor.validate mon in
  let soft_r2 =
    List.find
      (fun r -> r.Core.Monitor.constraint_.Core.Monitor.id = soft.Core.Monitor.id)
      reports2
  in
  check "cached soft report" true (not soft_r2.Core.Monitor.fresh);
  check "cached rate preserved" true
    (soft_r2.Core.Monitor.rate = soft_r.Core.Monitor.rate);
  (* dirty both; the soft one re-measures and never rides entailment *)
  Core.Monitor.insert mon ~table_name:"readings" [| 0; 0; 0; 0 |];
  let reports3 = Core.Monitor.validate mon in
  let soft_r3 =
    List.find
      (fun r -> r.Core.Monitor.constraint_.Core.Monitor.id = soft.Core.Monitor.id)
      reports3
  in
  check "dirtied soft re-checks fresh" true soft_r3.Core.Monitor.fresh;
  check "re-measured rate present" true (soft_r3.Core.Monitor.rate <> None);
  check "soft constraint never entailment-settled" true
    (soft.Core.Monitor.entailed_by = None)

(* -- protocol: threshold field canonicalises into the source ------------ *)

let test_protocol_register_threshold () =
  let module P = Fcv_server.Protocol in
  let module T = Fcv_util.Telemetry in
  let line members =
    T.Json.to_string (T.Obj (("op", T.String "register") :: members))
  in
  (match
     P.parse_request
       (line [ ("source", T.String "forall x . t(x)"); ("threshold", T.Float 0.999) ])
   with
  | Ok (_, P.Register { source; _ }) ->
    check_string "threshold canonicalised into source" "holds >= 0.999 . forall x . t(x)"
      source
  | _ -> Alcotest.fail "soft register did not parse");
  (match
     P.parse_request
       (line [ ("source", T.String "forall x . t(x)"); ("threshold", T.Int 1) ])
   with
  | Ok (_, P.Register { source; _ }) ->
    check_string "threshold 1 leaves the source alone" "forall x . t(x)" source
  | _ -> Alcotest.fail "hard register did not parse");
  List.iter
    (fun bad ->
      match
        P.parse_request (line [ ("source", T.String "forall x . t(x)"); ("threshold", bad) ])
      with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail "out-of-range threshold accepted")
    [ T.Float 0.; T.Float 1.5; T.Int 0; T.Int 2; T.String "0.9" ]

(* -- repair: greedy stops once the rate clears the threshold ------------ *)

let test_repair_respects_thresholds () =
  let rng = Fcv_util.Rng.create 2007 in
  let db, _ = Fcv_datagen.Noise.generate rng noise_cfg in
  let _, fd = List.hd Fcv_datagen.Noise.fd_constraints in
  let formula = Core.Fol_parser.of_string fd in
  (* hard: the FD is violated, the plan must delete something *)
  let hard_plan = Fcv_repair.Repair.plan db [ formula ] in
  check "hard plan deletes" true (hard_plan.Fcv_repair.Repair.deletions <> []);
  check "hard plan completes" true hard_plan.Fcv_repair.Repair.complete;
  (* soft at a threshold the data already clears: nothing to repair *)
  let loose = { F.threshold = 0.5; formula } in
  let soft_plan = Fcv_repair.Repair.plan_specs db [ loose ] in
  check_int "already-clearing soft constraint costs no deletions" 0
    (List.length soft_plan.Fcv_repair.Repair.deletions);
  check "soft plan complete" true soft_plan.Fcv_repair.Repair.complete;
  check_int "not violated before" 0 soft_plan.Fcv_repair.Repair.violated_before;
  (* soft at a strict threshold: repaired, and never with more
     deletions than the full hard repair needs *)
  let strict = { F.threshold = 0.9999; formula } in
  let strict_plan = Fcv_repair.Repair.plan_specs db [ strict ] in
  check "strict soft plan completes" true strict_plan.Fcv_repair.Repair.complete;
  check "strict soft plan deletes" true (strict_plan.Fcv_repair.Repair.deletions <> []);
  check "soft repair never exceeds the hard repair" true
    (List.length strict_plan.Fcv_repair.Repair.deletions
    <= List.length hard_plan.Fcv_repair.Repair.deletions)

let suite =
  [
    Alcotest.test_case "exact sat-count beyond 2^53" `Quick test_exact_count_beyond_float;
    Alcotest.test_case "near-threshold precision regression" `Quick
      test_clears_near_threshold;
    Alcotest.test_case "holds-prefix parsing" `Quick test_spec_parsing;
    Gen.qcheck_case prop_hard_spec_is_check;
    Gen.qcheck_case prop_soft_differential;
    Alcotest.test_case "noise FD rate bit-for-bit vs naive" `Quick
      test_noise_fd_bit_for_bit;
    Alcotest.test_case "monitor soft flow" `Quick test_monitor_soft_flow;
    Alcotest.test_case "register threshold canonicalisation" `Quick
      test_protocol_register_threshold;
    Alcotest.test_case "repair respects thresholds" `Quick test_repair_respects_thresholds;
  ]

let () = Registry.register "approx" suite
