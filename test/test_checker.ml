(** End-to-end checker tests: the BDD path, the SQL violation-query
    path and the naive evaluator must all agree — on hand-written
    constraints over the paper's example schemas and on random
    formulas over random databases (the central property test of the
    whole system). *)

module F = Core.Formula
module C = Core.Checker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Core.Fol_parser.of_string

let outcome_bool = function C.Satisfied -> true | C.Violated -> false

(* -- university example (§1) ------------------------------------------------ *)

let university ?(violators = 0) () =
  let rng = Fcv_util.Rng.create 5 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 150; courses = 40; violators }
  in
  db

let curriculum_constraint =
  "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"

let test_curriculum_satisfied () =
  let db = university () in
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  let r = C.check index c in
  check "holds on clean data" true (outcome_bool r.C.outcome);
  check "used the BDD path" true (r.C.method_used = C.Bdd);
  check "agrees with naive" (Core.Naive_eval.holds db c) (outcome_bool r.C.outcome);
  let sql_outcome, _ = C.check_sql db c in
  check "agrees with SQL" (outcome_bool sql_outcome) (outcome_bool r.C.outcome)

let test_curriculum_violated () =
  let db = university ~violators:4 () in
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  let r = C.check index c in
  check "violated" false (outcome_bool r.C.outcome);
  let sql_outcome, _ = C.check_sql db c in
  check "SQL agrees" false (outcome_bool sql_outcome);
  (* witnesses: exactly the injected violators *)
  match Core.Violations.enumerate index c with
  | Some ws ->
    check_int "witness count" 4 (List.length ws);
    let naive = Core.Naive_eval.violating_bindings db c in
    check_int "naive agrees on count" (List.length naive) (List.length ws)
  | None -> Alcotest.fail "expected witnesses"

let test_violation_count_matches_enumeration () =
  let db = university ~violators:7 () in
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  match (Core.Violations.count index c, Core.Violations.enumerate index c) with
  | Some n, Some ws -> check "count = |enumeration|" true (n = float_of_int (List.length ws))
  | _ -> Alcotest.fail "expected witnesses"

let test_enumeration_limit () =
  let db = university ~violators:7 () in
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  match Core.Violations.enumerate ~limit:3 index c with
  | Some ws -> check_int "limited" 3 (List.length ws)
  | None -> Alcotest.fail "expected witnesses"

(* -- membership and FD constraints on customers ---------------------------- *)

let customers ?(violation_rate = 0.0) ~rows () =
  let rng = Fcv_util.Rng.create 77 in
  let db = Fcv_datagen.Customers.make_db () in
  let _table, world = Fcv_datagen.Customers.generate ~violation_rate rng db ~name:"cust" ~rows in
  (db, world)

let fd_constraint =
  (* areacode -> state *)
  "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s1 = s2"

let test_fd_on_clean_customers () =
  let db, _ = customers ~rows:800 () in
  let index = Core.Index.create db in
  let c = parse fd_constraint in
  C.ensure_indices index [ c ];
  let r = C.check index c in
  check "fd holds on clean data" true (outcome_bool r.C.outcome);
  let table = Fcv_relation.Database.table db "cust" in
  check "Stats.fd_holds agrees" (Fcv_relation.Stats.fd_holds table ~lhs:[ 0 ] ~rhs:[ 3 ])
    (outcome_bool r.C.outcome)

let test_fd_on_dirty_customers () =
  let db, _ = customers ~violation_rate:0.05 ~rows:800 () in
  let index = Core.Index.create db in
  let c = parse fd_constraint in
  C.ensure_indices index [ c ];
  let r = C.check index c in
  let table = Fcv_relation.Database.table db "cust" in
  check "checker = Stats.fd_holds"
    (Fcv_relation.Stats.fd_holds table ~lhs:[ 0 ] ~rhs:[ 3 ])
    (outcome_bool r.C.outcome);
  let sql_outcome, _ = C.check_sql db c in
  check "SQL agrees" (outcome_bool sql_outcome) (outcome_bool r.C.outcome)

let test_projection_index_suffices () =
  (* the FD constraint only touches areacode and state: a projection
     index on those two attributes must be accepted and give the same
     answer *)
  let db, _ = customers ~violation_rate:0.03 ~rows:500 () in
  let index = Core.Index.create db in
  ignore
    (Core.Index.add index ~table_name:"cust" ~attrs:[ "areacode"; "state" ]
       ~strategy:Core.Ordering.Prob_converge ());
  let c = parse fd_constraint in
  let r = C.check index c in
  let table = Fcv_relation.Database.table db "cust" in
  check "projection index answer"
    (Fcv_relation.Stats.fd_holds table ~lhs:[ 0 ] ~rhs:[ 3 ])
    (outcome_bool r.C.outcome)

let test_membership_constraint () =
  let db, _ = customers ~rows:300 () in
  let index = Core.Index.create db in
  (* every customer's state code is one of the 50 *)
  let c = parse "forall s . cust(_, _, _, s, _) -> s in {0, 1, 2}" in
  C.ensure_indices index [ c ];
  let r = C.check index c in
  check "agrees with naive" (Core.Naive_eval.holds db c) (outcome_bool r.C.outcome)

let test_fd_check_projection_method () =
  (* the Fig. 5(b) satcount method agrees with the formula-based check
     and with Stats.fd_holds, clean and dirty *)
  List.iter
    (fun rate ->
      let db, _ = customers ~violation_rate:rate ~rows:600 () in
      let index = Core.Index.create db in
      ignore
        (Core.Index.add index ~table_name:"cust"
           ~attrs:[ "areacode"; "city"; "state" ]
           ~strategy:Core.Ordering.Prob_converge ());
      let table = Fcv_relation.Database.table db "cust" in
      let expected = Fcv_relation.Stats.fd_holds table ~lhs:[ 0 ] ~rhs:[ 3 ] in
      check
        (Printf.sprintf "fd_check at rate %.2f" rate)
        expected
        (Core.Fd_check.fd_holds index ~table_name:"cust" ~lhs:[ "areacode" ] ~rhs:[ "state" ]);
      if not expected then begin
        let bad =
          Core.Fd_check.violating_lhs index ~table_name:"cust" ~lhs:[ "areacode" ]
            ~rhs:[ "state" ]
        in
        check "some violating lhs reported" true (bad <> []);
        (* each reported areacode really maps to >1 state *)
        List.iter
          (fun codes ->
            match codes with
            | [ v ] ->
              let states = Hashtbl.create 4 in
              Fcv_relation.Table.iter table (fun row ->
                  if Fcv_relation.Value.equal (Fcv_relation.Dict.value (Fcv_relation.Table.dict table 0) row.(0)) v
                  then Hashtbl.replace states row.(3) ());
              check "truly multivalued" true (Hashtbl.length states > 1)
            | _ -> Alcotest.fail "expected single-attribute lhs")
          bad
      end)
    [ 0.0; 0.08 ]

let test_fd_recognizer () =
  let db, _ = customers ~rows:50 () in
  let recog s = Core.Fd_check.recognize_fd db (parse s) in
  (match recog fd_constraint with
  | Some ("cust", [ "areacode" ], "state") -> ()
  | Some (t, lhs, rhs) ->
    Alcotest.fail (Printf.sprintf "wrong shape: %s [%s] %s" t (String.concat "," lhs) rhs)
  | None -> Alcotest.fail "FD not recognised");
  (* flipped equality and swapped atom roles still match *)
  check "flipped eq" true
    (recog "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, _, _, s2, _) -> s2 = s1"
    <> None);
  (* non-FD shapes are not misrecognised *)
  check "different relations" true (recog "forall s . cust(_, _, _, s, _) -> s = s" = None);
  check "extra atom structure" true
    (recog "forall a, s1, s2 . cust(a, _, _, s1, _) and cust(a, a, _, s2, _) -> s1 = s2"
    = None);
  check "rhs var reused" true
    (recog "forall a, s1, s2 . cust(a, _, s1, s1, _) and cust(a, _, s1, s2, _) -> s1 = s2"
    = None)

let test_fd_fast_path_agrees_with_compiler () =
  List.iter
    (fun rate ->
      let db, _ = customers ~violation_rate:rate ~rows:500 () in
      let index = Core.Index.create db in
      let c = parse fd_constraint in
      C.ensure_indices index [ c ];
      let fast = C.check index c in
      let slow =
        C.check
          ~pipeline:{ C.default_pipeline with C.use_fd_fast_path = false }
          index c
      in
      check
        (Printf.sprintf "fast = compiled at rate %.2f" rate)
        (outcome_bool fast.C.outcome) (outcome_bool slow.C.outcome))
    [ 0.0; 0.05 ]

let test_mvd_check () =
  (* a pure product R1(a,b) x R2(c): every MVD across the factor split
     holds; a random relation almost surely fails it *)
  let db = Fcv_relation.Database.create () in
  List.iter
    (fun n -> Fcv_relation.Database.add_domain db (Fcv_relation.Dict.of_int_range n 6))
    [ "da"; "db"; "dc" ];
  let t =
    Fcv_relation.Database.create_table db ~name:"prod"
      ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ]
  in
  let rng = Fcv_util.Rng.create 9 in
  let pairs = List.init 8 (fun _ -> (Fcv_util.Rng.int rng 6, Fcv_util.Rng.int rng 6)) in
  let cs = List.init 4 (fun _ -> Fcv_util.Rng.int rng 6) in
  List.iter
    (fun (a, b) ->
      List.iter (fun c -> Fcv_relation.Table.insert_coded t [| a; b; c |]) cs)
    (List.sort_uniq compare pairs);
  let rnd =
    Fcv_relation.Database.create_table db ~name:"rnd"
      ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ]
  in
  for _ = 1 to 40 do
    Fcv_relation.Table.insert_coded rnd
      [| Fcv_util.Rng.int rng 6; Fcv_util.Rng.int rng 6; Fcv_util.Rng.int rng 6 |]
  done;
  let index = Core.Index.create db in
  ignore (Core.Index.add index ~table_name:"prod" ~strategy:Core.Ordering.Prob_converge ());
  ignore (Core.Index.add index ~table_name:"rnd" ~strategy:Core.Ordering.Prob_converge ());
  (* trivial MVD with empty lhs: {} ->> {a,b} says R = R[ab] x R[c] *)
  check "product factorises" true
    (Core.Fd_check.mvd_holds index ~table_name:"prod" ~lhs:[] ~mid:[ "a"; "b" ]);
  check "random does not" false
    (Core.Fd_check.mvd_holds index ~table_name:"rnd" ~lhs:[] ~mid:[ "a"; "b" ]);
  (* any FD lhs -> rhs implies the MVD lhs ->> rhs *)
  check "mvd with lhs" true
    (Core.Fd_check.mvd_holds index ~table_name:"prod" ~lhs:[ "a" ] ~mid:[ "b" ]);
  check "overlap rejected" true
    (match Core.Fd_check.mvd_holds index ~table_name:"prod" ~lhs:[ "a" ] ~mid:[ "a" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- fallback behaviour ------------------------------------------------------ *)

let test_fallback_on_tiny_budget () =
  let db = university ~violators:2 () in
  (* a budget too small even to hold the indices' own blocks forces the
     checker onto the SQL path, which must still answer correctly *)
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  Fcv_bdd.Manager.set_max_nodes (Core.Index.mgr index) (Fcv_bdd.Manager.size (Core.Index.mgr index) + 50);
  let r = C.check index c in
  check "fell back" true (r.C.method_used <> C.Bdd);
  check "fallback answer correct" false (outcome_bool r.C.outcome);
  check "overhead recorded" true (r.C.bdd_overhead_ms >= 0.)

let test_open_formula_rejected () =
  let db = university () in
  let index = Core.Index.create db in
  check "open formula" true
    (match C.check index (parse "student(s, 0, _)") with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_many_repeated_checks_reuse_scratch_levels () =
  (* the FD constraint needs a scratch block per check; the pool must
     recycle it or the manager's bounded level space would run out
     after a few hundred checks *)
  let db, _ = customers ~violation_rate:0.02 ~rows:200 () in
  let index = Core.Index.create db in
  let c = parse fd_constraint in
  C.ensure_indices index [ c ];
  let before = Fcv_bdd.Manager.nvars (Core.Index.mgr index) in
  let first = C.check index c in
  for _ = 1 to 400 do
    let r = C.check index c in
    if r.C.outcome <> first.C.outcome then Alcotest.fail "outcome drifted"
  done;
  let after = Fcv_bdd.Manager.nvars (Core.Index.mgr index) in
  check
    (Printf.sprintf "levels stable after 400 checks (%d -> %d)" before after)
    true
    (after - before <= 16)

(* -- ablation pipeline -------------------------------------------------------- *)

let test_naive_pipeline_agrees () =
  let db = university ~violators:3 () in
  let index = Core.Index.create db in
  let c = parse curriculum_constraint in
  C.ensure_indices index [ c ];
  let r1 = C.check index c in
  let r2 = C.check ~pipeline:C.naive_pipeline index c in
  let r3 = C.check ~pipeline:C.direct_pipeline index c in
  check "violation and naive pipelines agree" (outcome_bool r1.C.outcome)
    (outcome_bool r2.C.outcome);
  check "violation and direct pipelines agree" (outcome_bool r1.C.outcome)
    (outcome_bool r3.C.outcome)

let prop_polarities_agree =
  QCheck.Test.make ~count:80 ~name:"violation and direct polarities agree"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 500))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let r1 = C.check ~pipeline:C.default_pipeline index f in
        let r2 = C.check ~pipeline:C.direct_pipeline index f in
        outcome_bool r1.C.outcome = outcome_bool r2.C.outcome)

(* -- the central random property --------------------------------------------- *)

let prop_bdd_agrees_with_naive =
  QCheck.Test.make ~count:120 ~name:"checker(BDD) = naive evaluator on random constraints"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 500))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let r = C.check index f in
        outcome_bool r.C.outcome = Core.Naive_eval.holds db f)

let prop_sql_agrees_with_naive =
  QCheck.Test.make ~count:120 ~name:"SQL violation query = naive evaluator (safe fragment)"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 500))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing -> (
        match Core.To_sql.violated db typing f with
        | exception Core.To_sql.Not_safe _ -> true
        | violated -> violated = not (Core.Naive_eval.holds db f)))

let prop_ablation_pipeline_agrees =
  QCheck.Test.make ~count:80 ~name:"rewritten and unrewritten pipelines agree"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 500))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let r1 = C.check index f in
        let r2 = C.check ~pipeline:C.naive_pipeline index f in
        outcome_bool r1.C.outcome = outcome_bool r2.C.outcome)

let prop_violation_witnesses_exact =
  QCheck.Test.make ~count:60 ~name:"witness enumeration matches naive violating bindings"
    (QCheck.int_range 0 500)
    (fun seed ->
      let db = Gen.random_db seed in
      (* a forall constraint with a real witness structure *)
      let f = parse "forall x, y . r(x, y) -> (exists c . s(y, c))" in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ -> (
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        match Core.Violations.enumerate index f with
        | None -> false
        | Some ws ->
          let naive = Core.Naive_eval.violating_bindings db f in
          List.length ws = List.length naive))

let suite =
  [
    Alcotest.test_case "curriculum constraint satisfied" `Quick test_curriculum_satisfied;
    Alcotest.test_case "curriculum constraint violated" `Quick test_curriculum_violated;
    Alcotest.test_case "violation count = enumeration" `Quick test_violation_count_matches_enumeration;
    Alcotest.test_case "enumeration limit" `Quick test_enumeration_limit;
    Alcotest.test_case "FD holds on clean customers" `Quick test_fd_on_clean_customers;
    Alcotest.test_case "FD detected on dirty customers" `Quick test_fd_on_dirty_customers;
    Alcotest.test_case "projection index suffices" `Quick test_projection_index_suffices;
    Alcotest.test_case "membership constraint" `Quick test_membership_constraint;
    Alcotest.test_case "FD projection-count method (Fig 5b)" `Quick test_fd_check_projection_method;
    Alcotest.test_case "MVD check" `Quick test_mvd_check;
    Alcotest.test_case "FD recognizer" `Quick test_fd_recognizer;
    Alcotest.test_case "FD fast path = compiled" `Quick test_fd_fast_path_agrees_with_compiler;
    Alcotest.test_case "fallback on tiny budget" `Quick test_fallback_on_tiny_budget;
    Alcotest.test_case "scratch levels recycled over repeated checks" `Quick test_many_repeated_checks_reuse_scratch_levels;
    Alcotest.test_case "open formulas rejected" `Quick test_open_formula_rejected;
    Alcotest.test_case "ablation pipeline agrees" `Quick test_naive_pipeline_agrees;
    QCheck_alcotest.to_alcotest prop_polarities_agree;
    QCheck_alcotest.to_alcotest prop_bdd_agrees_with_naive;
    QCheck_alcotest.to_alcotest prop_sql_agrees_with_naive;
    QCheck_alcotest.to_alcotest prop_ablation_pipeline_agrees;
    QCheck_alcotest.to_alcotest prop_violation_witnesses_exact;
  ]

let () = Registry.register "checker" suite
