(** Formula layer tests: the constraint parser, free variables, typing,
    and — most importantly — that the §4 rewrites (NNF, prenex,
    leading-quantifier elimination, ∀ push-down) preserve semantics on
    random formulas over random databases, judged by the naive
    evaluator. *)

module F = Core.Formula
module RW = Core.Rewrite

let check = Alcotest.(check bool)

let parse = Core.Fol_parser.of_string

let test_parse_roundtrip () =
  let inputs =
    [
      "forall s . student(s, 'CS', _) -> (exists c . course(c, 'Programming') and takes(s, c))";
      "forall x . r(x, _) -> x in {1, 2, 3}";
      "exists x, y . r(x, y) and not s(y, 0)";
      "forall a, b . (r(a, b) and t(a)) or a = b";
      "true -> false";
      "forall x . x = 3 <-> t(x)";
    ]
  in
  List.iter
    (fun s ->
      let f = parse s in
      (* parse(print(parse s)) = parse s: printing is parseable and stable *)
      let printed = F.to_string f in
      let f2 = parse printed in
      check ("roundtrip: " ^ s) true (F.to_string f2 = printed))
    inputs

let test_parse_precedence () =
  (* and binds tighter than or, or tighter than -> *)
  let f = parse "t(1) or t(2) and t(3) -> t(4)" in
  (match f with
  | F.Implies (F.Or (_, F.And (_, _)), _) -> ()
  | _ -> Alcotest.fail ("bad precedence: " ^ F.to_string f));
  (* -> is right associative *)
  match parse "t(1) -> t(2) -> t(3)" with
  | F.Implies (_, F.Implies (_, _)) -> ()
  | f -> Alcotest.fail ("bad associativity: " ^ F.to_string f)

let test_parse_errors () =
  let fails s = match parse s with exception Core.Fol_parser.Error _ -> true | _ -> false in
  check "unterminated string" true (fails "r(x, 'oops");
  check "missing dot" true (fails "forall x r(x)");
  check "trailing" true (fails "t(1) t(2)");
  check "bad in" true (fails "x in 3")

let test_free_vars () =
  let f = parse "forall x . r(x, y) and (exists z . s(y, z))" in
  check "only y free" true (F.Sset.elements (F.free_vars f) = [ "y" ]);
  check "closed detection" false (F.is_closed f);
  check "closed formula" true (F.is_closed (parse "forall x, y . r(x, y)"))

let test_relations () =
  let f = parse "forall x . r(x, _) -> (exists c . s(_, c) and t(x))" in
  check "relations" true (F.relations f = [ "r"; "s"; "t" ])

let test_nnf_no_negation_above_atoms () =
  let f = parse "not (forall x . r(x, _) -> not (exists y . s(_, y)))" in
  let rec well_formed = function
    | F.Not (F.Atom _) | F.Not (F.Eq _) | F.Not (F.In _) -> true
    | F.Not _ -> false
    | F.Implies _ | F.Iff _ -> false
    | F.And (a, b) | F.Or (a, b) -> well_formed a && well_formed b
    | F.Exists (_, g) | F.Forall (_, g) -> well_formed g
    | F.True | F.False | F.Atom _ | F.Eq _ | F.In _ -> true
  in
  check "nnf shape" true (well_formed (RW.nnf f))

let test_prenex_shape () =
  let f = parse "(forall x . r(x, _)) and (exists y . t(y))" in
  let prefix, matrix = RW.prenex f in
  check "two quantifiers hoisted" true (List.length prefix = 2);
  let rec quantifier_free = function
    | F.Exists _ | F.Forall _ -> false
    | F.Not g -> quantifier_free g
    | F.And (a, b) | F.Or (a, b) | F.Implies (a, b) | F.Iff (a, b) ->
      quantifier_free a && quantifier_free b
    | F.True | F.False | F.Atom _ | F.Eq _ | F.In _ -> true
  in
  check "matrix quantifier-free" true (quantifier_free matrix)

let test_eliminate_leading () =
  let f = parse "forall x, y . exists z . r(x, y) and s(y, z)" in
  let mode, g = RW.eliminate_leading (RW.prenex f) in
  check "validity mode" true (mode = RW.Check_valid);
  (match g with
  | F.Exists ([ _ ], _) -> ()
  | _ -> Alcotest.fail ("leading forall not dropped: " ^ F.to_string g));
  let f2 = parse "exists x . forall y . r(x, y)" in
  let mode2, g2 = RW.eliminate_leading (RW.prenex f2) in
  check "satisfiability mode" true (mode2 = RW.Check_satisfiable);
  match g2 with
  | F.Forall ([ _ ], _) -> ()
  | _ -> Alcotest.fail ("leading exists not dropped: " ^ F.to_string g2)

let test_push_forall () =
  let f = parse "forall x . t(x) and r(x, 1)" in
  (match RW.push_forall f with
  | F.And (F.Forall _, F.Forall _) -> ()
  | g -> Alcotest.fail ("push down failed: " ^ F.to_string g));
  (* a variable absent from one conjunct drops its quantifier there *)
  let f2 = parse "forall x . t(x) and t(3)" in
  match RW.push_forall f2 with
  | F.And (F.Forall _, F.Atom _) -> ()
  | g -> Alcotest.fail ("vacuous drop failed: " ^ F.to_string g)

let test_typing_errors () =
  let db = Gen.random_db 1 in
  let fails f = match Core.Typing.infer db f with exception Core.Typing.Type_error _ -> true | _ -> false in
  check "arity error" true (fails (parse "forall x . r(x)"));
  check "unknown relation" true (fails (parse "forall x . q(x)"));
  (* x used at domains d1 (r's first) and d3 (s's second) *)
  check "domain clash" true (fails (parse "forall x . r(x, _) and s(_, x)"));
  check "untypeable quantifier" true (fails (parse "forall x . t(1)"));
  check "well-typed accepted" true (not (fails (parse "forall x . r(x, _) -> t(x)")))

let test_rename_apart () =
  (* shadowed binder gets a fresh name; everything else is kept *)
  let f = parse "forall x . t(x) and (exists x . r(x, 1))" in
  let g = RW.rename_apart f in
  (match g with
  | F.Forall ([ "x" ], F.And (F.Atom ("t", [ F.Var "x" ]), F.Exists ([ x' ], F.Atom ("r", [ F.Var x''; _ ])))) ->
    check "inner renamed" true (x' <> "x" && x' = x'')
  | _ -> Alcotest.fail ("unexpected shape: " ^ F.to_string g));
  (* conflict-free formulas are untouched *)
  let h = parse "forall a . t(a) -> (exists b . r(b, 0))" in
  check "no gratuitous renaming" true (RW.rename_apart h = h)

let test_shadowing_semantics () =
  (* inner ∃x shadows outer ∀x: every path (naive / BDD via both
     pipelines) must agree *)
  let dbs = List.map Gen.random_db [ 41; 42; 43 ] in
  let f = parse "forall x . t(x) -> ((exists x . r(x, 1)) or t(x))" in
  List.iter
    (fun db ->
      let naive = Core.Naive_eval.holds db f in
      let index = Core.Index.create db in
      Core.Checker.ensure_indices index [ f ];
      let r1 = Core.Checker.check index f in
      let r2 = Core.Checker.check ~pipeline:Core.Checker.naive_pipeline index f in
      check "bdd = naive under shadowing" naive (r1.Core.Checker.outcome = Core.Checker.Satisfied);
      check "ablation pipeline too" naive (r2.Core.Checker.outcome = Core.Checker.Satisfied))
    dbs

(* -- semantic preservation on random formulas ----------------------------- *)

let db_pool = List.map Gen.random_db [ 11; 22; 33 ]

let naive_on_all f =
  List.map
    (fun db ->
      match Core.Naive_eval.holds db f with
      | b -> Some b
      | exception Core.Typing.Type_error _ -> None)
    db_pool

let preservation_test name transform =
  QCheck.Test.make ~count:150 ~name Gen.formula_arbitrary (fun f ->
      let f = Gen.close f in
      let g = transform f in
      List.for_all2
        (fun a b -> match (a, b) with Some x, Some y -> x = y | _ -> true)
        (naive_on_all f) (naive_on_all g))

let prop_nnf_preserves = preservation_test "nnf preserves semantics" RW.nnf

let prop_prenex_preserves =
  preservation_test "prenex preserves semantics" (fun f ->
      let prefix, matrix = RW.prenex f in
      RW.requantify prefix matrix)

let prop_push_forall_preserves =
  preservation_test "forall push-down preserves semantics" (fun f -> RW.push_forall (RW.nnf f))

let prop_optimize_consistent =
  (* the optimised (mode, formula) pair judges exactly like the original:
     Check_valid: naive(∀free. g); Check_satisfiable: naive(∃free. g) *)
  QCheck.Test.make ~count:150 ~name:"optimize pipeline preserves the verdict"
    Gen.formula_arbitrary (fun f ->
      let f = Gen.close f in
      let mode, g = RW.optimize f in
      let free = F.Sset.elements (F.free_vars g) in
      let closed =
        match mode with
        | RW.Check_valid -> if free = [] then g else F.Forall (free, g)
        | RW.Check_satisfiable -> if free = [] then g else F.Exists (free, g)
      in
      List.for_all2
        (fun a b -> match (a, b) with Some x, Some y -> x = y | _ -> true)
        (naive_on_all f) (naive_on_all closed))

let suite =
  [
    Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "free variables" `Quick test_free_vars;
    Alcotest.test_case "relations" `Quick test_relations;
    Alcotest.test_case "nnf shape" `Quick test_nnf_no_negation_above_atoms;
    Alcotest.test_case "prenex shape" `Quick test_prenex_shape;
    Alcotest.test_case "leading-quantifier elimination" `Quick test_eliminate_leading;
    Alcotest.test_case "forall push-down" `Quick test_push_forall;
    Alcotest.test_case "typing errors" `Quick test_typing_errors;
    Alcotest.test_case "rename apart" `Quick test_rename_apart;
    Alcotest.test_case "shadowing semantics" `Quick test_shadowing_semantics;
    QCheck_alcotest.to_alcotest prop_nnf_preserves;
    QCheck_alcotest.to_alcotest prop_prenex_preserves;
    QCheck_alcotest.to_alcotest prop_push_forall_preserves;
    QCheck_alcotest.to_alcotest prop_optimize_consistent;
  ]

let () = Registry.register "formula" suite
