(** Utility tests: the deterministic RNG, permutations and bit helpers
    everything else builds on. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rng_determinism () =
  let a = Fcv_util.Rng.create 99 in
  let b = Fcv_util.Rng.create 99 in
  let run r = List.init 100 (fun _ -> Fcv_util.Rng.int r 1000) in
  check "same seed same stream" true (run a = run b)

let test_rng_bounds () =
  let r = Fcv_util.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Fcv_util.Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail (Printf.sprintf "out of bounds: %d" v)
  done

let test_rng_float_range () =
  let r = Fcv_util.Rng.create 2 in
  for _ = 1 to 10_000 do
    let v = Fcv_util.Rng.float r in
    if v < 0. || v >= 1. then Alcotest.fail (Printf.sprintf "float out of range: %f" v)
  done

let test_rng_split_independence () =
  let r = Fcv_util.Rng.create 3 in
  let child = Fcv_util.Rng.split r in
  let a = List.init 10 (fun _ -> Fcv_util.Rng.int r 100) in
  let b = List.init 10 (fun _ -> Fcv_util.Rng.int child 100) in
  check "streams differ" true (a <> b)

let test_rng_shuffle_permutes () =
  let r = Fcv_util.Rng.create 4 in
  let arr = Array.init 50 Fun.id in
  Fcv_util.Rng.shuffle r arr;
  check "still a permutation" true (Fcv_util.Perm.is_permutation arr)

let test_rng_sample_distinct () =
  let r = Fcv_util.Rng.create 5 in
  let s = Fcv_util.Rng.sample r 10 30 in
  check_int "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.to_list sorted |> List.sort_uniq compare |> List.length in
  check_int "distinct" 10 distinct

let test_rng_bernoulli_extremes () =
  let r = Fcv_util.Rng.create 6 in
  for _ = 1 to 100 do
    check "p=0 never" false (Fcv_util.Rng.bernoulli r 0.);
    check "p=1 always" true (Fcv_util.Rng.bernoulli r 1.)
  done

let test_perm_all () =
  let perms = Fcv_util.Perm.all 4 in
  check_int "4! = 24" 24 (List.length perms);
  check_int "no duplicates" 24 (List.length (List.sort_uniq compare perms));
  List.iter (fun p -> check "each valid" true (Fcv_util.Perm.is_permutation p)) perms

let test_perm_iter_matches_all () =
  let seen = ref [] in
  Fcv_util.Perm.iter 4 (fun p -> seen := Array.copy p :: !seen);
  check_int "iter visits 24" 24 (List.length !seen);
  check "iter = all (as sets)" true
    (List.sort compare !seen = List.sort compare (Fcv_util.Perm.all 4))

let test_perm_inverse () =
  let p = [| 2; 0; 3; 1 |] in
  let inv = Fcv_util.Perm.inverse p in
  Array.iteri (fun i pi -> check_int "inverse law" i inv.(pi)) p

let test_perm_apply () =
  let p = [| 2; 0; 1 |] in
  let arr = [| "a"; "b"; "c" |] in
  check "apply" true (Fcv_util.Perm.apply p arr = [| "c"; "a"; "b" |])

let test_factorial () =
  check_int "5!" 120 (Fcv_util.Perm.factorial 5);
  check_int "0!" 1 (Fcv_util.Perm.factorial 0)

let test_bits_width () =
  List.iter
    (fun (n, w) -> check_int (Printf.sprintf "width %d" n) w (Fcv_util.Bits.width n))
    [ (1, 1); (2, 1); (3, 2); (4, 2); (5, 3); (50, 6); (281, 9); (10894, 14); (17557, 15) ]

let test_bits_test () =
  check "bit 0 of 5" true (Fcv_util.Bits.test 5 0);
  check "bit 1 of 5" false (Fcv_util.Bits.test 5 1);
  check "bit 2 of 5" true (Fcv_util.Bits.test 5 2)

let test_timer () =
  let t = Fcv_util.Timer.create () in
  Fcv_util.Timer.start t;
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  Fcv_util.Timer.stop t;
  check "elapsed non-negative" true (Fcv_util.Timer.elapsed t >= 0.);
  let _, ms = Fcv_util.Timer.time_ms (fun () -> ()) in
  check "time_ms non-negative" true (ms >= 0.);
  let v, _ = Fcv_util.Timer.time_median ~repeat:3 (fun () -> 42) in
  check_int "median returns result" 42 v

let prop_zipf_in_range =
  QCheck.Test.make ~count:100 ~name:"zipf stays in range"
    QCheck.(pair (int_range 1 50) (int_range 0 1000))
    (fun (bound, seed) ->
      let r = Fcv_util.Rng.create seed in
      let v = Fcv_util.Rng.zipf r ~s:1.0 bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independence;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng sample" `Quick test_rng_sample_distinct;
    Alcotest.test_case "rng bernoulli extremes" `Quick test_rng_bernoulli_extremes;
    Alcotest.test_case "perm all" `Quick test_perm_all;
    Alcotest.test_case "perm iter" `Quick test_perm_iter_matches_all;
    Alcotest.test_case "perm inverse" `Quick test_perm_inverse;
    Alcotest.test_case "perm apply" `Quick test_perm_apply;
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "bits width" `Quick test_bits_width;
    Alcotest.test_case "bits test" `Quick test_bits_test;
    Alcotest.test_case "timer" `Quick test_timer;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
  ]

let () = Registry.register "util" suite
