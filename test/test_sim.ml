(** The fault-injection simulator as a test suite: clean sweeps find
    nothing, every planted durability bug is found and shrinks to a
    replayable counterexample, and the WAL's torn-tail repair is
    fuzzed exhaustively — a truncation or a ['\000'] hole at {e every}
    byte offset of a multi-record log. *)

module P = Fcv_server.Protocol
module W = Fcv_server.Wal
module Sim = Fcv_sim.Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tmpdir () =
  let path = Filename.temp_file "fcv" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

(* -- sim invariants -------------------------------------------------------- *)

(* A small clean sweep: the durable core survives a crash at every
   reachable effect point of every schedule (shard counts drawn
   per-schedule, 1–3). *)
let test_sim_clean () =
  let r = Sim.run ~seed:7 ~schedules:5 () in
  check_int "schedules" 5 r.Sim.schedules_run;
  check "many crash points" true (r.Sim.crash_runs > 50);
  check_int "no violations" 0 (List.length r.Sim.failures)

(* The same, forcing every schedule onto a 3-shard tier: the crash
   points now include between two shards' WAL appends of one routed
   burst and mid-rotation of a single shard's snapshot. *)
let test_sim_clean_sharded () =
  let r = Sim.run ~seed:11 ~schedules:4 ~shards:3 () in
  check_int "schedules" 4 r.Sim.schedules_run;
  check "many crash points" true (r.Sim.crash_runs > 50);
  check_int "no violations" 0 (List.length r.Sim.failures)

(* Each planted bug must be caught, and its shrunk repro line must
   fail again when replayed exactly (seed + ops + fault + injection). *)
let catches ?shards inject () =
  let r = Sim.run ~inject ?shards ~seed:1 ~schedules:30 () in
  match r.Sim.failures with
  | [] ->
    Alcotest.failf "injection %s escaped the sweep" (Sim.inject_to_string inject)
  | cx :: _ ->
    check "repro names the injection" true
      (let needle = "--inject " ^ Sim.inject_to_string inject in
       let len = String.length needle in
       let hay = cx.Sim.cx_repro in
       let rec find i = i + len <= String.length hay && (String.sub hay i len = needle || find (i + 1)) in
       find 0);
    let replay =
      Sim.run ~inject ?shards ~ops:cx.Sim.cx_ops ~fault:cx.Sim.cx_fault
        ~seed:cx.Sim.cx_seed ~schedules:1 ()
    in
    check_int "replay fails deterministically" 1 (List.length replay.Sim.failures)

(* -- exhaustive WAL torn-tail fuzz ----------------------------------------- *)

let wal_records =
  [
    P.Register { source = "forall x . t(x)"; id = Some 0 };
    P.Insert ("r", [ "1"; "2" ]);
    P.Delete ("r", [ "1"; "2" ]);
    P.Register { source = "forall y . s(y, y)"; id = Some 1 };
    P.Unregister 0;
    P.Insert ("s", [ "3"; "3" ]);
  ]

(* Write the records through the real Wal, returning the log file's
   bytes and the byte offset at which each record's line ends. *)
let build_log dir =
  let path = Filename.concat dir "wal.log" in
  let wal = W.open_ path in
  List.iter (W.append wal) wal_records;
  W.close wal;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let ends = ref [] in
  String.iteri (fun i c -> if c = '\n' then ends := (i + 1) :: !ends) contents;
  (contents, List.rev !ends)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

(* Records wholly contained in the first [cut] bytes. *)
let complete_before ends cut = List.length (List.filter (fun e -> e <= cut) ends)

(* Truncate the log at every byte offset: replay must recover exactly
   the complete records, truncate the torn tail away, and leave the
   file appendable (a reopened handle's appends replay too). *)
let test_torn_tail_truncation () =
  let dir = tmpdir () in
  let contents, ends = build_log dir in
  let n = String.length contents in
  check_int "log has all records" (List.length wal_records) (List.length ends);
  for cut = 0 to n do
    let path = Filename.concat dir (Printf.sprintf "cut-%d.log" cut) in
    write_file path (String.sub contents 0 cut);
    let expect = complete_before ends cut in
    let replayed = ref 0 in
    let count = W.replay path ~f:(fun _ -> incr replayed) in
    if count <> expect || !replayed <> expect then
      Alcotest.failf "cut at %d/%d: replayed %d records, want %d" cut n count expect;
    let valid_prefix = match List.filteri (fun i _ -> i < expect) ends with
      | [] -> 0
      | l -> List.nth l (expect - 1)
    in
    if file_size path <> valid_prefix then
      Alcotest.failf "cut at %d: file not truncated to valid prefix (%d, want %d)"
        cut (file_size path) valid_prefix;
    (* the repaired log accepts appends and stays replayable *)
    let wal = W.open_ path in
    W.append wal (P.Insert ("r", [ "9"; "9" ]));
    W.close wal;
    check_int
      (Printf.sprintf "cut at %d: append after repair replays" cut)
      (expect + 1)
      (W.replay path ~f:ignore)
  done

(* Reference recovery count: leading '\n'-terminated lines that parse
   as requests, stopping at the first that does not.  (A hole inside a
   JSON string literal can leave the record parseable — the lexer
   keeps raw control bytes — so the oracle is the parser itself, not
   "every hole kills its line".) *)
let reference_replay contents =
  let rec drop_tail = function [] | [ _ ] -> [] | l :: rest -> l :: drop_tail rest in
  let rec count acc = function
    | [] -> acc
    | l :: rest ->
      if String.trim l = "" then count acc rest
      else (
        match P.parse_request l with Ok _ -> count (acc + 1) rest | Error _ -> acc)
  in
  count 0 (drop_tail (String.split_on_char '\n' contents))

(* A '\000' hole at every byte offset (the simulator's reorder-visible
   damage): replay never errors, never replays past the first bad
   line, and agrees with the reference count. *)
let test_zero_hole () =
  let dir = tmpdir () in
  let contents, _ = build_log dir in
  let n = String.length contents in
  for off = 0 to n - 1 do
    let damaged = Bytes.of_string contents in
    Bytes.set damaged off '\000';
    let damaged = Bytes.to_string damaged in
    let path = Filename.concat dir (Printf.sprintf "hole-%d.log" off) in
    write_file path damaged;
    let expect = reference_replay damaged in
    let count = W.replay path ~f:ignore in
    if count <> expect then
      Alcotest.failf "hole at %d/%d: replayed %d records, want %d" off n count expect
  done

let suite =
  [
    Alcotest.test_case "sim: clean sweep has no violations" `Slow test_sim_clean;
    Alcotest.test_case "sim: catches log-before-apply" `Slow
      (catches Sim.Log_before_apply);
    Alcotest.test_case "sim: catches skip-fsync" `Slow (catches Sim.Skip_fsync);
    Alcotest.test_case "sim: catches skip-rotate" `Slow (catches Sim.Skip_rotate);
    Alcotest.test_case "sim: sharded clean sweep has no violations" `Slow
      test_sim_clean_sharded;
    Alcotest.test_case "sim: catches skip-shard-fsync on a 2-shard tier" `Slow
      (catches ~shards:2 Sim.Skip_shard_fsync);
    Alcotest.test_case "wal: torn tail truncated at every byte offset" `Quick
      test_torn_tail_truncation;
    Alcotest.test_case "wal: '\\000' hole at every byte offset" `Quick test_zero_hole;
  ]

let () = Registry.register "sim" suite
