(** Aggregated test runner: `dune runtest`.

    Each test file owns its suite name and contents and registers them
    in {!Registry} at module-initialisation time.  OCaml only
    initialises a module before this one if something here depends on
    it, so the aliases below force that linkage — they are the only
    thing to add for a new test file, and a wrong/duplicate name or a
    forgotten [Registry.register] fails loudly below. *)

module _ = Test_util
module _ = Test_bdd
module _ = Test_fd
module _ = Test_relation
module _ = Test_sql
module _ = Test_datagen
module _ = Test_formula
module _ = Test_ordering
module _ = Test_index
module _ = Test_compile
module _ = Test_to_sql
module _ = Test_io
module _ = Test_monitor
module _ = Test_misc
module _ = Test_checker
module _ = Test_telemetry
module _ = Test_differential
module _ = Test_server
module _ = Test_parallel
module _ = Test_encode_prop
module _ = Test_metamorphic
module _ = Test_sim
module _ = Test_churn
module _ = Test_shard
module _ = Test_group_commit
module _ = Test_repair
module _ = Test_repair_tier
module _ = Test_planner
module _ = Test_approx

let () =
  let suites = Registry.all () in
  if List.length suites < 30 then
    failwith
      (Printf.sprintf "Test_main: only %d suites registered — a test module was \
                       linked without calling Registry.register"
         (List.length suites));
  Alcotest.run "fcv" suites
