(** Aggregated test runner: `dune runtest`. *)

let () =
  Alcotest.run "fcv"
    [
      ("util", Test_util.suite);
      ("bdd", Test_bdd.suite);
      ("fd", Test_fd.suite);
      ("relation", Test_relation.suite);
      ("sql", Test_sql.suite);
      ("datagen", Test_datagen.suite);
      ("formula", Test_formula.suite);
      ("ordering", Test_ordering.suite);
      ("index", Test_index.suite);
      ("compile", Test_compile.suite);
      ("to_sql", Test_to_sql.suite);
      ("io", Test_io.suite);
      ("monitor", Test_monitor.suite);
      ("misc", Test_misc.suite);
      ("checker", Test_checker.suite);
    ]
