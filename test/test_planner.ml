(** Tests for {!Core.Planner}: the cost model (monotone in node count,
    domain width and cardinality), the online-learning rules
    (trip-demotion to SQL, re-promotion after shrink, ε-probes,
    cache/invalidate bookkeeping), the Armstrong-closure implication
    check behind register-time FD dedup, the Monitor-level entailment
    skip, and a property pinning the planner's pick to measured
    reality on random constraints. *)

module C = Core.Checker
module P = Core.Planner
module M = Core.Monitor
module R = Fcv_relation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let parse = Core.Fol_parser.of_string

let index_of db fs =
  let index = Core.Index.create db in
  C.ensure_indices index fs;
  index

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Hand-built checker results drive [observe] without timing noise:
   the learning rules are deterministic functions of these records. *)
let result ?(outcome = C.Satisfied) ~method_used ~elapsed_ms ?(bdd_overhead_ms = 0.)
    ?(fallback_ms = 0.) f =
  {
    C.outcome;
    method_used;
    elapsed_ms;
    bdd_overhead_ms;
    fallback_ms;
    rewritten = f;
    check = Core.Rewrite.Check_valid;
    rate = None;
  }

(* A budget-tripping fallback as the checker reports it: the abandoned
   BDD attempt ([bdd_overhead_ms]) plus the fallback that ran. *)
let trip f = result ~method_used:C.Sql ~elapsed_ms:1.0 ~bdd_overhead_ms:3.0 ~fallback_ms:1.0 f

(* -- cost model -------------------------------------------------------------- *)

(* A single-table database over one domain, sized by the caller — the
   knobs the monotonicity tests turn. *)
let chain_db ~dom ~rows =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d" dom);
  let u = R.Database.create_table db ~name:"u" ~attrs:[ ("a", "d"); ("b", "d") ] in
  for i = 0 to rows - 1 do
    R.Table.insert_coded u [| i mod dom; (i + 1) mod dom |]
  done;
  db

let chain_constraint = "forall x, y . u(x, y) -> u(y, x)"

let test_estimates_monotone () =
  let est_bdd ~dom ~rows =
    let f = parse chain_constraint in
    P.estimate_bdd_ms (index_of (chain_db ~dom ~rows) [ f ]) f
  in
  let est_sql ~dom ~rows =
    let f = parse chain_constraint in
    P.estimate_sql_ms (index_of (chain_db ~dom ~rows) [ f ]) f
  in
  (* node count: same domain, more indexed rows -> more entry nodes *)
  check "BDD estimate grows with node count" true
    (est_bdd ~dom:16 ~rows:4 < est_bdd ~dom:16 ~rows:14);
  (* domain size: same rows, wider blocks -> more bits (and nodes) *)
  check "BDD estimate grows with domain size" true
    (est_bdd ~dom:8 ~rows:6 < est_bdd ~dom:64 ~rows:6);
  (* the SQL side is monotone in base cardinality *)
  check "SQL estimate grows with cardinality" true
    (est_sql ~dom:16 ~rows:4 < est_sql ~dom:16 ~rows:14)

(* -- learning rules ---------------------------------------------------------- *)

(* Make the initial decision deterministic regardless of the model's
   absolute calibration: expensive measured SQL history forces the
   first plan onto the BDD branch. *)
let plan_bdd_first p index f =
  for _ = 1 to 3 do
    P.observe p f (result ~method_used:C.Sql ~elapsed_ms:5.0 f)
  done;
  let p1 = P.plan p index f in
  Alcotest.(check bool) "expensive SQL history plans BDD" true (p1.P.choice = P.Use_bdd);
  p1

let test_trip_demotion () =
  let db = Gen.random_db 5 in
  let f = parse "forall x, y . r(x, y) -> (exists c . s(y, c))" in
  let index = index_of db [ f ] in
  let p = P.create () in
  ignore (plan_bdd_first p index f);
  (* trip_demote = 2 consecutive budget trips flip the plan to SQL
     regardless of the estimates *)
  P.observe p f (trip f);
  P.observe p f (trip f);
  let p2 = P.plan p index f in
  check "demoted straight to SQL" true (p2.P.choice = P.Use_sql);
  check "demotion hands the checker Force_sql" true (p2.P.strategy = C.Force_sql);
  check "the reason names the trip rule" true
    (contains p2.P.reason "consecutive budget trips")

let test_bdd_success_resets_trips () =
  let db = Gen.random_db 6 in
  let f = parse "forall x, y . r(x, y) -> (exists c . s(y, c))" in
  let index = index_of db [ f ] in
  let p = P.create () in
  ignore (plan_bdd_first p index f);
  (* trip, clean BDD run, trip: never 2 consecutive, so whatever the
     estimates say, the demotion rule must not be the reason *)
  P.observe p f (trip f);
  P.observe p f (result ~method_used:C.Bdd ~elapsed_ms:0.01 f);
  P.observe p f (trip f);
  let p2 = P.plan p index f in
  check "no demotion without consecutive trips" false
    (contains p2.P.reason "consecutive budget trips")

let test_shrink_repromotes () =
  let db = chain_db ~dom:32 ~rows:28 in
  let f = parse chain_constraint in
  let index = index_of db [ f ] in
  let p = P.create () in
  ignore (plan_bdd_first p index f);
  P.observe p f (trip f);
  P.observe p f (trip f);
  let p2 = P.plan p index f in
  check "demoted after the trips" true (p2.P.choice = P.Use_sql);
  (* the watched data shrinks far below what tripped the budget *)
  for i = 0 to 23 do
    ignore (Core.Index.delete index ~table_name:"u" [| i mod 32; (i + 1) mod 32 |])
  done;
  let p3 = P.plan p index f in
  check "trip evidence forgotten on shrink" false
    (contains p3.P.reason "consecutive budget trips");
  check "re-promoted to the BDD pipeline" true (p3.P.choice = P.Use_bdd)

let test_cache_probe_and_stats () =
  let db = Gen.random_db 7 in
  let f = parse "forall x, y . r(x, y) -> (exists c . s(y, c))" in
  let index = index_of db [ f ] in
  let p = P.create ~config:{ P.default_config with P.probe_every = 2 } () in
  ignore (plan_bdd_first p index f);
  let s = P.stats p in
  check_int "first plan is a miss" 1 s.P.misses;
  check_int "no hit yet" 0 s.P.hits;
  ignore (P.plan p index f);
  check_int "unchanged index is a cache hit" 1 (P.stats p).P.hits;
  (* a structure-version bump retires the cached plan; the recompute
     counts as a replan, not a miss *)
  index.Core.Index.structure_version <- index.Core.Index.structure_version + 1;
  ignore (P.plan p index f);
  let s = P.stats p in
  check_int "version bump forces a replan" 1 s.P.replans;
  check_int "still a single miss" 1 s.P.misses;
  (* demote to a cached SQL plan, then count to the ε-probe *)
  P.observe p f (trip f);
  P.observe p f (trip f);
  let p2 = P.plan p index f in
  check "cached plan is SQL" true (p2.P.choice = P.Use_sql);
  ignore (P.plan p index f) (* hit: since_probe 0 -> 1 *);
  ignore (P.plan p index f) (* hit: since_probe 1 -> 2 *);
  let probe = P.plan p index f in
  check "every probe_every-th SQL execution probes" true probe.P.probe;
  check "the probe runs the BDD side" true (probe.P.choice = P.Use_bdd);
  check "under the budget-guarded Auto strategy" true (probe.P.strategy = C.Auto);
  check_int "probe counted" 1 (P.stats p).P.probes;
  let after = P.plan p index f in
  check "the cached SQL plan survives the probe" true
    ((not after.P.probe) && after.P.choice = P.Use_sql);
  (* invalidate drops every cached plan but keeps history *)
  P.invalidate p;
  let replans = (P.stats p).P.replans in
  ignore (P.plan p index f);
  check_int "invalidate forces a replan" (replans + 1) (P.stats p).P.replans

(* -- FD implication (Armstrong closure) -------------------------------------- *)

let fd table lhs rhs = { P.table; lhs; rhs }

let test_entails () =
  let some ids = Some ids in
  check "transitivity: a->b, b->c |- a->c" true
    (P.entails
       ~by:[ (1, fd "u" [ "a" ] "b"); (2, fd "u" [ "b" ] "c") ]
       (fd "u" [ "a" ] "c")
    = some [ 1; 2 ]);
  check "reflexivity holds from nothing" true
    (P.entails ~by:[] (fd "u" [ "a"; "b" ] "a") = some []);
  check "augmentation: a->c |- ab->c" true
    (P.entails ~by:[ (1, fd "u" [ "a" ] "c") ] (fd "u" [ "a"; "b" ] "c") = some [ 1 ]);
  check "unused FDs are not cited" true
    (P.entails
       ~by:[ (1, fd "u" [ "a" ] "b"); (9, fd "u" [ "z" ] "q") ]
       (fd "u" [ "a" ] "b")
    = some [ 1 ]);
  check "no reversal: a->b does not give b->a" true
    (P.entails ~by:[ (1, fd "u" [ "a" ] "b") ] (fd "u" [ "b" ] "a") = None);
  check "tables are isolated" true
    (P.entails ~by:[ (1, fd "v" [ "a" ] "b") ] (fd "u" [ "a" ] "b") = None)

let test_fd_of () =
  let db = Gen.random_db 3 in
  match P.fd_of db (parse "forall x, b1, b2 . r(x, b1) and r(x, b2) -> b1 = b2") with
  | Some { P.table; lhs; rhs } ->
    check "table" true (table = "r");
    check "lhs" true (lhs = [ "a" ]);
    check "rhs" true (rhs = "b")
  | None -> Alcotest.fail "FD shape not recognised"

(* -- Monitor integration: entailment skip + planned-vs-legacy verdicts -------- *)

(* u(a, b, c) with rows (i, i, i): a->b, b->c and hence a->c all hold. *)
let fd_db () =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d" 3);
  let u =
    R.Database.create_table db ~name:"u" ~attrs:[ ("a", "d"); ("b", "d"); ("c", "d") ]
  in
  for i = 0 to 2 do
    R.Table.insert_coded u [| i; i; i |]
  done;
  db

let fd_sources =
  [
    "forall x, y1, y2 . u(x, y1, _) and u(x, y2, _) -> y1 = y2" (* a -> b *);
    "forall y, z1, z2 . u(_, y, z1) and u(_, y, z2) -> z1 = z2" (* b -> c *);
    "forall x, z1, z2 . u(x, _, z1) and u(x, _, z2) -> z1 = z2" (* a -> c *);
  ]

let fresh_checks reports = List.length (List.filter (fun r -> r.M.fresh) reports)

let test_monitor_entailment_skip () =
  let run planning =
    let monitor = M.create ~planning (Core.Index.create (fd_db ())) in
    let regs = List.map (M.add monitor) fd_sources in
    (monitor, regs, M.validate monitor)
  in
  let planned, regs, reports = run M.Planned in
  let legacy, _, legacy_reports = run M.Legacy in
  (match regs with
  | [ ab; bc; ac ] ->
    check "a->c is entailed by {a->b, b->c} at register time" true
      (ac.M.entailed_by = Some [ ab.M.id; bc.M.id ]);
    check "entailers are not marked entailed" true
      (ab.M.entailed_by = None && bc.M.entailed_by = None)
  | _ -> Alcotest.fail "expected three registrations");
  check "all satisfied under Planned" true
    (List.for_all (fun r -> r.M.outcome = C.Satisfied) reports);
  check "verdicts match Legacy" true
    (M.verdicts planned = M.verdicts legacy);
  check_int "the entailed FD was settled, not checked" 2 (fresh_checks reports);
  check_int "Legacy checks all three" 3 (fresh_checks legacy_reports);
  (* soundness: once an entailer breaks, the entailed FD is really
     checked again — and found violated *)
  M.insert planned ~table_name:"u" [| 0; 1; 1 |];
  let reports = M.validate planned in
  check_int "broken entailer ends the skip" 3 (fresh_checks reports);
  let outcome_of id =
    (List.find (fun r -> r.M.constraint_.M.id = id) reports).M.outcome
  in
  (match regs with
  | [ ab; bc; ac ] ->
    check "a->b violated" true (outcome_of ab.M.id = C.Violated);
    check "b->c still holds" true (outcome_of bc.M.id = C.Satisfied);
    check "a->c checked fresh and violated" true (outcome_of ac.M.id = C.Violated)
  | _ -> ());
  (* explain exposes a costed plan for registered constraints *)
  (match M.explain planned (List.hd regs).M.id with
  | Some (_, plan) ->
    check "explain returns a costed tree" true
      (plan.P.tree.P.children <> [] && plan.P.cost_ms >= 0.)
  | None -> Alcotest.fail "explain lost a registered constraint");
  check "explain on an unknown id is None" true (M.explain planned 999 = None)

let test_planned_monitor_matches_legacy () =
  let constraints =
    [
      "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
      "forall s . forall c . takes(s, c) -> (exists g . student(s, g, _))";
      "forall s . forall a1 . forall a2 . \
       student(s, _, a1) and student(s, _, a2) -> a1 = a2";
    ]
  in
  let monitor planning =
    let rng = Fcv_util.Rng.create 11 in
    let db, _, _, _ =
      Fcv_datagen.University.generate rng
        { Fcv_datagen.University.default with students = 60; courses = 15; violators = 5 }
    in
    let m = M.create ~planning (Core.Index.create db) in
    List.iter (fun src -> ignore (M.add m src)) constraints;
    m
  in
  let planned = monitor M.Planned in
  let legacy = monitor M.Legacy in
  (* several passes with a dirtying mutation in between, so the planner
     actually learns and re-plans *)
  for i = 0 to 3 do
    check (Printf.sprintf "pass %d verdicts agree" i) true
      (M.verdicts planned = M.verdicts legacy);
    List.iter
      (fun m ->
        M.insert m ~table_name:"takes" [| i; i |];
        ignore (M.delete m ~table_name:"takes" [| i; i |]))
      [ planned; legacy ]
  done

(* -- property: the pick tracks measured reality ------------------------------ *)

(* After observing one measured run of each side, the planner's pick
   must cost within 2x of the better side (plus an absolute epsilon
   for scheduler noise on these micro-databases), and both sides must
   agree on the verdict. *)
let prop_pick_within_2x =
  QCheck.Test.make ~count:60
    ~name:"planner pick within 2x of the measured best (+0.5 ms)"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 1_000))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = index_of db [ f ] in
        let p = P.create () in
        let measure strategy =
          let r = C.check ~strategy index f in
          P.observe p f r;
          (r.C.outcome, r.C.elapsed_ms +. r.C.bdd_overhead_ms)
        in
        let bdd_outcome, bdd_ms = measure C.Auto in
        let sql_outcome, sql_ms = measure C.Force_sql in
        if bdd_outcome <> sql_outcome then false
        else
          let picked =
            match (P.plan p index f).P.choice with
            | P.Use_bdd -> bdd_ms
            | P.Use_sql -> sql_ms
          in
          picked <= (2. *. Float.min bdd_ms sql_ms) +. 0.5)

let suite =
  [
    Alcotest.test_case "estimates monotone in nodes, width, cardinality" `Quick
      test_estimates_monotone;
    Alcotest.test_case "consecutive trips demote to SQL" `Quick test_trip_demotion;
    Alcotest.test_case "a clean BDD run resets the trip streak" `Quick
      test_bdd_success_resets_trips;
    Alcotest.test_case "shrinking data re-promotes to BDD" `Quick test_shrink_repromotes;
    Alcotest.test_case "cache, version bump, ε-probe, stats" `Quick
      test_cache_probe_and_stats;
    Alcotest.test_case "Armstrong-closure entailment" `Quick test_entails;
    Alcotest.test_case "FD shape recognition" `Quick test_fd_of;
    Alcotest.test_case "monitor skips entailed FDs soundly" `Quick
      test_monitor_entailment_skip;
    Alcotest.test_case "planned monitor matches legacy verdicts" `Quick
      test_planned_monitor_matches_legacy;
    Gen.qcheck_case prop_pick_within_2x;
  ]

let () = Registry.register "planner" suite
