(** Differential test oracle: three independent evaluators — the BDD
    checker, the naive evaluator ({!Core.Naive_eval}, the ground
    truth), and the SQL translation executed by the relational engine
    ({!Core.To_sql} → {!Fcv_sql.Exec}) — must agree on random closed
    constraints over random small databases.  Failures shrink to a
    minimal counterexample formula via {!Gen.formula_shrink}.

    Determinism: {!Gen.qcheck_case} pins the QCheck seed ([QCHECK_SEED]
    overrides, default = the one bench/ci.sh exports) and prints the
    failing seed on a counterexample. *)

module F = Core.Formula
module C = Core.Checker

let outcome_bool = function C.Satisfied -> true | C.Violated -> false

let case =
  QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 1_000)

(* One differential case: returns true when every applicable evaluator
   agrees with the naive ground truth.  Formulas outside a fragment
   (ill-typed, or SQL-unsafe for the To_sql path) vacuously pass that
   evaluator. *)
let agree ?max_nodes (f, seed) =
  let f = Gen.close f in
  let db = Gen.random_db seed in
  match Core.Typing.infer db f with
  | exception Core.Typing.Type_error _ -> true
  | typing ->
    let expected = Core.Naive_eval.holds ~typing db f in
    let index = Core.Index.create db in
    C.ensure_indices index [ f ];
    Option.iter
      (fun headroom ->
        let mgr = Core.Index.mgr index in
        Fcv_bdd.Manager.set_max_nodes mgr (Fcv_bdd.Manager.size mgr + headroom))
      max_nodes;
    let r = C.check index f in
    let bdd_ok = outcome_bool r.C.outcome = expected in
    let sql_ok =
      match Core.To_sql.violated db typing f with
      | exception Core.To_sql.Not_safe _ -> true
      | violated -> violated = not expected
    in
    bdd_ok && sql_ok

let prop_three_way_agreement =
  QCheck.Test.make ~count:250 ~name:"BDD = naive = SQL(Exec) on random constraints"
    case
    (fun c -> agree c)

(* Same oracle under a starved node budget: the checker is forced
   through its SQL/naive fallbacks mid-compile and must still return
   the ground-truth verdict. *)
let prop_agreement_under_budget =
  QCheck.Test.make ~count:120 ~name:"fallback paths preserve the verdict under a tiny budget"
    case
    (fun c -> agree ~max_nodes:24 c)

(* The fallback bookkeeping itself: when the budget trips, the result
   must say so (non-BDD method, non-negative abandoned-work time). *)
let prop_fallback_bookkeeping =
  QCheck.Test.make ~count:60 ~name:"fallback results carry method and overhead"
    case
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | _ ->
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        let mgr = Core.Index.mgr index in
        Fcv_bdd.Manager.set_max_nodes mgr (Fcv_bdd.Manager.size mgr + 24);
        let r = C.check index f in
        (match r.C.method_used with
        | C.Bdd -> r.C.bdd_overhead_ms = 0.
        | C.Sql | C.Naive -> r.C.bdd_overhead_ms >= 0.))

let suite =
  List.map Gen.qcheck_case
    [ prop_three_way_agreement; prop_agreement_under_budget; prop_fallback_bookkeeping ]

let () = Registry.register "differential" suite
