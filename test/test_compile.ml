(** Compile-layer tests: atoms with constants/wildcards/duplicates,
    variable sharing across atoms (the rename-based equi-join), the
    two standalone join strategies of §4.2 agreeing with each other
    and with the SQL join, and guard correctness. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
module F = Core.Formula

let check = Alcotest.(check bool)

let parse = Core.Fol_parser.of_string

let setup seed =
  let db = Gen.random_db seed in
  let index = Core.Index.create db in
  List.iter
    (fun name -> ignore (Core.Index.add index ~table_name:name ~strategy:Core.Ordering.Prob_converge ()))
    [ "r"; "s"; "t" ];
  (db, index)

(* compile a CLOSED formula and decide it as the checker would *)
let decide index f =
  let typing = Core.Typing.infer index.Core.Index.db f in
  let ctx = Core.Compile.make_ctx index typing in
  let root = Core.Compile.compile ctx f in
  O.is_true root

let test_atom_with_constants () =
  let db, index = setup 10 in
  List.iter
    (fun src ->
      let f = parse src in
      let typing = Core.Typing.infer db f in
      let ctx = Core.Compile.make_ctx index typing in
      let root = Core.Compile.compile ctx f in
      check src (Core.Naive_eval.holds db f) (O.is_true root))
    [ "exists x . r(x, 1)"; "exists x . r(0, x)"; "forall x . r(x, 2) -> t(x)" ]

let test_unknown_constant_is_false () =
  let _, index = setup 11 in
  let f = parse "exists x . r(x, 4711)" in
  let typing = Core.Typing.infer index.Core.Index.db f in
  let ctx = Core.Compile.make_ctx index typing in
  check "out-of-dictionary constant compiles to false" true
    (O.is_false (Core.Compile.compile ctx f))

let test_wildcard_projects () =
  let db, index = setup 12 in
  let f = parse "forall x . r(x, _) -> t(x)" in
  let naive = Core.Naive_eval.holds db f in
  let typing = Core.Typing.infer db f in
  let ctx = Core.Compile.make_ctx index typing in
  let root = Core.Compile.compile ctx f in
  check "wildcard projection agrees with naive" naive (O.is_true root)

let test_duplicate_variable_in_atom () =
  (* r(x, x) requires d1 = d2 domains; our schema has different domains,
     so build a dedicated square table *)
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d" 5);
  let sq = R.Database.create_table db ~name:"sq" ~attrs:[ ("a", "d"); ("b", "d") ] in
  List.iter
    (fun (a, b) -> R.Table.insert_coded sq [| a; b |])
    [ (0, 0); (1, 2); (3, 3); (4, 2) ];
  let index = Core.Index.create db in
  ignore (Core.Index.add index ~table_name:"sq" ~strategy:Core.Ordering.Prob_converge ());
  let f = parse "exists x . sq(x, x)" in
  check "diagonal exists" (Core.Naive_eval.holds db f)
    (let typing = Core.Typing.infer db f in
     let ctx = Core.Compile.make_ctx index typing in
     O.is_satisfiable (Core.Compile.compile ctx f));
  (* count the diagonal: x with sq(x,x) are 0 and 3 *)
  let g = parse "forall x . sq(x, x) -> x in {0, 3}" in
  check "diagonal is exactly {0,3}" true
    (let typing = Core.Typing.infer db g in
     let ctx = Core.Compile.make_ctx index typing in
     O.is_true (Core.Compile.compile ctx g))

let test_self_join_two_atoms () =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d" 6);
  let e = R.Database.create_table db ~name:"edge" ~attrs:[ ("src", "d"); ("dst", "d") ] in
  List.iter (fun (a, b) -> R.Table.insert_coded e [| a; b |]) [ (0, 1); (1, 2); (2, 0); (3, 3) ];
  let index = Core.Index.create db in
  ignore (Core.Index.add index ~table_name:"edge" ~strategy:Core.Ordering.Prob_converge ());
  (* path of length 2 exists; also test a universally quantified chain *)
  List.iter
    (fun src ->
      let f = parse src in
      let naive = Core.Naive_eval.holds db f in
      let typing = Core.Typing.infer db f in
      let ctx = Core.Compile.make_ctx index typing in
      let root = Core.Compile.compile ctx f in
      check ("self-join: " ^ src) naive (O.is_true root))
    [
      "exists x, y, z . edge(x, y) and edge(y, z)";
      "forall x, y . edge(x, y) -> (exists z . edge(y, z))";
      "exists x . edge(x, x)";
      "forall x, y, z . edge(x, y) and edge(x, z) -> y = z";
    ]

let test_scratch_block_allocation () =
  (* Eq before any atom forces scratch blocks for both variables *)
  let db, index = setup 13 in
  let f = parse "forall x, y . x = y -> (r(x, _) -> r(y, _))" in
  (match Core.Typing.infer db f with
  | exception Core.Typing.Type_error _ -> Alcotest.fail "typing should succeed"
  | typing ->
    let ctx = Core.Compile.make_ctx index typing in
    let root = Core.Compile.compile ctx f in
    check "reflexive implication is valid" (Core.Naive_eval.holds db f) (O.is_true root))

(* -- §4.2 join strategies --------------------------------------------------- *)

let test_join_strategies_agree () =
  let _, index = setup 14 in
  let m = Core.Index.mgr index in
  let er = List.find (fun e -> R.Table.name e.Core.Index.table = "r") (Core.Index.entries index) in
  let es = List.find (fun e -> R.Table.name e.Core.Index.table = "s") (Core.Index.entries index) in
  (* join r(a,b) ⋈ s(b,c) on the shared d2-typed attribute *)
  let rb = er.Core.Index.blocks.(1) in
  let sb = es.Core.Index.blocks.(0) in
  let naive = Core.Compile.join_naive m er.Core.Index.root es.Core.Index.root [ (rb, sb) ] in
  let renamed = Core.Compile.join_rename m er.Core.Index.root es.Core.Index.root [ (rb, sb) ] in
  (* naive keeps both copies of the join attribute; project s's copy
     away and they must coincide *)
  let naive_projected = O.exists m (Array.to_list sb.Fd.levels) naive in
  check "strategies compute the same join" true (naive_projected = renamed)

let test_join_against_sql () =
  let db, index = setup 15 in
  let m = Core.Index.mgr index in
  let er = List.find (fun e -> R.Table.name e.Core.Index.table = "r") (Core.Index.entries index) in
  let es = List.find (fun e -> R.Table.name e.Core.Index.table = "s") (Core.Index.entries index) in
  let rb = er.Core.Index.blocks.(1) in
  let sb = es.Core.Index.blocks.(0) in
  let joined = Core.Compile.join_rename m er.Core.Index.root es.Core.Index.root [ (rb, sb) ] in
  (* SQL side: r ⋈ s on r.b = s.b *)
  let r = R.Database.table db "r" and s = R.Database.table db "s" in
  let plan = Fcv_sql.Algebra.Hash_join ([ (1, 0) ], Fcv_sql.Algebra.Scan r, Fcv_sql.Algebra.Scan s) in
  let rows = Fcv_sql.Exec.run plan in
  (* every SQL result row is a model of the joined BDD *)
  let env = Array.make (M.nvars m) false in
  let ok = ref true in
  List.iter
    (fun row ->
      (* row = a, b, b, c *)
      Fd.set_env er.Core.Index.blocks.(0) row.(0) env;
      Fd.set_env er.Core.Index.blocks.(1) row.(1) env;
      Fd.set_env es.Core.Index.blocks.(1) row.(3) env;
      if not (M.eval m joined env) then ok := false)
    rows;
  check "SQL join rows are BDD models" true !ok;
  (* cardinalities agree: count models over the three remaining blocks *)
  let used =
    Fd.width er.Core.Index.blocks.(0) + Fd.width er.Core.Index.blocks.(1)
    + Fd.width es.Core.Index.blocks.(1)
  in
  let models =
    Fcv_bdd.Sat.count m joined /. Float.pow 2. (float_of_int (M.nvars m - used))
  in
  let distinct_rows = List.sort_uniq compare (List.map (fun r -> [ r.(0); r.(1); r.(3) ]) rows) in
  check "join cardinality matches" true (models = float_of_int (List.length distinct_rows))

(* property: compiled truth of random closed formulas = naive truth
   (overlaps with the checker property but pins the compiler alone,
   without the rewrite pipeline) *)
let prop_compile_agrees_with_naive =
  QCheck.Test.make ~count:120 ~name:"bare compile agrees with naive evaluation"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 300))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing ->
        let index = Core.Index.create db in
        Core.Checker.ensure_indices index [ f ];
        let ctx = Core.Compile.make_ctx index typing in
        let root = Core.Compile.compile ctx f in
        O.is_true root = Core.Naive_eval.holds db f)

let prop_appquant_toggle_equivalent =
  QCheck.Test.make ~count:80 ~name:"fused and unfused quantifier compilation agree"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 300))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing ->
        let index = Core.Index.create db in
        Core.Checker.ensure_indices index [ f ];
        let ctx1 = Core.Compile.make_ctx ~use_appquant:true index typing in
        let r1 = Core.Compile.compile ctx1 f in
        let ctx2 = Core.Compile.make_ctx ~use_appquant:false index typing in
        let r2 = Core.Compile.compile ctx2 f in
        O.is_true r1 = O.is_true r2)

let suite =
  [
    Alcotest.test_case "atom with constants" `Quick test_atom_with_constants;
    Alcotest.test_case "unknown constant is false" `Quick test_unknown_constant_is_false;
    Alcotest.test_case "wildcard projection" `Quick test_wildcard_projects;
    Alcotest.test_case "duplicate variable in atom" `Quick test_duplicate_variable_in_atom;
    Alcotest.test_case "self joins" `Quick test_self_join_two_atoms;
    Alcotest.test_case "scratch blocks" `Quick test_scratch_block_allocation;
    Alcotest.test_case "join strategies agree" `Quick test_join_strategies_agree;
    Alcotest.test_case "join against SQL" `Quick test_join_against_sql;
    QCheck_alcotest.to_alcotest prop_compile_agrees_with_naive;
    QCheck_alcotest.to_alcotest prop_appquant_toggle_equivalent;
  ]

let () = Registry.register "compile" suite
