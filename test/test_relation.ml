(** Relational substrate tests: dictionaries, tables, CSV round-trips,
    statistics (entropy / information gain / Φ) and the BDD encoding
    with its incremental maintenance. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module Sat = Fcv_bdd.Sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_dict_roundtrip () =
  let d = R.Dict.create "dom" in
  let c1 = R.Dict.intern d (R.Value.Str "toronto") in
  let c2 = R.Dict.intern d (R.Value.Str "oshawa") in
  let c1' = R.Dict.intern d (R.Value.Str "toronto") in
  check_int "stable code" c1 c1';
  check "distinct codes" true (c1 <> c2);
  check "decode" true (R.Value.equal (R.Dict.value d c2) (R.Value.Str "oshawa"));
  check_int "size" 2 (R.Dict.size d);
  check "missing lookup" true (R.Dict.code d (R.Value.Str "nowhere") = None)

let test_dict_growth () =
  let d = R.Dict.create ~capacity:2 "dom" in
  for i = 0 to 99 do
    ignore (R.Dict.intern d (R.Value.Int i))
  done;
  check_int "100 values" 100 (R.Dict.size d);
  check "value 73" true (R.Value.equal (R.Dict.value d 73) (R.Value.Int 73))

let test_schema () =
  let s = R.Schema.make [ ("a", "d1"); ("b", "d2") ] in
  check_int "arity" 2 (R.Schema.arity s);
  check_int "position" 1 (R.Schema.position s "b");
  check "missing position" true (R.Schema.position_opt s "zz" = None);
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Schema.make: duplicate attribute a") (fun () ->
      ignore (R.Schema.make [ ("a", "d1"); ("a", "d2") ]))

let small_table () =
  let db = R.Database.create () in
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("x", "dx"); ("y", "dy") ] in
  ignore (R.Table.insert t [| R.Value.Str "a"; R.Value.Int 1 |]);
  ignore (R.Table.insert t [| R.Value.Str "a"; R.Value.Int 2 |]);
  ignore (R.Table.insert t [| R.Value.Str "b"; R.Value.Int 1 |]);
  (db, t)

let test_table_basics () =
  let _, t = small_table () in
  check_int "cardinality" 3 (R.Table.cardinality t);
  check_int "distinct" 3 (R.Table.distinct_count t);
  let row = R.Table.row t 0 in
  let decoded = R.Table.decode t row in
  check "decode first" true (R.Value.equal decoded.(0) (R.Value.Str "a"))

let test_table_delete () =
  let _, t = small_table () in
  let row = Array.copy (R.Table.row t 1) in
  check "delete hit" true (R.Table.delete_coded t row);
  check_int "cardinality after" 2 (R.Table.cardinality t);
  check "delete miss" false (R.Table.delete_coded t [| 99; 99 |])

let test_database_shared_domains () =
  let db = R.Database.create () in
  let t1 = R.Database.create_table db ~name:"t1" ~attrs:[ ("c", "city") ] in
  let t2 = R.Database.create_table db ~name:"t2" ~attrs:[ ("c", "city") ] in
  let c1 = (R.Table.insert t1 [| R.Value.Str "toronto" |]).(0) in
  let c2 = (R.Table.insert t2 [| R.Value.Str "toronto" |]).(0) in
  check_int "same code across tables" c1 c2

let test_csv_roundtrip () =
  let db, t = small_table () in
  ignore db;
  let path = Filename.temp_file "fcv" ".csv" in
  R.Csv.write_table t path;
  let db2 = R.Database.create () in
  let t2 = R.Csv.load_table db2 ~name:"t" ~path () in
  check_int "same cardinality" (R.Table.cardinality t) (R.Table.cardinality t2);
  let decoded = R.Table.decode t2 (R.Table.row t2 2) in
  check "third row survives" true (R.Value.equal decoded.(0) (R.Value.Str "b"));
  Sys.remove path

let test_csv_quoting () =
  check "quoted comma" true (R.Csv.parse_line "\"a,b\",c" = [ "a,b"; "c" ]);
  check "escaped quote" true (R.Csv.parse_line "\"he said \"\"hi\"\"\",x" = [ "he said \"hi\""; "x" ]);
  check "escape roundtrip" true
    (R.Csv.parse_line (R.Csv.escape_field "x,\"y\"" ^ ",z") = [ "x,\"y\""; "z" ])

(* -- statistics ----------------------------------------------------------- *)

(* 4-row table where H(x) is exactly 1 bit and x determines y. *)
let stats_table () =
  let db = R.Database.create () in
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("x", "dx"); ("y", "dy"); ("z", "dz") ] in
  List.iter
    (fun (x, y, z) ->
      ignore (R.Table.insert t [| R.Value.Int x; R.Value.Int y; R.Value.Int z |]))
    [ (0, 10, 0); (0, 10, 1); (1, 20, 0); (1, 20, 1) ];
  t

let test_entropy () =
  let t = stats_table () in
  check_float "H(x) = 1" 1. (R.Stats.entropy t [ 0 ]);
  check_float "H(x,y) = 1 (y is determined)" 1. (R.Stats.entropy t [ 0; 1 ]);
  check_float "H(x,z) = 2" 2. (R.Stats.entropy t [ 0; 2 ]);
  check_float "H of empty prefix" 0. (R.Stats.entropy t [])

let test_cond_entropy_and_gain () =
  let t = stats_table () in
  check_float "H(y|x) = 0 (FD)" 0. (R.Stats.cond_entropy t ~given:[ 0 ] ~attr:1);
  check_float "H(z|x) = 1" 1. (R.Stats.cond_entropy t ~given:[ 0 ] ~attr:2);
  check_float "I(x;y) = 1" 1. (R.Stats.info_gain t ~given:[ 0 ] ~attr:1);
  check_float "I(x;z) = 0" 0. (R.Stats.info_gain t ~given:[ 0 ] ~attr:2)

let test_fd_holds () =
  let t = stats_table () in
  check "x -> y" true (R.Stats.fd_holds t ~lhs:[ 0 ] ~rhs:[ 1 ]);
  check "x -> z fails" false (R.Stats.fd_holds t ~lhs:[ 0 ] ~rhs:[ 2 ]);
  check "y -> x" true (R.Stats.fd_holds t ~lhs:[ 1 ] ~rhs:[ 0 ])

let test_phi_measure () =
  (* For the full attribute set, φ ∈ {0,1} so Φ(V) = 0 (paper §3.2). *)
  let t = stats_table () in
  check_float "Phi(V) = 0" 0. (R.Stats.phi_measure t ~attrs:[ 0; 1; 2 ] ~all_attrs:[ 0; 1; 2 ]);
  (* Φ is non-negative under our normalisation *)
  check "Phi >= 0" true (R.Stats.phi_measure t ~attrs:[ 0 ] ~all_attrs:[ 0; 1; 2 ] >= 0.)

(* -- encoding -------------------------------------------------------------- *)

let random_table seed ~rows =
  let rng = Fcv_util.Rng.create seed in
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "da" 7);
  R.Database.add_domain db (R.Dict.of_int_range "db" 13);
  R.Database.add_domain db (R.Dict.of_int_range "dc" 5);
  let t =
    R.Database.create_table db ~name:"t" ~attrs:[ ("a", "da"); ("b", "db"); ("c", "dc") ]
  in
  for _ = 1 to rows do
    R.Table.insert_coded t
      [| Fcv_util.Rng.int rng 7; Fcv_util.Rng.int rng 13; Fcv_util.Rng.int rng 5 |]
  done;
  (db, t)

let test_encode_membership () =
  let _, t = random_table 7 ~rows:200 in
  let enc = R.Encode.encode t ~order:[| 0; 1; 2 |] in
  (* every table row is a model *)
  R.Table.iter t (fun row -> check "row in BDD" true (R.Encode.mem enc row));
  (* model count equals distinct rows *)
  let distinct = R.Table.distinct_count t in
  let total_bits = M.nvars enc.R.Encode.mgr in
  let used_bits =
    Array.fold_left (fun acc b -> acc + Fcv_bdd.Fd.width b) 0 enc.R.Encode.blocks
  in
  let models =
    Sat.count enc.R.Encode.mgr enc.R.Encode.root
    /. Float.pow 2. (float_of_int (total_bits - used_bits))
  in
  check "model count = distinct rows" true (models = float_of_int distinct)

let test_encode_non_membership () =
  let _, t = random_table 8 ~rows:50 in
  let enc = R.Encode.encode t ~order:[| 2; 0; 1 |] in
  let rng = Fcv_util.Rng.create 99 in
  for _ = 1 to 200 do
    let row =
      [| Fcv_util.Rng.int rng 7; Fcv_util.Rng.int rng 13; Fcv_util.Rng.int rng 5 |]
    in
    check "membership matches table" (R.Table.mem_coded t row) (R.Encode.mem enc row)
  done

let test_encode_matches_naive () =
  let _, t = random_table 9 ~rows:120 in
  List.iter
    (fun order ->
      let mgr = M.create ~nvars:0 () in
      let blocks = R.Encode.alloc_blocks mgr t ~order in
      let fast = R.Encode.build mgr t ~order ~blocks in
      let naive = R.Encode.build_naive mgr t ~order ~blocks in
      check "fast = naive builder" true (fast = naive))
    [ [| 0; 1; 2 |]; [| 1; 2; 0 |]; [| 2; 1; 0 |] ]

let test_encode_empty_table () =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "da" 4);
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("a", "da") ] in
  let enc = R.Encode.encode t ~order:[| 0 |] in
  check "empty is false" true (enc.R.Encode.root = M.zero)

let test_encode_insert_delete () =
  let _, t = random_table 10 ~rows:60 in
  let enc = R.Encode.encode t ~order:[| 0; 1; 2 |] in
  let fresh = [| 6; 12; 4 |] in
  if not (R.Encode.mem enc fresh) then begin
    R.Encode.insert enc fresh;
    check "inserted row visible" true (R.Encode.mem enc fresh);
    R.Encode.delete enc fresh;
    check "deleted row gone" false (R.Encode.mem enc fresh)
  end;
  (* delete/insert keeps the rest intact *)
  let before = enc.R.Encode.root in
  let row = Array.copy (R.Table.row t 0) in
  R.Encode.delete enc row;
  R.Encode.insert enc row;
  check "delete+insert is identity" true (enc.R.Encode.root = before)

let test_encode_rejects_bad_order () =
  let _, t = random_table 11 ~rows:5 in
  Alcotest.check_raises "bad order"
    (Invalid_argument "Encode.alloc_blocks: order must be a permutation of the attributes")
    (fun () -> ignore (R.Encode.encode t ~order:[| 0; 0; 2 |]))

let prop_entropy_chain_rule =
  QCheck.Test.make ~count:60 ~name:"entropy chain rule H(xy) = H(x) + H(y|x)"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let _, t = random_table seed ~rows:80 in
      let h = R.Stats.entropy t in
      let close a b = Float.abs (a -. b) < 1e-9 in
      close (h [ 0; 1 ]) (h [ 0 ] +. R.Stats.cond_entropy t ~given:[ 0 ] ~attr:1)
      && close (h [ 1; 2 ]) (h [ 2 ] +. R.Stats.cond_entropy t ~given:[ 2 ] ~attr:1))

let prop_entropy_monotone_and_gain_nonneg =
  QCheck.Test.make ~count:60 ~name:"H grows with attributes; information gain >= 0"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let _, t = random_table (seed + 5000) ~rows:80 in
      let h = R.Stats.entropy t in
      h [ 0; 1 ] >= h [ 0 ] -. 1e-9
      && h [ 0; 1; 2 ] >= h [ 0; 1 ] -. 1e-9
      && R.Stats.info_gain t ~given:[ 0 ] ~attr:1 >= -1e-9
      && R.Stats.info_gain t ~given:[ 0; 2 ] ~attr:1 >= -1e-9)

let prop_satcount_equals_distinct_rows =
  QCheck.Test.make ~count:40 ~name:"encoding model count = distinct rows"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let _, t = random_table (seed + 9000) ~rows:60 in
      let enc = R.Encode.encode t ~order:[| 1; 0; 2 |] in
      let used =
        Array.fold_left (fun acc b -> acc + Fcv_bdd.Fd.width b) 0 enc.R.Encode.blocks
      in
      let models =
        Sat.count enc.R.Encode.mgr enc.R.Encode.root
        /. Float.pow 2. (float_of_int (M.nvars enc.R.Encode.mgr - used))
      in
      models = float_of_int (R.Table.distinct_count t))

let prop_encode_membership_random_orders =
  QCheck.Test.make ~count:30 ~name:"encoding is order-independent as a set"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let _, t = random_table seed ~rows:40 in
      let rng = Fcv_util.Rng.create (seed + 1) in
      let order = Array.init 3 Fun.id in
      Fcv_util.Rng.shuffle rng order;
      let enc = R.Encode.encode t ~order in
      let ok = ref true in
      R.Table.iter t (fun row -> if not (R.Encode.mem enc row) then ok := false);
      for _ = 1 to 50 do
        let row =
          [| Fcv_util.Rng.int rng 7; Fcv_util.Rng.int rng 13; Fcv_util.Rng.int rng 5 |]
        in
        if R.Encode.mem enc row <> R.Table.mem_coded t row then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "dict roundtrip" `Quick test_dict_roundtrip;
    Alcotest.test_case "dict growth" `Quick test_dict_growth;
    Alcotest.test_case "schema" `Quick test_schema;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table delete" `Quick test_table_delete;
    Alcotest.test_case "shared domains" `Quick test_database_shared_domains;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "entropy" `Quick test_entropy;
    Alcotest.test_case "conditional entropy / gain" `Quick test_cond_entropy_and_gain;
    Alcotest.test_case "fd_holds" `Quick test_fd_holds;
    Alcotest.test_case "phi measure" `Quick test_phi_measure;
    Alcotest.test_case "encode membership" `Quick test_encode_membership;
    Alcotest.test_case "encode non-membership" `Quick test_encode_non_membership;
    Alcotest.test_case "fast builder = naive builder" `Quick test_encode_matches_naive;
    Alcotest.test_case "encode empty table" `Quick test_encode_empty_table;
    Alcotest.test_case "incremental insert/delete" `Quick test_encode_insert_delete;
    Alcotest.test_case "encode rejects bad order" `Quick test_encode_rejects_bad_order;
    QCheck_alcotest.to_alcotest prop_encode_membership_random_orders;
    QCheck_alcotest.to_alcotest prop_entropy_chain_rule;
    QCheck_alcotest.to_alcotest prop_entropy_monotone_and_gain_nonneg;
    QCheck_alcotest.to_alcotest prop_satcount_equals_distinct_rows;
  ]

let () = Registry.register "relation" suite
