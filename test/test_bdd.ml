(** Kernel tests: the ROBDD invariants, every logical operation checked
    against brute-force truth-table evaluation on random formulas, and
    the node-budget behaviour. *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Sat = Fcv_bdd.Sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- random boolean expressions for brute-force comparison -------------- *)

type bexp =
  | BVar of int
  | BTrue
  | BFalse
  | BNot of bexp
  | BOp of O.binop * bexp * bexp

let rec eval_bexp env = function
  | BVar i -> env.(i)
  | BTrue -> true
  | BFalse -> false
  | BNot e -> not (eval_bexp env e)
  | BOp (op, a, b) ->
    let x = eval_bexp env a and y = eval_bexp env b in
    (match op with
    | O.And -> x && y
    | O.Or -> x || y
    | O.Xor -> x <> y
    | O.Imp -> (not x) || y
    | O.Iff -> x = y
    | O.Diff -> x && not y)

let rec build_bexp m = function
  | BVar i -> M.ithvar m i
  | BTrue -> M.one
  | BFalse -> M.zero
  | BNot e -> O.neg m (build_bexp m e)
  | BOp (op, a, b) -> O.apply m op (build_bexp m a) (build_bexp m b)

let bexp_gen nvars =
  let open QCheck.Gen in
  let rec go depth =
    if depth <= 0 then
      frequency [ (6, map (fun i -> BVar i) (int_bound (nvars - 1))); (1, return BTrue); (1, return BFalse) ]
    else
      frequency
        [
          (2, map (fun i -> BVar i) (int_bound (nvars - 1)));
          (1, map (fun e -> BNot e) (go (depth - 1)));
          ( 4,
            let* op = oneofl [ O.And; O.Or; O.Xor; O.Imp; O.Iff; O.Diff ] in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (BOp (op, a, b)) );
        ]
  in
  int_range 1 6 >>= go

let rec pp_bexp = function
  | BVar i -> Printf.sprintf "x%d" i
  | BTrue -> "T"
  | BFalse -> "F"
  | BNot e -> Printf.sprintf "!(%s)" (pp_bexp e)
  | BOp (op, a, b) ->
    let s = match op with O.And -> "&" | O.Or -> "|" | O.Xor -> "^" | O.Imp -> "=>" | O.Iff -> "<=>" | O.Diff -> "\\" in
    Printf.sprintf "(%s %s %s)" (pp_bexp a) s (pp_bexp b)

let bexp_arb nvars = QCheck.make (bexp_gen nvars) ~print:pp_bexp

let all_envs nvars =
  List.init (1 lsl nvars) (fun mask -> Array.init nvars (fun i -> (mask lsr i) land 1 = 1))

let nvars = 6

(* -- unit tests ----------------------------------------------------------- *)

let test_terminals () =
  let m = M.create ~nvars:2 () in
  check "false is 0" true (M.zero = 0);
  check "true is 1" true (M.one = 1);
  check "terminal detect" true (M.is_terminal M.zero && M.is_terminal M.one);
  check_int "initial size" 2 (M.size m)

let test_mk_collapses () =
  let m = M.create ~nvars:2 () in
  let x = M.ithvar m 0 in
  check "mk with equal children collapses" true (M.mk m 1 x x = x)

let test_mk_hash_consing () =
  let m = M.create ~nvars:2 () in
  let a = M.mk m 0 M.zero M.one in
  let b = M.mk m 0 M.zero M.one in
  check "identical triples share a node" true (a = b)

let test_canonicity_no_redundant () =
  (* ROBDD invariant: every interior node has low <> high and child
     levels strictly deeper. *)
  let m = M.create ~nvars:nvars () in
  let f =
    O.bor m
      (O.band m (M.ithvar m 0) (M.ithvar m 3))
      (O.bxor m (M.ithvar m 1) (M.nithvar m 4))
  in
  let ok = ref true in
  let visited = Hashtbl.create 16 in
  let rec walk id =
    if (not (M.is_terminal id)) && not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      if M.low m id = M.high m id then ok := false;
      if (not (M.is_terminal (M.low m id))) && M.var m (M.low m id) <= M.var m id then
        ok := false;
      if (not (M.is_terminal (M.high m id))) && M.var m (M.high m id) <= M.var m id then
        ok := false;
      walk (M.low m id);
      walk (M.high m id)
    end
  in
  walk f;
  check "invariants hold" true !ok

let test_not_involution () =
  let m = M.create ~nvars:3 () in
  let f = O.bxor m (M.ithvar m 0) (O.band m (M.ithvar m 1) (M.ithvar m 2)) in
  check "double negation" true (O.neg m (O.neg m f) = f)

let test_node_limit () =
  let m = M.create ~nvars:40 ~max_nodes:20 () in
  let build () =
    (* a parity chain blows past 20 nodes quickly *)
    let f = ref (M.ithvar m 0) in
    for i = 1 to 39 do
      f := O.bxor m !f (M.ithvar m i)
    done;
    !f
  in
  (match build () with
  | _ -> Alcotest.fail "expected Node_limit"
  | exception M.Node_limit n -> check_int "budget value carried" 20 n)

let test_node_limit_not_triggered_by_lookups () =
  let m = M.create ~nvars:4 ~max_nodes:12 () in
  let f = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  (* rebuilding the same function costs no fresh nodes *)
  let g = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  check "cached rebuild under budget" true (f = g)

let test_level_limit_typed () =
  (* the 511-level packing ceiling raises the typed Level_limit (the
     serving path catches it like Node_limit), not a bare Failure *)
  let m = M.create ~nvars:0 () in
  for _ = 1 to M.max_level do
    ignore (M.new_var m)
  done;
  check_int "full level budget usable" M.max_level (M.nvars m);
  match M.new_var m with
  | _ -> Alcotest.fail "expected Level_limit"
  | exception M.Level_limit n -> check_int "ceiling carried" M.max_level n

let test_bounded_op_caches () =
  let cap = 16 in
  let m = M.create ~nvars:64 ~max_cache:cap () in
  for i = 0 to 31 do
    ignore (O.band m (M.ithvar m i) (M.ithvar m (63 - i)))
  done;
  let s = M.stats m in
  check "occupancy bounded by the cap" true (s.M.op_cache_entries <= 3 * cap);
  check "cap triggered wholesale flushes" true (s.M.op_cache_flushes > 0);
  (* flushes lose memoisation, never correctness *)
  check "results stable across flushes" true
    (O.band m (M.ithvar m 0) (M.ithvar m 63) = O.band m (M.ithvar m 0) (M.ithvar m 63))

let test_restrict () =
  let m = M.create ~nvars:3 () in
  let f = O.bor m (O.band m (M.ithvar m 0) (M.ithvar m 1)) (M.ithvar m 2) in
  let f0 = O.restrict m f [ (0, true) ] in
  (* with x0=1: x1 or x2 *)
  let expect = O.bor m (M.ithvar m 1) (M.ithvar m 2) in
  check "restrict x0=1" true (f0 = expect);
  let f1 = O.restrict m f [ (0, false); (1, true) ] in
  check "restrict two vars" true (f1 = M.ithvar m 2)

let test_exists_forall_units () =
  let m = M.create ~nvars:3 () in
  let f = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  check "exists x0 (x0&x1) = x1" true (O.exists m [ 0 ] f = M.ithvar m 1);
  check "forall x0 (x0&x1) = false" true (O.forall m [ 0 ] f = M.zero);
  let g = O.bor m (M.ithvar m 0) (M.ithvar m 1) in
  check "forall x0 (x0|x1) = x1" true (O.forall m [ 0 ] g = M.ithvar m 1);
  check "exists over empty set is id" true (O.exists m [] f = f)

let test_replace_simple () =
  let m = M.create ~nvars:4 () in
  let f = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  let g = O.replace m f [ (0, 2); (1, 3) ] in
  let expect = O.band m (M.ithvar m 2) (M.ithvar m 3) in
  check "shift rename" true (g = expect)

let test_replace_order_breaking () =
  (* rename to a variable ABOVE the source: forces the ite path *)
  let m = M.create ~nvars:4 () in
  let f = O.band m (M.ithvar m 2) (M.ithvar m 3) in
  let g = O.replace m f [ (2, 0) ] in
  let expect = O.band m (M.ithvar m 0) (M.ithvar m 3) in
  check "upward rename" true (g = expect)

let test_replace_swap () =
  (* simultaneous swap of two variables *)
  let m = M.create ~nvars:2 () in
  let f = O.bdiff m (M.ithvar m 0) (M.ithvar m 1) in
  (* f = x0 & !x1; swapped = x1 & !x0 *)
  let g = O.replace m f [ (0, 1); (1, 0) ] in
  let expect = O.bdiff m (M.ithvar m 1) (M.ithvar m 0) in
  check "swap rename" true (g = expect)

let test_ite_units () =
  let m = M.create ~nvars:3 () in
  let x0 = M.ithvar m 0 and x1 = M.ithvar m 1 and x2 = M.ithvar m 2 in
  check "ite true" true (O.ite m M.one x1 x2 = x1);
  check "ite false" true (O.ite m M.zero x1 x2 = x2);
  check "ite same" true (O.ite m x0 x1 x1 = x1);
  let f = O.ite m x0 x1 x2 in
  let expect = O.bor m (O.band m x0 x1) (O.band m (O.neg m x0) x2) in
  check "ite expansion" true (f = expect)

let test_satcount () =
  let m = M.create ~nvars:4 () in
  check "count true" true (Sat.count m M.one = 16.);
  check "count false" true (Sat.count m M.zero = 0.);
  check "count literal" true (Sat.count m (M.ithvar m 2) = 8.);
  let f = O.band m (M.ithvar m 0) (M.ithvar m 3) in
  check "count conjunction" true (Sat.count m f = 4.)

let test_any_sat () =
  let m = M.create ~nvars:3 () in
  check "unsat" true (Sat.any m M.zero = None);
  let f = O.band m (M.ithvar m 0) (O.neg m (M.ithvar m 2)) in
  (match Sat.any m f with
  | None -> Alcotest.fail "expected sat"
  | Some cube ->
    let env = Array.make 3 false in
    List.iter (fun (v, b) -> env.(v) <- b) cube;
    check "assignment satisfies" true (M.eval m f env))

let test_cubes_partition_models () =
  let m = M.create ~nvars:4 () in
  let f = O.bor m (O.band m (M.ithvar m 0) (M.ithvar m 1)) (M.ithvar m 3) in
  let total =
    Sat.fold_cubes m f ~init:0. ~f:(fun acc cube ->
        acc +. Float.pow 2. (float_of_int (4 - List.length cube)))
  in
  check "cubes cover the model count" true (total = Sat.count m f)

let test_support () =
  let m = M.create ~nvars:5 () in
  let f = O.band m (M.ithvar m 1) (O.bor m (M.ithvar m 3) (M.nithvar m 4)) in
  Alcotest.(check (list int)) "support" [ 1; 3; 4 ] (M.support m f)

let test_shared_node_count () =
  let m = M.create ~nvars:4 () in
  let f = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  let g = O.band m (M.ithvar m 0) (M.ithvar m 1) in
  check "shared count is not double" true (M.node_count_shared m [ f; g ] = M.node_count m f)

let test_of_codes () =
  let m = M.create ~nvars:4 () in
  let levels = [| 0; 1; 2; 3 |] in
  let codes = [| 0b0011; 0b0101; 0b1111 |] in
  let f = Fcv_bdd.Of_codes.build m ~levels ~codes in
  check "count" true (Sat.count m f = 3.);
  Array.iter
    (fun c ->
      let env = Array.init 4 (fun i -> (c lsr (3 - i)) land 1 = 1) in
      check "member" true (M.eval m f env))
    codes;
  let env = Array.init 4 (fun i -> (0b0100 lsr (3 - i)) land 1 = 1) in
  check "non-member" false (M.eval m f env)

let test_of_codes_rejects_bad_input () =
  let m = M.create ~nvars:4 () in
  Alcotest.check_raises "decreasing levels" (Invalid_argument "Of_codes.build: levels must be strictly increasing")
    (fun () -> ignore (Fcv_bdd.Of_codes.build m ~levels:[| 1; 0 |] ~codes:[| 0 |]))

(* -- property tests -------------------------------------------------------- *)

let prop_apply_matches_truth_table =
  QCheck.Test.make ~count:300 ~name:"apply agrees with truth-table evaluation"
    (bexp_arb nvars) (fun e ->
      let m = M.create ~nvars () in
      let f = build_bexp m e in
      List.for_all (fun env -> M.eval m f env = eval_bexp env e) (all_envs nvars))

let prop_canonicity =
  QCheck.Test.make ~count:200 ~name:"equivalent formulas share one node (canonicity)"
    (QCheck.pair (bexp_arb 4) (bexp_arb 4))
    (fun (e1, e2) ->
      let m = M.create ~nvars:4 () in
      let f1 = build_bexp m e1 in
      let f2 = build_bexp m e2 in
      let equivalent =
        List.for_all (fun env -> eval_bexp env e1 = eval_bexp env e2) (all_envs 4)
      in
      equivalent = (f1 = f2))

let prop_exists_is_or_of_restricts =
  QCheck.Test.make ~count:200 ~name:"exists v f = f|v=0 or f|v=1" (bexp_arb nvars)
    (fun e ->
      let m = M.create ~nvars () in
      let f = build_bexp m e in
      List.for_all
        (fun v ->
          O.exists m [ v ] f
          = O.bor m (O.restrict m f [ (v, false) ]) (O.restrict m f [ (v, true) ]))
        [ 0; 2; 5 ])

let prop_forall_is_and_of_restricts =
  QCheck.Test.make ~count:200 ~name:"forall v f = f|v=0 and f|v=1" (bexp_arb nvars)
    (fun e ->
      let m = M.create ~nvars () in
      let f = build_bexp m e in
      List.for_all
        (fun v ->
          O.forall m [ v ] f
          = O.band m (O.restrict m f [ (v, false) ]) (O.restrict m f [ (v, true) ]))
        [ 1; 3; 4 ])

let prop_appex_fused =
  QCheck.Test.make ~count:200 ~name:"appex = exists after apply"
    (QCheck.pair (bexp_arb nvars) (bexp_arb nvars))
    (fun (e1, e2) ->
      let m = M.create ~nvars () in
      let f = build_bexp m e1 and g = build_bexp m e2 in
      List.for_all
        (fun (op, vars) ->
          O.appex m op vars f g = O.exists m vars (O.apply m op f g))
        [ (O.And, [ 0; 1 ]); (O.Or, [ 2 ]); (O.Imp, [ 0; 3; 5 ]); (O.Xor, [ 4 ]) ])

let prop_appall_fused =
  QCheck.Test.make ~count:200 ~name:"appall = forall after apply"
    (QCheck.pair (bexp_arb nvars) (bexp_arb nvars))
    (fun (e1, e2) ->
      let m = M.create ~nvars () in
      let f = build_bexp m e1 and g = build_bexp m e2 in
      List.for_all
        (fun (op, vars) ->
          O.appall m op vars f g = O.forall m vars (O.apply m op f g))
        [ (O.And, [ 0; 1 ]); (O.Or, [ 2 ]); (O.Imp, [ 0; 3; 5 ]); (O.Iff, [ 1; 4 ]) ])

let prop_replace_semantics =
  QCheck.Test.make ~count:200 ~name:"replace renames variables semantically"
    (bexp_arb 3) (fun e ->
      let m = M.create ~nvars:6 () in
      let f = build_bexp m e in
      (* rename 0,1,2 -> 3,4,5 *)
      let g = O.replace m f [ (0, 3); (1, 4); (2, 5) ] in
      List.for_all
        (fun env3 ->
          let env6 = Array.make 6 false in
          Array.blit env3 0 env6 3 3;
          M.eval m g env6 = eval_bexp env3 e)
        (all_envs 3))

let prop_satcount_matches_enumeration =
  QCheck.Test.make ~count:200 ~name:"satcount equals brute-force model count"
    (bexp_arb nvars) (fun e ->
      let m = M.create ~nvars () in
      let f = build_bexp m e in
      let brute =
        List.length (List.filter (fun env -> eval_bexp env e) (all_envs nvars))
      in
      Sat.count m f = float_of_int brute)

let prop_restrict_semantics =
  QCheck.Test.make ~count:200 ~name:"restrict fixes a variable semantically"
    (QCheck.pair (bexp_arb nvars) QCheck.bool)
    (fun (e, b) ->
      let m = M.create ~nvars () in
      let f = build_bexp m e in
      let g = O.restrict m f [ (2, b) ] in
      List.for_all
        (fun env ->
          let env' = Array.copy env in
          env'.(2) <- b;
          M.eval m g env = eval_bexp env' e)
        (all_envs nvars))

let suite =
  [
    Alcotest.test_case "terminals" `Quick test_terminals;
    Alcotest.test_case "mk collapses equal children" `Quick test_mk_collapses;
    Alcotest.test_case "hash consing" `Quick test_mk_hash_consing;
    Alcotest.test_case "ROBDD invariants" `Quick test_canonicity_no_redundant;
    Alcotest.test_case "negation is involutive" `Quick test_not_involution;
    Alcotest.test_case "node budget raises" `Quick test_node_limit;
    Alcotest.test_case "node budget ignores cache hits" `Quick test_node_limit_not_triggered_by_lookups;
    Alcotest.test_case "level ceiling raises typed Level_limit" `Quick test_level_limit_typed;
    Alcotest.test_case "op caches are size-capped" `Quick test_bounded_op_caches;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "exists/forall units" `Quick test_exists_forall_units;
    Alcotest.test_case "replace (shift)" `Quick test_replace_simple;
    Alcotest.test_case "replace (upward)" `Quick test_replace_order_breaking;
    Alcotest.test_case "replace (swap)" `Quick test_replace_swap;
    Alcotest.test_case "ite units" `Quick test_ite_units;
    Alcotest.test_case "satcount units" `Quick test_satcount;
    Alcotest.test_case "anysat" `Quick test_any_sat;
    Alcotest.test_case "cubes partition models" `Quick test_cubes_partition_models;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "shared node count" `Quick test_shared_node_count;
    Alcotest.test_case "of_codes" `Quick test_of_codes;
    Alcotest.test_case "of_codes input validation" `Quick test_of_codes_rejects_bad_input;
    QCheck_alcotest.to_alcotest prop_apply_matches_truth_table;
    QCheck_alcotest.to_alcotest prop_canonicity;
    QCheck_alcotest.to_alcotest prop_exists_is_or_of_restricts;
    QCheck_alcotest.to_alcotest prop_forall_is_and_of_restricts;
    QCheck_alcotest.to_alcotest prop_appex_fused;
    QCheck_alcotest.to_alcotest prop_appall_fused;
    QCheck_alcotest.to_alcotest prop_replace_semantics;
    QCheck_alcotest.to_alcotest prop_satcount_matches_enumeration;
    QCheck_alcotest.to_alcotest prop_restrict_semantics;
  ]

let () = Registry.register "bdd" suite
