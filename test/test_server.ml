(** Constraint-service tests: the wire protocol, WAL durability and
    torn-tail tolerance, snapshot/recovery parity against an
    uninterrupted run, and the live daemon — concurrent sessions,
    update coalescing, malformed-input isolation, timeouts, and the
    end-to-end crash/restart scenario.

    The daemon tests exploit {!Fcv_server.Server.poll}: most drive the
    event loop and raw client sockets deterministically from one
    thread; only the end-to-end test runs the loop on a real thread so
    the blocking {!Fcv_server.Client} can be used unchanged. *)

module P = Fcv_server.Protocol
module W = Fcv_server.Wal
module St = Fcv_server.State
module S = Fcv_server.Server
module C = Fcv_server.Client
module T = Fcv_util.Telemetry
module R = Fcv_relation
module U = Fcv_datagen.University

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_verdicts = Alcotest.(check (list (pair int string)))

let tmpdir () =
  let path = Filename.temp_file "fcv" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

(* -- protocol -------------------------------------------------------------- *)

let sample_requests =
  [
    P.Ping;
    P.Validate;
    P.Stats;
    P.Snapshot;
    P.Shutdown;
    P.Register { source = "forall s . student(s, 0, _) -> false"; id = None };
    P.Register { source = "x"; id = Some 3 };
    P.Unregister 2;
    P.Insert ("takes", [ "5"; "7" ]);
    P.Delete ("takes", [ "ann"; "cs101" ]);
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match P.parse_request (P.request_to_line ~id:(T.Int 42) req) with
      | Ok (Some (T.Int 42), req') -> check (P.request_name req) true (req = req')
      | _ -> Alcotest.fail ("roundtrip failed for " ^ P.request_name req))
    sample_requests;
  (match P.parse_request (P.request_to_line P.Ping) with
  | Ok (None, P.Ping) -> ()
  | _ -> Alcotest.fail "id-less roundtrip");
  (* WAL records are request lines: logged() marks exactly the mutators *)
  check_int "mutating requests are the logged ones" 5
    (List.length (List.filter P.logged sample_requests))

let test_request_errors () =
  let code line =
    match P.parse_request line with
    | Error (c, _) -> P.error_code_name c
    | Ok _ -> "ok"
  in
  check_str "garbage json" "parse_error" (code "{nope");
  check_str "unknown op" "unknown_op" (code {|{"op":"frobnicate"}|});
  check_str "missing op" "bad_request" (code {|{"table":"t"}|});
  check_str "missing source" "bad_request" (code {|{"op":"register"}|});
  check_str "missing row" "bad_request" (code {|{"op":"insert","table":"t"}|});
  check_str "row not an array" "bad_request" (code {|{"op":"insert","table":"t","row":3}|})

let test_response_lines () =
  let r = P.parse_response (P.ok_line ~id:(T.Int 7) [ ("pong", T.Bool true) ]) in
  check "ok" true r.P.ok;
  check "id echoed" true (r.P.id = Some (T.Int 7));
  check "body field" true (T.Json.member "pong" r.P.body = Some (T.Bool true));
  let e = P.parse_response (P.error_line P.Unknown_table "no such table") in
  check "not ok" false e.P.ok;
  check "error code" true
    (T.Json.member "error" e.P.body = Some (T.String "unknown_table"));
  check "garbage response raises" true
    (match P.parse_response "]junk[" with
    | exception P.Malformed _ -> true
    | _ -> false)

let test_update_stream () =
  check "blank skipped" true (P.update_of_line "   " = None);
  check "comment skipped" true (P.update_of_line "# insert t,1" = None);
  check "insert" true
    (P.update_of_line "insert takes, 5, 7" = Some (P.U_insert ("takes", [ "5"; "7" ])));
  check "delete" true
    (P.update_of_line "delete takes,5,7" = Some (P.U_delete ("takes", [ "5"; "7" ])));
  check "validate" true (P.update_of_line " validate " = Some P.U_validate);
  check "malformed raises" true
    (match P.update_of_line "bogus" with
    | exception P.Malformed _ -> true
    | _ -> false);
  check "unknown command raises" true
    (match P.update_of_line "upsert t,1" with
    | exception P.Malformed _ -> true
    | _ -> false);
  check "to request" true
    (P.request_of_update (P.U_insert ("t", [ "1" ])) = P.Insert ("t", [ "1" ]))

let test_code_row () =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d" 4);
  let _t = R.Database.create_table db ~name:"t" ~attrs:[ ("x", "d"); ("y", "d") ] in
  (match P.code_row db ~table:"t" [ "2"; "3" ] with
  | P.Coded [| 2; 3 |] -> ()
  | _ -> Alcotest.fail "known values code directly");
  (match P.code_row db ~table:"t" [ "2"; "9" ] with
  | P.Unknown_value "9" -> ()
  | _ -> Alcotest.fail "unseen value without intern");
  (match P.code_row ~intern:true db ~table:"t" [ "2"; "9" ] with
  | P.Coded [| 2; 4 |] -> ()
  | _ -> Alcotest.fail "intern assigns the next code");
  check "arity mismatch raises" true
    (match P.code_row db ~table:"t" [ "1" ] with
    | exception P.Malformed _ -> true
    | _ -> false);
  check "unknown table raises" true
    (match P.code_row db ~table:"nope" [ "1" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- WAL ------------------------------------------------------------------- *)

let test_wal_roundtrip_and_torn_tail () =
  let dir = tmpdir () in
  let path = St.wal_path ~dir ~gen:0 in
  let reqs =
    [
      P.Register { source = "forall x . t(x) -> false"; id = Some 0 };
      P.Insert ("t", [ "1"; "2" ]);
      P.Delete ("t", [ "1"; "2" ]);
      P.Unregister 0;
    ]
  in
  let wal = W.open_ path in
  List.iter (W.append wal) reqs;
  check_int "appended counter" 4 (W.appended wal);
  W.close wal;
  let got = ref [] in
  check_int "replays all records" 4 (W.replay path ~f:(fun r -> got := r :: !got));
  check "same records, same order" true (List.rev !got = reqs);
  (* a crash mid-append leaves a torn record: ignored — and truncated,
     so the log stays appendable *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"op\":\"ins";
  close_out oc;
  check_int "torn tail ignored" 4 (W.replay path ~f:ignore);
  (* the double-crash regression: a record acknowledged after that
     recovery must land after the valid prefix (not concatenated onto
     the partial), so the NEXT recovery still sees it *)
  let wal = W.open_ path in
  W.append wal (P.Insert ("t", [ "9" ]));
  W.close wal;
  check_int "post-recovery appends survive another crash" 5 (W.replay path ~f:ignore);
  (* garbage mid-file: everything from the first bad line on is
     unusable, even valid-looking records after it *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "ga rbage\n";
  output_string oc (P.request_to_line (P.Insert ("t", [ "7" ])) ^ "\n");
  close_out oc;
  check_int "replay stops at the first bad record" 5 (W.replay path ~f:ignore);
  (* a complete-looking final record without its newline was never
     fully written: not replayed, truncated like any torn tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (P.request_to_line (P.Insert ("t", [ "8" ])));
  close_out oc;
  check_int "newline-less tail not replayed" 5 (W.replay path ~f:ignore);
  check_int "missing file replays nothing" 0
    (W.replay (Filename.concat dir "absent.log") ~f:ignore)

(* -- snapshots ------------------------------------------------------------- *)

let univ_cfg = { U.default with U.students = 80; courses = 20; takes_per_student = 2 }

let make_base ?(seed = 7) () =
  let db, _, _, _ = U.generate (Fcv_util.Rng.create seed) univ_cfg in
  db

let curriculum = "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
let enrolment = "forall s . student(s, _, _) -> (exists c . takes(s, c))"
let referential = "forall s, c . takes(s, c) -> (exists a . course(c, a))"
let sources = [ curriculum; enrolment; referential ]

let outcome_name = function
  | Core.Checker.Satisfied -> "satisfied"
  | Core.Checker.Violated -> "violated"

let verdicts_of_monitor mon =
  List.sort compare
    (List.map
       (fun r -> (r.Core.Monitor.constraint_.Core.Monitor.id, outcome_name r.Core.Monitor.outcome))
       (Core.Monitor.validate mon))

let verdicts_of_body body =
  match T.Json.member "reports" body with
  | Some (T.List reports) ->
    List.sort compare
      (List.map
         (fun r ->
           match (T.Json.member "constraint" r, T.Json.member "outcome" r) with
           | Some (T.Int id), Some (T.String o) -> (id, o)
           | _ -> Alcotest.fail "malformed report")
         reports)
  | _ -> Alcotest.fail "validate response without reports"

let test_db_dump_roundtrip () =
  let db = make_base () in
  (* growth after generation: code order must survive verbatim, and
     escaping must keep framing characters in values intact *)
  let dict = R.Database.domain db "course_id" in
  ignore (R.Dict.intern dict (R.Value.Int 999));
  ignore (R.Dict.intern dict (R.Value.Str "weird\tvalue\nnewline"));
  let buf = Buffer.create 4096 in
  St.save_db db buf;
  let db' = St.load_db (Buffer.contents buf) in
  check "same domains" true (R.Database.domain_names db' = R.Database.domain_names db);
  List.iter
    (fun name ->
      check ("dict verbatim: " ^ name) true
        (R.Dict.to_list (R.Database.domain db' name) = R.Dict.to_list (R.Database.domain db name)))
    (R.Database.domain_names db);
  check "same tables" true (R.Database.table_names db' = R.Database.table_names db);
  List.iter
    (fun name ->
      let t = R.Database.table db name and t' = R.Database.table db' name in
      check_int ("cardinality: " ^ name) (R.Table.cardinality t) (R.Table.cardinality t');
      let rows tbl =
        let acc = ref [] in
        R.Table.iter tbl (fun row -> acc := Array.copy row :: !acc);
        List.rev !acc
      in
      check ("rows verbatim: " ^ name) true (rows t = rows t'))
    (R.Database.table_names db)

(* Satellite: build server state, append WAL records, simulate a kill
   by dropping the in-memory monitor, recover from snapshot + WAL, and
   compare every verdict against an uninterrupted run of the same
   stream.  The stream grows domains mid-way (entry rebuilds) and a
   validation runs before the snapshot (scratch blocks allocated), so
   the snapshot exercises the variable renumbering in Index_io. *)
let test_crash_recovery_matches_uninterrupted_run () =
  let dir = tmpdir () in
  let r0 = S.recover ~state_dir:dir ~load_base:make_base () in
  let monitor = r0.S.monitor in
  check "fresh directory: no snapshot" false r0.S.from_snapshot;
  check_int "fresh directory: empty wal" 0 r0.S.replayed;
  let upd i =
    if i = 60 then P.Insert ("student", [ "777"; "0"; "3" ]) (* domain growth: rebuild *)
    else if i = 61 then P.Insert ("takes", [ "777"; "0" ])
    else if i = 140 then P.Delete ("course", [ "3"; "3" ]) (* dangling takes rows *)
    else if i mod 3 = 2 then
      P.Delete ("takes", [ string_of_int ((i - 2) mod 80); string_of_int ((i - 2) mod 20) ])
    else P.Insert ("takes", [ string_of_int (i mod 80); string_of_int (i mod 20) ])
  in
  let reqs =
    List.map (fun s -> P.Register { source = s; id = None }) sources
    @ List.init 200 upd
  in
  let wal = ref (W.open_ (St.wal_path ~dir ~gen:0)) in
  List.iteri
    (fun i req ->
      S.apply_logged monitor req;
      W.append !wal req;
      if i = 80 then begin
        (* a check ran before the snapshot: scratch blocks are live *)
        ignore (Core.Monitor.validate monitor);
        (* snapshot the way the server does: the new generation brings
           its own fresh WAL *)
        let gen = St.save ~dir monitor in
        W.close !wal;
        wal := W.open_ (St.wal_path ~dir ~gen)
      end)
    reqs;
  W.close !wal;
  (* the kill: [monitor] is dropped, only dir survives *)
  let r = S.recover ~state_dir:dir ~load_base:make_base () in
  let recovered = r.S.monitor in
  check "recovered from snapshot" true r.S.from_snapshot;
  check_int "replayed exactly the post-snapshot records" (List.length reqs - 81) r.S.replayed;
  check_int "constraints recovered under their ids" 3
    (List.length (Core.Monitor.constraints recovered));
  let reference = (S.recover ~state_dir:(tmpdir ()) ~load_base:make_base ()).S.monitor in
  List.iter (S.apply_logged reference) reqs;
  let expected = verdicts_of_monitor reference in
  check_verdicts "recovered verdicts match the uninterrupted run" expected
    (verdicts_of_monitor recovered);
  check "the stream produced a violation" true
    (List.exists (fun (_, o) -> o = "violated") expected)

(* Regression: a crash landing between the CURRENT rename and the old
   log's sweep must not replay the pre-snapshot WAL on top of the new
   snapshot (which used to abort recovery on the first re-registered
   id).  The WAL is generation-scoped: whichever generation CURRENT
   names, recovery reads that generation's log and no other. *)
let test_snapshot_commits_atomically_with_wal () =
  let dir = tmpdir () in
  let monitor = (S.recover ~state_dir:dir ~load_base:make_base ()).S.monitor in
  let reqs =
    List.map (fun s -> P.Register { source = s; id = None }) sources
    @ List.init 40 (fun i ->
          P.Insert ("takes", [ string_of_int (i mod 80); string_of_int (i mod 20) ]))
  in
  let wal0 = St.wal_path ~dir ~gen:0 in
  let wal = W.open_ wal0 in
  List.iter
    (fun req ->
      S.apply_logged monitor req;
      W.append wal req)
    reqs;
  W.close wal;
  let old_log = In_channel.with_open_bin wal0 In_channel.input_all in
  let gen =
    St.save ~dir
      ~prepare_wal:(fun ~gen -> Out_channel.with_open_bin (St.wal_path ~dir ~gen) ignore)
      monitor
  in
  check_int "first snapshot generation" 1 gen;
  (* resurrect the pre-snapshot log exactly as an unfinished sweep
     would leave it *)
  Out_channel.with_open_bin wal0 (fun oc -> Out_channel.output_string oc old_log);
  let r = S.recover ~state_dir:dir ~load_base:make_base () in
  check "recovered from the snapshot" true r.S.from_snapshot;
  check_int "stale pre-snapshot log not replayed" 0 r.S.replayed;
  check_int "constraints intact" 3 (List.length (Core.Monitor.constraints r.S.monitor));
  check_verdicts "verdicts preserved" (verdicts_of_monitor monitor)
    (verdicts_of_monitor r.S.monitor);
  (* the next snapshot sweeps every stale generation's files *)
  ignore (St.save ~dir r.S.monitor);
  check "stale logs swept" false (Sys.file_exists wal0)

(* Unregistering must stick across restarts, even for constraints that
   a [--constraints] startup file keeps offering: the tombstone is
   carried through WAL replay and persisted in snapshots. *)
let test_unregister_tombstones_survive_recovery () =
  let dir = tmpdir () in
  let monitor = (S.recover ~state_dir:dir ~load_base:make_base ()).S.monitor in
  let append_all gen reqs =
    let wal = W.open_ (St.wal_path ~dir ~gen) in
    List.iter
      (fun req ->
        S.apply_logged monitor req;
        W.append wal req)
      reqs;
    W.close wal
  in
  append_all 0
    [
      P.Register { source = curriculum; id = Some 0 };
      P.Register { source = enrolment; id = Some 1 };
    ];
  let gen = St.save ~dir monitor in
  (* the unregister arrives after the snapshot, so only the WAL has it *)
  append_all gen [ P.Unregister 0 ];
  let r = S.recover ~state_dir:dir ~load_base:make_base () in
  check_int "one constraint left" 1 (List.length (Core.Monitor.constraints r.S.monitor));
  check "unregistered source tombstoned" true (List.mem curriculum r.S.unregistered);
  check "live source not tombstoned" false (List.mem enrolment r.S.unregistered);
  (* a snapshot absorbs the unregister; the tombstone must survive it *)
  ignore (St.save ~dir ~unregistered:r.S.unregistered r.S.monitor);
  let r2 = S.recover ~state_dir:dir ~load_base:make_base () in
  check "tombstone persisted through the snapshot" true
    (List.mem curriculum r2.S.unregistered);
  (* re-registering digs the source up again *)
  append_all (St.current_gen ~dir) [ P.Register { source = curriculum; id = Some 5 } ];
  let r3 = S.recover ~state_dir:dir ~load_base:make_base () in
  check "re-register clears the tombstone" false (List.mem curriculum r3.S.unregistered);
  check_int "both constraints live again" 2
    (List.length (Core.Monitor.constraints r3.S.monitor))

(* -- driving the daemon and raw clients from one thread -------------------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let raw_send fd line =
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s))

(* Poll the server until [fd] has yielded [want] lines (or EOF, if
   [want] is more than the server will send). *)
let pump srv fd ~want =
  let buf = Buffer.create 256 in
  let bytes = Bytes.create 65536 in
  let eof = ref false in
  let lines () =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "")
  in
  let rounds = ref 0 in
  while (not !eof) && List.length (lines ()) < want && !rounds < 500 do
    incr rounds;
    ignore (S.poll ~timeout:0.01 srv);
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ ->
      let n = Unix.read fd bytes 0 (Bytes.length bytes) in
      if n = 0 then eof := true else Buffer.add_subbytes buf bytes 0 n
    | _ -> ()
  done;
  (lines (), !eof)

let in_memory_server ?(tweak = Fun.id) () =
  let sock = Filename.concat (tmpdir ()) "fcv.sock" in
  let monitor = Core.Monitor.create (Core.Index.create (make_base ())) in
  let config = tweak (S.default_config ~addr:sock) in
  (S.create config monitor, sock)

let test_coalesced_validation () =
  let srv, sock = in_memory_server () in
  let fd1 = raw_connect sock and fd2 = raw_connect sock in
  raw_send fd1 (P.request_to_line (P.Register { source = curriculum; id = None }));
  (* a fresh CS student with no enrolments: deterministic violation,
     via a code the index has never seen (transparent rebuild) *)
  raw_send fd1 (P.request_to_line (P.Insert ("student", [ "999"; "0"; "0" ])));
  raw_send fd1 (P.request_to_line P.Validate);
  raw_send fd2 (P.request_to_line P.Validate);
  let lines1, _ = pump srv fd1 ~want:3 in
  let lines2, _ = pump srv fd2 ~want:1 in
  (match List.map P.parse_response lines1 with
  | [ reg; ins; va ] ->
    check "register ok" true reg.P.ok;
    check "insert ok" true ins.P.ok;
    check "validate ok" true va.P.ok;
    check "violation found" true (T.Json.member "violated" va.P.body = Some (T.Int 1))
  | _ -> Alcotest.fail "session 1: expected three responses");
  (match List.map P.parse_response lines2 with
  | [ va2 ] ->
    check "second session validated" true va2.P.ok;
    (* both sessions were answered by ONE dirty-set pass: had the
       passes been sequential, the second would have reported a cached
       (fresh = false) verdict *)
    let fresh body =
      match T.Json.member "reports" body with
      | Some (T.List [ r ]) -> T.Json.member "fresh" r = Some (T.Bool true)
      | _ -> false
    in
    check "shared pass is fresh for both" true (fresh va2.P.body);
    check "identical verdicts" true
      (verdicts_of_body va2.P.body
      = verdicts_of_body (List.nth (List.map P.parse_response lines1) 2).P.body)
  | _ -> Alcotest.fail "session 2: expected one response");
  Unix.close fd1;
  Unix.close fd2;
  S.stop srv

let test_malformed_input_isolation () =
  let srv, sock = in_memory_server () in
  let fd1 = raw_connect sock and fd2 = raw_connect sock in
  raw_send fd1 "{this is not json";
  raw_send fd1 {|{"op":"frobnicate"}|};
  raw_send fd1 {|{"op":"insert","table":"takes"}|};
  raw_send fd1 {|{"op":"insert","table":"nope","row":["1","2"]}|};
  raw_send fd1 {|{"op":"insert","table":"takes","row":["1"]}|};
  raw_send fd1 {|{"op":"register","source":"forall x . ("}|};
  raw_send fd2 (P.request_to_line P.Ping);
  raw_send fd1 (P.request_to_line P.Ping);
  let lines1, eof1 = pump srv fd1 ~want:7 in
  let lines2, _ = pump srv fd2 ~want:1 in
  check "bad session not dropped" false eof1;
  check_int "every bad line answered" 7 (List.length lines1);
  let codes =
    List.map
      (fun l ->
        let r = P.parse_response l in
        if r.P.ok then "ok"
        else
          match T.Json.member "error" r.P.body with
          | Some (T.String c) -> c
          | _ -> "?")
      lines1
  in
  check "error codes in order" true
    (codes
    = [
        "parse_error"; "unknown_op"; "bad_request"; "unknown_table"; "bad_request";
        "constraint_error"; "ok";
      ]);
  (match lines2 with
  | [ l ] -> check "other session unaffected" true (P.parse_response l).P.ok
  | _ -> Alcotest.fail "session 2: expected pong");
  Unix.close fd1;
  Unix.close fd2;
  S.stop srv

let test_partial_line_timeout () =
  let srv, sock =
    in_memory_server ~tweak:(fun c -> { c with S.partial_timeout = 0.05 }) ()
  in
  let fd = raw_connect sock in
  ignore (Unix.write_substring fd "{\"op\":\"pi" 0 9);
  ignore (S.poll ~timeout:0.01 srv);
  ignore (S.poll ~timeout:0.01 srv);
  Unix.sleepf 0.08;
  let _, eof = pump srv fd ~want:1 in
  check "half-received request times out" true eof;
  Unix.close fd;
  S.stop srv

let test_connect_during_drain_refused () =
  let srv, sock = in_memory_server () in
  S.request_drain srv;
  (* connect lands in the backlog before the drain round runs: the
     server must refuse it with [shutting_down], not leave it hanging *)
  let fd = raw_connect sock in
  let lines, _ = pump srv fd ~want:1 in
  (match lines with
  | [ l ] ->
    let r = P.parse_response l in
    check "refused" false r.P.ok;
    check "shutting_down code" true
      (T.Json.member "error" r.P.body = Some (T.String "shutting_down"))
  | _ -> Alcotest.fail "expected exactly the shutting_down refusal");
  Unix.close fd;
  check "server stopped after drain" false (S.poll ~timeout:0.01 srv)

let test_oversized_line_rejected () =
  let srv, sock = in_memory_server ~tweak:(fun c -> { c with S.max_line = 64 }) () in
  let fd = raw_connect sock in
  raw_send fd (String.make 200 'x');
  let lines, eof = pump srv fd ~want:2 in
  (match lines with
  | [ l ] ->
    let r = P.parse_response l in
    check "rejected" false r.P.ok
  | _ -> Alcotest.fail "expected exactly the rejection response");
  check "session closed" true eof;
  Unix.close fd;
  S.stop srv

(* -- end to end ------------------------------------------------------------ *)

(* The acceptance scenario: three constraints registered over a
   generated database, >= 1k interleaved inserts/deletes streamed from
   two concurrent connections, a validation, a kill mid-stream, a
   restart recovering from snapshot + WAL, the rest of the stream, and
   final verdicts matching a single-process Monitor replay. *)
let test_e2e_crash_restart_parity () =
  let dir = tmpdir () in
  let sock = Filename.concat (tmpdir ()) "fcv.sock" in
  let ops =
    List.init 1200 (fun i ->
        if i = 700 then P.U_delete ("course", [ "5"; "5" ]) (* leaves dangling takes *)
        else if i = 901 then P.U_insert ("takes", [ "42"; "999" ]) (* domain growth *)
        else if i mod 3 = 2 then
          P.U_delete ("takes", [ string_of_int ((i - 2) mod 80); string_of_int ((i - 2) mod 20) ])
        else P.U_insert ("takes", [ string_of_int (i mod 80); string_of_int (i mod 20) ]))
  in
  let start () =
    let r = S.recover ~state_dir:dir ~load_base:make_base () in
    let config =
      {
        (S.default_config ~addr:sock) with
        S.state_dir = Some dir;
        snapshot_every = 200;
        idle_timeout = 0.;
        partial_timeout = 0.;
      }
    in
    let srv = S.create ~unregistered:r.S.unregistered config r.S.monitor in
    let th = Thread.create (fun () -> while S.poll ~timeout:0.02 srv do () done) () in
    (srv, th)
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let drop n l = List.filteri (fun i _ -> i >= n) l in
  let stream c1 c2 chunk =
    List.iteri
      (fun i u ->
        ignore (C.ok_exn (C.request (if i mod 2 = 0 then c1 else c2) (P.request_of_update u))))
      chunk
  in
  (* phase 1: register, stream the first half from two connections *)
  let srv1, th1 = start () in
  let c1 = C.connect sock and c2 = C.connect sock in
  let ids =
    List.map
      (fun s ->
        match T.Json.member "constraint" (C.ok_exn (C.request c1 (P.Register { source = s; id = None }))) with
        | Some (T.Int i) -> i
        | _ -> Alcotest.fail "register returned no id")
      sources
  in
  check "ids are 0, 1, 2" true (ids = [ 0; 1; 2 ]);
  stream c1 c2 (take 600 ops);
  let mid = verdicts_of_body (C.ok_exn (C.request c2 P.Validate)) in
  (* the kill: no final snapshot; state dir survives as-is *)
  S.kill srv1;
  Thread.join th1;
  C.close c1;
  C.close c2;
  (* phase 2: restart recovers snapshot + WAL, stream the rest *)
  let srv2, th2 = start () in
  check "auto-snapshot happened before the kill" true
    (Sys.file_exists (Filename.concat dir "CURRENT"));
  let c3 = C.connect sock and c4 = C.connect sock in
  (match T.Json.member "constraints" (C.ok_exn (C.request c3 P.Stats)) with
  | Some (T.Int 3) -> ()
  | _ -> Alcotest.fail "restart lost constraints");
  let mid' = verdicts_of_body (C.ok_exn (C.request c4 P.Validate)) in
  check_verdicts "verdicts identical across the crash" mid mid';
  stream c3 c4 (drop 600 ops);
  let final = verdicts_of_body (C.ok_exn (C.request c3 P.Validate)) in
  check "final state is violated" true (List.exists (fun (_, o) -> o = "violated") final);
  (* graceful drain cuts a last snapshot *)
  (match C.request c4 P.Shutdown with
  | r -> check "drain acknowledged" true r.P.ok
  | exception End_of_file -> Alcotest.fail "shutdown not acknowledged");
  Thread.join th2;
  ignore srv2;
  C.close c3;
  C.close c4;
  (* the reference: one Monitor, same stream, single process *)
  let reference = (S.recover ~state_dir:(tmpdir ()) ~load_base:make_base ()).S.monitor in
  List.iter (fun s -> ignore (Core.Monitor.add reference s)) sources;
  List.iter (fun u -> S.apply_logged reference (P.request_of_update u)) (take 600 ops);
  check_verdicts "mid-stream parity with single-process replay"
    (verdicts_of_monitor reference) mid;
  List.iter (fun u -> S.apply_logged reference (P.request_of_update u)) (drop 600 ops);
  check_verdicts "final parity with single-process replay"
    (verdicts_of_monitor reference) final;
  (* and the post-shutdown snapshot alone reproduces them once more *)
  let r = S.recover ~state_dir:dir ~load_base:make_base () in
  check "final snapshot present" true r.S.from_snapshot;
  check_int "wal empty after graceful shutdown" 0 r.S.replayed;
  check_verdicts "snapshot-only recovery reproduces the final verdicts" final
    (verdicts_of_monitor r.S.monitor)

(* Pipelining e2e: one client writes K requests — client-chosen ids
   0..K-1 on a mix of register / insert / delete / ping / validate —
   in a SINGLE send, with the server polling from its own thread and a
   group-commit window smaller than the burst.  Exactly K replies must
   come back, ids in request order (several flush batches, never a
   reorder), every one ok. *)
let test_pipelined_burst_in_order () =
  let sock = Filename.concat (tmpdir ()) "fcv.sock" in
  let monitor = Core.Monitor.create (Core.Index.create (make_base ())) in
  let config =
    {
      (S.default_config ~addr:sock) with
      S.idle_timeout = 0.;
      partial_timeout = 0.;
      group_commit_window = 4;
    }
  in
  let srv = S.create config monitor in
  let th = Thread.create (fun () -> while S.poll ~timeout:0.02 srv do () done) () in
  let k = 25 in
  let reqs =
    List.init k (fun i ->
        let req =
          if i = 0 then P.Register { source = curriculum; id = None }
          else if i mod 5 = 4 then P.Validate
          else if i mod 5 = 3 then P.Ping
          else if i mod 2 = 0 then
            P.Insert ("takes", [ string_of_int (i mod 80); string_of_int (i mod 20) ])
          else
            P.Delete ("takes", [ string_of_int ((i - 1) mod 80); string_of_int ((i - 1) mod 20) ])
        in
        P.request_to_line ~id:(T.Int i) req)
  in
  let payload = String.concat "\n" reqs ^ "\n" in
  let fd = raw_connect sock in
  ignore (Unix.write_substring fd payload 0 (String.length payload));
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 10. in
  let lines () =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "")
  in
  while List.length (lines ()) < k && Unix.gettimeofday () < deadline do
    match Unix.select [ fd ] [] [] 0.2 with
    | [ _ ], _, _ ->
      let n = Unix.read fd bytes 0 (Bytes.length bytes) in
      if n = 0 then Alcotest.fail "server closed mid-burst"
      else Buffer.add_subbytes buf bytes 0 n
    | _ -> ()
  done;
  let replies = List.map P.parse_response (lines ()) in
  check_int "one reply per pipelined request" k (List.length replies);
  List.iteri
    (fun i r ->
      check (Printf.sprintf "reply %d carries id %d (in order)" i i) true
        (r.P.id = Some (T.Int i));
      check (Printf.sprintf "reply %d ok" i) true r.P.ok)
    replies;
  Unix.close fd;
  S.kill srv;
  Thread.join th

let suite =
  [
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "request errors" `Quick test_request_errors;
    Alcotest.test_case "response lines" `Quick test_response_lines;
    Alcotest.test_case "update stream" `Quick test_update_stream;
    Alcotest.test_case "code_row" `Quick test_code_row;
    Alcotest.test_case "wal roundtrip / torn tail" `Quick test_wal_roundtrip_and_torn_tail;
    Alcotest.test_case "db dump roundtrip" `Quick test_db_dump_roundtrip;
    Alcotest.test_case "crash recovery parity" `Quick
      test_crash_recovery_matches_uninterrupted_run;
    Alcotest.test_case "snapshot commits atomically with its wal" `Quick
      test_snapshot_commits_atomically_with_wal;
    Alcotest.test_case "unregister tombstones survive recovery" `Quick
      test_unregister_tombstones_survive_recovery;
    Alcotest.test_case "coalesced validation" `Quick test_coalesced_validation;
    Alcotest.test_case "connect during drain refused" `Quick
      test_connect_during_drain_refused;
    Alcotest.test_case "malformed-input isolation" `Quick test_malformed_input_isolation;
    Alcotest.test_case "partial-line timeout" `Quick test_partial_line_timeout;
    Alcotest.test_case "oversized line rejected" `Quick test_oversized_line_rejected;
    Alcotest.test_case "e2e crash/restart parity" `Quick test_e2e_crash_restart_parity;
    Alcotest.test_case "pipelined burst answered in order" `Quick
      test_pipelined_burst_in_order;
  ]

let () = Registry.register "server" suite
