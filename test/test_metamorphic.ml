(** Metamorphic tests over the §4 rewrite pipeline: disabling any one
    rewrite rule (prenex pull-ups, leading-quantifier elimination, ∀
    push-down, fused [appex]/[appall] quantification, violation
    polarity, the FD fast path) must never change a verdict — only
    cost.  Checked on random closed constraints against the naive
    ground truth, and on the paper's hand-written university
    constraints. *)

module C = Core.Checker
module Rw = Core.Rewrite

(* Each ablation disables exactly one rule relative to the full
   default pipeline. *)
let no_elimination f =
  let prefix, matrix = Rw.prenex f in
  (Rw.Check_valid, Rw.requantify prefix matrix)

let no_pushdown f = Rw.eliminate_leading (Rw.prenex f)

let ablations =
  [
    ("no-prenex", { C.default_pipeline with C.rewrite = Rw.no_rewrite });
    ("no-leading-elimination", { C.default_pipeline with C.rewrite = no_elimination });
    ("no-forall-pushdown", { C.default_pipeline with C.rewrite = no_pushdown });
    ("unfused-quantifiers", { C.default_pipeline with C.use_appquant = false });
    ("direct-polarity", C.direct_pipeline);
    ("no-fd-fast-path", { C.default_pipeline with C.use_fd_fast_path = false });
    ("naive-pipeline", C.naive_pipeline);
  ]

let holds_under pipeline index f =
  (C.check ~pipeline index f).C.outcome = C.Satisfied

let prop_ablations_preserve_verdicts =
  QCheck.Test.make ~count:150
    ~name:"every single-rule ablation preserves every verdict"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 1_000))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing ->
        let expected = Core.Naive_eval.holds ~typing db f in
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        List.for_all
          (fun (_, pipeline) -> holds_under pipeline index f = expected)
          (("default", C.default_pipeline) :: ablations))

(* Strategy metamorphism: however the checker is steered — forced onto
   the BDD pipeline, forced onto the SQL violation query, or left to
   the legacy thresholding with a budget so tight every compile trips
   and falls back — the verdict never changes.  This is the invariant
   that makes the planner free to choose on cost alone. *)
let strategies =
  [ ("auto", C.Auto); ("force-bdd", C.Force_bdd); ("force-sql", C.Force_sql) ]

let prop_strategies_preserve_verdicts =
  QCheck.Test.make ~count:120
    ~name:"every forced strategy (and a tripping budget) preserves every verdict"
    (QCheck.pair Gen.formula_arbitrary (QCheck.int_range 0 1_000))
    (fun (f, seed) ->
      let f = Gen.close f in
      let db = Gen.random_db seed in
      match Core.Typing.infer db f with
      | exception Core.Typing.Type_error _ -> true
      | typing ->
        let expected = Core.Naive_eval.holds ~typing db f in
        let index = Core.Index.create db in
        C.ensure_indices index [ f ];
        List.for_all
          (fun (_, strategy) ->
            ((C.check ~strategy index f).C.outcome = C.Satisfied) = expected)
          strategies
        &&
        (* legacy thresholding under a budget left too tight to compile
           anything: the fallback must agree too *)
        let mgr = Core.Index.mgr index in
        Fcv_bdd.Manager.set_max_nodes mgr (Fcv_bdd.Manager.size mgr + 8);
        ((C.check index f).C.outcome = C.Satisfied) = expected)

(* The same invariant on realistic constraints: the university
   examples, with and without planted violators. *)
let test_university_ablations () =
  let constraints =
    List.map Core.Fol_parser.of_string
      [
        "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
        "forall s . forall c . takes(s, c) -> (exists g . student(s, g, _))";
        "forall s . forall a1 . forall a2 . \
         student(s, _, a1) and student(s, _, a2) -> a1 = a2";
      ]
  in
  List.iter
    (fun violators ->
      let rng = Fcv_util.Rng.create 11 in
      let db, _, _, _ =
        Fcv_datagen.University.generate rng
          {
            Fcv_datagen.University.default with
            students = 60;
            courses = 15;
            violators;
          }
      in
      let index = Core.Index.create db in
      C.ensure_indices index constraints;
      List.iter
        (fun f ->
          let expected = holds_under C.default_pipeline index f in
          List.iter
            (fun (name, pipeline) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s agrees (violators=%d)" name violators)
                expected (holds_under pipeline index f))
            ablations)
        constraints)
    [ 0; 5 ]

let suite =
  [
    Gen.qcheck_case prop_ablations_preserve_verdicts;
    Gen.qcheck_case prop_strategies_preserve_verdicts;
    Alcotest.test_case "university constraints under every ablation" `Quick
      test_university_ablations;
  ]

let () = Registry.register "metamorphic" suite
