(** Suite registry: every test module registers its suite at module
    initialisation time, so the runner ({!Test_main}) never hard-wires
    the suite list — adding a test file means adding one
    [let () = Registry.register "name" suite] line to that file. *)

let suites : (string * unit Alcotest.test_case list) list ref = ref []

let register name suite =
  if List.mem_assoc name !suites then
    invalid_arg ("Registry.register: duplicate suite name " ^ name);
  suites := (name, suite) :: !suites

(** All registered suites, in registration order. *)
let all () = List.rev !suites
