(** Tests for the FOL → violation-query translator used as the SQL
    baseline and the node-budget fallback. *)

module F = Core.Formula
module A = Fcv_sql.Algebra

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Core.Fol_parser.of_string

let university ~violators =
  let rng = Fcv_util.Rng.create 21 in
  let db, _, _, _ =
    Fcv_datagen.University.generate rng
      { Fcv_datagen.University.default with students = 120; violators }
  in
  db

let test_violation_plan_shape () =
  let db = university ~violators:2 in
  let c =
    parse "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
  in
  let typing = Core.Typing.infer db c in
  let plan, vars, witnesses = Core.To_sql.violation_plan db typing c in
  check "single witness variable" true (List.length vars = 1);
  check "witness recorded" true (List.length witnesses = 1);
  check_int "two violating students" 2 (List.length (Fcv_sql.Exec.run plan))

let test_violated_flag () =
  let dirty = university ~violators:3 in
  let clean = university ~violators:0 in
  let c =
    parse "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))"
  in
  check "dirty violated" true (Core.To_sql.violated dirty (Core.Typing.infer dirty c) c);
  check "clean satisfied" false (Core.To_sql.violated clean (Core.Typing.infer clean c) c)

let test_fd_constraint_translation () =
  let db = Gen.random_db 31 in
  (* r's second attribute functionally determines nothing in general —
     the FD constraint should translate and agree with naive *)
  let c = parse "forall a, b1, b2 . r(a, b1) and r(a, b2) -> b1 = b2" in
  let typing = Core.Typing.infer db c in
  let violated = Core.To_sql.violated db typing c in
  check "fd agrees with naive" (not (Core.Naive_eval.holds db c)) violated

let test_membership_translation () =
  let db = Gen.random_db 32 in
  let c = parse "forall x, y . r(x, y) -> y in {0, 1, 2}" in
  let typing = Core.Typing.infer db c in
  check "membership agrees with naive" (not (Core.Naive_eval.holds db c))
    (Core.To_sql.violated db typing c)

let test_union_translation () =
  let db = Gen.random_db 33 in
  (* ¬C has an OR inside after NNF *)
  let c = parse "forall x . t(x) -> (r(x, 0) and r(x, 1))" in
  let typing = Core.Typing.infer db c in
  check "disjunctive violation agrees" (not (Core.Naive_eval.holds db c))
    (Core.To_sql.violated db typing c)

let test_unsafe_formula_rejected () =
  let db = Gen.random_db 34 in
  (* ¬(∃x. t(x)) = ∀x. ¬t(x): a universal with no positive conjunct to
     anchor it — outside the range-restricted fragment *)
  let c = parse "exists x . t(x)" in
  let typing = Core.Typing.infer db c in
  check "not-safe raised" true
    (match Core.To_sql.violated db typing c with
    | exception Core.To_sql.Not_safe _ -> true
    | _ -> false);
  (* the safe-looking dual translates fine: ¬(∀x. ¬t(x)) = ∃x. t(x) *)
  let c2 = parse "forall x . not t(x)" in
  let typing2 = Core.Typing.infer db c2 in
  check "dual is safe" (not (Core.Naive_eval.holds db c2))
    (Core.To_sql.violated db typing2 c2)

let test_nested_forall_conjunct () =
  let db = Gen.random_db 35 in
  (* violation matrix contains an inner ∀ that must unnest to a double
     anti-join *)
  let c = parse "forall x . t(x) -> (forall y . r(x, y) -> (exists z . s(y, z)))" in
  let typing = Core.Typing.infer db c in
  match Core.To_sql.violated db typing c with
  | violated -> check "nested forall agrees" (not (Core.Naive_eval.holds db c)) violated
  | exception Core.To_sql.Not_safe _ ->
    (* acceptable: outside the fragment; naive fallback covers it *)
    ()

let suite =
  [
    Alcotest.test_case "violation plan shape" `Quick test_violation_plan_shape;
    Alcotest.test_case "violated flag" `Quick test_violated_flag;
    Alcotest.test_case "fd constraint" `Quick test_fd_constraint_translation;
    Alcotest.test_case "membership constraint" `Quick test_membership_translation;
    Alcotest.test_case "disjunctive violation" `Quick test_union_translation;
    Alcotest.test_case "unsafe formula rejected" `Quick test_unsafe_formula_rejected;
    Alcotest.test_case "nested forall conjunct" `Quick test_nested_forall_conjunct;
  ]

let () = Registry.register "to_sql" suite
