(** Shared random generators for property-based tests: small databases
    over a fixed three-table schema, and random closed constraints
    whose ground truth {!Core.Naive_eval} can still compute. *)

module R = Fcv_relation
module F = Core.Formula

(* Small fixed schema: r(a: d1, b: d2), s(b: d2, c: d3), t(a: d1).
   Domain sizes are deliberately non-powers-of-two to exercise the
   validity guards. *)
let d1_size = 3
let d2_size = 5
let d3_size = 3

(** A fresh database with random table contents, driven by [seed]. *)
let random_db seed =
  let rng = Fcv_util.Rng.create seed in
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d1" d1_size);
  R.Database.add_domain db (R.Dict.of_int_range "d2" d2_size);
  R.Database.add_domain db (R.Dict.of_int_range "d3" d3_size);
  let r = R.Database.create_table db ~name:"r" ~attrs:[ ("a", "d1"); ("b", "d2") ] in
  let s = R.Database.create_table db ~name:"s" ~attrs:[ ("b", "d2"); ("c", "d3") ] in
  let t = R.Database.create_table db ~name:"t" ~attrs:[ ("a", "d1") ] in
  let fill table sizes density =
    let rec cartesian = function
      | [] -> [ [] ]
      | n :: rest ->
        let subs = cartesian rest in
        List.concat_map (fun v -> List.map (fun sub -> v :: sub) subs) (List.init n Fun.id)
    in
    List.iter
      (fun tuple ->
        if Fcv_util.Rng.bernoulli rng density then
          R.Table.insert_coded table (Array.of_list tuple))
      (cartesian sizes)
  in
  fill r [ d1_size; d2_size ] 0.4;
  fill s [ d2_size; d3_size ] 0.4;
  fill t [ d1_size ] 0.5;
  db

(* Variables are typed by domain at generation time; we name them by
   domain so typing always succeeds: x1_*, x2_*, x3_*. *)
let var_name dom i = Printf.sprintf "x%d_%d" dom i

(** QCheck generator of closed formulas over the fixed schema.  The
    [depth] bounds connective nesting; quantified variables are always
    used in at least their binding scope's atoms when possible. *)
let formula_gen =
  let open QCheck.Gen in
  (* scope: per-domain list of bound variable names *)
  let pick_term scope dom =
    let vars = scope.(dom - 1) in
    if vars = [] then
      map (fun c -> F.Const (R.Value.Int c)) (int_bound ((match dom with 1 -> d1_size | 2 -> d2_size | _ -> d3_size) - 1))
    else
      frequency
        [
          (3, map (fun i -> F.Var (List.nth vars (i mod List.length vars))) (int_bound 10));
          (1, map (fun c -> F.Const (R.Value.Int c)) (int_bound ((match dom with 1 -> d1_size | 2 -> d2_size | _ -> d3_size) - 1)));
          (1, return F.Wildcard);
        ]
  in
  let atom scope =
    frequency
      [
        ( 3,
          let* ta = pick_term scope 1 in
          let* tb = pick_term scope 2 in
          return (F.Atom ("r", [ ta; tb ])) );
        ( 3,
          let* tb = pick_term scope 2 in
          let* tc = pick_term scope 3 in
          return (F.Atom ("s", [ tb; tc ])) );
        ( 2,
          let* ta = pick_term scope 1 in
          return (F.Atom ("t", [ ta ])) );
        ( 1,
          (* equality / membership over a bound variable when any *)
          let doms = List.filter (fun d -> scope.(d - 1) <> []) [ 1; 2; 3 ] in
          match doms with
          | [] -> return F.True
          | _ ->
            let* d = oneofl doms in
            let vars = scope.(d - 1) in
            let* v = oneofl vars in
            let size = match d with 1 -> d1_size | 2 -> d2_size | _ -> d3_size in
            frequency
              [
                (2, map (fun c -> F.Eq (F.Var v, F.Const (R.Value.Int c))) (int_bound (size - 1)));
                ( 1,
                  map
                    (fun cs ->
                      F.In (F.Var v, List.sort_uniq compare (List.map (fun c -> R.Value.Int c) cs)))
                    (list_size (int_range 1 3) (int_bound (size - 1))) );
                ( 1,
                  if List.length vars >= 2 then
                    let* v2 = oneofl vars in
                    return (F.Eq (F.Var v, F.Var v2))
                  else return (F.Eq (F.Var v, F.Var v)) );
              ] );
      ]
  in
  let counter = ref 0 in
  let rec go scope depth =
    if depth <= 0 then atom scope
    else
      frequency
        [
          (2, atom scope);
          ( 2,
            let* a = go scope (depth - 1) in
            let* b = go scope (depth - 1) in
            oneofl [ F.And (a, b); F.Or (a, b); F.Implies (a, b) ] )
          ;
          ( 1,
            let* a = go scope (depth - 1) in
            return (F.Not a) );
          ( 2,
            let* dom = int_range 1 3 in
            incr counter;
            let x = var_name dom !counter in
            let scope' = Array.copy scope in
            scope'.(dom - 1) <- x :: scope'.(dom - 1);
            let* body = go scope' (depth - 1) in
            let* univ = bool in
            return (if univ then F.Forall ([ x ], body) else F.Exists ([ x ], body)) );
        ]
  in
  let* depth = int_range 1 4 in
  go [| []; []; [] |] depth

(** Shrink toward structurally smaller formulas so a failing property
    reports a minimal counterexample: try replacing a node by its
    subformulas (or a terminal), then shrinking each child in place.
    Binders are kept around shrunk bodies; a body escaping its binder
    is fine because properties re-close formulas with {!close}. *)
let rec formula_shrink f =
  let open QCheck.Iter in
  let both mk a b =
    return a <+> return b
    <+> (formula_shrink a >|= fun a' -> mk a' b)
    <+> (formula_shrink b >|= fun b' -> mk a b')
  in
  match f with
  | F.True | F.False -> empty
  | F.Atom _ | F.Eq _ | F.In _ -> return F.True <+> return F.False
  | F.Not g -> return g <+> (formula_shrink g >|= fun g' -> F.Not g')
  | F.And (a, b) -> both (fun x y -> F.And (x, y)) a b
  | F.Or (a, b) -> both (fun x y -> F.Or (x, y)) a b
  | F.Implies (a, b) -> both (fun x y -> F.Implies (x, y)) a b
  | F.Iff (a, b) -> both (fun x y -> F.Iff (x, y)) a b
  | F.Exists (xs, g) ->
    return g <+> (formula_shrink g >|= fun g' -> F.Exists (xs, g'))
  | F.Forall (xs, g) ->
    return g <+> (formula_shrink g >|= fun g' -> F.Forall (xs, g'))

let formula_arbitrary =
  QCheck.make formula_gen ~print:(fun f -> F.to_string f) ~shrink:formula_shrink

(** Alcotest case for a QCheck test under a {e pinned} RNG seed:
    [QCHECK_SEED] (default 20070415, the one bench/ci.sh exports)
    drives generation, so every run — local or CI — explores the same
    cases, and a failure prints the exact [QCHECK_SEED=...] that
    replays it. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string s with _ -> 20070415)
    | None -> 20070415)

let qcheck_case test =
  match test with
  | QCheck2.Test.Test cell ->
    let name = QCheck.Test.get_name cell in
    Alcotest.test_case name `Slow (fun () ->
        let seed = Lazy.force qcheck_seed in
        let rand = Random.State.make [| seed |] in
        try QCheck.Test.check_cell_exn ~rand cell
        with e ->
          Printf.eprintf "\n  failing seed: replay with QCHECK_SEED=%d\n%!" seed;
          raise e)

(** Quantify away any remaining free variables so the formula is
    closed (the generator only uses bound variables in atoms, so the
    result is already closed; this is a safety net). *)
let close f =
  let free = F.Sset.elements (F.free_vars f) in
  if free = [] then f else F.Forall (free, f)
