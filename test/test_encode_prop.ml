(** Incremental-maintenance property for the relation encoding
    (§5.2): any guarded insert/delete sequence applied to a live
    {!Fcv_relation.Encode.t} leaves a BDD extensionally equal to
    encoding the resulting rows from scratch — checked over the full
    domain product, so a divergence at any tuple is caught. *)

module R = Fcv_relation

let d1 = Gen.d1_size
let d2 = Gen.d2_size

let case =
  QCheck.pair (QCheck.int_range 0 1_000)
    (QCheck.list_of_size
       (QCheck.Gen.int_range 0 60)
       (QCheck.triple QCheck.bool
          (QCheck.int_bound (d1 - 1))
          (QCheck.int_bound (d2 - 1))))

(* A fresh two-attribute table with the same dictionaries as [Gen]'s
   [r], holding exactly [rows]. *)
let table_of rows =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "d1" d1);
  R.Database.add_domain db (R.Dict.of_int_range "d2" d2);
  let r = R.Database.create_table db ~name:"r" ~attrs:[ ("a", "d1"); ("b", "d2") ] in
  Hashtbl.iter (fun row () -> R.Table.insert_coded r row) rows;
  r

let prop_incremental_equals_rebuild =
  QCheck.Test.make ~count:200
    ~name:"Encode insert/delete sequences = from-scratch rebuild"
    case
    (fun (seed, ops) ->
      let db = Gen.random_db seed in
      let r = R.Database.table db "r" in
      let enc = R.Encode.encode r ~order:(R.Encode.identity_order r) in
      (* shadow set of live rows: the encoding is a set, so inserts of
         present rows and deletes of absent ones are skipped (the
         multiset bookkeeping lives in {!Core.Index}, tested there) *)
      let shadow = Hashtbl.create 16 in
      R.Table.iter r (fun row -> Hashtbl.replace shadow (Array.copy row) ());
      List.iter
        (fun (ins, a, b) ->
          let row = [| a; b |] in
          if ins then (
            if not (Hashtbl.mem shadow row) then begin
              Hashtbl.replace shadow (Array.copy row) ();
              R.Encode.insert enc row
            end)
          else if Hashtbl.mem shadow row then begin
            Hashtbl.remove shadow row;
            R.Encode.delete enc row
          end)
        ops;
      let rebuilt = table_of shadow in
      let enc' = R.Encode.encode rebuilt ~order:(R.Encode.identity_order rebuilt) in
      (* extensional equality over every tuple of the domain product *)
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let row = [| a; b |] in
              let want = Hashtbl.mem shadow row in
              R.Encode.mem enc row = want && R.Encode.mem enc' row = want)
            (List.init d2 Fun.id))
        (List.init d1 Fun.id))

let suite = [ Gen.qcheck_case prop_incremental_equals_rebuild ]

let () = Registry.register "encode_prop" suite
