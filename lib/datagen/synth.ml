(** The paper's synthetic workload (§5): relations with [attrs]
    attributes over integer domains of size ≤ [dom], generated as
    1-PROD (a Cartesian product of smaller random relations), k-PROD
    (a union of k such products over freshly drawn attribute
    partitions), or fully RANDOM. *)

module R = Fcv_relation

type family = Prod of int  (** [Prod k] = k-PROD; [Prod 1] = 1-PROD *) | Random

let family_name = function
  | Prod 1 -> "1-PROD"
  | Prod k -> Printf.sprintf "%d-PROD" k
  | Random -> "RANDOM"

(** A database whose domains [d0..d(attrs-1)] are integer ranges of
    size [dom], so active-domain sizes are fixed independent of the
    sample. *)
let make_db ~attrs ~dom =
  let db = R.Database.create () in
  for i = 0 to attrs - 1 do
    R.Database.add_domain db (R.Dict.of_int_range (Printf.sprintf "d%d" i) dom)
  done;
  db

let attr_list attrs = List.init attrs (fun i -> (Printf.sprintf "a%d" i, Printf.sprintf "d%d" i))

(* Random partition of [0, attrs) into [groups] non-empty blocks. *)
let random_partition rng ~attrs ~groups =
  if groups > attrs then invalid_arg "random_partition: more groups than attributes";
  let order = Array.init attrs (fun i -> i) in
  Fcv_util.Rng.shuffle rng order;
  (* choose groups-1 cut points *)
  let cuts = Fcv_util.Rng.sample rng (groups - 1) (attrs - 1) in
  Array.sort compare cuts;
  let cuts = Array.to_list (Array.map (fun c -> c + 1) cuts) @ [ attrs ] in
  let rec slice start = function
    | [] -> []
    | c :: rest -> Array.to_list (Array.sub order start (c - start)) :: slice c rest
  in
  slice 0 cuts

(* Distinct random sub-tuples over the given attribute positions. *)
let random_factor rng ~dom ~positions ~size =
  let seen = Hashtbl.create size in
  let rows = ref [] in
  let n = ref 0 in
  (* cap at the factor's domain capacity *)
  let capacity =
    List.fold_left (fun acc _ -> if acc > size then acc else acc * dom) 1 positions
  in
  let target = min size capacity in
  while !n < target do
    let t = List.map (fun _ -> Fcv_util.Rng.int rng dom) positions in
    if not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      rows := t :: !rows;
      incr n
    end
  done;
  !rows

(* One product block of ~[rows] tuples over a given attribute
   partition: each factor gets ~rows^(1/g) tuples, emit the full
   product. *)
let one_prod rng ~dom ~rows ~partition ~arity emit =
  let g = List.length partition in
  let per_factor =
    int_of_float (Float.round (Float.pow (float_of_int rows) (1. /. float_of_int g)))
  in
  let per_factor = max 2 per_factor in
  let factors =
    List.map
      (fun positions ->
        (positions, random_factor rng ~dom ~positions ~size:per_factor))
      partition
  in
  let tuple = Array.make arity 0 in
  let rec product = function
    | [] -> emit (Array.copy tuple)
    | (positions, rows) :: rest ->
      List.iter
        (fun sub ->
          List.iteri (fun i p -> tuple.(p) <- List.nth sub i) positions;
          product rest)
        rows
  in
  product factors

(** Generate a table named [name] in [db] (domains must exist, see
    {!make_db}).  [rows] is a target size; product structure makes the
    exact count the nearest product/union of factor sizes. *)
let generate rng db ~name ~attrs ~dom ~rows ~family =
  let table = R.Database.create_table db ~name ~attrs:(attr_list attrs) in
  let emit t = R.Table.insert_coded table t in
  (match family with
  | Random ->
    for _ = 1 to rows do
      emit (Array.init attrs (fun _ -> Fcv_util.Rng.int rng dom))
    done
  | Prod k ->
    if k <= 0 then invalid_arg "Synth.generate: Prod k with k <= 0";
    (* one attribute partition shared by every union member: k-PROD
       keeps the multivalued-dependency structure of Section 2 (union
       of products over the same factorisation), only the factor
       contents vary per member *)
    let groups = 2 + (if attrs >= 3 then Fcv_util.Rng.int rng 2 else 0) in
    let groups = min groups attrs in
    let partition = random_partition rng ~attrs ~groups in
    for _ = 1 to k do
      one_prod rng ~dom ~rows:(rows / k) ~partition ~arity:attrs emit
    done);
  table

(** Fresh single-table database + table in one call. *)
let table rng ~name ~attrs ~dom ~rows ~family =
  let db = make_db ~attrs ~dom in
  (db, generate rng db ~name ~attrs ~dom ~rows ~family)
