(** The paper's running example (§1): STUDENT(student_id, department,
    contact), COURSE(course_id, area), TAKES(student_id, course_id),
    with the policy "every CS student takes some Programming course".
    [violators] students are generated in breach of the policy. *)

module R = Fcv_relation

type config = {
  students : int;
  courses : int;
  departments : int;
  areas : int;
  takes_per_student : int;
  violators : int;  (** CS students given no Programming course *)
}

let default =
  {
    students = 1000;
    courses = 100;
    departments = 8;
    areas = 10;
    takes_per_student = 3;
    violators = 0;
  }

(** Department code 0 plays "CS"; area code 0 plays "Programming". *)
let cs = 0

let programming = 0

let make_db cfg =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "student_id" cfg.students);
  R.Database.add_domain db (R.Dict.of_int_range "course_id" cfg.courses);
  R.Database.add_domain db (R.Dict.of_int_range "department" cfg.departments);
  R.Database.add_domain db (R.Dict.of_int_range "area" cfg.areas);
  R.Database.add_domain db (R.Dict.of_int_range "contact" cfg.students);
  db

let generate rng cfg =
  let db = make_db cfg in
  let student =
    R.Database.create_table db ~name:"student"
      ~attrs:
        [ ("student_id", "student_id"); ("department", "department"); ("contact", "contact") ]
  in
  let course =
    R.Database.create_table db ~name:"course"
      ~attrs:[ ("course_id", "course_id"); ("area", "area") ]
  in
  let takes =
    R.Database.create_table db ~name:"takes"
      ~attrs:[ ("student_id", "student_id"); ("course_id", "course_id") ]
  in
  (* courses: spread areas round-robin with noise so Programming has
     cfg.courses / cfg.areas courses *)
  let course_area = Array.init cfg.courses (fun c -> c mod cfg.areas) in
  Array.iteri (fun c a -> R.Table.insert_coded course [| c; a |]) course_area;
  let programming_courses =
    Array.of_list
      (List.filter (fun c -> course_area.(c) = programming) (List.init cfg.courses Fun.id))
  in
  let other_courses =
    Array.of_list
      (List.filter (fun c -> course_area.(c) <> programming) (List.init cfg.courses Fun.id))
  in
  let violators_left = ref cfg.violators in
  for s = 0 to cfg.students - 1 do
    let dept = Fcv_util.Rng.int rng cfg.departments in
    let make_violator = dept = cs && !violators_left > 0 in
    if make_violator then decr violators_left;
    R.Table.insert_coded student [| s; dept; Fcv_util.Rng.int rng cfg.students |];
    let enrolled = Hashtbl.create 4 in
    let enroll c =
      if not (Hashtbl.mem enrolled c) then begin
        Hashtbl.add enrolled c ();
        R.Table.insert_coded takes [| s; c |]
      end
    in
    if make_violator then
      (* only non-Programming courses *)
      for _ = 1 to cfg.takes_per_student do
        enroll (Fcv_util.Rng.choose rng other_courses)
      done
    else begin
      if dept = cs then enroll (Fcv_util.Rng.choose rng programming_courses);
      for _ = 1 to cfg.takes_per_student - if dept = cs then 1 else 0 do
        enroll (Fcv_util.Rng.int rng cfg.courses)
      done
    end
  done;
  (db, student, course, takes)
