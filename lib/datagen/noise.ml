(** The approximate-constraint workload: a single sensor-readings
    table whose functional dependencies hold on all but a tunable
    fraction of rows.  Each FD has its own noise knob, so a soft
    constraint registered at threshold p can be driven just above or
    just below its verdict boundary — the [bench/approx] workload and
    the soft-check differential tests both generate from here.

    Schema: readings(sensor, location, unit, reading).  In clean data
    [sensor -> location] and [sensor -> unit] both hold (each sensor
    is installed in one place and reports one unit); [loc_noise] /
    [unit_noise] corrupt that fraction of rows with a wrong location /
    unit.  Note the {e row}-level noise rate is not the {e pair}-level
    violation rate the checker measures (violating pairs grow roughly
    quadratically with corrupted rows per sensor) — the point of the
    family is that the checker reports the exact pair rate, whatever
    it is. *)

module R = Fcv_relation

type config = {
  rows : int;
  sensors : int;
  locations : int;
  units : int;
  readings : int;  (** active domain of the measurement column *)
  loc_noise : float;  (** fraction of rows with a corrupted location *)
  unit_noise : float;  (** fraction of rows with a corrupted unit *)
}

let default =
  {
    rows = 20_000;
    sensors = 500;
    locations = 120;
    units = 8;
    readings = 1_000;
    loc_noise = 0.0;
    unit_noise = 0.0;
  }

let make_db cfg =
  let db = R.Database.create () in
  List.iter
    (fun (name, size) -> R.Database.add_domain db (R.Dict.of_int_range name size))
    [
      ("sensor", cfg.sensors);
      ("location", cfg.locations);
      ("unit", cfg.units);
      ("reading", cfg.readings);
    ];
  db

(* A corrupted value must differ from the clean one, or the "noise"
   row would satisfy the FD and the knob would undershoot. *)
let corrupt rng ~clean ~size =
  if size <= 1 then clean else (clean + 1 + Fcv_util.Rng.int rng (size - 1)) mod size

(** Generate the readings table into a fresh database; returns it with
    the table.  Deterministic in the seed: the installation map
    (sensor -> location, unit) is drawn first, then rows stream out
    with per-row corruption draws. *)
let generate rng cfg =
  let db = make_db cfg in
  let table =
    R.Database.create_table db ~name:"readings"
      ~attrs:
        [
          ("sensor", "sensor");
          ("location", "location");
          ("unit", "unit");
          ("reading", "reading");
        ]
  in
  let sensor_loc = Array.init cfg.sensors (fun _ -> Fcv_util.Rng.int rng cfg.locations) in
  let sensor_unit = Array.init cfg.sensors (fun _ -> Fcv_util.Rng.int rng cfg.units) in
  for _ = 1 to cfg.rows do
    let s = Fcv_util.Rng.int rng cfg.sensors in
    let loc =
      if cfg.loc_noise > 0. && Fcv_util.Rng.bernoulli rng cfg.loc_noise then
        corrupt rng ~clean:sensor_loc.(s) ~size:cfg.locations
      else sensor_loc.(s)
    in
    let unit =
      if cfg.unit_noise > 0. && Fcv_util.Rng.bernoulli rng cfg.unit_noise then
        corrupt rng ~clean:sensor_unit.(s) ~size:cfg.units
      else sensor_unit.(s)
    in
    R.Table.insert_coded table [| s; loc; unit; Fcv_util.Rng.int rng cfg.readings |]
  done;
  (db, table)

(** The family's FDs as hard constraint sources, named. *)
let fd_constraints =
  [
    ( "sensor determines location",
      "forall s, l1, l2 . readings(s, l1, _, _) and readings(s, l2, _, _) -> l1 = l2" );
    ( "sensor determines unit",
      "forall s, u1, u2 . readings(s, _, u1, _) and readings(s, _, u2, _) -> u1 = u2" );
  ]

(** The same FDs as soft constraints at [threshold] (satisfied while
    the agreeing fraction of projection pairs stays ≥ threshold). *)
let soft_constraints ~threshold =
  List.map
    (fun (name, src) ->
      ( name,
        Printf.sprintf "holds >= %s . %s"
          (Core.Formula.threshold_repr threshold)
          src ))
    fd_constraints
