(** A multi-table retail workload for end-to-end auditing: customers,
    products, orders, shipments, carriers and a channel-policy table,
    with shared domains so referential constraints join across tables,
    and per-dependency violation-injection knobs.

    This is the "downstream adopter" scenario: a batch of user-defined
    constraints (referential integrity, cross-table agreement, FDs,
    channel policies) validated together over a live, multi-table
    database — the workload the paper's introduction motivates beyond
    its single-table experiments. *)

module R = Fcv_relation

type config = {
  customers : int;
  products : int;
  orders : int;
  shipment_rate : float;  (** fraction of orders with a shipment *)
  bad_ref_rate : float;  (** orders referencing unknown customers *)
  bad_dest_rate : float;  (** shipments to a state other than the customer's *)
  bad_channel_rate : float;  (** orders breaking the segment/channel policy *)
}

let default =
  {
    customers = 5_000;
    products = 1_000;
    orders = 30_000;
    shipment_rate = 0.9;
    bad_ref_rate = 0.0;
    bad_dest_rate = 0.0;
    bad_channel_rate = 0.0;
  }

let n_state = 50
let n_city = 400
let n_segment = 4
let n_channel = 5
let n_category = 40
let n_brand = 120
let n_carrier = 12
let n_qty_band = 6

(** Segment s may order through channels {s, s+1 mod n_channel} — a
    simple, checkable policy encoded in the [allowed_channel] table. *)
let allowed segment channel =
  channel = segment mod n_channel || channel = (segment + 1) mod n_channel

let make_db cfg =
  let db = R.Database.create () in
  List.iter
    (fun (name, size) -> R.Database.add_domain db (R.Dict.of_int_range name size))
    [
      ("cust_id", cfg.customers);
      ("prod_id", cfg.products);
      ("order_id", cfg.orders);
      ("city", n_city);
      ("state", n_state);
      ("segment", n_segment);
      ("channel", n_channel);
      ("category", n_category);
      ("brand", n_brand);
      ("carrier", n_carrier);
      ("qty_band", n_qty_band);
    ];
  db

type t = {
  db : R.Database.t;
  customers : R.Table.t;
  products : R.Table.t;
  orders : R.Table.t;
  shipments : R.Table.t;
  carriers : R.Table.t;
  allowed_channel : R.Table.t;
}

let generate rng cfg =
  let db = make_db cfg in
  let customers =
    R.Database.create_table db ~name:"customers"
      ~attrs:[ ("cust_id", "cust_id"); ("city", "city"); ("state", "state"); ("segment", "segment") ]
  in
  let products =
    R.Database.create_table db ~name:"products"
      ~attrs:[ ("prod_id", "prod_id"); ("category", "category"); ("brand", "brand") ]
  in
  let orders =
    R.Database.create_table db ~name:"orders"
      ~attrs:
        [
          ("order_id", "order_id"); ("cust_id", "cust_id"); ("prod_id", "prod_id");
          ("qty_band", "qty_band"); ("channel", "channel");
        ]
  in
  let shipments =
    R.Database.create_table db ~name:"shipments"
      ~attrs:[ ("order_id", "order_id"); ("carrier", "carrier"); ("dest_state", "state") ]
  in
  let carriers =
    R.Database.create_table db ~name:"carriers"
      ~attrs:[ ("carrier", "carrier"); ("home_state", "state") ]
  in
  let allowed_channel =
    R.Database.create_table db ~name:"allowed_channel"
      ~attrs:[ ("segment", "segment"); ("channel", "channel") ]
  in
  (* geography: each city has a home state; customers live there *)
  let city_state = Array.init n_city (fun _ -> Fcv_util.Rng.int rng n_state) in
  let cust_state = Array.make cfg.customers 0 in
  let cust_segment = Array.make cfg.customers 0 in
  for c = 0 to cfg.customers - 1 do
    let city = Fcv_util.Rng.int rng n_city in
    cust_state.(c) <- city_state.(city);
    cust_segment.(c) <- Fcv_util.Rng.int rng n_segment;
    R.Table.insert_coded customers [| c; city; cust_state.(c); cust_segment.(c) |]
  done;
  (* products: brand determines category (an intentional FD) *)
  let brand_category = Array.init n_brand (fun _ -> Fcv_util.Rng.int rng n_category) in
  for p = 0 to cfg.products - 1 do
    let brand = Fcv_util.Rng.int rng n_brand in
    R.Table.insert_coded products [| p; brand_category.(brand); brand |]
  done;
  for k = 0 to n_carrier - 1 do
    R.Table.insert_coded carriers [| k; Fcv_util.Rng.int rng n_state |]
  done;
  for s = 0 to n_segment - 1 do
    for ch = 0 to n_channel - 1 do
      if allowed s ch then R.Table.insert_coded allowed_channel [| s; ch |]
    done
  done;
  (* orders + shipments with injection knobs *)
  for o = 0 to cfg.orders - 1 do
    let cust = Fcv_util.Rng.int rng cfg.customers in
    let seg = cust_segment.(cust) in
    let channel =
      if Fcv_util.Rng.bernoulli rng cfg.bad_channel_rate then
        (* pick a channel the policy forbids for this segment *)
        (seg + 2) mod n_channel
      else if Fcv_util.Rng.bool rng then seg mod n_channel
      else (seg + 1) mod n_channel
    in
    (* bad_ref: the order's customer id is valid as a code but we mark
       the breakage by pointing at a customer of a DIFFERENT state
       than the shipment (referential breakage is modelled by the
       shipment side below; pure dangling references need a code
       outside the customer table, which the shared domain rules out,
       so we delete customers afterwards instead) *)
    R.Table.insert_coded orders [| o; cust; Fcv_util.Rng.int rng cfg.products; Fcv_util.Rng.int rng n_qty_band; channel |];
    if Fcv_util.Rng.bernoulli rng cfg.shipment_rate then begin
      let dest =
        if Fcv_util.Rng.bernoulli rng cfg.bad_dest_rate then
          (cust_state.(cust) + 1 + Fcv_util.Rng.int rng (n_state - 1)) mod n_state
        else cust_state.(cust)
      in
      R.Table.insert_coded shipments [| o; Fcv_util.Rng.int rng n_carrier; dest |]
    end
  done;
  (* dangling references: delete a few customers that have orders *)
  if cfg.bad_ref_rate > 0. then begin
    let victims = max 1 (int_of_float (float_of_int cfg.customers *. cfg.bad_ref_rate)) in
    for _ = 1 to victims do
      let idx = Fcv_util.Rng.int rng (R.Table.cardinality customers) in
      ignore (R.Table.delete_coded customers (Array.copy (R.Table.row customers idx)))
    done
  end;
  { db; customers; products; orders; shipments; carriers; allowed_channel }

(** The audit suite: the constraints a retailer would register, in the
    checker's concrete syntax. *)
let audit_constraints =
  [
    ( "orders reference existing customers",
      "forall o, c . orders(o, c, _, _, _) -> (exists ci, st, sg . customers(c, ci, st, sg))" );
    ( "orders reference existing products",
      "forall o, p . orders(o, _, p, _, _) -> (exists cat, b . products(p, cat, b))" );
    ( "shipments reference existing orders",
      "forall o . shipments(o, _, _) -> (exists c, p . orders(o, c, p, _, _))" );
    ( "shipments go to the customer's state",
      "forall o, c, st, ds . orders(o, c, _, _, _) and customers(c, _, st, _) \
       and shipments(o, _, ds) -> st = ds" );
    ( "channels respect the segment policy",
      "forall c, sg, ch . orders(_, c, _, _, ch) and customers(c, _, _, sg) \
       -> allowed_channel(sg, ch)" );
    ( "brand determines category",
      "forall b, c1, c2 . products(_, c1, b) and products(_, c2, b) -> c1 = c2" );
    ( "carriers are registered",
      "forall k . shipments(_, k, _) -> (exists hs . carriers(k, hs))" );
    ( "customer ids are keys",
      "forall c, s1, s2 . customers(c, _, s1, _) and customers(c, _, s2, _) -> s1 = s2" );
  ]
