(** Synthetic stand-in for the paper's real dataset: 406,769 US/Canada
    customers with schema (areacode, number, city, state, zipcode) and
    active-domain sizes (281, 889, 10894, 50, 17557).

    We reproduce what the experiments actually depend on — the schema,
    those exact active-domain cardinalities, and the near-functional
    correlations (city→state, zipcode→city→state, areacode→state) that
    make the data compressible — with a configurable violation rate
    that breaks each dependency on a small fraction of rows.  See
    DESIGN.md §2 for the substitution rationale. *)

module R = Fcv_relation

let n_areacode = 281
let n_number = 889
let n_city = 10894
let n_state = 50
let n_zip = 17557

type world = {
  city_state : int array;  (** home state of each city *)
  zip_city : int array;  (** home city of each zipcode *)
  area_state : int array;  (** home state of each areacode *)
}

(** Deterministic "geography": fixed assignments of cities, zips and
    areacodes to states, drawn once from the seed. *)
let make_world rng =
  {
    city_state = Array.init n_city (fun _ -> Fcv_util.Rng.int rng n_state);
    zip_city = Array.init n_zip (fun _ -> Fcv_util.Rng.int rng n_city);
    area_state = Array.init n_areacode (fun _ -> Fcv_util.Rng.int rng n_state);
  }

(** Database with the customer domains registered as integer ranges of
    the paper's exact active-domain sizes. *)
let make_db () =
  let db = R.Database.create () in
  R.Database.add_domain db (R.Dict.of_int_range "areacode" n_areacode);
  R.Database.add_domain db (R.Dict.of_int_range "number" n_number);
  R.Database.add_domain db (R.Dict.of_int_range "city" n_city);
  R.Database.add_domain db (R.Dict.of_int_range "state" n_state);
  R.Database.add_domain db (R.Dict.of_int_range "zipcode" n_zip);
  db

let schema_attrs =
  [
    ("areacode", "areacode");
    ("number", "number");
    ("city", "city");
    ("state", "state");
    ("zipcode", "zipcode");
  ]

(* Per-state list of areacodes, derived from the world. *)
let areas_by_state world =
  let buckets = Array.make n_state [] in
  Array.iteri (fun a s -> buckets.(s) <- a :: buckets.(s)) world.area_state;
  Array.map Array.of_list buckets

(** Generate [rows] customers into a fresh table [name].
    [violation_rate] is the per-row probability that one of the
    dependencies (city→state, areacode→state) is deliberately broken —
    0.0 yields data on which those constraints hold. *)
let generate ?(violation_rate = 0.0) rng db ~name ~rows =
  let world = make_world rng in
  let by_state = areas_by_state world in
  let table = R.Database.create_table db ~name ~attrs:schema_attrs in
  for _ = 1 to rows do
    let zip = Fcv_util.Rng.int rng n_zip in
    let city = world.zip_city.(zip) in
    let state = world.city_state.(city) in
    let areacode =
      let candidates = by_state.(state) in
      if Array.length candidates = 0 then Fcv_util.Rng.int rng n_areacode
      else Fcv_util.Rng.choose rng candidates
    in
    let number = Fcv_util.Rng.int rng n_number in
    let state, areacode =
      if violation_rate > 0. && Fcv_util.Rng.bernoulli rng violation_rate then
        (* corrupt either the state or the areacode *)
        if Fcv_util.Rng.bool rng then (Fcv_util.Rng.int rng n_state, areacode)
        else (state, Fcv_util.Rng.int rng n_areacode)
      else (state, areacode)
    in
    R.Table.insert_coded table [| areacode; number; city; state; zip |]
  done;
  (table, world)

(** The Fig. 5(a) "Constraints" relation: [n] rows with schema
    (city, areacode) listing allowed areacodes per city, derived from
    the world's geography so that clean data satisfies them.  If
    [drop_rate] > 0, that fraction of legitimate pairs is withheld,
    making some clean rows violate the constraint set. *)
let constraints_table ?(drop_rate = 0.0) rng db world ~name ~n =
  let by_state = areas_by_state world in
  let table =
    R.Database.create_table db ~name
      ~attrs:[ ("city", "city"); ("areacode", "areacode") ]
  in
  let seen = Hashtbl.create n in
  let count = ref 0 in
  let attempts = ref 0 in
  while !count < n && !attempts < n * 50 do
    incr attempts;
    let city = Fcv_util.Rng.int rng n_city in
    let state = world.city_state.(city) in
    let candidates = by_state.(state) in
    if Array.length candidates > 0 then begin
      let areacode = Fcv_util.Rng.choose rng candidates in
      if (not (Hashtbl.mem seen (city, areacode)))
         && not (Fcv_util.Rng.bernoulli rng drop_rate)
      then begin
        Hashtbl.add seen (city, areacode) ();
        R.Table.insert_coded table [| city; areacode |];
        incr count
      end
    end
  done;
  table
