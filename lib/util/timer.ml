(** Wall-clock timing helpers used by the benchmark harness and the
    constraint checker's overhead accounting. *)

type t = { mutable started : float; mutable acc : float; mutable running : bool }

let now () = Unix.gettimeofday ()

let create () = { started = 0.; acc = 0.; running = false }

let start t =
  t.started <- now ();
  t.running <- true

let stop t =
  if t.running then begin
    t.acc <- t.acc +. (now () -. t.started);
    t.running <- false
  end

let reset t =
  t.acc <- 0.;
  t.running <- false

(** Elapsed seconds accumulated so far (including the running span). *)
let elapsed t = if t.running then t.acc +. (now () -. t.started) else t.acc

(** [time f] runs [f ()] and returns its result with the wall-clock
    seconds it took. *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(** [time_ms f] is [time f] with the duration in milliseconds. *)
let time_ms f =
  let r, s = time f in
  (r, s *. 1000.)

(** Median-of-[repeat] timing for stable micro-benchmarks. The result of
    the last run is returned alongside the median duration in seconds. *)
let time_median ?(repeat = 3) f =
  if repeat <= 0 then invalid_arg "Timer.time_median: repeat must be positive";
  let durations = Array.make repeat 0. in
  let result = ref None in
  for i = 0 to repeat - 1 do
    let r, s = time f in
    durations.(i) <- s;
    result := Some r
  done;
  Array.sort compare durations;
  let median = durations.(repeat / 2) in
  match !result with
  | Some r -> (r, median)
  | None -> assert false
