(** Small bit-arithmetic helpers shared by the finite-domain encoding. *)

(** Number of bits needed to represent values in [0, n), i.e.
    ceil(log2 n); [width 1] = 1 so every domain gets at least one
    boolean variable (matching the paper's ⌈log |dom|⌉ counts, e.g.
    ⌈log 281⌉ + ⌈log 10894⌉ + ⌈log 50⌉ = 9 + 14 + 6 = 29). *)
let width n =
  if n <= 0 then invalid_arg "Bits.width: domain must be non-empty";
  if n = 1 then 1
  else
    let rec go acc w = if acc >= n then w else go (acc * 2) (w + 1) in
    go 1 0

(** [test v i] is bit [i] of [v] where bit 0 is least significant. *)
let test v i = (v lsr i) land 1 = 1

(** log2 of a power of two; used for sat-count scaling. *)
let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let pow2 n =
  if n < 0 || n > 62 then invalid_arg "Bits.pow2";
  1 lsl n
