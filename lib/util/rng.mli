(** Deterministic splittable PRNG (SplitMix64).  Every generator takes
    an explicit state so experiments reproduce from a seed. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

val split : t -> t
(** A child generator with an independent stream. *)

val int : t -> int -> int
(** Uniform in [0, bound). @raise Invalid_argument on bound ≤ 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val bernoulli : t -> float -> bool
val shuffle : t -> 'a array -> unit

val sample : t -> int -> int -> int array
(** [sample t k n]: k distinct integers from [0, n). *)

val choose : t -> 'a array -> 'a

val zipf : t -> s:float -> int -> int
(** Skewed integer in [0, bound): rank r has weight 1/(r+1)^s. *)

val derive : int -> int -> int
(** [derive seed i]: a reproducible non-negative child seed for the
    [i]-th schedule of a run seeded with [seed] — replaying [derive
    seed i] alone reproduces schedule [i]. *)
