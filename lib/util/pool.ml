(** Fixed-size domain worker pool.  One mutex + condition pair guards
    the FIFO queue; each future carries its own mutex + condition so
    awaiting one task never contends with queue traffic.  Workers
    drain the queue before exiting on shutdown, which is what makes
    shutdown-with-queued-tasks graceful rather than lossy. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable state : 'a state;
}

type job = Job : (unit -> 'a) * 'a future -> job

type t = {
  name : string;
  mutable workers : unit Domain.t array;  (** set once, right after spawn *)
  mutex : Mutex.t;  (** guards [queue], [closing] and [joined] *)
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable closing : bool;
  mutable joined : bool;
}

let size t = Array.length t.workers

let fulfil fut v =
  Mutex.lock fut.f_mutex;
  fut.state <- v;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let run_job (Job (f, fut)) =
  let result =
    match Telemetry.with_span "pool.task" f with
    | v ->
      if Telemetry.enabled () then Telemetry.incr (Telemetry.counter "pool.tasks.done");
      Done v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if Telemetry.enabled () then Telemetry.incr (Telemetry.counter "pool.tasks.failed");
      Failed (e, bt)
  in
  fulfil fut result

(* Worker loop: wait for work, run it outside the lock, exit only once
   the pool is closing AND the queue is empty (graceful drain). *)
let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closing do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      run_job job;
      loop ()
    end
  in
  loop ()

let create ?(name = "pool") ~jobs () =
  if jobs < 1 || jobs > 128 then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be in [1, 128] (got %d)" jobs);
  let t =
    {
      name;
      workers = [||];
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      joined = false;
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (worker t));
  if Telemetry.enabled () then
    Telemetry.event "pool.create"
      [ ("name", Telemetry.String name); ("jobs", Telemetry.Int jobs) ];
  t

let submit t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); state = Pending } in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg (Printf.sprintf "Pool.submit: %s is shut down" t.name)
  end;
  Queue.push (Job (f, fut)) t.queue;
  if Telemetry.enabled () then
    Telemetry.gauge_set (Telemetry.gauge "pool.queue_depth") (Queue.length t.queue);
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex;
  fut

let await fut =
  Mutex.lock fut.f_mutex;
  while (match fut.state with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let state = fut.state in
  Mutex.unlock fut.f_mutex;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let peek fut =
  Mutex.lock fut.f_mutex;
  let state = fut.state in
  Mutex.unlock fut.f_mutex;
  match state with Done v -> Some v | Pending | Failed _ -> None

(* Claimed-batch scheduler: the batch is an array of tasks plus one
   atomic claim cursor walking a caller-chosen execution order.  Every
   drainer (min(workers, tasks) of them are enqueued) loops
   fetch-and-add → run → store, so a worker that lands on a cheap task
   immediately claims the next one while a colleague grinds through a
   pathological constraint — no static partition, no per-task future
   traffic, and the expensive-first [order] means the long poles start
   first instead of serialising the tail. *)
let run_ordered t ?order tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let order =
      match order with
      | None -> Array.init n Fun.id
      | Some o ->
        if Array.length o <> n then
          invalid_arg "Pool.run_ordered: order length mismatch";
        let seen = Array.make n false in
        Array.iter
          (fun i ->
            if i < 0 || i >= n || seen.(i) then
              invalid_arg "Pool.run_ordered: order is not a permutation";
            seen.(i) <- true)
          o;
        o
    in
    (* per-slot atomics so every store is a release the awaiting caller
       synchronises with — no reliance on the completion future alone *)
    let results = Array.init n (fun _ -> Atomic.make None) in
    let cursor = Atomic.make 0 in
    let remaining = Atomic.make n in
    let finished = { f_mutex = Mutex.create (); f_cond = Condition.create (); state = Pending } in
    let drain () =
      let rec loop () =
        let k = Atomic.fetch_and_add cursor 1 in
        if k < n then begin
          let i = order.(k) in
          let r =
            match Telemetry.with_span "pool.task" tasks.(i) with
            | v ->
              if Telemetry.enabled () then Telemetry.incr (Telemetry.counter "pool.tasks.done");
              Ok v
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              if Telemetry.enabled () then
                Telemetry.incr (Telemetry.counter "pool.tasks.failed");
              Error (e, bt)
          in
          Atomic.set results.(i) (Some r);
          if Atomic.fetch_and_add remaining (-1) = 1 then fulfil finished (Done ());
          loop ()
        end
      in
      loop ()
    in
    for _ = 1 to min (size t) n do
      ignore (submit t drain)
    done;
    await finished;
    (* every task settled before we re-raise, so a failure does not
       leave tasks running against state the caller tears down next *)
    let first_error = ref None in
    let out =
      Array.map
        (fun slot ->
          match Atomic.get slot with
          | Some (Ok v) -> Some v
          | Some (Error eb) ->
            if !first_error = None then first_error := Some eb;
            None
          | None -> assert false)
        results
    in
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map Option.get out
  end

let run_list t fs = Array.to_list (run_ordered t (Array.of_list fs))

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  let do_join = not t.joined in
  t.joined <- true;
  (* join outside the lock: an exiting worker needs the mutex *)
  Mutex.unlock t.mutex;
  if do_join then Array.iter Domain.join t.workers
