(** Deterministic splittable pseudo-random number generator
    (SplitMix64).  All data generators take an explicit [Rng.t] so every
    experiment is reproducible from a seed; we deliberately avoid the
    global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: golden-gamma increment followed by a 64-bit finaliser. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** A fresh generator whose stream is independent of the parent's
    subsequent output. *)
let split t =
  let seed = next_int64 t in
  { state = seed }

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int as a
     non-negative number *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli draw with success probability [p]. *)
let bernoulli t p = float t < p

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [sample t k n] draws [k] distinct integers from [0, n). *)
let sample t k n =
  if k > n then invalid_arg "Rng.sample: k > n";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.sub arr 0 k

(** [choose t arr] picks a uniform element of a non-empty array. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(** Zipf-like skewed integer in [0, bound): rank r has weight 1/(r+1)^s.
    Used to give synthetic attributes non-uniform marginals. *)
let zipf t ~s bound =
  if bound <= 0 then invalid_arg "Rng.zipf: bound must be positive";
  (* Inverse-CDF over precomputed weights would be costly per call; use
     rejection-free cumulative search on demand for modest bounds. *)
  let total = ref 0. in
  for r = 0 to bound - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (r + 1)) s)
  done;
  let target = float t *. !total in
  let rec find r acc =
    if r >= bound - 1 then r
    else
      let acc = acc +. (1. /. Float.pow (float_of_int (r + 1)) s) in
      if acc >= target then r else find (r + 1) acc
  in
  find 0 0.

(** [derive seed i] is a reproducible child seed: schedule [i] of a
    run seeded with [seed] gets its own independent stream, and the
    pair is enough to replay that schedule in isolation. *)
let derive seed i =
  let t =
    { state = Int64.logxor (Int64.of_int seed)
        (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) }
  in
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
