(** Zero-dependency observability substrate for the whole stack:
    monotonic {e counters}, peak-tracking {e gauges}, log-bucketed
    latency {e histograms} and nestable timed {e spans}, with
    JSON-lines export.

    The paper's headline engineering claim is that the size-threshold
    guard makes BDD intractability cost "a small constant overhead"
    (§4, §5.2); this module is how the repo {e measures} that claim —
    apply-cache hit rates, peak live nodes, which §4.4 rewrite fired,
    when the budget tripped — instead of only observing wall time.

    Telemetry is {b disabled by default} and every recording entry
    point is a no-op fast path behind a single boolean load, so
    instrumented hot code pays (almost) nothing when it is off.  All
    state is global to the process and guarded by one internal lock,
    so worker domains of the validation {!Pool} can record
    concurrently with the main domain; span nesting is tracked per
    domain.  {!reset} clears everything between measurements. *)

(** {1 JSON} *)

(** A tiny self-contained JSON value, so the export format needs no
    external dependency. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

module Json : sig
  exception Parse_error of string

  val to_string : json -> string
  (** Compact one-line serialisation (valid JSON). *)

  val of_string : string -> json
  (** Parse one JSON value.  @raise Parse_error on malformed input. *)

  val member : string -> json -> json option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

(** {1 Switch} *)

val enable : unit -> unit
(** Turn recording on (also resets the event clock's epoch). *)

val disable : unit -> unit

val enabled : unit -> bool

val on : bool ref
(** The switch itself, for hot-path guards where even a call to
    {!enabled} is too much ([if !Telemetry.on then ...] is a single
    load).  Treat as read-only; flip it via {!enable}/{!disable}. *)

val reset : unit -> unit
(** Zero every counter/gauge/histogram and drop all recorded events.
    Registered instrument handles stay valid. *)

(** {1 Instruments} *)

type counter

val counter : string -> counter
(** Intern the counter named [name] (same handle for the same name). *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) when enabled; no-op otherwise. *)

val counter_value : counter -> int

type gauge

val gauge : string -> gauge

val gauge_set : gauge -> int -> unit
(** Record the current value and track the peak seen since {!reset}. *)

val gauge_value : gauge -> int

val gauge_peak : gauge -> int

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one measurement (log₂-bucketed; any unit, conventionally
    milliseconds). *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(lower_bound, count)], ascending. *)

(** {1 Spans and events} *)

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f ()] and record a ["span"] event carrying the span's name,
    its slash-joined nesting path and its duration; also feeds the
    histogram ["span.<name>"].  Nesting is tracked by a stack, and the
    event is recorded even when [f] raises.  When disabled this is
    exactly [f ()]. *)

val event : string -> (string * json) list -> unit
(** Record an ad-hoc event of the given kind with extra fields. *)

val events : unit -> json list
(** Every recorded event, oldest first.  Each is an [Obj] with at
    least [seq] (int), [t_ms] (float since {!enable}/{!reset}) and
    [kind] (string); spans add [name], [path], [ms]. *)

val dropped_events : unit -> int
(** Events discarded because the in-memory buffer cap was reached. *)

(** {1 Export} *)

val jsonl : unit -> string
(** The full dump as JSON-lines: every event in order, then one
    summary line per counter ([{"kind":"counter","name",...,"value"}]),
    gauge ([... "value","peak"]) and histogram
    ([... "count","sum","min","max","buckets":[[lo,count],...]]),
    sorted by name for determinism. *)

val write_jsonl : string -> unit
(** Write {!jsonl} to a file. *)

val print_summary : out_channel -> unit
(** Human-readable digest of all non-zero instruments and span
    timings. *)
