(** Permutation utilities used by the exhaustive variable-ordering
    search (Fig. 2/3 experiments enumerate all 120 orderings of a
    5-attribute relation). *)

let factorial n =
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  go 1 n

(** All permutations of [0, n), in lexicographic order. *)
let all n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
      (x :: l) :: List.map (fun rest -> y :: rest) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  let base = List.init n (fun i -> i) in
  perms base |> List.map Array.of_list |> List.sort compare

(** [iter n f] applies [f] to each permutation of [0, n) without
    materialising the whole list (Heap's algorithm).  The array passed
    to [f] is reused; callers must copy it if they retain it. *)
let iter n f =
  let a = Array.init n (fun i -> i) in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec go k =
    if k = 1 then f a
    else begin
      for i = 0 to k - 1 do
        go (k - 1);
        if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done
    end
  in
  if n = 0 then f a else go n

(** Inverse permutation: [inverse p].(p.(i)) = i. *)
let inverse p =
  let n = Array.length p in
  let inv = Array.make n 0 in
  Array.iteri (fun i pi -> inv.(pi) <- i) p;
  inv

(** Check that [p] is a permutation of [0, n). *)
let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= n || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    p

(** Apply a permutation to an array: result.(i) = arr.(p.(i)). *)
let apply p arr = Array.map (fun i -> arr.(i)) p
