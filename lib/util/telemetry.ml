(** Zero-dependency counters / gauges / histograms / spans with
    JSON-lines export.  See the interface for the design rationale;
    the implementation notes below cover only what the types cannot:

    - recording entry points check one [bool ref] first so the
      disabled path costs a load and a branch;
    - histograms are log₂-bucketed: bucket [i] covers
      [2^(i-offset), 2^(i-offset+1)), with [offset] placing 1.0 in the
      middle of the range so both sub-microsecond and multi-minute
      observations land in real buckets;
    - the event buffer is capped; once full, further events are counted
      as dropped rather than recorded, so a runaway loop cannot eat the
      heap. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

module Json = struct
  exception Parse_error of string

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_nan f then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 128 in
    write buf j;
    Buffer.contents buf

  (* Minimal recursive-descent parser, sufficient for round-tripping
     our own output (and any plain JSON without exotic unicode). *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance () else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'u' ->
                 if !pos + 4 >= n then fail "truncated \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 let code =
                   try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                 in
                 (* ASCII round-trips exactly (all we emit); others are
                    replaced rather than UTF-8 encoded *)
                 Buffer.add_char buf (if code < 128 then Char.chr code else '?');
                 pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elems (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* -- state ----------------------------------------------------------------- *)

type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable value : int; mutable peak : int }

let hist_buckets = 64

(* bucket i covers [2^(i-offset), 2^(i-offset+1)); offset 24 spans
   roughly 6e-8 .. 1.1e12 in the observation's unit *)
let hist_offset = 24

type histogram = {
  h_name : string;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let on = ref false

(* One global lock makes the module domain-safe: worker domains of the
   validation pool record spans/counters concurrently with the main
   domain.  The disabled fast path (a load of [on]) stays lock-free;
   recording under the lock is microseconds, far below the
   milliseconds-scale work it instruments. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
    Mutex.unlock lock;
    v
  | exception e ->
    Mutex.unlock lock;
    raise e

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let max_events = 200_000
let event_log : json list ref = ref [] (* newest first *)
let event_count = ref 0
let dropped = ref 0
let seq = ref 0
let epoch = ref 0.

(* Span nesting is per domain: concurrent pool tasks each get their
   own path, instead of interleaving into one global stack. *)
let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = !on

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.peak <- 0)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 hist_buckets 0;
      h.n <- 0;
      h.sum <- 0.;
      h.mn <- infinity;
      h.mx <- neg_infinity)
    histograms;
  event_log := [];
  event_count := 0;
  dropped := 0;
  seq := 0;
  Domain.DLS.get span_stack := [];
  epoch := Unix.gettimeofday ()

let enable () =
  on := true;
  epoch := Unix.gettimeofday ()

let disable () = on := false

(* -- instruments ----------------------------------------------------------- *)

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters name c;
    c

let incr ?(by = 1) c = if !on then locked (fun () -> c.count <- c.count + by)

let counter_value c = c.count

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; value = 0; peak = 0 } in
    Hashtbl.replace gauges name g;
    g

let gauge_set g v =
  if !on then
    locked (fun () ->
        g.value <- v;
        if v > g.peak then g.peak <- v)

let gauge_value g = g.value
let gauge_peak g = g.peak

let histogram name =
  locked @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        buckets = Array.make hist_buckets 0;
        n = 0;
        sum = 0.;
        mn = infinity;
        mx = neg_infinity;
      }
    in
    Hashtbl.replace histograms name h;
    h

let bucket_of v =
  if v <= 0. then 0
  else
    let b = int_of_float (Float.floor (Float.log2 v)) + hist_offset in
    max 0 (min (hist_buckets - 1) b)

let bucket_lo i = Float.pow 2. (float_of_int (i - hist_offset))

let observe h v =
  if !on then
    locked (fun () ->
        h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
        h.n <- h.n + 1;
        h.sum <- h.sum +. v;
        if v < h.mn then h.mn <- v;
        if v > h.mx then h.mx <- v)

let histogram_count h = h.n
let histogram_sum h = h.sum

let histogram_buckets h =
  let out = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then out := (bucket_lo i, h.buckets.(i)) :: !out
  done;
  !out

(* -- events and spans ------------------------------------------------------- *)

let record kind fields =
  if !on then
    locked (fun () ->
        if !event_count >= max_events then Stdlib.incr dropped
        else begin
          Stdlib.incr seq;
          Stdlib.incr event_count;
          let ev =
            Obj
              (("seq", Int !seq)
              :: ("t_ms", Float ((Unix.gettimeofday () -. !epoch) *. 1000.))
              :: ("kind", String kind)
              :: fields)
          in
          event_log := ev :: !event_log
        end)

let event kind fields = record kind fields

let with_span name f =
  if not !on then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let stack = Domain.DLS.get span_stack in
    stack := name :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let path = String.concat "/" (List.rev !stack) in
        stack := (match !stack with [] -> [] | _ :: tl -> tl);
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        observe (histogram ("span." ^ name)) ms;
        record "span" [ ("name", String name); ("path", String path); ("ms", Float ms) ])
      f
  end

let events () = locked (fun () -> List.rev !event_log)
let dropped_events () = !dropped

(* -- export ----------------------------------------------------------------- *)

let sorted_by_name to_pair tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.map to_pair
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let summary_lines () =
  locked @@ fun () ->
  let cs =
    sorted_by_name (fun c -> (c.c_name, c)) counters
    |> List.filter_map (fun (name, c) ->
           if c.count = 0 then None
           else
             Some
               (Obj
                  [ ("kind", String "counter"); ("name", String name); ("value", Int c.count) ]))
  in
  let gs =
    sorted_by_name (fun g -> (g.g_name, g)) gauges
    |> List.filter_map (fun (name, g) ->
           if g.peak = 0 && g.value = 0 then None
           else
             Some
               (Obj
                  [
                    ("kind", String "gauge");
                    ("name", String name);
                    ("value", Int g.value);
                    ("peak", Int g.peak);
                  ]))
  in
  let hs =
    sorted_by_name (fun h -> (h.h_name, h)) histograms
    |> List.filter_map (fun (name, h) ->
           if h.n = 0 then None
           else
             Some
               (Obj
                  [
                    ("kind", String "histogram");
                    ("name", String name);
                    ("count", Int h.n);
                    ("sum", Float h.sum);
                    ("min", Float h.mn);
                    ("max", Float h.mx);
                    ( "buckets",
                      List
                        (List.map
                           (fun (lo, n) -> List [ Float lo; Int n ])
                           (histogram_buckets h)) );
                  ]))
  in
  cs @ gs @ hs

let jsonl () =
  let lines = List.map Json.to_string (events () @ summary_lines ()) in
  let lines =
    if !dropped > 0 then
      lines
      @ [
          Json.to_string
            (Obj [ ("kind", String "dropped_events"); ("value", Int !dropped) ]);
        ]
    else lines
  in
  String.concat "\n" lines ^ if lines = [] then "" else "\n"

let write_jsonl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (jsonl ()))

let print_summary oc =
  locked @@ fun () ->
  let p fmt = Printf.fprintf oc fmt in
  let counters_l =
    sorted_by_name (fun c -> (c.c_name, c)) counters
    |> List.filter (fun (_, c) -> c.count <> 0)
  in
  if counters_l <> [] then begin
    p "counters:\n";
    List.iter (fun (name, c) -> p "  %-44s %12d\n" name c.count) counters_l
  end;
  let gauges_l =
    sorted_by_name (fun g -> (g.g_name, g)) gauges
    |> List.filter (fun (_, g) -> g.value <> 0 || g.peak <> 0)
  in
  if gauges_l <> [] then begin
    p "gauges (value / peak):\n";
    List.iter (fun (name, g) -> p "  %-44s %12d / %d\n" name g.value g.peak) gauges_l
  end;
  let hists_l =
    sorted_by_name (fun h -> (h.h_name, h)) histograms
    |> List.filter (fun (_, h) -> h.n > 0)
  in
  if hists_l <> [] then begin
    p "histograms (count / sum / min / max):\n";
    List.iter
      (fun (name, h) ->
        p "  %-44s %8d / %10.3f / %8.4f / %10.3f\n" name h.n h.sum h.mn h.mx)
      hists_l
  end;
  if !dropped > 0 then p "(%d events dropped past the %d-event buffer cap)\n" !dropped max_events
