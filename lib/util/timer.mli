(** Wall-clock timing. *)

type t

val now : unit -> float
(** Seconds since the epoch (monotonic enough for benchmarking). *)

val create : unit -> t
val start : t -> unit
val stop : t -> unit
val reset : t -> unit

val elapsed : t -> float
(** Accumulated seconds, including any running span. *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

val time_ms : (unit -> 'a) -> 'a * float

val time_median : ?repeat:int -> (unit -> 'a) -> 'a * float
(** Median-of-[repeat] duration; returns the last run's result. *)
