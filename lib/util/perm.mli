(** Permutation utilities for the exhaustive ordering search. *)

val factorial : int -> int

val all : int -> int array list
(** All permutations of [0, n), lexicographic. *)

val iter : int -> (int array -> unit) -> unit
(** Heap's algorithm; the array passed to the callback is reused. *)

val inverse : int array -> int array
val is_permutation : int array -> bool
val apply : int array -> 'a array -> 'a array
