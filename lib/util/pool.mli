(** A fixed-size OCaml 5 domain worker pool with a FIFO work queue,
    futures and graceful shutdown.

    The pool is the substrate of parallel constraint validation: the
    checker partitions a batch of constraints across workers, each of
    which owns a private BDD manager + index replica (managers are
    single-threaded by design — see DESIGN.md §Parallelism).  The pool
    itself is workload-agnostic: it runs closures.

    Thread-safety: every operation may be called from any domain.
    Tasks run on worker domains; a task's exception is captured with
    its backtrace and re-raised by {!await} in the submitting domain.
    Each task runs under a telemetry span ["pool.task"] and bumps the
    ["pool.tasks"] counter, so instrumented runs can see queue
    pressure and per-task latency. *)

type t

type 'a future

val create : ?name:string -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains ([1 <= jobs <= 128]).  [name] labels
    telemetry.  @raise Invalid_argument on a size out of range. *)

val size : t -> int
(** The number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  Tasks start in FIFO order (completion order is up
    to the scheduler).  @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value or re-raises its
    exception (with the worker-side backtrace attached). *)

val peek : 'a future -> 'a option
(** [Some v] if the task already finished with [v]; [None] while
    pending.  Does not re-raise — a failed task stays [None] (use
    {!await} to observe the exception). *)

val run_ordered : t -> ?order:int array -> (unit -> 'a) array -> 'a array
(** Run a batch through the claimed-batch scheduler: workers share one
    atomic claim cursor over [order] (a permutation of the task
    indices; identity by default), so scheduling is dynamic — a worker
    finishing a cheap task immediately claims the next unstarted one,
    and one pathological task can no longer serialise the pass behind
    a static partition.  Callers put expensive tasks first in [order]
    (cost-descending) so the long poles start immediately.  Results
    are indexed like the input.  If any task raised, the first failure
    {e in input order} is re-raised — after every task has settled, so
    no task is left running against state the caller tears down next.
    @raise Invalid_argument if [order] is not a permutation. *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** {!run_ordered} in input order, on lists: submit every thunk, await
    them all, results keep the input order, first input-order failure
    re-raised after all settle. *)

val shutdown : t -> unit
(** Graceful shutdown: already-queued tasks are drained and completed,
    further {!submit}s are refused, and every worker domain is joined.
    Idempotent; safe to call with tasks still queued. *)
