(** Bit arithmetic shared by the finite-domain encoding. *)

val width : int -> int
(** Bits needed for values in [0, n): ⌈log₂ n⌉, at least 1.
    @raise Invalid_argument on n ≤ 0. *)

val test : int -> int -> bool
(** [test v i]: bit [i] of [v], LSB = 0. *)

val log2 : int -> int
val pow2 : int -> int
