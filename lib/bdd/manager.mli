(** Hash-consed store of ROBDD nodes.

    Nodes are dense integer ids; {!zero} and {!one} are the terminals.
    Interior nodes satisfy the ROBDD invariants by construction (no
    redundant tests, unique triples, strictly increasing levels), so
    semantic equivalence is id equality (Bryant's canonicity — Fact 1
    of the paper).

    Variables are identified with their {e level} (0 is tested first);
    a different variable order is realised by allocating levels in a
    different sequence.  The optional {b node budget} makes {!mk}
    raise {!Node_limit} once exceeded — the §4 size-threshold that
    lets the constraint checker abandon BDD processing and fall back
    to SQL. *)

type t

exception Node_limit of int
(** Raised by {!mk} when the node budget is exceeded. *)

exception Level_limit of int
(** Raised by {!new_var} at the 511-level packing ceiling.  The
    serving path recovers by recycling abandoned levels (dense rebuild
    through [Core.Index_io]); a one-shot check treats it like
    {!Node_limit} and falls back to SQL/naive processing. *)

val zero : int
(** The [false] terminal (id 0). *)

val one : int
(** The [true] terminal (id 1). *)

val terminal_level : int
(** Pseudo-level of terminals ([max_int]); deeper than any variable. *)

val create : ?max_nodes:int -> ?max_cache:int -> nvars:int -> unit -> t
(** Fresh manager with [nvars] pre-allocated variables (more can be
    added with {!new_var}).  [max_nodes = 0] (default) means no
    budget; [max_cache] caps each operation cache's entry count
    (default {!default_max_cache}, 0 = unbounded). *)

val max_level : int
(** Hard level ceiling (511) imposed by node packing; {!new_var}
    raises {!Level_limit} beyond it. *)

val nvars : t -> int
val size : t -> int
(** Total allocated nodes, terminals included. *)

val max_nodes : t -> int
val set_max_nodes : t -> int -> unit

val default_max_cache : int
(** Default per-cache entry cap (2{^20}). *)

val max_cache : t -> int
val set_max_cache : t -> int -> unit
(** Per-cache entry cap; reaching it flushes that cache wholesale
    (BuDDy-style) so memo tables cannot grow without bound on a
    long-running serving path.  [0] disables the cap. *)

val new_var : t -> int
(** Allocate a fresh variable at the bottom of the order.
    @raise Level_limit at the packing ceiling (511 levels). *)

val new_vars : t -> int -> int array

val is_terminal : int -> bool
val var : t -> int -> int
(** Level of a node; {!terminal_level} for terminals. *)

val low : t -> int -> int
val high : t -> int -> int

val mk : t -> int -> int -> int -> int
(** [mk t v lo hi] is the unique reduced node testing level [v].
    @raise Node_limit when the budget is exceeded. *)

val ithvar : t -> int -> int
(** BDD of the positive literal at a level. *)

val nithvar : t -> int -> int
(** BDD of the negative literal at a level. *)

(** {2 Operation caches} — used by {!Ops}; exposed for completeness. *)

val cache_find : t -> int -> int -> int -> int option
val cache_add : t -> int -> int -> int -> int -> unit
val ite_cache_find : t -> int -> int -> int -> int option
val ite_cache_add : t -> int -> int -> int -> int -> unit

val quant_signature : t -> descr:string -> int
(** Intern a quantification description into a small signature for
    {!quant_cache_find}; recycling flushes the cache when signatures
    run out. *)

val quant_cache_find : t -> int -> int -> int -> int option
val quant_cache_add : t -> int -> int -> int -> int -> unit

val clear_caches : t -> unit
(** Drop all memoisation (nodes are kept).  Benchmarks call this
    between repetitions so they measure cold operations. *)

val cache_entries : t -> int
(** Current total occupancy of the operation caches (entries). *)

(** {2 Operation-call accounting} — used by {!Ops}; each public entry
    point counts itself in a per-manager slot so telemetry can report
    apply/quantify/rename call mixes per check. *)

val op_apply : int
val op_neg : int
val op_ite : int
val op_restrict : int
val op_exists : int
val op_forall : int
val op_appex : int
val op_appall : int
val op_replace : int

val count_op : t -> int -> unit

(** {2 Inspection} *)

type stats = {
  nodes : int;  (** currently allocated, terminals included *)
  peak_nodes : int;  (** high-water mark of [nodes] *)
  variables : int;
  unique_hits : int;  (** unique-table probes answered by an existing node *)
  unique_misses : int;  (** probes that allocated a fresh node *)
  unique_buckets : int;  (** unique-table bucket count *)
  unique_max_bucket : int;  (** longest unique-table collision chain *)
  op_cache_hits : int;
  op_cache_lookups : int;
  op_cache_entries : int;  (** current occupancy across the memo tables *)
  op_cache_flushes : int;  (** cap-triggered wholesale cache resets *)
  budget_trips : int;  (** times {!Node_limit} was raised *)
  compact_reclaimed : int;  (** nodes reclaimed by all {!compact} runs *)
  op_calls : (string * int) list;  (** public {!Ops} entry-point call counts *)
}

val stats : t -> stats

val cache_hit_rate : ?before:stats -> stats -> float
(** Apply-cache hit rate between two snapshots (whole history when
    [before] is omitted); 0 when no lookups happened. *)

val compact : t -> int list -> int list
(** Garbage-collect: keep only nodes reachable from the given roots
    and return their remapped ids.  All other node ids become invalid
    and every operation cache is flushed. *)

val node_count : t -> int -> int
(** Reachable nodes from a root, terminals included — the "BDD size"
    of the paper's experiments. *)

val node_count_shared : t -> int list -> int
(** Shared node count of several roots. *)

val support : t -> int -> int list
(** Levels occurring in a BDD, ascending. *)

val eval : t -> int -> bool array -> bool
(** Evaluate under a total assignment indexed by level. *)
