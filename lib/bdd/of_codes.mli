(** Direct top-down ROBDD construction from a sorted code set — the
    fast path for encoding a relation (each tuple packed into one
    integer under the attribute order).  O(width × n) hash-cons
    operations, no apply-cache traffic, reduced by construction. *)

val build : Manager.t -> levels:int array -> codes:int array -> int
(** [build m ~levels ~codes] accepts exactly [codes].

    [levels] must be strictly increasing; [levels.(0)] carries the
    most significant bit.  [codes] must be sorted ascending and
    duplicate-free, each within [0, 2^width). *)
