(** Direct top-down ROBDD construction from a sorted set of codes.

    This is the fast path for encoding a relation: each tuple is packed
    into one integer code under the chosen attribute order, the codes
    are sorted, and the BDD is built by recursive binary partitioning —
    O(width × n) hash-cons operations, no apply-cache traffic, and the
    result is reduced by construction.  A naive per-tuple OR of
    minterms is kept in {!Encode} as a cross-checked reference. *)

module M = Manager

(** [build m ~levels ~codes] is the BDD accepting exactly [codes].

    [levels] must be strictly increasing; [levels.(0)] carries the most
    significant bit of each code.  [codes] must be sorted ascending and
    duplicate-free, each in [0, 2^width). *)
let build m ~levels ~codes =
  let w = Array.length levels in
  let n = Array.length codes in
  if w > 0 && w < 63 && n > 0 && codes.(n - 1) >= 1 lsl w then
    invalid_arg "Of_codes.build: code exceeds width";
  for i = 1 to w - 1 do
    if levels.(i - 1) >= levels.(i) then
      invalid_arg "Of_codes.build: levels must be strictly increasing"
  done;
  (* First index in [lo, hi) whose bit [j] is set; the range is sorted
     on that bit because all more-significant bits agree within it. *)
  let split j lo hi =
    let rec bsearch lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if Fcv_util.Bits.test codes.(mid) j then bsearch lo mid
        else bsearch (mid + 1) hi
      end
    in
    bsearch lo hi
  in
  let rec go d lo hi =
    if lo >= hi then M.zero
    else if d = w then M.one
    else begin
      let j = w - 1 - d in
      let mid = split j lo hi in
      let low = go (d + 1) lo mid in
      let high = go (d + 1) mid hi in
      M.mk m levels.(d) low high
    end
  in
  go 0 0 n
