(** Logical operations on ROBDDs.

    All operations are memoised against the manager's shared caches;
    results are canonical node ids, so [f = g] decides logical
    equivalence and {!is_true}/{!is_satisfiable} are O(1) — the
    properties behind the paper's leading-quantifier-elimination
    rewrite (§4.1). *)

type binop = And | Or | Xor | Imp | Iff | Diff
(** [Diff] is [f ∧ ¬g]. *)

val op_code : binop -> int
val op_eval : binop -> bool -> bool -> bool

val apply : Manager.t -> binop -> int -> int -> int
(** Memoised Shannon-expansion apply. *)

val neg : Manager.t -> int -> int

val band : Manager.t -> int -> int -> int
val bor : Manager.t -> int -> int -> int
val bxor : Manager.t -> int -> int -> int
val bimp : Manager.t -> int -> int -> int
val biff : Manager.t -> int -> int -> int
val bdiff : Manager.t -> int -> int -> int

val ite : Manager.t -> int -> int -> int -> int
(** If-then-else; used by {!replace} for order-breaking renames. *)

val restrict : Manager.t -> int -> (int * bool) list -> int
(** Fix variables to constants; the fixed levels leave the support. *)

val exists : Manager.t -> int list -> int -> int
(** Bit-level existential quantification over a set of levels. *)

val forall : Manager.t -> int list -> int -> int

val appex : Manager.t -> binop -> int list -> int -> int -> int
(** [appex m op levels f g] = [exists m levels (apply m op f g)]
    without materialising the intermediate — BuDDy's [bdd_appex],
    the target of the §4.3 ∃-pull-up rewrite. *)

val appall : Manager.t -> binop -> int list -> int -> int -> int
(** ∀ analogue — BuDDy's [bdd_appall]. *)

val replace : Manager.t -> int -> (int * int) list -> int
(** Simultaneous variable renaming [(from_level, to_level)] — the
    rename behind the §4.2 equi-join rewrite.  Target variables must
    not occur in the support (except under a simultaneous swap).
    Order-preserving renames are linear; others fall back to {!ite}. *)

val equal : int -> int -> bool
val is_true : int -> bool
val is_false : int -> bool
val is_satisfiable : int -> bool
