(** BDD (de)serialisation: a compact children-first text format for
    the node graphs reachable from a root set. *)

exception Format_error of string

val save :
  ?rename:(int -> int) -> ?nvars:int -> Manager.t -> roots:int list -> out_channel -> unit
(** [rename] maps manager variable ids to file variable ids (identity
    by default) and [nvars] overrides the recorded variable count;
    together they let callers compact away variables the roots never
    reference.  [rename] must be strictly increasing on each root's
    own variables. *)

val save_string : ?rename:(int -> int) -> ?nvars:int -> Manager.t -> roots:int list -> string
(** {!save} into an in-memory string — the replica-hydration path of
    parallel validation serialises once and lets every worker load
    from the same bytes. *)

val load : Manager.t -> in_channel -> int list
(** Load into a manager with at least as many variables (same intended
    order); returns the renumbered roots.  Hash-conses against
    existing nodes.  @raise Format_error *)

val load_lines : Manager.t -> (unit -> string option) -> int list
(** {!load} from a pull source of lines ([None] = end of input). *)

val save_file : Manager.t -> roots:int list -> string -> unit
val load_file : Manager.t -> string -> int list
