(** BDD (de)serialisation: a compact children-first text format for
    the node graphs reachable from a root set. *)

exception Format_error of string

val save : Manager.t -> roots:int list -> out_channel -> unit

val load : Manager.t -> in_channel -> int list
(** Load into a manager with at least as many variables (same intended
    order); returns the renumbered roots.  Hash-conses against
    existing nodes.  @raise Format_error *)

val save_file : Manager.t -> roots:int list -> string -> unit
val load_file : Manager.t -> string -> int list
