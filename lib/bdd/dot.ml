(** Graphviz export of a BDD, for debugging and documentation. *)

module M = Manager

(** Render [root] as a dot digraph.  [label] maps a level to a display
    name (defaults to ["x<level>"]).  Low edges are dashed, high edges
    solid, as is conventional. *)
let to_string ?(label = fun v -> Printf.sprintf "x%d" v) m root =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  t0 [shape=box,label=\"0\"];\n";
  Buffer.add_string buf "  t1 [shape=box,label=\"1\"];\n";
  let visited = Hashtbl.create 64 in
  let name id =
    if id = M.zero then "t0" else if id = M.one then "t1" else Printf.sprintf "n%d" id
  in
  let rec go id =
    if (not (M.is_terminal id)) && not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" id (label (M.var m id)));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> %s [style=dashed];\n" id (name (M.low m id)));
      Buffer.add_string buf (Printf.sprintf "  n%d -> %s;\n" id (name (M.high m id)));
      go (M.low m id);
      go (M.high m id)
    end
  in
  go root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?label m root path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?label m root))
