(** Arbitrary-precision natural numbers for exact model counts.

    {!Sat.count} returns a [float], which stops being an integer-exact
    representation above [2^53]; a violation {e rate} compared against
    a threshold must not inherit that rounding (a near-threshold count
    can round across the verdict boundary — see
    [Test_approx.count_precision]).  This module is the minimal exact
    alternative: unsigned naturals in base [2^24] limbs with just the
    operations sat-counting and threshold comparison need — add,
    multiply, shift by powers of two, compare.  No division beyond the
    small-divisor form used for decimal printing, no external
    dependencies. *)

let limb_bits = 24
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

(* Little-endian limb array, normalised: no trailing zero limb (the
   canonical zero is the empty array).  Limbs fit 24 bits so a
   schoolbook product of two limbs plus carries stays far below
   [max_int] on 64-bit OCaml. *)
type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n : t =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let one = of_int 1

let to_int_opt (a : t) =
  (* Fits a native int iff the limb-recomposition never overflows. *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) lsr limb_bits then None
    else go (i - 1) ((acc lsl limb_bits) lor a.(i))
  in
  go (Array.length a - 1) 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let out = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(n) <- !carry;
  normalize out

(** [sub a b] is [a - b].
    @raise Invalid_argument when [b > a] (naturals only). *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    normalize out
  end

(** [shift_left a k] is [a * 2^k]. *)
let shift_left (a : t) k : t =
  if k < 0 then invalid_arg "Nat.shift_left: negative";
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

(** Nearest float (exact below [2^53]; the conversion every reported
    rate goes through, so BDD-side and recount-side rates agree
    bit-for-bit whenever both compute the same integers). *)
let to_float (a : t) =
  let acc = ref 0. in
  for i = Array.length a - 1 downto 0 do
    acc := (!acc *. float_of_int limb_base) +. float_of_int a.(i)
  done;
  !acc

(* Divide by a small positive int in place-free style; returns
   (quotient, remainder).  [d * limb_base] must not overflow, which
   holds for every divisor used here (10^9 * 2^24 < 2^54). *)
let divmod_small (a : t) d =
  if d <= 0 then invalid_arg "Nat.divmod_small";
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let to_string (a : t) =
  if is_zero a then "0"
  else begin
    (* Peel base-10^9 chunks, least significant first. *)
    let chunks = ref [] in
    let rest = ref a in
    while not (is_zero !rest) do
      let q, r = divmod_small !rest 1_000_000_000 in
      chunks := r :: !chunks;
      rest := q
    done;
    match !chunks with
    | [] -> assert false
    | hd :: tl ->
      String.concat "" (string_of_int hd :: List.map (Printf.sprintf "%09d") tl)
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
