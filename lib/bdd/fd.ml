(** Finite-domain variables on top of the boolean BDD kernel.

    A finite-domain variable with domain size [d] is a {e block} of
    [⌈log₂ d⌉] boolean variables (§2.1 of the paper); the block's
    levels are consecutive in the order, MSB shallowest.  All
    relational encoding, constraint compilation and quantification work
    through blocks. *)

module M = Manager

type block = {
  name : string;
  dom_size : int;
  levels : int array;  (** strictly increasing; [levels.(0)] is the MSB *)
}

let width b = Array.length b.levels

(** Allocate a fresh block of consecutive variables at the bottom of
    the current order. *)
let alloc m ~name ~dom_size =
  if dom_size <= 0 then invalid_arg "Fd.alloc: empty domain";
  let w = Fcv_util.Bits.width dom_size in
  { name; dom_size; levels = M.new_vars m w }

(** Bit [j] (LSB = 0) of code [c] lives at level [levels.(w-1-j)]. *)
let level_of_bit b j = b.levels.(width b - 1 - j)

(** Build the conjunction of literals [(level, value)] directly,
    bottom-up — linear, no apply-cache traffic. *)
let cube m lits =
  let lits = List.sort (fun (a, _) (b, _) -> compare b a) lits (* deepest first *) in
  List.fold_left
    (fun acc (v, value) ->
      if value then M.mk m v M.zero acc else M.mk m v acc M.zero)
    M.one lits

(** BDD of [x = c]. *)
let eq_const m b c =
  if c < 0 || c >= b.dom_size then invalid_arg "Fd.eq_const: value out of domain";
  let w = width b in
  let lits = List.init w (fun j -> (level_of_bit b j, Fcv_util.Bits.test c j)) in
  cube m lits

(** The minterm of a tuple spanning several blocks: ⋀ᵢ (xᵢ = cᵢ). *)
let tuple_minterm m pairs =
  let lits =
    List.concat_map
      (fun (b, c) ->
        if c < 0 || c >= b.dom_size then
          invalid_arg "Fd.tuple_minterm: value out of domain";
        List.init (width b) (fun j -> (level_of_bit b j, Fcv_util.Bits.test c j)))
      pairs
  in
  cube m lits

(** BDD of [x < c] over the block's bits (MSB-first comparator). *)
let lt_const m b c =
  if c <= 0 then M.zero
  else if c >= 1 lsl width b then M.one
  else begin
    let w = width b in
    (* below(d) = BDD over levels.(d..) accepting codes whose suffix is
       < the corresponding suffix of c. *)
    let rec below d =
      if d = w then M.zero
      else begin
        let bit = Fcv_util.Bits.test c (w - 1 - d) in
        let rest = below (d + 1) in
        if bit then M.mk m b.levels.(d) M.one rest
        else M.mk m b.levels.(d) rest M.zero
      end
    in
    below 0
  end

(** Domain-validity guard: codes in [0, dom_size). *)
let valid m b = lt_const m b b.dom_size

(** BDD of [x = y] for blocks of possibly different widths.  Extra
    high bits of the wider block are forced to 0. *)
let eq_blocks m b1 b2 =
  let w = max (width b1) (width b2) in
  let bit_bdd blk j =
    if j < width blk then Some (level_of_bit blk j) else None
  in
  let acc = ref M.one in
  for j = 0 to w - 1 do
    let term =
      match (bit_bdd b1 j, bit_bdd b2 j) with
      | Some l1, Some l2 -> Ops.biff m (M.ithvar m l1) (M.ithvar m l2)
      | Some l1, None -> M.nithvar m l1
      | None, Some l2 -> M.nithvar m l2
      | None, None -> assert false
    in
    acc := Ops.band m !acc term
  done;
  !acc

(** Membership [x ∈ S] built by the direct top-down construction over
    sorted codes (no apply); [codes] need not be sorted or deduped. *)
let in_set m b codes =
  let codes = List.sort_uniq compare codes in
  List.iter
    (fun c ->
      if c < 0 || c >= b.dom_size then invalid_arg "Fd.in_set: value out of domain")
    codes;
  let codes = Array.of_list codes in
  Of_codes.build m ~levels:b.levels ~codes

(** ∃x. f where x ranges over the {e active domain} of the block: the
    bit-level ∃ is guarded with the validity BDD, fused via [appex]. *)
let exists m b f =
  let guard = valid m b in
  Ops.appex m Ops.And (Array.to_list b.levels) guard f

(** ∀x. f over the active domain: ∀bits. (valid ⇒ f), fused via
    [appall]. *)
let forall m b f =
  let guard = valid m b in
  Ops.appall m Ops.Imp (Array.to_list b.levels) guard f

(** Unguarded bit-level quantification (exact when the domain size is a
    power of two, or when f is known false outside the domain). *)
let exists_bits m b f = Ops.exists m (Array.to_list b.levels) f

let forall_bits m b f = Ops.forall m (Array.to_list b.levels) f

(** Rename block [src] to block [dst] (same domain). *)
let rename m f ~src ~dst =
  if src.dom_size <> dst.dom_size then invalid_arg "Fd.rename: domain mismatch";
  if src.levels = dst.levels then f
  else begin
    let pairs =
      List.init (width src) (fun i -> (src.levels.(i), dst.levels.(i)))
    in
    Ops.replace m f pairs
  end

(** Set the bits of [b] in an evaluation environment to code [c]. *)
let set_env b c env =
  for j = 0 to width b - 1 do
    env.(level_of_bit b j) <- Fcv_util.Bits.test c j
  done

(** Read the code of [b] from a full boolean assignment over levels. *)
let read_env b env =
  let w = width b in
  let c = ref 0 in
  for j = 0 to w - 1 do
    if env.(level_of_bit b j) then c := !c lor (1 lsl j)
  done;
  !c
