(** Hash-consed store of ROBDD nodes.

    Nodes are identified by dense integer ids; ids [0] and [1] are the
    terminals [false] and [true].  Every interior node [(v, lo, hi)]
    satisfies the ROBDD invariants by construction:

    - no redundant test: [lo <> hi],
    - uniqueness: at most one node exists per [(v, lo, hi)] triple,
    - ordering: [v] is strictly smaller than the levels of [lo]/[hi].

    Variables are identified with their {e level} (0 = root-most).  A
    client that wants a different variable order builds a manager whose
    level assignment reflects that order (see {!Space}).

    The manager carries an optional {b node budget}: once the number of
    live nodes exceeds it, {!mk} raises {!Node_limit}, which the
    constraint checker catches to fall back to SQL processing — the
    size-threshold strategy of §4 of the paper. *)

exception Node_limit of int
(** Raised by {!mk} when the node budget is exceeded; carries the
    budget that was exceeded. *)

exception Level_limit of int
(** Raised by {!new_var} when the 511-level packing ceiling is
    reached; carries the ceiling.  Long-running index stores recover
    by recycling abandoned levels (a dense rebuild through
    [Index_io]); one-shot checks treat it like {!Node_limit} and fall
    back to SQL/naive processing. *)

(* Slots of the per-manager operation-call counter array; one public
   entry point of {!Ops} each. *)
let op_slot_names =
  [| "apply"; "neg"; "ite"; "restrict"; "exists"; "forall"; "appex"; "appall"; "replace" |]

let op_apply = 0
let op_neg = 1
let op_ite = 2
let op_restrict = 3
let op_exists = 4
let op_forall = 5
let op_appex = 6
let op_appall = 7
let op_replace = 8

type t = {
  mutable nvars : int;
  mutable var_ : int array;  (* level of each node; terminals get terminal_level *)
  mutable low_ : int array;
  mutable high_ : int array;
  mutable size : int;  (* allocated nodes, including the two terminals *)
  unique : (int, int) Hashtbl.t;  (* packed (v,lo,hi) -> id *)
  apply_cache : (int, int) Hashtbl.t;  (* packed (op,f,g) -> id *)
  ite_cache : (int * int * int, int) Hashtbl.t;  (* (f,g,h) -> id *)
  quant_cache : (int, int) Hashtbl.t;  (* packed (sig,f,g) -> id *)
  quant_sigs : (string, int) Hashtbl.t;  (* (op,quant,levels) -> small sig *)
  mutable max_nodes : int;  (* 0 = unlimited *)
  mutable max_cache : int;  (* per-cache entry cap; 0 = unbounded *)
  mutable mk_hits : int;  (* unique-table hits *)
  mutable mk_misses : int;  (* fresh nodes created *)
  mutable cache_hits : int;
  mutable cache_lookups : int;
  mutable cache_flushes : int;  (* wholesale cap-triggered cache resets *)
  mutable peak_size : int;  (* largest [size] ever reached *)
  mutable budget_trips : int;  (* times Node_limit was raised *)
  mutable compact_reclaimed : int;  (* nodes dropped by all compactions *)
  op_calls : int array;  (* indexed by the op_* slots above *)
}

let terminal_level = max_int

(* Packing limits: level < 2^9, node ids < 2^27 (≈134M nodes), which is
   far beyond the paper's 10^7-node ceiling; 9 + 27 + 27 = 63 bits
   exactly fills OCaml's native int. *)
let max_level = 511
let max_id = (1 lsl 27) - 1

let zero = 0
let one = 1

(* Default per-cache entry cap: a memo table holding a million entries
   of a long-dead computation is pure ballast on the serving path, so
   the caches flush wholesale (BuDDy-style) once they reach this size.
   Rebuilding the memo costs one cold pass; hit rates recover within a
   check. *)
let default_max_cache = 1 lsl 20

let create ?(max_nodes = 0) ?(max_cache = default_max_cache) ~nvars () =
  if nvars < 0 || nvars > max_level then invalid_arg "Manager.create: nvars";
  let cap = 1024 in
  let var_ = Array.make cap terminal_level in
  let low_ = Array.make cap (-1) in
  let high_ = Array.make cap (-1) in
  (* Terminals: id 0 = false, id 1 = true.  Their low/high point to
     themselves so accidental traversal is harmless. *)
  low_.(0) <- 0;
  high_.(0) <- 0;
  low_.(1) <- 1;
  high_.(1) <- 1;
  {
    nvars;
    var_;
    low_;
    high_;
    size = 2;
    unique = Hashtbl.create 4096;
    apply_cache = Hashtbl.create 4096;
    ite_cache = Hashtbl.create 256;
    quant_cache = Hashtbl.create 1024;
    quant_sigs = Hashtbl.create 16;
    max_nodes;
    max_cache;
    mk_hits = 0;
    mk_misses = 0;
    cache_hits = 0;
    cache_lookups = 0;
    cache_flushes = 0;
    peak_size = 2;
    budget_trips = 0;
    compact_reclaimed = 0;
    op_calls = Array.make (Array.length op_slot_names) 0;
  }

let nvars t = t.nvars
let size t = t.size
let max_nodes t = t.max_nodes
let set_max_nodes t n = t.max_nodes <- n
let max_cache t = t.max_cache
let set_max_cache t n = t.max_cache <- n

(** Allocate a fresh variable at the bottom of the current order and
    return its level.
    @raise Level_limit at the 511-level packing ceiling. *)
let new_var t =
  if t.nvars >= max_level then raise (Level_limit max_level);
  let v = t.nvars in
  t.nvars <- t.nvars + 1;
  v

(** Allocate [n] consecutive fresh variables; returns their levels. *)
let new_vars t n = Array.init n (fun _ -> new_var t)

let is_terminal id = id < 2
let var t id = t.var_.(id)
let low t id = t.low_.(id)
let high t id = t.high_.(id)

let pack_node v lo hi = v lor (lo lsl 9) lor (hi lsl 36)

let grow t =
  let cap = Array.length t.var_ in
  let cap' = cap * 2 in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.var_ <- extend t.var_ terminal_level;
  t.low_ <- extend t.low_ (-1);
  t.high_ <- extend t.high_ (-1)

(** The hash-consing constructor.  Returns the unique node for
    [(v, lo, hi)], eliding redundant tests. *)
let mk t v lo hi =
  if lo = hi then lo
  else begin
    assert (v >= 0 && v < t.nvars);
    assert (v < t.var_.(lo) && v < t.var_.(hi));
    let key = pack_node v lo hi in
    match Hashtbl.find_opt t.unique key with
    | Some id ->
      t.mk_hits <- t.mk_hits + 1;
      id
    | None ->
      if t.max_nodes > 0 && t.size >= t.max_nodes then begin
        t.budget_trips <- t.budget_trips + 1;
        Fcv_util.Telemetry.event "bdd.budget_trip"
          [
            ("budget", Fcv_util.Telemetry.Int t.max_nodes);
            ("nodes", Fcv_util.Telemetry.Int t.size);
          ];
        raise (Node_limit t.max_nodes)
      end;
      if t.size > max_id then failwith "Manager.mk: node store exhausted";
      if t.size >= Array.length t.var_ then grow t;
      let id = t.size in
      t.size <- t.size + 1;
      if t.size > t.peak_size then t.peak_size <- t.size;
      t.var_.(id) <- v;
      t.low_.(id) <- lo;
      t.high_.(id) <- hi;
      Hashtbl.replace t.unique key id;
      t.mk_misses <- t.mk_misses + 1;
      id
  end

(** The BDD of a single positive literal at level [v]. *)
let ithvar t v = mk t v zero one

(** The BDD of a single negative literal at level [v]. *)
let nithvar t v = mk t v one zero

(* -- operation cache ----------------------------------------------------- *)

(* Binary-operation cache shared by all apply-style operations.  Keys
   pack a small opcode with the two operand ids.  Fused
   quantify-and-apply operations (appex/appall) use per-call tables
   instead because their result depends on the variable set. *)

let cache_key op f g = op lor (f lsl 5) lor (g lsl 32)

let cache_find t op f g =
  t.cache_lookups <- t.cache_lookups + 1;
  match Hashtbl.find_opt t.apply_cache (cache_key op f g) with
  | Some r ->
    t.cache_hits <- t.cache_hits + 1;
    Some r
  | None -> None

(* Cap enforcement shared by the three memo tables: once a table
   reaches [max_cache] entries it is flushed wholesale before the new
   entry goes in — the BuDDy recipe.  Selective eviction is not worth
   the bookkeeping: keys are packed ints with no cheap recency order,
   and a cold re-derivation is one apply pass. *)
let bounded_add t cache key r =
  if t.max_cache > 0 && Hashtbl.length cache >= t.max_cache then begin
    Hashtbl.reset cache;
    t.cache_flushes <- t.cache_flushes + 1
  end;
  Hashtbl.replace cache key r

let cache_add t op f g r = bounded_add t t.apply_cache (cache_key op f g) r

let ite_cache_find t f g h =
  t.cache_lookups <- t.cache_lookups + 1;
  match Hashtbl.find_opt t.ite_cache (f, g, h) with
  | Some r ->
    t.cache_hits <- t.cache_hits + 1;
    Some r
  | None -> None

let ite_cache_add t f g h r = bounded_add t t.ite_cache (f, g, h) r

(* Quantification results depend on (binary op, quantifier op, level
   set); interning that triple as a small signature lets every
   quantify/appquant call share one packed-int-keyed cache — the same
   trick as BuDDy's quantification cache. *)
let quant_signature t ~descr =
  match Hashtbl.find_opt t.quant_sigs descr with
  | Some s -> s
  | None ->
    let s = Hashtbl.length t.quant_sigs in
    if s > 63 then begin
      (* unbounded distinct level sets: recycle by flushing *)
      Hashtbl.reset t.quant_sigs;
      Hashtbl.reset t.quant_cache;
      Hashtbl.replace t.quant_sigs descr 0;
      0
    end
    else begin
      Hashtbl.replace t.quant_sigs descr s;
      s
    end

(* 6-bit signature + two 27-bit node ids = 60 bits, within OCaml's
   native int *)
let quant_cache_key sig_ f g = sig_ lor (f lsl 6) lor (g lsl 33)

let quant_cache_find t sig_ f g =
  t.cache_lookups <- t.cache_lookups + 1;
  match Hashtbl.find_opt t.quant_cache (quant_cache_key sig_ f g) with
  | Some r ->
    t.cache_hits <- t.cache_hits + 1;
    Some r
  | None -> None

let quant_cache_add t sig_ f g r = bounded_add t t.quant_cache (quant_cache_key sig_ f g) r

let clear_caches t =
  Hashtbl.reset t.apply_cache;
  Hashtbl.reset t.ite_cache;
  Hashtbl.reset t.quant_cache;
  Hashtbl.reset t.quant_sigs

(** Current total occupancy of the three memo tables (entries, not
    bytes) — the lifecycle policy's cache-occupancy gauge. *)
let cache_entries t =
  Hashtbl.length t.apply_cache + Hashtbl.length t.ite_cache + Hashtbl.length t.quant_cache

(** Count one public {!Ops} entry-point call in slot [i] (one of the
    [op_*] constants). *)
let count_op t i = t.op_calls.(i) <- t.op_calls.(i) + 1

type stats = {
  nodes : int;
  peak_nodes : int;
  variables : int;
  unique_hits : int;
  unique_misses : int;
  unique_buckets : int;
  unique_max_bucket : int;
  op_cache_hits : int;
  op_cache_lookups : int;
  op_cache_entries : int;  (* current occupancy across the memo tables *)
  op_cache_flushes : int;  (* cap-triggered wholesale resets *)
  budget_trips : int;
  compact_reclaimed : int;
  op_calls : (string * int) list;
}

let stats t =
  let hstats = Hashtbl.stats t.unique in
  {
    nodes = t.size;
    peak_nodes = t.peak_size;
    variables = t.nvars;
    unique_hits = t.mk_hits;
    unique_misses = t.mk_misses;
    unique_buckets = hstats.Hashtbl.num_buckets;
    unique_max_bucket = hstats.Hashtbl.max_bucket_length;
    op_cache_hits = t.cache_hits;
    op_cache_lookups = t.cache_lookups;
    op_cache_entries = cache_entries t;
    op_cache_flushes = t.cache_flushes;
    budget_trips = t.budget_trips;
    compact_reclaimed = t.compact_reclaimed;
    op_calls = Array.to_list (Array.mapi (fun i n -> (op_slot_names.(i), n)) t.op_calls);
  }

(** Apply-cache hit rate over a window: [cache_hit_rate after ~before]
    is hits/lookups between two {!stats} snapshots (0 when no
    lookups). *)
let cache_hit_rate ?(before : stats option) (after : stats) =
  let h0, l0 =
    match before with
    | Some b -> (b.op_cache_hits, b.op_cache_lookups)
    | None -> (0, 0)
  in
  let lookups = after.op_cache_lookups - l0 in
  if lookups <= 0 then 0.
  else float_of_int (after.op_cache_hits - h0) /. float_of_int lookups

(** Number of nodes reachable from [root], terminals included —
    the "BDD size" reported throughout the paper's experiments. *)
let node_count t root =
  let visited = Hashtbl.create 256 in
  let count = ref 0 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      incr count;
      if not (is_terminal id) then begin
        go t.low_.(id);
        go t.high_.(id)
      end
    end
  in
  go root;
  !count

(** Shared node count across several roots (the paper's shared-node
    implementation remark: conjunction of BDDs costs only additive
    space). *)
let node_count_shared t roots =
  let visited = Hashtbl.create 256 in
  let count = ref 0 in
  let rec go id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      incr count;
      if not (is_terminal id) then begin
        go t.low_.(id);
        go t.high_.(id)
      end
    end
  in
  List.iter go roots;
  !count

(** Garbage collection: rebuild the node store keeping only the nodes
    reachable from [roots], and return the remapping of the given
    roots.  Every other node id becomes invalid, and all operation
    caches are flushed — callers must re-derive any BDD they want to
    keep through the returned roots.  Dead nodes accumulate naturally
    under incremental maintenance (each update's OR/DIFF abandons the
    previous root), so long-running index stores call this
    periodically. *)
let compact t roots =
  let size_before = t.size in
  let remap = Hashtbl.create (Hashtbl.length t.unique) in
  Hashtbl.replace remap zero zero;
  Hashtbl.replace remap one one;
  (* collect reachable interior nodes in children-first order *)
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem remap id) then begin
      visit t.low_.(id);
      visit t.high_.(id);
      Hashtbl.replace remap id (-1);
      order := id :: !order
    end
  in
  List.iter visit roots;
  let nodes = List.rev !order in
  (* reset the store and re-create nodes through mk (budget is
     temporarily lifted: compaction can only shrink) *)
  let saved_budget = t.max_nodes in
  t.max_nodes <- 0;
  t.size <- 2;
  Hashtbl.reset t.unique;
  Hashtbl.reset t.apply_cache;
  Hashtbl.reset t.ite_cache;
  Hashtbl.reset t.quant_cache;
  Hashtbl.reset t.quant_sigs;
  (* old var/low/high entries above the shrinking [size] are stale but
     unreachable; mk overwrites slots as it reallocates *)
  let old_var = Array.copy t.var_ and old_low = Array.copy t.low_ and old_high = Array.copy t.high_ in
  List.iter
    (fun id ->
      let lo = Hashtbl.find remap old_low.(id) in
      let hi = Hashtbl.find remap old_high.(id) in
      Hashtbl.replace remap id (mk t old_var.(id) lo hi))
    nodes;
  t.max_nodes <- saved_budget;
  t.compact_reclaimed <- t.compact_reclaimed + (size_before - t.size);
  List.map (fun r -> Hashtbl.find remap r) roots

(** Set of levels occurring in [root], sorted ascending. *)
let support t root =
  let visited = Hashtbl.create 256 in
  let levels = Hashtbl.create 16 in
  let rec go id =
    if (not (is_terminal id)) && not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      Hashtbl.replace levels t.var_.(id) ();
      go t.low_.(id);
      go t.high_.(id)
    end
  in
  go root;
  Hashtbl.fold (fun l () acc -> l :: acc) levels [] |> List.sort compare

(** Evaluate [root] under a total assignment [env]: [env.(level)] gives
    the value of the variable at [level]. *)
let eval t root env =
  let rec go id =
    if id = zero then false
    else if id = one then true
    else if env.(t.var_.(id)) then go t.high_.(id)
    else go t.low_.(id)
  in
  go root
