(** Model counting and model enumeration over ROBDDs.  These back the
    violation-reporting layer: once a constraint is known to be
    violated, the violating tuples are exactly the models of the
    violation BDD. *)

module M = Manager

(** Number of satisfying assignments of [root] over the manager's full
    variable set, as a float (counts overflow 63-bit ints quickly).

    The count for a node at level [v] is weighted by [2^(v' - v - 1)]
    for each child at level [v'] to account for skipped variables. *)
let count m root =
  let nvars = M.nvars m in
  let memo = Hashtbl.create 256 in
  (* memoised count "from the node's own level" *)
  let rec node_count id =
    if id = M.zero then 0.
    else if id = M.one then 1.
    else
      match Hashtbl.find_opt memo id with
      | Some c -> c
      | None ->
        let c = below (M.var m id) (M.low m id) +. below (M.var m id) (M.high m id) in
        Hashtbl.add memo id c;
        c
  and below parent_level child =
    let child_level = if M.is_terminal child then nvars else M.var m child in
    node_count child *. Float.pow 2. (float_of_int (child_level - parent_level - 1))
  in
  let top_level = if M.is_terminal root then nvars else M.var m root in
  node_count root *. Float.pow 2. (float_of_int top_level)

(* The generalised count behind [count_over] and [count_restrict]:
   models over the sub-space spanned by [levels], with every level in
   [fix] forced to its given value.  One walk, no node allocation —
   skipped {e free} levels weight a child by 2 each, skipped fixed
   levels by 1 (the forced branch), and a node sitting on a fixed
   level follows only the forced child.  Memoising on the node id is
   sound because a node's weight context is a function of its level
   alone. *)
let counted m root ~fix ~levels =
  let nvars = M.nvars m in
  let n = Array.length levels in
  let role = Array.make (max nvars 1) `Out in
  Array.iter
    (fun l ->
      if l < 0 || l >= nvars then invalid_arg "Sat: level out of range";
      role.(l) <- `Free)
    levels;
  List.iter
    (fun (l, b) ->
      if l < 0 || l >= nvars then invalid_arg "Sat: fixed level out of range";
      match role.(l) with
      | `Free -> invalid_arg "Sat.count_restrict: fixed level also in levels"
      | `Fixed b' when b' <> b ->
        invalid_arg "Sat.count_restrict: conflicting values for a fixed level"
      | `Fixed _ | `Out -> role.(l) <- `Fixed b)
    fix;
  (* frank.(l) = counted (free) levels strictly above level l *)
  let frank = Array.make (nvars + 1) 0 in
  for l = 0 to nvars - 1 do
    frank.(l + 1) <- frank.(l) + (match role.(l) with `Free -> 1 | _ -> 0)
  done;
  let memo = Hashtbl.create 256 in
  let rec node_count id =
    if id = M.zero then 0.
    else if id = M.one then 1.
    else
      match Hashtbl.find_opt memo id with
      | Some c -> c
      | None ->
        let v = M.var m id in
        let c =
          match role.(v) with
          | `Fixed b -> below v (if b then M.high m id else M.low m id)
          | `Free -> below v (M.low m id) +. below v (M.high m id)
          | `Out ->
            invalid_arg
              (Printf.sprintf "Sat: support level %d outside levels (+ fix)" v)
        in
        Hashtbl.add memo id c;
        c
  and below parent child =
    let cr = if M.is_terminal child then n else frank.(M.var m child) in
    let skipped = cr - frank.(parent) - (match role.(parent) with `Free -> 1 | _ -> 0) in
    node_count child *. Float.pow 2. (float_of_int skipped)
  in
  let top = if M.is_terminal root then n else frank.(M.var m root) in
  node_count root *. Float.pow 2. (float_of_int top)

(** Satisfying assignments over exactly the sub-space spanned by
    [levels] (sorted, distinct) — the direct form of the "divide
    {!count} by [2^unused]" idiom, without the division.
    @raise Invalid_argument when [root]'s support escapes [levels]. *)
let count_over m root ~levels = counted m root ~fix:[] ~levels

(** [count_over] of [root] with the [fix]ed levels forced: the model
    count, over [levels], of the restriction — computed in one walk
    with no BDD allocation (the repair planner's blame counts call
    this once per candidate tuple).
    @raise Invalid_argument when support escapes [levels] + [fix],
    when the two sets overlap, or on conflicting [fix] entries. *)
let count_restrict m root ~fix ~levels = counted m root ~fix ~levels

(** One satisfying partial assignment as [(level, value)] pairs along a
    high-preferring path, or [None] if unsatisfiable.  Levels absent
    from the result are don't-cares. *)
let any m root =
  if root = M.zero then None
  else begin
    let rec go id acc =
      if id = M.one then List.rev acc
      else begin
        let v = M.var m id in
        if M.high m id <> M.zero then go (M.high m id) ((v, true) :: acc)
        else go (M.low m id) ((v, false) :: acc)
      end
    in
    Some (go root [])
  end

(** Fold over all satisfying cubes.  Each cube is a list of
    [(level, value)] pairs in ascending level order; unmentioned levels
    are don't-cares.  Cubes are disjoint and cover exactly the models
    of [root]. *)
let fold_cubes m root ~init ~f =
  let rec go id acc cube =
    if id = M.zero then acc
    else if id = M.one then f acc (List.rev cube)
    else begin
      let v = M.var m id in
      let acc = go (M.low m id) acc ((v, false) :: cube) in
      go (M.high m id) acc ((v, true) :: cube)
    end
  in
  go root init []

(** All satisfying cubes, materialised.  Intended for small result
    sets (tests, violation samples); use [fold_cubes] for streaming. *)
let all_cubes m root = List.rev (fold_cubes m root ~init:[] ~f:(fun acc c -> c :: acc))

(** Expand a cube to full assignments over the given [levels] (a sorted
    array); don't-care levels branch both ways.  Calls [f] once per
    total assignment, represented as a populated bool array indexed by
    position in [levels]. *)
let iter_expanded ~levels cube ~f =
  let n = Array.length levels in
  let fixed = Hashtbl.create 8 in
  List.iter (fun (v, b) -> Hashtbl.replace fixed v b) cube;
  let values = Array.make n false in
  let rec go i =
    if i = n then f values
    else
      match Hashtbl.find_opt fixed levels.(i) with
      | Some b ->
        values.(i) <- b;
        go (i + 1)
      | None ->
        values.(i) <- false;
        go (i + 1);
        values.(i) <- true;
        go (i + 1)
  in
  go 0
