(** Model counting and model enumeration over ROBDDs.  These back the
    violation-reporting layer: once a constraint is known to be
    violated, the violating tuples are exactly the models of the
    violation BDD. *)

module M = Manager

(* The walk below is parametric in the count's arithmetic: the same
   traversal yields the fast [float] counts (inexact above [2^53]) and
   the exact {!Nat} counts that threshold verdicts compare against.
   [shift c k] must be [c * 2^k]. *)
type 'a ops = { c_zero : 'a; c_one : 'a; c_add : 'a -> 'a -> 'a; c_shift : 'a -> int -> 'a }

let float_ops =
  {
    c_zero = 0.;
    c_one = 1.;
    c_add = ( +. );
    c_shift = (fun c k -> c *. Float.pow 2. (float_of_int k));
  }

let nat_ops =
  { c_zero = Nat.zero; c_one = Nat.one; c_add = Nat.add; c_shift = Nat.shift_left }

(* The generalised count behind every [count*] entry point: models over
   the sub-space spanned by [levels], with every level in [fix] forced
   to its given value.  One walk, no node allocation — skipped {e free}
   levels weight a child by 2 each, skipped fixed levels by 1 (the
   forced branch), and a node sitting on a fixed level follows only the
   forced child.  Memoising on the node id is sound because a node's
   weight context is a function of its level alone. *)
let counted_with (type a) (ops : a ops) m root ~fix ~levels : a =
  let nvars = M.nvars m in
  let n = Array.length levels in
  let role = Array.make (max nvars 1) `Out in
  Array.iter
    (fun l ->
      if l < 0 || l >= nvars then invalid_arg "Sat: level out of range";
      role.(l) <- `Free)
    levels;
  List.iter
    (fun (l, b) ->
      if l < 0 || l >= nvars then invalid_arg "Sat: fixed level out of range";
      match role.(l) with
      | `Free -> invalid_arg "Sat.count_restrict: fixed level also in levels"
      | `Fixed b' when b' <> b ->
        invalid_arg "Sat.count_restrict: conflicting values for a fixed level"
      | `Fixed _ | `Out -> role.(l) <- `Fixed b)
    fix;
  (* frank.(l) = counted (free) levels strictly above level l *)
  let frank = Array.make (nvars + 1) 0 in
  for l = 0 to nvars - 1 do
    frank.(l + 1) <- frank.(l) + (match role.(l) with `Free -> 1 | _ -> 0)
  done;
  let memo : (int, a) Hashtbl.t = Hashtbl.create 256 in
  let rec node_count id =
    if id = M.zero then ops.c_zero
    else if id = M.one then ops.c_one
    else
      match Hashtbl.find_opt memo id with
      | Some c -> c
      | None ->
        let v = M.var m id in
        let c =
          match role.(v) with
          | `Fixed b -> below v (if b then M.high m id else M.low m id)
          | `Free -> ops.c_add (below v (M.low m id)) (below v (M.high m id))
          | `Out ->
            invalid_arg
              (Printf.sprintf "Sat: support level %d outside levels (+ fix)" v)
        in
        Hashtbl.add memo id c;
        c
  and below parent child =
    let cr = if M.is_terminal child then n else frank.(M.var m child) in
    let skipped = cr - frank.(parent) - (match role.(parent) with `Free -> 1 | _ -> 0) in
    ops.c_shift (node_count child) skipped
  in
  let top = if M.is_terminal root then n else frank.(M.var m root) in
  ops.c_shift (node_count root) top

let all_levels m = Array.init (M.nvars m) Fun.id

(** Number of satisfying assignments of [root] over the manager's full
    variable set, as a float (counts overflow 63-bit ints quickly; use
    {!count_exact} when the value feeds a comparison). *)
let count m root = counted_with float_ops m root ~fix:[] ~levels:(all_levels m)

(** Satisfying assignments over exactly the sub-space spanned by
    [levels] (sorted, distinct) — the direct form of the "divide
    {!count} by [2^unused]" idiom, without the division.
    @raise Invalid_argument when [root]'s support escapes [levels]. *)
let count_over m root ~levels = counted_with float_ops m root ~fix:[] ~levels

(** [count_over] of [root] with the [fix]ed levels forced: the model
    count, over [levels], of the restriction — computed in one walk
    with no BDD allocation (the repair planner's blame counts call
    this once per candidate tuple).
    @raise Invalid_argument when support escapes [levels] + [fix],
    when the two sets overlap, or on conflicting [fix] entries. *)
let count_restrict m root ~fix ~levels = counted_with float_ops m root ~fix ~levels

(** Exact counterparts, same walk with {!Nat} arithmetic.  A float
    count is only integer-exact below [2^53]; threshold verdicts
    ("violation rate ≤ 1−p") compare these instead so a near-threshold
    count can never round across the verdict boundary. *)
let count_exact m root = counted_with nat_ops m root ~fix:[] ~levels:(all_levels m)

let count_over_exact m root ~levels = counted_with nat_ops m root ~fix:[] ~levels

let count_restrict_exact m root ~fix ~levels = counted_with nat_ops m root ~fix ~levels

(** One satisfying partial assignment as [(level, value)] pairs along a
    high-preferring path, or [None] if unsatisfiable.  Levels absent
    from the result are don't-cares. *)
let any m root =
  if root = M.zero then None
  else begin
    let rec go id acc =
      if id = M.one then List.rev acc
      else begin
        let v = M.var m id in
        if M.high m id <> M.zero then go (M.high m id) ((v, true) :: acc)
        else go (M.low m id) ((v, false) :: acc)
      end
    in
    Some (go root [])
  end

(** Fold over all satisfying cubes.  Each cube is a list of
    [(level, value)] pairs in ascending level order; unmentioned levels
    are don't-cares.  Cubes are disjoint and cover exactly the models
    of [root]. *)
let fold_cubes m root ~init ~f =
  let rec go id acc cube =
    if id = M.zero then acc
    else if id = M.one then f acc (List.rev cube)
    else begin
      let v = M.var m id in
      let acc = go (M.low m id) acc ((v, false) :: cube) in
      go (M.high m id) acc ((v, true) :: cube)
    end
  in
  go root init []

(** All satisfying cubes, materialised.  Intended for small result
    sets (tests, violation samples); use [fold_cubes] for streaming. *)
let all_cubes m root = List.rev (fold_cubes m root ~init:[] ~f:(fun acc c -> c :: acc))

(** Expand a cube to full assignments over the given [levels] (a sorted
    array); don't-care levels branch both ways.  Calls [f] once per
    total assignment, represented as a populated bool array indexed by
    position in [levels]. *)
let iter_expanded ~levels cube ~f =
  let n = Array.length levels in
  let fixed = Hashtbl.create 8 in
  List.iter (fun (v, b) -> Hashtbl.replace fixed v b) cube;
  let values = Array.make n false in
  let rec go i =
    if i = n then f values
    else
      match Hashtbl.find_opt fixed levels.(i) with
      | Some b ->
        values.(i) <- b;
        go (i + 1)
      | None ->
        values.(i) <- false;
        go (i + 1);
        values.(i) <- true;
        go (i + 1)
  in
  go 0
