(** BDD (de)serialisation: persist the node graphs reachable from a
    set of roots in a compact line-based text format, and reload them
    into another manager.  Used to save and restore logical indices
    without re-encoding the base relations.

    Format (whitespace-separated):
    {v
    fcv-bdd 1
    nvars <n>
    nodes <k>
    <var> <low> <high>        (k lines; low/high are file-local ids:
                               0 = false, 1 = true, 2.. = earlier lines + 2)
    roots <r0> <r1> ...
    v}

    Nodes appear children-first, so loading is a single [mk] pass. *)

module M = Manager

let magic = "fcv-bdd"
let version = 1

(** Serialise the subgraphs of [roots].  Node ids in the file are
    local; [roots] are rewritten accordingly.  [rename] maps manager
    variable ids to file variable ids (identity by default) and
    [nvars] overrides the recorded variable count — callers use the
    pair to compact away variables the roots no longer reference
    (scratch blocks, blocks of rebuilt indices), so the file loads
    into a manager that allocates only the live blocks.  [rename]
    must be strictly increasing on the variables of each root's
    subgraph or the ordering invariant breaks on load. *)
let save_gen ?(rename = Fun.id) ?nvars m ~roots put =
  (* assign file ids in children-first order *)
  let file_id = Hashtbl.create 1024 in
  Hashtbl.replace file_id M.zero 0;
  Hashtbl.replace file_id M.one 1;
  let order = ref [] in
  let next = ref 2 in
  let rec visit id =
    if not (Hashtbl.mem file_id id) then begin
      visit (M.low m id);
      visit (M.high m id);
      Hashtbl.replace file_id id !next;
      incr next;
      order := id :: !order
    end
  in
  List.iter visit roots;
  let nodes = List.rev !order in
  let pr fmt = Printf.ksprintf put fmt in
  pr "%s %d\n" magic version;
  pr "nvars %d\n" (Option.value nvars ~default:(M.nvars m));
  pr "nodes %d\n" (List.length nodes);
  List.iter
    (fun id ->
      pr "%d %d %d\n"
        (rename (M.var m id))
        (Hashtbl.find file_id (M.low m id))
        (Hashtbl.find file_id (M.high m id)))
    nodes;
  put "roots";
  List.iter (fun r -> pr " %d" (Hashtbl.find file_id r)) roots;
  put "\n"

let save ?rename ?nvars m ~roots oc =
  save_gen ?rename ?nvars m ~roots (output_string oc)

let save_string ?rename ?nvars m ~roots =
  let buf = Buffer.create 4096 in
  save_gen ?rename ?nvars m ~roots (Buffer.add_string buf);
  Buffer.contents buf

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(** Load BDDs saved by {!save} into [m] from [next_line] (a pull
    source yielding [None] at end of input); the target manager must
    already have at least as many variables (with the same intended
    order).  Returns the roots, renumbered into [m]. *)
let load_lines m next_line =
  let line () =
    match next_line () with Some l -> l | None -> fail "unexpected end of file"
  in
  let words s = String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") in
  (match words (line ()) with
  | [ w; v ] when w = magic ->
    if int_of_string_opt v <> Some version then fail "unsupported version %s" v
  | _ -> fail "bad magic");
  let nvars =
    match words (line ()) with
    | [ "nvars"; n ] -> int_of_string n
    | _ -> fail "expected nvars"
  in
  if nvars > M.nvars m then
    fail "file needs %d variables but the manager has %d" nvars (M.nvars m);
  let count =
    match words (line ()) with
    | [ "nodes"; n ] -> int_of_string n
    | _ -> fail "expected nodes"
  in
  let local = Array.make (count + 2) 0 in
  local.(0) <- M.zero;
  local.(1) <- M.one;
  for i = 0 to count - 1 do
    match words (line ()) with
    | [ v; lo; hi ] ->
      let v = int_of_string v and lo = int_of_string lo and hi = int_of_string hi in
      if lo >= i + 2 || hi >= i + 2 then fail "forward reference at node %d" i;
      local.(i + 2) <- M.mk m v local.(lo) local.(hi)
    | _ -> fail "malformed node line %d" i
  done;
  match words (line ()) with
  | "roots" :: rs -> List.map (fun r -> local.(int_of_string r)) rs
  | _ -> fail "expected roots"

let load m ic =
  load_lines m (fun () -> try Some (input_line ic) with End_of_file -> None)

let save_file m ~roots path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save m ~roots oc)

let load_file m path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load m ic)
