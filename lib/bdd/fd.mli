(** Finite-domain variables: blocks of ⌈log₂ d⌉ boolean variables with
    MSB shallowest (§2.1 of the paper).  All relational encoding and
    constraint compilation speaks in blocks.

    Quantifiers range over the {e active domain}: {!exists} and
    {!forall} guard the bit-level quantification with the block's
    domain-validity BDD, which matters whenever the domain size is not
    a power of two. *)

type block = {
  name : string;
  dom_size : int;
  levels : int array;  (** strictly increasing; [levels.(0)] is the MSB *)
}

val width : block -> int

val alloc : Manager.t -> name:string -> dom_size:int -> block
(** Allocate a block of consecutive fresh variables. *)

val level_of_bit : block -> int -> int
(** Level carrying bit [j] (LSB = 0). *)

val cube : Manager.t -> (int * bool) list -> int
(** Conjunction of literals, built bottom-up without apply calls. *)

val eq_const : Manager.t -> block -> int -> int
(** BDD of [x = c].  @raise Invalid_argument if [c] is out of domain. *)

val tuple_minterm : Manager.t -> (block * int) list -> int
(** ⋀ᵢ (xᵢ = cᵢ) across several blocks. *)

val lt_const : Manager.t -> block -> int -> int
(** BDD of [x < c] (MSB-first comparator). *)

val valid : Manager.t -> block -> int
(** Domain guard: codes in [0, dom_size).  [one] for power-of-two
    domains. *)

val eq_blocks : Manager.t -> block -> block -> int
(** BDD of [x = y]; widths may differ (extra high bits forced to 0). *)

val in_set : Manager.t -> block -> int list -> int
(** Membership [x ∈ S], built by direct sorted-code construction. *)

val exists : Manager.t -> block -> int -> int
(** ∃x over the active domain (guard fused via [appex]). *)

val forall : Manager.t -> block -> int -> int
(** ∀x over the active domain (guard fused via [appall]). *)

val exists_bits : Manager.t -> block -> int -> int
(** Unguarded bit-level ∃ — exact when the operand is false outside
    the domain (e.g. any relation-index BDD). *)

val forall_bits : Manager.t -> block -> int -> int

val rename : Manager.t -> int -> src:block -> dst:block -> int
(** Rename block [src] to [dst] (same domain size). *)

val set_env : block -> int -> bool array -> unit
(** Write a code's bits into an evaluation environment. *)

val read_env : block -> bool array -> int
(** Read a block's code back from an environment. *)
