(** Model counting and enumeration — the machinery behind violation
    counting and witness listing. *)

val count : Manager.t -> int -> float
(** Satisfying assignments over the manager's full variable set (as a
    float; counts overflow native ints quickly).  Divide by
    [2^(unused bits)] to count over a sub-space. *)

val any : Manager.t -> int -> (int * bool) list option
(** One satisfying partial assignment (ascending levels; missing
    levels are don't-cares), or [None] if unsatisfiable. *)

val fold_cubes :
  Manager.t -> int -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold over all satisfying cubes.  Cubes are disjoint, cover exactly
    the models, and list [(level, value)] pairs ascending; unmentioned
    levels are don't-cares. *)

val all_cubes : Manager.t -> int -> (int * bool) list list
(** Materialised {!fold_cubes}; for small result sets. *)

val iter_expanded :
  levels:int array -> (int * bool) list -> f:(bool array -> unit) -> unit
(** Expand a cube to total assignments over [levels] (sorted),
    branching don't-cares both ways; [f] receives a reused array
    indexed by position in [levels]. *)
