(** Model counting and enumeration — the machinery behind violation
    counting and witness listing. *)

val count : Manager.t -> int -> float
(** Satisfying assignments over the manager's full variable set (as a
    float; counts overflow native ints quickly).  To count over a
    sub-space use {!count_over} — hand-dividing by [2^(unused bits)]
    is the historical footgun it replaces. *)

val count_over : Manager.t -> int -> levels:int array -> float
(** Satisfying assignments over exactly the sub-space spanned by
    [levels] (sorted, distinct).
    @raise Invalid_argument when the root's support escapes
    [levels]. *)

val count_restrict :
  Manager.t -> int -> fix:(int * bool) list -> levels:int array -> float
(** {!count_over} of the restriction fixing each [(level, value)] of
    [fix]: one walk, no BDD allocation — restrict-and-count.
    @raise Invalid_argument when support escapes [levels] + [fix],
    when the two overlap, or on conflicting [fix] entries. *)

val count_exact : Manager.t -> int -> Nat.t
val count_over_exact : Manager.t -> int -> levels:int array -> Nat.t

val count_restrict_exact :
  Manager.t -> int -> fix:(int * bool) list -> levels:int array -> Nat.t
(** Exact counterparts of {!count}/{!count_over}/{!count_restrict}:
    the same walk carried out in arbitrary-precision {!Nat} arithmetic.
    A float count is only integer-exact below [2^53]; use these when
    the count feeds a comparison (threshold verdicts) rather than a
    cost estimate. *)

val any : Manager.t -> int -> (int * bool) list option
(** One satisfying partial assignment (ascending levels; missing
    levels are don't-cares), or [None] if unsatisfiable. *)

val fold_cubes :
  Manager.t -> int -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold over all satisfying cubes.  Cubes are disjoint, cover exactly
    the models, and list [(level, value)] pairs ascending; unmentioned
    levels are don't-cares. *)

val all_cubes : Manager.t -> int -> (int * bool) list list
(** Materialised {!fold_cubes}; for small result sets. *)

val iter_expanded :
  levels:int array -> (int * bool) list -> f:(bool array -> unit) -> unit
(** Expand a cube to total assignments over [levels] (sorted),
    branching don't-cares both ways; [f] receives a reused array
    indexed by position in [levels]. *)
