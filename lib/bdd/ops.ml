(** Logical operations on ROBDDs: memoised apply, negation, if-then-else,
    restriction, quantification, the fused quantify-apply operators
    ([appex]/[appall], mirroring BuDDy's [bdd_appex]/[bdd_appall] that
    the paper's rewrite rules §4.3 rely on), and variable replacement
    (the rename operation behind the equi-join rewrite of §4.2). *)

module M = Manager

type binop = And | Or | Xor | Imp | Iff | Diff
(** [Diff] is f ∧ ¬g. *)

let op_code = function
  | And -> 1
  | Or -> 2
  | Xor -> 3
  | Imp -> 4
  | Iff -> 5
  | Diff -> 6

let not_code = 7
let _ite_code = 8

(* Truth table of a binop on terminal operands. *)
let op_eval op a b =
  match op with
  | And -> a && b
  | Or -> a || b
  | Xor -> a <> b
  | Imp -> (not a) || b
  | Iff -> a = b
  | Diff -> a && not b

let term_bool id = id = M.one
let bool_term b = if b then M.one else M.zero

(* Short-circuit rules: given the op and one (possibly two) terminal
   operands, produce the result without recursion when determined. *)
let shortcut op f g =
  if M.is_terminal f && M.is_terminal g then
    Some (bool_term (op_eval op (term_bool f) (term_bool g)))
  else
    match (op, f, g) with
    | And, _, _ when f = M.zero || g = M.zero -> Some M.zero
    | And, _, _ when f = M.one -> Some g
    | And, _, _ when g = M.one -> Some f
    | And, _, _ when f = g -> Some f
    | Or, _, _ when f = M.one || g = M.one -> Some M.one
    | Or, _, _ when f = M.zero -> Some g
    | Or, _, _ when g = M.zero -> Some f
    | Or, _, _ when f = g -> Some f
    | Xor, _, _ when f = M.zero -> Some g
    | Xor, _, _ when g = M.zero -> Some f
    | Xor, _, _ when f = g -> Some M.zero
    | Imp, _, _ when f = M.zero -> Some M.one
    | Imp, _, _ when f = M.one -> Some g
    | Imp, _, _ when g = M.one -> Some M.one
    | Imp, _, _ when f = g -> Some M.one
    | Iff, _, _ when f = M.one -> Some g
    | Iff, _, _ when g = M.one -> Some f
    | Iff, _, _ when f = g -> Some M.one
    | Diff, _, _ when f = M.zero || g = M.one -> Some M.zero
    | Diff, _, _ when g = M.zero -> Some f
    | Diff, _, _ when f = g -> Some M.zero
    | (And | Or | Xor | Imp | Iff | Diff), _, _ -> None

(* Commutative ops get normalised operand order to double cache hits. *)
let normalise op f g =
  match op with
  | And | Or | Xor | Iff -> if f <= g then (f, g) else (g, f)
  | Imp | Diff -> (f, g)

let rec apply_rec m op f g =
  match shortcut op f g with
  | Some r -> r
  | None -> (
    let f, g = normalise op f g in
    let code = op_code op in
    match M.cache_find m code f g with
    | Some r -> r
    | None ->
      let vf = M.var m f and vg = M.var m g in
      let v = min vf vg in
      let f0, f1 = if vf = v then (M.low m f, M.high m f) else (f, f) in
      let g0, g1 = if vg = v then (M.low m g, M.high m g) else (g, g) in
      let r0 = apply_rec m op f0 g0 in
      let r1 = apply_rec m op f1 g1 in
      let r = M.mk m v r0 r1 in
      M.cache_add m code f g r;
      r)

let apply m op f g =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_apply;
  apply_rec m op f g

let rec neg_rec m f =
  if f = M.zero then M.one
  else if f = M.one then M.zero
  else
    match M.cache_find m not_code f f with
    | Some r -> r
    | None ->
      let r0 = neg_rec m (M.low m f) in
      let r1 = neg_rec m (M.high m f) in
      let r = M.mk m (M.var m f) r0 r1 in
      M.cache_add m not_code f f r;
      r

let neg m f =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_neg;
  neg_rec m f

let band m f g = apply m And f g
let bor m f g = apply m Or f g
let bxor m f g = apply m Xor f g
let bimp m f g = apply m Imp f g
let biff m f g = apply m Iff f g
let bdiff m f g = apply m Diff f g

(* If-then-else: needed by [replace] when the substituted variable does
   not preserve the level order.  Memoised in a manager-level ternary
   cache so that the many ite calls issued by one [replace] over a
   large BDD share sub-results. *)
let rec ite_rec m f g h =
  if f = M.one then g
  else if f = M.zero then h
  else if g = h then g
  else if g = M.one && h = M.zero then f
  else
    match M.ite_cache_find m f g h with
    | Some r -> r
    | None ->
      let vf = M.var m f and vg = M.var m g and vh = M.var m h in
      let v = min vf (min vg vh) in
      let split x vx = if vx = v then (M.low m x, M.high m x) else (x, x) in
      let f0, f1 = split f vf in
      let g0, g1 = split g vg in
      let h0, h1 = split h vh in
      let r0 = ite_rec m f0 g0 h0 in
      let r1 = ite_rec m f1 g1 h1 in
      let r = M.mk m v r0 r1 in
      M.ite_cache_add m f g h r;
      r

let ite m f g h =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_ite;
  ite_rec m f g h

(** [restrict m f bindings] fixes each [(level, value)] in [bindings];
    the bound variables disappear from the result. *)
let restrict m f bindings =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_restrict;
  let bound = Hashtbl.create 8 in
  List.iter (fun (v, b) -> Hashtbl.replace bound v b) bindings;
  let memo = Hashtbl.create 256 in
  let rec go f =
    if M.is_terminal f then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let v = M.var m f in
        let r =
          match Hashtbl.find_opt bound v with
          | Some true -> go (M.high m f)
          | Some false -> go (M.low m f)
          | None ->
            let r0 = go (M.low m f) in
            let r1 = go (M.high m f) in
            M.mk m v r0 r1
        in
        Hashtbl.add memo f r;
        r
  in
  go f

(* Serialised description of a quantification, interned by the manager
   into a small signature so results are shared across calls in one
   packed-int cache (the BuDDy quantification-cache design). *)
let quant_descr ~tag ~op ~quant levels =
  let buf = Buffer.create 32 in
  Buffer.add_string buf tag;
  Buffer.add_char buf (Char.chr (op_code op + 48));
  Buffer.add_char buf (Char.chr (op_code quant + 48));
  List.iter (fun v -> Buffer.add_string buf (string_of_int v); Buffer.add_char buf ',')
    (List.sort compare levels);
  Buffer.contents buf

(* Quantification over a set of levels.  [combine] is Or for ∃ and And
   for ∀.  We cut the recursion as soon as the node's level exceeds the
   deepest quantified level. *)
let quantify m combine levels f =
  if levels = [] then f
  else begin
    let set = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace set v ()) levels;
    let deepest = List.fold_left max min_int levels in
    let sig_ =
      M.quant_signature m ~descr:(quant_descr ~tag:"q" ~op:combine ~quant:combine levels)
    in
    let rec go f =
      if M.is_terminal f || M.var m f > deepest then f
      else
        match M.quant_cache_find m sig_ f f with
        | Some r -> r
        | None ->
          let v = M.var m f in
          let r0 = go (M.low m f) in
          let r1 = go (M.high m f) in
          let r =
            if Hashtbl.mem set v then apply m combine r0 r1 else M.mk m v r0 r1
          in
          M.quant_cache_add m sig_ f f r;
          r
    in
    go f
  end

let exists m levels f =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_exists;
  quantify m Or levels f

let forall m levels f =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_forall;
  quantify m And levels f

(* Fused apply-and-quantify, the workhorse behind the §4.3 rewrite
   rules.  [appquant m op quant levels f g] computes
   [quantify quant levels (apply op f g)] without materialising the
   intermediate BDD. *)
let appquant m op quant levels f g =
  if levels = [] then apply m op f g
  else begin
    let set = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace set v ()) levels;
    let deepest = List.fold_left max min_int levels in
    let sig_ = M.quant_signature m ~descr:(quant_descr ~tag:"a" ~op ~quant levels) in
    let rec go f g =
      (* Once both operands live entirely below the quantified prefix,
         the remaining work is a plain apply. *)
      let vf = M.var m f and vg = M.var m g in
      if min vf vg > deepest then apply m op f g
      else
        match shortcut op f g with
        | Some r when M.is_terminal r -> r
        | _ -> (
          match M.quant_cache_find m sig_ f g with
          | Some r -> r
          | None ->
            let v = min vf vg in
            let f0, f1 = if vf = v then (M.low m f, M.high m f) else (f, f) in
            let g0, g1 = if vg = v then (M.low m g, M.high m g) else (g, g) in
            let r0 = go f0 g0 in
            let r1 = go f1 g1 in
            let r =
              if Hashtbl.mem set v then apply m quant r0 r1 else M.mk m v r0 r1
            in
            M.quant_cache_add m sig_ f g r;
            r)
    in
    go f g
  end

(** [appex m op levels f g] = ∃levels. (f op g) — BuDDy's [bdd_appex]. *)
let appex m op levels f g =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_appex;
  appquant m op Or levels f g

(** [appall m op levels f g] = ∀levels. (f op g) — BuDDy's [bdd_appall]. *)
let appall m op levels f g =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_appall;
  appquant m op And levels f g

(** [replace m f pairs] renames variables: each [(from_level, to_level)]
    substitutes the variable at [from_level] with the one at
    [to_level].  Target variables must not occur in the support of [f]
    (standard BuDDy precondition for [bdd_replace]).

    When the mapping preserves the level order relative to the rest of
    the support, the result is built with a cheap [mk]; otherwise we
    fall back to [ite], which is correct for arbitrary maps. *)
let replace m f pairs =
  if !Fcv_util.Telemetry.on then M.count_op m M.op_replace;
  if pairs = [] then f
  else begin
    let map = Hashtbl.create 8 in
    List.iter
      (fun (a, b) ->
        if Hashtbl.mem map a then invalid_arg "Ops.replace: duplicate source";
        Hashtbl.replace map a b)
      pairs;
    let memo = Hashtbl.create 256 in
    let rec go f =
      if M.is_terminal f then f
      else
        match Hashtbl.find_opt memo f with
        | Some r -> r
        | None ->
          let v = M.var m f in
          let r0 = go (M.low m f) in
          let r1 = go (M.high m f) in
          let v' = match Hashtbl.find_opt map v with Some w -> w | None -> v in
          let r =
            if v' < M.var m r0 && v' < M.var m r1 then M.mk m v' r0 r1
            else ite m (M.ithvar m v') r1 r0
          in
          Hashtbl.add memo f r;
          r
    in
    go f
  end

(** Logical equivalence is pointer equality on ROBDDs (Bryant's
    canonicity, Fact 1 of the paper). *)
let equal f g = f = g

(** Validity and satisfiability are O(1) on ROBDDs — the property the
    leading-quantifier-elimination rewrite (§4.1) exploits. *)
let is_true f = f = M.one

let is_false f = f = M.zero
let is_satisfiable f = f <> M.zero
