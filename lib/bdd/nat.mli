(** Arbitrary-precision natural numbers — the exact counterpart of the
    [float] sat-counts, for verdicts that compare a violation {e rate}
    against a threshold (where [2^53] float rounding could flip the
    answer).  Only what counting needs: add, multiply, shift, compare,
    decimal printing.  No external dependencies. *)

type t

val zero : t
val one : t
val of_int : int -> t
(** @raise Invalid_argument on a negative argument. *)

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument when the result would be negative. *)

val mul : t -> t -> t

val shift_left : t -> int -> t
(** [shift_left a k] is [a * 2^k]. *)

val to_int_opt : t -> int option
(** The value as a native [int] when it fits, [None] otherwise. *)

val to_float : t -> float
(** Nearest float; exact below [2^53]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
