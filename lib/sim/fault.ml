(** Deterministic fault-injecting in-memory file system.  See
    fault.mli for the disk model; the invariant-relevant choices:

    - appends and fsyncs are the WAL's effect points; an append goes
      to the pending (cache) list, an fsync commits the whole list;
    - at a crash, every pending append is kept / dropped / cut to a
      seeded prefix; bytes lost {e before} surviving bytes become
      ['\000'] holes (reorder-visible damage);
    - whole-file writes are durable on return (they model write +
      fsync); crashing at one leaves old / prefix-of-new / new;
    - renames are atomic (old or new binding), truncate / remove /
      mkdir happen durably or not at all. *)

module Vfs = Fcv_server.Vfs
module Rng = Fcv_util.Rng

exception Crash

type file = {
  mutable durable : string;
  mutable pending : string list;  (** un-fsync'd appends, newest first *)
}

type t = {
  rng : Rng.t;
  crash_at : int;  (** effect index to crash at; -1 = never *)
  mutable effects : int;
  mutable crashed : bool;  (** the scheduled crash has fired *)
  mutable down : bool;  (** crashed and not yet restarted *)
  mutable gen : int;  (** restart counter; stale handles die *)
  files : (string, file) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
}

let create ?(crash_at = -1) ~seed () =
  {
    rng = Rng.create seed;
    crash_at;
    effects = 0;
    crashed = false;
    down = false;
    gen = 0;
    files = Hashtbl.create 16;
    dirs = Hashtbl.create 4;
  }

let effects t = t.effects
let crashed t = t.crashed

let visible f = String.concat "" (f.durable :: List.rev f.pending)

let find t path = Hashtbl.find_opt t.files path

let get t path =
  match find t path with
  | Some f -> f
  | None -> raise (Sys_error (path ^ ": No such file or directory"))

let get_or_create t path =
  match find t path with
  | Some f -> f
  | None ->
    let f = { durable = ""; pending = [] } in
    Hashtbl.replace t.files path f;
    f

let commit f =
  f.durable <- visible f;
  f.pending <- []

(* Resolve one file's pending appends the way a power cut would: each
   append survives whole, partially, or not at all; bytes lost before
   surviving bytes leave '\000' holes at their real offsets, and
   everything after the last surviving byte is simply gone. *)
let crash_commit_file rng f =
  let apps = Array.of_list (List.rev f.pending) in
  let fates =
    Array.map
      (fun s ->
        match Rng.int rng 4 with
        | 0 -> `Drop
        | 1 -> `Prefix (Rng.int rng (String.length s + 1))
        | _ -> `Keep)
      apps
  in
  let extent = ref (-1) in
  Array.iteri
    (fun i fate ->
      match fate with `Keep | `Prefix _ when fate <> `Prefix 0 -> extent := i | _ -> ())
    fates;
  let buf = Buffer.create (String.length f.durable + 64) in
  Buffer.add_string buf f.durable;
  for i = 0 to !extent do
    let s = apps.(i) in
    match fates.(i) with
    | `Keep -> Buffer.add_string buf s
    | `Drop -> Buffer.add_string buf (String.make (String.length s) '\000')
    | `Prefix p ->
      Buffer.add_string buf (String.sub s 0 p);
      if i < !extent then Buffer.add_string buf (String.make (String.length s - p) '\000')
  done;
  f.durable <- Buffer.contents buf;
  f.pending <- []

(* Path order, not hash order, so a replayed (seed, fault) pair makes
   identical draws. *)
let sorted_files t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.files [])

let crash_commit t = List.iter (fun (_, f) -> crash_commit_file t.rng f) (sorted_files t)

(* One numbered fault point.  Returns [`Crash] when this is the
   scheduled point: the caller commits its seeded crash damage, then
   calls {!go_down}. *)
let point t =
  if t.down then raise Crash;
  let i = t.effects in
  t.effects <- t.effects + 1;
  if i = t.crash_at then `Crash else `Go

let go_down t =
  t.crashed <- true;
  t.down <- true;
  raise Crash

(* Power-cut without a scheduled fault point: commit seeded crash
   damage to everything pending and take the fs down (open handles
   die), without raising — the group-commit durability tests cut
   power at a chosen line of their own code. *)
let power_cut t =
  crash_commit t;
  t.crashed <- true;
  t.down <- true

let restart t =
  if not t.down then List.iter (fun (_, f) -> commit f) (sorted_files t)
  else t.down <- false;
  t.gen <- t.gen + 1

let check_gen t g = if g <> t.gen || t.down then raise Crash

(* -- the backend ----------------------------------------------------------- *)

let backend t =
  let append_ file s =
    match point t with
    | `Go -> file.pending <- s :: file.pending
    | `Crash ->
      file.pending <- s :: file.pending;
      crash_commit t;
      go_down t
  in
  let fsync_ file =
    match point t with
    | `Go -> commit file
    | `Crash ->
      crash_commit t;
      go_down t
  in
  {
    Vfs.b_file_exists =
      (fun path -> Hashtbl.mem t.files path || Hashtbl.mem t.dirs path);
    b_mkdir =
      (fun path _perm ->
        match point t with
        | `Go ->
          if Hashtbl.mem t.dirs path then raise (Sys_error (path ^ ": File exists"));
          Hashtbl.replace t.dirs path ()
        | `Crash ->
          crash_commit t;
          go_down t);
    b_readdir =
      (fun dir ->
        let under path = Filename.dirname path = dir in
        let entries =
          Hashtbl.fold (fun p _ acc -> if under p then Filename.basename p :: acc else acc)
            t.files []
        in
        let entries =
          Hashtbl.fold (fun p _ acc -> if under p then Filename.basename p :: acc else acc)
            t.dirs entries
        in
        Array.of_list (List.sort compare entries));
    b_remove =
      (fun path ->
        match point t with
        | `Go ->
          if not (Hashtbl.mem t.files path) then
            raise (Sys_error (path ^ ": No such file or directory"));
          Hashtbl.remove t.files path
        | `Crash ->
          crash_commit t;
          go_down t);
    b_rename =
      (fun src dst ->
        match point t with
        | `Go ->
          let f = get t src in
          commit f;
          Hashtbl.remove t.files src;
          Hashtbl.replace t.files dst f
        | `Crash ->
          (* atomic: the new binding either made it to disk or not *)
          if Rng.bool t.rng then begin
            let f = get t src in
            commit f;
            Hashtbl.remove t.files src;
            Hashtbl.replace t.files dst f
          end;
          crash_commit t;
          go_down t);
    b_read_file = (fun path -> visible (get t path));
    b_write_file =
      (fun path contents ->
        match point t with
        | `Go ->
          let f = get_or_create t path in
          f.durable <- contents;
          f.pending <- []
        | `Crash ->
          (* the durable write was interrupted: old contents, a prefix
             of the new, or the full new file *)
          let f = get_or_create t path in
          (match Rng.int t.rng 3 with
          | 0 -> ()
          | 1 ->
            f.durable <- String.sub contents 0 (Rng.int t.rng (String.length contents + 1));
            f.pending <- []
          | _ ->
            f.durable <- contents;
            f.pending <- []);
          crash_commit t;
          go_down t);
    b_truncate =
      (fun path len ->
        match point t with
        | `Go ->
          let f = get t path in
          commit f;
          f.durable <- String.sub f.durable 0 (min len (String.length f.durable))
        | `Crash ->
          crash_commit t;
          go_down t);
    b_file_size = (fun path -> String.length (visible (get t path)));
    b_open_append =
      (fun path ->
        let g = t.gen in
        let file = get_or_create t path in
        Vfs.make_handle
          ~append:(fun s ->
            check_gen t g;
            append_ file s)
          ~fsync:(fun () ->
            check_gen t g;
            fsync_ file)
          ~close:(fun () -> ()));
    b_append = (fun h s -> Vfs.real.Vfs.b_append h s);
    b_fsync = (fun h -> Vfs.real.Vfs.b_fsync h);
    b_close = (fun h -> Vfs.real.Vfs.b_close h);
  }
