(** A deterministic, instrumented in-memory file system behind
    {!Fcv_server.Vfs}: every durable effect the server performs
    (append, fsync, whole-file write, rename, truncate, remove, mkdir)
    passes a numbered {e fault point}, and one scheduled point can
    {e crash} the run — raising {!Crash} after committing a seeded
    approximation of what a real power cut leaves on disk.

    The disk model separates {e durable} contents (survive a crash)
    from {e pending} operations (in the OS cache: appends and
    truncates not yet fsync'd).  Reads see durable + pending, as a
    running process would.  At a crash, each pending operation is kept,
    dropped, or prefix-truncated by a seeded draw; a dropped append
    followed by a kept one leaves a ['\000'] hole — the
    reorder-visible damage real disks produce when later blocks hit
    the platter first.  Whole-file writes ({!Fcv_server.Vfs.write_file},
    the snapshot commit primitive) are durable once they return; a
    crash {e at} that point leaves the old contents, a prefix of the
    new, or the full new file.  Renames are atomic: a crash at a
    rename point leaves either the old or the new binding, never a
    mix.

    Everything is driven by one {!Fcv_util.Rng} seed, so
    [(seed, fault point)] replays a crash exactly. *)

exception Crash

type t

val create : ?crash_at:int -> seed:int -> unit -> t
(** A fresh empty file system.  [crash_at] is the fault point (0-based
    effect index) at which to crash; omit it for a fault-free run
    (used to count a workload's reachable fault points). *)

val backend : t -> Fcv_server.Vfs.backend
(** Install with {!Fcv_server.Vfs.with_backend}. *)

val effects : t -> int
(** Fault points passed so far — after a fault-free run, the number of
    reachable crash points of that workload. *)

val crashed : t -> bool

val power_cut : t -> unit
(** Cut power now, without a scheduled fault point: every pending
    operation is resolved by the seeded crash damage and open handles
    die ({!restart} brings the fs back).  Does not raise — tests that
    choose their own crash line use this instead of [crash_at]. *)

val restart : t -> unit
(** Simulate process restart after {!Crash}: pending state is resolved
    (already done at crash time), open handles die, and the durable
    contents become what reads now see.  Calling it on an un-crashed
    file system just discards pending state after an fsync-everything
    barrier (all pending committed — as a clean shutdown would). *)
