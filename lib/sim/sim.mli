(** Deterministic fault-injection simulator for the constraint
    service's durability machinery.

    One {e schedule} is: generate a seeded workload (constraint
    registrations, inserts, deletes, unregisters, rejected requests,
    snapshot points over a university or retail base), run it through
    the server's real durable core ({!Fcv_server.Server.Mutator} +
    WAL + {!Fcv_server.Server.snapshot_rotate}) against the
    {!Fault} in-memory file system, and

    - record an {e oracle}: the state digest (extensional database +
      constraint registry + tombstones + verdicts) after every
      acknowledged mutation of a never-crashed run, plus a
      sequential-vs-parallel validation parity check;
    - run once fault-free and once per reachable fault point, crashing
      there, restarting, recovering, and checking the {e durability
      invariant}: the recovered digest equals the oracle digest after
      [k] acknowledged mutations for some [k] in [[synced, acked +
      in-flight]] — acknowledged-and-fsynced mutations survive,
      unacknowledged ones are atomically absent, and recovery itself
      never errors;
    - on a violation, shrink: the shortest workload prefix and
      earliest fault point that still fail, reported as a one-line
      replayable [fcv sim] command.

    [inject] plants a known durability bug to prove the harness
    catches it (each yields a shrunk counterexample):
    - [Log_before_apply]: journal before applying — rejected requests
      reach the WAL and recovery diverges or fails;
    - [Skip_fsync]: acknowledge without fsync — a crash loses
      acknowledged mutations;
    - [Skip_rotate]: cut snapshots without the atomic WAL rotation —
      mutations after a snapshot vanish on restart. *)

type inject = Log_before_apply | Skip_fsync | Skip_rotate

val inject_to_string : inject -> string
val inject_of_string : string -> (inject, string) result

type counterexample = {
  cx_seed : int;  (** workload (schedule) seed *)
  cx_ops : int;  (** shrunk workload length *)
  cx_fault : int;  (** fault point; -1 = fails without a crash *)
  cx_inject : inject option;
  cx_reason : string;
  cx_repro : string;  (** one-line replay command *)
}

type result = {
  schedules_run : int;
  crash_runs : int;  (** total fault points exercised *)
  failures : counterexample list;
}

val run :
  ?inject:inject ->
  ?ops:int ->
  ?fault:int ->
  ?max_failures:int ->
  ?progress:(string -> unit) ->
  seed:int ->
  schedules:int ->
  unit ->
  result
(** Sweep [schedules] schedules; schedule [i]'s workload seed is
    [Fcv_util.Rng.derive seed i], so any schedule replays in
    isolation.  [ops] overrides every workload's length.  With
    [fault], replay mode: [seed] is used directly as the workload seed
    and only that fault point runs ([fault = -1] = the fault-free
    clean-restart check) — the shape a counterexample's repro line
    uses.  Stops after [max_failures] (default 1) shrunk
    counterexamples. *)
