(** Deterministic fault-injection simulator for the constraint
    service's durability machinery — sharded.

    One {e schedule} is: generate a seeded workload (a shard count,
    a group-commit window, constraint registrations, inserts, deletes,
    unregisters, applied greedy repairs, rejected requests, snapshot
    points over a university or retail base), run it through the server's real durable tier
    ({!Fcv_server.Tier}: routed fan-out over per-shard
    {!Fcv_server.Mutator} + WAL + snapshot rotation, group commit)
    against the {!Fault} in-memory file system, and

    - record a per-shard {e oracle}: each shard's state digest
      (extensional database + constraint registry + tombstones +
      verdicts) after each of its journaled records on a never-crashed
      run, plus a sequential-vs-parallel validation parity check;
    - run once fault-free and once per reachable fault point —
      the points cover every per-shard durable effect, including
      between two shards' WAL appends of one routed burst and
      mid-rotation of one shard's snapshot — crashing there,
      restarting, recovering the whole tier, and checking the
      {e durability invariant} on {e every} shard: shard [s]'s
      recovered digest equals its oracle digest after [k] journaled
      records for some [k] in [[synced(s), journaled(s)]] — mutations
      acknowledged by a group commit survive on every shard they
      journaled on, unacknowledged ones are atomically absent, and
      recovery itself never errors;
    - on a violation, shrink: the shortest workload prefix and
      earliest fault point that still fail, reported as a one-line
      replayable [fcv sim] command.

    [inject] plants a known durability bug to prove the harness
    catches it (each yields a shrunk counterexample):
    - [Log_before_apply]: journal on every target shard before
      applying — rejected requests reach the WALs and recovery
      diverges or fails;
    - [Skip_fsync]: acknowledge without any fsync — a crash loses
      acknowledged mutations;
    - [Skip_rotate]: cut a snapshot without the atomic WAL rotation —
      mutations after the snapshot vanish on restart;
    - [Skip_shard_fsync]: the cross-shard group-commit bug — the
      flush fsyncs every dirty shard {e except the last}, so a routed
      burst is acknowledged while one shard's slice is still volatile
      (on a 1-shard workload this degenerates to [Skip_fsync] and is
      still caught). *)

type inject = Log_before_apply | Skip_fsync | Skip_rotate | Skip_shard_fsync

val inject_to_string : inject -> string
val inject_of_string : string -> (inject, string) result

type counterexample = {
  cx_seed : int;  (** workload (schedule) seed *)
  cx_ops : int;  (** shrunk workload length *)
  cx_fault : int;  (** fault point; -1 = fails without a crash *)
  cx_inject : inject option;
  cx_reason : string;
  cx_repro : string;  (** one-line replay command *)
}

type result = {
  schedules_run : int;
  crash_runs : int;  (** total fault points exercised *)
  failures : counterexample list;
}

val run :
  ?inject:inject ->
  ?ops:int ->
  ?fault:int ->
  ?shards:int ->
  ?max_failures:int ->
  ?progress:(string -> unit) ->
  seed:int ->
  schedules:int ->
  unit ->
  result
(** Sweep [schedules] schedules; schedule [i]'s workload seed is
    [Fcv_util.Rng.derive seed i], so any schedule replays in
    isolation.  [ops] overrides every workload's length; [shards]
    overrides every workload's drawn shard count (1–3 otherwise).
    With [fault], replay mode: [seed] is used directly as the workload
    seed and only that fault point runs ([fault = -1] = the
    fault-free clean-restart check) — the shape a counterexample's
    repro line uses.  Stops after [max_failures] (default 1) shrunk
    counterexamples. *)
