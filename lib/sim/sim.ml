(** The fault-injection driver.  See sim.mli for the invariant; the
    accounting that makes it checkable:

    - [total]  = mutations acknowledged (applied + journaled),
    - [synced] = mutations known durable: covered by the last snapshot
      or fsync'd in the WAL,
    - at most one mutation is {e in flight} (its WAL append started
      but not acknowledged) when a crash hits.

    Recovery must then reproduce the oracle state after [k] mutations
    for exactly one [k] in [[synced, total + in-flight]].  The digest
    is extensional (database dump + registry + tombstones + verdicts),
    so BDD node numbering differences between a recovered index and
    the oracle's never matter. *)

module R = Fcv_relation
module Rng = Fcv_util.Rng
module P = Fcv_server.Protocol
module S = Fcv_server.Server
module Vfs = Fcv_server.Vfs
module Wal = Fcv_server.Wal
module State = Fcv_server.State
module U = Fcv_datagen.University

type inject = Log_before_apply | Skip_fsync | Skip_rotate

let inject_to_string = function
  | Log_before_apply -> "log-before-apply"
  | Skip_fsync -> "skip-fsync"
  | Skip_rotate -> "skip-rotate"

let inject_of_string = function
  | "log-before-apply" -> Ok Log_before_apply
  | "skip-fsync" -> Ok Skip_fsync
  | "skip-rotate" -> Ok Skip_rotate
  | s -> Error (Printf.sprintf "unknown injection %S (log-before-apply|skip-fsync|skip-rotate)" s)

type counterexample = {
  cx_seed : int;
  cx_ops : int;
  cx_fault : int;
  cx_inject : inject option;
  cx_reason : string;
  cx_repro : string;
}

type result = {
  schedules_run : int;
  crash_runs : int;
  failures : counterexample list;
}

(* -- workload generation --------------------------------------------------- *)

type workload = {
  seed : int;
  n_ops : int;
  fsync_every : int;
  load_base : unit -> R.Database.t;
  ops : P.request list;
  snapshot_at : int list;  (** cut a snapshot before these op indices *)
}

let univ_cfg = { U.default with U.students = 12; courses = 6; takes_per_student = 2 }

let retail_cfg =
  {
    Fcv_datagen.Retail.default with
    Fcv_datagen.Retail.customers = 25;
    products = 10;
    orders = 40;
    shipment_rate = 0.8;
  }

let univ_sources =
  [
    "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
  ]

let retail_sources =
  List.filteri (fun i _ -> i < 3) (List.map snd Fcv_datagen.Retail.audit_constraints)

(* Constraint sources the server must REJECT (and must therefore never
   journal): a parse error and an unknown table. *)
let bad_sources = [ "forall s . student(s,"; "forall z . nosuchtable(z, z)" ]

let row_to_cells tbl row =
  Array.to_list
    (Array.mapi (fun j code -> R.Value.to_string (R.Dict.value (R.Table.dict tbl j) code)) row)

(* [ops] truncates the drawn length but never changes the draw stream,
   so a shrunk workload is a prefix of the original. *)
let gen_workload ?ops ?fsync_every ~seed () =
  let rng = Rng.create seed in
  let drawn = 8 + Rng.int rng 17 in
  let n_ops = Option.value ops ~default:drawn in
  let drawn_fsync = Rng.choose rng [| 1; 1; 1; 3 |] in
  let fsync_every = Option.value fsync_every ~default:drawn_fsync in
  let base_seed = Rng.int rng 1_000_000 in
  let university = Rng.bool rng in
  let load_base =
    if university then fun () ->
      let db, _, _, _ = U.generate (Rng.create base_seed) univ_cfg in
      db
    else fun () -> (Fcv_datagen.Retail.generate (Rng.create base_seed) retail_cfg).Fcv_datagen.Retail.db
  in
  let sources = if university then univ_sources else retail_sources in
  let db = load_base () in
  let tables =
    Array.of_list (List.map (fun n -> R.Database.table db n) (R.Database.table_names db))
  in
  let base_rows =
    Array.map
      (fun tbl ->
        let acc = ref [] in
        R.Table.iter tbl (fun row -> acc := Array.copy row :: !acc);
        Array.of_list (List.rev !acc))
      tables
  in
  let random_cells tbl =
    List.init (R.Table.arity tbl) (fun j ->
        let dict = R.Table.dict tbl j in
        let sz = R.Dict.size dict in
        if Rng.bernoulli rng 0.85 then R.Value.to_string (R.Dict.value dict (Rng.int rng sz))
        else string_of_int (sz + Rng.int rng 4))
  in
  let registers = List.map (fun s -> P.Register { source = s; id = None }) sources in
  let snapshot_at = ref [] in
  let ops =
    List.init (max 0 (n_ops - List.length registers)) (fun i ->
        let i = i + List.length registers in
        if Rng.bernoulli rng 0.08 then snapshot_at := i :: !snapshot_at;
        let ti = Rng.int rng (Array.length tables) in
        let tbl = tables.(ti) in
        let tname = List.nth (R.Database.table_names db) ti in
        match Rng.int rng 100 with
        | r when r < 55 -> P.Insert (tname, random_cells tbl)
        | r when r < 75 ->
          let rows = base_rows.(ti) in
          if Array.length rows = 0 then P.Insert (tname, random_cells tbl)
          else P.Delete (tname, row_to_cells tbl rows.(Rng.int rng (Array.length rows)))
        | r when r < 83 ->
          (* a register: usually valid (sometimes a duplicate source —
             legal), sometimes one the server must reject *)
          let pool = if Rng.bernoulli rng 0.3 then bad_sources else sources in
          P.Register { source = List.nth pool (Rng.int rng (List.length pool)); id = None }
        | r when r < 90 -> P.Unregister (Rng.int rng 8)
        | r when r < 95 -> P.Insert ("nonesuch", [ "1" ])  (* unknown table: rejected *)
        | _ -> P.Insert (tname, "0" :: random_cells tbl) (* wrong arity: rejected *))
  in
  (* truncate to exactly [n_ops] — a shrunk workload is a strict
     prefix, even below the register preamble *)
  let ops = List.filteri (fun i _ -> i < n_ops) (registers @ ops) in
  { seed; n_ops; fsync_every; load_base; ops; snapshot_at = List.rev !snapshot_at }

(* -- the oracle ------------------------------------------------------------ *)

(* Extensional state digest: database dump (dictionaries in code
   order + coded rows), constraint registry, tombstones, verdicts. *)
let digest mut =
  let monitor = S.Mutator.monitor mut in
  let buf = Buffer.create 4096 in
  State.save_db (Core.Monitor.index monitor).Core.Index.db buf;
  List.iter
    (fun r -> Printf.bprintf buf "c\t%d\t%s\n" r.Core.Monitor.id r.Core.Monitor.source)
    (Core.Monitor.constraints monitor);
  List.iter
    (fun s -> Printf.bprintf buf "u\t%s\n" s)
    (List.sort compare (S.Mutator.unregistered mut));
  List.iter
    (fun (id, o) -> Printf.bprintf buf "v\t%d\t%b\n" id (o = Core.Checker.Violated))
    (Core.Monitor.verdicts monitor);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* [digests.(k)] = state after the first [k] acknowledged mutations of
   a never-crashed run (rejected requests don't count — they are not
   journaled, and the workload proves they leave no durable trace). *)
let oracle w =
  let mut =
    S.Mutator.create (Core.Monitor.create (Core.Index.create ~max_nodes:0 (w.load_base ())))
  in
  let digests = ref [ digest mut ] in
  List.iter
    (fun req ->
      match S.Mutator.apply mut req with
      | Ok _ when P.logged req -> digests := digest mut :: !digests
      | Ok _ | Error _ -> ())
    w.ops;
  (Array.of_list (List.rev !digests), mut)

(* -- driving the durable core under faults --------------------------------- *)

let dir = "sim-state"

(* Run the workload against the server's durable core (Mutator + WAL +
   snapshot rotation) on whatever Vfs backend is installed, keeping
   the acknowledged / durable / in-flight counters the invariant needs.
   Raises [Fault.Crash] when the backend's scheduled crash fires. *)
let drive w ~inject ~total ~synced ~inflight =
  if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
  let r = S.recover ~state_dir:dir ~load_base:w.load_base () in
  let fsync_every = if inject = Some Skip_fsync then 0 else w.fsync_every in
  let wal =
    ref (Wal.open_ ~fsync_every (State.wal_path ~dir ~gen:(State.current_gen ~dir)))
  in
  let mut = S.Mutator.create ~unregistered:r.S.unregistered r.S.monitor in
  if inject <> Some Log_before_apply then
    S.Mutator.set_log mut (fun req ->
        inflight := true;
        Wal.append !wal req;
        inflight := false);
  List.iteri
    (fun i req ->
      if List.mem i w.snapshot_at then begin
        (match inject with
        | Some Skip_rotate ->
          (* the bug: snapshot without the atomic WAL rotation — the
             old handle keeps journaling into a swept-away file *)
          ignore
            (State.save ~dir ~unregistered:(S.Mutator.unregistered mut) (S.Mutator.monitor mut))
        | _ ->
          let _gen, nw = S.snapshot_rotate ~dir ~fsync_every mut (Some !wal) in
          wal := Option.get nw);
        synced := !total
      end;
      if inject = Some Log_before_apply && P.logged req then Wal.append !wal req;
      match S.Mutator.apply mut req with
      | Ok _ when P.logged req ->
        incr total;
        synced := (if inject = Some Skip_fsync then !total else !total - Wal.unsynced !wal)
      | Ok _ | Error _ -> ())
    w.ops;
  mut

(* One run at one fault point ([crash_at = -1]: fault-free, then a
   clean restart).  Returns [Ok ()] or [Error reason]. *)
let check_run w ~inject ~digests ~crash_at =
  let fs = Fault.create ~crash_at ~seed:(Rng.derive w.seed (crash_at + 1)) () in
  let total = ref 0 and synced = ref 0 and inflight = ref false in
  Vfs.with_backend (Fault.backend fs) @@ fun () ->
  let live =
    try
      let mut = drive w ~inject ~total ~synced ~inflight in
      Some mut
    with Fault.Crash -> None
  in
  Fault.restart fs;
  match S.recover ~state_dir:dir ~load_base:w.load_base () with
  | exception e -> Error (Printf.sprintf "recovery failed: %s" (Printexc.to_string e))
  | r -> (
    let mut = S.Mutator.create ~unregistered:r.S.unregistered r.S.monitor in
    let d = try Ok (digest mut) with e -> Error e in
    match d with
    | Error e -> Error (Printf.sprintf "recovered state unusable: %s" (Printexc.to_string e))
    | Ok d ->
      let n = Array.length digests - 1 in
      let lo, hi =
        if live <> None then (!total, !total) (* clean restart: nothing may be lost *)
        else (!synced, min n (!total + if !inflight then 1 else 0))
      in
      let matches = ref [] in
      Array.iteri (fun k dk -> if dk = d then matches := k :: !matches) digests;
      if List.exists (fun k -> k >= lo && k <= hi) !matches then Ok ()
      else
        Error
          (match !matches with
          | [] ->
            Printf.sprintf
              "recovered state matches no oracle state (window [%d, %d] of %d, replayed %d)"
              lo hi n r.S.replayed
          | ks ->
            Printf.sprintf
              "recovered state is oracle state %s, outside the durable window [%d, %d]"
              (String.concat "/" (List.map string_of_int (List.rev ks)))
              lo hi))

(* Sequential and parallel validation must agree on a recovered-shape
   monitor (replica epochs re-hydrate to parity). *)
let parallel_parity mut =
  let m = S.Mutator.monitor mut in
  let vs = Core.Monitor.verdicts m in
  Core.Monitor.set_jobs m 2;
  let vp = Core.Monitor.verdicts m in
  Core.Monitor.stop m;
  if vs = vp then Ok ()
  else Error "sequential and parallel validation disagree on the final state"

(* -- schedules, shrinking, reporting --------------------------------------- *)

let repro ~seed ~ops ~fault ~inject =
  Printf.sprintf "fcv sim --seed %d --ops %d --fault=%d%s" seed ops fault
    (match inject with None -> "" | Some i -> " --inject " ^ inject_to_string i)

(* Exercise one workload at every reachable fault point; [Some
   (fault, reason)] on the first violation.  Also counts runs. *)
let sweep w ~inject ~runs ~only_fault =
  match oracle w with
  | exception e -> Some (-1, "oracle run failed: " ^ Printexc.to_string e)
  | digests, omut -> (
    let clean () =
      incr runs;
      match check_run w ~inject ~digests ~crash_at:(-1) with
      | Ok () -> None
      | Error reason -> Some (-1, reason)
    in
    match only_fault with
    | Some (-1) -> clean ()
    | Some k ->
      incr runs;
      (match check_run w ~inject ~digests ~crash_at:k with
      | Ok () -> None
      | Error reason -> Some (k, reason))
    | None -> (
      match parallel_parity omut with
      | Error reason -> Some (-1, reason)
      | Ok () -> (
        match clean () with
        | Some _ as fail -> fail
        | None ->
          (* count the workload's reachable fault points with a
             fault-free instrumented run, then crash at each *)
          let fs = Fault.create ~seed:(Rng.derive w.seed 0) () in
          let total = ref 0 and synced = ref 0 and inflight = ref false in
          Vfs.with_backend (Fault.backend fs) (fun () ->
              ignore (drive w ~inject ~total ~synced ~inflight));
          let n_faults = Fault.effects fs in
          let rec go k =
            if k >= n_faults then None
            else begin
              incr runs;
              match check_run w ~inject ~digests ~crash_at:k with
              | Ok () -> go (k + 1)
              | Error reason -> Some (k, reason)
            end
          in
          go 0)))

(* Minimal replayable counterexample: the shortest prefix of the
   workload's op stream that still fails somewhere, and its earliest
   failing fault point. *)
let shrink ~seed ~inject ~fsync_every ~runs ~full_ops ~first =
  let rec try_n n =
    if n > full_ops then first
    else
      let w = gen_workload ~ops:n ?fsync_every ~seed () in
      match sweep w ~inject ~runs ~only_fault:None with
      | Some (fault, reason) -> (n, fault, reason)
      | None -> try_n (n + 1)
  in
  try_n 1

let run ?inject ?ops ?fault ?(max_failures = 1) ?(progress = fun _ -> ()) ~seed ~schedules () =
  let runs = ref 0 in
  let failures = ref [] in
  let fail ~wseed ~n_ops ~fault ~reason =
    failures :=
      {
        cx_seed = wseed;
        cx_ops = n_ops;
        cx_fault = fault;
        cx_inject = inject;
        cx_reason = reason;
        cx_repro = repro ~seed:wseed ~ops:n_ops ~fault ~inject;
      }
      :: !failures
  in
  let schedules_run = ref 0 in
  (match fault with
  | Some k ->
    (* replay mode: [seed] IS the workload seed *)
    let w = gen_workload ?ops ~seed () in
    incr schedules_run;
    (match sweep w ~inject ~runs ~only_fault:(Some k) with
    | None -> ()
    | Some (f, reason) -> fail ~wseed:seed ~n_ops:w.n_ops ~fault:f ~reason)
  | None ->
    let s = ref 0 in
    while !s < schedules && List.length !failures < max_failures do
      let wseed = Rng.derive seed !s in
      let w = gen_workload ?ops ~seed:wseed () in
      incr schedules_run;
      (match sweep w ~inject ~runs ~only_fault:None with
      | None -> ()
      | Some (first_fault, first_reason) ->
        progress
          (Printf.sprintf "schedule %d (seed %d): violation at fault %d — shrinking" !s wseed
             first_fault);
        let n_ops, f, reason =
          shrink ~seed:wseed ~inject ~fsync_every:None ~runs ~full_ops:w.n_ops
            ~first:(w.n_ops, first_fault, first_reason)
        in
        fail ~wseed ~n_ops ~fault:f ~reason);
      if (!s + 1) mod 25 = 0 then
        progress (Printf.sprintf "%d/%d schedules, %d crash runs" (!s + 1) schedules !runs);
      incr s
    done);
  { schedules_run = !schedules_run; crash_runs = !runs; failures = List.rev !failures }
