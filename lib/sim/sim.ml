(** The fault-injection driver.  See sim.mli for the invariant; the
    accounting that makes it checkable, {e per shard}:

    - [journaled.(s)] = records handed to shard [s]'s journal
      (bumped before the WAL append, so an in-flight record whose
      append crashed is included — {!Fcv_server.Shard.journaled});
    - [synced.(s)] = records known durable on [s]: covered by its
      last snapshot rotation, or acknowledged by a group-commit flush
      — the {e ack contract}: once the flush returns, every
      journaled mutation is durable, so a flush that skipped a
      shard's fsync (the planted cross-shard bug) makes the window
      itself catch the lie.

    Recovery must then reproduce, on every shard, the oracle state of
    that shard after [k] journaled records for some [k] in
    [[synced.(s), journaled.(s)]].  The digest is extensional
    (database dump + registry + tombstones + verdicts), so BDD node
    numbering differences between a recovered index and the oracle's
    never matter. *)

module R = Fcv_relation
module Rng = Fcv_util.Rng
module P = Fcv_server.Protocol
module S = Fcv_server.Server
module Shard = Fcv_server.Shard
module Tier = Fcv_server.Tier
module Vfs = Fcv_server.Vfs
module Wal = Fcv_server.Wal
module State = Fcv_server.State
module U = Fcv_datagen.University

type inject = Log_before_apply | Skip_fsync | Skip_rotate | Skip_shard_fsync

let inject_to_string = function
  | Log_before_apply -> "log-before-apply"
  | Skip_fsync -> "skip-fsync"
  | Skip_rotate -> "skip-rotate"
  | Skip_shard_fsync -> "skip-shard-fsync"

let inject_of_string = function
  | "log-before-apply" -> Ok Log_before_apply
  | "skip-fsync" -> Ok Skip_fsync
  | "skip-rotate" -> Ok Skip_rotate
  | "skip-shard-fsync" -> Ok Skip_shard_fsync
  | s ->
    Error
      (Printf.sprintf
         "unknown injection %S (log-before-apply|skip-fsync|skip-rotate|skip-shard-fsync)" s)

type counterexample = {
  cx_seed : int;
  cx_ops : int;
  cx_fault : int;
  cx_inject : inject option;
  cx_reason : string;
  cx_repro : string;
}

type result = {
  schedules_run : int;
  crash_runs : int;
  failures : counterexample list;
}

(* -- workload generation --------------------------------------------------- *)

type workload = {
  seed : int;
  n_ops : int;
  shards : int;
  window : int;  (** group-commit window: flush after this many journaled records *)
  load_base : unit -> R.Database.t;
  ops : P.request list;
  snapshot_at : int list;  (** rotate every shard before these op indices *)
}

let univ_cfg = { U.default with U.students = 12; courses = 6; takes_per_student = 2 }

let retail_cfg =
  {
    Fcv_datagen.Retail.default with
    Fcv_datagen.Retail.customers = 25;
    products = 10;
    orders = 40;
    shipment_rate = 0.8;
  }

let univ_sources =
  [
    "forall s . student(s, 0, _) -> (exists c . course(c, 0) and takes(s, c))";
    "forall s, c . takes(s, c) -> (exists a . course(c, a))";
  ]

let retail_sources =
  List.filteri (fun i _ -> i < 3) (List.map snd Fcv_datagen.Retail.audit_constraints)

(* Constraint sources the server must REJECT (and must therefore never
   journal): a parse error and an unknown table. *)
let bad_sources = [ "forall s . student(s,"; "forall z . nosuchtable(z, z)" ]

let row_to_cells tbl row =
  Array.to_list
    (Array.mapi (fun j code -> R.Value.to_string (R.Dict.value (R.Table.dict tbl j) code)) row)

(* [ops] truncates the drawn length but never changes the draw stream,
   so a shrunk workload is a prefix of the original; [shards]
   overrides the drawn shard count (the [--shards] CLI knob). *)
let gen_workload ?ops ?shards ~seed () =
  let rng = Rng.create seed in
  let drawn = 8 + Rng.int rng 17 in
  let n_ops = Option.value ops ~default:drawn in
  let drawn_shards = Rng.choose rng [| 1; 1; 2; 3 |] in
  let shards = Option.value shards ~default:drawn_shards in
  let window = Rng.choose rng [| 1; 2; 4 |] in
  let base_seed = Rng.int rng 1_000_000 in
  let university = Rng.bool rng in
  let load_base =
    if university then fun () ->
      let db, _, _, _ = U.generate (Rng.create base_seed) univ_cfg in
      db
    else fun () -> (Fcv_datagen.Retail.generate (Rng.create base_seed) retail_cfg).Fcv_datagen.Retail.db
  in
  let sources = if university then univ_sources else retail_sources in
  let db = load_base () in
  let tables =
    Array.of_list (List.map (fun n -> R.Database.table db n) (R.Database.table_names db))
  in
  let base_rows =
    Array.map
      (fun tbl ->
        let acc = ref [] in
        R.Table.iter tbl (fun row -> acc := Array.copy row :: !acc);
        Array.of_list (List.rev !acc))
      tables
  in
  let random_cells tbl =
    List.init (R.Table.arity tbl) (fun j ->
        let dict = R.Table.dict tbl j in
        let sz = R.Dict.size dict in
        if Rng.bernoulli rng 0.85 then R.Value.to_string (R.Dict.value dict (Rng.int rng sz))
        else string_of_int (sz + Rng.int rng 4))
  in
  let registers = List.map (fun s -> P.Register { source = s; id = None }) sources in
  let snapshot_at = ref [] in
  let ops =
    List.init (max 0 (n_ops - List.length registers)) (fun i ->
        let i = i + List.length registers in
        if Rng.bernoulli rng 0.08 then snapshot_at := i :: !snapshot_at;
        let ti = Rng.int rng (Array.length tables) in
        let tbl = tables.(ti) in
        let tname = List.nth (R.Database.table_names db) ti in
        match Rng.int rng 100 with
        | r when r < 55 -> P.Insert (tname, random_cells tbl)
        | r when r < 75 ->
          let rows = base_rows.(ti) in
          if Array.length rows = 0 then P.Insert (tname, random_cells tbl)
          else P.Delete (tname, row_to_cells tbl rows.(Rng.int rng (Array.length rows)))
        | r when r < 83 ->
          (* a register: usually valid (sometimes a duplicate source —
             legal), sometimes one the server must reject *)
          let pool = if Rng.bernoulli rng 0.3 then bad_sources else sources in
          P.Register { source = List.nth pool (Rng.int rng (List.length pool)); id = None }
        | r when r < 88 -> P.Unregister (Rng.int rng 8)
        | r when r < 91 ->
          (* an applied repair mid-schedule: the planner is
             deterministic, so the oracle run and every crash run plan
             the same deletions, journaled as ordinary Delete records *)
          P.Repair
            { strategy = "greedy"; max_deletions = Some (1 + Rng.int rng 3); apply = true }
        | r when r < 95 -> P.Insert ("nonesuch", [ "1" ])  (* unknown table: rejected *)
        | _ -> P.Insert (tname, "0" :: random_cells tbl) (* wrong arity: rejected *))
  in
  (* truncate to exactly [n_ops] — a shrunk workload is a strict
     prefix, even below the register preamble *)
  let ops = List.filteri (fun i _ -> i < n_ops) (registers @ ops) in
  { seed; n_ops; shards; window; load_base; ops; snapshot_at = List.rev !snapshot_at }

(* -- the oracle ------------------------------------------------------------ *)

(* Extensional digest of one shard: database dump (dictionaries in
   code order + coded rows), constraint registry, tombstones,
   verdicts. *)
let digest_shard shard =
  let monitor = Shard.monitor shard in
  let buf = Buffer.create 4096 in
  State.save_db (Core.Monitor.index monitor).Core.Index.db buf;
  List.iter
    (fun r -> Printf.bprintf buf "c\t%d\t%s\n" r.Core.Monitor.id r.Core.Monitor.source)
    (Core.Monitor.constraints monitor);
  List.iter
    (fun s -> Printf.bprintf buf "u\t%s\n" s)
    (List.sort compare (Shard.unregistered shard));
  List.iter
    (fun (id, o) -> Printf.bprintf buf "v\t%d\t%b\n" id (o = Core.Checker.Violated))
    (Core.Monitor.verdicts monitor);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* [digests.(s).(k)] = shard [s]'s state after the first [k] records
   journaled on it by a never-crashed run (rejected requests don't
   count — they are not journaled, and the workload proves they leave
   no durable trace; registration-migration deltas do count — they
   are ordinary journaled records of the constraint's shard). *)
let oracle w =
  let tier = Tier.create_fresh ~fsync:false ~shards:w.shards ~load_base:w.load_base () in
  let ss = Tier.shards tier in
  let digests = Array.map (fun s -> ref [ digest_shard s ]) ss in
  Array.iteri
    (fun i s -> Shard.set_on_journal s (fun _ -> digests.(i) := digest_shard s :: !(digests.(i))))
    ss;
  List.iter (fun req -> ignore (Tier.apply tier req)) w.ops;
  (Array.map (fun l -> Array.of_list (List.rev !l)) digests, tier)

(* -- driving the durable core under faults --------------------------------- *)

let dir = "sim-state"

type acct = {
  mutable tier : Tier.t option;  (** set as soon as recovery completes *)
  synced : int array;  (** per shard: records known durable *)
}

(* Run the workload against the server's durable tier (per-shard
   Mutator + WAL + snapshot rotation, routed fan-out, group commit) on
   whatever Vfs backend is installed, keeping the per-shard durable
   counters the invariant needs.  Raises [Fault.Crash] when the
   backend's scheduled crash fires. *)
let drive w ~inject ~acct =
  if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
  let tier, _ = Tier.recover ~shards:w.shards ~state_dir:dir ~load_base:w.load_base () in
  acct.tier <- Some tier;
  let ss = Tier.shards tier in
  let note_synced () = Array.iteri (fun i s -> acct.synced.(i) <- Shard.journaled s) ss in
  (* One group commit.  The ack contract — synced := journaled — is
     asserted for every shard regardless of the injection: a planted
     bug that skips an fsync still acknowledges, which is exactly the
     lie the sweep must catch. *)
  let flush () =
    (match inject with
    | Some Skip_fsync -> ()
    | Some Skip_shard_fsync -> (
      (* the planted cross-shard bug: the flush syncs every dirty
         shard's WAL except the last one's *)
      match List.rev (List.filter Shard.is_dirty (Array.to_list ss)) with
      | [] -> ()
      | _victim :: rest -> List.iter Shard.sync rest)
    | _ -> Array.iter Shard.sync ss);
    Tier.clear_pending tier;
    note_synced ()
  in
  List.iteri
    (fun i req ->
      if List.mem i w.snapshot_at then begin
        match inject with
        | Some Skip_rotate -> (
          (* the bug: snapshot shard 0 without the atomic WAL rotation
             — its old handle keeps journaling into a swept-away
             file *)
          match Shard.dir ss.(0) with
          | Some sdir ->
            ignore
              (State.save ~dir:sdir ~unregistered:(Shard.unregistered ss.(0))
                 (Shard.monitor ss.(0)));
            acct.synced.(0) <- Shard.journaled ss.(0)
          | None -> ())
        | _ ->
          Tier.snapshot tier;
          note_synced ()
      end;
      (match inject with
      | Some Log_before_apply when P.logged req ->
        (* the bug: journal on every target shard before applying —
           rejected requests reach the WALs, accepted ones land
           twice *)
        List.iter (fun sid -> Shard.raw_append ss.(sid) req) (Tier.targets tier req)
      | _ -> ());
      ignore (Tier.apply tier req);
      if Tier.pending tier >= w.window then flush ())
    w.ops;
  flush ()

(* One run at one fault point ([crash_at = -1]: fault-free, then a
   clean restart).  Returns [Ok ()] or [Error reason]. *)
let check_run w ~inject ~digests ~crash_at =
  let fs = Fault.create ~crash_at ~seed:(Rng.derive w.seed (crash_at + 1)) () in
  let acct = { tier = None; synced = Array.make w.shards 0 } in
  Vfs.with_backend (Fault.backend fs) @@ fun () ->
  let live =
    try
      drive w ~inject ~acct;
      true
    with Fault.Crash -> false
  in
  let journaled =
    match acct.tier with
    | Some tier -> Array.map Shard.journaled (Tier.shards tier)
    | None -> Array.make w.shards 0
  in
  Fault.restart fs;
  match Tier.recover ~shards:w.shards ~state_dir:dir ~load_base:w.load_base () with
  | exception e -> Error (Printf.sprintf "recovery failed: %s" (Printexc.to_string e))
  | rtier, rs ->
    let rec check s =
      if s >= w.shards then Ok ()
      else begin
        match digest_shard (Tier.shards rtier).(s) with
        | exception e ->
          Error
            (Printf.sprintf "recovered shard %d unusable: %s" s (Printexc.to_string e))
        | d ->
          let n = Array.length digests.(s) - 1 in
          let lo, hi =
            if live then (journaled.(s), journaled.(s)) (* clean restart: nothing may be lost *)
            else (acct.synced.(s), min n journaled.(s))
          in
          let matches = ref [] in
          Array.iteri (fun k dk -> if dk = d then matches := k :: !matches) digests.(s);
          if List.exists (fun k -> k >= lo && k <= hi) !matches then check (s + 1)
          else
            Error
              (match !matches with
              | [] ->
                Printf.sprintf
                  "shard %d: recovered state matches no oracle state (window [%d, %d] of \
                   %d, replayed %d)"
                  s lo hi n rs.(s).Shard.replayed
              | ks ->
                Printf.sprintf
                  "shard %d: recovered state is oracle state %s, outside the durable \
                   window [%d, %d]"
                  s
                  (String.concat "/" (List.map string_of_int (List.rev ks)))
                  lo hi)
      end
    in
    check 0

(* Sequential and parallel validation must agree on a recovered-shape
   tier (replica epochs re-hydrate to parity, on every shard). *)
let parallel_parity tier =
  let vs = Tier.verdicts tier in
  Tier.set_jobs tier 2;
  let vp = Tier.verdicts tier in
  Tier.stop_jobs tier;
  if vs = vp then Ok ()
  else Error "sequential and parallel validation disagree on the final state"

(* -- schedules, shrinking, reporting --------------------------------------- *)

let repro ~seed ~ops ~fault ~inject ~shards =
  Printf.sprintf "fcv sim --seed %d --ops %d --fault=%d%s%s" seed ops fault
    (match inject with None -> "" | Some i -> " --inject " ^ inject_to_string i)
    (match shards with None -> "" | Some n -> Printf.sprintf " --shards %d" n)

(* Exercise one workload at every reachable fault point; [Some
   (fault, reason)] on the first violation.  Also counts runs. *)
let sweep w ~inject ~runs ~only_fault =
  match oracle w with
  | exception e -> Some (-1, "oracle run failed: " ^ Printexc.to_string e)
  | digests, otier -> (
    let clean () =
      incr runs;
      match check_run w ~inject ~digests ~crash_at:(-1) with
      | Ok () -> None
      | Error reason -> Some (-1, reason)
    in
    match only_fault with
    | Some (-1) -> clean ()
    | Some k ->
      incr runs;
      (match check_run w ~inject ~digests ~crash_at:k with
      | Ok () -> None
      | Error reason -> Some (k, reason))
    | None -> (
      match parallel_parity otier with
      | Error reason -> Some (-1, reason)
      | Ok () -> (
        match clean () with
        | Some _ as fail -> fail
        | None ->
          (* count the workload's reachable fault points with a
             fault-free instrumented run, then crash at each — the
             points cover every per-shard effect: each shard's WAL
             appends within one routed burst, each fsync of a group
             commit, and every write / rename of each shard's
             snapshot rotation *)
          let fs = Fault.create ~seed:(Rng.derive w.seed 0) () in
          let acct = { tier = None; synced = Array.make w.shards 0 } in
          Vfs.with_backend (Fault.backend fs) (fun () -> drive w ~inject ~acct);
          let n_faults = Fault.effects fs in
          let rec go k =
            if k >= n_faults then None
            else begin
              incr runs;
              match check_run w ~inject ~digests ~crash_at:k with
              | Ok () -> go (k + 1)
              | Error reason -> Some (k, reason)
            end
          in
          go 0)))

(* Minimal replayable counterexample: the shortest prefix of the
   workload's op stream that still fails somewhere, and its earliest
   failing fault point. *)
let shrink ~seed ~inject ~shards ~runs ~full_ops ~first =
  let rec try_n n =
    if n > full_ops then first
    else
      let w = gen_workload ~ops:n ?shards ~seed () in
      match sweep w ~inject ~runs ~only_fault:None with
      | Some (fault, reason) -> (n, fault, reason)
      | None -> try_n (n + 1)
  in
  try_n 1

let run ?inject ?ops ?fault ?shards ?(max_failures = 1) ?(progress = fun _ -> ()) ~seed
    ~schedules () =
  let runs = ref 0 in
  let failures = ref [] in
  let fail ~wseed ~n_ops ~fault ~reason =
    failures :=
      {
        cx_seed = wseed;
        cx_ops = n_ops;
        cx_fault = fault;
        cx_inject = inject;
        cx_reason = reason;
        cx_repro = repro ~seed:wseed ~ops:n_ops ~fault ~inject ~shards;
      }
      :: !failures
  in
  let schedules_run = ref 0 in
  (match fault with
  | Some k ->
    (* replay mode: [seed] IS the workload seed *)
    let w = gen_workload ?ops ?shards ~seed () in
    incr schedules_run;
    (match sweep w ~inject ~runs ~only_fault:(Some k) with
    | None -> ()
    | Some (f, reason) -> fail ~wseed:seed ~n_ops:w.n_ops ~fault:f ~reason)
  | None ->
    let s = ref 0 in
    while !s < schedules && List.length !failures < max_failures do
      let wseed = Rng.derive seed !s in
      let w = gen_workload ?ops ?shards ~seed:wseed () in
      incr schedules_run;
      (match sweep w ~inject ~runs ~only_fault:None with
      | None -> ()
      | Some (first_fault, first_reason) ->
        progress
          (Printf.sprintf "schedule %d (seed %d): violation at fault %d — shrinking" !s wseed
             first_fault);
        let n_ops, f, reason =
          shrink ~seed:wseed ~inject ~shards ~runs ~full_ops:w.n_ops
            ~first:(w.n_ops, first_fault, first_reason)
        in
        fail ~wseed ~n_ops ~fault:f ~reason);
      if (!s + 1) mod 25 = 0 then
        progress (Printf.sprintf "%d/%d schedules, %d crash runs" (!s + 1) schedules !runs);
      incr s
    done);
  { schedules_run = !schedules_run; crash_runs = !runs; failures = List.rev !failures }
