(** Reference (ground-truth) semantics for constraints: direct
    first-order evaluation with quantifiers ranging over active
    domains and atoms checked by scanning base tables.  Exponential in
    quantifier depth — used by the test suite to validate both the BDD
    and the SQL paths, and as a last-resort fallback for formulas
    outside the SQL translator's safe fragment. *)

module R = Fcv_relation
open Formula

(** Evaluate [f] (closed) against [db].  [typing] as from
    {!Typing.infer}; computed when omitted. *)
let holds ?typing db f =
  let typing = match typing with Some t -> t | None -> Typing.infer db f in
  let dict_of x = R.Database.domain db (Typing.domain_of typing x) in
  (* environment: variable -> code *)
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let term_code dict = function
    | Var x -> Hashtbl.find_opt env x
    | Const value -> R.Dict.code dict value
    | Wildcard -> None
  in
  let atom_holds r terms =
    let table = R.Database.table db r in
    let matchers =
      List.mapi
        (fun i t ->
          match t with
          | Wildcard -> `Any
          | Var x -> (
            match Hashtbl.find_opt env x with
            | Some c -> `Code c
            | None -> failwith ("Naive_eval: unbound variable " ^ x))
          | Const value -> (
            match R.Dict.code (R.Table.dict table i) value with
            | Some c -> `Code c
            | None -> `Impossible))
        terms
    in
    if List.exists (fun m -> m = `Impossible) matchers then false
    else begin
      let matchers = Array.of_list matchers in
      let matches row =
        let ok = ref true in
        Array.iteri
          (fun i m -> match m with `Code c when row.(i) <> c -> ok := false | _ -> ())
          matchers;
        !ok
      in
      let found = ref false in
      R.Table.iter table (fun row -> if (not !found) && matches row then found := true);
      !found
    end
  in
  let term_value = function
    | Var x ->
      let dict = dict_of x in
      R.Dict.value dict (Hashtbl.find env x)
    | Const value -> value
    | Wildcard -> failwith "Naive_eval: wildcard outside atom"
  in
  let rec eval = function
    | True -> true
    | False -> false
    | Atom (r, terms) -> atom_holds r terms
    | Eq (a, b) -> (
      (* compare as values so Var = Const works across representations *)
      match (a, b) with
      | Var x, Const value | Const value, Var x -> (
        match term_code (dict_of x) (Var x) with
        | Some c -> R.Value.equal (R.Dict.value (dict_of x) c) value
        | None -> failwith "Naive_eval: unbound variable in equality")
      | _ -> R.Value.equal (term_value a) (term_value b))
    | In (a, values) -> List.exists (R.Value.equal (term_value a)) values
    | Not f -> not (eval f)
    | And (a, b) -> eval a && eval b
    | Or (a, b) -> eval a || eval b
    | Implies (a, b) -> (not (eval a)) || eval b
    | Iff (a, b) -> eval a = eval b
    | Exists (xs, f) -> quantify_exists xs f
    | Forall (xs, f) -> quantify_forall xs f
  and quantify_exists xs f =
    match xs with
    | [] -> eval f
    | x :: rest ->
      let dict = dict_of x in
      let n = R.Dict.size dict in
      let rec try_code c =
        if c >= n then false
        else begin
          (* Hashtbl.add/remove push and pop, so an inner binding
             correctly shadows an outer variable of the same name *)
          Hashtbl.add env x c;
          let r = quantify_exists rest f in
          Hashtbl.remove env x;
          r || try_code (c + 1)
        end
      in
      try_code 0
  and quantify_forall xs f =
    match xs with
    | [] -> eval f
    | x :: rest ->
      let dict = dict_of x in
      let n = R.Dict.size dict in
      let rec all_codes c =
        if c >= n then true
        else begin
          Hashtbl.add env x c;
          let r = quantify_forall rest f in
          Hashtbl.remove env x;
          r && all_codes (c + 1)
        end
      in
      all_codes 0
  in
  eval f

(* Ground [f] under [bound : (var, value) list] by substituting
   constants for the bound variables, stopping at binders that rebind
   a substituted variable (shadowing). *)
let ground_formula bound f =
  let subst_term t =
    match t with
    | Var x -> (
      match List.assoc_opt x bound with Some value -> Const value | None -> t)
    | _ -> t
  in
  let bound_names = List.map fst bound in
  let rec subst_formula shadowed = function
    | True -> True
    | False -> False
    | Atom (r, terms) ->
      Atom (r, List.map (fun t -> if is_shadowed shadowed t then t else subst_term t) terms)
    | Eq (a, b) -> Eq (subst shadowed a, subst shadowed b)
    | In (a, vs) -> In (subst shadowed a, vs)
    | Not g -> Not (subst_formula shadowed g)
    | And (a, b) -> And (subst_formula shadowed a, subst_formula shadowed b)
    | Or (a, b) -> Or (subst_formula shadowed a, subst_formula shadowed b)
    | Implies (a, b) -> Implies (subst_formula shadowed a, subst_formula shadowed b)
    | Iff (a, b) -> Iff (subst_formula shadowed a, subst_formula shadowed b)
    | Exists (ys, g) ->
      Exists (ys, subst_formula (List.filter (fun n -> List.mem n bound_names) ys @ shadowed) g)
    | Forall (ys, g) ->
      Forall (ys, subst_formula (List.filter (fun n -> List.mem n bound_names) ys @ shadowed) g)
  and is_shadowed shadowed = function
    | Var x -> List.mem x shadowed
    | Const _ | Wildcard -> false
  and subst shadowed t = if is_shadowed shadowed t then t else subst_term t in
  subst_formula [] f

(** Enumerate the violating bindings of a universally quantified
    constraint ∀x̄. φ: all assignments of x̄ (as decoded values) under
    which φ is false.  Used by tests to cross-check
    {!Violations}. *)
let violating_bindings ?typing db f =
  match f with
  | Forall (xs, body) ->
    let typing = match typing with Some t -> t | None -> Typing.infer db f in
    let dicts = List.map (fun x -> (x, R.Database.domain db (Typing.domain_of typing x))) xs in
    let results = ref [] in
    let rec loop bound = function
      | [] ->
        if not (holds db (ground_formula bound body)) then results := bound :: !results
      | (x, dict) :: rest ->
        for c = 0 to R.Dict.size dict - 1 do
          loop (bound @ [ (x, R.Dict.value dict c) ]) rest
        done
    in
    loop [] dicts;
    List.rev !results
  | _ -> invalid_arg "Naive_eval.violating_bindings: expects a top-level Forall"

(** Exact [(violations, total)] binding counts for a threshold
    verdict, by brute-force enumeration of the leading ∀-block (nested
    blocks collected): [total] counts the bindings satisfying the
    outermost hypothesis ([True] — every binding — when the stripped
    body is not an implication), [violations] those falsifying the
    body.  The ground truth the BDD soft counts are differentially
    tested against, and the checker's last-resort fallback after a
    budget trip.  A formula with no leading ∀ gets 0/1 semantics:
    [(0, 1)] when it holds, [(1, 1)] when it doesn't. *)
let soft_counts ?typing db f =
  let xs, body = Formula.strip_foralls f in
  if xs = [] then if holds ?typing db f then (0, 1) else (1, 1)
  else begin
    let typing = match typing with Some t -> t | None -> Typing.infer db f in
    let dicts = List.map (fun x -> (x, R.Database.domain db (Typing.domain_of typing x))) xs in
    let h = Formula.hypothesis body in
    let violations = ref 0 and total = ref 0 in
    let rec loop bound = function
      | [] ->
        if holds db (ground_formula bound h) then incr total;
        if not (holds db (ground_formula bound body)) then incr violations
      | (x, dict) :: rest ->
        for c = 0 to R.Dict.size dict - 1 do
          loop (bound @ [ (x, R.Dict.value dict c) ]) rest
        done
    in
    loop [] dicts;
    (!violations, !total)
  end
