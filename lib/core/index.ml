(** The logical index store (§2.3, §3): one shared BDD manager per
    database holding a characteristic-function BDD for each indexed
    table (or projection of a table), plus the incremental-maintenance
    hooks of §5.2.

    All indices share one manager so that constraint compilation can
    combine them directly; each index's attribute blocks occupy a
    contiguous range of levels allocated at build time in the order
    chosen by its {!Ordering.strategy}. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd

type entry = {
  table : R.Table.t;
  attrs : int array;  (** indexed schema positions, ascending *)
  order : int array;  (** permutation of [0, |attrs|): order.(k) indexes [attrs] *)
  strategy : Ordering.strategy;
  blocks : Fd.block array;  (** blocks.(i) is the block of attrs.(i) *)
  mutable root : int;
  counts : (int, int) Hashtbl.t;
      (** multiset of projected rows (packed codes) — needed to decide
          when a deletion removes the last witness of a projection *)
  mutable build_time : float;  (** seconds spent constructing [root] *)
}

type t = {
  db : R.Database.t;
  mutable mgr : M.t;
      (* mutable so level recycling ({!Lifecycle.recycle}) can swap in
         a fresh manager with dense level assignment in place *)
  mutable entries : entry list;
  scratch_pool : (int, Fd.block list) Hashtbl.t;
      (* reusable scratch blocks by domain size: constraint compilation
         borrows auxiliary blocks and returns them afterwards, so the
         manager's bounded level space is not consumed by repeated
         checks *)
  mutable deferred : (string * string list * Ordering.strategy) list;
      (* entry rebuilds postponed because the manager ran out of
         levels mid-update; {!Lifecycle.maybe_gc} recycles the level
         space and re-adds them before the next validation *)
  mutable structure_version : int;
      (* bumped on every structural change to the entry set (add,
         remove, rebuild, defer, level recycle) — NOT on content-
         preserving GC.  Replicas use it to decide whether a row-level
         delta can still describe the master (see {!Replica}). *)
  mutable gc_runs : int;  (* automatic + manual compactions *)
  mutable gc_reclaimed : int;  (* nodes reclaimed across all GC runs *)
  mutable level_recycles : int;  (* dense-rebuild epochs *)
  mutable peak_nodes : int;
      (* manager peak carried across level recycles (a fresh manager
         resets its own peak) *)
}

let create ?(max_nodes = 0) ?(max_cache = M.default_max_cache) db =
  {
    db;
    mgr = M.create ~max_nodes ~max_cache ~nvars:0 ();
    entries = [];
    scratch_pool = Hashtbl.create 8;
    deferred = [];
    structure_version = 0;
    gc_runs = 0;
    gc_reclaimed = 0;
    level_recycles = 0;
    peak_nodes = 2;
  }

(** Borrow an auxiliary block of the given domain size, reusing a
    previously released one when available. *)
let borrow_scratch t ~dom_size =
  match Hashtbl.find_opt t.scratch_pool dom_size with
  | Some (b :: rest) ->
    Hashtbl.replace t.scratch_pool dom_size rest;
    b
  | Some [] | None -> Fd.alloc t.mgr ~name:(Printf.sprintf "scratch/%d" dom_size) ~dom_size

(** Return borrowed blocks to the pool. *)
let release_scratch t blocks =
  List.iter
    (fun b ->
      let dom_size = b.Fd.dom_size in
      let existing = Option.value ~default:[] (Hashtbl.find_opt t.scratch_pool dom_size) in
      Hashtbl.replace t.scratch_pool dom_size (b :: existing))
    blocks

let mgr t = t.mgr
let entries t = t.entries

(* Distinct projection of [table] onto [attrs], as a fresh table
   sharing the same dictionaries (not registered in any database). *)
let project table attrs =
  let schema = R.Table.schema table in
  let sub_schema =
    R.Schema.make
      (Array.to_list
         (Array.map (fun a -> (schema.(a).R.Schema.name, schema.(a).R.Schema.domain)) attrs))
  in
  let dicts = Array.map (fun a -> R.Table.dict table a) attrs in
  let proj =
    R.Table.create ~name:(R.Table.name table ^ "_proj") ~schema:sub_schema ~dicts
  in
  let seen = Hashtbl.create 1024 in
  R.Table.iter table (fun row ->
      let sub = Array.map (fun a -> row.(a)) attrs in
      if not (Hashtbl.mem seen sub) then begin
        Hashtbl.add seen sub ();
        R.Table.insert_coded proj sub
      end);
  proj

(* Pack a projected row into one integer key for the counts multiset
   (attribute blocks are at most 62 bits wide in total for every
   workload we index; wider projections reject maintenance). *)
let pack_key blocks sub =
  let bits = Array.fold_left (fun acc b -> acc + Fd.width b) 0 blocks in
  if bits > 62 then None
  else begin
    let acc = ref 0 in
    Array.iteri (fun i c -> acc := (!acc lsl Fd.width blocks.(i)) lor c) sub;
    Some !acc
  end

(** Build (or rebuild) a logical index on [table_name], restricted to
    [attrs] (attribute names; default: all attributes), ordered by
    [strategy].  Returns the entry; it is also registered in [t]. *)
let add t ~table_name ?attrs ~strategy () =
  let table = R.Database.table t.db table_name in
  let schema = R.Table.schema table in
  let attrs =
    match attrs with
    | None -> Array.init (R.Schema.arity schema) Fun.id
    | Some names ->
      let positions = List.map (R.Schema.position schema) names in
      Array.of_list (List.sort compare positions)
  in
  let proj = project table attrs in
  let order = Ordering.resolve strategy proj in
  let t0 = Fcv_util.Timer.now () in
  let blocks = R.Encode.alloc_blocks t.mgr proj ~order in
  let root = R.Encode.build t.mgr proj ~order ~blocks in
  let build_time = Fcv_util.Timer.now () -. t0 in
  let counts = Hashtbl.create (max 16 (R.Table.cardinality table)) in
  R.Table.iter table (fun row ->
      let sub = Array.map (fun a -> row.(a)) attrs in
      match pack_key blocks sub with
      | Some key ->
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      | None -> ());
  let entry = { table; attrs; order; strategy; blocks; root; counts; build_time } in
  t.entries <- entry :: t.entries;
  t.structure_version <- t.structure_version + 1;
  entry

(** Entries indexed on [table_name]. *)
let entries_for t table_name =
  List.filter (fun e -> R.Table.name e.table = table_name) t.entries

(** The first entry on [table_name] whose attribute set covers
    [needed] (schema positions). *)
let find_covering t ~table_name ~needed =
  let covers e = List.for_all (fun p -> Array.exists (( = ) p) e.attrs) needed in
  List.find_opt covers (entries_for t table_name)

(** Does the index contain this projected row? *)
let entry_mem t entry sub =
  let env = Array.make (M.nvars t.mgr) false in
  Array.iteri (fun i c -> Fd.set_env entry.blocks.(i) c env) sub;
  M.eval t.mgr entry.root env

(** BDD size of an entry. *)
let entry_size t entry = M.node_count t.mgr entry.root

let minterm t entry sub =
  Fd.tuple_minterm t.mgr (List.init (Array.length sub) (fun i -> (entry.blocks.(i), sub.(i))))

exception Needs_rebuild of string

(* Apply one base-table update to a single entry. *)
let update_entry t entry ~insert row =
  let sub = Array.map (fun a -> row.(a)) entry.attrs in
  Array.iteri
    (fun i c ->
      if c >= entry.blocks.(i).Fd.dom_size then
        raise
          (Needs_rebuild
             (Printf.sprintf "value code %d exceeds indexed domain of %s" c
                entry.blocks.(i).Fd.name)))
    sub;
  match pack_key entry.blocks sub with
  | None -> raise (Needs_rebuild "projection too wide for incremental maintenance")
  | Some key ->
    let current = Option.value ~default:0 (Hashtbl.find_opt entry.counts key) in
    if insert then begin
      if current = 0 then entry.root <- O.bor t.mgr entry.root (minterm t entry sub);
      Hashtbl.replace entry.counts key (current + 1)
    end
    else begin
      if current <= 0 then ()
      else if current = 1 then begin
        entry.root <- O.bdiff t.mgr entry.root (minterm t entry sub);
        Hashtbl.remove entry.counts key
      end
      else Hashtbl.replace entry.counts key (current - 1)
    end

(* The (table, attrs, strategy) recipe of an entry — what [add] needs
   to rebuild it from scratch. *)
let entry_spec entry =
  let schema = R.Table.schema entry.table in
  let attr_names =
    Array.to_list entry.attrs |> List.map (fun p -> schema.(p).R.Schema.name)
  in
  (R.Table.name entry.table, attr_names, entry.strategy)

(** Rebuild one entry from the current base table (same attributes,
    same strategy), replacing it in the store.  Used when an update
    falls outside the entry's frozen domain capacity: the new entry's
    blocks are wide enough for the grown dictionaries.  The old
    blocks' levels are abandoned until the next level recycle (rebuilds
    are O(log |dom|) per attribute since block widths double).  The
    old entry is removed only once the replacement is built, so a
    {!Fcv_bdd.Manager.Node_limit} or {!Fcv_bdd.Manager.Level_limit}
    escaping mid-build leaves the store consistent. *)
let rebuild_entry t entry =
  let table_name, attr_names, strategy = entry_spec entry in
  let rebuilt = add t ~table_name ~attrs:attr_names ~strategy () in
  t.entries <- List.filter (fun e -> e != entry) t.entries;
  t.structure_version <- t.structure_version + 1;
  if Fcv_util.Telemetry.enabled () then
    Fcv_util.Telemetry.incr (Fcv_util.Telemetry.counter "index.rebuilds");
  rebuilt

(* Out of level space mid-update: drop the (now stale) entry and queue
   its recipe; {!Lifecycle.maybe_gc} recycles the level space and
   re-adds it before the next validation.  Checks that run before then
   see no covering entry and fall back accordingly. *)
let defer_rebuild t entry =
  t.entries <- List.filter (fun e -> e != entry) t.entries;
  t.deferred <- entry_spec entry :: t.deferred;
  t.structure_version <- t.structure_version + 1;
  if Fcv_util.Telemetry.enabled () then
    Fcv_util.Telemetry.incr (Fcv_util.Telemetry.counter "index.deferred_rebuilds")

let rebuild_or_defer t entry =
  try ignore (rebuild_entry t entry) with M.Level_limit _ -> defer_rebuild t entry

(** Insert a full coded row into the base table and every index on
    it.  An entry whose frozen domain capacity the row exceeds (new
    dictionary codes) is transparently rebuilt in place instead of
    {!Needs_rebuild} escaping to the caller. *)
let insert t ~table_name row =
  let table = R.Database.table t.db table_name in
  R.Table.insert_coded table row;
  List.iter
    (fun e ->
      try update_entry t e ~insert:true row with Needs_rebuild _ -> rebuild_or_defer t e)
    (entries_for t table_name)

(** Drop every entry indexed on [table_name] (their nodes become dead,
    reclaimed by the next {!compact}; their levels are abandoned until
    the next level recycle).  Returns the number of entries dropped. *)
let remove_entries_for t table_name =
  let doomed, kept =
    List.partition (fun e -> R.Table.name e.table = table_name) t.entries
  in
  t.entries <- kept;
  t.deferred <- List.filter (fun (tbl, _, _) -> tbl <> table_name) t.deferred;
  if doomed <> [] then t.structure_version <- t.structure_version + 1;
  List.length doomed

(** Garbage-collect the shared manager: keep exactly the entries'
    current BDDs, dropping the dead intermediates that incremental
    maintenance and past constraint checks left behind.  Returns the
    number of nodes reclaimed. *)
let compact t =
  let before = M.size t.mgr in
  t.peak_nodes <- max t.peak_nodes (M.stats t.mgr).M.peak_nodes;
  let entries = t.entries in
  let roots = M.compact t.mgr (List.map (fun e -> e.root) entries) in
  List.iter2 (fun e root -> e.root <- root) entries roots;
  let reclaimed = before - M.size t.mgr in
  t.gc_runs <- t.gc_runs + 1;
  t.gc_reclaimed <- t.gc_reclaimed + reclaimed;
  if Fcv_util.Telemetry.enabled () then
    Fcv_util.Telemetry.incr (Fcv_util.Telemetry.counter "index.gc_runs");
  reclaimed

(** Delete one occurrence of a full coded row from the base table and
    every index on it; entries that cannot maintain the deletion
    incrementally are rebuilt in place (see {!insert}). *)
let delete t ~table_name row =
  let table = R.Database.table t.db table_name in
  let removed = R.Table.delete_coded table row in
  if removed then
    List.iter
      (fun e ->
        try update_entry t e ~insert:false row with Needs_rebuild _ -> rebuild_or_defer t e)
      (entries_for t table_name);
  removed

(* -- memory accounting ----------------------------------------------------- *)

(** Nodes reachable from the entries' live roots (terminals included)
    — what {!compact} would keep. *)
let live_nodes t =
  if t.entries = [] then 2
  else M.node_count_shared t.mgr (List.map (fun e -> e.root) t.entries)

(** Fraction of the manager's node store not reachable from any live
    root — the §4-style occupancy signal the GC policy thresholds. *)
let dead_ratio t =
  let size = M.size t.mgr in
  if size <= 2 then 0.
  else float_of_int (size - live_nodes t) /. float_of_int size

(** Levels referenced by live structures: entry blocks plus the pooled
    scratch blocks (reused by future checks, so not abandoned). *)
let levels_live t =
  let entry_levels =
    List.fold_left
      (fun acc e -> Array.fold_left (fun acc b -> acc + Fd.width b) acc e.blocks)
      0 t.entries
  in
  Hashtbl.fold
    (fun _ blocks acc -> List.fold_left (fun acc b -> acc + Fd.width b) acc blocks)
    t.scratch_pool entry_levels

(** Levels allocated in the manager but no longer referenced by any
    entry or pooled scratch block — dead variable space from entry
    rebuilds and abandoned allocations.  Only a level recycle (dense
    rebuild into a fresh manager) reclaims it. *)
let levels_abandoned t = max 0 (M.nvars t.mgr - levels_live t)

(** Peak node count across the store's lifetime, surviving level
    recycles (which swap in a fresh manager). *)
let peak_nodes t = max t.peak_nodes (M.stats t.mgr).M.peak_nodes

type lifecycle_stats = {
  nodes : int;
  live : int;
  peak : int;
  dead : float;
  levels_used : int;
  levels_alive : int;
  gc_runs : int;
  gc_reclaimed : int;
  level_recycles : int;
  cache_entries : int;
  deferred_rebuilds : int;
}

let lifecycle_stats t =
  {
    nodes = M.size t.mgr;
    live = live_nodes t;
    peak = peak_nodes t;
    dead = dead_ratio t;
    levels_used = M.nvars t.mgr;
    levels_alive = levels_live t;
    gc_runs = t.gc_runs;
    gc_reclaimed = t.gc_reclaimed;
    level_recycles = t.level_recycles;
    cache_entries = M.cache_entries t.mgr;
    deferred_rebuilds = List.length t.deferred;
  }

(** Refresh the memory-lifecycle gauges (dead ratio is reported as a
    percentage because gauges are integer-valued). *)
let publish_gauges t =
  let module T = Fcv_util.Telemetry in
  if T.enabled () then begin
    T.gauge_set (T.gauge "bdd.live_nodes") (live_nodes t);
    T.gauge_set (T.gauge "bdd.dead_ratio") (int_of_float (dead_ratio t *. 100.));
    T.gauge_set (T.gauge "bdd.levels_used") (M.nvars t.mgr)
  end
