(** The logical index store: one shared BDD manager per database, one
    characteristic-function BDD per indexed table (or projection),
    plus the §5.2 incremental maintenance. *)

type entry = {
  table : Fcv_relation.Table.t;
  attrs : int array;  (** indexed schema positions, ascending *)
  order : int array;  (** permutation of [0, |attrs|) over [attrs] *)
  strategy : Ordering.strategy;
  blocks : Fcv_bdd.Fd.block array;  (** blocks.(i) belongs to attrs.(i) *)
  mutable root : int;
  counts : (int, int) Hashtbl.t;
      (** multiset of projected rows — deletions must know when the
          last witness of a projection disappears *)
  mutable build_time : float;  (** seconds spent building [root] *)
}

type t = {
  db : Fcv_relation.Database.t;
  mgr : Fcv_bdd.Manager.t;
  mutable entries : entry list;
  scratch_pool : (int, Fcv_bdd.Fd.block list) Hashtbl.t;
      (** reusable auxiliary blocks by domain size, so repeated checks
          do not consume the manager's bounded level space *)
}

exception Needs_rebuild of string
(** An update fell outside an index's frozen domain capacity (new
    dictionary codes) or maintenance capability; rebuild the entry. *)

val create : ?max_nodes:int -> Fcv_relation.Database.t -> t
(** [max_nodes] is the shared node budget (0 = unlimited). *)

val mgr : t -> Fcv_bdd.Manager.t
val entries : t -> entry list

val borrow_scratch : t -> dom_size:int -> Fcv_bdd.Fd.block
(** Borrow an auxiliary block (reused from the pool when possible). *)

val release_scratch : t -> Fcv_bdd.Fd.block list -> unit
(** Return borrowed blocks; their BDDs must no longer be consulted. *)

val project : Fcv_relation.Table.t -> int array -> Fcv_relation.Table.t
(** Distinct projection as a fresh (unregistered) table sharing the
    same dictionaries. *)

val add :
  t ->
  table_name:string ->
  ?attrs:string list ->
  strategy:Ordering.strategy ->
  unit ->
  entry
(** Build and register an index on a table (default: all attributes)
    under the ordering chosen by [strategy]. *)

val entries_for : t -> string -> entry list

val find_covering : t -> table_name:string -> needed:int list -> entry option
(** First entry on the table whose attribute set covers [needed]. *)

val entry_mem : t -> entry -> int array -> bool
(** Is this projected row in the index? *)

val entry_size : t -> entry -> int
val minterm : t -> entry -> int array -> int

val update_entry : t -> entry -> insert:bool -> int array -> unit
(** Apply one base-row update to one entry (exposed for benchmarks);
    normally use {!insert}/{!delete}.  @raise Needs_rebuild *)

val rebuild_entry : t -> entry -> entry
(** Rebuild an entry from the current base table (same attributes and
    strategy), replacing it in the store — the recovery for
    {!Needs_rebuild} after the base table / dictionaries changed. *)

val insert : t -> table_name:string -> int array -> unit
(** Insert a full coded row into the base table and every index on
    it.  The row's codes must already be interned in the table's
    dictionaries; an entry whose capacity they exceed is transparently
    rebuilt ({!rebuild_entry}) rather than raising. *)

val delete : t -> table_name:string -> int array -> bool
(** Delete one occurrence of a row from the base table and every
    index; returns whether a row existed.  Rebuilds entries that
    cannot maintain the deletion incrementally. *)

val compact : t -> int
(** Garbage-collect the shared manager down to the entries' live
    BDDs; returns the number of nodes reclaimed.  Call between
    checks, never while holding node ids from an ongoing
    compilation. *)
