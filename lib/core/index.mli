(** The logical index store: one shared BDD manager per database, one
    characteristic-function BDD per indexed table (or projection),
    plus the §5.2 incremental maintenance. *)

type entry = {
  table : Fcv_relation.Table.t;
  attrs : int array;  (** indexed schema positions, ascending *)
  order : int array;  (** permutation of [0, |attrs|) over [attrs] *)
  strategy : Ordering.strategy;
  blocks : Fcv_bdd.Fd.block array;  (** blocks.(i) belongs to attrs.(i) *)
  mutable root : int;
  counts : (int, int) Hashtbl.t;
      (** multiset of projected rows — deletions must know when the
          last witness of a projection disappears *)
  mutable build_time : float;  (** seconds spent building [root] *)
}

type t = {
  db : Fcv_relation.Database.t;
  mutable mgr : Fcv_bdd.Manager.t;
      (** mutable so level recycling ({!Lifecycle.recycle}) can swap in
          a fresh, densely-numbered manager in place *)
  mutable entries : entry list;
  scratch_pool : (int, Fcv_bdd.Fd.block list) Hashtbl.t;
      (** reusable auxiliary blocks by domain size, so repeated checks
          do not consume the manager's bounded level space *)
  mutable deferred : (string * string list * Ordering.strategy) list;
      (** entry rebuilds postponed because the manager ran out of
          levels mid-update; recycled and re-added before the next
          validation *)
  mutable structure_version : int;
      (** bumped on every structural change to the entry set (add,
          remove, rebuild, defer, level recycle) but not on
          content-preserving GC — how {!Replica} decides whether a
          row-level delta can still describe the master *)
  mutable gc_runs : int;
  mutable gc_reclaimed : int;
  mutable level_recycles : int;
  mutable peak_nodes : int;  (** peak carried across level recycles *)
}

exception Needs_rebuild of string
(** An update fell outside an index's frozen domain capacity (new
    dictionary codes) or maintenance capability; rebuild the entry. *)

val create : ?max_nodes:int -> ?max_cache:int -> Fcv_relation.Database.t -> t
(** [max_nodes] is the shared node budget (0 = unlimited);
    [max_cache] the manager's per-op-cache entry cap (default
    {!Fcv_bdd.Manager.default_max_cache}). *)

val mgr : t -> Fcv_bdd.Manager.t
val entries : t -> entry list

val borrow_scratch : t -> dom_size:int -> Fcv_bdd.Fd.block
(** Borrow an auxiliary block (reused from the pool when possible). *)

val release_scratch : t -> Fcv_bdd.Fd.block list -> unit
(** Return borrowed blocks; their BDDs must no longer be consulted. *)

val project : Fcv_relation.Table.t -> int array -> Fcv_relation.Table.t
(** Distinct projection as a fresh (unregistered) table sharing the
    same dictionaries. *)

val add :
  t ->
  table_name:string ->
  ?attrs:string list ->
  strategy:Ordering.strategy ->
  unit ->
  entry
(** Build and register an index on a table (default: all attributes)
    under the ordering chosen by [strategy]. *)

val entries_for : t -> string -> entry list

val find_covering : t -> table_name:string -> needed:int list -> entry option
(** First entry on the table whose attribute set covers [needed]. *)

val entry_mem : t -> entry -> int array -> bool
(** Is this projected row in the index? *)

val entry_size : t -> entry -> int
val minterm : t -> entry -> int array -> int

val update_entry : t -> entry -> insert:bool -> int array -> unit
(** Apply one base-row update to one entry (exposed for benchmarks);
    normally use {!insert}/{!delete}.  @raise Needs_rebuild *)

val rebuild_entry : t -> entry -> entry
(** Rebuild an entry from the current base table (same attributes and
    strategy), replacing it in the store — the recovery for
    {!Needs_rebuild} after the base table / dictionaries changed. *)

val insert : t -> table_name:string -> int array -> unit
(** Insert a full coded row into the base table and every index on
    it.  The row's codes must already be interned in the table's
    dictionaries; an entry whose capacity they exceed is transparently
    rebuilt ({!rebuild_entry}) rather than raising. *)

val delete : t -> table_name:string -> int array -> bool
(** Delete one occurrence of a row from the base table and every
    index; returns whether a row existed.  Rebuilds entries that
    cannot maintain the deletion incrementally.  An entry that cannot
    be rebuilt for lack of level space is deferred (see {!t.deferred})
    rather than raising. *)

val remove_entries_for : t -> string -> int
(** Drop every entry (and deferred rebuild) indexed on a table,
    returning how many entries were dropped.  Their nodes become dead
    — reclaimed by the next {!compact}. *)

val compact : t -> int
(** Garbage-collect the shared manager down to the entries' live
    BDDs; returns the number of nodes reclaimed.  Call between
    checks, never while holding node ids from an ongoing
    compilation. *)

(** {2 Memory accounting} — the inputs to the {!Lifecycle} GC policy. *)

val live_nodes : t -> int
(** Nodes reachable from the entries' live roots (terminals included). *)

val dead_ratio : t -> float
(** Fraction of the manager's nodes unreachable from any live root. *)

val levels_live : t -> int
(** Levels referenced by entry blocks and pooled scratch blocks. *)

val levels_abandoned : t -> int
(** Allocated levels no longer referenced — reclaimable only by a
    level recycle (dense rebuild into a fresh manager). *)

val peak_nodes : t -> int
(** Lifetime peak node count, surviving level recycles. *)

type lifecycle_stats = {
  nodes : int;
  live : int;
  peak : int;
  dead : float;
  levels_used : int;
  levels_alive : int;
  gc_runs : int;
  gc_reclaimed : int;
  level_recycles : int;
  cache_entries : int;
  deferred_rebuilds : int;
}

val lifecycle_stats : t -> lifecycle_stats

val publish_gauges : t -> unit
(** Refresh the [bdd.live_nodes] / [bdd.dead_ratio] (percent) /
    [bdd.levels_used] telemetry gauges; no-op when telemetry is off. *)
