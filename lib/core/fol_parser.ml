(** Concrete syntax for constraints, used by the CLI and examples:

    {v
    forall s . student(s, 'CS', _) ->
      (exists c . course(c, 'Programming') and takes(s, c))
    v}

    Grammar (loosest binding first): [<->], [->] (right-assoc), [or],
    [and], [not], quantifiers [forall x, y . f] / [exists x . f],
    atoms [rel(t, ...)], [t = t], [t in {lit, ...}], parentheses,
    [true]/[false].  Terms are variables (identifiers), string
    literals in single quotes, integers, or the wildcard [_]. *)

open Formula
module Value = Fcv_relation.Value

exception Error of string

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | EQUAL
  | GEQ
  | ARROW
  | DARROW
  | UNDERSCORE
  | KW of string
  | EOF

let keywords =
  [ "forall"; "exists"; "and"; "or"; "not"; "in"; "true"; "false"; "implies"; "holds" ]

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let emit t = out := t :: !out in
  let is_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let is_char c = is_start c || (c >= '0' && c <= '9') || c = '_' in
  let rec go i =
    if i >= n then emit EOF
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | '{' ->
        emit LBRACE;
        go (i + 1)
      | '}' ->
        emit RBRACE;
        go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | '.' ->
        emit DOT;
        go (i + 1)
      | '=' ->
        emit EQUAL;
        go (i + 1)
      | '>' when i + 1 < n && s.[i + 1] = '=' ->
        emit GEQ;
        go (i + 2)
      | '-' when i + 1 < n && s.[i + 1] = '>' ->
        emit ARROW;
        go (i + 2)
      | '<' when i + 2 < n && s.[i + 1] = '-' && s.[i + 2] = '>' ->
        emit DARROW;
        go (i + 3)
      | '_' when i + 1 >= n || not (is_char s.[i + 1]) ->
        emit UNDERSCORE;
        go (i + 1)
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Error "unterminated string literal")
          else if s.[j] = '\'' then j + 1
          else begin
            Buffer.add_char buf s.[j];
            str (j + 1)
          end
        in
        let i' = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go i'
      | c when c >= '0' && c <= '9' ->
        let is_digit c = c >= '0' && c <= '9' in
        let rec num j = if j < n && is_digit s.[j] then num (j + 1) else j in
        let j = num i in
        (* A fraction needs a digit after the dot, so a quantifier's
           [.] after an integer still lexes as DOT. *)
        let j, fractional =
          if j + 1 < n && s.[j] = '.' && is_digit s.[j + 1] then (num (j + 2), true)
          else (j, false)
        in
        let j, fractional =
          if
            j < n
            && (s.[j] = 'e' || s.[j] = 'E')
            && (if j + 1 < n && (s.[j + 1] = '+' || s.[j + 1] = '-') then
                  j + 2 < n && is_digit s.[j + 2]
                else j + 1 < n && is_digit s.[j + 1])
          then
            ( num (if s.[j + 1] = '+' || s.[j + 1] = '-' then j + 2 else j + 1),
              true )
          else (j, fractional)
        in
        let text = String.sub s i (j - i) in
        emit (if fractional then FLOAT (float_of_string text) else INT (int_of_string text));
        go j
      | c when is_start c || c = '_' ->
        let rec ident j = if j < n && is_char s.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub s i (j - i) in
        if List.mem (String.lowercase_ascii word) keywords then
          emit (KW (String.lowercase_ascii word))
        else emit (IDENT word);
        go j
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c))
  in
  go 0;
  List.rev !out

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> EOF

let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let describe = function
  | IDENT s -> "identifier " ^ s
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "'%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | DOT -> "."
  | EQUAL -> "="
  | GEQ -> ">="
  | ARROW -> "->"
  | DARROW -> "<->"
  | UNDERSCORE -> "_"
  | KW k -> k
  | EOF -> "end of input"

let expect st t =
  if peek st = t then advance st
  else raise (Error (Printf.sprintf "expected %s, found %s" (describe t) (describe (peek st))))

let parse_lit st =
  match peek st with
  | STRING s ->
    advance st;
    Value.Str s
  | INT i ->
    advance st;
    Value.Int i
  | t -> raise (Error ("expected literal, found " ^ describe t))

let parse_term st =
  match peek st with
  | IDENT x ->
    advance st;
    Var x
  | UNDERSCORE ->
    advance st;
    Wildcard
  | STRING _ | INT _ -> Const (parse_lit st)
  | t -> raise (Error ("expected term, found " ^ describe t))

let rec parse_formula st = parse_iff st

and parse_iff st =
  let left = parse_imp st in
  if peek st = DARROW then begin
    advance st;
    Iff (left, parse_iff st)
  end
  else left

and parse_imp st =
  let left = parse_or st in
  match peek st with
  | ARROW | KW "implies" ->
    advance st;
    Implies (left, parse_imp st)
  | _ -> left

and parse_or st =
  let left = parse_and st in
  if peek st = KW "or" then begin
    advance st;
    Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_unary st in
  if peek st = KW "and" then begin
    advance st;
    And (left, parse_and st)
  end
  else left

and parse_unary st =
  match peek st with
  | KW "not" ->
    advance st;
    Not (parse_unary st)
  | KW "forall" | KW "exists" ->
    let kind = peek st in
    advance st;
    let rec vars acc =
      match peek st with
      | IDENT x ->
        advance st;
        if peek st = COMMA then begin
          advance st;
          vars (x :: acc)
        end
        else List.rev (x :: acc)
      | t -> raise (Error ("expected variable, found " ^ describe t))
    in
    let xs = vars [] in
    expect st DOT;
    let body = parse_formula st in
    if kind = KW "forall" then Forall (xs, body) else Exists (xs, body)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | LPAREN ->
    advance st;
    let f = parse_formula st in
    expect st RPAREN;
    f
  | KW "true" ->
    advance st;
    True
  | KW "false" ->
    advance st;
    False
  | IDENT name when peek2 st = LPAREN ->
    advance st;
    advance st;
    let rec terms acc =
      let t = parse_term st in
      if peek st = COMMA then begin
        advance st;
        terms (t :: acc)
      end
      else List.rev (t :: acc)
    in
    let ts = if peek st = RPAREN then [] else terms [] in
    expect st RPAREN;
    Atom (name, ts)
  | IDENT _ | UNDERSCORE | STRING _ | INT _ -> (
    let t = parse_term st in
    match peek st with
    | EQUAL ->
      advance st;
      Eq (t, parse_term st)
    | KW "in" ->
      advance st;
      expect st LBRACE;
      let rec lits acc =
        let l = parse_lit st in
        if peek st = COMMA then begin
          advance st;
          lits (l :: acc)
        end
        else List.rev (l :: acc)
      in
      let ls = lits [] in
      expect st RBRACE;
      In (t, ls)
    | tok -> raise (Error ("expected = or in after term, found " ^ describe tok)))
  | t -> raise (Error ("unexpected " ^ describe t))

let finish st v =
  match peek st with
  | EOF -> v
  | t -> raise (Error ("trailing input: " ^ describe t))

(** Parse a constraint from text. *)
let of_string s =
  let st = { toks = tokenize s } in
  finish st (parse_formula st)

(* [holds [on] >= <p> . <formula>] — the optional approximate-constraint
   prefix.  Called with the [holds] keyword already consumed. *)
let parse_threshold st =
  (match peek st with IDENT "on" -> advance st | _ -> ());
  expect st GEQ;
  let p =
    match peek st with
    | FLOAT f ->
      advance st;
      f
    | INT i ->
      advance st;
      float_of_int i
    | t -> raise (Error ("expected threshold after holds >=, found " ^ describe t))
  in
  if not (p > 0. && p <= 1.) then
    raise (Error (Printf.sprintf "threshold %g out of range (0, 1]" p));
  expect st DOT;
  p

(** Parse a constraint spec: an optional [holds >= p .] threshold
    prefix followed by a formula.  Without the prefix the spec is hard
    ([threshold = 1.0]), so every input {!of_string} accepts parses to
    the equivalent hard spec. *)
let spec_of_string s =
  let st = { toks = tokenize s } in
  let threshold =
    if peek st = KW "holds" then begin
      advance st;
      parse_threshold st
    end
    else 1.0
  in
  let formula = parse_formula st in
  finish st { Formula.threshold; formula }
