(** First-order-logic constraints over a relational database (§1, §4).

    A constraint is a closed formula built from relation atoms,
    equality/membership tests, the boolean connectives and typed
    quantifiers ranging over the active domain of each variable.  The
    paper's running example reads, in this AST:

    {[
      Forall (["xs"],
        Implies (Atom ("student", [Var "xs"; Const (Str "CS"); Wildcard]),
                 Exists (["xc"],
                   And (Atom ("course", [Var "xc"; Const (Str "Programming")]),
                        Atom ("takes", [Var "xs"; Var "xc"])))))
    ]} *)

module Value = Fcv_relation.Value

type term = Var of string | Const of Value.t | Wildcard

type t =
  | True
  | False
  | Atom of string * term list  (** relation name, one term per attribute *)
  | Eq of term * term
  | In of term * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string list * t
  | Forall of string list * t

(* -- convenience constructors ------------------------------------------- *)

let v x = Var x
let str s = Const (Value.Str s)
let int i = Const (Value.Int i)
let atom name terms = Atom (name, terms)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let forall xs f = Forall (xs, f)
let exists xs f = Exists (xs, f)

(* -- free variables ------------------------------------------------------ *)

module Sset = Set.Make (String)

let term_vars = function Var x -> Sset.singleton x | Const _ | Wildcard -> Sset.empty

let rec free_vars = function
  | True | False -> Sset.empty
  | Atom (_, terms) ->
    List.fold_left (fun acc t -> Sset.union acc (term_vars t)) Sset.empty terms
  | Eq (a, b) -> Sset.union (term_vars a) (term_vars b)
  | In (a, _) -> term_vars a
  | Not f -> free_vars f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    Sset.union (free_vars a) (free_vars b)
  | Exists (xs, f) | Forall (xs, f) ->
    Sset.diff (free_vars f) (Sset.of_list xs)

let is_closed f = Sset.is_empty (free_vars f)

(* -- capture-avoiding variable renaming ---------------------------------- *)

let rename_term subst = function
  | Var x -> Var (Option.value ~default:x (List.assoc_opt x subst))
  | t -> t

(** Rename free occurrences per [subst : (old * new) list]. *)
let rec rename subst f =
  if subst = [] then f
  else
    match f with
    | True | False -> f
    | Atom (r, terms) -> Atom (r, List.map (rename_term subst) terms)
    | Eq (a, b) -> Eq (rename_term subst a, rename_term subst b)
    | In (a, vs) -> In (rename_term subst a, vs)
    | Not g -> Not (rename subst g)
    | And (a, b) -> And (rename subst a, rename subst b)
    | Or (a, b) -> Or (rename subst a, rename subst b)
    | Implies (a, b) -> Implies (rename subst a, rename subst b)
    | Iff (a, b) -> Iff (rename subst a, rename subst b)
    | Exists (xs, g) -> Exists (xs, rename (List.filter (fun (o, _) -> not (List.mem o xs)) subst) g)
    | Forall (xs, g) -> Forall (xs, rename (List.filter (fun (o, _) -> not (List.mem o xs)) subst) g)

(* -- pretty printing ------------------------------------------------------ *)

let pp_term fmt = function
  | Var x -> Format.pp_print_string fmt x
  | Const (Value.Str s) -> Format.fprintf fmt "'%s'" s
  | Const (Value.Int i) -> Format.pp_print_int fmt i
  | Wildcard -> Format.pp_print_char fmt '_'

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom (r, terms) ->
    Format.fprintf fmt "%s(%a)" r
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_term)
      terms
  | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_term a pp_term b
  | In (a, vs) ->
    Format.fprintf fmt "%a in {%s}" pp_term a
      (String.concat ", " (List.map Value.to_string vs))
  | Not f -> Format.fprintf fmt "not (%a)" pp f
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf fmt "(%a -> %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <-> %a)" pp a pp b
  | Exists (xs, f) -> Format.fprintf fmt "(exists %s. %a)" (String.concat ", " xs) pp f
  | Forall (xs, f) -> Format.fprintf fmt "(forall %s. %a)" (String.concat ", " xs) pp f

let to_string f = Format.asprintf "%a" pp f

(* -- approximate-constraint specs ----------------------------------------- *)

(** A constraint together with its holding threshold: the [formula]
    must hold on at least [threshold] of its bindings (equivalently,
    the violation rate must stay ≤ [1 - threshold]).  [threshold] is
    in [(0, 1]]; [1.0] is the classical hard constraint, and every
    plain formula promotes to a hard spec via {!hard}.  Concrete
    syntax: [holds >= 0.999 . <formula>] (see {!Fol_parser.spec_of_string}). *)
type spec = { threshold : float; formula : t }

let hard formula = { threshold = 1.0; formula }
let is_hard s = s.threshold >= 1.0

(* Shortest decimal that round-trips through [float_of_string] — the
   threshold survives source → WAL/snapshot → reparse bit-for-bit. *)
let threshold_repr p =
  let s12 = Printf.sprintf "%.12g" p in
  if float_of_string s12 = p then s12
  else
    let s15 = Printf.sprintf "%.15g" p in
    if float_of_string s15 = p then s15 else Printf.sprintf "%.17g" p

let spec_to_string s =
  if is_hard s then to_string s.formula
  else Printf.sprintf "holds >= %s . %s" (threshold_repr s.threshold) (to_string s.formula)

(** The leading ∀-block (nested [Forall]s collected) and the body
    under it — the binding space a violation {e rate} is measured
    over. *)
let rec strip_foralls = function
  | Forall (xs, f) ->
    let ys, body = strip_foralls f in
    (xs @ ys, body)
  | f -> ([], f)

(** The outermost hypothesis of a ∀-stripped body: for [H -> B] the
    rate denominator counts the bindings satisfying [H]; any other
    shape counts the whole guarded binding space ([True]). *)
let hypothesis = function Implies (h, _) -> h | _ -> True

(* -- structural helpers --------------------------------------------------- *)

(** Count of atoms, used by size heuristics and tests. *)
let rec atom_count = function
  | True | False | Eq _ | In _ -> 0
  | Atom _ -> 1
  | Not f -> atom_count f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> atom_count a + atom_count b
  | Exists (_, f) | Forall (_, f) -> atom_count f

(** All relation names mentioned. *)
let relations f =
  let rec go acc = function
    | True | False | Eq _ | In _ -> acc
    | Atom (r, _) -> Sset.add r acc
    | Not f -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> go (go acc a) b
    | Exists (_, f) | Forall (_, f) -> go acc f
  in
  Sset.elements (go Sset.empty f)
