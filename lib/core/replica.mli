(** Per-worker replicas of the logical index store, for parallel
    constraint validation.

    {!Fcv_bdd.Manager} is single-threaded by design (hash-consed
    unique table, apply caches — see DESIGN.md §Parallelism), so
    worker domains never share the master's manager.  Instead each
    worker hydrates a private manager + index replica from one
    {!Index_io.save_string} snapshot of the master (the PR-2
    variable-renumbering save path), and caches it in domain-local
    storage under a {e refresh epoch}: replicas are rebuilt only after
    {!invalidate} marks the master changed, so a burst of validations
    between updates hydrates each worker once.

    Protocol: the coordinating (main) domain calls {!invalidate} after
    every master mutation and {!prepare} before fanning tasks out;
    worker tasks call {!get}.  The snapshot string is published to
    workers through the pool's queue lock, so [prepare] must
    happen-before the submits that consume it — which the
    prepare-then-submit call order gives for free. *)

type t

val create : Index.t -> t
(** Bind a replica set to [master].  Replicas share the master's
    database (tables, dictionaries — read-only during validation) but
    own fresh managers inheriting the master's node budget. *)

val master : t -> Index.t

val invalidate : t -> unit
(** The master index changed (update, index build/rebuild): stale
    replicas rebuild on their next {!get}. *)

val prepare : t -> unit
(** Refresh the cached snapshot bytes if the epoch moved.  Main-domain
    only; call before submitting tasks that will {!get}. *)

val get : t -> Index.t
(** The calling domain's replica at the current epoch, hydrating or
    refreshing it when stale.  Any domain; requires a {!prepare} at
    the current epoch to have happened-before. *)

val hydrations : t -> int
(** Total replica (re)builds across all domains — the observable the
    epoch machinery exists to minimise. *)
