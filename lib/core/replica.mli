(** Per-worker replicas of the logical index store, for parallel
    constraint validation.

    {!Fcv_bdd.Manager} is single-threaded by design (hash-consed
    unique table, apply caches — see DESIGN.md §Parallelism), so
    worker domains never share the master's manager.  Instead each
    worker hydrates a private manager + index replica from one
    {!Index_io.save_string} snapshot of the master and caches it in
    domain-local storage under a {e refresh epoch}.

    Hydration is {b incremental} where the mutation history allows:
    the main domain journals row-level ops ({!note_insert} /
    {!note_delete}) against an {!Index.t.structure_version} guard, and
    {!prepare} publishes them as an {!Index_io.save_delta} window over
    the cached base snapshot.  A worker whose replica sits inside the
    window replays only the op suffix it has not seen
    ({!Index_io.apply_delta} — root/count maintenance identical to
    what the master ran); everything else (structural changes, a
    delta outweighing the snapshot, a brand-new worker beyond the
    window, {!invalidate}) falls back to full hydration.
    Content-preserving GC ({!Index.compact}) requires {e no}
    notification at all: replicas never see the master's node ids.

    Protocol: the coordinating (main) domain calls a [note_*] (or
    {!invalidate}) after every master mutation and {!prepare} before
    fanning tasks out; worker tasks call {!get}.  The snapshot/delta
    strings are published to workers through the pool's queue lock,
    so [prepare] must happen-before the submits that consume them —
    which the prepare-then-submit call order gives for free. *)

type t

val create : Index.t -> t
(** Bind a replica set to [master].  Replicas share the master's
    database (tables, dictionaries — read-only during validation) but
    own fresh managers inheriting the master's node budget. *)

val master : t -> Index.t

val invalidate : t -> unit
(** The master changed in a way row deltas cannot express (index
    build/rebuild, unregister, level recycle): stale replicas fully
    rehydrate on their next {!get}. *)

val note_insert : t -> table_name:string -> int array -> unit
(** One coded row was inserted into the master (base table already
    updated).  Journals a delta op when the window is still sound —
    the master's [structure_version] is checked, so an entry rebuild
    hidden inside {!Index.insert} safely degrades to {!invalidate}. *)

val note_delete : t -> table_name:string -> int array -> unit
(** One coded row was removed from the master; delta-journaled under
    the same guard as {!note_insert}. *)

val prepare : t -> unit
(** Refresh what workers hydrate from, if the epoch moved: either
    publish the pending ops as a delta over the cached base snapshot,
    or serialise a fresh full snapshot (structural change, no base
    yet, or the delta outgrew the snapshot).  Main-domain only; call
    before submitting tasks that will {!get}. *)

val get : t -> Index.t
(** The calling domain's replica at the current epoch — reused when
    fresh, delta-replayed when only row ops happened, fully
    rehydrated otherwise.  Any domain; requires a {!prepare} at the
    current epoch to have happened-before. *)

type stats = {
  full : int;  (** whole-snapshot hydrations across all domains *)
  delta : int;  (** delta catch-ups that reused a hydrated replica *)
  delta_ops : int;  (** row ops replayed across all delta catch-ups *)
  snapshot_bytes : int;  (** size of the last full snapshot serialised *)
  delta_bytes : int;  (** size of the last delta published (0 = none) *)
}

val stats : t -> stats
(** Hydration-mode telemetry — the observable the delta machinery
    exists to improve (full hydrations down, cheap catch-ups up). *)

val hydrations : t -> int
(** Total replica refreshes (full + delta) across all domains. *)
