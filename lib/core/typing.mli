(** Static checks on constraints: atom arities, per-variable domain
    consistency, groundedness of quantified variables.  The inferred
    variable → domain map drives block allocation in {!Compile} and
    quantifier ranges in {!Naive_eval}. *)

exception Type_error of string

type env = (string, string) Hashtbl.t
(** variable name → domain name *)

val infer : Fcv_relation.Database.t -> Formula.t -> env
(** @raise Type_error *)

val infer_spec : Fcv_relation.Database.t -> Formula.spec -> env
(** {!infer} on the spec's formula, after validating the threshold
    (must lie in (0, 1] and be finite).
    @raise Type_error *)

val domain_of : env -> string -> string
(** @raise Type_error on untyped variables. *)
