(** The constraint checker: the paper's end-to-end pipeline.

    Given a constraint and a database with logical indices:

    + typecheck ({!Typing});
    + apply the §4.4 rewrite pipeline ({!Rewrite.optimize}): prenex →
      leading-quantifier elimination → ∀ push-down;
    + compile the remaining formula to a BDD over the indices
      ({!Compile}), under the manager's {b node budget};
    + read the answer off the final BDD in O(1): validity or
      satisfiability relative to the free variables' domain guards;
    + if the budget is exceeded ({!Fcv_bdd.Manager.Node_limit}),
      abandon BDD processing and run the SQL violation query
      ({!To_sql}) — or, outside the safe-SQL fragment, the naive
      evaluator ({!Naive_eval}). *)

module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module T = Fcv_util.Telemetry

type method_used = Bdd | Sql | Naive

let method_name = function Bdd -> "BDD" | Sql -> "SQL" | Naive -> "naive"

(** How to check: [Auto] is the paper's thresholding (BDD first, SQL
    on budget trip); [Force_bdd] is the same guarded pipeline kept
    distinct for planner probes and ablations; [Force_sql] goes
    straight to the violation query, paying no abandoned attempt. *)
type strategy = Auto | Force_bdd | Force_sql

let strategy_name = function Auto -> "auto" | Force_bdd -> "bdd" | Force_sql -> "sql"

type outcome = Satisfied | Violated

(** The measured violation rate of a soft (thresholded) check.  The
    counts are exact ({!Fcv_bdd.Nat}); [ratio] is their correctly
    rounded float quotient, for display — the verdict itself never
    goes through float arithmetic. *)
type rate = {
  violations : Fcv_bdd.Nat.t;  (** bindings falsifying the body *)
  total : Fcv_bdd.Nat.t;  (** bindings satisfying the hypothesis *)
  ratio : float;  (** violations / total; [0.] when [total] is zero *)
  threshold : float;
}

type result = {
  outcome : outcome;
  method_used : method_used;
  elapsed_ms : float;
  bdd_overhead_ms : float;
      (** time spent on the abandoned BDD attempt when a fallback ran *)
  fallback_ms : float;
      (** time spent in the fallback engine after a budget trip; [0.]
          when no trip occurred (in particular on the up-front
          [Force_sql] path) *)
  rewritten : Formula.t;  (** the formula whose BDD was (to be) built *)
  check : Rewrite.check;
  rate : rate option;
      (** measured violation rate; [Some] exactly on soft checks
          ({!check_spec} with threshold < 1), [None] on every hard
          check — the classical path is byte-for-byte unchanged *)
}

(** How the final test is phrased.  [Violation] compiles the {e
    negation} of the validity matrix in NNF and tests
    unsatisfiability: negations then sit on the (small, sparse) atom
    BDDs and conjunctions short-circuit, instead of negating large
    dense intermediates — this is also operationally the paper's
    framing ("identify whether the constraint is violated").
    [Direct] compiles the matrix as-is and tests validity. *)
type polarity = Direct | Violation

type pipeline = {
  rewrite : Formula.t -> Rewrite.check * Formula.t;
  use_appquant : bool;
  polarity : polarity;
  use_fd_fast_path : bool;
      (** route FD-shaped constraints to the projection-count method
          (the paper's Fig. 5(b) technique) instead of compiling the
          self-join *)
}

(** The paper's full pipeline. *)
let default_pipeline =
  {
    rewrite = Rewrite.optimize;
    use_appquant = true;
    polarity = Violation;
    use_fd_fast_path = true;
  }

(** Same rewrites, but the direct validity test (for the polarity
    ablation). *)
let direct_pipeline = { default_pipeline with polarity = Direct }

(** Ablation: skip every rewrite (build the BDD of the closed formula
    and test validity) and use unfused quantification. *)
let naive_pipeline =
  {
    rewrite = Rewrite.no_rewrite;
    use_appquant = false;
    polarity = Direct;
    use_fd_fast_path = false;
  }

(* Decide the outcome from the final BDD.  With leading quantifiers
   eliminated, the matrix has free variables; the test is relative to
   their domain guards (invalid bit patterns are out of scope). *)
let read_answer ctx check root free =
  let m = Compile.mgr ctx in
  match check with
  | Rewrite.Check_valid ->
    let guard = Compile.free_guard ctx free in
    if O.is_true (O.bimp m guard root) then Satisfied else Violated
  | Rewrite.Check_satisfiable ->
    let guard = Compile.free_guard ctx free in
    if O.is_satisfiable (O.band m guard root) then Satisfied else Violated

(* Compile-and-decide under the chosen polarity. *)
let decide ctx pipeline check_mode rewritten free =
  match (pipeline.polarity, check_mode) with
  | Violation, Rewrite.Check_valid ->
    (* C holds iff guard ∧ ¬matrix is unsatisfiable *)
    let violation = Rewrite.nnf (Formula.Not rewritten) in
    let root = T.with_span "compile" (fun () -> Compile.compile ctx violation) in
    T.with_span "verdict" (fun () ->
        let m = Compile.mgr ctx in
        let guard = Compile.free_guard ctx free in
        if O.is_false (O.band m guard root) then Satisfied else Violated)
  | Violation, Rewrite.Check_satisfiable | Direct, _ ->
    let root = T.with_span "compile" (fun () -> Compile.compile ctx rewritten) in
    T.with_span "verdict" (fun () -> read_answer ctx check_mode root free)

(* SQL fallback; on Not_safe fall further back to the naive evaluator. *)
let fallback db typing constraint_ =
  match To_sql.violated db typing constraint_ with
  | violated -> ((if violated then Violated else Satisfied), Sql)
  | exception To_sql.Not_safe _ ->
    ((if Naive_eval.holds ~typing db constraint_ then Satisfied else Violated), Naive)

(* Post-check telemetry: per-check outcome event with the kernel-stat
   deltas (apply-cache hit rate, nodes allocated, peak) plus the
   method counters; [before] is the manager snapshot taken on entry. *)
let tel_check_done ~before ~mgr ~method_used ~outcome ~elapsed_ms ~overhead_ms =
  if T.enabled () then begin
    T.incr (T.counter "checker.checks");
    (match method_used with
    | Bdd -> ()
    | Sql -> T.incr (T.counter "checker.fallbacks.sql")
    | Naive -> T.incr (T.counter "checker.fallbacks.naive"));
    let after = M.stats mgr in
    T.observe (T.histogram "checker.elapsed_ms") elapsed_ms;
    T.event "check.done"
      [
        ("method", T.String (method_name method_used));
        ("outcome", T.String (match outcome with Satisfied -> "satisfied" | Violated -> "violated"));
        ("elapsed_ms", T.Float elapsed_ms);
        ("bdd_overhead_ms", T.Float overhead_ms);
        ("cache_hit_rate", T.Float (M.cache_hit_rate ~before after));
        ("nodes_allocated", T.Int (after.M.unique_misses - before.M.unique_misses));
        ("peak_nodes", T.Int after.M.peak_nodes);
        ("budget_trips", T.Int (after.M.budget_trips - before.M.budget_trips));
      ]
  end

(** Check one constraint.  [index] supplies the BDD manager, node
    budget and logical indices; every relation mentioned by the
    constraint must have a covering index (see {!ensure_indices}). *)
let check ?(pipeline = default_pipeline) ?(strategy = Auto) index constraint_ =
  if not (Formula.is_closed constraint_) then
    invalid_arg "Checker.check: constraint must be a closed formula";
  T.with_span "check" @@ fun () ->
  let kstats0 = M.stats (Index.mgr index) in
  let db = index.Index.db in
  let typing = T.with_span "typing" (fun () -> Typing.infer db constraint_) in
  match strategy with
  | Force_sql ->
    (* planned straight to the violation query: no BDD attempt, so
       neither abandoned-attempt overhead nor a "fallback" is paid *)
    let t0 = Fcv_util.Timer.now () in
    let outcome, method_used =
      T.with_span "fallback" (fun () -> fallback db typing constraint_)
    in
    let elapsed_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
    tel_check_done ~before:kstats0 ~mgr:(Index.mgr index) ~method_used ~outcome
      ~elapsed_ms ~overhead_ms:0.;
    {
      outcome;
      method_used;
      elapsed_ms;
      bdd_overhead_ms = 0.;
      fallback_ms = 0.;
      rewritten = constraint_;
      check = Rewrite.Check_valid;
      rate = None;
    }
  | Auto | Force_bdd ->
  let fd_fast_path () =
    if not pipeline.use_fd_fast_path then None
    else
      match Fd_check.recognize_fd db constraint_ with
      | Some (table_name, lhs, rhs) -> (
        let schema = Fcv_relation.Table.schema (Fcv_relation.Database.table db table_name) in
        let needed = List.map (Fcv_relation.Schema.position schema) (rhs :: lhs) in
        match Index.find_covering index ~table_name ~needed with
        | Some _ -> (
          let t0 = Fcv_util.Timer.now () in
          match T.with_span "fd_fast_path" (fun () -> Fd_check.fd_holds index ~table_name ~lhs ~rhs:[ rhs ]) with
          | holds ->
            let outcome = if holds then Satisfied else Violated in
            let elapsed_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
            tel_check_done ~before:kstats0 ~mgr:(Index.mgr index) ~method_used:Bdd
              ~outcome ~elapsed_ms ~overhead_ms:0.;
            Some
              {
                outcome;
                method_used = Bdd;
                elapsed_ms;
                bdd_overhead_ms = 0.;
                fallback_ms = 0.;
                rewritten = constraint_;
                check = Rewrite.Check_valid;
                rate = None;
              }
          (* past the node budget (or out of level space), fall through
             to the generic path, which carries the SQL fallback *)
          | exception (M.Node_limit _ | M.Level_limit _) -> None)
        | None -> None)
      | None -> None
  in
  match fd_fast_path () with
  | Some result -> result
  | None ->
  let t0 = Fcv_util.Timer.now () in
  let check_mode, rewritten = T.with_span "rewrite" (fun () -> pipeline.rewrite constraint_) in
  (* the rewrite renames bound variables apart, so the compile context
     needs a typing of the rewritten formula *)
  let typing_rw = Typing.infer db rewritten in
  let ctx = Compile.make_ctx ~use_appquant:pipeline.use_appquant index typing_rw in
  let free = Formula.Sset.elements (Formula.free_vars rewritten) in
  match
    Fun.protect
      ~finally:(fun () -> Compile.release ctx)
      (fun () -> decide ctx pipeline check_mode rewritten free)
  with
  | outcome ->
    let elapsed_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
    tel_check_done ~before:kstats0 ~mgr:(Index.mgr index) ~method_used:Bdd
      ~outcome ~elapsed_ms ~overhead_ms:0.;
    {
      outcome;
      method_used = Bdd;
      elapsed_ms;
      bdd_overhead_ms = 0.;
      fallback_ms = 0.;
      rewritten;
      check = check_mode;
      rate = None;
    }
  | exception (M.Node_limit _ | M.Level_limit _) ->
    let overhead = (Fcv_util.Timer.now () -. t0) *. 1000. in
    let t1 = Fcv_util.Timer.now () in
    let outcome, method_used =
      T.with_span "fallback" (fun () -> fallback db typing constraint_)
    in
    let elapsed_ms = (Fcv_util.Timer.now () -. t1) *. 1000. in
    if T.enabled () then
      T.event "check.fallback"
        [
          ("method", T.String (method_name method_used));
          ("bdd_overhead_ms", T.Float overhead);
          ("fallback_ms", T.Float elapsed_ms);
        ];
    tel_check_done ~before:kstats0 ~mgr:(Index.mgr index) ~method_used
      ~outcome ~elapsed_ms ~overhead_ms:overhead;
    {
      outcome;
      method_used;
      elapsed_ms;
      bdd_overhead_ms = overhead;
      fallback_ms = elapsed_ms;
      rewritten;
      check = check_mode;
      rate = None;
    }

(* -- approximate (thresholded) checks --------------------------------------- *)

let ratio_of ~violations ~total =
  if Fcv_bdd.Nat.is_zero total then 0.
  else Fcv_bdd.Nat.to_float violations /. Fcv_bdd.Nat.to_float total

(** Exact threshold test: does the satisfied fraction reach
    [threshold]?  [threshold] is read off its float representation as
    the dyadic rational P/2^k (frexp), and the comparison
    [(total − violations)·2^k ≥ P·total] runs entirely in {!Fcv_bdd.Nat}
    arithmetic — no float ever touches the counts, so a near-threshold
    count cannot round across the verdict boundary (the [2^53]
    landmine of the float sat-counts).  A zero [total] holds
    vacuously. *)
let clears ~threshold ~violations ~total =
  let module N = Fcv_bdd.Nat in
  if N.is_zero total then true
  else begin
    (* threshold = mp·2^ep with mp ∈ [0.5, 1); mp·2^53 is an integer *)
    let mp, ep = Float.frexp threshold in
    let p = N.of_int (int_of_float (Float.ldexp mp 53)) in
    let k = 53 - ep in
    let satisfied = N.sub total violations in
    N.compare (N.shift_left satisfied k) (N.mul p total) >= 0
  end

(* The soft-check pipeline: exact violation/support counts (FD
   fast path when the shape matches and an index covers it, the
   general violation-BDD analyzer otherwise), the exact threshold
   comparison, and a naive full-recount fallback when the BDD attempt
   trips the node budget. *)
let check_soft ~pipeline ~strategy index (spec : Formula.spec) =
  let threshold = spec.Formula.threshold in
  let c = spec.Formula.formula in
  if not (Formula.is_closed c) then
    invalid_arg "Checker.check_spec: constraint must be a closed formula";
  T.with_span "check_soft" @@ fun () ->
  let kstats0 = M.stats (Index.mgr index) in
  let db = index.Index.db in
  let typing = T.with_span "typing" (fun () -> Typing.infer_spec db spec) in
  let t0 = Fcv_util.Timer.now () in
  let build ?elapsed_ms ~counts:(violations, total) ~method_used ~overhead ~fallback_ms ()
      =
    let outcome = if clears ~threshold ~violations ~total then Satisfied else Violated in
    let elapsed_ms =
      match elapsed_ms with
      | Some e -> e
      | None -> (Fcv_util.Timer.now () -. t0) *. 1000.
    in
    tel_check_done ~before:kstats0 ~mgr:(Index.mgr index) ~method_used ~outcome
      ~elapsed_ms ~overhead_ms:overhead;
    {
      outcome;
      method_used;
      elapsed_ms;
      bdd_overhead_ms = overhead;
      fallback_ms;
      rewritten = c;
      check = Rewrite.Check_valid;
      rate = Some { violations; total; ratio = ratio_of ~violations ~total; threshold };
    }
  in
  let naive_counts () =
    let v, t = T.with_span "fallback" (fun () -> Naive_eval.soft_counts ~typing db c) in
    (Fcv_bdd.Nat.of_int v, Fcv_bdd.Nat.of_int t)
  in
  match strategy with
  | Force_sql ->
    (* there is no SQL form of the rate query: a soft constraint
       planned to SQL recounts naively, up front *)
    build ~counts:(naive_counts ()) ~method_used:Naive ~overhead:0. ~fallback_ms:0. ()
  | Auto | Force_bdd -> (
    let bdd_counts () =
      let fd =
        if not pipeline.use_fd_fast_path then None
        else
          match Fd_check.recognize_fd db c with
          | Some (table_name, lhs, rhs) ->
            T.with_span "fd_fast_path" (fun () ->
                Fd_check.fd_soft_counts index ~table_name ~lhs ~rhs:[ rhs ])
          | None -> None
      in
      match fd with Some counts -> Some counts | None -> Violations.soft_counts index c
    in
    match bdd_counts () with
    | Some counts -> build ~counts ~method_used:Bdd ~overhead:0. ~fallback_ms:0. ()
    | None ->
      (* no leading ∀-block to witness: 0/1 semantics off the plain
         verdict (rate 1 when violated, 0 when satisfied — the
         outcome is unchanged for any threshold in (0, 1]) *)
      let r = check ~pipeline ~strategy index c in
      let module N = Fcv_bdd.Nat in
      let violations = if r.outcome = Violated then N.one else N.zero in
      {
        r with
        rate =
          Some
            {
              violations;
              total = N.one;
              ratio = (if r.outcome = Violated then 1. else 0.);
              threshold;
            };
      }
    | exception (M.Node_limit _ | M.Level_limit _) ->
      let overhead = (Fcv_util.Timer.now () -. t0) *. 1000. in
      let t1 = Fcv_util.Timer.now () in
      let counts = naive_counts () in
      let fallback_ms = (Fcv_util.Timer.now () -. t1) *. 1000. in
      if T.enabled () then
        T.event "check.fallback"
          [
            ("method", T.String (method_name Naive));
            ("bdd_overhead_ms", T.Float overhead);
            ("fallback_ms", T.Float fallback_ms);
          ];
      build ~elapsed_ms:fallback_ms ~counts ~method_used:Naive ~overhead ~fallback_ms ())

(** Check one constraint spec.  Hard specs ([threshold = 1.0]) take
    exactly the {!check} path — verdict, method choice and planner
    behavior are unchanged — and report no rate.  Soft specs compute
    exact violation/support counts over the violation BDD (or the FD
    projection counts) and compare the rate against the threshold in
    arbitrary precision; [result.rate] carries the measurement. *)
let check_spec ?(pipeline = default_pipeline) ?(strategy = Auto) index
    (spec : Formula.spec) =
  if Formula.is_hard spec then check ~pipeline ~strategy index spec.Formula.formula
  else check_soft ~pipeline ~strategy index spec

(* -- parallel scheduling: cost estimates and task granularity --------------- *)

type granularity = {
  batch_under_ms : float;
  max_batch : int;
  split_over_ms : float;
  max_parts : int;
}

let default_granularity =
  { batch_under_ms = 5.0; max_batch = 8; split_over_ms = 250.0; max_parts = 8 }

(** Estimate the cost of checking [f] against [index], in rough
    milliseconds, from index statistics alone: BDD node counts of the
    entries covering each mentioned relation plus a per-atom term.
    Only the {e relative} order matters (expensive checks are
    scheduled first); callers with run history (the monitor's
    per-constraint telemetry) should prefer measured averages. *)
let cost_estimate index f =
  let nodes =
    List.fold_left
      (fun acc rel ->
        List.fold_left (fun acc e -> acc + Index.entry_size index e) acc
          (Index.entries_for index rel))
      0 (Formula.relations f)
  in
  (0.001 *. float_of_int nodes) +. (0.05 *. float_of_int (Formula.atom_count f)) +. 0.01

(** Split a constraint into independently checkable conjuncts:
    [∀xs.(A ∧ B) ≡ (∀xs.A) ∧ (∀xs.B)].  Every part keeps the {e full}
    quantifier prefix — dropping binders would change vacuous-truth
    semantics over empty active domains — so a [Forall] splits only
    when each conjunct still mentions every prefix variable (which
    also keeps the parts typeable).  Returns [[f]] when nothing
    splits. *)
let rec split_conjuncts f =
  match f with
  | Formula.And (a, b) -> split_conjuncts a @ split_conjuncts b
  | Formula.Forall (xs, body) ->
    let parts = split_conjuncts body in
    if
      List.length parts > 1
      && List.for_all
           (fun p ->
             let free = Formula.free_vars p in
             List.for_all (fun x -> Formula.Sset.mem x free) xs)
           parts
    then List.map (fun p -> Formula.Forall (xs, p)) parts
    else [ f ]
  | _ -> [ f ]

(* Merge the part results of a split constraint back into one result:
   satisfied iff every conjunct is.  [rewritten]/[check] come from the
   first part (there is no single compiled formula for a merged
   verdict); times are summed — the work actually done. *)
let merge_parts = function
  | [] -> invalid_arg "Checker.merge_parts: no parts"
  | first :: _ as rs ->
    {
      outcome =
        (if List.for_all (fun r -> r.outcome = Satisfied) rs then Satisfied else Violated);
      method_used =
        (if List.for_all (fun r -> r.method_used = Bdd) rs then Bdd
         else if List.exists (fun r -> r.method_used = Naive) rs then Naive
         else Sql);
      elapsed_ms = List.fold_left (fun acc r -> acc +. r.elapsed_ms) 0. rs;
      bdd_overhead_ms = List.fold_left (fun acc r -> acc +. r.bdd_overhead_ms) 0. rs;
      fallback_ms = List.fold_left (fun acc r -> acc +. r.fallback_ms) 0. rs;
      rewritten = first.rewritten;
      check = first.check;
      (* only hard constraints go through the conjunct splitter *)
      rate = None;
    }

(** Check a batch against a live pool: every relation each constraint
    mentions must already be indexed in the replica set's master (the
    snapshot is what workers hydrate from, so indices built after
    {!Replica.prepare} would be invisible).  Results come back in
    input order; a failing check fails the whole batch, like the
    sequential [List.map] would.

    Scheduling: each constraint's cost is taken from [costs] (measured
    history, milliseconds) or estimated from index statistics; tasks
    execute expensive-first through the pool's claimed-batch scheduler
    ({!Fcv_util.Pool.run_ordered}).  [granularity] adapts task size:
    constraints cheaper than [batch_under_ms] are chunked ([max_batch]
    at a time) so task bookkeeping stops dominating tiny checks, and a
    constraint over [split_over_ms] whose formula splits into
    independent conjuncts ({!split_conjuncts}, up to [max_parts])
    is checked as parallel subformula tasks and merged — same
    outcome by [∀x.(A∧B) ≡ (∀x.A)∧(∀x.B)]. *)
let check_all_pooled ?pipeline ?(granularity = default_granularity) ?costs ?strategies
    ~pool replica constraints =
  Replica.prepare replica;
  if constraints = [] then []
  else begin
    let fs = Array.of_list constraints in
    let n = Array.length fs in
    let master = Replica.master replica in
    let db = master.Index.db in
    let strats =
      match strategies with
      | Some l when List.length l = n -> Array.of_list l
      | Some _ -> invalid_arg "Checker.check_all_pooled: strategies length mismatch"
      | None -> Array.make n Auto
    in
    let costs =
      let given =
        match costs with
        | Some l when List.length l = n -> Array.of_list l
        | Some _ -> invalid_arg "Checker.check_all_pooled: costs length mismatch"
        | None -> Array.make n None
      in
      Array.mapi
        (fun i f ->
          match given.(i) with Some c -> c | None -> cost_estimate master f)
        fs
    in
    (* split plan: parts.(i) has length > 1 only for huge conjunctive
       constraints whose every part still typechecks *)
    let parts =
      Array.mapi
        (fun i f ->
          if costs.(i) < granularity.split_over_ms then [| f |]
          else
            let ps = split_conjuncts f in
            let k = List.length ps in
            let part_ok p =
              Formula.is_closed p
              && match Typing.infer db p with _ -> true | exception Typing.Type_error _ -> false
            in
            if k > 1 && k <= granularity.max_parts && List.for_all part_ok ps then
              Array.of_list ps
            else [| f |])
        fs
    in
    (* task list: (cost, thunk) where a thunk returns per-(constraint,
       part) results; tiny unsplit constraints are chunked greedily in
       input order *)
    let do_check i f () = check ?pipeline ~strategy:strats.(i) (Replica.get replica) f in
    let tasks = ref [] in
    let chunk = ref [] and chunk_cost = ref 0. in
    let flush_chunk () =
      match !chunk with
      | [] -> ()
      | members ->
        let members = List.rev members in
        tasks :=
          ( !chunk_cost,
            fun () -> List.map (fun (i, f) -> (i, 0, do_check i f ())) members )
          :: !tasks;
        chunk := [];
        chunk_cost := 0.
    in
    Array.iteri
      (fun i f ->
        let k = Array.length parts.(i) in
        if k > 1 then begin
          flush_chunk ();
          Array.iteri
            (fun p part ->
              tasks :=
                (costs.(i) /. float_of_int k, fun () -> [ (i, p, do_check i part ()) ])
                :: !tasks)
            parts.(i)
        end
        else if costs.(i) < granularity.batch_under_ms then begin
          chunk := (i, f) :: !chunk;
          chunk_cost := !chunk_cost +. costs.(i);
          if List.length !chunk >= granularity.max_batch then flush_chunk ()
        end
        else begin
          flush_chunk ();
          tasks := (costs.(i), fun () -> [ (i, 0, do_check i f ()) ]) :: !tasks
        end)
      fs;
    flush_chunk ();
    let tasks = Array.of_list (List.rev !tasks) in
    let thunks = Array.map snd tasks in
    (* expensive-first execution order, index tiebreak for determinism *)
    let order = Array.init (Array.length tasks) Fun.id in
    Array.sort
      (fun a b ->
        match compare (fst tasks.(b)) (fst tasks.(a)) with 0 -> compare a b | c -> c)
      order;
    let outs = Fcv_util.Pool.run_ordered pool ~order thunks in
    let per = Array.make n [] in
    Array.iter (List.iter (fun (i, p, r) -> per.(i) <- (p, r) :: per.(i))) outs;
    List.init n (fun i ->
        match per.(i) with
        | [ (_, r) ] -> r
        | prs ->
          merge_parts
            (List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) prs)))
  end

(** Check a batch of constraints (the paper's setting: many
    user-defined constraints validated together); returns results in
    order.  [jobs > 1] fans the batch out over that many worker
    domains, each checking against a private replica of [index]
    hydrated from one snapshot — worth it for batches whose combined
    check time dwarfs the snapshot + hydration cost; singleton or
    empty batches always run sequentially.  Verdicts are identical to
    the sequential run (same pipeline, same node budget, same
    fallbacks), only wall-clock differs. *)
let check_all ?pipeline ?(jobs = 1) ?strategies index constraints =
  let n = List.length constraints in
  (match strategies with
  | Some l when List.length l <> n ->
    invalid_arg "Checker.check_all: strategies length mismatch"
  | Some _ | None -> ());
  if jobs <= 1 || n <= 1 then begin
    let strats =
      match strategies with Some l -> Array.of_list l | None -> Array.make n Auto
    in
    List.mapi (fun i f -> check ?pipeline ~strategy:strats.(i) index f) constraints
  end
  else begin
    let pool = Fcv_util.Pool.create ~name:"check" ~jobs:(min jobs n) () in
    Fun.protect
      ~finally:(fun () -> Fcv_util.Pool.shutdown pool)
      (fun () ->
        check_all_pooled ?pipeline ?strategies ~pool (Replica.create index) constraints)
  end

(** Make sure every relation mentioned in [constraints] has a
    full-attribute logical index, building missing ones with
    [strategy] (default Prob-Converge, the paper's recommendation). *)
let ensure_indices ?(strategy = Ordering.Prob_converge) index constraints =
  let needed =
    List.concat_map Formula.relations constraints |> List.sort_uniq compare
  in
  List.iter
    (fun rel ->
      if Index.entries_for index rel = [] then
        ignore (Index.add index ~table_name:rel ~strategy ()))
    needed

(** Check using the SQL engine only (the baseline side of every
    BDD-vs-SQL figure). *)
let check_sql db constraint_ =
  let typing = Typing.infer db constraint_ in
  let t0 = Fcv_util.Timer.now () in
  let violated = To_sql.violated db typing constraint_ in
  let elapsed_ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
  ((if violated then Violated else Satisfied), elapsed_ms)
