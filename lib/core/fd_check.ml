(** Functional-dependency checking directly on a logical index — the
    technique behind the paper's Fig. 5(b) ("testing this constraint
    using BDDs involves projection of suitable attributes to construct
    new BDDs and manipulation of the resulting BDDs").

    The FD  lhs → rhs  holds on R iff

      |π_{lhs ∪ rhs}(R)| = |π_{lhs}(R)|

    and both projections are single [exists] passes over the entry's
    BDD followed by O(|BDD|) model counts — no self-join, no renaming.
    The SQL counterpart is the paper's GROUP BY query
    (SELECT lhs FROM R GROUP BY lhs HAVING COUNT(DISTINCT rhs) > 1). *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
module Sat = Fcv_bdd.Sat

(* Model count of [root] over exactly the given blocks (every other
   manager variable must be out of [root]'s support). *)
let count_over m blocks root =
  let levels =
    List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks |> List.sort compare
  in
  Sat.count_over m root ~levels:(Array.of_list levels)

(** Does [lhs → rhs] (attribute names) hold according to the logical
    index?  Picks a covering entry of [table_name].
    @raise Invalid_argument if no entry covers lhs ∪ rhs. *)
let fd_holds index ~table_name ~lhs ~rhs =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let rhs_pos = List.map (R.Schema.position schema) rhs in
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ rhs_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.fd_holds: no covering index"
  in
  let m = Index.mgr index in
  let slot p =
    let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
    go 0
  in
  let block_of p = entry.Index.blocks.(slot p) in
  let lhs_blocks = List.map block_of lhs_pos in
  let rhs_blocks = List.map block_of rhs_pos in
  let other_blocks =
    Array.to_list entry.Index.blocks
    |> List.filteri (fun i _ ->
           let p = entry.Index.attrs.(i) in
           not (List.mem p lhs_pos || List.mem p rhs_pos))
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  (* π_{lhs ∪ rhs} then π_{lhs}: the second is a further projection of
     the first, sharing work *)
  let proj_lr = drop other_blocks entry.Index.root in
  let proj_l = drop rhs_blocks proj_lr in
  count_over m (lhs_blocks @ rhs_blocks) proj_lr = count_over m lhs_blocks proj_l

(** Does the multivalued dependency [lhs →→ mid] hold (with the
    complement side being every other indexed attribute)?  §2 of the
    paper singles out MVDs as the structure good orderings exploit:
    R satisfies lhs →→ mid iff R = π_{lhs∪mid}(R) ⋈ π_{lhs∪rest}(R).
    On BDDs the natural join of the two projections is a single
    conjunction (shared lhs blocks), and the test is canonical-node
    equality with the index root. *)
let mvd_holds index ~table_name ~lhs ~mid =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let mid_pos = List.map (R.Schema.position schema) mid in
  List.iter
    (fun p ->
      if List.mem p lhs_pos then
        invalid_arg "Fd_check.mvd_holds: lhs and mid overlap")
    mid_pos;
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ mid_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.mvd_holds: no covering index"
  in
  let m = Index.mgr index in
  let rest_blocks, mid_blocks =
    let classify i =
      let p = entry.Index.attrs.(i) in
      if List.mem p mid_pos then `Mid
      else if List.mem p lhs_pos then `Lhs
      else `Rest
    in
    let all = Array.to_list (Array.mapi (fun i b -> (classify i, b)) entry.Index.blocks) in
    ( List.filter_map (function `Rest, b -> Some b | _ -> None) all,
      List.filter_map (function `Mid, b -> Some b | _ -> None) all )
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_mid = drop rest_blocks entry.Index.root in
  let proj_rest = drop mid_blocks entry.Index.root in
  O.band m proj_mid proj_rest = entry.Index.root

(** Recognise a functional-dependency-shaped constraint

      ∀ x̄, r1, r2.  R(..., r1, ...) ∧ R(..., r2, ...) → r1 = r2

    where the two atoms agree position-wise (shared variables or
    wildcards) except at exactly one position carrying r1 / r2.
    Returns [(relation, lhs attribute names, rhs attribute name)] so
    the checker can route the constraint to the projection-count
    method instead of compiling the self-join. *)
let recognize_fd db formula =
  let open Formula in
  match formula with
  | Forall
      (xs, Implies (And (Atom (r1, ts1), Atom (r2, ts2)), Eq (Var a, Var b)))
    when r1 = r2 && a <> b && List.length ts1 = List.length ts2 -> (
    match R.Database.table_opt db r1 with
    | None -> None
    | Some table ->
      let schema = R.Table.schema table in
      if List.length ts1 <> R.Schema.arity schema then None
      else begin
        let ok = ref true in
        let lhs = ref [] in
        let rhs = ref None in
        List.iteri
          (fun i (t1, t2) ->
            match (t1, t2) with
            | Wildcard, Wildcard -> ()
            | Var v1, Var v2 when v1 = v2 && v1 <> a && v1 <> b ->
              lhs := (v1, i) :: !lhs
            | Var v1, Var v2
              when ((v1 = a && v2 = b) || (v1 = b && v2 = a)) && !rhs = None ->
              rhs := Some i
            | _ -> ok := false)
          (List.combine ts1 ts2);
        match (!ok, !rhs) with
        | true, Some rhs_pos ->
          let lhs_vars = List.map fst !lhs in
          (* every quantified variable must play a role, and every role
             variable must be quantified *)
          let roles = a :: b :: lhs_vars in
          if
            List.sort compare roles = List.sort compare xs
            && List.length (List.sort_uniq compare lhs_vars) = List.length lhs_vars
          then
            Some
              ( r1,
                List.map (fun (_, i) -> schema.(i).R.Schema.name) (List.rev !lhs),
                schema.(rhs_pos).R.Schema.name )
          else None
        | _ -> None
      end)
  | _ -> None

(** Does the inclusion dependency R[attrs_r] ⊆ S[attrs_s] hold?  On
    logical indices this is projection, rename onto shared blocks and
    an O(1) emptiness test of the difference — the last of the three
    classic dependency classes (FD / MVD / IND) checkable directly on
    the index.  The attribute lists pair up positionally and must draw
    from the same domains. *)
let ind_holds index ~r ~attrs_r ~s ~attrs_s =
  if List.length attrs_r <> List.length attrs_s then
    invalid_arg "Fd_check.ind_holds: attribute lists differ in length";
  let resolve table_name attrs =
    let table = R.Database.table index.Index.db table_name in
    let schema = R.Table.schema table in
    let pos = List.map (R.Schema.position schema) attrs in
    let entry =
      match Index.find_covering index ~table_name ~needed:pos with
      | Some e -> e
      | None -> invalid_arg "Fd_check.ind_holds: no covering index"
    in
    let slot p =
      let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
      go 0
    in
    let keep = List.map (fun p -> entry.Index.blocks.(slot p)) pos in
    let others =
      Array.to_list entry.Index.blocks
      |> List.filteri (fun i _ -> not (List.mem entry.Index.attrs.(i) pos))
    in
    (table, schema, keep, others, entry)
  in
  let table_r, schema_r, keep_r, others_r, entry_r = resolve r attrs_r in
  let _table_s, _schema_s, keep_s, others_s, entry_s = resolve s attrs_s in
  ignore (table_r, schema_r);
  List.iter2
    (fun br bs ->
      if br.Fd.dom_size <> bs.Fd.dom_size then
        invalid_arg "Fd_check.ind_holds: attributes over different domains")
    keep_r keep_s;
  let m = Index.mgr index in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_r = drop others_r entry_r.Index.root in
  let proj_s = drop others_s entry_s.Index.root in
  (* rename S's projection onto R's blocks, then π_R \ π_S must be empty *)
  let pairs =
    List.concat (List.map2 (fun br bs ->
        List.init (Fd.width bs) (fun i -> (bs.Fd.levels.(i), br.Fd.levels.(i))))
        keep_r keep_s)
  in
  let proj_s' = if pairs = [] then proj_s else O.replace m proj_s pairs in
  O.is_false (O.bdiff m proj_r proj_s')

(** The violating lhs values: those determining more than one rhs
    tuple.  Returned as decoded value tuples, one list per lhs
    attribute. *)
let violating_lhs ?(limit = max_int) index ~table_name ~lhs ~rhs =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let rhs_pos = List.map (R.Schema.position schema) rhs in
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ rhs_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.violating_lhs: no covering index"
  in
  let m = Index.mgr index in
  let slot p =
    let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
    go 0
  in
  let block_of p = entry.Index.blocks.(slot p) in
  let lhs_blocks = List.map block_of lhs_pos in
  let rhs_blocks = List.map block_of rhs_pos in
  let other_blocks =
    Array.to_list entry.Index.blocks
    |> List.filteri (fun i _ ->
           let p = entry.Index.attrs.(i) in
           not (List.mem p lhs_pos || List.mem p rhs_pos))
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_lr = drop other_blocks entry.Index.root in
  (* walk the lhs values present and count their rhs co-domain *)
  let proj_l = drop rhs_blocks proj_lr in
  let results = ref [] in
  let count = ref 0 in
  let lhs_levels =
    List.concat_map (fun b -> Array.to_list b.Fd.levels) lhs_blocks |> List.sort compare
  in
  (try
     ignore
       (Sat.fold_cubes m proj_l ~init:() ~f:(fun () cube ->
            Sat.iter_expanded ~levels:(Array.of_list lhs_levels) cube ~f:(fun values ->
                if !count < limit then begin
                  let env = Array.make (M.nvars m) false in
                  List.iteri (fun i l -> env.(l) <- values.(i)) lhs_levels;
                  let codes = List.map (fun b -> Fd.read_env b env) lhs_blocks in
                  (* restrict proj_lr to this lhs value and count rhs *)
                  let restricted =
                    List.fold_left2
                      (fun acc b c ->
                        O.restrict m acc
                          (List.init (Fd.width b) (fun j ->
                               (Fd.level_of_bit b j, Fcv_util.Bits.test c j))))
                      proj_lr lhs_blocks codes
                  in
                  let rhs_count = count_over m rhs_blocks restricted in
                  if rhs_count > 1. then begin
                    let decoded =
                      List.map2
                        (fun p c -> R.Dict.value (R.Table.dict table p) c)
                        lhs_pos codes
                    in
                    results := decoded :: !results;
                    incr count
                  end
                end
                else raise Exit)))
   with Exit -> ());
  List.rev !results
