(** Functional-dependency checking directly on a logical index — the
    technique behind the paper's Fig. 5(b) ("testing this constraint
    using BDDs involves projection of suitable attributes to construct
    new BDDs and manipulation of the resulting BDDs").

    The FD  lhs → rhs  holds on R iff

      |π_{lhs ∪ rhs}(R)| = |π_{lhs}(R)|

    and both projections are single [exists] passes over the entry's
    BDD followed by O(|BDD|) model counts — no self-join, no renaming.
    The SQL counterpart is the paper's GROUP BY query
    (SELECT lhs FROM R GROUP BY lhs HAVING COUNT(DISTINCT rhs) > 1). *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
module Sat = Fcv_bdd.Sat

(* Model count of [root] over exactly the given blocks (every other
   manager variable must be out of [root]'s support). *)
let count_over m blocks root =
  let levels =
    List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks |> List.sort compare
  in
  Sat.count_over m root ~levels:(Array.of_list levels)

(** Does [lhs → rhs] (attribute names) hold according to the logical
    index?  Picks a covering entry of [table_name].
    @raise Invalid_argument if no entry covers lhs ∪ rhs. *)
let fd_holds index ~table_name ~lhs ~rhs =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let rhs_pos = List.map (R.Schema.position schema) rhs in
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ rhs_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.fd_holds: no covering index"
  in
  let m = Index.mgr index in
  let slot p =
    let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
    go 0
  in
  let block_of p = entry.Index.blocks.(slot p) in
  let lhs_blocks = List.map block_of lhs_pos in
  let rhs_blocks = List.map block_of rhs_pos in
  let other_blocks =
    Array.to_list entry.Index.blocks
    |> List.filteri (fun i _ ->
           let p = entry.Index.attrs.(i) in
           not (List.mem p lhs_pos || List.mem p rhs_pos))
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  (* π_{lhs ∪ rhs} then π_{lhs}: the second is a further projection of
     the first, sharing work *)
  let proj_lr = drop other_blocks entry.Index.root in
  let proj_l = drop rhs_blocks proj_lr in
  count_over m (lhs_blocks @ rhs_blocks) proj_lr = count_over m lhs_blocks proj_l

(** Exact [(violating, total)] ordered-pair counts behind a soft FD:
    over the bindings of  ∀ x̄, r1, r2. R(..) ∧ R(..) → r1 = r2  (pairs
    of projected tuples sharing the lhs), [total] is Σ_g n_g² and the
    violating pairs are Σ_g n_g(n_g − 1), where n_g is the rhs
    co-domain size of lhs group g — the same quantities the general
    BDD path and the naive recount produce, computed in arbitrary
    precision.  When the variable order separates the lhs and rhs
    level ranges (either way round — the ordering heuristics float
    small domains up, so an FD's rhs usually sits on top) the sums
    come out of one linear pass over the projection; an interleaved
    order falls back to a restrict-and-count walk per lhs group.
    [None] when no entry covers lhs ∪ rhs (the caller falls back to
    the general path). *)
let fd_soft_counts index ~table_name ~lhs ~rhs =
  let module N = Fcv_bdd.Nat in
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let rhs_pos = List.map (R.Schema.position schema) rhs in
  match Index.find_covering index ~table_name ~needed:(lhs_pos @ rhs_pos) with
  | None -> None
  | Some entry ->
    let m = Index.mgr index in
    let slot p =
      let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
      go 0
    in
    let block_of p = entry.Index.blocks.(slot p) in
    let lhs_blocks = List.map block_of lhs_pos in
    let rhs_blocks = List.map block_of rhs_pos in
    let other_blocks =
      Array.to_list entry.Index.blocks
      |> List.filteri (fun i _ ->
             let p = entry.Index.attrs.(i) in
             not (List.mem p lhs_pos || List.mem p rhs_pos))
    in
    let drop blocks root =
      let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
      if levels = [] then root else O.exists m levels root
    in
    let proj_lr = drop other_blocks entry.Index.root in
    let lhs_levels =
      List.concat_map (fun b -> Array.to_list b.Fd.levels) lhs_blocks
      |> List.sort compare |> Array.of_list
    in
    let rhs_levels =
      List.concat_map (fun b -> Array.to_list b.Fd.levels) rhs_blocks
      |> List.sort compare |> Array.of_list
    in
    let lhs_above_rhs =
      lhs_levels <> [||] && rhs_levels <> [||]
      && lhs_levels.(Array.length lhs_levels - 1) < rhs_levels.(0)
    in
    let rhs_above_lhs =
      lhs_levels <> [||] && rhs_levels <> [||]
      && rhs_levels.(Array.length rhs_levels - 1) < lhs_levels.(0)
    in
    if lhs_above_rhs then
      (* Every lhs level sits above every rhs level in the order, so
         below the last lhs level each sub-BDD of [proj_lr] is exactly
         one group's rhs set: Σ n_g and Σ n_g² accumulate in ONE
         memoised descent — O(|proj_lr|) Nat operations — instead of a
         restrict-and-count walk from the root per group, which is
         quadratic in practice (groups × shared nodes).  A skipped
         (don't-care) lhs level doubles the number of groups reaching
         a child; a skipped rhs level doubles each group's rhs set,
         i.e. ×2 on Σ n_g and ×4 on Σ n_g². *)
      let nvars = M.nvars m in
      let role = Array.make nvars `Out in
      Array.iter (fun l -> role.(l) <- `Lhs) lhs_levels;
      Array.iter (fun l -> role.(l) <- `Rhs) rhs_levels;
      (* cum_*.(l) = levels of that role with index < l *)
      let cum_lhs = Array.make (nvars + 1) 0 and cum_rhs = Array.make (nvars + 1) 0 in
      for l = 0 to nvars - 1 do
        cum_lhs.(l + 1) <- cum_lhs.(l) + (if role.(l) = `Lhs then 1 else 0);
        cum_rhs.(l + 1) <- cum_rhs.(l) + (if role.(l) = `Rhs then 1 else 0)
      done;
      let lhs_between v w = cum_lhs.(w) - cum_lhs.(v + 1) in
      let rhs_between v w = cum_rhs.(w) - cum_rhs.(v + 1) in
      let var_or_end id = if id = M.zero || id = M.one then nvars else M.var m id in
      (* rhs-region count: models of the subtree over the rhs levels
         at and below its variable *)
      let rc_memo : (int, N.t) Hashtbl.t = Hashtbl.create 256 in
      let rec rc id =
        if id = M.zero then N.zero
        else if id = M.one then N.one
        else
          match Hashtbl.find_opt rc_memo id with
          | Some n -> n
          | None ->
            let v = M.var m id in
            let branch child =
              N.shift_left (rc child) (rhs_between v (var_or_end child))
            in
            let n = N.add (branch (M.low m id)) (branch (M.high m id)) in
            Hashtbl.add rc_memo id n;
            n
      in
      (* lhs-region pair: (Σ n_g, Σ n_g²) over the groups of the
         subtree.  [edge v child] adjusts a child's pair for the
         levels skipped strictly between [v] and the child. *)
      let pair_memo : (int, N.t * N.t) Hashtbl.t = Hashtbl.create 256 in
      let rec pair id =
        match Hashtbl.find_opt pair_memo id with
        | Some p -> p
        | None ->
          let v = M.var m id in
          let a1, a2 = edge v (M.low m id) and b1, b2 = edge v (M.high m id) in
          let p = (N.add a1 b1, N.add a2 b2) in
          Hashtbl.add pair_memo id p;
          p
      and edge v child =
        let w = var_or_end child in
        let nl = lhs_between v w and nr = rhs_between v w in
        if child = M.zero then (N.zero, N.zero)
        else if child <> M.one && role.(M.var m child) = `Lhs then
          let s1, s2 = pair child in
          (N.shift_left s1 (nl + nr), N.shift_left s2 (nl + (2 * nr)))
        else
          (* boundary: one group's rhs set starts here *)
          let n = N.shift_left (rc child) nr in
          (N.shift_left n nl, N.shift_left (N.mul n n) nl)
      in
      let agreeing, total = edge (-1) proj_lr in
      Some (N.sub total agreeing, total)
    else if rhs_above_lhs then begin
      (* The common layout: the ordering heuristics float small
         domains to the top, and an FD's rhs is usually the small
         side, so every rhs level sits ABOVE every lhs level.  Here a
         per-group restrict is worst-case quadratic (each of the
         groups re-walks the whole shared top region), but the
         projection factors the other way: below the last rhs level
         each sub-BDD is the {e lhs set} of one rhs-region path.
         Collect those boundary nodes b with multiplicities c_b (the
         number of rhs assignments reaching b, don't-care rhs levels
         doubling), and then

           n_g      = Σ_{b ∋ g} c_b
           Σ_g n_g  and  Σ_g n_g²   off a per-group accumulator.

         Each boundary set is enumerated once, so the work is linear
         in |π_{lhs∪rhs}| — the same asymptotics as a row scan of the
         deduplicated projection. *)
      let nvars = M.nvars m in
      let role = Array.make nvars `Out in
      Array.iter (fun l -> role.(l) <- `Lhs) lhs_levels;
      Array.iter (fun l -> role.(l) <- `Rhs) rhs_levels;
      let cum_rhs = Array.make (nvars + 1) 0 in
      for l = 0 to nvars - 1 do
        cum_rhs.(l + 1) <- cum_rhs.(l) + (if role.(l) = `Rhs then 1 else 0)
      done;
      let var_or_end id = if id = M.zero || id = M.one then nvars else M.var m id in
      let is_boundary id =
        id = M.one || (id <> M.zero && role.(M.var m id) <> `Rhs)
      in
      (* multiplicity propagation through the rhs region, parents
         before children (ascending level order) *)
      let weights : (int, N.t) Hashtbl.t = Hashtbl.create 64 in
      let pending : (int, N.t) Hashtbl.t = Hashtbl.create 64 in
      let bump tbl id c =
        Hashtbl.replace tbl id
          (match Hashtbl.find_opt tbl id with None -> c | Some c0 -> N.add c0 c)
      in
      let seed id c = if is_boundary id then bump weights id c else bump pending id c in
      let top_skip = cum_rhs.(var_or_end proj_lr) in
      if proj_lr <> M.zero then seed proj_lr (N.shift_left N.one top_skip);
      (* reachable rhs-region nodes, ascending level order, so every
         node's multiplicity is complete before it is expanded *)
      let visited = Hashtbl.create 64 in
      let rhs_nodes = ref [] in
      let rec collect id =
        if id <> M.zero && not (is_boundary id) && not (Hashtbl.mem visited id) then begin
          Hashtbl.add visited id ();
          rhs_nodes := id :: !rhs_nodes;
          collect (M.low m id);
          collect (M.high m id)
        end
      in
      collect proj_lr;
      List.iter
        (fun u ->
          let c = Hashtbl.find pending u in
          let v = M.var m u in
          List.iter
            (fun child ->
              if child <> M.zero then
                seed child
                  (N.shift_left c (cum_rhs.(var_or_end child) - cum_rhs.(v + 1))))
            [ M.low m u; M.high m u ])
        (List.sort (fun a b -> compare (M.var m a) (M.var m b)) !rhs_nodes);
      (* n_g accumulator: enumerate each boundary set's groups once,
         adding the set's multiplicity to each member *)
      let acc : (bool list, N.t) Hashtbl.t = Hashtbl.create 512 in
      Hashtbl.iter
        (fun b c ->
          Sat.fold_cubes m b ~init:() ~f:(fun () cube ->
              Sat.iter_expanded ~levels:lhs_levels cube ~f:(fun values ->
                  bump acc (Array.to_list values) c)))
        weights;
      let agreeing = ref N.zero and total = ref N.zero in
      Hashtbl.iter
        (fun _ n ->
          agreeing := N.add !agreeing n;
          total := N.add !total (N.mul n n))
        acc;
      Some (N.sub !total !agreeing, !total)
    end
    else begin
      (* interleaved order: restrict-and-count per lhs group *)
      let proj_l = drop rhs_blocks proj_lr in
      let total = ref N.zero and agreeing = ref N.zero in
      Sat.fold_cubes m proj_l ~init:() ~f:(fun () cube ->
          Sat.iter_expanded ~levels:lhs_levels cube ~f:(fun values ->
              let fix =
                List.mapi (fun i l -> (l, values.(i))) (Array.to_list lhs_levels)
              in
              let n = Sat.count_restrict_exact m proj_lr ~fix ~levels:rhs_levels in
              total := N.add !total (N.mul n n);
              agreeing := N.add !agreeing n));
      Some (N.sub !total !agreeing, !total)
    end

(** Does the multivalued dependency [lhs →→ mid] hold (with the
    complement side being every other indexed attribute)?  §2 of the
    paper singles out MVDs as the structure good orderings exploit:
    R satisfies lhs →→ mid iff R = π_{lhs∪mid}(R) ⋈ π_{lhs∪rest}(R).
    On BDDs the natural join of the two projections is a single
    conjunction (shared lhs blocks), and the test is canonical-node
    equality with the index root. *)
let mvd_holds index ~table_name ~lhs ~mid =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let mid_pos = List.map (R.Schema.position schema) mid in
  List.iter
    (fun p ->
      if List.mem p lhs_pos then
        invalid_arg "Fd_check.mvd_holds: lhs and mid overlap")
    mid_pos;
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ mid_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.mvd_holds: no covering index"
  in
  let m = Index.mgr index in
  let rest_blocks, mid_blocks =
    let classify i =
      let p = entry.Index.attrs.(i) in
      if List.mem p mid_pos then `Mid
      else if List.mem p lhs_pos then `Lhs
      else `Rest
    in
    let all = Array.to_list (Array.mapi (fun i b -> (classify i, b)) entry.Index.blocks) in
    ( List.filter_map (function `Rest, b -> Some b | _ -> None) all,
      List.filter_map (function `Mid, b -> Some b | _ -> None) all )
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_mid = drop rest_blocks entry.Index.root in
  let proj_rest = drop mid_blocks entry.Index.root in
  O.band m proj_mid proj_rest = entry.Index.root

(** Recognise a functional-dependency-shaped constraint

      ∀ x̄, r1, r2.  R(..., r1, ...) ∧ R(..., r2, ...) → r1 = r2

    where the two atoms agree position-wise (shared variables or
    wildcards) except at exactly one position carrying r1 / r2.
    Returns [(relation, lhs attribute names, rhs attribute name)] so
    the checker can route the constraint to the projection-count
    method instead of compiling the self-join. *)
let recognize_fd db formula =
  let open Formula in
  match formula with
  | Forall
      (xs, Implies (And (Atom (r1, ts1), Atom (r2, ts2)), Eq (Var a, Var b)))
    when r1 = r2 && a <> b && List.length ts1 = List.length ts2 -> (
    match R.Database.table_opt db r1 with
    | None -> None
    | Some table ->
      let schema = R.Table.schema table in
      if List.length ts1 <> R.Schema.arity schema then None
      else begin
        let ok = ref true in
        let lhs = ref [] in
        let rhs = ref None in
        List.iteri
          (fun i (t1, t2) ->
            match (t1, t2) with
            | Wildcard, Wildcard -> ()
            | Var v1, Var v2 when v1 = v2 && v1 <> a && v1 <> b ->
              lhs := (v1, i) :: !lhs
            | Var v1, Var v2
              when ((v1 = a && v2 = b) || (v1 = b && v2 = a)) && !rhs = None ->
              rhs := Some i
            | _ -> ok := false)
          (List.combine ts1 ts2);
        match (!ok, !rhs) with
        | true, Some rhs_pos ->
          let lhs_vars = List.map fst !lhs in
          (* every quantified variable must play a role, and every role
             variable must be quantified *)
          let roles = a :: b :: lhs_vars in
          if
            List.sort compare roles = List.sort compare xs
            && List.length (List.sort_uniq compare lhs_vars) = List.length lhs_vars
          then
            Some
              ( r1,
                List.map (fun (_, i) -> schema.(i).R.Schema.name) (List.rev !lhs),
                schema.(rhs_pos).R.Schema.name )
          else None
        | _ -> None
      end)
  | _ -> None

(** Does the inclusion dependency R[attrs_r] ⊆ S[attrs_s] hold?  On
    logical indices this is projection, rename onto shared blocks and
    an O(1) emptiness test of the difference — the last of the three
    classic dependency classes (FD / MVD / IND) checkable directly on
    the index.  The attribute lists pair up positionally and must draw
    from the same domains. *)
let ind_holds index ~r ~attrs_r ~s ~attrs_s =
  if List.length attrs_r <> List.length attrs_s then
    invalid_arg "Fd_check.ind_holds: attribute lists differ in length";
  let resolve table_name attrs =
    let table = R.Database.table index.Index.db table_name in
    let schema = R.Table.schema table in
    let pos = List.map (R.Schema.position schema) attrs in
    let entry =
      match Index.find_covering index ~table_name ~needed:pos with
      | Some e -> e
      | None -> invalid_arg "Fd_check.ind_holds: no covering index"
    in
    let slot p =
      let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
      go 0
    in
    let keep = List.map (fun p -> entry.Index.blocks.(slot p)) pos in
    let others =
      Array.to_list entry.Index.blocks
      |> List.filteri (fun i _ -> not (List.mem entry.Index.attrs.(i) pos))
    in
    (table, schema, keep, others, entry)
  in
  let table_r, schema_r, keep_r, others_r, entry_r = resolve r attrs_r in
  let _table_s, _schema_s, keep_s, others_s, entry_s = resolve s attrs_s in
  ignore (table_r, schema_r);
  List.iter2
    (fun br bs ->
      if br.Fd.dom_size <> bs.Fd.dom_size then
        invalid_arg "Fd_check.ind_holds: attributes over different domains")
    keep_r keep_s;
  let m = Index.mgr index in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_r = drop others_r entry_r.Index.root in
  let proj_s = drop others_s entry_s.Index.root in
  (* rename S's projection onto R's blocks, then π_R \ π_S must be empty *)
  let pairs =
    List.concat (List.map2 (fun br bs ->
        List.init (Fd.width bs) (fun i -> (bs.Fd.levels.(i), br.Fd.levels.(i))))
        keep_r keep_s)
  in
  let proj_s' = if pairs = [] then proj_s else O.replace m proj_s pairs in
  O.is_false (O.bdiff m proj_r proj_s')

(** The violating lhs values: those determining more than one rhs
    tuple.  Returned as decoded value tuples, one list per lhs
    attribute. *)
let violating_lhs ?(limit = max_int) index ~table_name ~lhs ~rhs =
  let table = R.Database.table index.Index.db table_name in
  let schema = R.Table.schema table in
  let lhs_pos = List.map (R.Schema.position schema) lhs in
  let rhs_pos = List.map (R.Schema.position schema) rhs in
  let entry =
    match Index.find_covering index ~table_name ~needed:(lhs_pos @ rhs_pos) with
    | Some e -> e
    | None -> invalid_arg "Fd_check.violating_lhs: no covering index"
  in
  let m = Index.mgr index in
  let slot p =
    let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
    go 0
  in
  let block_of p = entry.Index.blocks.(slot p) in
  let lhs_blocks = List.map block_of lhs_pos in
  let rhs_blocks = List.map block_of rhs_pos in
  let other_blocks =
    Array.to_list entry.Index.blocks
    |> List.filteri (fun i _ ->
           let p = entry.Index.attrs.(i) in
           not (List.mem p lhs_pos || List.mem p rhs_pos))
  in
  let drop blocks root =
    let levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    if levels = [] then root else O.exists m levels root
  in
  let proj_lr = drop other_blocks entry.Index.root in
  (* walk the lhs values present and count their rhs co-domain *)
  let proj_l = drop rhs_blocks proj_lr in
  let results = ref [] in
  let count = ref 0 in
  let lhs_levels =
    List.concat_map (fun b -> Array.to_list b.Fd.levels) lhs_blocks |> List.sort compare
  in
  (try
     ignore
       (Sat.fold_cubes m proj_l ~init:() ~f:(fun () cube ->
            Sat.iter_expanded ~levels:(Array.of_list lhs_levels) cube ~f:(fun values ->
                if !count < limit then begin
                  let env = Array.make (M.nvars m) false in
                  List.iteri (fun i l -> env.(l) <- values.(i)) lhs_levels;
                  let codes = List.map (fun b -> Fd.read_env b env) lhs_blocks in
                  (* restrict proj_lr to this lhs value and count rhs *)
                  let restricted =
                    List.fold_left2
                      (fun acc b c ->
                        O.restrict m acc
                          (List.init (Fd.width b) (fun j ->
                               (Fd.level_of_bit b j, Fcv_util.Bits.test c j))))
                      proj_lr lhs_blocks codes
                  in
                  let rhs_count = count_over m rhs_blocks restricted in
                  if rhs_count > 1. then begin
                    let decoded =
                      List.map2
                        (fun p c -> R.Dict.value (R.Table.dict table p) c)
                        lhs_pos codes
                    in
                    results := decoded :: !results;
                    incr count
                  end
                end
                else raise Exit)))
   with Exit -> ());
  List.rev !results
