(** The memory-lifecycle policy for long-running index stores.

    The paper keeps logical indices {e resident} so dynamic databases
    can be re-validated continuously (§5.2) — which means a daemon
    must reclaim what continuous operation sheds: dead BDD nodes left
    by incremental maintenance and past checks, memo-table entries,
    and variable levels abandoned by entry rebuilds.  This module
    decides {e when}; the mechanisms live below it
    ({!Index.compact}, the bounded caches in {!Fcv_bdd.Manager}, and
    the dense re-load of {!Index_io}).

    Two reclamation tiers:

    - {b GC} ({!Index.compact}): mark-and-rebuild of the node store
      keeping only the entries' live roots; triggered by the dead-node
      ratio or op-cache occupancy.  Node ids are renumbered, so the
      caller must bump {!Replica} epochs afterwards.
    - {b Level recycle} ({!recycle}): rebuild the whole store through
      the {!Index_io} snapshot/hydrate path into a fresh manager with
      dense level assignment, reclaiming abandoned level space.  This
      turns the 511-level packing ceiling from a lifetime fuse into a
      per-epoch budget.  Subsumes a GC (only live roots are
      serialised).

    Neither ever runs mid-check: the only call sites are between
    validations ({!maybe_gc}) and explicit [compact] requests. *)

module M = Fcv_bdd.Manager
module I = Index
module T = Fcv_util.Telemetry

type policy = {
  dead_ratio_hi : float;
      (** GC when the dead-node fraction reaches this (0 disables) *)
  min_nodes : int;  (** never GC a manager smaller than this *)
  cache_hi : int;
      (** GC when total op-cache occupancy reaches this (0 disables) *)
  level_slack : int;
      (** recycle when this many levels are abandoned (0 disables) *)
  level_headroom : int;
      (** recycle when fewer than this many levels remain before the
          packing ceiling *)
}

(* Defaults tuned for the serving path: GC at 50% garbage (amortised
   O(live) per O(live) garbage produced), recycle when a quarter of
   the level space is dead or the ceiling is near. *)
let default_policy =
  {
    dead_ratio_hi = 0.5;
    min_nodes = 1 lsl 12;
    cache_hi = M.default_max_cache / 2;
    level_slack = 128;
    level_headroom = 64;
  }

(** A policy that never fires (for [--no-gc] style opt-outs). *)
let never =
  { dead_ratio_hi = 0.; min_nodes = max_int; cache_hi = 0; level_slack = 0; level_headroom = 0 }

let needs_gc policy index =
  M.size (I.mgr index) >= policy.min_nodes
  && ((policy.dead_ratio_hi > 0. && I.dead_ratio index >= policy.dead_ratio_hi)
     || (policy.cache_hi > 0 && M.cache_entries (I.mgr index) >= policy.cache_hi))

let needs_recycle policy index =
  (policy.level_slack > 0 && I.levels_abandoned index >= policy.level_slack)
  || (policy.level_headroom > 0
     && M.nvars (I.mgr index) >= M.max_level - policy.level_headroom)
  || index.I.deferred <> []

(** Rebuild the whole store into a fresh manager with dense level
    assignment, through the {!Index_io} snapshot/hydrate machinery:
    only the entries' live nodes are serialised and every abandoned
    level disappears.  Budgets ([max_nodes], [max_cache]), declared
    ordering strategies and lifetime accounting are carried over; the
    scratch pool is dropped (its blocks reference the old manager).
    Deferred rebuilds are replayed into the fresh level space.

    Node ids and levels are renumbered: callers must invalidate
    replicas, and must not hold ids across the call.  Returns the
    number of nodes reclaimed (possibly 0). *)
let recycle index =
  let before = M.size (I.mgr index) in
  index.I.peak_nodes <- I.peak_nodes index;
  let strategies = List.map (fun e -> e.I.strategy) index.I.entries in
  let fresh = Index_io.load_string index.I.db (Index_io.save_string index) in
  M.set_max_nodes (I.mgr fresh) (M.max_nodes (I.mgr index));
  M.set_max_cache (I.mgr fresh) (M.max_cache (I.mgr index));
  index.I.mgr <- I.mgr fresh;
  (* the loader pins each entry to its saved concrete order (Fixed);
     restore the declared strategies so future rebuilds re-resolve *)
  index.I.entries <-
    List.map2 (fun e s -> { e with I.strategy = s }) (I.entries fresh) strategies;
  Hashtbl.reset index.I.scratch_pool;
  index.I.level_recycles <- index.I.level_recycles + 1;
  (* levels and node ids were renumbered wholesale: replicas must do a
     full rehydration, never a row-delta catch-up *)
  index.I.structure_version <- index.I.structure_version + 1;
  let reclaimed = max 0 (before - M.size (I.mgr index)) in
  index.I.gc_runs <- index.I.gc_runs + 1;
  index.I.gc_reclaimed <- index.I.gc_reclaimed + reclaimed;
  (* replay rebuilds that were deferred for lack of level space; a
     spec the fresh manager still cannot fit stays queued (its checks
     fall back meanwhile) *)
  let deferred = index.I.deferred in
  index.I.deferred <- [];
  List.iter
    (fun ((table_name, attrs, strategy) as spec) ->
      try ignore (I.add index ~table_name ~attrs ~strategy ())
      with M.Level_limit _ | M.Node_limit _ ->
        index.I.deferred <- spec :: index.I.deferred)
    deferred;
  if T.enabled () then begin
    T.incr (T.counter "index.level_recycles");
    T.incr (T.counter "index.gc_runs")
  end;
  reclaimed

type action = {
  recycled : bool;
  gc_ran : bool;  (** an {!Index.compact} ran (recycles subsume one) *)
  reclaimed : int;  (** nodes reclaimed by whichever tier ran *)
}

let no_action = { recycled = false; gc_ran = false; reclaimed = 0 }

(** Run the policy once, {e between} checks: recycle if level space
    demands it (which also collects garbage), else GC if the dead
    ratio or cache occupancy demand it, else do nothing.  Publishes
    the lifecycle gauges when anything ran.  The caller owns replica
    invalidation — needed iff [action.recycled]; a pure compact
    renumbers only master-private node ids replicas never see. *)
let maybe_gc ?(policy = default_policy) index =
  let action =
    if needs_recycle policy index then
      { recycled = true; gc_ran = true; reclaimed = recycle index }
    else if needs_gc policy index then
      { recycled = false; gc_ran = true; reclaimed = I.compact index }
    else no_action
  in
  if action.gc_ran then I.publish_gauges index;
  action
