(** First-order-logic constraints over a relational database (§1, §4):
    relation atoms, equality/membership tests, boolean connectives and
    typed quantifiers over active domains. *)

module Value = Fcv_relation.Value

type term = Var of string | Const of Value.t | Wildcard

type t =
  | True
  | False
  | Atom of string * term list  (** relation name, one term per attribute *)
  | Eq of term * term
  | In of term * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of string list * t
  | Forall of string list * t

(** {2 Constructors} *)

val v : string -> term
val str : string -> term
val int : int -> term
val atom : string -> term list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val forall : string list -> t -> t
val exists : string list -> t -> t

(** {2 Approximate-constraint specs} *)

type spec = { threshold : float; formula : t }
(** A constraint plus its holding threshold: [formula] must hold on at
    least [threshold] of its bindings, i.e. the violation rate must
    stay ≤ [1 - threshold].  [threshold] ∈ (0, 1]; [1.0] is the
    classical hard constraint.  Concrete syntax
    [holds >= 0.999 . <formula>]; see {!Fol_parser.spec_of_string}. *)

val hard : t -> spec
(** Promote a plain formula to the equivalent hard spec. *)

val is_hard : spec -> bool

val threshold_repr : float -> string
(** Shortest decimal that round-trips through [float_of_string]. *)

val spec_to_string : spec -> string
(** Parseable by {!Fol_parser.spec_of_string}; hard specs print as the
    bare formula, so the representation is stable for classical
    constraints. *)

val strip_foralls : t -> string list * t
(** Leading ∀-block (nested blocks collected) and the body under it. *)

val hypothesis : t -> t
(** Outermost hypothesis of a ∀-stripped body ([H] of [H -> B], [True]
    otherwise) — the denominator of a violation rate counts the
    bindings satisfying it. *)

(** {2 Analysis} *)

module Sset : Set.S with type elt = string

val free_vars : t -> Sset.t
val is_closed : t -> bool

val rename : (string * string) list -> t -> t
(** Rename free occurrences (capture-aware w.r.t. binders). *)

val atom_count : t -> int

val relations : t -> string list
(** Relation names mentioned, sorted. *)

(** {2 Printing} *)

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Parseable by {!Fol_parser.of_string}. *)
