(** Cost-based adaptive strategy planner — EXPLAIN for constraints.

    The paper's thresholding strategy is a one-bit planner: always try
    the BDD pipeline and fall back to SQL when the node budget trips,
    paying the abandoned-attempt cost ([Checker.result.bdd_overhead_ms])
    every time.  This module chooses {e before} paying: per-strategy
    cost estimates from index statistics (entry node counts, block
    widths / domain sizes, sat-counts, table cardinalities) are blended
    with measured per-constraint history (an EWMA of elapsed ms per
    method), and the cheaper side wins.

    Online learning closes the loop ({!observe}): a constraint that
    keeps tripping the budget ([trip_demote] consecutive trips) is
    planned straight to SQL; one whose watched data shrank well below
    what tripped the budget is re-promoted (the trip evidence is
    forgotten and the model re-decides); and a deterministic ε-probe
    re-runs the guarded BDD pipeline every [probe_every]-th execution
    of an SQL-demoted constraint so its BDD-side estimate never goes
    stale.

    Plans are cached per constraint and invalidated by
    {!Index.t.structure_version} bumps, by size drift beyond
    [drift_band], and by decision flips detected during feedback.
    Telemetry counters: [planner.hit], [planner.miss], [planner.probe],
    [planner.replans].

    The module also hosts the Kenig–Suciu-direction implication check
    used for register-time dedup: an FD syntactically entailed by
    already-registered FDs (reflexivity / augmentation / transitivity
    closure) can be skipped while its entailers hold ({!entails}). *)

(** {1 Plans} *)

type choice = Use_bdd | Use_sql

val choice_name : choice -> string
(** ["BDD"] / ["SQL"]. *)

type node = {
  op : string;  (** operator, e.g. ["bdd-pipeline"], ["index-scan"] *)
  detail : string;
  est_ms : float;
  actual_ms : float option;  (** last measured cost, when history has one *)
  chosen : bool;  (** on the branch the plan executes *)
  children : node list;
}
(** One node of the costed plan tree ({!render} prints it
    EXPLAIN-VERBOSE-style). *)

type plan = {
  choice : choice;
  strategy : Checker.strategy;
      (** what to hand {!Checker.check}: [Auto] (budget-guarded BDD)
          for [Use_bdd] and probes, [Force_sql] for [Use_sql] *)
  est_bdd_ms : float;  (** blended estimate of the BDD side *)
  est_sql_ms : float;  (** blended estimate of the SQL side *)
  cost_ms : float;
      (** estimate of the chosen side — the pool-ordering key *)
  reason : string;  (** why this choice, for EXPLAIN output *)
  probe : bool;  (** an ε-probe execution, not a steady-state choice *)
  tree : node;  (** root: the constraint; children: both strategies *)
}

(** {1 The planner} *)

type config = {
  ewma_alpha : float;  (** weight of the newest measurement (default 0.3) *)
  trip_demote : int;
      (** consecutive budget trips before a constraint is planned
          straight to SQL regardless of estimates (default 2) *)
  probe_every : int;
      (** every n-th execution of an SQL-demoted constraint re-probes
          the guarded BDD pipeline (default 16) *)
  drift_band : float;
      (** cached plans survive size drift within a factor of this;
          shrinking below [1/drift_band] also forgets trip evidence —
          the re-promotion rule (default 2.0) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val config : t -> config

val plan : t -> Index.t -> Formula.t -> plan
(** The plan for one constraint: cached when the index structure and
    data size are unchanged, recomputed (and re-cached) otherwise.
    Constraints are keyed by their printed formula, so equal
    constraints share history. *)

val observe : t -> Formula.t -> Checker.result -> unit
(** Feed a measured result back: updates the per-method EWMAs and trip
    counts, and drops the cached plan when the evidence now favours
    the other strategy.  A budget-tripping fallback charges the BDD
    side the {e full} price actually paid (abandoned attempt +
    fallback). *)

val invalidate : t -> unit
(** Drop every cached plan (history survives). *)

type stats = { hits : int; misses : int; probes : int; replans : int }

val stats : t -> stats

val check_all :
  ?pipeline:Checker.pipeline -> ?jobs:int -> t -> Index.t -> Formula.t list ->
  Checker.result list
(** Plan each constraint, run the batch through {!Checker.check_all}
    with the planned strategies, and feed every result back — the
    planned replacement for blind try-BDD-first batch checking. *)

(** {1 Cost model}

    Exposed for the property tests.  Both estimates are monotone in
    their statistics: the BDD side in entry node count and block width
    (domain size), the SQL side in table cardinality. *)

type stats_memo
(** Cache of per-entry BDD statistics (node counts, sat-counts) keyed
    by [(structure_version, root)] — both walk the entry BDD, so the
    planner memoizes them; a real entry change changes the root
    (hash-consing) and retires the stale key. *)

val stats_memo : unit -> stats_memo
(** A fresh, empty cache (the planner carries its own internally). *)

val estimate_bdd_ms : ?memo:stats_memo -> Index.t -> Formula.t -> float
(** Model-only estimate (no history) of the guarded BDD pipeline.
    Bare calls recount the entry statistics every time. *)

val estimate_sql_ms : Index.t -> Formula.t -> float
(** Model-only estimate (no history) of the SQL violation query. *)

(** {1 Rendering} *)

val render : plan -> string
(** Multi-line EXPLAIN-VERBOSE-style text: header (choice + reason),
    then the plan tree with estimated and last-actual cost per node. *)

val plan_json : plan -> Fcv_util.Telemetry.json
(** The same plan as JSON (the [explain] protocol op's payload). *)

(** {1 FD implication} *)

type fd = { table : string; lhs : string list; rhs : string }

val fd_of : Fcv_relation.Database.t -> Formula.t -> fd option
(** The FD shape of a formula, via {!Fd_check.recognize_fd}. *)

val entails : by:(int * fd) list -> fd -> int list option
(** [entails ~by fd] is [Some ids] when [fd] is in the Armstrong
    closure (reflexivity / augmentation / transitivity) of the FDs in
    [by] on the same table — [ids] are the entailing constraints
    actually used ([[]] for a reflexive FD, which holds vacuously).
    [None] when not entailed.  Soundness of skipping: whenever every
    FD in [ids] holds on the current data, [fd] holds too. *)
