(** Violating-tuple enumeration: once a constraint is known to be
    violated (the fast check of the paper), this module performs the
    second, more expensive phase — identifying the witnesses — directly
    on the BDDs: the models of nnf(¬C)'s matrix, restricted to valid
    codes, decoded through the domain dictionaries. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
module Sat = Fcv_bdd.Sat
open Formula

type witness = (string * R.Value.t) list
(** one violating binding: variable name → value *)

(** Enumerate up to [limit] violating bindings of the constraint's
    outermost universally quantified variables (i.e. models of the
    leading existential block of ¬C).  Returns [None] when ¬C has no
    leading existential block to witness (e.g. the constraint is a
    bare existential — then a violation has no finite witness, only
    the fact of emptiness). *)
let enumerate ?(limit = max_int) index constraint_ =
  let db = index.Index.db in
  (* the compiler needs shadow-free binders; names without conflicts
     are preserved so witnesses keep their user-facing names *)
  let constraint_ = Rewrite.rename_apart constraint_ in
  let typing = Typing.infer db constraint_ in
  let v = Rewrite.nnf (Not constraint_) in
  let rec strip = function
    | Exists (xs, f) ->
      let xs', f' = strip f in
      (xs @ xs', f')
    | f -> ([], f)
  in
  let witnesses, matrix = strip v in
  if witnesses = [] then None
  else begin
    let ctx = Compile.make_ctx index typing in
    let m = Compile.mgr ctx in
    let root = Compile.compile ctx matrix in
    (* witnesses that never got a block are vacuous: the matrix doesn't
       depend on them; report only the grounded ones *)
    let blocks =
      List.filter_map
        (fun x ->
          match Hashtbl.find_opt ctx.Compile.vars x with
          | Some b -> Some (x, b)
          | None -> None)
        witnesses
    in
    let guard =
      List.fold_left (fun acc (_, b) -> O.band m acc (Fd.valid m b)) M.one blocks
    in
    let root = O.band m guard root in
    (* project away any non-witness levels (inner quantifications leave
       none, but scratch equality blocks may remain) *)
    let witness_levels =
      List.concat_map (fun (_, b) -> Array.to_list b.Fd.levels) blocks
    in
    let support = M.support m root in
    let extra = List.filter (fun l -> not (List.mem l witness_levels)) support in
    let root = if extra = [] then root else O.exists m extra root in
    let results = ref [] in
    let count = ref 0 in
    (try
       ignore
         (Sat.fold_cubes m root ~init:() ~f:(fun () cube ->
              (* expand don't-cares per witness block *)
              let levels = Array.of_list (List.sort compare witness_levels) in
              Sat.iter_expanded ~levels cube ~f:(fun values ->
                  if !count < limit then begin
                    let env = Array.make (M.nvars m) false in
                    Array.iteri (fun i l -> env.(l) <- values.(i)) levels;
                    let binding =
                      List.map
                        (fun (x, b) ->
                          let code = Fd.read_env b env in
                          let dict = R.Database.domain db (Typing.domain_of typing x) in
                          (x, R.Dict.value dict code))
                        blocks
                    in
                    (* expansion may produce invalid codes on don't-care
                       bits beyond the guard only if the guard was not
                       conjoined; it was, so every expansion is valid *)
                    results := binding :: !results;
                    incr count
                  end
                  else raise Exit)));
       ()
     with Exit -> ());
    Compile.release ctx;
    Some (List.rev !results)
  end

(** Number of violating bindings (exact model count over the witness
    blocks), without enumerating them. *)
let count index constraint_ =
  let db = index.Index.db in
  let constraint_ = Rewrite.rename_apart constraint_ in
  let typing = Typing.infer db constraint_ in
  let v = Rewrite.nnf (Not constraint_) in
  let rec strip = function
    | Exists (xs, f) ->
      let xs', f' = strip f in
      (xs @ xs', f')
    | f -> ([], f)
  in
  let witnesses, matrix = strip v in
  if witnesses = [] then None
  else begin
    let ctx = Compile.make_ctx index typing in
    let m = Compile.mgr ctx in
    let root = Compile.compile ctx matrix in
    let blocks =
      List.filter_map (fun x -> Hashtbl.find_opt ctx.Compile.vars x) witnesses
    in
    let guard = List.fold_left (fun acc b -> O.band m acc (Fd.valid m b)) M.one blocks in
    let root = O.band m guard root in
    let support = M.support m root in
    let witness_levels = List.concat_map (fun b -> Array.to_list b.Fd.levels) blocks in
    let extra = List.filter (fun l -> not (List.mem l witness_levels)) support in
    let root = if extra = [] then root else O.exists m extra root in
    (* Sat.count ranges over every manager variable; divide the excess
       don't-care factor out *)
    let total_vars = M.nvars m in
    let free_vars = List.length witness_levels in
    let c = Sat.count m root /. Float.pow 2. (float_of_int (total_vars - free_vars)) in
    Compile.release ctx;
    Some c
  end
