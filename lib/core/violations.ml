(** Violating-tuple enumeration and attribution: once a constraint is
    known to be violated (the fast check of the paper), this module
    performs the second, more expensive phase — identifying the
    witnesses — directly on the BDDs: the models of nnf(¬C)'s matrix,
    restricted to valid codes, decoded through the domain
    dictionaries.  On top of the witnesses it attributes violations to
    base tuples (which rows of which tables a witness touches) and
    scores {e blame} — how many remaining witnesses a tuple's deletion
    would kill — via restrict-and-count on the violation BDD, the
    quantities the repair planner optimises over. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
module Sat = Fcv_bdd.Sat
open Formula

type witness = (string * R.Value.t) list
(** one violating binding: variable name → value *)

(* Witnesses share their variable order (the binder order), so
   comparing the value columns orders bindings deterministically. *)
let compare_witness =
  List.compare (fun (x1, v1) (x2, v2) ->
      match compare (x1 : string) x2 with 0 -> R.Value.compare v1 v2 | c -> c)

type analyzer = {
  ctx : Compile.ctx;
  index : Index.t;
  typing : Typing.env;
  blocks : (string * Fd.block) list;  (** grounded witness vars, binder order *)
  levels : int array;  (** their levels, sorted *)
  root : int;  (** guarded violation BDD over exactly [levels] *)
  matrix : Formula.t;  (** nnf(¬C) under the leading existential block *)
}

(** Compile the violation BDD of [constraint_] once and keep it live
    for witness listing, counting, attribution and blame.  [None] when
    ¬C has no leading existential block to witness (e.g. the
    constraint is a bare existential — then a violation has no finite
    witness, only the fact of emptiness).  Call {!release} when
    done. *)
let analyze index constraint_ =
  let db = index.Index.db in
  (* the compiler needs shadow-free binders; names without conflicts
     are preserved so witnesses keep their user-facing names *)
  let constraint_ = Rewrite.rename_apart constraint_ in
  let typing = Typing.infer db constraint_ in
  let v = Rewrite.nnf (Not constraint_) in
  let rec strip = function
    | Exists (xs, f) ->
      let xs', f' = strip f in
      (xs @ xs', f')
    | f -> ([], f)
  in
  let witnesses, matrix = strip v in
  if witnesses = [] then None
  else begin
    let ctx = Compile.make_ctx index typing in
    let m = Compile.mgr ctx in
    let root = Compile.compile ctx matrix in
    (* witnesses that never got a block are vacuous: the matrix doesn't
       depend on them; report only the grounded ones *)
    let blocks =
      List.filter_map
        (fun x ->
          match Hashtbl.find_opt ctx.Compile.vars x with
          | Some b -> Some (x, b)
          | None -> None)
        witnesses
    in
    let guard =
      List.fold_left (fun acc (_, b) -> O.band m acc (Fd.valid m b)) M.one blocks
    in
    let root = O.band m guard root in
    (* project away any non-witness levels (inner quantifications leave
       none, but scratch equality blocks may remain) *)
    let witness_levels =
      List.concat_map (fun (_, b) -> Array.to_list b.Fd.levels) blocks
    in
    let support = M.support m root in
    let extra = List.filter (fun l -> not (List.mem l witness_levels)) support in
    let root = if extra = [] then root else O.exists m extra root in
    Some
      {
        ctx;
        index;
        typing;
        blocks;
        levels = Array.of_list (List.sort compare witness_levels);
        root;
        matrix;
      }
  end

let release a = Compile.release a.ctx

(** Exact number of violating bindings, straight off the BDD. *)
let witness_count a = Sat.count_over (Compile.mgr a.ctx) a.root ~levels:a.levels

(** {!witness_count} in arbitrary-precision arithmetic — the numerator
    of a threshold verdict, immune to float rounding above [2^53]. *)
let witness_count_exact a =
  Sat.count_over_exact (Compile.mgr a.ctx) a.root ~levels:a.levels

(* The denominator of a violation rate: bindings of the witness space
   satisfying the constraint's outermost hypothesis ([True] — the
   whole guarded space — when the ∀-stripped body is not an
   implication).  Compiled in the analyzer's own context so variable
   blocks are shared with the violation BDD; scratch levels are
   projected away exactly as {!analyze} does. *)
let support_count_exact a ~renamed =
  let m = Compile.mgr a.ctx in
  let _, body = Formula.strip_foralls renamed in
  let h = Formula.hypothesis body in
  let root = Compile.compile a.ctx h in
  let guard =
    List.fold_left (fun acc (_, b) -> O.band m acc (Fd.valid m b)) M.one a.blocks
  in
  let root = O.band m guard root in
  let witness_levels = Array.to_list a.levels in
  let support = M.support m root in
  let extra = List.filter (fun l -> not (List.mem l witness_levels)) support in
  let root = if extra = [] then root else O.exists m extra root in
  Sat.count_over_exact m root ~levels:a.levels

(** Exact [(violations, total)] binding counts for a threshold
    verdict: models of ¬C's matrix over the witness space, and models
    of the outermost hypothesis over the same space.  [violations ≤
    total] always (the matrix entails the hypothesis).  [None] when ¬C
    has no leading existential block to witness — the caller falls
    back to 0/1 semantics on the plain verdict. *)
let soft_counts index constraint_ =
  (* [analyze] renames apart internally; renaming here again is
     deterministic, so the hypothesis's names line up with the
     analyzer's blocks *)
  let renamed = Rewrite.rename_apart constraint_ in
  match analyze index constraint_ with
  | None -> None
  | Some a ->
    Fun.protect
      ~finally:(fun () -> release a)
      (fun () ->
        let violations = witness_count_exact a in
        let total = support_count_exact a ~renamed in
        Some (violations, total))

(* Decode every witness, then sort — enumeration must be
   deterministic (stable across manager states, index build orders and
   recoveries), so cube order never leaks into the result. *)
let decode_all a =
  let m = Compile.mgr a.ctx in
  let db = a.index.Index.db in
  let results = ref [] in
  Sat.fold_cubes m a.root ~init:() ~f:(fun () cube ->
      Sat.iter_expanded ~levels:a.levels cube ~f:(fun values ->
          let env = Array.make (M.nvars m) false in
          Array.iteri (fun i l -> env.(l) <- values.(i)) a.levels;
          let binding =
            List.map
              (fun (x, b) ->
                let code = Fd.read_env b env in
                let dict = R.Database.domain db (Typing.domain_of a.typing x) in
                (x, R.Dict.value dict code))
              a.blocks
          in
          (* the validity guard was conjoined, so every expansion
             decodes *)
          results := binding :: !results));
  List.sort compare_witness !results

(** Up to [limit] violating bindings, in witness order (sorted by
    decoded value). *)
let witness_list ?(limit = max_int) a =
  List.filteri (fun i _ -> i < limit) (decode_all a)

(* The matrix's positive atom occurrences outside inner quantifiers:
   the atoms whose base tuples keep a witness alive, i.e. the only
   rows whose deletion can kill it.  Atoms under a re-introduced
   binder reference projected-away variables and atoms under Not (or
   mixed-polarity Iff) would need insertions, not deletions — both are
   excluded. *)
let positive_atoms matrix =
  let rec go acc pos f =
    match f with
    | Atom (r, ts) -> if pos then (r, ts) :: acc else acc
    | Not g -> go acc (not pos) g
    | And (p, q) | Or (p, q) -> go (go acc pos p) pos q
    | Implies (p, q) -> go (go acc (not pos) p) pos q
    | Iff _ | Exists _ | Forall _ | Eq _ | In _ | True | False -> acc
  in
  List.rev (go [] true matrix)

(* Ground [terms] against witness [w] into a per-position pattern:
   [Some code] pins the column, [None] leaves it free.  [None] overall
   when a value has no code in the column's dictionary (the atom
   matches no row at all). *)
let ground_pattern table w terms =
  let ok = ref true in
  let pattern =
    List.mapi
      (fun j t ->
        let coded v =
          match R.Dict.code (R.Table.dict table j) v with
          | Some c -> Some c
          | None ->
            ok := false;
            None
        in
        match t with
        | Var x -> ( match List.assoc_opt x w with Some v -> coded v | None -> None)
        | Const v -> coded v
        | Wildcard -> None)
      terms
  in
  if !ok then Some (Array.of_list pattern) else None

let row_matches pattern row =
  let matches = ref true in
  Array.iteri
    (fun j p -> match p with Some c when c <> row.(j) -> matches := false | _ -> ())
    pattern;
  !matches

(** The distinct base tuples participating in (up to [limit] of) the
    witnesses: for each witness and each positive top-region atom, the
    rows matching the atom's grounding — exactly the deletion
    candidates of the repair planner.  Ordered by (table, row). *)
let participants ?limit a =
  let db = a.index.Index.db in
  let atoms = positive_atoms a.matrix in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun w ->
      List.iter
        (fun (rel, terms) ->
          match R.Database.table_opt db rel with
          | None -> ()
          | Some table -> (
            match ground_pattern table w terms with
            | None -> ()
            | Some pattern ->
              R.Table.iter table (fun row ->
                  if row_matches pattern row then
                    let key = (rel, Array.to_list row) in
                    if not (Hashtbl.mem seen key) then Hashtbl.add seen key ())))
        atoms)
    (witness_list ?limit a);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  |> List.map (fun (rel, row) -> (rel, Array.of_list row))

(* The level fixes binding one atom occurrence to one coded row, or
   [None] when the atom cannot ground to it (a constant disagreeing
   with the row). *)
let atom_fix a table row terms =
  let tbl = R.Database.table a.index.Index.db table in
  let exception Inapplicable in
  try
    Some
      (List.concat
         (List.mapi
            (fun j t ->
              match t with
              | Var x -> (
                match Hashtbl.find_opt a.ctx.Compile.vars x with
                | Some b ->
                  List.init (Fd.width b) (fun k ->
                      (Fd.level_of_bit b k, Fcv_util.Bits.test row.(j) k))
                | None -> [])
              | Const v -> (
                match R.Dict.code (R.Table.dict tbl j) v with
                | Some c when c = row.(j) -> []
                | _ -> raise Inapplicable)
              | Wildcard -> [])
            terms))
  with Inapplicable -> None

(* Merge fix lists; [None] on a conflicting level (the atoms cannot
   ground to the tuple simultaneously — an empty intersection). *)
let merge_fixes fixes =
  let h = Hashtbl.create 16 in
  let exception Conflict in
  try
    List.iter
      (List.iter (fun (l, b) ->
           match Hashtbl.find_opt h l with
           | Some b' when b' <> b -> raise Conflict
           | Some _ -> ()
           | None -> Hashtbl.add h l b))
      fixes;
    Some (Hashtbl.fold (fun l b acc -> (l, b) :: acc) h [])
  with Conflict -> None

(* Model count, over the witness space, of the union of the fix
   lists: inclusion–exclusion over restrict-and-count walks
   ({!Fcv_bdd.Sat.count_restrict}), no BDD allocation. *)
let union_count a fixes =
  let m = Compile.mgr a.ctx in
  let n = List.length fixes in
  let total = ref 0. in
  for mask = 1 to (1 lsl n) - 1 do
    let subset = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) fixes in
    match merge_fixes subset with
    | None -> ()
    | Some fix ->
      let fixed = List.map fst fix in
      let free =
        Array.of_list
          (List.filter (fun l -> not (List.mem l fixed)) (Array.to_list a.levels))
      in
      let sign =
        if List.length subset mod 2 = 1 then 1. else -1.
      in
      total := !total +. (sign *. Sat.count_restrict m a.root ~fix ~levels:free)
  done;
  !total

(** How many current witnesses deleting [(table, row)] would kill: the
    union over the matrix's positive [table]-atoms of "this atom
    grounds to the row".  An upper bound when other rows share the
    row's projection onto an atom's constrained columns — the witness
    survives on the other support. *)
let blame a ~table ~row =
  union_count a
    (List.filter_map
       (fun (rel, terms) -> if rel = table then atom_fix a table row terms else None)
       (positive_atoms a.matrix))

(* -- grounded-atom patterns ------------------------------------------------- *)

type pattern = {
  p_table : string;
  p_pattern : int option array;
  p_rows : int array list;
  p_kills : float;
}

(* The level fixes binding one atom occurrence to one grounded
   pattern, or [None] when the occurrence cannot produce it (shape or
   constant mismatch). *)
let occurrence_fix a tbl pattern terms =
  let exception Inapplicable in
  try
    Some
      (List.concat
         (List.mapi
            (fun j t ->
              match (t, pattern.(j)) with
              | Var x, Some c -> (
                match Hashtbl.find_opt a.ctx.Compile.vars x with
                | Some b ->
                  List.init (Fd.width b) (fun k ->
                      (Fd.level_of_bit b k, Fcv_util.Bits.test c k))
                | None -> raise Inapplicable)
              | Var x, None ->
                if Hashtbl.mem a.ctx.Compile.vars x then raise Inapplicable else []
              | Const v, Some c -> (
                match R.Dict.code (R.Table.dict tbl j) v with
                | Some c' when c' = c -> []
                | _ -> raise Inapplicable)
              | (Const _, None | Wildcard, Some _) -> raise Inapplicable
              | Wildcard, None -> [])
            terms))
  with Inapplicable -> None

(** The distinct grounded positive-atom patterns of (up to [limit] of)
    the witnesses, each with its current supporting rows and its
    {e exact} kill count — the witnesses whose matching atoms all lose
    their support when every [p_rows] row is deleted.  Unlike
    {!blame}, the count is not an upper bound: the pattern's whole
    support goes at once, so no surviving duplicate can keep a counted
    witness alive (for conjunctively-supported witnesses).  Ordered by
    (table, pattern).  The greedy repair planner's candidates. *)
let patterns ?limit a =
  let db = a.index.Index.db in
  let atoms = positive_atoms a.matrix in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun w ->
      List.iter
        (fun (rel, terms) ->
          match R.Database.table_opt db rel with
          | None -> ()
          | Some table -> (
            match ground_pattern table w terms with
            | None -> ()
            | Some pattern ->
              let key = (rel, Array.to_list pattern) in
              if not (Hashtbl.mem seen key) then Hashtbl.add seen key ()))
        atoms)
    (witness_list ?limit a);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  |> List.map (fun (rel, pat) ->
         let pattern = Array.of_list pat in
         let table = R.Database.table db rel in
         let rows = ref [] in
         R.Table.iter table (fun row ->
             if row_matches pattern row then rows := Array.copy row :: !rows);
         let kills =
           union_count a
             (List.filter_map
                (fun (r, terms) ->
                  if r = rel then occurrence_fix a table pattern terms else None)
                atoms)
         in
         {
           p_table = rel;
           p_pattern = pattern;
           p_rows = List.sort compare !rows;
           p_kills = kills;
         })

(** Enumerate up to [limit] violating bindings of the constraint's
    outermost universally quantified variables (i.e. models of the
    leading existential block of ¬C), sorted by decoded value.
    Returns [None] when ¬C has no leading existential block to
    witness. *)
let enumerate ?limit index constraint_ =
  match analyze index constraint_ with
  | None -> None
  | Some a ->
    let result = witness_list ?limit a in
    release a;
    Some result

(** Number of violating bindings (exact model count over the witness
    blocks), without enumerating them. *)
let count index constraint_ =
  match analyze index constraint_ with
  | None -> None
  | Some a ->
    let c = witness_count a in
    release a;
    Some c
