(** Compilation of a (rewritten) constraint into BDD operations over
    the logical indices.

    Every logical variable is assigned a {e home block}: the attribute
    block of its first atom occurrence when that block is still free,
    otherwise a fresh scratch block.  Later occurrences are {b renamed}
    onto the home block — the §4.2 equi-join rewrite; the naive
    equality-conjunction alternative is exposed separately as
    {!join_naive} for the Fig. 6(a) comparison.

    Quantifiers range over active domains, so ∃ compiles to the fused
    [appex(∧, valid, φ)] and ∀ to [appall(⇒, valid, φ)]; when the body
    is a disjunction (resp. conjunction), the §4.3-optimised forms
    using [appex]/[appall] across the connective are used.

    The compiled BDD agrees with the formula on all {e valid}
    assignments of its free variables; callers must test validity or
    satisfiability relative to the conjunction of the free variables'
    domain guards (see {!free_guard}). *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module O = Fcv_bdd.Ops
module Fd = Fcv_bdd.Fd
open Formula

exception Unsupported of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  index : Index.t;
  typing : Typing.env;
  use_appquant : bool;  (** §4.3 fused operators; off for ablation *)
  vars : (string, Fd.block) Hashtbl.t;  (** variable → home block *)
  claimed : (int, unit) Hashtbl.t;  (** first level of each claimed block *)
  mutable borrowed : Fd.block list;  (** scratch blocks to return on release *)
}

let make_ctx ?(use_appquant = true) index typing =
  {
    index;
    typing;
    use_appquant;
    vars = Hashtbl.create 16;
    claimed = Hashtbl.create 16;
    borrowed = [];
  }

(** Return the context's scratch blocks to the index's pool.  Call
    once the final BDD has been read; results referencing scratch
    levels must not be consulted afterwards. *)
let release ctx =
  Index.release_scratch ctx.index ctx.borrowed;
  ctx.borrowed <- []

let mgr ctx = Index.mgr ctx.index

let dict_of ctx x = R.Database.domain ctx.index.Index.db (Typing.domain_of ctx.typing x)

let claim ctx block = Hashtbl.replace ctx.claimed block.Fd.levels.(0) ()

let is_claimed ctx block = Hashtbl.mem ctx.claimed block.Fd.levels.(0)

let fresh_block ctx x =
  let dict = dict_of ctx x in
  let b = Index.borrow_scratch ctx.index ~dom_size:(R.Dict.size dict) in
  ctx.borrowed <- b :: ctx.borrowed;
  claim ctx b;
  b

(* An entry's attribute block can serve as [x]'s home only while its
   frozen capacity still covers [x]'s dictionary: after domain growth
   the block is too narrow for codes interned since it was built, and
   its [valid] guard would silently exclude them from quantifiers.
   (The entry itself stays exact — rows with out-of-capacity codes
   force an index rebuild — but other entries over the same domain may
   already be wider.) *)
let covers_domain ctx x block =
  block.Fd.dom_size >= R.Dict.size (dict_of ctx x)

(** The home block of [x], allocating a scratch block if [x] has not
    occurred in any atom yet. *)
let home ctx x =
  match Hashtbl.find_opt ctx.vars x with
  | Some b -> b
  | None ->
    let b = fresh_block ctx x in
    Hashtbl.replace ctx.vars x b;
    b

(* Restrict a block of [f] to a constant code (bits disappear). *)
let restrict_code m f block code =
  O.restrict m f
    (List.init (Fd.width block) (fun j ->
         (Fd.level_of_bit block j, Fcv_util.Bits.test code j)))

(* -- atoms ---------------------------------------------------------------- *)

let compile_atom ctx rel terms =
  let m = mgr ctx in
  let table =
    match R.Database.table_opt ctx.index.Index.db rel with
    | Some t -> t
    | None -> fail "unknown relation %s" rel
  in
  let terms = Array.of_list terms in
  let needed = ref [] in
  Array.iteri (fun i t -> if t <> Wildcard then needed := i :: !needed) terms;
  let entry =
    match Index.find_covering ctx.index ~table_name:rel ~needed:!needed with
    | Some e -> e
    | None -> fail "no logical index on %s covers the atom's attributes" rel
  in
  (* map schema position -> index within entry.attrs *)
  let slot_of_pos p =
    let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
    go 0
  in
  let bdd = ref entry.Index.root in
  (* duplicate variables within the atom: keep the first occurrence,
     equate and project the rest *)
  let seen_var : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let to_quantify = ref [] in
  let renames = ref [] in
  (* constants first: restriction shrinks the BDD before anything else *)
  Array.iteri
    (fun pos t ->
      match t with
      | Const value -> (
        let slot = slot_of_pos pos in
        let dict = R.Table.dict table pos in
        match R.Dict.code dict value with
        | Some code when code < entry.Index.blocks.(slot).Fd.dom_size ->
          bdd := restrict_code m !bdd entry.Index.blocks.(slot) code
        | _ -> bdd := M.zero)
      | Var _ | Wildcard -> ())
    terms;
  if !bdd <> M.zero then begin
    Array.iteri
      (fun pos t ->
        match t with
        | Const _ -> ()
        | Wildcard ->
          (* present in the entry? project it out (entry BDDs contain
             only valid codes, so unguarded bit-level ∃ is exact) *)
          if Array.exists (( = ) pos) entry.Index.attrs then
            to_quantify := entry.Index.blocks.(slot_of_pos pos) :: !to_quantify
        | Var x -> (
          let block = entry.Index.blocks.(slot_of_pos pos) in
          match Hashtbl.find_opt seen_var x with
          | Some _first_slot ->
            (* R(x, x): equate with the first occurrence, then project *)
            let first_block = entry.Index.blocks.(Hashtbl.find seen_var x) in
            bdd := O.band m !bdd (Fd.eq_blocks m first_block block);
            to_quantify := block :: !to_quantify
          | None ->
            Hashtbl.replace seen_var x (slot_of_pos pos);
            (match Hashtbl.find_opt ctx.vars x with
            | Some home_block ->
              if home_block.Fd.levels <> block.Fd.levels then
                renames := (block, home_block) :: !renames
            | None ->
              if is_claimed ctx block || not (covers_domain ctx x block) then begin
                (* the entry's own block already hosts another
                   variable, or is too narrow for the grown domain:
                   divert to a fresh scratch block *)
                let scratch = fresh_block ctx x in
                Hashtbl.replace ctx.vars x scratch;
                renames := (block, scratch) :: !renames
              end
              else begin
                claim ctx block;
                Hashtbl.replace ctx.vars x block
              end)))
      terms;
    (* project the don't-care / duplicate blocks *)
    let levels =
      List.concat_map (fun b -> Array.to_list b.Fd.levels) !to_quantify
    in
    if levels <> [] then bdd := O.exists m levels !bdd;
    (* simultaneous rename of remaining occurrences onto home blocks.
       Homes are at least as wide as any occurrence (see
       {!covers_domain}), so bits pair up by position and the home's
       extra high bits — unconstrained after the rename — are clamped
       to 0 to keep codes exact. *)
    let pairs, high =
      List.fold_left
        (fun (pairs, high) (src, dst) ->
          let ws = Fd.width src and wd = Fd.width dst in
          ( List.init ws (fun j -> (Fd.level_of_bit src j, Fd.level_of_bit dst j))
            @ pairs,
            List.init (wd - ws) (fun j -> (Fd.level_of_bit dst (ws + j), false))
            @ high ))
        ([], []) !renames
    in
    if pairs <> [] then bdd := O.replace m !bdd pairs;
    if high <> [] then bdd := O.band m !bdd (Fd.cube m high)
  end;
  !bdd

(* -- quantifiers ----------------------------------------------------------- *)

let exists_var ctx f x =
  match Hashtbl.find_opt ctx.vars x with
  | None -> f (* vacuous: domains are non-empty *)
  | Some b -> Fd.exists (mgr ctx) b f

let forall_var ctx f x =
  match Hashtbl.find_opt ctx.vars x with
  | None -> f
  | Some b -> Fd.forall (mgr ctx) b f

(* -- home planning ----------------------------------------------------------- *)

(* Before compiling, decide every variable's home block globally:
   process atom instances from the LARGEST index entry downwards and
   let each claim its own attribute blocks for still-homeless
   variables.  Renaming a BDD is linear in its size, so the big
   operands should stay put and the small ones be renamed onto them —
   without this pass, left-to-right claiming can force a rename of a
   10^5-node index because a 10^3-node relation got there first. *)
let plan_homes ctx f =
  let atoms = ref [] in
  let rec walk = function
    | True | False | Eq _ | In _ -> ()
    | Atom (rel, terms) -> atoms := (rel, terms) :: !atoms
    | Not g -> walk g
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      walk a;
      walk b
    | Exists (_, g) | Forall (_, g) -> walk g
  in
  walk f;
  let sized =
    List.filter_map
      (fun (rel, terms) ->
        let needed = ref [] in
        List.iteri (fun i t -> if t <> Wildcard then needed := i :: !needed) terms;
        match Index.find_covering ctx.index ~table_name:rel ~needed:!needed with
        | Some entry -> Some (Index.entry_size ctx.index entry, entry, terms)
        | None -> None)
      !atoms
  in
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare b a) sized in
  List.iter
    (fun (_, entry, terms) ->
      let slot_of_pos p =
        let rec go i = if entry.Index.attrs.(i) = p then i else go (i + 1) in
        go 0
      in
      List.iteri
        (fun pos t ->
          match t with
          | Var x
            when (not (Hashtbl.mem ctx.vars x))
                 && Array.exists (( = ) pos) entry.Index.attrs ->
            let block = entry.Index.blocks.(slot_of_pos pos) in
            if (not (is_claimed ctx block)) && covers_domain ctx x block then begin
              claim ctx block;
              Hashtbl.replace ctx.vars x block
            end
          | _ -> ())
        terms)
    sorted

(* -- formulas --------------------------------------------------------------- *)

(* Telemetry tap on every compiled connective: counts the connective
   kind and feeds the intermediate-BDD-size histogram.  node_count is
   linear in the intermediate's size, so the tap only runs when
   telemetry is enabled. *)
let tel_connective ctx kind root =
  let module T = Fcv_util.Telemetry in
  if T.enabled () then begin
    T.incr (T.counter ("compile.connective." ^ kind));
    T.observe (T.histogram "compile.intermediate_nodes")
      (float_of_int (M.node_count (mgr ctx) root))
  end;
  root

let rec compile_rec ctx f =
  let m = mgr ctx in
  match f with
  | True -> M.one
  | False -> M.zero
  | Atom (rel, terms) -> tel_connective ctx "atom" (compile_atom ctx rel terms)
  | Eq (Var x, Var y) -> Fd.eq_blocks m (home ctx x) (home ctx y)
  | Eq (Var x, Const value) | Eq (Const value, Var x) -> (
    let b = home ctx x in
    match R.Dict.code (dict_of ctx x) value with
    | Some code when code < b.Fd.dom_size -> Fd.eq_const m b code
    | _ -> M.zero)
  | Eq (Const a, Const b) -> if R.Value.equal a b then M.one else M.zero
  | Eq _ -> fail "wildcard in equality"
  | In (Var x, values) ->
    let b = home ctx x in
    let dict = dict_of ctx x in
    let codes =
      List.filter_map
        (fun value ->
          match R.Dict.code dict value with
          | Some c when c < b.Fd.dom_size -> Some c
          | _ -> None)
        values
    in
    if codes = [] then M.zero else Fd.in_set m b codes
  | In (Const v, values) -> if List.exists (R.Value.equal v) values then M.one else M.zero
  | In (Wildcard, _) -> fail "wildcard in membership test"
  | Not g -> tel_connective ctx "not" (O.neg m (compile_rec ctx g))
  | And (a, b) -> tel_connective ctx "and" (O.band m (compile_rec ctx a) (compile_rec ctx b))
  | Or (a, b) -> tel_connective ctx "or" (O.bor m (compile_rec ctx a) (compile_rec ctx b))
  | Implies (a, b) ->
    tel_connective ctx "implies" (O.bimp m (compile_rec ctx a) (compile_rec ctx b))
  | Iff (a, b) -> tel_connective ctx "iff" (O.biff m (compile_rec ctx a) (compile_rec ctx b))
  | Exists ([ x ], Or (a, b)) when ctx.use_appquant ->
    (* Rule 6 (pull-up) in fused form:
       ∃x(φ₁ ∨ φ₂) = ∃bits((valid∧φ₁) ∨ (valid∧φ₂)) via appex *)
    let fa = compile_rec ctx a in
    let fb = compile_rec ctx b in
    tel_connective ctx "exists_appex"
      (match Hashtbl.find_opt ctx.vars x with
      | None -> O.bor m fa fb
      | Some blk ->
        let guard = Fd.valid m blk in
        O.appex m O.Or (Array.to_list blk.Fd.levels) (O.band m guard fa) (O.band m guard fb))
  | Forall ([ x ], And (a, b)) when ctx.use_appquant ->
    (* Rule 5 companion in fused form:
       ∀x(φ₁ ∧ φ₂) = ∀bits((valid⇒φ₁) ∧ (valid⇒φ₂)) via appall *)
    let fa = compile_rec ctx a in
    let fb = compile_rec ctx b in
    tel_connective ctx "forall_appall"
      (match Hashtbl.find_opt ctx.vars x with
      | None -> O.band m fa fb
      | Some blk ->
        let guard = Fd.valid m blk in
        O.appall m O.And (Array.to_list blk.Fd.levels) (O.bimp m guard fa) (O.bimp m guard fb))
  | Exists (xs, body) ->
    let f = compile_rec ctx body in
    tel_connective ctx "exists" (List.fold_left (exists_var ctx) f (List.rev xs))
  | Forall (xs, body) ->
    let f = compile_rec ctx body in
    tel_connective ctx "forall" (List.fold_left (forall_var ctx) f (List.rev xs))

(** Compile a formula to a BDD (plans variable homes first; see
    above). *)
let compile ctx f =
  plan_homes ctx f;
  compile_rec ctx f

(** Conjunction of the domain guards of the given variables' home
    blocks — the context against which validity/satisfiability of the
    compiled matrix must be judged once leading quantifiers were
    eliminated. *)
let free_guard ctx vars =
  let m = mgr ctx in
  List.fold_left
    (fun acc x ->
      match Hashtbl.find_opt ctx.vars x with
      | None -> acc
      | Some b -> O.band m acc (Fd.valid m b))
    M.one vars

(* -- standalone join strategies (Fig. 6(a)) -------------------------------- *)

(** Naive equi-join (§4.2 option 1): BDD(R1) ∧ BDD(R2) ∧ ⋀ᵢ(xᵢ=yᵢ). *)
let join_naive m f g pairs =
  let eqs = List.fold_left (fun acc (b1, b2) -> O.band m acc (Fd.eq_blocks m b1 b2)) M.one pairs in
  O.band m (O.band m f g) eqs

(** Optimised equi-join (§4.2 option 2): rename R2's join blocks onto
    R1's, then a single conjunction. *)
let join_rename m f g pairs =
  let g' =
    let level_pairs =
      List.concat_map
        (fun (b1, b2) ->
          List.init
            (min (Fd.width b1) (Fd.width b2))
            (fun j -> (Fd.level_of_bit b2 j, Fd.level_of_bit b1 j)))
        pairs
    in
    O.replace m g level_pairs
  in
  O.band m f g'
