(** Persistence for the logical index store: entry manifests plus one
    {!Fcv_bdd.Io} section.  Loading re-allocates the blocks in the
    saved level order with their saved domain sizes (grown
    dictionaries are fine — the entry rebuilds on its first
    out-of-capacity update, as it would have live); a dictionary
    smaller than a saved domain is rejected as drift. *)

exception Format_error of string

val save : Index.t -> out_channel -> unit

val save_string : Index.t -> string
(** {!save} into an in-memory snapshot string — what parallel
    validation hydrates per-worker index replicas from. *)

val load : Fcv_relation.Database.t -> in_channel -> Index.t
(** @raise Format_error on malformed input or a shrunken domain. *)

val load_string : Fcv_relation.Database.t -> string -> Index.t
(** {!load} from a {!save_string} snapshot.  The returned store shares
    [db] (tables, dictionaries) but owns a fresh manager. *)

val save_file : Index.t -> string -> unit
val load_file : Fcv_relation.Database.t -> string -> Index.t
