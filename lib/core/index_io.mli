(** Persistence for the logical index store: entry manifests plus one
    {!Fcv_bdd.Io} section.  Loading re-allocates the blocks in the
    saved level order with their saved domain sizes (grown
    dictionaries are fine — the entry rebuilds on its first
    out-of-capacity update, as it would have live); a dictionary
    smaller than a saved domain is rejected as drift. *)

exception Format_error of string

val save : Index.t -> out_channel -> unit

val save_string : Index.t -> string
(** {!save} into an in-memory snapshot string — what parallel
    validation hydrates per-worker index replicas from. *)

val load : Fcv_relation.Database.t -> in_channel -> Index.t
(** @raise Format_error on malformed input or a shrunken domain. *)

val load_string : Fcv_relation.Database.t -> string -> Index.t
(** {!load} from a {!save_string} snapshot.  The returned store shares
    [db] (tables, dictionaries) but owns a fresh manager. *)

val save_file : Index.t -> string -> unit
val load_file : Fcv_relation.Database.t -> string -> Index.t

(** {2 Deltas} — the incremental companion to full snapshots: the
    row-level mutations applied to the master inside an epoch window
    [(base, to_]], serialisable so replicas can replay a suffix
    against an already-hydrated private index instead of re-parsing a
    whole snapshot.  Structural changes (entry add/remove/rebuild,
    level recycle) are never expressible as deltas — producers must
    fall back to a full snapshot (see {!Replica}). *)

type delta_op =
  | Delta_insert of string * int array  (** table name, full coded row *)
  | Delta_delete of string * int array

val save_delta : base:int -> to_:int -> delta_op list -> string
(** Render the ops covering epochs [(base, to_]], oldest first. *)

val load_delta : string -> int * int * delta_op list
(** [(base, to_, ops)] back from {!save_delta} bytes.
    @raise Format_error on malformed input. *)

val apply_delta : Index.t -> delta_op list -> unit
(** Replay ops against [index]'s {e entries only} (roots + counts) —
    never the base tables, which a replica shares with the
    already-updated master.  @raise Index.Needs_rebuild when an op
    falls outside an entry's frozen domain capacity; callers fall
    back to full hydration. *)
