(** Persistence for the logical index store: entry manifests plus one
    {!Fcv_bdd.Io} section.  Loading re-allocates the blocks in the
    saved level order and verifies that the database's dictionary
    sizes have not drifted since the save. *)

exception Format_error of string

val save : Index.t -> out_channel -> unit

val load : Fcv_relation.Database.t -> in_channel -> Index.t
(** @raise Format_error on malformed input or domain drift. *)

val save_file : Index.t -> string -> unit
val load_file : Fcv_relation.Database.t -> string -> Index.t
