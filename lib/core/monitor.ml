(** Continuous constraint validation — the paper's motivating scenario
    ("databases are primarily dynamic ... being able to identify
    constraints that are violated within and across tables is highly
    important") turned into an API: register constraints once, stream
    updates through the logical indices, and re-validate lazily —
    only constraints touching tables dirtied since their last check
    are re-run. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module T = Fcv_util.Telemetry

type registered = {
  id : int;
  source : string;  (** the constraint's concrete syntax, for reporting *)
  formula : Formula.t;
  threshold : float;
      (** verdict threshold; [1.0] = hard (classical) constraint, a
          value in (0, 1) makes the constraint soft: satisfied while
          the satisfied fraction of bindings stays ≥ threshold *)
  tables : string list;
  mutable last_outcome : Checker.outcome option;
  mutable last_rate : Checker.rate option;
      (** measured rate of the last fresh soft check; [None] for hard
          constraints and never-checked soft ones *)
  mutable checks_run : int;
  mutable checks_skipped : int;  (** skipped because no watched table changed *)
  mutable total_check_ms : float;  (** cumulative time of fresh checks *)
  mutable entailed_by : int list option;
      (** Kenig–Suciu implication dedup: [Some ids] when this FD is in
          the Armstrong closure of the other registered FDs — it can be
          skipped whenever every entailer currently holds *)
}

(** How validation picks the check engine.  [Planned] (the default)
    asks the {!Planner} per constraint and feeds results back;
    [Legacy] is the paper's blind try-BDD-first thresholding (also the
    bench baseline); [Forced s] pins one {!Checker.strategy} for every
    constraint (ablations). *)
type planning = Planned | Legacy | Forced of Checker.strategy

type t = {
  index : Index.t;
  pipeline : Checker.pipeline;
  planner : Planner.t;
  mutable planning : planning;
  mutable constraints : registered list;
      (** stored {b newest first} so registration is O(1); every
          external view reverses (see {!constraints}) *)
  mutable next_id : int;
  dirty : (string, unit) Hashtbl.t;  (** tables updated since the last validation *)
  mutable par : (Fcv_util.Pool.t * Replica.t) option;
      (** worker pool + replica set when [jobs > 1]; the pool outlives
          validations so workers and hydrated replicas are reused *)
  mutable gc_policy : Lifecycle.policy option;
      (** [None] disables automatic reclamation; on by default *)
}

let create ?(pipeline = Checker.default_pipeline) ?(planning = Planned)
    ?(gc = Some Lifecycle.default_policy) index =
  {
    index;
    pipeline;
    planner = Planner.create ();
    planning;
    constraints = [];
    next_id = 0;
    dirty = Hashtbl.create 8;
    par = None;
    gc_policy = gc;
  }

let index t = t.index
let constraints t = List.rev t.constraints
let planner t = t.planner
let planning t = t.planning
let set_planning t p = t.planning <- p
let set_gc_policy t p = t.gc_policy <- p
let gc_policy t = t.gc_policy
let jobs t = match t.par with Some (p, _) -> Fcv_util.Pool.size p | None -> 1

(** Set the validation parallelism.  [jobs <= 1] (the initial state)
    validates on the calling domain; larger values keep a worker pool
    and per-worker index replicas alive across validations. *)
let set_jobs t n =
  let n = max 1 n in
  if n <> jobs t then begin
    (match t.par with Some (p, _) -> Fcv_util.Pool.shutdown p | None -> ());
    t.par <-
      (if n = 1 then None
       else Some (Fcv_util.Pool.create ~name:"monitor" ~jobs:n (), Replica.create t.index))
  end

(** Release the worker pool (if any); the monitor stays usable
    sequentially.  Call before discarding a parallel monitor so worker
    domains are joined. *)
let stop t = set_jobs t 1

let invalidate_replicas t =
  match t.par with Some (_, r) -> Replica.invalidate r | None -> ()

let is_hard r = r.threshold >= 1.0

(* Re-derive every [entailed_by] flag from the current FD set — run
   after each register/unregister, never per pass: entailment is a
   property of the constraint set, not the data.  Only {e hard} FDs
   participate: a soft FD neither entails (it may be violated below
   its threshold) nor is entailed (its rate must be measured, not
   inferred from the Armstrong closure). *)
let recompute_entailment t =
  let db = t.index.Index.db in
  let regs = constraints t in
  let fds =
    List.filter_map
      (fun r ->
        if not (is_hard r) then None
        else
          match Planner.fd_of db r.formula with Some fd -> Some (r, fd) | None -> None)
      regs
  in
  List.iter (fun r -> r.entailed_by <- None) regs;
  List.iter
    (fun (r, fd) ->
      let others =
        List.filter_map
          (fun (o, ofd) -> if o.id <> r.id then Some (o.id, ofd) else None)
          fds
      in
      r.entailed_by <- Planner.entails ~by:others fd)
    fds

let replica_stats t = match t.par with Some (_, r) -> Some (Replica.stats r) | None -> None

(** Register a constraint (given as concrete syntax); builds any
    missing indices.  Returns its id — the caller may pin one (WAL
    replay / snapshot recovery re-registers constraints under their
    original ids so logged [unregister] records stay valid). *)
let add ?id t source =
  let spec = Fol_parser.spec_of_string source in
  let formula = spec.Formula.formula in
  if not (Formula.is_closed formula) then
    invalid_arg "Monitor.add: constraint must be closed";
  ignore (Typing.infer_spec t.index.Index.db spec);
  (* build missing indices transactionally: if the node budget (or
     level space) trips mid-registration, entries already built for
     this registration are rolled back so the monitor is unchanged.
     Out of level space we first recycle (dense rebuild) and retry
     once — registration is between checks, so renumbering is safe. *)
  let ensure () =
    let before = t.index.Index.entries in
    try Checker.ensure_indices t.index [ formula ]
    with e ->
      t.index.Index.entries <-
        List.filter (fun e -> List.memq e before) t.index.Index.entries;
      raise e
  in
  (try ensure ()
   with M.Level_limit _ ->
     ignore (Lifecycle.recycle t.index);
     invalidate_replicas t;
     ensure ());
  let id =
    match id with
    | Some i ->
      if List.exists (fun r -> r.id = i) t.constraints then
        invalid_arg "Monitor.add: duplicate constraint id";
      t.next_id <- max t.next_id (i + 1);
      i
    | None ->
      let i = t.next_id in
      t.next_id <- i + 1;
      i
  in
  let reg =
    {
      id;
      source;
      formula;
      threshold = spec.Formula.threshold;
      tables = Formula.relations formula;
      last_outcome = None;
      last_rate = None;
      checks_run = 0;
      checks_skipped = 0;
      total_check_ms = 0.;
      entailed_by = None;
    }
  in
  t.constraints <- reg :: t.constraints;
  recompute_entailment t;
  (* ensure_indices may have built new entries *)
  invalidate_replicas t;
  reg

(** Unregister a constraint.  Index entries on tables no other
    registered constraint watches are dropped with it (their nodes
    become dead and the next GC reclaims them) and replicas are
    invalidated — a long-running server must not retain the index of
    every constraint it ever saw. *)
let remove t id =
  let doomed, kept = List.partition (fun r -> r.id = id) t.constraints in
  t.constraints <- kept;
  if doomed <> [] then begin
    let still_watched tbl = List.exists (fun r -> List.mem tbl r.tables) kept in
    List.iter
      (fun r ->
        List.iter
          (fun tbl ->
            if not (still_watched tbl) then
              ignore (Index.remove_entries_for t.index tbl))
          r.tables)
      doomed;
    recompute_entailment t;
    invalidate_replicas t
  end

(** Run the automatic-reclamation policy once — called between
    validations, never mid-check.  Bumps replica epochs only when node
    ids were renumbered (a level recycle): a content-preserving
    compact renumbers nothing a replica can see, so replicas survive
    it untouched. *)
let maybe_gc t =
  match t.gc_policy with
  | None -> Lifecycle.no_action
  | Some policy ->
    let action = Lifecycle.maybe_gc ~policy t.index in
    if action.Lifecycle.recycled then invalidate_replicas t;
    action

(** Reclaim memory {e now} (the [compact] protocol op): a level
    recycle when the policy demands one, otherwise a plain GC.
    Replicas are invalidated only on a recycle (a pure compact is
    invisible to them).  Returns nodes reclaimed. *)
let gc t =
  let policy = Option.value ~default:Lifecycle.default_policy t.gc_policy in
  let recycle = Lifecycle.needs_recycle policy t.index in
  let reclaimed =
    if recycle then Lifecycle.recycle t.index else Index.compact t.index
  in
  Index.publish_gauges t.index;
  if recycle then invalidate_replicas t;
  reclaimed

(** Stream one row insertion through the base table and indices; marks
    the table dirty.  Replicas get a row-level delta note, not a full
    invalidation — the mutation epoch no longer costs workers a
    rehydration. *)
let insert t ~table_name row =
  Index.insert t.index ~table_name row;
  Hashtbl.replace t.dirty table_name ();
  (match t.par with
  | Some (_, r) -> Replica.note_insert r ~table_name row
  | None -> ());
  if T.enabled () then T.incr (T.counter "monitor.inserts")

(** Stream one row deletion; marks the table dirty if a row was
    removed.  Delta-noted like {!insert}. *)
let delete t ~table_name row =
  let removed = Index.delete t.index ~table_name row in
  if removed then begin
    Hashtbl.replace t.dirty table_name ();
    match t.par with
    | Some (_, r) -> Replica.note_delete r ~table_name row
    | None -> ()
  end;
  if T.enabled () then T.incr (T.counter "monitor.deletes");
  removed

type report = {
  constraint_ : registered;
  outcome : Checker.outcome;
  fresh : bool;  (** false when the cached verdict was still valid *)
  elapsed_ms : float;
  rate : Checker.rate option;
      (** the soft constraint's measured (or cached) rate; [None] for
          hard constraints *)
}

(** Validate the registered constraints: a constraint is re-checked
    only when it has never been checked or one of its tables changed
    since its last check; otherwise the cached verdict is returned.
    Under [Planned] (the default) the {!Planner} chooses each stale
    constraint's strategy, planned costs order the parallel pool, every
    fresh result is fed back, and FDs entailed by currently-holding
    FDs are settled without a check.  Clears the dirty set. *)
let validate t =
  (* reclamation happens here, strictly before any check compiles
     against the manager — never mid-check *)
  ignore (maybe_gc t);
  T.with_span "monitor.validate" @@ fun () ->
  let regs = constraints t in
  let needs_check reg =
    reg.last_outcome = None || List.exists (Hashtbl.mem t.dirty) reg.tables
  in
  let planned = t.planning = Planned in
  (* registered-record bookkeeping happens on the calling domain only:
     in the parallel path workers return bare Checker.results and the
     mutations below run once the whole batch is in *)
  let fresh_report reg r =
    if planned then Planner.observe t.planner reg.formula r;
    reg.last_outcome <- Some r.Checker.outcome;
    (match r.Checker.rate with Some _ as rt -> reg.last_rate <- rt | None -> ());
    reg.checks_run <- reg.checks_run + 1;
    reg.total_check_ms <- reg.total_check_ms +. r.Checker.elapsed_ms;
    if T.enabled () then T.incr (T.counter "monitor.checks_run");
    {
      constraint_ = reg;
      outcome = r.Checker.outcome;
      fresh = true;
      elapsed_ms = r.Checker.elapsed_ms;
      rate = r.Checker.rate;
    }
  in
  let cached_report reg =
    reg.checks_skipped <- reg.checks_skipped + 1;
    if T.enabled () then T.incr (T.counter "monitor.checks_skipped");
    match reg.last_outcome with
    | Some outcome ->
      { constraint_ = reg; outcome; fresh = false; elapsed_ms = 0.; rate = reg.last_rate }
    | None -> assert false
  in
  let entailed_report reg =
    (* sound: every entailer settled Satisfied this pass, and the
       Armstrong closure guarantees the entailed FD then holds too *)
    reg.last_outcome <- Some Checker.Satisfied;
    reg.checks_skipped <- reg.checks_skipped + 1;
    if T.enabled () then begin
      T.incr (T.counter "monitor.checks_skipped");
      T.incr (T.counter "planner.entailed_skips")
    end;
    {
      constraint_ = reg;
      outcome = Checker.Satisfied;
      fresh = false;
      elapsed_ms = 0.;
      rate = None;
    }
  in
  let stale = List.filter needs_check regs in
  (* soft constraints run sequentially through {!Checker.check_spec}:
     they need the exact-count machinery (and their rates), not the
     pooled batch checker, and they never participate in entailment *)
  let stale_soft, stale_hard = List.partition (fun r -> not (is_hard r)) stale in
  (* entailed FDs settle from their entailers' verdicts when possible
     (Planned mode only); everything else is the main batch *)
  let stale_main, stale_ent =
    if planned then List.partition (fun r -> r.entailed_by = None) stale_hard
    else (stale_hard, [])
  in
  let plans =
    if planned then
      List.map (fun reg -> Some (Planner.plan t.planner t.index reg.formula)) stale_main
    else List.map (fun _ -> None) stale_main
  in
  let forced = match t.planning with Forced s -> s | _ -> Checker.Auto in
  let strategies =
    List.map (function Some p -> p.Planner.strategy | None -> forced) plans
  in
  let costs =
    (* Planned: the planner's costed estimate orders the pool;
       otherwise measured per-constraint history as before *)
    List.map2
      (fun reg p ->
        match p with
        | Some p -> Some p.Planner.cost_ms
        | None ->
          if reg.checks_run > 0 then
            Some (reg.total_check_ms /. float_of_int reg.checks_run)
          else None)
      stale_main plans
  in
  let fresh = Hashtbl.create (List.length stale + 1) in
  (match t.par with
  | Some (pool, replica) when List.length stale_main > 1 ->
    let results =
      Checker.check_all_pooled ~pipeline:t.pipeline ~costs ~strategies ~pool replica
        (List.map (fun reg -> reg.formula) stale_main)
    in
    List.iter2 (fun reg r -> Hashtbl.replace fresh reg.id r) stale_main results
  | _ ->
    List.iter2
      (fun reg strategy ->
        Hashtbl.replace fresh reg.id
          (Checker.check ~pipeline:t.pipeline ~strategy t.index reg.formula))
      stale_main strategies);
  (* soft constraints: planner-advised strategy, exact rate verdict;
     results feed the planner like any other fresh check *)
  List.iter
    (fun reg ->
      let strategy =
        match t.planning with
        | Planned -> (Planner.plan t.planner t.index reg.formula).Planner.strategy
        | Legacy -> Checker.Auto
        | Forced s -> s
      in
      let spec = { Formula.threshold = reg.threshold; formula = reg.formula } in
      Hashtbl.replace fresh reg.id
        (Checker.check_spec ~pipeline:t.pipeline ~strategy t.index spec))
    stale_soft;
  (* outcomes valid for THIS pass: clean cached verdicts + fresh results *)
  let settled = Hashtbl.create (List.length regs + 1) in
  List.iter
    (fun reg ->
      if not (needs_check reg) then
        match reg.last_outcome with
        | Some o -> Hashtbl.replace settled reg.id o
        | None -> ())
    regs;
  Hashtbl.iter
    (fun id (r : Checker.result) -> Hashtbl.replace settled id r.Checker.outcome)
    fresh;
  (* dirty entailed FDs: skip when every entailer settled Satisfied,
     check otherwise.  Iterate because entailers may themselves be
     entailed; a stall (mutual entailment among dirty FDs) is broken
     by checking the lowest id *)
  let skipped_ent = Hashtbl.create 8 in
  let check_now reg =
    let strategy = (Planner.plan t.planner t.index reg.formula).Planner.strategy in
    let r = Checker.check ~pipeline:t.pipeline ~strategy t.index reg.formula in
    Hashtbl.replace fresh reg.id r;
    Hashtbl.replace settled reg.id r.Checker.outcome
  in
  let pending = ref stale_ent in
  while !pending <> [] do
    let progress = ref false in
    pending :=
      List.filter
        (fun reg ->
          let ids = match reg.entailed_by with Some ids -> ids | None -> assert false in
          let known = List.filter_map (fun i -> Hashtbl.find_opt settled i) ids in
          if List.length known = List.length ids then begin
            progress := true;
            if List.for_all (fun o -> o = Checker.Satisfied) known then begin
              Hashtbl.replace skipped_ent reg.id ();
              Hashtbl.replace settled reg.id Checker.Satisfied
            end
            else check_now reg;
            false
          end
          else true)
        !pending;
    if (not !progress) && !pending <> [] then begin
      let reg =
        List.fold_left
          (fun a b -> if b.id < a.id then b else a)
          (List.hd !pending) (List.tl !pending)
      in
      check_now reg;
      pending := List.filter (fun r -> r.id <> reg.id) !pending
    end
  done;
  let reports =
    List.map
      (fun reg ->
        match Hashtbl.find_opt fresh reg.id with
        | Some r -> fresh_report reg r
        | None ->
          if Hashtbl.mem skipped_ent reg.id then entailed_report reg
          else cached_report reg)
      regs
  in
  Hashtbl.reset t.dirty;
  reports

(** The registered constraints currently violated (validating first). *)
let violated t =
  List.filter_map
    (fun r -> if r.outcome = Checker.Violated then Some r.constraint_ else None)
    (validate t)

(** The extensional verdict set: (id, outcome) sorted by id.  This is
    the oracle view the differential and fault-injection harnesses
    compare — identical across sequential / parallel validation and
    across crash recovery. *)
let verdicts t =
  List.sort compare
    (List.map (fun r -> (r.constraint_.id, r.outcome)) (validate t))

(** The costed plan tree for one registered constraint — the [explain]
    protocol op and [fcv explain].  Goes through the planner cache
    like a real validation would, so estimates and last-actuals
    reflect what the next check will do. *)
let explain t id =
  List.find_opt (fun r -> r.id = id) t.constraints
  |> Option.map (fun reg -> (reg, Planner.plan t.planner t.index reg.formula))
