(** Continuous constraint validation — the paper's motivating scenario
    ("databases are primarily dynamic ... being able to identify
    constraints that are violated within and across tables is highly
    important") turned into an API: register constraints once, stream
    updates through the logical indices, and re-validate lazily —
    only constraints touching tables dirtied since their last check
    are re-run. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry

type registered = {
  id : int;
  source : string;  (** the constraint's concrete syntax, for reporting *)
  formula : Formula.t;
  tables : string list;
  mutable last_outcome : Checker.outcome option;
  mutable checks_run : int;
  mutable checks_skipped : int;  (** skipped because no watched table changed *)
  mutable total_check_ms : float;  (** cumulative time of fresh checks *)
}

type t = {
  index : Index.t;
  pipeline : Checker.pipeline;
  mutable constraints : registered list;
  mutable next_id : int;
  dirty : (string, unit) Hashtbl.t;  (** tables updated since the last validation *)
  mutable par : (Fcv_util.Pool.t * Replica.t) option;
      (** worker pool + replica set when [jobs > 1]; the pool outlives
          validations so workers and hydrated replicas are reused *)
}

let create ?(pipeline = Checker.default_pipeline) index =
  {
    index;
    pipeline;
    constraints = [];
    next_id = 0;
    dirty = Hashtbl.create 8;
    par = None;
  }

let index t = t.index
let constraints t = t.constraints
let jobs t = match t.par with Some (p, _) -> Fcv_util.Pool.size p | None -> 1

(** Set the validation parallelism.  [jobs <= 1] (the initial state)
    validates on the calling domain; larger values keep a worker pool
    and per-worker index replicas alive across validations. *)
let set_jobs t n =
  let n = max 1 n in
  if n <> jobs t then begin
    (match t.par with Some (p, _) -> Fcv_util.Pool.shutdown p | None -> ());
    t.par <-
      (if n = 1 then None
       else Some (Fcv_util.Pool.create ~name:"monitor" ~jobs:n (), Replica.create t.index))
  end

(** Release the worker pool (if any); the monitor stays usable
    sequentially.  Call before discarding a parallel monitor so worker
    domains are joined. *)
let stop t = set_jobs t 1

let invalidate_replicas t =
  match t.par with Some (_, r) -> Replica.invalidate r | None -> ()

(** Register a constraint (given as concrete syntax); builds any
    missing indices.  Returns its id — the caller may pin one (WAL
    replay / snapshot recovery re-registers constraints under their
    original ids so logged [unregister] records stay valid). *)
let add ?id t source =
  let formula = Fol_parser.of_string source in
  if not (Formula.is_closed formula) then
    invalid_arg "Monitor.add: constraint must be closed";
  ignore (Typing.infer t.index.Index.db formula);
  Checker.ensure_indices t.index [ formula ];
  let id =
    match id with
    | Some i ->
      if List.exists (fun r -> r.id = i) t.constraints then
        invalid_arg "Monitor.add: duplicate constraint id";
      t.next_id <- max t.next_id (i + 1);
      i
    | None ->
      let i = t.next_id in
      t.next_id <- i + 1;
      i
  in
  let reg =
    {
      id;
      source;
      formula;
      tables = Formula.relations formula;
      last_outcome = None;
      checks_run = 0;
      checks_skipped = 0;
      total_check_ms = 0.;
    }
  in
  t.constraints <- t.constraints @ [ reg ];
  (* ensure_indices may have built new entries *)
  invalidate_replicas t;
  reg

let remove t id = t.constraints <- List.filter (fun r -> r.id <> id) t.constraints

(** Stream one row insertion through the base table and indices; marks
    the table dirty. *)
let insert t ~table_name row =
  Index.insert t.index ~table_name row;
  Hashtbl.replace t.dirty table_name ();
  invalidate_replicas t;
  if T.enabled () then T.incr (T.counter "monitor.inserts")

(** Stream one row deletion; marks the table dirty if a row was
    removed. *)
let delete t ~table_name row =
  let removed = Index.delete t.index ~table_name row in
  if removed then begin
    Hashtbl.replace t.dirty table_name ();
    invalidate_replicas t
  end;
  if T.enabled () then T.incr (T.counter "monitor.deletes");
  removed

type report = {
  constraint_ : registered;
  outcome : Checker.outcome;
  fresh : bool;  (** false when the cached verdict was still valid *)
  elapsed_ms : float;
}

(** Validate the registered constraints: a constraint is re-checked
    only when it has never been checked or one of its tables changed
    since its last check; otherwise the cached verdict is returned.
    Clears the dirty set. *)
let validate t =
  T.with_span "monitor.validate" @@ fun () ->
  let needs_check reg =
    reg.last_outcome = None || List.exists (Hashtbl.mem t.dirty) reg.tables
  in
  (* registered-record bookkeeping happens on the calling domain only:
     in the parallel path workers return bare Checker.results and the
     mutations below run once the whole batch is in *)
  let fresh_report reg r =
    reg.last_outcome <- Some r.Checker.outcome;
    reg.checks_run <- reg.checks_run + 1;
    reg.total_check_ms <- reg.total_check_ms +. r.Checker.elapsed_ms;
    if T.enabled () then T.incr (T.counter "monitor.checks_run");
    {
      constraint_ = reg;
      outcome = r.Checker.outcome;
      fresh = true;
      elapsed_ms = r.Checker.elapsed_ms;
    }
  in
  let cached_report reg =
    reg.checks_skipped <- reg.checks_skipped + 1;
    if T.enabled () then T.incr (T.counter "monitor.checks_skipped");
    match reg.last_outcome with
    | Some outcome -> { constraint_ = reg; outcome; fresh = false; elapsed_ms = 0. }
    | None -> assert false
  in
  let stale = List.filter needs_check t.constraints in
  let reports =
    match t.par with
    | Some (pool, replica) when List.length stale > 1 ->
      let results =
        Checker.check_all_pooled ~pipeline:t.pipeline ~pool replica
          (List.map (fun reg -> reg.formula) stale)
      in
      let fresh = Hashtbl.create (List.length stale) in
      List.iter2 (fun reg r -> Hashtbl.replace fresh reg.id r) stale results;
      List.map
        (fun reg ->
          match Hashtbl.find_opt fresh reg.id with
          | Some r -> fresh_report reg r
          | None -> cached_report reg)
        t.constraints
    | _ ->
      List.map
        (fun reg ->
          if needs_check reg then
            fresh_report reg (Checker.check ~pipeline:t.pipeline t.index reg.formula)
          else cached_report reg)
        t.constraints
  in
  Hashtbl.reset t.dirty;
  reports

(** The registered constraints currently violated (validating first). *)
let violated t =
  List.filter_map
    (fun r -> if r.outcome = Checker.Violated then Some r.constraint_ else None)
    (validate t)

(** The extensional verdict set: (id, outcome) sorted by id.  This is
    the oracle view the differential and fault-injection harnesses
    compare — identical across sequential / parallel validation and
    across crash recovery. *)
let verdicts t =
  List.sort compare
    (List.map (fun r -> (r.constraint_.id, r.outcome)) (validate t))
