(** Constraint → BDD compilation over the logical indices.

    Variables get {e home blocks}: a planning pre-pass lets the
    largest index entries claim their own attribute blocks, and later
    occurrences are {b renamed} onto the homes — the §4.2 equi-join
    rewrite.  Quantifiers range over active domains through validity
    guards fused with [appex]/[appall] (§4.3).

    The compiled BDD agrees with the formula on all {e valid}
    assignments of its free variables; judge validity or
    satisfiability relative to {!free_guard}. *)

exception Unsupported of string

type ctx = {
  index : Index.t;
  typing : Typing.env;
  use_appquant : bool;  (** §4.3 fused operators; off for ablation *)
  vars : (string, Fcv_bdd.Fd.block) Hashtbl.t;  (** variable → home block *)
  claimed : (int, unit) Hashtbl.t;
  mutable borrowed : Fcv_bdd.Fd.block list;  (** scratch blocks to return *)
}

val make_ctx : ?use_appquant:bool -> Index.t -> Typing.env -> ctx

val release : ctx -> unit
(** Return the context's scratch blocks to the index's pool; call
    after the final BDD has been read.  Results referencing scratch
    levels must not be consulted afterwards. *)

val mgr : ctx -> Fcv_bdd.Manager.t

val compile : ctx -> Formula.t -> int
(** Compile a formula (plans homes first).  Free variables keep their
    home blocks in [ctx.vars] for decoding.
    @raise Unsupported on atoms without covering indices.
    @raise Fcv_bdd.Manager.Node_limit past the node budget. *)

val free_guard : ctx -> string list -> int
(** Conjunction of the named variables' domain guards. *)

(** {2 Standalone §4.2 join strategies (Fig. 6(a))} *)

val join_naive :
  Fcv_bdd.Manager.t ->
  int ->
  int ->
  (Fcv_bdd.Fd.block * Fcv_bdd.Fd.block) list ->
  int
(** BDD(R1) ∧ BDD(R2) ∧ ⋀ᵢ(xᵢ = yᵢ) — keeps both attribute copies. *)

val join_rename :
  Fcv_bdd.Manager.t ->
  int ->
  int ->
  (Fcv_bdd.Fd.block * Fcv_bdd.Fd.block) list ->
  int
(** Rename R2's join blocks onto R1's, then one conjunction. *)
