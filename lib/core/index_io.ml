(** Persistence for the logical index store: save every entry's
    metadata and BDD to one file; reload against the same database
    (same tables, same dictionary contents) without re-encoding.

    The file begins with a manifest of the entries (table, attribute
    names, ordering, per-attribute domain sizes — restored verbatim,
    since block widths fix both the variable layout and the packed
    count keys; a dictionary smaller than a saved domain is rejected
    as drift), followed by one {!Fcv_bdd.Io} section with all roots. *)

module R = Fcv_relation
module M = Fcv_bdd.Manager
module Fd = Fcv_bdd.Fd

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let magic = "fcv-index 1"

let save_gen index put =
  let entries = List.rev (Index.entries index) in
  (* Compact the variable numbering: the live manager also carries
     scratch blocks and the dead blocks of rebuilt entries, but [load]
     re-allocates only the saved blocks (per entry, in ordering
     sequence).  Saving raw variable ids would therefore shift or
     overflow on reload, so renumber to exactly the layout [load]
     recreates. *)
  let remap = Hashtbl.create 64 in
  let next_var = ref 0 in
  List.iter
    (fun e ->
      Array.iter
        (fun k ->
          Array.iter
            (fun lvl ->
              Hashtbl.replace remap lvl !next_var;
              incr next_var)
            e.Index.blocks.(k).Fd.levels)
        e.Index.order)
    entries;
  let rename v =
    match Hashtbl.find_opt remap v with
    | Some v' -> v'
    | None -> fail "index BDD references variable %d outside its entry blocks" v
  in
  let pr fmt = Printf.ksprintf put fmt in
  pr "%s\n" magic;
  pr "entries %d\n" (List.length entries);
  List.iter
    (fun e ->
      let table = e.Index.table in
      let schema = R.Table.schema table in
      let attr_names =
        Array.to_list e.Index.attrs
        |> List.map (fun p -> schema.(p).R.Schema.name)
      in
      let dom_sizes =
        Array.to_list e.Index.blocks |> List.map (fun b -> string_of_int b.Fd.dom_size)
      in
      pr "entry %s\n" (R.Table.name table);
      pr "attrs %s\n" (String.concat " " attr_names);
      pr "order %s\n"
        (String.concat " " (Array.to_list e.Index.order |> List.map string_of_int));
      pr "domains %s\n" (String.concat " " dom_sizes);
      (* the maintenance multiset *)
      pr "counts %d\n" (Hashtbl.length e.Index.counts);
      Hashtbl.iter (fun k c -> pr "%d %d\n" k c) e.Index.counts)
    entries;
  put
    (Fcv_bdd.Io.save_string ~rename ~nvars:!next_var (Index.mgr index)
       ~roots:(List.map (fun e -> e.Index.root) entries))

let save index oc = save_gen index (output_string oc)

let save_string index =
  let buf = Buffer.create 4096 in
  save_gen index (Buffer.add_string buf);
  Buffer.contents buf

(** Rebuild an index store against [db] from [next_line] (a pull
    source of lines; [None] = end of input).  Blocks are re-allocated
    in the same level order, so roots load unchanged.
    @raise Format_error on malformed input or when a table's current
    dictionary sizes disagree with the saved ones. *)
let load_lines db next_line =
  let line () =
    match next_line () with Some l -> l | None -> fail "unexpected end of file"
  in
  let words s = String.split_on_char ' ' (String.trim s) |> List.filter (( <> ) "") in
  if String.trim (line ()) <> magic then fail "bad magic";
  let count =
    match words (line ()) with
    | [ "entries"; n ] -> int_of_string n
    | _ -> fail "expected entries"
  in
  let index = Index.create db in
  let mgr = Index.mgr index in
  let metas =
    List.init count (fun _ ->
        let table_name =
          match words (line ()) with
          | [ "entry"; t ] -> t
          | _ -> fail "expected entry"
        in
        let attr_names =
          match words (line ()) with
          | "attrs" :: rest -> rest
          | _ -> fail "expected attrs"
        in
        let order =
          match words (line ()) with
          | "order" :: rest -> Array.of_list (List.map int_of_string rest)
          | _ -> fail "expected order"
        in
        let dom_sizes =
          match words (line ()) with
          | "domains" :: rest -> Array.of_list (List.map int_of_string rest)
          | _ -> fail "expected domains"
        in
        let n_counts =
          match words (line ()) with
          | [ "counts"; n ] -> int_of_string n
          | _ -> fail "expected counts"
        in
        let counts = Hashtbl.create (max 16 n_counts) in
        for _ = 1 to n_counts do
          match words (line ()) with
          | [ k; c ] -> Hashtbl.replace counts (int_of_string k) (int_of_string c)
          | _ -> fail "malformed count line"
        done;
        let table = R.Database.table db table_name in
        let schema = R.Table.schema table in
        let attrs =
          Array.of_list (List.map (R.Schema.position schema) attr_names)
        in
        (* re-allocate blocks in saved (ordering) sequence, with the
           SAVED domain sizes: widths decide the variable layout and
           the packed count keys, so they must be restored verbatim.
           A dictionary that has since grown is fine — the entry comes
           back exactly as narrow as it was saved, and the first update
           beyond its capacity rebuilds it like it would have live.  A
           dictionary smaller than the saved domain means the index was
           saved against different data: reject it. *)
        let slots = Array.make (Array.length attrs) None in
        Array.iter
          (fun k ->
            let p = attrs.(k) in
            let current = R.Table.dom_size table p in
            let saved = dom_sizes.(k) in
            if saved > current then
              fail "domain of %s.%s shrank since the index was saved (%d -> %d)"
                table_name schema.(p).R.Schema.name saved current;
            slots.(k) <-
              Some (Fd.alloc mgr ~name:schema.(p).R.Schema.name ~dom_size:(max 1 saved)))
          order;
        let blocks = Array.map (function Some b -> b | None -> fail "bad order") slots in
        (table, attrs, order, blocks, counts))
  in
  let roots = Fcv_bdd.Io.load_lines mgr next_line in
  if List.length roots <> count then fail "root count mismatch";
  List.iter2
    (fun (table, attrs, order, blocks, counts) root ->
      let entry =
        {
          Index.table;
          attrs;
          order;
          strategy = Ordering.Fixed (Array.copy order);
          blocks;
          root;
          counts;
          build_time = 0.;
        }
      in
      index.Index.entries <- entry :: index.Index.entries)
    metas roots;
  index

let load db ic =
  load_lines db (fun () -> try Some (input_line ic) with End_of_file -> None)

(* Split on '\n' lazily: replica hydration parses the same snapshot
   string once per worker, so avoid materialising a line list. *)
let load_string db s =
  let pos = ref 0 in
  let n = String.length s in
  let next_line () =
    if !pos >= n then None
    else begin
      let stop = match String.index_from_opt s !pos '\n' with Some i -> i | None -> n in
      let l = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some l
    end
  in
  load_lines db next_line

(* -- deltas ----------------------------------------------------------------- *)

(* The incremental companion to the snapshot format: the row-level
   mutations applied to the master since a base snapshot epoch.  A
   replica hydrated from the base snapshot (or already caught up to
   some epoch inside the window) replays the suffix of ops against its
   own private entries instead of re-parsing a whole snapshot — see
   {!Replica}.  Deltas carry only row traffic: any structural change
   (entry add/remove/rebuild/defer, level recycle) invalidates the
   window and forces a full snapshot, which is what keeps replay
   trivially equivalent to full hydration. *)

type delta_op =
  | Delta_insert of string * int array
  | Delta_delete of string * int array

let delta_magic = "fcv-delta 1"

let save_delta ~base ~to_ ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf delta_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "window %d %d %d\n" base to_ (List.length ops));
  List.iter
    (fun op ->
      let tag, table, row =
        match op with
        | Delta_insert (t, r) -> ("i", t, r)
        | Delta_delete (t, r) -> ("d", t, r)
      in
      Buffer.add_string buf tag;
      Buffer.add_char buf ' ';
      Buffer.add_string buf table;
      Array.iter
        (fun c ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int c))
        row;
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf

let load_delta s =
  let lines = String.split_on_char '\n' s in
  let words l = String.split_on_char ' ' (String.trim l) |> List.filter (( <> ) "") in
  match lines with
  | magic :: header :: rest ->
    if String.trim magic <> delta_magic then fail "bad delta magic";
    let base, to_, count =
      match words header with
      | [ "window"; b; t; n ] -> (int_of_string b, int_of_string t, int_of_string n)
      | _ -> fail "expected delta window"
    in
    let ops =
      List.filter_map
        (fun l ->
          match words l with
          | [] -> None
          | tag :: table :: codes ->
            let row = Array.of_list (List.map int_of_string codes) in
            (match tag with
            | "i" -> Some (Delta_insert (table, row))
            | "d" -> Some (Delta_delete (table, row))
            | _ -> fail "unknown delta op %S" tag)
          | _ -> fail "malformed delta line %S" l)
        rest
    in
    if List.length ops <> count then fail "delta op count mismatch";
    (base, to_, ops)
  | _ -> fail "truncated delta"

(** Replay row ops against [index]'s entries only — never the base
    tables, which a replica shares with the (already-updated) master.
    @raise Index.Needs_rebuild when an op falls outside an entry's
    frozen capacity; callers fall back to full hydration. *)
let apply_delta index ops =
  List.iter
    (fun op ->
      let insert, table_name, row =
        match op with
        | Delta_insert (t, r) -> (true, t, r)
        | Delta_delete (t, r) -> (false, t, r)
      in
      List.iter
        (fun e -> Index.update_entry index e ~insert row)
        (Index.entries_for index table_name))
    ops

let save_file index path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save index oc)

let load_file db path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load db ic)
