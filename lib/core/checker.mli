(** The end-to-end constraint checker: typing → §4.4 rewrites →
    compilation to BDD operations over the logical indices → O(1)
    verdict off the final BDD — falling back to the SQL violation
    query (or, outside the safe fragment, the naive evaluator) when
    the node budget trips. *)

type method_used = Bdd | Sql | Naive

val method_name : method_used -> string

type strategy =
  | Auto
      (** the paper's thresholding: try the BDD pipeline, fall back to
          SQL when the node budget trips *)
  | Force_bdd
      (** insist on the BDD pipeline; still budget-guarded — a trip
          falls back rather than losing the verdict, so this is the
          thresholding behaviour under another name, kept distinct for
          planner probes and ablations *)
  | Force_sql
      (** straight to the SQL violation query (naive evaluator outside
          the safe fragment), paying no abandoned BDD attempt *)

val strategy_name : strategy -> string

type outcome = Satisfied | Violated

type rate = {
  violations : Fcv_bdd.Nat.t;  (** bindings falsifying the body *)
  total : Fcv_bdd.Nat.t;  (** bindings satisfying the hypothesis *)
  ratio : float;  (** violations / total; [0.] when [total] is zero *)
  threshold : float;
}
(** The measured violation rate of a soft (thresholded) check.  The
    counts are exact ({!Fcv_bdd.Nat}); [ratio] is their correctly
    rounded float quotient, for display — the verdict itself never
    goes through float arithmetic. *)

type result = {
  outcome : outcome;
  method_used : method_used;
  elapsed_ms : float;
  bdd_overhead_ms : float;
      (** cost of the abandoned BDD attempt when a fallback ran — the
          paper's "constant overhead" of the thresholding strategy *)
  fallback_ms : float;
      (** time spent in the fallback engine after a budget trip; [0.]
          when no trip occurred — in particular [0.] when the SQL path
          was chosen up-front ([Force_sql]), which pays neither the
          abandoned attempt nor a "fallback" *)
  rewritten : Formula.t;
  check : Rewrite.check;
  rate : rate option;
      (** measured violation rate; [Some] exactly on soft checks
          ({!check_spec} with threshold < 1), [None] on every hard
          check — the classical path is byte-for-byte unchanged *)
}

type polarity = Direct | Violation
(** [Violation] (default) compiles nnf(¬matrix) and tests
    unsatisfiability — negation sits on small sparse atom BDDs and ∧
    short-circuits.  [Direct] compiles the matrix and tests
    validity. *)

type pipeline = {
  rewrite : Formula.t -> Rewrite.check * Formula.t;
  use_appquant : bool;
  polarity : polarity;
  use_fd_fast_path : bool;
      (** route FD-shaped constraints to {!Fd_check.fd_holds} (the
          Fig. 5(b) projection-count method) instead of compiling the
          self-join *)
}

val default_pipeline : pipeline
(** Full §4.4 rewrites, fused quantifiers, violation polarity. *)

val direct_pipeline : pipeline
(** Full rewrites, direct validity test (polarity ablation). *)

val naive_pipeline : pipeline
(** No rewrites, unfused quantifiers (rewrite ablation). *)

val check : ?pipeline:pipeline -> ?strategy:strategy -> Index.t -> Formula.t -> result
(** Check one closed constraint.  Every mentioned relation needs a
    covering index ({!ensure_indices}).  [strategy] (default [Auto])
    picks the engine: the planner ({!Planner}) passes [Force_sql] for
    constraints it expects to trip the budget, skipping the abandoned
    BDD attempt entirely.  Verdicts are strategy-independent.
    @raise Invalid_argument on open formulas.
    @raise Typing.Type_error on ill-typed constraints. *)

val clears :
  threshold:float -> violations:Fcv_bdd.Nat.t -> total:Fcv_bdd.Nat.t -> bool
(** Exact threshold test: does the satisfied fraction
    [(total − violations) / total] reach [threshold]?  The threshold
    is read off its float representation as a dyadic rational P/2^k
    and the comparison runs entirely in {!Fcv_bdd.Nat} arithmetic — a
    near-threshold count cannot round across the verdict boundary.  A
    zero [total] holds vacuously. *)

val check_spec :
  ?pipeline:pipeline -> ?strategy:strategy -> Index.t -> Formula.spec -> result
(** Check one constraint spec.  Hard specs ([threshold = 1.0]) take
    exactly the {!check} path — verdict, method choice and planner
    behavior are unchanged — and report [rate = None].  Soft specs
    compute exact violation/support counts over the violation BDD (FD
    projection counts on FD-shaped constraints) and compare the
    satisfied fraction against the threshold in arbitrary precision
    ({!clears}); [result.rate] carries the measurement.  A soft spec
    planned to [Force_sql], or whose BDD attempt trips the node
    budget, recounts with {!Naive_eval.soft_counts}. *)

val check_all :
  ?pipeline:pipeline ->
  ?jobs:int ->
  ?strategies:strategy list ->
  Index.t ->
  Formula.t list ->
  result list
(** Check a batch, in order.  [jobs > 1] (default 1) fans out over a
    transient pool of worker domains, each with a private replica of
    [index] ({!Replica}); verdicts are identical to the sequential
    run.  Singleton and empty batches always run sequentially.
    [strategies] gives one {!strategy} per constraint (default all
    [Auto]).
    @raise Invalid_argument if [strategies] has the wrong length. *)

type granularity = {
  batch_under_ms : float;
      (** constraints cheaper than this are chunked into one task *)
  max_batch : int;  (** at most this many constraints per chunk *)
  split_over_ms : float;
      (** constraints dearer than this are split into conjunct tasks *)
  max_parts : int;  (** split only into at most this many parts *)
}
(** Task-granularity policy for {!check_all_pooled}: batching keeps
    task bookkeeping from dominating tiny checks; splitting keeps one
    monster conjunction from serialising a pass. *)

val default_granularity : granularity
(** 5ms batch threshold × 8-wide chunks; 250ms split threshold ×
    8 parts. *)

val cost_estimate : Index.t -> Formula.t -> float
(** Rough per-constraint check cost in milliseconds, from index node
    counts and formula size.  Only the relative order matters; prefer
    measured history when available. *)

val split_conjuncts : Formula.t -> Formula.t list
(** Independent conjunct parts of a constraint, by
    [∀xs.(A ∧ B) ≡ (∀xs.A) ∧ (∀xs.B)] — each part keeps the full
    quantifier prefix, and a [Forall] splits only when every part
    still mentions every prefix variable.  [[f]] when nothing
    splits. *)

val check_all_pooled :
  ?pipeline:pipeline ->
  ?granularity:granularity ->
  ?costs:float option list ->
  ?strategies:strategy list ->
  pool:Fcv_util.Pool.t ->
  Replica.t ->
  Formula.t list ->
  result list
(** [check_all] against a caller-owned pool and replica set — the
    long-running form (server, monitor) that amortises worker spawn
    and replica hydration across batches.  Every mentioned relation
    must already be indexed in the replica master.

    Tasks run expensive-first through the pool's claimed-batch
    scheduler; per-constraint costs come from [costs] (measured
    milliseconds, [None] entries estimated) or {!cost_estimate}, and
    [granularity] (default {!default_granularity}) controls chunking
    of tiny constraints and conjunct-splitting of huge ones.  A split
    constraint's merged result is [Satisfied] iff every part is, with
    summed times; verdicts are identical to the sequential run either
    way.  [strategies] gives one {!strategy} per constraint (default
    all [Auto]); a split or chunked constraint keeps its strategy.
    @raise Invalid_argument if [costs] or [strategies] is given with
    the wrong length. *)

val ensure_indices : ?strategy:Ordering.strategy -> Index.t -> Formula.t list -> unit
(** Build missing full-attribute indices for every mentioned relation
    (default strategy: Prob-Converge, the paper's recommendation). *)

val check_sql : Fcv_relation.Database.t -> Formula.t -> outcome * float
(** The SQL-only baseline: translate to the violation query, run it,
    report the verdict and elapsed milliseconds. *)
