(** Static checks on constraints: every atom matches its relation's
    arity, every variable is used consistently at positions of a single
    domain, every quantified variable gets a domain, and comparisons
    stay within one domain.  The inferred variable → domain map drives
    block allocation in {!Compile} and quantifier ranges in
    {!Naive_eval}. *)

module R = Fcv_relation
open Formula

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type env = (string, string) Hashtbl.t
(** variable name → domain name *)

let unify env x domain =
  match Hashtbl.find_opt env x with
  | None -> Hashtbl.replace env x domain
  | Some d when d = domain -> ()
  | Some d -> fail "variable %s used at domains %s and %s" x d domain

(** Infer the variable typing of [f] against [db].
    @raise Type_error on arity or domain inconsistencies. *)
let infer db f =
  let env : env = Hashtbl.create 16 in
  (* Equalities between two variables are unifiable only once one side
     is known; iterate to a fixpoint over pending constraints. *)
  let pending_eqs = ref [] in
  let rec go = function
    | True | False -> ()
    | Atom (r, terms) ->
      let table =
        match R.Database.table_opt db r with
        | Some t -> t
        | None -> fail "unknown relation %s" r
      in
      let schema = R.Table.schema table in
      if List.length terms <> R.Schema.arity schema then
        fail "relation %s expects %d terms, got %d" r (R.Schema.arity schema)
          (List.length terms);
      List.iteri
        (fun i t ->
          match t with
          | Var x -> unify env x (R.Schema.domain_of schema i)
          | Const _ | Wildcard -> ())
        terms
    | Eq (Var x, Var y) -> pending_eqs := (x, y) :: !pending_eqs
    | Eq (Var _, Const _) | Eq (Const _, Var _) -> ()
    | Eq (Const _, Const _) -> ()
    | Eq (Wildcard, _) | Eq (_, Wildcard) -> fail "wildcard in equality"
    | In (Var _, _) -> ()
    | In (Const _, _) -> ()
    | In (Wildcard, _) -> fail "wildcard in membership test"
    | Not g -> go g
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      go a;
      go b
    | Exists (xs, g) | Forall (xs, g) ->
      List.iter
        (fun x -> if x = "_" then fail "'_' cannot be quantified") xs;
      go g
  in
  go f;
  (* propagate domains across variable equalities *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, y) ->
        match (Hashtbl.find_opt env x, Hashtbl.find_opt env y) with
        | Some dx, None ->
          Hashtbl.replace env y dx;
          changed := true
        | None, Some dy ->
          Hashtbl.replace env x dy;
          changed := true
        | Some dx, Some dy when dx <> dy ->
          fail "equality between distinct domains %s and %s" dx dy
        | _ -> ())
      !pending_eqs
  done;
  (* every quantified variable must have been grounded somewhere *)
  let rec check_quantified = function
    | True | False | Atom _ | Eq _ | In _ -> ()
    | Not g -> check_quantified g
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      check_quantified a;
      check_quantified b
    | Exists (xs, g) | Forall (xs, g) ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem env x) then
            fail "cannot infer a domain for quantified variable %s" x)
        xs;
      check_quantified g
  in
  check_quantified f;
  env

(** {!infer} on a spec's formula, after validating the threshold: a
    holding fraction only makes sense in (0, 1] (and [nan] must not
    slip into verdict comparisons). *)
let infer_spec db (s : Formula.spec) =
  if not (s.threshold > 0. && s.threshold <= 1.) then
    fail "threshold %g out of range (0, 1]" s.threshold;
  infer db s.formula

(** Domain of variable [x] under a typing. *)
let domain_of env x =
  match Hashtbl.find_opt env x with
  | Some d -> d
  | None -> fail "untyped variable %s" x
