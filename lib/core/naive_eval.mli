(** Reference semantics: direct first-order evaluation (quantifiers
    loop over active domains, atoms scan base tables).  Exponential in
    quantifier depth — the test suite's ground truth and the
    last-resort fallback outside the safe-SQL fragment. *)

val holds : ?typing:Typing.env -> Fcv_relation.Database.t -> Formula.t -> bool
(** Evaluate a closed formula. *)

val violating_bindings :
  ?typing:Typing.env ->
  Fcv_relation.Database.t ->
  Formula.t ->
  (string * Fcv_relation.Value.t) list list
(** All bindings of a top-level ∀ block under which the body fails.
    @raise Invalid_argument unless the formula is a top-level
    [Forall]. *)

val soft_counts : ?typing:Typing.env -> Fcv_relation.Database.t -> Formula.t -> int * int
(** Exact [(violations, total)] binding counts over the leading
    ∀-block (nested blocks collected): [total] counts bindings
    satisfying the outermost hypothesis ([True] when the stripped body
    is not an implication), [violations] those falsifying the body.
    The differential ground truth for the BDD soft counts, and the
    checker's last-resort fallback.  No leading ∀ gets 0/1 semantics:
    [(0, 1)] if the formula holds, [(1, 1)] otherwise. *)
