(** Reference semantics: direct first-order evaluation (quantifiers
    loop over active domains, atoms scan base tables).  Exponential in
    quantifier depth — the test suite's ground truth and the
    last-resort fallback outside the safe-SQL fragment. *)

val holds : ?typing:Typing.env -> Fcv_relation.Database.t -> Formula.t -> bool
(** Evaluate a closed formula. *)

val violating_bindings :
  ?typing:Typing.env ->
  Fcv_relation.Database.t ->
  Formula.t ->
  (string * Fcv_relation.Value.t) list list
(** All bindings of a top-level ∀ block under which the body fails.
    @raise Invalid_argument unless the formula is a top-level
    [Forall]. *)
