(** Cost-based adaptive strategy planner: estimate the BDD-pipeline
    and SQL-plan cost per constraint from index statistics blended
    with measured history, cache the decision, and learn online from
    every result.  See the interface for the full contract. *)

module T = Fcv_util.Telemetry
module R = Fcv_relation

type choice = Use_bdd | Use_sql

let choice_name = function Use_bdd -> "BDD" | Use_sql -> "SQL"

type node = {
  op : string;
  detail : string;
  est_ms : float;
  actual_ms : float option;
  chosen : bool;
  children : node list;
}

type plan = {
  choice : choice;
  strategy : Checker.strategy;
  est_bdd_ms : float;
  est_sql_ms : float;
  cost_ms : float;
  reason : string;
  probe : bool;
  tree : node;
}

type config = {
  ewma_alpha : float;
  trip_demote : int;
  probe_every : int;
  drift_band : float;
}

let default_config =
  { ewma_alpha = 0.3; trip_demote = 2; probe_every = 16; drift_band = 2.0 }

(* Per-constraint state: method EWMAs, trip evidence, probe clock and
   the cached plan.  Keyed by the printed formula, so syntactically
   equal constraints share history. *)
type hist = {
  mutable bdd_ms : float;
  mutable bdd_n : int;
  mutable sql_ms : float;
  mutable sql_n : int;
  mutable consec_trips : int;
  mutable total_trips : int;
  mutable since_probe : int;
  mutable planned : bool;  (** a later recomputation is a replan, not a miss *)
  mutable cached : cached option;
}

and cached = {
  version : int;  (** {!Index.t.structure_version} at plan time *)
  fingerprint : float;  (** data-size fingerprint at plan time *)
  model_bdd : float;  (** model-only estimates, for flip detection *)
  model_sql : float;
  cplan : plan;
}

(* Both statistics walk the entry BDD — O(nodes) each — so they are
   memoized per (structure_version, root).  A mutation that really
   changes an entry changes its root (hash-consing), a manager swap
   bumps the version; either retires the stale key naturally. *)
type stats_memo = {
  m_size : (int * int, int) Hashtbl.t;
  m_sat : (int * int, float) Hashtbl.t;
}

let stats_memo () = { m_size = Hashtbl.create 64; m_sat = Hashtbl.create 64 }

type t = {
  cfg : config;
  tbl : (string, hist) Hashtbl.t;
  memo : stats_memo;
  mutable hits : int;
  mutable misses : int;
  mutable probes : int;
  mutable replans : int;
}

type stats = { hits : int; misses : int; probes : int; replans : int }

let create ?(config = default_config) () =
  {
    cfg = config;
    tbl = Hashtbl.create 32;
    memo = stats_memo ();
    hits = 0;
    misses = 0;
    probes = 0;
    replans = 0;
  }

let config t = t.cfg

let stats (t : t) =
  { hits = t.hits; misses = t.misses; probes = t.probes; replans = t.replans }

let invalidate t = Hashtbl.iter (fun _ h -> h.cached <- None) t.tbl

let hist t key =
  match Hashtbl.find_opt t.tbl key with
  | Some h -> h
  | None ->
    let h =
      {
        bdd_ms = 0.;
        bdd_n = 0;
        sql_ms = 0.;
        sql_n = 0;
        consec_trips = 0;
        total_trips = 0;
        since_probe = 0;
        planned = false;
        cached = None;
      }
    in
    Hashtbl.replace t.tbl key h;
    h

(* -- cost model ------------------------------------------------------------- *)

(* Index statistics over the relations a formula mentions: total entry
   node count, total block width (bits, which grows with domain size),
   and total sat-count (distinct indexed rows, via Sat.count_over on
   each entry's own levels). *)
let memoized tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.replace tbl key v;
    v

let entry_key index (e : Index.entry) = (index.Index.structure_version, e.Index.root)

let entry_size ?memo index (e : Index.entry) =
  match memo with
  | None -> Index.entry_size index e
  | Some m -> memoized m.m_size (entry_key index e) (fun () -> Index.entry_size index e)

let entry_sat ?memo index (e : Index.entry) =
  let count () =
    let levels =
      Array.concat
        (Array.to_list (Array.map (fun b -> b.Fcv_bdd.Fd.levels) e.Index.blocks))
    in
    Array.sort compare levels;
    try Fcv_bdd.Sat.count_over (Index.mgr index) e.Index.root ~levels
    with Invalid_argument _ -> 0.
  in
  match memo with
  | None -> count ()
  | Some m -> memoized m.m_sat (entry_key index e) count

let index_terms ?memo index f =
  List.fold_left
    (fun (nodes, bits, sat) rel ->
      List.fold_left
        (fun (nodes, bits, sat) (e : Index.entry) ->
          let w =
            Array.fold_left (fun a b -> a + Fcv_bdd.Fd.width b) 0 e.Index.blocks
          in
          (nodes + entry_size ?memo index e, bits + w, sat +. entry_sat ?memo index e))
        (nodes, bits, sat)
        (Index.entries_for index rel))
    (0, 0, 0.) (Formula.relations f)

let cardinality db rel =
  match R.Database.table_opt db rel with
  | Some tbl -> float_of_int (R.Table.cardinality tbl)
  | None -> 0.

(* Coefficients are rough milliseconds calibrated to the same scale as
   {!Checker.cost_estimate}; only the relative order of the two sides
   matters initially, and the EWMA blend corrects both quickly. *)
let c_fixed = 0.02
let c_node = 0.0012
let c_atom = 0.04
let c_bit = 0.004
let c_sat = 0.00002

let fd_fast_path_available index f =
  let db = index.Index.db in
  match Fd_check.recognize_fd db f with
  | Some (table_name, lhs, rhs) -> (
    let schema = R.Table.schema (R.Database.table db table_name) in
    match
      List.map (R.Schema.position schema) (rhs :: lhs)
    with
    | needed -> (
      match Index.find_covering index ~table_name ~needed with
      | Some _ -> Some (table_name, lhs, rhs)
      | None -> None)
    | exception _ -> None)
  | None -> None

let estimate_bdd_ms ?memo index f =
  let nodes, bits, sat = index_terms ?memo index f in
  let atoms = Formula.atom_count f in
  match fd_fast_path_available index f with
  | Some _ ->
    (* Fig. 5(b): two projections + counts over the existing index BDD
       — far cheaper than compiling the self-join, but still monotone
       in node count and width *)
    c_fixed
    +. (0.3 *. c_node *. float_of_int nodes)
    +. (0.5 *. c_bit *. float_of_int bits)
    +. (c_sat *. sat)
  | None ->
    c_fixed
    +. (c_node *. float_of_int nodes)
    +. (c_atom *. float_of_int atoms)
    +. (c_bit *. float_of_int bits)
    +. (c_sat *. sat)

let estimate_sql_ms index f =
  let db = index.Index.db in
  let rels = Formula.relations f in
  let cards = List.map (cardinality db) rels in
  let scan = List.fold_left ( +. ) 0. cards in
  let atoms = Formula.atom_count f in
  let join =
    (* a crude join term: the product of the two largest scans (the
       same one twice for a self-join), capped so estimates stay
       finite and comparable *)
    if atoms <= 1 then 0.
    else
      let sorted = List.sort (fun a b -> compare b a) cards in
      let a = match sorted with x :: _ -> x | [] -> 0. in
      let b = match sorted with _ :: y :: _ -> y | _ -> a in
      Float.min 1e9 (a *. b)
  in
  0.05 +. (0.002 *. scan) +. (1.5e-6 *. join)

(* Data-size fingerprint: entry nodes + base cardinalities over the
   formula's relations.  Drift beyond the band invalidates the cached
   plan; shrinking below 1/band also forgets trip evidence. *)
let fingerprint ?memo index f =
  List.fold_left
    (fun acc rel ->
      let acc =
        List.fold_left
          (fun a e -> a +. float_of_int (entry_size ?memo index e))
          acc (Index.entries_for index rel)
      in
      acc +. cardinality index.Index.db rel)
    0. (Formula.relations f)

let within_band cfg now was =
  if was <= 0. then now <= 0.
  else
    let r = now /. was in
    r <= cfg.drift_band && r >= 1. /. cfg.drift_band

(* -- decision --------------------------------------------------------------- *)

let blend ~model ~measured ~n =
  if n <= 0 then model
  else
    let w = Float.min 0.85 (float_of_int n /. float_of_int (n + 1)) in
    ((1. -. w) *. model) +. (w *. measured)

let decide cfg h ~model_bdd ~model_sql =
  let est_bdd = blend ~model:model_bdd ~measured:h.bdd_ms ~n:h.bdd_n in
  let est_sql = blend ~model:model_sql ~measured:h.sql_ms ~n:h.sql_n in
  if h.consec_trips >= cfg.trip_demote then
    ( Use_sql,
      Printf.sprintf "%d consecutive budget trips — planned straight to SQL"
        h.consec_trips,
      est_bdd, est_sql )
  else if est_bdd <= est_sql then
    (Use_bdd, Printf.sprintf "est BDD %.3f ms <= est SQL %.3f ms" est_bdd est_sql,
     est_bdd, est_sql)
  else
    (Use_sql, Printf.sprintf "est SQL %.3f ms < est BDD %.3f ms" est_sql est_bdd,
     est_bdd, est_sql)

(* -- plan trees ------------------------------------------------------------- *)

let leaf ?(detail = "") ?actual ~chosen op est =
  { op; detail; est_ms = est; actual_ms = actual; chosen; children = [] }

let make_tree ?memo index f h ~choice ~est_bdd ~est_sql =
  let db = index.Index.db in
  let bdd_chosen = choice = Use_bdd in
  let atoms = Formula.atom_count f in
  let scan_nodes chosen =
    List.concat_map
      (fun rel ->
        List.map
          (fun (e : Index.entry) ->
            let w =
              Array.fold_left (fun a b -> a + Fcv_bdd.Fd.width b) 0 e.Index.blocks
            in
            let nodes = entry_size ?memo index e in
            leaf ~chosen "index-scan"
              ~detail:(Printf.sprintf "%s (nodes=%d, bits=%d)" rel nodes w)
              (c_node *. float_of_int nodes))
          (Index.entries_for index rel))
      (Formula.relations f)
  in
  let head =
    match fd_fast_path_available index f with
    | Some (table, lhs, rhs) ->
      leaf ~chosen:bdd_chosen "fd-fast-path"
        ~detail:(Printf.sprintf "%s: %s -> %s" table (String.concat "," lhs) rhs)
        (0.5 *. est_bdd)
    | None ->
      leaf ~chosen:bdd_chosen "rewrite+compile"
        ~detail:(Printf.sprintf "atoms=%d" atoms)
        (0.8 *. est_bdd)
  in
  let bdd_branch =
    {
      op = "bdd-pipeline";
      detail = "";
      est_ms = est_bdd;
      actual_ms = (if h.bdd_n > 0 then Some h.bdd_ms else None);
      chosen = bdd_chosen;
      children =
        (head :: scan_nodes bdd_chosen) @ [ leaf ~chosen:bdd_chosen "verdict" ~detail:"O(1)" 0. ];
    }
  in
  let sql_scans =
    List.map
      (fun rel ->
        leaf ~chosen:(not bdd_chosen) "seq-scan"
          ~detail:(Printf.sprintf "%s (rows=%.0f)" rel (cardinality db rel))
          (0.002 *. cardinality db rel))
      (Formula.relations f)
  in
  let sql_branch =
    {
      op = "sql-violation-query";
      detail = "";
      est_ms = est_sql;
      actual_ms = (if h.sql_n > 0 then Some h.sql_ms else None);
      chosen = not bdd_chosen;
      children =
        (if atoms > 1 then
           {
             op = "join";
             detail = Printf.sprintf "atoms=%d" atoms;
             est_ms = est_sql;
             actual_ms = None;
             chosen = not bdd_chosen;
             children = sql_scans;
           }
           :: []
         else sql_scans);
    }
  in
  let chosen_est = if bdd_chosen then est_bdd else est_sql in
  let chosen_actual =
    if bdd_chosen then (if h.bdd_n > 0 then Some h.bdd_ms else None)
    else if h.sql_n > 0 then Some h.sql_ms
    else None
  in
  {
    op = "constraint";
    detail = Formula.to_string f;
    est_ms = chosen_est;
    actual_ms = chosen_actual;
    chosen = true;
    children = [ bdd_branch; sql_branch ];
  }

let make_plan ?memo index f h ~choice ~reason ~est_bdd ~est_sql ~probe =
  {
    choice;
    strategy = (match choice with Use_bdd -> Checker.Auto | Use_sql -> Checker.Force_sql);
    est_bdd_ms = est_bdd;
    est_sql_ms = est_sql;
    cost_ms = (match choice with Use_bdd -> est_bdd | Use_sql -> est_sql);
    reason;
    probe;
    tree = make_tree ?memo index f h ~choice ~est_bdd ~est_sql;
  }

(* A cached plan's tree froze its actual_ms annotations at plan time;
   re-stamp the branch (and root) actuals from the live history so a
   cache hit still reports what the last runs measured. *)
let refresh_actuals h p =
  let bdd_a = if h.bdd_n > 0 then Some h.bdd_ms else None in
  let sql_a = if h.sql_n > 0 then Some h.sql_ms else None in
  let branch n =
    match n.op with
    | "bdd-pipeline" -> { n with actual_ms = bdd_a }
    | "sql-violation-query" -> { n with actual_ms = sql_a }
    | _ -> n
  in
  let tree =
    {
      p.tree with
      actual_ms = (if p.choice = Use_bdd then bdd_a else sql_a);
      children = List.map branch p.tree.children;
    }
  in
  { p with tree }

(* -- planning --------------------------------------------------------------- *)

let c_hit = T.counter "planner.hit"
let c_miss = T.counter "planner.miss"
let c_probe = T.counter "planner.probe"
let c_replans = T.counter "planner.replans"

let plan t index f =
  let h = hist t (Formula.to_string f) in
  let version = index.Index.structure_version in
  let fp = fingerprint ~memo:t.memo index f in
  let recompute () =
    (* re-promotion: the watched data shrank well below what tripped
       the budget, so the trip evidence (and the stale BDD timing it
       came with) no longer describes this constraint *)
    (match h.cached with
    | Some c when fp < c.fingerprint /. t.cfg.drift_band ->
      h.consec_trips <- 0;
      h.bdd_n <- 0
    | _ -> ());
    let model_bdd = estimate_bdd_ms ~memo:t.memo index f in
    let model_sql = estimate_sql_ms index f in
    let choice, reason, est_bdd, est_sql = decide t.cfg h ~model_bdd ~model_sql in
    let p = make_plan ~memo:t.memo index f h ~choice ~reason ~est_bdd ~est_sql ~probe:false in
    if h.planned then begin
      t.replans <- t.replans + 1;
      T.incr c_replans
    end
    else begin
      t.misses <- t.misses + 1;
      T.incr c_miss
    end;
    h.planned <- true;
    h.cached <- Some { version; fingerprint = fp; model_bdd; model_sql; cplan = p };
    p
  in
  match h.cached with
  | Some c when c.version = version && within_band t.cfg fp c.fingerprint ->
    if c.cplan.choice = Use_sql && h.since_probe >= t.cfg.probe_every then begin
      (* ε-probe: run the guarded BDD pipeline once so the BDD-side
         estimate tracks reality; the cached SQL plan stays *)
      h.since_probe <- 0;
      t.probes <- t.probes + 1;
      T.incr c_probe;
      refresh_actuals h
        {
          c.cplan with
          choice = Use_bdd;
          strategy = Checker.Auto;
          cost_ms = c.cplan.est_bdd_ms;
          reason = "ε-probe: re-measuring the BDD pipeline";
          probe = true;
        }
    end
    else begin
      if c.cplan.choice = Use_sql then h.since_probe <- h.since_probe + 1;
      t.hits <- t.hits + 1;
      T.incr c_hit;
      refresh_actuals h c.cplan
    end
  | _ -> recompute ()

let ewma alpha old n x = if n <= 0 then x else (alpha *. x) +. ((1. -. alpha) *. old)

let observe t f (r : Checker.result) =
  let h = hist t (Formula.to_string f) in
  let cfg = t.cfg in
  let note_bdd x =
    h.bdd_ms <- ewma cfg.ewma_alpha h.bdd_ms h.bdd_n x;
    h.bdd_n <- h.bdd_n + 1
  in
  let note_sql x =
    h.sql_ms <- ewma cfg.ewma_alpha h.sql_ms h.sql_n x;
    h.sql_n <- h.sql_n + 1
  in
  (match r.Checker.method_used with
  | Checker.Bdd ->
    note_bdd r.Checker.elapsed_ms;
    h.consec_trips <- 0
  | Checker.Sql | Checker.Naive ->
    if r.Checker.bdd_overhead_ms > 0. then begin
      (* a budget-tripping fallback: choosing BDD actually cost the
         abandoned attempt plus the fallback it forced *)
      h.consec_trips <- h.consec_trips + 1;
      h.total_trips <- h.total_trips + 1;
      note_bdd (r.Checker.bdd_overhead_ms +. r.Checker.elapsed_ms);
      note_sql r.Checker.elapsed_ms
    end
    else note_sql r.Checker.elapsed_ms);
  (* decision-flip invalidation: if the fresh evidence reverses the
     cached choice, drop the plan so the next [plan] re-decides *)
  match h.cached with
  | Some c ->
    let choice, _, _, _ = decide cfg h ~model_bdd:c.model_bdd ~model_sql:c.model_sql in
    if choice <> c.cplan.choice then h.cached <- None
  | None -> ()

let check_all ?pipeline ?jobs t index fs =
  let strategies = List.map (fun f -> (plan t index f).strategy) fs in
  let results = Checker.check_all ?pipeline ?jobs ~strategies index fs in
  List.iter2 (fun f r -> observe t f r) fs results;
  results

(* -- rendering -------------------------------------------------------------- *)

let render p =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "Plan: %s\n" p.tree.detail);
  Buffer.add_string b
    (Printf.sprintf "Strategy: %s%s  (est bdd=%.3f ms, est sql=%.3f ms) — %s\n"
       (choice_name p.choice)
       (if p.probe then " [probe]" else "")
       p.est_bdd_ms p.est_sql_ms p.reason);
  let rec go prefix is_last n =
    Buffer.add_string b
      (Printf.sprintf "%s%s %s%s  (est=%.3f ms%s)%s\n" prefix
         (if is_last then "└─" else "├─")
         n.op
         (if n.detail = "" then "" else " " ^ n.detail)
         n.est_ms
         (match n.actual_ms with
         | Some a -> Printf.sprintf ", last actual=%.3f ms" a
         | None -> "")
         (if n.chosen then "  [chosen]" else ""));
    let child_prefix = prefix ^ if is_last then "   " else "│  " in
    let rec each = function
      | [] -> ()
      | [ c ] -> go child_prefix true c
      | c :: rest ->
        go child_prefix false c;
        each rest
    in
    each n.children
  in
  (let rec each = function
     | [] -> ()
     | [ c ] -> go "" true c
     | c :: rest ->
       go "" false c;
       each rest
   in
   each p.tree.children);
  Buffer.contents b

let rec node_json n =
  T.Obj
    [
      ("op", T.String n.op);
      ("detail", T.String n.detail);
      ("est_ms", T.Float n.est_ms);
      ( "last_actual_ms",
        match n.actual_ms with Some a -> T.Float a | None -> T.Null );
      ("chosen", T.Bool n.chosen);
      ("children", T.List (List.map node_json n.children));
    ]

let plan_json p =
  T.Obj
    [
      ("choice", T.String (choice_name p.choice));
      ("strategy", T.String (Checker.strategy_name p.strategy));
      ("est_bdd_ms", T.Float p.est_bdd_ms);
      ("est_sql_ms", T.Float p.est_sql_ms);
      ("cost_ms", T.Float p.cost_ms);
      ("reason", T.String p.reason);
      ("probe", T.Bool p.probe);
      ("tree", node_json p.tree);
    ]

(* -- FD implication (Kenig–Suciu direction) --------------------------------- *)

type fd = { table : string; lhs : string list; rhs : string }

let fd_of db f =
  match Fd_check.recognize_fd db f with
  | Some (table, lhs, rhs) -> Some { table; lhs = List.sort_uniq compare lhs; rhs }
  | None -> None

module Sset = Set.Make (String)

let entails ~by fd =
  let same = List.filter (fun (_, f) -> f.table = fd.table) by in
  let closure = ref (Sset.of_list fd.lhs) in
  let used = ref [] in
  let changed = ref true in
  (* attribute closure of lhs under the registered FDs: augmentation is
     implicit (we start from the full lhs), transitivity is the
     fixpoint *)
  while !changed do
    changed := false;
    List.iter
      (fun (id, f) ->
        if
          (not (Sset.mem f.rhs !closure))
          && List.for_all (fun a -> Sset.mem a !closure) f.lhs
        then begin
          closure := Sset.add f.rhs !closure;
          used := id :: !used;
          changed := true
        end)
      same
  done;
  if Sset.mem fd.rhs !closure then Some (List.sort_uniq compare !used) else None
