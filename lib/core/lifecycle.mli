(** Memory-lifecycle policy for long-running index stores: decides
    when to garbage-collect the shared BDD manager
    ({!Index.compact}) and when to {e recycle} abandoned variable
    levels (dense rebuild through {!Index_io} into a fresh manager).
    Mechanism lives in {!Index} / {!Fcv_bdd.Manager}; this module is
    only the policy and the recycle orchestration.  Nothing here may
    run mid-check — node ids and levels are renumbered. *)

type policy = {
  dead_ratio_hi : float;
      (** GC when the dead-node fraction reaches this (0 disables) *)
  min_nodes : int;  (** never GC a manager smaller than this *)
  cache_hi : int;
      (** GC when total op-cache occupancy reaches this (0 disables) *)
  level_slack : int;
      (** recycle when this many levels are abandoned (0 disables) *)
  level_headroom : int;
      (** recycle when fewer than this many levels remain before the
          packing ceiling (0 disables) *)
}

val default_policy : policy
(** GC at 50% dead / half-full caches (≥ 4096 nodes); recycle at 128
    abandoned levels or within 64 of the 511-level ceiling. *)

val never : policy
(** Never fires — for disabling automatic reclamation. *)

val needs_gc : policy -> Index.t -> bool

val needs_recycle : policy -> Index.t -> bool
(** Also true whenever deferred rebuilds are queued — only a recycle
    can re-admit them. *)

val recycle : Index.t -> int
(** Rebuild the store into a fresh manager with dense level
    assignment (snapshot → hydrate), carrying budgets, strategies and
    lifetime accounting; replays deferred rebuilds; returns nodes
    reclaimed.  Callers must invalidate replicas and hold no node ids
    across the call. *)

type action = {
  recycled : bool;
      (** levels were renumbered — the caller must bump replica epochs *)
  gc_ran : bool;
      (** a collection ran; a {e pure} compact ([gc_ran] without
          [recycled]) renumbers only master-private node ids, which
          replicas never see, so it needs no invalidation *)
  reclaimed : int;
}

val no_action : action

val maybe_gc : ?policy:policy -> Index.t -> action
(** Run the policy once, between checks: recycle, else GC, else
    nothing.  Publishes telemetry gauges when anything ran.  Replica
    invalidation is the caller's job (needed iff
    [action.recycled]). *)
