(** Translation of constraints to relational-algebra {e violation
    queries} — the SQL baseline of the paper's experiments, and the
    fallback executed when BDD construction exceeds the node budget
    (§4's thresholding strategy).

    A constraint C is violated iff its violation formula ¬C is
    satisfiable; we put ¬C in negation normal form, strip the leading
    existential block (the violating witnesses) and translate the
    {b range-restricted} matrix into a plan producing the witness
    bindings: atoms become scans, conjunction becomes natural join,
    negative conjuncts become anti-joins, disjunction becomes union
    and ∃ becomes projection (the classical safe-FOL → algebra
    translation).  Formulas outside the safe fragment yield [None] and
    the checker falls back to direct evaluation. *)

module R = Fcv_relation
module A = Fcv_sql.Algebra
open Formula

exception Not_safe of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_safe s)) fmt

(** A translated sub-plan: [vars.(i)] is the variable produced in
    column [i]. *)
type tplan = { plan : A.plan; vars : string list }

let var_pos t x =
  let rec go i = function
    | [] -> None
    | y :: _ when y = x -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.vars

(* Natural join of two translated plans on their shared variables. *)
let natural_join a b =
  let shared = List.filter (fun x -> List.mem x a.vars) b.vars in
  let keys =
    List.map
      (fun x -> (Option.get (var_pos a x), Option.get (var_pos b x)))
      shared
  in
  let b_keep =
    List.filteri (fun _ x -> not (List.mem x a.vars)) b.vars
  in
  let keep_cols =
    List.filteri (fun _ x -> not (List.mem x a.vars)) b.vars
    |> List.map (fun x -> List.length a.vars + Option.get (var_pos b x))
  in
  let arity_a = List.length a.vars in
  let cols = Array.of_list (List.init arity_a Fun.id @ keep_cols) in
  { plan = A.Project (cols, A.Hash_join (keys, a.plan, b.plan)); vars = a.vars @ b_keep }

(* Anti-join: rows of [a] with no match in [b]; b's vars must be a
   subset of a's. *)
let anti_join a b =
  let keys = List.map (fun x -> (Option.get (var_pos a x), Option.get (var_pos b x))) b.vars in
  { plan = A.Anti_join (keys, a.plan, b.plan); vars = a.vars }

let translate_atom db rel terms =
  let table =
    match R.Database.table_opt db rel with
    | Some t -> t
    | None -> fail "unknown relation %s" rel
  in
  let terms = Array.of_list terms in
  let pred = ref A.True in
  let first_occurrence : (string, int) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun i t ->
      match t with
      | Wildcard -> ()
      | Const value -> (
        match R.Dict.code (R.Table.dict table i) value with
        | Some code -> pred := A.And (!pred, A.Eq_const (i, code))
        | None -> pred := A.False)
      | Var x -> (
        match Hashtbl.find_opt first_occurrence x with
        | Some j -> pred := A.And (!pred, A.Eq_col (j, i))
        | None -> Hashtbl.replace first_occurrence x i))
    terms;
  let vars =
    Array.to_list terms
    |> List.mapi (fun i t -> (i, t))
    |> List.filter_map (fun (i, t) ->
           match t with
           | Var x when Hashtbl.find_opt first_occurrence x = Some i -> Some (x, i)
           | _ -> None)
  in
  let cols = Array.of_list (List.map snd vars) in
  { plan = A.Project (cols, A.Select (!pred, A.Scan table)); vars = List.map fst vars }

(* Disjunctive normal form over the boolean skeleton: quantified
   subformulas and (negated) literals are leaves.  Distributing ∧ over
   ∨ lets a conjunction carry its positive conjuncts into every
   branch, which is what makes mixed positive/negative disjunctions
   range-restricted branch by branch. *)
let rec dnf = function
  | Or (a, b) -> dnf a @ dnf b
  | And (a, b) ->
    let das = dnf a and dbs = dnf b in
    List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) dbs) das
  | f -> [ [ f ] ]

(** Translate an NNF, range-restricted formula into a plan over its
    free variables.  @raise Not_safe outside the fragment. *)
let rec translate db typing f =
  match f with
  | Atom (rel, terms) -> translate_atom db rel terms
  | And _ | Or _ -> (
    match dnf f with
    | [] -> fail "empty disjunction"
    | [ parts ] -> translate_conjunction db typing parts
    | parts_list ->
      let branches = List.map (translate_conjunction db typing) parts_list in
      (match branches with
      | [] -> assert false
      | first :: rest ->
        List.fold_left
          (fun acc p ->
            if List.sort compare p.vars <> List.sort compare acc.vars then
              fail "disjuncts bind different variables";
            (* align p's columns with acc's variable order *)
            let cols =
              Array.of_list (List.map (fun x -> Option.get (var_pos p x)) acc.vars)
            in
            { plan = A.Union (acc.plan, A.Project (cols, p.plan)); vars = acc.vars })
          first rest))
  | Exists (xs, body) ->
    let t = translate db typing body in
    let keep = List.filter (fun x -> not (List.mem x xs)) t.vars in
    let cols = Array.of_list (List.map (fun x -> Option.get (var_pos t x)) keep) in
    { plan = A.Distinct (A.Project (cols, t.plan)); vars = keep }
  | Eq _ | In _ | Not _ | Forall _ | True | False ->
    (* a bare literal can still be translated when wrapped as a
       single-conjunct conjunction with something positive; alone it
       is not range-restricted *)
    fail "formula is not range-restricted: %s" (Formula.to_string f)
  | Implies _ | Iff _ ->
    fail "unexpected connective after NNF: %s" (Formula.to_string f)

and translate_conjunction db typing parts =
  (* positives generate bindings; Eq/In filter; negatives anti-join *)
  let is_positive = function Atom _ | And _ | Or _ | Exists _ -> true | _ -> false in
  let positives, rest = List.partition is_positive parts in
  if positives = [] then fail "conjunction has no positive (range-restricting) conjunct";
  let base =
    match List.map (translate db typing) positives with
    | [] -> assert false
    | first :: others -> List.fold_left natural_join first others
  in
  List.fold_left
    (fun acc part ->
      match part with
      | True -> acc
      | False -> { acc with plan = A.Select (A.False, acc.plan) }
      | Not True -> { acc with plan = A.Select (A.False, acc.plan) }
      | Not False -> acc
      | Eq (Var x, Var y) -> (
        match (var_pos acc x, var_pos acc y) with
        | Some i, Some j -> { acc with plan = A.Select (A.Eq_col (i, j), acc.plan) }
        | _ -> fail "equality over unbound variable")
      | Eq (Var x, Const value) | Eq (Const value, Var x) -> (
        match var_pos acc x with
        | Some i ->
          let dict = R.Database.domain db (Typing.domain_of typing x) in
          let pred =
            match R.Dict.code dict value with
            | Some code -> A.Eq_const (i, code)
            | None -> A.False
          in
          { acc with plan = A.Select (pred, acc.plan) }
        | None -> fail "equality over unbound variable")
      | Eq (Const a, Const b) ->
        if R.Value.equal a b then acc else { acc with plan = A.Select (A.False, acc.plan) }
      | In (Var x, values) -> (
        match var_pos acc x with
        | Some i ->
          let dict = R.Database.domain db (Typing.domain_of typing x) in
          let codes = List.filter_map (R.Dict.code dict) values in
          let pred = if codes = [] then A.False else A.In_set (i, codes) in
          { acc with plan = A.Select (pred, acc.plan) }
        | None -> fail "membership over unbound variable")
      | In (Const v, values) ->
        if List.exists (R.Value.equal v) values then acc
        else { acc with plan = A.Select (A.False, acc.plan) }
      | Not inner -> (
        match inner with
        | Eq (Var x, Var y) -> (
          match (var_pos acc x, var_pos acc y) with
          | Some i, Some j ->
            { acc with plan = A.Select (A.Not (A.Eq_col (i, j)), acc.plan) }
          | _ -> fail "negated equality over unbound variable")
        | Eq (Var x, Const value) | Eq (Const value, Var x) -> (
          match var_pos acc x with
          | Some i ->
            let dict = R.Database.domain db (Typing.domain_of typing x) in
            let pred =
              match R.Dict.code dict value with
              | Some code -> A.Not (A.Eq_const (i, code))
              | None -> A.True
            in
            { acc with plan = A.Select (pred, acc.plan) }
          | None -> fail "negated equality over unbound variable")
        | In (Var x, values) -> (
          match var_pos acc x with
          | Some i ->
            let dict = R.Database.domain db (Typing.domain_of typing x) in
            let codes = List.filter_map (R.Dict.code dict) values in
            let pred = if codes = [] then A.True else A.Not (A.In_set (i, codes)) in
            { acc with plan = A.Select (pred, acc.plan) }
          | None -> fail "negated membership over unbound variable")
        | _ ->
          let neg = translate db typing inner in
          if List.exists (fun x -> not (List.mem x acc.vars)) neg.vars then
            fail "negated conjunct binds a variable not bound positively";
          anti_join acc neg)
      | Forall (xs, body) ->
        (* ∀xs body ≡ ¬∃xs ¬body, with ¬body renormalised *)
        let counter = Rewrite.nnf (Not body) in
        let witness = translate db typing (Exists (xs, counter)) in
        if List.exists (fun x -> not (List.mem x acc.vars)) witness.vars then
          fail "universal conjunct ranges over unbound variables";
        anti_join acc witness
      | _ -> assert false)
    base rest

(** Build the violation plan of a closed constraint: the plan's rows
    are the bindings of the leading existential block of nnf(¬C) (the
    violating witnesses); the constraint is violated iff the plan is
    non-empty.  Returns the plan and the witness variables, or raises
    {!Not_safe}. *)
let violation_plan db typing constraint_ =
  let v = Rewrite.nnf (Not constraint_) in
  let rec strip = function
    | Exists (xs, f) ->
      let xs', f' = strip f in
      (xs @ xs', f')
    | f -> ([], f)
  in
  let witnesses, matrix = strip v in
  let t = translate db typing matrix in
  (t.plan, t.vars, witnesses)

(** Is the constraint violated, per the SQL engine? *)
let violated db typing constraint_ =
  let v = Rewrite.nnf (Not constraint_) in
  let rec strip = function Exists (_, f) -> strip f | f -> f in
  match strip v with
  | False -> false
  | True -> true
  | _ ->
    let plan, _, _ = violation_plan db typing constraint_ in
    not (Fcv_sql.Exec.is_empty plan)
