(** Per-worker replicas of the logical index store (see the interface
    for the protocol).  The moving parts:

    - [epoch] counts master mutations ({!invalidate} and the
      [note_*] functions bump it).
    - [snapshot] caches the {!Index_io.save_string} bytes for one
      {e base} epoch; [delta] publishes the serialised row ops
      covering [(base, epoch]] when the window is still expressible
      as row traffic.  {!prepare} refreshes both on the main domain
      so workers never serialise (the master manager is not theirs
      to walk).
    - Each domain caches its hydrated [(epoch, index)] pair in
      domain-local storage; {!get} reuses it while the epoch stands,
      {b replays the delta suffix} when only row ops happened, and
      falls back to a full snapshot hydration otherwise.

    Why delta replay is verdict-safe: the op log is invalidated the
    moment the master's {!Index.t.structure_version} moves (entry
    add/remove/rebuild/defer, level recycle), so inside a valid
    window every replica entry has exactly the block widths the
    master had when it applied the op — {!Index.update_entry} then
    performs the identical root/count maintenance the master did.
    Content-preserving GC ({!Index.compact}) renumbers only the
    master's private node ids, which replicas never see, so it
    neither bumps the epoch nor invalidates anything.

    Memory-model note: workers read [epoch] through an [Atomic] but
    [snapshot]/[delta] are plain mutable fields.  That is sound
    because every fan-out goes prepare → submit → worker-runs-task,
    and the pool's queue mutex orders the writes before the worker's
    reads; the atomic epoch only decides {e staleness}, never
    publication. *)

module M = Fcv_bdd.Manager
module T = Fcv_util.Telemetry

(* A delta longer than this forces a fresh base snapshot at the next
   {!prepare}: unbounded replay would eventually cost more than one
   hydration, and a fresh worker must replay the whole window. *)
let max_delta_ops = 4096

type t = {
  master : Index.t;
  epoch : int Atomic.t;
  mutable snapshot : (int * string) option;  (** (base epoch, bytes) — main domain *)
  mutable delta : (int * int * string) option;
      (** (base, to, bytes): serialised ops covering (base, to] *)
  mutable log : Index_io.delta_op list;  (** newest first, covering (base, epoch] *)
  mutable log_valid : bool;
  mutable structure_seen : int;
      (** master's structure_version captured at the last base snapshot *)
  cache : (int * Index.t) option ref Domain.DLS.key;
      (** this domain's hydrated replica, stamped with its epoch *)
  full_hydrations : int Atomic.t;
  delta_hydrations : int Atomic.t;
  delta_ops_applied : int Atomic.t;
  mutable snapshot_bytes : int;  (** size of the last full snapshot serialised *)
  mutable delta_bytes : int;  (** size of the last delta published (0 = none) *)
}

let create master =
  {
    master;
    epoch = Atomic.make 0;
    snapshot = None;
    delta = None;
    log = [];
    log_valid = true;
    structure_seen = master.Index.structure_version;
    cache = Domain.DLS.new_key (fun () -> ref None);
    full_hydrations = Atomic.make 0;
    delta_hydrations = Atomic.make 0;
    delta_ops_applied = Atomic.make 0;
    snapshot_bytes = 0;
    delta_bytes = 0;
  }

let master t = t.master

(* -- mutation notes (main domain only) -------------------------------------- *)

(** A change the log cannot express: stale replicas must fully
    rehydrate from a fresh snapshot. *)
let invalidate t =
  Atomic.incr t.epoch;
  t.log <- [];
  t.log_valid <- false

(* Append one row op if the window is still sound: no structural
   change slipped in (the master may rebuild an entry *inside*
   Index.insert, invisibly to the caller — the version check catches
   it) and the log is bounded.  Invariant: log_valid implies
   [List.length log = epoch - base]. *)
let note t op =
  Atomic.incr t.epoch;
  if
    t.log_valid
    && t.master.Index.structure_version = t.structure_seen
    && List.length t.log < max_delta_ops
  then t.log <- op :: t.log
  else begin
    t.log <- [];
    t.log_valid <- false
  end

let note_insert t ~table_name row = note t (Index_io.Delta_insert (table_name, row))
let note_delete t ~table_name row = note t (Index_io.Delta_delete (table_name, row))

(* -- hydration telemetry ---------------------------------------------------- *)

type stats = {
  full : int;  (** whole-snapshot hydrations across all domains *)
  delta : int;  (** delta catch-ups across all domains *)
  delta_ops : int;  (** row ops replayed across all delta catch-ups *)
  snapshot_bytes : int;  (** size of the last full snapshot serialised *)
  delta_bytes : int;  (** size of the last delta published (0 = none) *)
}

let stats t =
  {
    full = Atomic.get t.full_hydrations;
    delta = Atomic.get t.delta_hydrations;
    delta_ops = Atomic.get t.delta_ops_applied;
    snapshot_bytes = t.snapshot_bytes;
    delta_bytes = t.delta_bytes;
  }

let hydrations t = Atomic.get t.full_hydrations + Atomic.get t.delta_hydrations

(* -- publication (main domain only) ----------------------------------------- *)

let resnapshot t e =
  T.with_span "replica.snapshot" (fun () ->
      let bytes = Index_io.save_string t.master in
      t.snapshot <- Some (e, bytes);
      t.snapshot_bytes <- String.length bytes;
      t.delta <- None;
      t.delta_bytes <- 0;
      t.log <- [];
      t.log_valid <- true;
      t.structure_seen <- t.master.Index.structure_version;
      if T.enabled () then begin
        T.incr (T.counter "replica.snapshots");
        T.gauge_set (T.gauge "replica.snapshot_bytes") t.snapshot_bytes
      end)

let prepare t =
  let e = Atomic.get t.epoch in
  match t.snapshot with
  | Some (base, _) when base = e -> t.delta <- None
  | Some (base, snap) when t.log_valid && List.length t.log = e - base ->
    (* the window is pure row traffic: publish it as a delta unless it
       outweighs the snapshot it spares workers from re-parsing *)
    let bytes = Index_io.save_delta ~base ~to_:e (List.rev t.log) in
    if String.length bytes < String.length snap then begin
      t.delta <- Some (base, e, bytes);
      t.delta_bytes <- String.length bytes;
      if T.enabled () then T.gauge_set (T.gauge "replica.delta_bytes") t.delta_bytes
    end
    else resnapshot t e
  | _ -> resnapshot t e

(* -- worker-side hydration -------------------------------------------------- *)

let hydrate_full t e bytes =
  T.with_span "replica.hydrate" (fun () ->
      let index = Index_io.load_string t.master.Index.db bytes in
      (* the replica obeys the same node budget as the master, so a
         compilation that would fall back sequentially falls back in
         parallel too — identical verdict methods either way *)
      M.set_max_nodes (Index.mgr index) (M.max_nodes (Index.mgr t.master));
      M.set_max_cache (Index.mgr index) (M.max_cache (Index.mgr t.master));
      Atomic.incr t.full_hydrations;
      T.incr (T.counter "replica.hydrations.full");
      (e, index))

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

(* Full hydration from the base snapshot, then replay the whole delta
   window on top.  Inside a valid window this cannot hit
   Needs_rebuild (widths match the master's when it applied the ops —
   see the module comment); if it ever does, that is a protocol bug,
   not a recoverable state, so let it escape loudly. *)
let hydrate_from_base t base e ops =
  let bytes =
    match t.snapshot with
    | Some (b, bytes) when b = base -> bytes
    | _ -> invalid_arg "Replica.get: delta published without its base snapshot"
  in
  let _, index = hydrate_full t base bytes in
  Index_io.apply_delta index ops;
  let n = List.length ops in
  if n > 0 then ignore (Atomic.fetch_and_add t.delta_ops_applied n);
  (e, index)

let get t =
  let e = Atomic.get t.epoch in
  let slot = Domain.DLS.get t.cache in
  match !slot with
  | Some (e', index) when e' = e -> index
  | cached ->
    let fresh =
      match t.delta with
      | Some (base, to_, bytes) when to_ = e -> (
        let dbase, dto, ops = Index_io.load_delta bytes in
        assert (dbase = base && dto = to_);
        match cached with
        | Some (e', index) when e' >= base && e' < e -> (
          (* this domain's replica sits inside the window: replay just
             the suffix it has not seen *)
          let suffix = drop (e' - base) ops in
          match
            T.with_span "replica.delta" (fun () -> Index_io.apply_delta index suffix)
          with
          | () ->
            Atomic.incr t.delta_hydrations;
            let n = List.length suffix in
            ignore (Atomic.fetch_and_add t.delta_ops_applied n);
            T.incr ~by:n (T.counter "replica.delta_ops");
            T.incr (T.counter "replica.hydrations.delta");
            (e, index)
          | exception Index.Needs_rebuild _ ->
            (* defensive only: a valid window should never trip this *)
            hydrate_from_base t base e ops)
        | _ -> hydrate_from_base t base e ops)
      | _ -> (
        match t.snapshot with
        | Some (b, bytes) when b = e -> hydrate_full t e bytes
        | Some (b, _) ->
          invalid_arg
            (Printf.sprintf
               "Replica.get: snapshot at epoch %d but master at %d — missing prepare" b e)
        | None -> invalid_arg "Replica.get: no snapshot — missing prepare")
    in
    slot := Some fresh;
    snd fresh
