(** Per-worker replicas of the logical index store (see the interface
    for the protocol).  The moving parts:

    - [epoch] counts master mutations ({!invalidate} bumps it).
    - [snapshot] caches the {!Index_io.save_string} bytes for one
      epoch; {!prepare} refreshes it on the main domain so workers
      never serialise (the master manager is not theirs to walk).
    - Each domain caches its hydrated [(epoch, index)] pair in
      domain-local storage; {!get} reuses it while the epoch stands.

    Memory-model note: workers read [epoch] through an [Atomic] but
    [snapshot] is a plain mutable field.  That is sound because every
    fan-out goes prepare → submit → worker-runs-task, and the pool's
    queue mutex orders the snapshot write before the worker's read;
    the atomic epoch only decides {e staleness}, never publication. *)

module M = Fcv_bdd.Manager
module T = Fcv_util.Telemetry

type t = {
  master : Index.t;
  epoch : int Atomic.t;
  mutable snapshot : (int * string) option;  (** (epoch, bytes) — main domain *)
  cache : (int * Index.t) option ref Domain.DLS.key;
      (** this domain's hydrated replica, stamped with its epoch *)
  hydrations : int Atomic.t;
}

let create master =
  {
    master;
    epoch = Atomic.make 0;
    snapshot = None;
    cache = Domain.DLS.new_key (fun () -> ref None);
    hydrations = Atomic.make 0;
  }

let master t = t.master
let invalidate t = Atomic.incr t.epoch
let hydrations t = Atomic.get t.hydrations

let prepare t =
  let e = Atomic.get t.epoch in
  match t.snapshot with
  | Some (e', _) when e' = e -> ()
  | _ ->
    T.with_span "replica.snapshot" (fun () ->
        t.snapshot <- Some (e, Index_io.save_string t.master))

let hydrate t e bytes =
  T.with_span "replica.hydrate" (fun () ->
      let index = Index_io.load_string t.master.Index.db bytes in
      (* the replica obeys the same node budget as the master, so a
         compilation that would fall back sequentially falls back in
         parallel too — identical verdict methods either way *)
      M.set_max_nodes (Index.mgr index) (M.max_nodes (Index.mgr t.master));
      M.set_max_cache (Index.mgr index) (M.max_cache (Index.mgr t.master));
      Atomic.incr t.hydrations;
      T.incr (T.counter "replica.hydrations");
      (e, index))

let get t =
  let e = Atomic.get t.epoch in
  let slot = Domain.DLS.get t.cache in
  match !slot with
  | Some (e', index) when e' = e -> index
  | _ ->
    let bytes =
      match t.snapshot with
      | Some (e', b) when e' = e -> b
      | Some (e', _) ->
        invalid_arg
          (Printf.sprintf
             "Replica.get: snapshot at epoch %d but master at %d — missing prepare" e' e)
      | None -> invalid_arg "Replica.get: no snapshot — missing prepare"
    in
    let fresh = hydrate t e bytes in
    slot := Some fresh;
    snd fresh
