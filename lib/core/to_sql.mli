(** Constraints → relational-algebra {e violation queries}: the SQL
    baseline of every BDD-vs-SQL figure, and the fallback when the
    node budget trips (§4's thresholding).

    The classical safe-FOL translation over nnf(¬C): atoms → scans,
    ∧ → natural join, negative conjuncts → anti-joins, ∨ → union
    (after DNF distribution), ∃ → projection.  Formulas outside the
    range-restricted fragment raise {!Not_safe}. *)

exception Not_safe of string

type tplan = { plan : Fcv_sql.Algebra.plan; vars : string list }
(** a translated sub-plan: column i produces variable [vars.(i)] *)

val translate : Fcv_relation.Database.t -> Typing.env -> Formula.t -> tplan
(** Plan producing the satisfying bindings of an NNF range-restricted
    formula's free variables.  @raise Not_safe *)

val violation_plan :
  Fcv_relation.Database.t ->
  Typing.env ->
  Formula.t ->
  Fcv_sql.Algebra.plan * string list * string list
(** Violation plan of a closed constraint: rows are the bindings of
    ¬C's leading existential block.  Returns (plan, column variables,
    witness variables).  @raise Not_safe *)

val violated : Fcv_relation.Database.t -> Typing.env -> Formula.t -> bool
(** Is the constraint violated, per the SQL engine?  @raise Not_safe *)
