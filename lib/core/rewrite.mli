(** The paper's query re-write rules (§4), applied in the prioritised
    order of §4.4: prenex normal form (subsuming the ∃/∨ and ∀/∧
    pull-ups of Eqs. 3–4), leading-quantifier elimination (§4.1), and
    ∀ push-down across conjunctions (Rule 5).  The equi-join rename
    (§4.2) lives in {!Compile}. *)

type check = Check_valid | Check_satisfiable
(** How to read the final BDD: a dropped leading ∀-run means the
    constraint holds iff the matrix is valid; a dropped ∃-run, iff it
    is satisfiable. *)

type quantifier = Q_exists | Q_forall

val nnf : Formula.t -> Formula.t
(** Negation normal form: ¬ pushed to literals, [Implies]/[Iff]
    expanded. *)

val prenex : Formula.t -> (quantifier * string) list * Formula.t
(** Prefix (outermost first, variables renamed apart) and
    quantifier-free matrix. *)

val rename_apart : Formula.t -> Formula.t
(** Rename binders so no name is bound twice or shadows a free
    variable; conflict-free names are kept.  {!Compile} requires
    shadow-free input. *)

val requantify : (quantifier * string) list -> Formula.t -> Formula.t
(** Rebuild a formula from prefix + matrix, grouping adjacent
    same-kind quantifiers. *)

val eliminate_leading :
  (quantifier * string) list * Formula.t -> check * Formula.t
(** Drop the maximal leading run of same-kind quantifiers (§4.1). *)

val push_forall : Formula.t -> Formula.t
(** Rule 5: ∀x(φ₁ ∧ φ₂) ⇝ ∀xφ₁ ∧ ∀xφ₂, recursively; vacuous
    quantifiers are dropped (domains are non-empty). *)

val optimize : Formula.t -> check * Formula.t
(** The full §4.4 pipeline. *)

val no_rewrite : Formula.t -> check * Formula.t
(** Identity pipeline (ablation): validity of the unchanged closed
    formula. *)
