(** Variable-ordering strategies for logical indices (§3).  Orderings
    are permutations of schema positions, shallowest first; each
    attribute's bit block stays contiguous (Theorem 1's regime). *)

type strategy =
  | Max_inf_gain
  | Prob_converge
  | Random_order of int  (** seed *)
  | Fixed of int array
  | Optimal  (** exhaustive search; factorial cost *)

val strategy_name : strategy -> string

val max_inf_gain : Fcv_relation.Table.t -> int array
(** §3.1 as Figure 1 literally specifies: v*(0) = argmin H(v), then
    v*(i) = argmin I(v; ū) with Definition 1's I — which selects the
    attribute {e least} explained by the prefix.  This anti-groups
    product factors and reproduces the paper's own Fig. 3(a) (α > 2.5
    on products); the prose-faithful ID3 reading is
    {!max_inf_gain_id3}.  See DESIGN.md. *)

val max_inf_gain_id3 : Fcv_relation.Table.t -> int array
(** Greedy maximal information gain (ID3/Quinlan) — the reading the
    algorithm's name suggests; kept as an ablation. *)

val prob_converge : Fcv_relation.Table.t -> int array
(** §3.2: drive Φ toward 0 as fast as possible, greedily. *)

val random_order : Fcv_util.Rng.t -> Fcv_relation.Table.t -> int array

val bdd_size : ?max_nodes:int -> Fcv_relation.Table.t -> int array -> int
(** Node count of the table encoded under an ordering (fresh
    manager). *)

val exhaustive : Fcv_relation.Table.t -> (int array * int) list
(** Every permutation with its BDD size, ascending. *)

val optimal : Fcv_relation.Table.t -> int array * int

val score_prob_converge :
  ?cache:(int list, float) Hashtbl.t -> Fcv_relation.Table.t -> int array -> float list
(** Lexicographic ranking key of a complete ordering under the
    Prob-Converge criterion: [Φ(v₁); Φ(v₁v₂); …] (ascending =
    predicted better).  Used by the Fig. 2(c) ranking experiment. *)

val score_max_inf_gain :
  ?cache:(int list, float) Hashtbl.t -> Fcv_relation.Table.t -> int array -> float list
(** Ranking key under the Figure-1 MaxInf-Gain criterion. *)

val resolve : strategy -> Fcv_relation.Table.t -> int array
