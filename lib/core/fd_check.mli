(** Functional-dependency checking straight on a logical index — the
    paper's Fig. 5(b) technique: lhs → rhs holds iff
    |π(lhs∪rhs)| = |π(lhs)|, two projections plus two O(|BDD|) model
    counts; no self-join, no renaming. *)

val fd_holds : Index.t -> table_name:string -> lhs:string list -> rhs:string list -> bool
(** @raise Invalid_argument when no index covers lhs ∪ rhs. *)

val fd_soft_counts :
  Index.t ->
  table_name:string ->
  lhs:string list ->
  rhs:string list ->
  (Fcv_bdd.Nat.t * Fcv_bdd.Nat.t) option
(** Exact [(violating, total)] ordered-pair counts for a threshold
    verdict on an FD-shaped constraint: pairs of π(lhs∪rhs) tuples
    sharing the lhs, split by whether their rhs agree — Σ n(n−1) and
    Σ n² over the per-lhs rhs co-domain sizes n, in arbitrary
    precision.  Matches the general BDD path and the naive recount
    binding-for-binding.  [None] when no index covers lhs ∪ rhs. *)

val recognize_fd :
  Fcv_relation.Database.t -> Formula.t -> (string * string list * string) option
(** Recognise ∀x̄,r1,r2. R(…r1…) ∧ R(…r2…) → r1 = r2 as
    [(relation, lhs attributes, rhs attribute)] so the checker can
    route it to {!fd_holds} instead of compiling the self-join. *)

val ind_holds :
  Index.t -> r:string -> attrs_r:string list -> s:string -> attrs_s:string list -> bool
(** Inclusion dependency R[attrs_r] ⊆ S[attrs_s]: projections, a
    rename onto shared blocks, and an O(1) emptiness test of the
    difference.  Attributes pair positionally and must share domains.
    @raise Invalid_argument on arity/domain mismatch or missing
    covering index. *)

val mvd_holds : Index.t -> table_name:string -> lhs:string list -> mid:string list -> bool
(** Multivalued dependency lhs →→ mid (complement = the remaining
    indexed attributes): R = π(lhs∪mid) ⋈ π(lhs∪rest), tested as one
    conjunction plus canonical-node equality (§2's MVD structure).
    @raise Invalid_argument on overlap or missing covering index. *)

val violating_lhs :
  ?limit:int ->
  Index.t ->
  table_name:string ->
  lhs:string list ->
  rhs:string list ->
  Fcv_relation.Value.t list list
(** The lhs values that determine more than one rhs tuple, decoded. *)
