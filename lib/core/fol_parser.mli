(** Concrete syntax for constraints:

    {v
    forall s . student(s, 'CS', _) ->
      (exists c . course(c, 'Programming') and takes(s, c))
    v}

    Binding strength (loosest first): [<->], [->] (right-assoc),
    [or], [and], [not], quantifiers, atoms / [t = t] /
    [t in {lit, ...}] / parentheses / [true] / [false].  Terms are
    variables, single-quoted strings, integers, or the wildcard
    [_]. *)

exception Error of string

val of_string : string -> Formula.t
(** @raise Error on syntax errors. *)

val spec_of_string : string -> Formula.spec
(** Like {!of_string} but accepting an optional approximate-constraint
    prefix [holds [on] >= <p> .] (p a literal in (0, 1]) before the
    formula; absent, the spec is hard ([threshold = 1.0]).
    @raise Error on syntax errors or an out-of-range threshold. *)
