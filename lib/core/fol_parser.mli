(** Concrete syntax for constraints:

    {v
    forall s . student(s, 'CS', _) ->
      (exists c . course(c, 'Programming') and takes(s, c))
    v}

    Binding strength (loosest first): [<->], [->] (right-assoc),
    [or], [and], [not], quantifiers, atoms / [t = t] /
    [t in {lit, ...}] / parentheses / [true] / [false].  Terms are
    variables, single-quoted strings, integers, or the wildcard
    [_]. *)

exception Error of string

val of_string : string -> Formula.t
(** @raise Error on syntax errors. *)
