(** Variable-ordering strategies for the logical index (§3).

    Orderings are permutations of the table's schema positions,
    shallowest attribute first; every attribute's bit-block is kept
    contiguous (the paper's product-structure argument, Theorem 1). *)

module R = Fcv_relation

type strategy =
  | Max_inf_gain
  | Prob_converge
  | Random_order of int  (** seed *)
  | Fixed of int array
  | Optimal  (** exhaustive search; factorial cost, small arities only *)

let strategy_name = function
  | Max_inf_gain -> "MaxInf-Gain"
  | Prob_converge -> "Prob-Converge"
  | Random_order _ -> "random"
  | Fixed _ -> "fixed"
  | Optimal -> "optimal"

(* Greedy skeleton shared by both heuristics (Fig. 1): seed with the
   best single attribute under [first_score] (minimised), then extend
   with the best next attribute under [next_score]. *)
let greedy table ~first_score ~next_score =
  let arity = R.Table.arity table in
  let remaining = ref (List.init arity Fun.id) in
  let chosen = ref [] in
  let pick score =
    match !remaining with
    | [] -> assert false
    | first :: _ ->
      let best =
        List.fold_left
          (fun best v -> if score v < score best then v else best)
          first !remaining
      in
      remaining := List.filter (fun v -> v <> best) !remaining;
      chosen := !chosen @ [ best ];
      best
  in
  ignore (pick first_score);
  for _ = 2 to arity do
    ignore (pick (fun v -> next_score !chosen v))
  done;
  Array.of_list !chosen

(** MaxInf-Gain, as Figure 1 of the paper literally specifies:
    v*(0) = argmin H(v), then v*(i) = argmin I(v; ū) with Definition
    1's I(v̄; v′) = H(v̄) − H(v′|v̄).  Expanding, argmin_v I(v; ū) =
    argmax_v H(v|ū): the algorithm (despite its name and the
    surrounding prose about maximising gain) selects the attribute
    {e least} explained by the prefix — which anti-groups product
    factors and is exactly why the paper's own Fig. 3(a) reports
    α > 2.5 on 1-PROD relations.  We implement the figure because
    that is evidently what was evaluated; the prose-faithful ID3
    variant is {!max_inf_gain_id3}.  See DESIGN.md. *)
let max_inf_gain table =
  greedy table
    ~first_score:(fun v -> R.Stats.entropy table [ v ])
    ~next_score:(fun prefix v ->
      (* I(v; ū) = H(v) − H(ū|v) = 2·H(v) − H(ū ∪ {v}) by the chain
         rule, minimised over v *)
      (2. *. R.Stats.entropy table [ v ]) -. R.Stats.entropy table (v :: prefix))

(** The prose-faithful (ID3/Quinlan) reading: greedily append the
    attribute of maximal information gain I(ū; v) = H(v) − H(v|ū).
    Kept as an ablation of the Figure-1 reading above. *)
let max_inf_gain_id3 table =
  greedy table
    ~first_score:(fun v -> R.Stats.entropy table [ v ])
    ~next_score:(fun prefix v -> -.R.Stats.info_gain table ~given:prefix ~attr:v)

(** Prob-Converge (§3.2): greedily drive the membership-probability
    measure Φ(⟨prefix, v⟩) toward 0 as fast as possible. *)
let prob_converge table =
  let all_attrs = List.init (R.Table.arity table) Fun.id in
  greedy table
    ~first_score:(fun v -> R.Stats.phi_measure table ~attrs:[ v ] ~all_attrs)
    ~next_score:(fun prefix v ->
      R.Stats.phi_measure table ~attrs:(prefix @ [ v ]) ~all_attrs)

let random_order rng table =
  let order = Array.init (R.Table.arity table) Fun.id in
  Fcv_util.Rng.shuffle rng order;
  order

(** BDD node count of the table encoded under [order] (fresh
    manager). *)
let bdd_size ?max_nodes table order =
  let enc = R.Encode.encode ?max_nodes table ~order in
  R.Encode.size enc

(** Evaluate every permutation; returns [(order, size)] sorted by
    ascending size.  Factorial in the arity — the paper's Fig. 2/3
    experiments use 5 attributes (120 orderings). *)
let exhaustive table =
  let results = ref [] in
  Fcv_util.Perm.iter (R.Table.arity table) (fun order ->
      let order = Array.copy order in
      results := (order, bdd_size table order) :: !results);
  List.sort (fun (_, a) (_, b) -> compare a b) !results

(** The optimal ordering and its size, by exhaustive search. *)
let optimal table =
  match exhaustive table with
  | best :: _ -> best
  | [] -> assert false

(* -- whole-ordering scores (Fig. 2(b)/(c)) -------------------------------- *)

(* The paper ranks all n! orderings "by MaxInf-Gain" / "by
   Prob-Converge" without defining a score for a complete ordering.
   The natural reading is the greedy criterion applied positionally
   and compared lexicographically: an ordering is predicted better if
   its first step scores better, ties broken by the second step, and
   so on — exactly the order in which the greedy algorithm would have
   preferred them.  Scores are key lists (ascending = better) compared
   with [Stdlib.compare]. *)

(** Prob-Converge key of a complete ordering: [Φ(v₁); Φ(v₁v₂); …].
    [cache] (keyed by the sorted prefix set) can be shared across
    calls — Φ depends only on the set, so all 120 orderings of 5
    attributes touch just 2^5 sets. *)
let score_prob_converge ?cache table order =
  let all_attrs = List.init (R.Table.arity table) Fun.id in
  let cache = match cache with Some c -> c | None -> Hashtbl.create 64 in
  let phi attrs =
    let key = List.sort compare attrs in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
      let v = R.Stats.phi_measure table ~attrs ~all_attrs in
      Hashtbl.add cache key v;
      v
  in
  let n = Array.length order in
  List.init (n - 1) (fun i -> phi (Array.to_list (Array.sub order 0 (i + 1))))

(** MaxInf-Gain (Figure-1 reading) key of a complete ordering:
    [H(v₁); I(v₂; v₁); I(v₃; v₁v₂); …] with Definition 1's I; [cache]
    maps sorted attribute sets to joint entropies. *)
let score_max_inf_gain ?cache table order =
  let cache = match cache with Some c -> c | None -> Hashtbl.create 64 in
  let entropy attrs =
    let key = List.sort compare attrs in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
      let v = R.Stats.entropy table key in
      Hashtbl.add cache key v;
      v
  in
  let n = Array.length order in
  List.init n (fun i ->
      if i = 0 then entropy [ order.(0) ]
      else begin
        let prefix = Array.to_list (Array.sub order 0 i) in
        (* I(v; ū) = 2·H(v) − H(ū ∪ {v}) *)
        (2. *. entropy [ order.(i) ]) -. entropy (order.(i) :: prefix)
      end)

(** Resolve a strategy to a concrete ordering. *)
let resolve strategy table =
  match strategy with
  | Max_inf_gain -> max_inf_gain table
  | Prob_converge -> prob_converge table
  | Random_order seed -> random_order (Fcv_util.Rng.create seed) table
  | Fixed order ->
    if not (Fcv_util.Perm.is_permutation order) || Array.length order <> R.Table.arity table
    then invalid_arg "Ordering.resolve: bad fixed order";
    Array.copy order
  | Optimal -> fst (optimal table)
