(** Continuous constraint validation over a dynamic database: register
    constraints once, stream updates through the logical indices, and
    re-validate lazily — only constraints whose tables changed since
    their last check are re-run. *)

type registered = {
  id : int;
  source : string;
  formula : Formula.t;
  threshold : float;
      (** verdict threshold; [1.0] = hard (classical), values in
          (0, 1) make the constraint soft — satisfied while the
          satisfied fraction of bindings stays ≥ threshold *)
  tables : string list;
  mutable last_outcome : Checker.outcome option;
  mutable last_rate : Checker.rate option;
      (** measured rate of the last fresh soft check; [None] for hard
          constraints and never-checked soft ones *)
  mutable checks_run : int;
  mutable checks_skipped : int;
  mutable total_check_ms : float;  (** cumulative time of fresh checks *)
  mutable entailed_by : int list option;
      (** register-time implication dedup (Kenig–Suciu direction):
          [Some ids] when this FD is in the Armstrong closure of the
          other registered FDs — validation may settle it as satisfied
          whenever every entailer currently holds *)
}

(** Validation strategy selection: [Planned] (default) consults the
    {!Planner} per constraint and learns from every result; [Legacy]
    is the paper's blind try-BDD-first thresholding; [Forced s] pins
    one strategy for every constraint (ablations, benchmarks). *)
type planning = Planned | Legacy | Forced of Checker.strategy

type t

val create :
  ?pipeline:Checker.pipeline ->
  ?planning:planning ->
  ?gc:Lifecycle.policy option ->
  Index.t ->
  t
(** [gc] is the automatic-reclamation policy run between validations
    (default {!Lifecycle.default_policy}; [None] disables). *)

val index : t -> Index.t

val planner : t -> Planner.t

val planning : t -> planning

val set_planning : t -> planning -> unit

val gc_policy : t -> Lifecycle.policy option
val set_gc_policy : t -> Lifecycle.policy option -> unit

val jobs : t -> int
(** Current validation parallelism (1 = sequential, the default). *)

val set_jobs : t -> int -> unit
(** Validate with [n] worker domains, each holding a private replica
    of the index store; replicas refresh lazily after updates.  Values
    [<= 1] (and {!stop}) release the pool and validate on the calling
    domain.  Verdicts are identical either way. *)

val stop : t -> unit
(** Join any worker domains; the monitor stays usable sequentially. *)

val constraints : t -> registered list
(** The registered constraints, oldest first. *)

val add : ?id:int -> t -> string -> registered
(** Register a constraint (concrete syntax, optionally prefixed
    [holds >= p .] for a soft constraint); builds missing indices.
    [id] pins the assigned id (recovery re-registers constraints under
    their original ids); fresh ids stay above any pinned one.
    @raise Fol_parser.Error / Typing.Type_error / Invalid_argument. *)

val remove : t -> int -> unit
(** Unregister; index entries on tables no remaining constraint
    watches are dropped too (the next GC reclaims their nodes) and
    replicas are invalidated. *)

val maybe_gc : t -> Lifecycle.action
(** Run the automatic-reclamation policy once (also runs at the start
    of every {!validate}).  Safe only between checks. *)

val gc : t -> int
(** Reclaim memory now — level recycle if needed, else GC; replicas
    are invalidated only by the recycle (a content-preserving compact
    is invisible to them).  Returns nodes reclaimed.  Backs the
    [compact] protocol op. *)

val insert : t -> table_name:string -> int array -> unit
(** Rows are coded [int array]s.  In parallel mode the mutation is
    delta-noted to the replica set ({!Replica.note_insert}) rather
    than invalidating it: the next validation catches workers up by
    replaying the row ops instead of rehydrating snapshots. *)

val delete : t -> table_name:string -> int array -> bool

val replica_stats : t -> Replica.stats option
(** Hydration-mode telemetry of the worker replica set ([None] when
    sequential): how many worker refreshes were cheap delta catch-ups
    versus full snapshot hydrations. *)

type report = {
  constraint_ : registered;
  outcome : Checker.outcome;
  fresh : bool;  (** false when a cached verdict was still valid *)
  elapsed_ms : float;
  rate : Checker.rate option;
      (** the soft constraint's measured (or cached) rate; [None] for
          hard constraints *)
}

val validate : t -> report list
(** Check dirty constraints, reuse cached verdicts for clean ones,
    clear the dirty set.  Under [Planned] the planner chooses each
    strategy, planned costs order the parallel pool, results feed the
    planner back, and a dirty hard FD entailed by currently-holding
    hard FDs is settled as satisfied without a check ([fresh =
    false]).  Soft constraints are checked sequentially through
    {!Checker.check_spec} — the exact-rate machinery — outside the
    pooled batch, and never participate in entailment. *)

val violated : t -> registered list

val verdicts : t -> (int * Checker.outcome) list
(** Validate and return just [(id, outcome)] pairs sorted by id — the
    extensional verdict set the differential and fault-injection
    harnesses compare across configurations and crash recoveries. *)

val explain : t -> int -> (registered * Planner.plan) option
(** The costed plan tree for one registered constraint (the [explain]
    protocol op and [fcv explain]); [None] for unknown ids. *)
