(** The paper's query re-write rules (§4), applied in the prioritised
    order of §4.4:

    + convert to {b prenex normal form} (this subsumes the pull-up
      rules: ∃ across ∨, Eq. 3, and ∀ across ∧, Eq. 4);
    + {b leading-quantifier elimination} (§4.1): drop the maximal
      leading run of same-kind quantifiers — a leading ∀-run turns the
      check into a validity test of the remainder, a leading ∃-run
      into a satisfiability test, both O(1) on the final ROBDD;
    + {b push-down} of the remaining universal quantifiers across
      conjunctions (Rule 5): ∀x(φ₁ ∧ φ₂) ⇝ ∀xφ₁ ∧ ∀xφ₂, because
      ∀xφᵢ is typically much smaller than φᵢ;
    + existential quantifiers stay pulled up so {!Compile} can use the
      fused [appex] on ∃x(φ₁ ∨ φ₂) (Rule 6).

    The equi-join rename rule (§4.2) lives in {!Compile}, where blocks
    are known. *)

open Formula

(** How to read the final BDD of the rewritten matrix: a leading ∀-run
    was dropped ⇒ the constraint holds iff the BDD is [true]; a
    leading ∃-run ⇒ holds iff the BDD is not [false]. *)
type check = Check_valid | Check_satisfiable

type quantifier = Q_exists | Q_forall

let gensym =
  let counter = ref 0 in
  fun base ->
    incr counter;
    Printf.sprintf "%s#%d" base !counter

(* Eliminate Iff and push all negations to the atoms (NNF), so that
   quantifier polarity is explicit before prenexing.  Implications stay
   only in positive position as syntax sugar and are expanded. *)
let rec nnf = function
  | True -> True
  | False -> False
  | (Atom _ | Eq _ | In _) as a -> a
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Implies (a, b) -> Or (nnf (Not a), nnf b)
  | Iff (a, b) -> And (Or (nnf (Not a), nnf b), Or (nnf (Not b), nnf a))
  | Exists (xs, f) -> Exists (xs, nnf f)
  | Forall (xs, f) -> Forall (xs, nnf f)
  | Not f -> (
    match f with
    | True -> False
    | False -> True
    | Atom _ | Eq _ | In _ -> Not (nnf f)
    | Not g -> nnf g
    | And (a, b) -> Or (nnf (Not a), nnf (Not b))
    | Or (a, b) -> And (nnf (Not a), nnf (Not b))
    | Implies (a, b) -> And (nnf a, nnf (Not b))
    | Iff (a, b) -> Or (And (nnf a, nnf (Not b)), And (nnf (Not a), nnf b))
    | Exists (xs, g) -> Forall (xs, nnf (Not g))
    | Forall (xs, g) -> Exists (xs, nnf (Not g)))

(* Prenex an NNF formula: returns the quantifier prefix (outermost
   first) and the quantifier-free matrix.  Bound variables are renamed
   apart so hoisting cannot capture. *)
let rec prenex_nnf f =
  match f with
  | True | False | Atom _ | Eq _ | In _ | Not _ -> ([], f)
  | And (a, b) ->
    let pa, ma = prenex_nnf a in
    let pb, mb = prenex_nnf b in
    (pa @ pb, And (ma, mb))
  | Or (a, b) ->
    let pa, ma = prenex_nnf a in
    let pb, mb = prenex_nnf b in
    (pa @ pb, Or (ma, mb))
  | Exists (xs, g) ->
    let fresh = List.map (fun x -> (x, gensym x)) xs in
    let pg, mg = prenex_nnf (rename fresh g) in
    (List.map (fun (_, x') -> (Q_exists, x')) fresh @ pg, mg)
  | Forall (xs, g) ->
    let fresh = List.map (fun x -> (x, gensym x)) xs in
    let pg, mg = prenex_nnf (rename fresh g) in
    (List.map (fun (_, x') -> (Q_forall, x')) fresh @ pg, mg)
  | Implies _ | Iff _ -> assert false (* removed by nnf *)

(** Prenex normal form of an arbitrary formula. *)
let prenex f = prenex_nnf (nnf f)

(** Rename binders apart so no variable name is bound twice (or
    shadows a free variable); names without conflicts are kept.  The
    compiler assigns one home block per name, so it requires
    shadow-free input — prenexing provides it on the main path, and
    this provides it everywhere else. *)
let rename_apart f =
  let seen = Hashtbl.create 16 in
  Sset.iter (fun x -> Hashtbl.replace seen x ()) (free_vars f);
  let rec go f =
    match f with
    | True | False | Atom _ | Eq _ | In _ -> f
    | Not g -> Not (go g)
    | And (a, b) -> And (go a, go b)
    | Or (a, b) -> Or (go a, go b)
    | Implies (a, b) -> Implies (go a, go b)
    | Iff (a, b) -> Iff (go a, go b)
    | Exists (xs, g) ->
      let xs', g' = binder xs g in
      Exists (xs', go g')
    | Forall (xs, g) ->
      let xs', g' = binder xs g in
      Forall (xs', go g')
  and binder xs g =
    let subst, xs' =
      List.fold_left
        (fun (subst, acc) x ->
          if Hashtbl.mem seen x then begin
            let x' = gensym x in
            Hashtbl.replace seen x' ();
            ((x, x') :: subst, x' :: acc)
          end
          else begin
            Hashtbl.replace seen x ();
            (subst, x :: acc)
          end)
        ([], []) xs
    in
    (List.rev xs', rename subst g)
  in
  go f

(* Rebuild a formula from a prefix + matrix, grouping adjacent
   same-kind quantifiers. *)
let requantify prefix matrix =
  let rec go = function
    | [] -> matrix
    | (q, x) :: rest ->
      let same, later =
        let rec span acc = function
          | (q', x') :: tl when q' = q -> span (x' :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        span [ x ] rest
      in
      let inner = go later in
      (match q with Q_exists -> Exists (same, inner) | Q_forall -> Forall (same, inner))
  in
  go prefix

(** §4.1: drop the maximal leading run of same-kind quantifiers from a
    prenex form; returns the induced check mode and the remaining
    formula.  An empty prefix defaults to a validity check (the closed
    matrix must evaluate to [true]). *)
let eliminate_leading (prefix, matrix) =
  match prefix with
  | [] -> (Check_valid, matrix)
  | (q, _) :: _ ->
    let rec drop = function
      | (q', _) :: tl when q' = q -> drop tl
      | tl -> tl
    in
    let remaining = drop prefix in
    let check = match q with Q_forall -> Check_valid | Q_exists -> Check_satisfiable in
    (check, requantify remaining matrix)

(** Rule 5: distribute remaining universal quantifiers across
    conjunctions, recursively; a quantifier not occurring free in a
    conjunct is dropped for that conjunct (domains are non-empty). *)
let rec push_forall = function
  | Forall (xs, body) -> (
    let body = push_forall body in
    match body with
    | And (a, b) ->
      let keep f = List.filter (fun x -> Sset.mem x (free_vars f)) xs in
      let wrap f = match keep f with [] -> f | vs -> push_forall (Forall (vs, f)) in
      And (wrap a, wrap b)
    | _ -> Forall (xs, body))
  | Exists (xs, body) -> Exists (xs, push_forall body)
  | And (a, b) -> And (push_forall a, push_forall b)
  | Or (a, b) -> Or (push_forall a, push_forall b)
  | Not f -> Not (push_forall f)
  | (True | False | Atom _ | Eq _ | In _) as f -> f
  | Implies (a, b) -> Implies (push_forall a, push_forall b)
  | Iff (a, b) -> Iff (push_forall a, push_forall b)

(** The full §4.4 pipeline.  Returns the check mode and the optimised
    formula whose BDD is to be tested for validity/satisfiability.
    When telemetry is enabled, records which rules fired: the leading
    quantifiers dropped (§4.1) and whether ∀ push-down (Rule 5)
    changed the formula. *)
let optimize f =
  let module T = Fcv_util.Telemetry in
  let prefix, matrix = prenex f in
  let check, g = eliminate_leading (prefix, matrix) in
  let g' = push_forall g in
  if T.enabled () then begin
    T.incr (T.counter "rewrite.prenex");
    let dropped = List.length prefix - List.length (fst (prenex_nnf g)) in
    if dropped > 0 then
      T.incr ~by:dropped (T.counter "rewrite.leading_quantifiers_eliminated");
    if g' <> g then T.incr (T.counter "rewrite.forall_pushdown");
    T.event "rewrite"
      [
        ("leading_dropped", T.Int dropped);
        ("forall_pushdown", T.Bool (g' <> g));
        ( "check",
          T.String (match check with Check_valid -> "valid" | Check_satisfiable -> "satisfiable")
        );
      ]
  end;
  (check, g')

(** Drop-in identity pipeline for the ablation benchmarks: no
    rewrites beyond the rename-apart hygiene the compiler requires;
    validity check of the whole closed formula. *)
let no_rewrite f = (Check_valid, rename_apart f)
