(** Violating-tuple enumeration and attribution — the second,
    expensive phase the paper defers until a fast check has said
    "violated".  Witnesses are the models of ¬C's leading existential
    block, read directly off the BDDs and decoded through the domain
    dictionaries; on top of them sit the tuple-attribution and blame
    primitives the repair planner optimises over. *)

type witness = (string * Fcv_relation.Value.t) list
(** one violating binding: variable name → value *)

val enumerate : ?limit:int -> Index.t -> Formula.t -> witness list option
(** Up to [limit] violating bindings of the constraint's outermost
    universally quantified variables, {e sorted by decoded value} (so
    the output is deterministic across manager states, index build
    orders and recoveries); [None] when ¬C has no leading existential
    block to witness. *)

val count : Index.t -> Formula.t -> float option
(** Exact number of violating bindings (model count over the witness
    blocks) without enumerating them. *)

val soft_counts : Index.t -> Formula.t -> (Fcv_bdd.Nat.t * Fcv_bdd.Nat.t) option
(** Exact [(violations, total)] binding counts for a threshold
    verdict: models of ¬C's matrix over the witness space, and models
    of the constraint's outermost hypothesis ([True] — the whole
    guarded space — when the ∀-stripped body is not an implication)
    over the same space.  [violations ≤ total] always.  Arbitrary
    precision: immune to the [2^53] float rounding of {!count}.
    [None] when ¬C has no leading existential block to witness. *)

(** {2 Analysis sessions}

    {!analyze} compiles the violation BDD once and keeps it live, so
    witness listing, counting, attribution and per-tuple blame share
    the compilation.  The session borrows scratch blocks from the
    index; {!release} returns them — results must be read before
    releasing, and the underlying index must not be mutated while a
    session is open. *)

type analyzer

val analyze : Index.t -> Formula.t -> analyzer option
(** [None] when ¬C has no leading existential block (a violation of a
    bare existential has no finite witness). *)

val release : analyzer -> unit

val witness_count : analyzer -> float

val witness_list : ?limit:int -> analyzer -> witness list
(** Up to [limit] witnesses, sorted by decoded value. *)

val participants : ?limit:int -> analyzer -> (string * int array) list
(** The distinct base tuples — [(table, coded row)] pairs, sorted —
    participating in (up to [limit] of) the witnesses: for each
    witness, the rows matched by the groundings of the matrix's
    positive top-region atoms.  Exactly the tuples whose deletion can
    kill a witness, i.e. the repair planner's candidates. *)

val blame : analyzer -> table:string -> row:int array -> float
(** The number of current witnesses deleting [(table, row)] kills:
    inclusion–exclusion over the positive [table]-atoms, each term a
    restrict-and-count walk of the violation BDD
    ({!Fcv_bdd.Sat.count_restrict}) — no BDD allocation.  An upper
    bound when other rows share the row's projection onto an atom's
    constrained columns (the witness survives on the other support). *)

type pattern = {
  p_table : string;
  p_pattern : int option array;
      (** per-column grounding: [Some code] pins, [None] is free *)
  p_rows : int array list;  (** current supporting rows, sorted *)
  p_kills : float;
      (** witnesses killed when {e every} [p_rows] row is deleted —
          exact, unlike the per-row {!blame} upper bound *)
}

val patterns : ?limit:int -> analyzer -> pattern list
(** The distinct grounded positive-atom patterns of (up to [limit] of)
    the witnesses, ordered by (table, pattern) — the greedy repair
    planner's candidate moves: deleting a pattern's whole support is
    guaranteed to kill its counted witnesses. *)
