(** Violating-tuple enumeration — the second, expensive phase the
    paper defers until a fast check has said "violated".  Witnesses
    are the models of ¬C's leading existential block, read directly
    off the BDDs and decoded through the domain dictionaries. *)

type witness = (string * Fcv_relation.Value.t) list
(** one violating binding: variable name → value *)

val enumerate : ?limit:int -> Index.t -> Formula.t -> witness list option
(** Up to [limit] violating bindings of the constraint's outermost
    universally quantified variables; [None] when ¬C has no leading
    existential block to witness. *)

val count : Index.t -> Formula.t -> float option
(** Exact number of violating bindings (model count over the witness
    blocks) without enumerating them. *)
