(** Blocking client for the constraint service — the library behind
    [fcv client] and the end-to-end tests.  One request, one response
    line; request ids are attached and checked automatically. *)

type t

val connect : string -> t
(** Connect to a Unix socket path or ["host:port"].
    @raise Unix.Unix_error when the daemon is not there. *)

val close : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** Send one request and block for its response.
    @raise Protocol.Malformed on a garbled response or id mismatch.
    @raise End_of_file if the server closed the connection. *)

val ok_exn : Protocol.response -> Protocol.json
(** The response body after asserting [ok]; @raise Failure with the
    server's error code and message otherwise. *)

val stream_updates :
  t -> on_validate:(Protocol.json -> unit) -> in_channel -> int * int
(** Forward a textual update stream ({!Protocol.update_of_line}) to
    the daemon, calling [on_validate] with each validation response
    body.  Returns [(updates sent, validations run)].
    @raise Failure on the first request the server rejects. *)
