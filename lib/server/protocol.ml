(** The constraint-service wire format: line-delimited JSON requests
    and responses, shared by the server loop, the WAL (a log record is
    exactly a request line), the [fcv client] subcommand and the
    tests — plus the textual update-stream syntax that [fcv monitor]
    replays offline and [fcv client updates] forwards to a daemon. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module Json = Fcv_util.Telemetry.Json

type json = T.json

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* -- requests ------------------------------------------------------------- *)

type request =
  | Register of { source : string; id : int option }
  | Unregister of int
  | Insert of string * string list
  | Delete of string * string list
  | Validate
  | Repair of { strategy : string; max_deletions : int option; apply : bool }
  | Explain of int
  | Stats
  | Compact
  | Snapshot
  | Ping
  | Shutdown

let request_name = function
  | Register _ -> "register"
  | Unregister _ -> "unregister"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Validate -> "validate"
  | Repair _ -> "repair"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Compact -> "compact"
  | Snapshot -> "snapshot"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* Compact is deliberately unlogged: GC changes no logical state, and
   recovery replay would renumber nodes pointlessly.  Repair too: the
   deletions it applies are journaled individually as Delete records,
   so replay never needs to re-run a planner.  Explain is read-only. *)
let logged = function
  | Register _ | Unregister _ | Insert _ | Delete _ -> true
  | Validate | Repair _ | Explain _ | Stats | Compact | Snapshot | Ping | Shutdown ->
    false

let request_to_json ?id req =
  let fields =
    match req with
    | Register { source; id = cid } ->
      [ ("source", T.String source) ]
      @ (match cid with Some i -> [ ("constraint", T.Int i) ] | None -> [])
    | Unregister c | Explain c -> [ ("constraint", T.Int c) ]
    | Insert (table, row) | Delete (table, row) ->
      [ ("table", T.String table); ("row", T.List (List.map (fun v -> T.String v) row)) ]
    | Repair { strategy; max_deletions; apply } ->
      [ ("strategy", T.String strategy) ]
      @ (match max_deletions with Some n -> [ ("max_deletions", T.Int n) ] | None -> [])
      @ if apply then [ ("apply", T.Bool true) ] else []
    | Validate | Stats | Compact | Snapshot | Ping | Shutdown -> []
  in
  let id_field = match id with Some j -> [ ("id", j) ] | None -> [] in
  T.Obj (id_field @ (("op", T.String (request_name req)) :: fields))

let request_to_line ?id req = Json.to_string (request_to_json ?id req)

(* -- errors --------------------------------------------------------------- *)

type error_code =
  | Parse_error
  | Unknown_op
  | Bad_request
  | Unknown_table
  | Constraint_error
  | Shutting_down
  | Internal

let error_code_name = function
  | Parse_error -> "parse_error"
  | Unknown_op -> "unknown_op"
  | Bad_request -> "bad_request"
  | Unknown_table -> "unknown_table"
  | Constraint_error -> "constraint_error"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (Parse_error, msg)
  | json -> (
    let id = Json.member "id" json in
    let str field =
      match Json.member field json with
      | Some (T.String s) -> Ok s
      | _ -> Error (Bad_request, Printf.sprintf "missing string field %S" field)
    in
    let int field =
      match Json.member field json with
      | Some (T.Int i) -> Ok i
      | _ -> Error (Bad_request, Printf.sprintf "missing integer field %S" field)
    in
    let row () =
      match Json.member "row" json with
      | Some (T.List cells) ->
        let cell = function
          | T.String s -> Ok s
          | T.Int i -> Ok (string_of_int i)
          | _ -> Error (Bad_request, "row cells must be strings or integers")
        in
        List.fold_right
          (fun c acc ->
            match (cell c, acc) with
            | Ok v, Ok vs -> Ok (v :: vs)
            | (Error _ as e), _ -> e
            | _, (Error _ as e) -> e)
          cells (Ok [])
      | _ -> Error (Bad_request, "missing array field \"row\"")
    in
    let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
    match str "op" with
    | Error _ -> Error (Bad_request, "missing string field \"op\"")
    | Ok op -> (
      match op with
      | "register" -> (
        let* source = str "source" in
        let id_opt =
          match Json.member "constraint" json with Some (T.Int i) -> Some i | _ -> None
        in
        (* an explicit threshold field canonicalises into the source's
           [holds >= p .] prefix, so the WAL record, the snapshot and
           every report all carry one spelling of the constraint *)
        match Json.member "threshold" json with
        | None -> Ok (id, Register { source; id = id_opt })
        | Some j -> (
          let p =
            match j with
            | T.Float f -> Some f
            | T.Int i -> Some (float_of_int i)
            | _ -> None
          in
          match p with
          | None -> Error (Bad_request, "threshold must be a number")
          | Some p when not (p > 0. && p <= 1.) ->
            Error (Bad_request, "threshold must be in (0, 1]")
          | Some p ->
            let source =
              if p >= 1.0 then source
              else
                Printf.sprintf "holds >= %s . %s"
                  (Core.Formula.threshold_repr p)
                  source
            in
            Ok (id, Register { source; id = id_opt })))
      | "unregister" ->
        let* c = int "constraint" in
        Ok (id, Unregister c)
      | "insert" ->
        let* table = str "table" in
        let* row = row () in
        Ok (id, Insert (table, row))
      | "delete" ->
        let* table = str "table" in
        let* row = row () in
        Ok (id, Delete (table, row))
      | "validate" -> Ok (id, Validate)
      | "repair" ->
        let strategy =
          match Json.member "strategy" json with
          | Some (T.String s) -> s
          | _ -> "greedy"
        in
        if strategy <> "exact" && strategy <> "greedy" then
          Error
            ( Bad_request,
              Printf.sprintf "unknown repair strategy %S (exact|greedy)" strategy )
        else
          let max_deletions =
            match Json.member "max_deletions" json with
            | Some (T.Int n) -> Some n
            | _ -> None
          in
          let apply = Json.member "apply" json = Some (T.Bool true) in
          Ok (id, Repair { strategy; max_deletions; apply })
      | "explain" ->
        let* c = int "constraint" in
        Ok (id, Explain c)
      | "stats" -> Ok (id, Stats)
      | "compact" -> Ok (id, Compact)
      | "snapshot" -> Ok (id, Snapshot)
      | "ping" -> Ok (id, Ping)
      | "shutdown" -> Ok (id, Shutdown)
      | op -> Error (Unknown_op, Printf.sprintf "unknown op %S" op)))

(* -- responses ------------------------------------------------------------ *)

let with_id id fields = match id with Some j -> ("id", j) :: fields | None -> fields

let ok_line ?id fields = Json.to_string (T.Obj (with_id id (("ok", T.Bool true) :: fields)))

let error_line ?id code msg =
  Json.to_string
    (T.Obj
       (with_id id
          [
            ("ok", T.Bool false);
            ("error", T.String (error_code_name code));
            ("message", T.String msg);
          ]))

type response = { id : json option; ok : bool; body : json }

let parse_response line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> malformed "bad response: %s" msg
  | json -> (
    match Json.member "ok" json with
    | Some (T.Bool ok) -> { id = Json.member "id" json; ok; body = json }
    | _ -> malformed "response without \"ok\" field: %s" line)

(* -- textual update streams ----------------------------------------------- *)

type update =
  | U_insert of string * string list
  | U_delete of string * string list
  | U_validate

(* One command per line: 'insert TABLE,v1,...', 'delete TABLE,v1,...'
   or 'validate'; '#' comments and blank lines are skipped. *)
let update_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else if line = "validate" then Some U_validate
  else
    match String.index_opt line ' ' with
    | None -> malformed "malformed update line: %s" line
    | Some k -> (
      let cmd = String.sub line 0 k in
      let rest = String.sub line (k + 1) (String.length line - k - 1) in
      match String.split_on_char ',' rest |> List.map String.trim with
      | table :: cells when cells <> [] -> (
        match cmd with
        | "insert" -> Some (U_insert (table, cells))
        | "delete" -> Some (U_delete (table, cells))
        | _ -> malformed "unknown update command: %s" cmd)
      | _ -> malformed "malformed update row: %s" rest)

let request_of_update = function
  | U_insert (table, row) -> Insert (table, row)
  | U_delete (table, row) -> Delete (table, row)
  | U_validate -> Validate

type coded = Coded of int array | Unknown_value of string

(* Dictionary-code a textual row.  [intern] is the daemon's semantics
   (fresh codes for unseen values; the index layer rebuilds affected
   entries); without it an unseen value makes the row undeliverable —
   the batch monitor's skip-with-warning semantics. *)
let code_row ?(intern = false) db ~table cells =
  let t = R.Database.table db table in
  let arity = R.Table.arity t in
  if List.length cells <> arity then
    malformed "%s: expected %d values, got %d" table arity (List.length cells);
  let unknown = ref None in
  let coded =
    List.mapi
      (fun j cell ->
        let v = R.Value.of_string cell in
        let dict = R.Table.dict t j in
        if intern then R.Dict.intern dict v
        else
          match R.Dict.code dict v with
          | Some c -> c
          | None ->
            if !unknown = None then unknown := Some cell;
            -1)
      cells
  in
  match !unknown with
  | Some cell -> Unknown_value cell
  | None -> Coded (Array.of_list coded)

(* -- addresses ------------------------------------------------------------ *)

(* "host:port" (or ":port") is TCP; anything else is a Unix-domain
   socket path. *)
let sockaddr_of_string s =
  match String.rindex_opt s ':' with
  | Some k when k < String.length s - 1 && String.for_all (fun c -> c >= '0' && c <= '9')
                  (String.sub s (k + 1) (String.length s - k - 1)) ->
    let port = int_of_string (String.sub s (k + 1) (String.length s - k - 1)) in
    let host = if k = 0 then "127.0.0.1" else String.sub s 0 k in
    let addr =
      try Unix.inet_addr_of_string host
      with _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve host " ^ host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found -> failwith ("cannot resolve host " ^ host))
    in
    Unix.ADDR_INET (addr, port)
  | _ -> Unix.ADDR_UNIX s
