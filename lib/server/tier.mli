(** The sharded serving tier: N {!Shard}s behind one {!Router}, with
    group commit.  Tables partition by a stable hash; a constraint
    lives on the shard owning its first watched table, which keeps
    journaled, synced replicas of any watched table it does not own
    (populated by a textual row-diff {e migration} at registration,
    maintained by mutation fan-out).  Validation fans out per shard
    and merges verdicts by constraint id — an N-shard tier answers
    exactly what the 1-shard tier would.  Shard WALs are un-fsynced;
    {!flush} is the group commit: one fsync per dirty WAL covering
    every journaled mutation, after which (and only after which)
    acknowledgements may be released. *)

type t

val of_shards : ?fsync:bool -> Shard.t array -> t
(** Wrap existing shards (at least one); constraint-id allocation and
    watcher sets are derived from their registries.  [fsync:false]
    makes {!flush} a bookkeeping no-op (no durability). *)

val create_fresh :
  ?fsync:bool ->
  ?max_nodes:int ->
  shards:int ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  t
(** A fresh in-memory tier: each shard gets its own monitor over its
    own [load_base ()] copy. *)

val recover :
  ?max_nodes:int ->
  ?shards:int ->
  ?fsync:bool ->
  state_dir:string ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  t * Shard.recovered array
(** Recover an N-shard tier from [state_dir] (per-shard snapshot +
    WAL replay; [shards = 1] keeps the flat single-shard layout,
    [shards > 1] uses [shard-<i>/] subdirectories).  The directory's
    [SHARDS] lineage file is checked first —
    @raise Invalid_argument when [state_dir] was built with a
    different shard count: re-sharding an existing directory is
    explicitly refused, not silently misrouted. *)

val shards : t -> Shard.t array
val shard_count : t -> int

val pending : t -> int
(** Records journaled since the last {!flush} — the group-commit
    window trigger. *)

val clear_pending : t -> unit
(** Reset the window counter without syncing (the simulator's planted
    skip-fsync bugs use this to model a buggy flush). *)

val flush : t -> unit
(** Group commit: fsync every dirty shard's WAL, then reset the
    window.  Acknowledgements staged for journaled mutations may be
    released once this returns. *)

val targets : t -> Protocol.request -> int list
(** The shards a logged request journals on (owner first; empty for
    non-mutating or unroutable requests).  Registration may journal
    additional migration records on the constraint's shard. *)

val register : ?id:int -> t -> string -> Core.Monitor.registered
(** Place, migrate-for and register one constraint under a
    tier-allocated (or pinned) id, journaling on its shard.
    @raise the {!Core.Monitor.add} errors on a bad constraint. *)

val apply : t -> Protocol.request -> ((string * Fcv_util.Telemetry.json) list, Protocol.error_code * string) result
(** Answer one mutating request tier-wide ({!Mutator.apply}'s
    contract): apply on the owner — whose verdict is the response —
    then fan out to watchers, journaling on every shard that applied.
    Non-mutating requests return [Ok []] — except [Repair], which
    plans a deletion repair against the tier-wide logical state
    (owner copies, decoded — shard dictionaries are not code-
    compatible) and, with [apply:true], executes each planned
    deletion through this same function: owner-first fan-out,
    journaled as ordinary [Delete] records, inside the caller's
    group-commit window, so recovery replays the repair without ever
    re-running a planner. *)

val validate : t -> Core.Monitor.report list
(** One dirty-set pass per shard, reports merged by constraint id. *)

val verdicts : t -> (int * Core.Checker.outcome) list
(** Merged [(id, outcome)] pairs sorted by id. *)

val constraints : t -> Core.Monitor.registered list
(** Every shard's registrations, sorted by id. *)

val snapshot : t -> unit
(** Rotate every shard's snapshot generation (covers all applied
    mutations, so this implies a flush). *)

val auto_snapshot : t -> every:int -> unit
(** Rotate only the shards whose WAL grew past [every] records since
    their last rotation — per-shard snapshot lifecycle. *)

val set_jobs : t -> int -> unit
val stop_jobs : t -> unit

val gc : t -> int
(** Reclaim memory on every shard; total nodes reclaimed. *)

val close : t -> unit

val table_cardinality : t -> string -> int
(** Cardinality of [table]'s authoritative (owner) copy. *)

val record_shards : string -> int -> unit
(** Write a state directory's [SHARDS] lineage file. *)

val read_shards : string -> int option
(** The shard count a state directory was built with: its [SHARDS]
    file, or — when that is missing or crash-damaged — inferred from
    the layout ([shard-<i>/] subdirectories, or a flat legacy
    single-shard directory).  [None] for a fresh directory. *)
