(** One client connection of the constraint service: the socket, the
    partial-line input buffer, the queue of complete request lines not
    yet processed, and the pending output bytes.  All I/O is
    non-blocking; the {!Server} loop owns scheduling. *)

type t = {
  id : int;
  fd : Unix.file_descr;
  peer : string;
  inbuf : Buffer.t;  (** bytes read but not yet terminated by '\n' *)
  mutable queue : string list;  (** complete lines awaiting processing, oldest first *)
  mutable out : string;  (** bytes accepted for sending, not yet written *)
  mutable staged : string list;
      (** replies staged behind the group commit (newest first) —
          {!release} moves them to [out] once the WAL fsync covering
          their mutations has run *)
  mutable last_activity : float;  (** last byte received (Unix time) *)
  mutable partial_since : float option;
      (** when the current half-received line started, for the
          partial-request timeout *)
  mutable requests : int;  (** requests processed on this session *)
  mutable closing : bool;  (** close once [out] drains *)
}

val create : id:int -> fd:Unix.file_descr -> peer:string -> t
(** Marks [fd] non-blocking. *)

val feed : t -> max_line:int -> bytes -> int -> [ `Ok | `Line_too_long ]
(** Ingest [n] received bytes: complete lines move to [queue];
    [`Line_too_long] when any queued line or the unterminated tail
    exceeds [max_line] (malformed-input isolation — the server kills
    the session). *)

val next_line : t -> string option
(** Pop the oldest queued line. *)

val peek_line : t -> string option

val queued : t -> int

val send : t -> string -> unit
(** Queue one response line ('\n' appended) for immediate writing. *)

val stage : t -> string -> unit
(** Queue one response line behind the group commit: it reaches the
    socket only after {!release} (the server calls it once the WAL
    fsync covering the acknowledged mutations has run), preserving
    per-session reply order. *)

val release : t -> unit
(** Move every staged reply to [out], oldest first. *)

val flush : t -> bool
(** Write as much of [out] as the socket accepts; [false] when the
    peer is gone (EPIPE/ECONNRESET) and the session must be dropped. *)

val has_output : t -> bool
