(** Snapshot persistence for the constraint service.  A generation is
    three files (database dump, {!Core.Index_io} indices, constraint
    registry) made live by atomically renaming a [CURRENT] pointer;
    the WAL then only needs to cover updates since that generation.

    The database dump stores dictionaries {e verbatim} (name and
    values in code order) — the packed keys inside the index
    maintenance multisets and the saved BDDs are only meaningful under
    the exact same code assignment, so re-interning from CSV would
    corrupt recovered indices.

    Every file effect goes through {!Vfs}: snapshot files are rendered
    in memory and committed with one durable write each, so the
    fault-injection simulator sees (and can crash at) exactly the
    write / fsync / rename points the real commit sequence has. *)

module R = Fcv_relation

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let db_magic = "fcv-db 1"
let cons_magic = "fcv-constraints 1"

(* Metadata lines are tab-separated; names are [String.escaped] so
   embedded tabs/newlines cannot break the framing. *)
let esc = String.escaped

let unesc s = try Scanf.unescaped s with Scanf.Scan_failure _ -> fail "bad escape: %s" s

let value_to_line = function
  | R.Value.Int i -> "i\t" ^ string_of_int i
  | R.Value.Str s -> "s\t" ^ esc s

let value_of_line line =
  match String.index_opt line '\t' with
  | Some 1 when line.[0] = 'i' ->
    let rest = String.sub line 2 (String.length line - 2) in
    (try R.Value.Int (int_of_string rest) with _ -> fail "bad int value: %s" rest)
  | Some 1 when line.[0] = 's' -> R.Value.Str (unesc (String.sub line 2 (String.length line - 2)))
  | _ -> fail "bad value line: %s" line

(* -- database dump --------------------------------------------------------- *)

let save_db db buf =
  Printf.bprintf buf "%s\n" db_magic;
  let domains = R.Database.domain_names db in
  Printf.bprintf buf "domains\t%d\n" (List.length domains);
  List.iter
    (fun name ->
      let dict = R.Database.domain db name in
      Printf.bprintf buf "domain\t%s\t%d\n" (esc name) (R.Dict.size dict);
      List.iter (fun v -> Buffer.add_string buf (value_to_line v ^ "\n")) (R.Dict.to_list dict))
    domains;
  let tables = R.Database.table_names db in
  Printf.bprintf buf "tables\t%d\n" (List.length tables);
  List.iter
    (fun name ->
      let t = R.Database.table db name in
      let schema = R.Table.schema t in
      Printf.bprintf buf "table\t%s\t%d\t%d\n" (esc name) (R.Table.arity t)
        (R.Table.cardinality t);
      Array.iter
        (fun a -> Printf.bprintf buf "attr\t%s\t%s\n" (esc a.R.Schema.name) (esc a.R.Schema.domain))
        schema;
      R.Table.iter t (fun row ->
          Buffer.add_string buf
            (String.concat " " (Array.to_list (Array.map string_of_int row)) ^ "\n")))
    tables

let load_db contents =
  let rd = Vfs.reader_of_string contents in
  let line () = try Vfs.read_line rd with End_of_file -> fail "unexpected end of file" in
  let fields s = String.split_on_char '\t' s in
  if String.trim (line ()) <> db_magic then fail "bad db magic";
  let db = R.Database.create () in
  let n_domains =
    match fields (line ()) with
    | [ "domains"; n ] -> ( try int_of_string n with _ -> fail "bad domain count")
    | _ -> fail "expected domains"
  in
  for _ = 1 to n_domains do
    let name, size =
      match fields (line ()) with
      | [ "domain"; name; size ] -> (
        (unesc name, try int_of_string size with _ -> fail "bad domain size"))
      | _ -> fail "expected domain"
    in
    let dict = R.Dict.create ~capacity:(max 16 size) name in
    for expected = 0 to size - 1 do
      let code = R.Dict.intern dict (value_of_line (line ())) in
      if code <> expected then fail "duplicate value in domain %s" name
    done;
    R.Database.add_domain db dict
  done;
  let n_tables =
    match fields (line ()) with
    | [ "tables"; n ] -> ( try int_of_string n with _ -> fail "bad table count")
    | _ -> fail "expected tables"
  in
  for _ = 1 to n_tables do
    let name, arity, rows =
      match fields (line ()) with
      | [ "table"; name; arity; rows ] -> (
        ( unesc name,
          (try int_of_string arity with _ -> fail "bad arity"),
          try int_of_string rows with _ -> fail "bad row count" ))
      | _ -> fail "expected table"
    in
    let attrs =
      List.init arity (fun _ ->
          match fields (line ()) with
          | [ "attr"; a; d ] -> (unesc a, unesc d)
          | _ -> fail "expected attr")
    in
    let t = R.Database.create_table db ~name ~attrs in
    for _ = 1 to rows do
      let row =
        String.split_on_char ' ' (String.trim (line ()))
        |> List.filter (( <> ) "")
        |> List.map (fun c -> try int_of_string c with _ -> fail "bad row code")
      in
      R.Table.insert_coded t (Array.of_list row)
    done
  done;
  db

(* -- generations ----------------------------------------------------------- *)

let wal_path ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)
let current_path dir = Filename.concat dir "CURRENT"
let gen_file dir gen ext = Filename.concat dir (Printf.sprintf "snap-%d.%s" gen ext)

let read_current dir =
  let path = current_path dir in
  if not (Vfs.file_exists path) then None
  else begin
    let rd = Vfs.reader_of_string (Vfs.read_file path) in
    match String.split_on_char ' ' (String.trim (Vfs.read_line rd)) with
    | [ "gen"; n ] -> ( try Some (int_of_string n) with _ -> fail "bad CURRENT")
    | _ -> fail "bad CURRENT"
    | exception End_of_file -> fail "empty CURRENT"
  end

let current_gen ~dir =
  if not (Vfs.file_exists dir) then 0 else Option.value ~default:0 (read_current dir)

(* Drop every snapshot / WAL file that does not belong to [keep]: the
   previous generation once the new one is committed, plus any orphans
   a crash between commit and cleanup left behind. *)
let sweep_stale dir ~keep =
  Array.iter
    (fun name ->
      let stale =
        match Scanf.sscanf_opt name "snap-%d.%s%!" (fun g ext -> (g, ext)) with
        | Some (g, ("db" | "idx" | "cons")) -> g <> keep
        | Some _ | None -> (
          match Scanf.sscanf_opt name "wal-%d.log%!" (fun g -> g) with
          | Some g -> g <> keep
          | None -> false)
      in
      if stale then try Vfs.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Vfs.readdir dir)

(* Render [f]'s output in memory, then commit it to [path] durably
   (write + fsync as one {!Vfs.write_file} effect pair). *)
let write_file path f =
  let buf = Buffer.create 4096 in
  f buf;
  Vfs.write_file path (Buffer.contents buf)

let save ?(unregistered = []) ?prepare_wal ~dir monitor =
  if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
  let gen = 1 + current_gen ~dir in
  let index = Core.Monitor.index monitor in
  write_file (gen_file dir gen "db") (fun buf -> save_db index.Core.Index.db buf);
  Vfs.write_file (gen_file dir gen "idx") (Core.Index_io.save_string index);
  write_file (gen_file dir gen "cons") (fun buf ->
      let cons = Core.Monitor.constraints monitor in
      Printf.bprintf buf "%s\n" cons_magic;
      Printf.bprintf buf "constraints\t%d\n" (List.length cons);
      List.iter
        (fun r -> Printf.bprintf buf "%d\t%s\n" r.Core.Monitor.id (esc r.Core.Monitor.source))
        cons;
      Printf.bprintf buf "unregistered\t%d\n" (List.length unregistered);
      List.iter (fun src -> Printf.bprintf buf "%s\n" (esc src)) unregistered);
  (* The WAL belongs to the generation: give the caller a chance to
     create the new generation's (empty) log durably BEFORE the
     CURRENT rename, so that whichever generation a crash leaves
     current, its snapshot and its log agree — replay never re-applies
     records the snapshot already covers. *)
  Option.iter (fun f -> f ~gen) prepare_wal;
  (* switch generations atomically, then drop everything older *)
  let tmp = current_path dir ^ ".tmp" in
  write_file tmp (fun buf -> Printf.bprintf buf "gen %d\n" gen);
  Vfs.rename tmp (current_path dir);
  sweep_stale dir ~keep:gen;
  if Fcv_util.Telemetry.enabled () then
    Fcv_util.Telemetry.incr (Fcv_util.Telemetry.counter "server.snapshots");
  gen

let load ~dir ~max_nodes =
  match read_current dir with
  | None -> None
  | Some gen ->
    let db = load_db (Vfs.read_file (gen_file dir gen "db")) in
    let index =
      try Core.Index_io.load_string db (Vfs.read_file (gen_file dir gen "idx"))
      with Core.Index_io.Format_error msg -> fail "index snapshot: %s" msg
    in
    Fcv_bdd.Manager.set_max_nodes (Core.Index.mgr index) max_nodes;
    let monitor = Core.Monitor.create index in
    let rd = Vfs.reader_of_string (Vfs.read_file (gen_file dir gen "cons")) in
    let unregistered =
      let line () = try Vfs.read_line rd with End_of_file -> fail "unexpected end of file" in
      if String.trim (line ()) <> cons_magic then fail "bad constraints magic";
      let n =
        match String.split_on_char '\t' (line ()) with
        | [ "constraints"; n ] -> ( try int_of_string n with _ -> fail "bad count")
        | _ -> fail "expected constraints"
      in
      for _ = 1 to n do
        match String.split_on_char '\t' (line ()) with
        | [ id; source ] ->
          let id = try int_of_string id with _ -> fail "bad constraint id" in
          ignore (Core.Monitor.add ~id monitor (unesc source))
        | _ -> fail "bad constraint line"
      done;
      (* unregister tombstones: sources explicitly removed, so a
         restart must not resurrect them from --constraints *)
      match Vfs.read_line rd with
      | exception End_of_file -> []
      | tomb -> (
        match String.split_on_char '\t' tomb with
        | [ "unregistered"; n ] ->
          let n = try int_of_string n with _ -> fail "bad tombstone count" in
          List.init n (fun _ -> unesc (line ()))
        | _ -> fail "expected unregistered")
    in
    Some (monitor, unregistered)
