(** The constraint-service wire format, in one place for server,
    client, WAL and tests: line-delimited JSON requests/responses over
    a Unix-domain or TCP socket, plus the textual update-stream syntax
    shared by [fcv monitor] and [fcv client updates].

    Every request is one JSON object on one line; every response is
    one JSON object on one line.  See docs/PROTOCOL.md for the
    grammar, error codes and an example session. *)

type json = Fcv_util.Telemetry.json

exception Malformed of string
(** A line that does not follow the protocol (also used by the update
    stream parser for malformed update lines). *)

(** {1 Requests} *)

type request =
  | Register of { source : string; id : int option }
      (** [id] is [None] on the wire from clients; the server logs the
          assigned id into the WAL so replay pins the same id. *)
  | Unregister of int
  | Insert of string * string list  (** table, values (textual) *)
  | Delete of string * string list
  | Validate
  | Repair of { strategy : string; max_deletions : int option; apply : bool }
      (** plan a deletion repair ([strategy] is ["exact"] or
          ["greedy"]); with [apply], execute the plan's deletions
          through the normal mutation path.  The request itself is
          unlogged — applied deletions are journaled individually as
          [Delete] records, so replay needs no planner. *)
  | Explain of int
      (** the planner's costed plan tree for one registered constraint
          (EXPLAIN VERBOSE for constraints); read-only, unlogged *)
  | Stats
  | Compact
      (** reclaim BDD memory now (GC / level recycle); unlogged — GC
          changes no logical state *)
  | Snapshot
  | Ping
  | Shutdown

val request_name : request -> string

val logged : request -> bool
(** Must this request be persisted to the WAL (i.e. does it mutate
    durable state)? *)

val request_to_line : ?id:json -> request -> string
(** One JSON line (no trailing newline); [id] is the client-chosen
    request id, echoed back by the server. *)

(** {1 Errors} *)

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Unknown_op
  | Bad_request  (** valid JSON, wrong shape or missing fields *)
  | Unknown_table
  | Constraint_error  (** register: parse/typing failure *)
  | Shutting_down
  | Internal

val error_code_name : error_code -> string

val parse_request : string -> (json option * request, error_code * string) result
(** Parse one request line; [json option] is the echoed request id. *)

(** {1 Responses} *)

val ok_line : ?id:json -> (string * json) list -> string
(** [{"ok":true, ...fields}] as one line. *)

val error_line : ?id:json -> error_code -> string -> string
(** [{"ok":false,"error":code,"message":msg}] as one line. *)

type response = { id : json option; ok : bool; body : json }

val parse_response : string -> response
(** @raise Malformed on garbage. *)

(** {1 Textual update streams}

    One command per line: [insert TABLE,v1,v2,...],
    [delete TABLE,v1,v2,...] or [validate]; blank lines and [#]
    comments are skipped.  This is the [fcv monitor] input format and
    what [fcv client updates] forwards to a daemon. *)

type update =
  | U_insert of string * string list
  | U_delete of string * string list
  | U_validate

val update_of_line : string -> update option
(** [None] for blank/comment lines.  @raise Malformed. *)

val request_of_update : update -> request

type coded =
  | Coded of int array
  | Unknown_value of string  (** which value; only when [intern] is false *)

val code_row :
  ?intern:bool ->
  Fcv_relation.Database.t ->
  table:string ->
  string list ->
  coded
(** Dictionary-code a textual row against [table]'s schema.  With
    [intern] (the service's semantics) unseen values get fresh codes —
    the index layer rebuilds affected entries; without (the batch
    [fcv monitor] semantics) they yield [Unknown_value].
    @raise Malformed on arity mismatch.
    @raise Invalid_argument on unknown tables. *)

(** {1 Addresses} *)

val sockaddr_of_string : string -> Unix.sockaddr
(** ["host:port"] (or [":port"], meaning 127.0.0.1) is TCP; anything
    else is a Unix-domain socket path. *)
