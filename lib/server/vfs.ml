(** File-system effect layer: one dispatch table for every durable
    effect, so the fault-injection simulator can substitute an
    instrumented in-memory file system.  See vfs.mli. *)

type handle = {
  h_append : string -> unit;
  h_fsync : unit -> unit;
  h_close : unit -> unit;
}

type backend = {
  b_file_exists : string -> bool;
  b_mkdir : string -> int -> unit;
  b_readdir : string -> string array;
  b_remove : string -> unit;
  b_rename : string -> string -> unit;
  b_read_file : string -> string;
  b_write_file : string -> string -> unit;
  b_truncate : string -> int -> unit;
  b_file_size : string -> int;
  b_open_append : string -> handle;
  b_append : handle -> string -> unit;
  b_fsync : handle -> unit;
  b_close : handle -> unit;
}

let make_handle ~append ~fsync ~close = { h_append = append; h_fsync = fsync; h_close = close }

(* -- the real file system --------------------------------------------------- *)

(* Write the whole string, handling short writes. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let real =
  {
    b_file_exists = Sys.file_exists;
    b_mkdir = (fun path perm -> Sys.mkdir path perm);
    b_readdir = Sys.readdir;
    b_remove = Sys.remove;
    b_rename = Sys.rename;
    b_read_file = (fun path -> In_channel.with_open_bin path In_channel.input_all);
    b_write_file =
      (fun path contents ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc contents;
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc)));
    b_truncate = Unix.truncate;
    b_file_size = (fun path -> (Unix.stat path).Unix.st_size);
    b_open_append =
      (fun path ->
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
        make_handle
          ~append:(fun s -> write_all fd s)
          ~fsync:(fun () -> Unix.fsync fd)
          ~close:(fun () -> Unix.close fd));
    b_append = (fun h s -> h.h_append s);
    b_fsync = (fun h -> h.h_fsync ());
    b_close = (fun h -> h.h_close ());
  }

(* -- dispatch --------------------------------------------------------------- *)

let backend = ref real

let set_backend b = backend := b
let current_backend () = !backend

let with_backend b f =
  let saved = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := saved) f

let file_exists path = !backend.b_file_exists path
let mkdir path perm = !backend.b_mkdir path perm
let readdir path = !backend.b_readdir path
let remove path = !backend.b_remove path
let rename src dst = !backend.b_rename src dst
let read_file path = !backend.b_read_file path
let write_file path contents = !backend.b_write_file path contents
let truncate path len = !backend.b_truncate path len
let file_size path = !backend.b_file_size path
let open_append path = !backend.b_open_append path
let append h s = !backend.b_append h s
let fsync h = !backend.b_fsync h
let close h = !backend.b_close h

(* -- line reader ------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let reader_of_string src = { src; pos = 0 }

let read_line r =
  let n = String.length r.src in
  if r.pos >= n then raise End_of_file;
  match String.index_from_opt r.src r.pos '\n' with
  | Some i ->
    let line = String.sub r.src r.pos (i - r.pos) in
    r.pos <- i + 1;
    line
  | None ->
    let line = String.sub r.src r.pos (n - r.pos) in
    r.pos <- n;
    line
