(** The sharded serving tier: N {!Shard}s behind one {!Router}.
    Constraints and tables partition across shards — a table's
    authoritative copy lives on its owner ({!Router.owner}); a
    constraint lives on the shard owning its first watched table, and
    that shard keeps synced replicas of any watched table it does not
    own.  Mutations fan out to the owner plus every watcher; a
    [validate] fans out to each shard's monitor (one dirty-set pass
    per shard) and the verdicts merge by constraint id, so an N-shard
    tier answers exactly what the 1-shard tier (and the library-level
    checker) would.

    {e Group commit}: shard WALs are opened un-fsynced; {!flush} —
    called by the server once per group-commit window and at the end
    of every event-loop round, and by the simulator at its ack points
    — fsyncs every dirty shard's WAL, batching mutations across
    sessions into one fsync per WAL.  Acknowledgements must only be
    released after {!flush} returns.

    {e Cross-shard registration}: registering a constraint whose
    watched tables are owned elsewhere first {e migrates} each such
    table — the constraint's shard syncs its replica from the owner's
    copy by a textual row diff, journaled as ordinary insert/delete
    records on that shard so replay reproduces the replica
    deterministically — then registers (and journals) the constraint
    there.  Constraint ids are allocated tier-globally, so ids never
    collide across shards and match the single-monitor allocation.

    {e Lineage}: a state directory records its shard count in a
    [SHARDS] file (shards > 1 lay out as [shard-<i>/] subdirectories;
    one shard keeps the flat legacy layout).  Restarting with a
    different count is refused — re-sharding would need a migration
    no code path performs. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module P = Protocol

type t = {
  nshards : int;
  shards : Shard.t array;
  router : Router.t;
  fsync : bool;  (** fsync WALs at group-commit flush *)
  mutable next_id : int;  (** tier-global constraint id allocation *)
  mutable pending : int;  (** records journaled since the last flush *)
}

let shards t = t.shards
let shard_count t = t.nshards
let pending t = t.pending
let clear_pending t = t.pending <- 0

(* -- SHARDS lineage -------------------------------------------------------- *)

let shards_path dir = Filename.concat dir "SHARDS"

let record_shards dir n = Vfs.write_file (shards_path dir) (Printf.sprintf "shards %d\n" n)

(* Infer the shard count of a directory whose SHARDS file is missing
   or crash-damaged: shard subdirectories mean a multi-shard layout,
   a flat CURRENT / wal-0.log means a legacy single shard, an empty
   directory means fresh (no lineage yet). *)
let infer_shards dir =
  let entries = if Vfs.file_exists dir then Vfs.readdir dir else [||] in
  let sub =
    Array.fold_left
      (fun acc name ->
        match Scanf.sscanf_opt name "shard-%d%!" (fun i -> i) with
        | Some i -> max acc (i + 1)
        | None -> acc)
      0 entries
  in
  if sub > 0 then Some sub
  else if
    Vfs.file_exists (State.current_path dir) || Vfs.file_exists (State.wal_path ~dir ~gen:0)
  then Some 1
  else None

let read_shards dir =
  if not (Vfs.file_exists dir) then None
  else if not (Vfs.file_exists (shards_path dir)) then infer_shards dir
  else begin
    match
      String.split_on_char ' ' (String.trim (Vfs.read_file (shards_path dir)))
    with
    | [ "shards"; n ] -> ( match int_of_string_opt n with Some n -> Some n | None -> infer_shards dir)
    | _ -> infer_shards dir (* crash-damaged SHARDS: the layout itself is the record *)
  end

let shard_dirs ~state_dir nshards =
  if nshards = 1 then [| state_dir |]
  else Array.init nshards (fun i -> Filename.concat state_dir (Printf.sprintf "shard-%d" i))

(* -- construction ---------------------------------------------------------- *)

let watched_tables shard =
  List.concat_map (fun r -> r.Core.Monitor.tables) (Core.Monitor.constraints (Shard.monitor shard))

let recompute_watchers t =
  Router.recompute t.router
    ~watched:(Array.to_list (Array.map watched_tables t.shards))

let of_shards ?(fsync = true) shards =
  let nshards = Array.length shards in
  if nshards < 1 then invalid_arg "Tier.of_shards: need at least one shard";
  let next_id =
    Array.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc r -> max acc (r.Core.Monitor.id + 1))
          acc
          (Core.Monitor.constraints (Shard.monitor s)))
      0 shards
  in
  let t = { nshards; shards; router = Router.create nshards; fsync; next_id; pending = 0 } in
  recompute_watchers t;
  t

let create_fresh ?fsync ?(max_nodes = 0) ~shards ~load_base () =
  of_shards ?fsync
    (Array.init shards (fun sid ->
         Shard.create ~sid (Core.Monitor.create (Core.Index.create ~max_nodes (load_base ())))))

let recover ?(max_nodes = 0) ?(shards = 1) ?(fsync = true) ~state_dir ~load_base () =
  if shards < 1 then invalid_arg "Tier.recover: shards must be >= 1";
  (match read_shards state_dir with
  | Some n when n <> shards ->
    invalid_arg
      (Printf.sprintf
         "state dir %s holds a %d-shard tier; restarting with %d shards would need a \
          re-sharding migration no code path performs — use a fresh state dir"
         state_dir n shards)
  | Some _ | None -> ());
  if not (Vfs.file_exists state_dir) then Vfs.mkdir state_dir 0o755;
  record_shards state_dir shards;
  let dirs = shard_dirs ~state_dir shards in
  let rs = Array.map (fun dir -> Shard.recover ~max_nodes ~state_dir:dir ~load_base ()) dirs in
  let ss =
    Array.mapi
      (fun sid (r : Shard.recovered) ->
        Shard.create ~unregistered:r.Shard.unregistered ~sid ~dir:dirs.(sid) r.Shard.monitor)
      rs
  in
  (of_shards ~fsync ss, rs)

(* -- group commit ---------------------------------------------------------- *)

let flush t =
  if t.fsync then Array.iter Shard.sync t.shards;
  t.pending <- 0

(* -- routing + fan-out ----------------------------------------------------- *)

let constraint_tables source =
  (* spec-aware: tolerates the [holds >= p .] soft-constraint prefix *)
  Core.Formula.relations (Core.Fol_parser.spec_of_string source).Core.Formula.formula

(* The shards a logged request journals on (owner first), for the
   simulator's instrumentation.  Registration may additionally journal
   migration records on the constraint's shard. *)
let targets t req =
  match req with
  | P.Insert (table, _) | P.Delete (table, _) -> Router.mutation_targets t.router table
  | P.Register { source; _ } -> (
    match constraint_tables source with
    | tables -> [ Router.constraint_shard ~shards:t.nshards tables ]
    | exception _ -> [])
  | P.Unregister c ->
    Array.to_list t.shards
    |> List.filter_map (fun s ->
           if
             List.exists
               (fun r -> r.Core.Monitor.id = c)
               (Core.Monitor.constraints (Shard.monitor s))
           then Some (Shard.sid s)
           else None)
  | P.Repair _ | P.Explain _ | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping
  | P.Shutdown ->
    []

let textual_rows db table =
  let tbl = R.Database.table db table in
  let rows = ref [] in
  R.Table.iter tbl (fun row ->
      rows :=
        Array.to_list
          (Array.mapi
             (fun j code -> R.Value.to_string (R.Dict.value (R.Table.dict tbl j) code))
             row)
        :: !rows);
  List.sort compare !rows

(* [a \ b] on sorted textual row lists. *)
let rec row_diff a b =
  match (a, b) with
  | [], _ -> []
  | a, [] -> a
  | x :: a', y :: b' ->
    let c = compare x y in
    if c = 0 then row_diff a' b'
    else if c < 0 then x :: row_diff a' b
    else row_diff a b'

(* Sync [shard]'s replica of [table] from its owner's authoritative
   copy, journaling the diff as ordinary insert/delete records on
   [shard] — replay then reproduces the replica without any extra
   persistence.  A no-op when [shard] owns the table or already
   watches it (its replica is current by fan-out). *)
let migrate t ~shard table =
  let sid = Shard.sid shard in
  if Router.owner ~shards:t.nshards table <> sid
     && not (Router.watches t.router ~shard:sid table)
  then begin
    let owner = t.shards.(Router.owner ~shards:t.nshards table) in
    let here_db = (Core.Monitor.index (Shard.monitor shard)).Core.Index.db in
    let owner_db = (Core.Monitor.index (Shard.monitor owner)).Core.Index.db in
    if List.mem table (R.Database.table_names owner_db) then begin
      let src = textual_rows owner_db table in
      let dst = textual_rows here_db table in
      let fail_divergence req = function
        | Ok _ -> ()
        | Error (_, msg) ->
          failwith
            (Printf.sprintf "shard %d: migration of table %s rejected %s: %s" sid table
               (P.request_to_line req) msg)
      in
      List.iter
        (fun row ->
          let req = P.Delete (table, row) in
          fail_divergence req (Mutator.apply (Shard.mut shard) req))
        (row_diff dst src);
      List.iter
        (fun row ->
          let req = P.Insert (table, row) in
          fail_divergence req (Mutator.apply (Shard.mut shard) req))
        (row_diff src dst)
    end
  end

(* Apply + journal one registration tier-wide: place the constraint,
   migrate its remote tables onto its shard, register under a
   tier-allocated (or pinned) id.  Raises the {!Core.Monitor.add}
   errors on a bad constraint, like {!Mutator.register}. *)
let register ?id t source =
  let tables = constraint_tables source in
  let shard = t.shards.(Router.constraint_shard ~shards:t.nshards tables) in
  List.iter (migrate t ~shard) tables;
  let id = match id with Some i -> i | None -> t.next_id in
  let reg = Mutator.register ~id (Shard.mut shard) source in
  t.next_id <- max t.next_id (reg.Core.Monitor.id + 1);
  recompute_watchers t;
  reg

let journaled_total t = Array.fold_left (fun acc s -> acc + Shard.journaled s) 0 t.shards

(* Assemble the repair planner's database: the owner's authoritative
   copy of every constraint-watched table, copied by DECODED values —
   per-shard dictionaries may have assigned codes in different orders
   (migrations, replay), so coded rows are not portable across
   shards.  The planner deep-clones again internally; this copy is
   only the tier-wide logical state it plans against. *)
let repair_db t =
  let db = R.Database.create () in
  let tables =
    Array.to_list t.shards
    |> List.concat_map (fun s ->
           List.concat_map
             (fun r -> r.Core.Monitor.tables)
             (Core.Monitor.constraints (Shard.monitor s)))
    |> List.sort_uniq compare
  in
  List.iter
    (fun tname ->
      let owner_db =
        (Core.Monitor.index (Shard.monitor t.shards.(Router.owner ~shards:t.nshards tname)))
          .Core.Index.db
      in
      if List.mem tname (R.Database.table_names owner_db) then begin
        let src = R.Database.table owner_db tname in
        let attrs =
          Array.to_list
            (Array.map (fun a -> (a.R.Schema.name, a.R.Schema.domain)) (R.Table.schema src))
        in
        let dst = R.Database.create_table db ~name:tname ~attrs in
        R.Table.iter src (fun row -> ignore (R.Table.insert dst (R.Table.decode src row)))
      end)
    tables;
  db

(* Answer one request tier-wide, mirroring {!Mutator.apply}'s contract
   (apply first, journal only on success; non-mutating requests are
   [Ok []]).  Mutations apply on the owner first — its verdict is the
   response — then on every watcher; a watcher disagreeing with the
   owner is a shard-divergence bug and escapes as an exception.
   Repair plans tier-wide and, when asked to apply, executes each
   planned deletion through this very function — owner-first fan-out,
   journaled, inside the caller's group-commit window. *)
let rec apply t req : ((string * T.json) list, P.error_code * string) result =
  match req with
  | P.Repair { strategy; max_deletions; apply = do_apply } ->
    (* no window accounting of its own: an applied plan's deletions
       run through [apply] below and account themselves *)
    repair t ~strategy ~max_deletions ~do_apply
  | _ ->
    let before = journaled_total t in
    let result = apply_routed t req in
    t.pending <- t.pending + (journaled_total t - before);
    result

and repair t ~strategy ~max_deletions ~do_apply =
  match Fcv_repair.Repair.strategy_of_string strategy with
  | Error msg -> Error (P.Bad_request, msg)
  | Ok strategy -> (
    let specs =
      List.map
        (fun r ->
          {
            Core.Formula.threshold = r.Core.Monitor.threshold;
            formula = r.Core.Monitor.formula;
          })
        (List.sort
           (fun a b -> compare a.Core.Monitor.id b.Core.Monitor.id)
           (Array.fold_left
              (fun acc s ->
                List.rev_append (Core.Monitor.constraints (Shard.monitor s)) acc)
              [] t.shards))
    in
    match Fcv_repair.Repair.plan_specs ~strategy ?max_deletions (repair_db t) specs with
    | exception Fcv_repair.Repair.Not_tractable msg -> Error (P.Constraint_error, msg)
    | exception (Invalid_argument msg | Failure msg) -> Error (P.Bad_request, msg)
    | plan ->
      let applied = ref 0 in
      let failed = ref None in
      if do_apply then
        List.iter
          (fun d ->
            if !failed = None then
              match apply t (P.Delete (d.Fcv_repair.Repair.table, d.Fcv_repair.Repair.cells)) with
              | Ok _ -> incr applied
              | Error (_, msg) ->
                failed :=
                  Some
                    (Printf.sprintf "planned deletion on %s rejected: %s"
                       d.Fcv_repair.Repair.table msg))
          plan.Fcv_repair.Repair.deletions;
      if T.enabled () then begin
        T.incr (T.counter "repair.requests");
        if do_apply then T.incr ~by:!applied (T.counter "repair.applied")
      end;
      match !failed with
      | Some msg -> Error (P.Internal, msg)
      | None ->
        Ok
          [
            ("repair", Fcv_repair.Repair.plan_json plan); ("applied", T.Int !applied);
          ])

and apply_routed t req : ((string * T.json) list, P.error_code * string) result =
    match req with
    | P.Register { source; id } -> (
      match register ?id t source with
      | reg -> Ok [ ("constraint", T.Int reg.Core.Monitor.id) ]
      | exception
          ( Core.Fol_parser.Error msg
          | Core.Typing.Type_error msg
          | Core.Compile.Unsupported msg
          | Invalid_argument msg ) ->
        Error (P.Constraint_error, msg))
    | P.Unregister c -> (
      match targets t req with
      | sid :: _ ->
        let r = Mutator.apply (Shard.mut t.shards.(sid)) req in
        recompute_watchers t;
        r
      | [] -> Error (P.Bad_request, Printf.sprintf "no constraint %d" c))
    | P.Insert (table, _) | P.Delete (table, _) -> (
      match Router.mutation_targets t.router table with
      | [] -> assert false
      | owner :: watchers -> (
        match Mutator.apply (Shard.mut t.shards.(owner)) req with
        | Error _ as e -> e
        | Ok fields ->
          List.iter
            (fun sid ->
              match Mutator.apply (Shard.mut t.shards.(sid)) req with
              | Ok _ -> ()
              | Error (_, msg) ->
                failwith
                  (Printf.sprintf "shard %d rejected a mutation shard %d accepted: %s" sid
                     owner msg))
            watchers;
          Ok fields))
    | P.Repair _ -> assert false (* dispatched in [apply] *)
    | P.Explain c -> (
      (* the owning shard's monitor answers; read-only, so no journal
         and no fan-out *)
      match
        Array.to_list t.shards
        |> List.find_map (fun s -> Core.Monitor.explain (Shard.monitor s) c)
      with
      | Some (reg, plan) ->
        Ok
          [
            ("constraint", T.Int reg.Core.Monitor.id);
            ("source", T.String reg.Core.Monitor.source);
            ("plan", Core.Planner.plan_json plan);
            ("text", T.String (Core.Planner.render plan));
          ]
      | None -> Error (P.Bad_request, Printf.sprintf "no constraint %d" c))
    | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping | P.Shutdown -> Ok []

(* -- validation ------------------------------------------------------------ *)

let validate t =
  let reports =
    Array.fold_left
      (fun acc s -> List.rev_append (Core.Monitor.validate (Shard.monitor s)) acc)
      [] t.shards
  in
  List.sort
    (fun a b ->
      compare a.Core.Monitor.constraint_.Core.Monitor.id
        b.Core.Monitor.constraint_.Core.Monitor.id)
    reports

let verdicts t =
  List.sort compare
    (Array.fold_left
       (fun acc s -> List.rev_append (Core.Monitor.verdicts (Shard.monitor s)) acc)
       [] t.shards)

let constraints t =
  List.sort
    (fun a b -> compare a.Core.Monitor.id b.Core.Monitor.id)
    (Array.fold_left
       (fun acc s -> List.rev_append (Core.Monitor.constraints (Shard.monitor s)) acc)
       [] t.shards)

(* -- lifecycle ------------------------------------------------------------- *)

let set_jobs t n = Array.iter (fun s -> Core.Monitor.set_jobs (Shard.monitor s) n) t.shards
let stop_jobs t = Array.iter (fun s -> Core.Monitor.stop (Shard.monitor s)) t.shards
let gc t = Array.fold_left (fun acc s -> acc + Core.Monitor.gc (Shard.monitor s)) 0 t.shards

(* A committed rotation covers every applied mutation, so a snapshot
   implies the shard's group commit. *)
let snapshot t =
  Array.iter Shard.snapshot t.shards;
  t.pending <- 0

(* Per-shard snapshot lifecycle: each shard rotates on its own WAL
   growth, so one write-hot shard doesn't force tier-wide rotations. *)
let auto_snapshot t ~every =
  Array.iter (fun s -> if Shard.since_snapshot s >= every then Shard.snapshot s) t.shards

let close t = Array.iter Shard.close t.shards

(* The cardinality a client observes for [table] — its owner's
   authoritative copy. *)
let table_cardinality t table =
  let db =
    (Core.Monitor.index (Shard.monitor t.shards.(Router.owner ~shards:t.nshards table)))
      .Core.Index.db
  in
  R.Table.cardinality (R.Database.table db table)
