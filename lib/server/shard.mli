(** One shard of the serving tier: its own {!Mutator} (monitor +
    tombstones), WAL generation sequence and snapshot lineage under
    its own directory.  WALs are opened un-fsynced; the tier's group
    commit calls {!sync} before acknowledgements are released. *)

type t

val create : ?unregistered:string list -> sid:int -> ?dir:string -> Core.Monitor.t -> t
(** Wire a mutator over [monitor] to the live generation's WAL under
    [dir] (created if missing; no [dir] = in-memory shard). *)

val sid : t -> int
val dir : t -> string option
val mut : t -> Mutator.t
val monitor : t -> Core.Monitor.t
val unregistered : t -> string list

val since_snapshot : t -> int
(** WAL records journaled since the last rotation (per-shard
    auto-snapshot trigger). *)

val journaled : t -> int
(** Records handed to the journal through this handle's lifetime,
    bumped {e before} the append — so it includes a record whose
    append crashed mid-flight (the simulator's durable-window upper
    bound). *)

val is_dirty : t -> bool
(** Appends since the last {!sync} or {!snapshot} — what a group
    commit still has to fsync. *)

val wal_appended : t -> int
(** Records appended to the current generation's WAL handle. *)

val set_on_journal : t -> (Protocol.request -> unit) -> unit
(** Observation hook, fired after each journaled record (mutation
    already applied) — the simulator's oracle digests here. *)

val raw_append : t -> Protocol.request -> unit
(** Append straight to the WAL, bypassing apply-then-journal — only
    for the simulator's planted log-before-apply bug. *)

val sync : t -> unit
(** Fsync the WAL if dirty (one arm of the tier's group commit). *)

val snapshot : t -> unit
(** Cut a snapshot generation and rotate to its fresh (empty, durably
    created) WAL; the shard comes out clean.  No-op without a dir. *)

val close : t -> unit
(** Close the WAL and join the monitor's worker domains. *)

type recovered = {
  monitor : Core.Monitor.t;
  replayed : int;  (** WAL records replayed over the snapshot *)
  from_snapshot : bool;
  unregistered : string list;
      (** tombstones: sources explicitly unregistered (from the
          snapshot, updated through the replay) — pass to {!create}
          and do not re-register these from startup files *)
}

val recover :
  ?max_nodes:int ->
  state_dir:string ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  recovered
(** Rebuild the monitor this shard should resume from: the latest
    snapshot if one exists (else a fresh monitor over [load_base ()]),
    then the live generation's WAL replayed over it — truncating any
    torn tail so subsequent appends stay recoverable. *)
