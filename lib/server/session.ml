(** Per-connection state: non-blocking buffered line I/O with a cap on
    unterminated input (one misbehaving client cannot balloon memory
    or stall the loop). *)

type t = {
  id : int;
  fd : Unix.file_descr;
  peer : string;
  inbuf : Buffer.t;
  mutable queue : string list;  (** oldest first *)
  mutable out : string;
  mutable staged : string list;  (** replies awaiting group commit, newest first *)
  mutable last_activity : float;
  mutable partial_since : float option;
  mutable requests : int;
  mutable closing : bool;
}

let create ~id ~fd ~peer =
  Unix.set_nonblock fd;
  {
    id;
    fd;
    peer;
    inbuf = Buffer.create 256;
    queue = [];
    out = "";
    staged = [];
    last_activity = Unix.gettimeofday ();
    partial_since = None;
    requests = 0;
    closing = false;
  }

(* Split [inbuf] on newlines: complete lines (sans '\n', tolerating a
   trailing '\r') append to the queue, the unterminated tail stays. *)
let split_lines t =
  let s = Buffer.contents t.inbuf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
    let lines =
      String.sub s 0 last |> String.split_on_char '\n'
      |> List.map (fun l ->
             let n = String.length l in
             if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
    in
    t.queue <- t.queue @ lines;
    Buffer.clear t.inbuf;
    Buffer.add_substring t.inbuf s (last + 1) (String.length s - last - 1)

let feed t ~max_line bytes n =
  Buffer.add_subbytes t.inbuf bytes 0 n;
  t.last_activity <- Unix.gettimeofday ();
  split_lines t;
  if Buffer.length t.inbuf = 0 then t.partial_since <- None
  else if t.partial_since = None then t.partial_since <- Some t.last_activity;
  if
    Buffer.length t.inbuf > max_line
    || List.exists (fun l -> String.length l > max_line) t.queue
  then `Line_too_long
  else `Ok

let next_line t =
  match t.queue with
  | [] -> None
  | l :: rest ->
    t.queue <- rest;
    Some l

let peek_line t = match t.queue with [] -> None | l :: _ -> Some l
let queued t = List.length t.queue
let send t line = t.out <- t.out ^ line ^ "\n"

(* Stage a reply behind the group commit: it joins [out] — in
   arrival order — only when {!release} runs, after the tier has
   fsync'd the WAL records the reply acknowledges. *)
let stage t line = t.staged <- line :: t.staged

let release t =
  match t.staged with
  | [] -> ()
  | staged ->
    t.out <- t.out ^ String.concat "\n" (List.rev staged) ^ "\n";
    t.staged <- []

let has_output t = t.out <> ""

let flush t =
  if t.out = "" then true
  else begin
    let b = Bytes.unsafe_of_string t.out in
    match Unix.write t.fd b 0 (Bytes.length b) with
    | written ->
      t.out <- String.sub t.out written (String.length t.out - written);
      true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false
  end
