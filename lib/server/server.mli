(** The constraint service: a long-running daemon multiplexing
    concurrent client sessions over one {!Core.Monitor}, with
    WAL-backed durability.

    Design points (see DESIGN.md §"Constraint service"):
    - single-threaded [select] event loop — the BDD manager is
      single-threaded, so sessions interleave at request granularity;
    - {e update coalescing}: within one loop round, every session's
      burst of inserts/deletes is applied before validation runs, and
      all sessions awaiting [validate] share one dirty-set pass;
    - {e durability}: mutating requests are applied, then appended to
      the WAL (fsync'd per policy), then answered — a failed mutation
      is never journaled, an acknowledged one always is; snapshots
      ({!Core.Index_io} + database + constraint registry) bound replay
      length and switch atomically {e together with} a fresh
      per-generation WAL ({!State}), so replay never re-applies
      records a snapshot covers;
    - {e isolation}: malformed lines get an error response, oversized
      or half-dead sessions are closed, handler exceptions become
      [internal] error responses — one bad client never kills the
      loop;
    - graceful drain on SIGTERM/SIGINT (or a [shutdown] request):
      queued requests are answered, a final snapshot is cut, sockets
      are closed.

    The loop is exposed as {!poll} (one round) so tests can drive
    server and clients deterministically from a single thread; {!run}
    is the daemon entry point.

    The durable core is factored out of the event loop: {!Mutator} is
    the apply-then-journal engine behind every mutating request, and
    {!snapshot_rotate} the atomic snapshot + WAL-rotation sequence —
    the fault-injection simulator ([lib/sim]) drives these directly,
    so its crash points exercise the daemon's real durability code. *)

(** The apply-then-journal engine: applies a mutating request to the
    monitor and journals it (through a caller-supplied [log] callback)
    {e only on success}, so a mutation the client saw fail can never
    be replayed by recovery.  Tracks unregister tombstones. *)
module Mutator : sig
  type t

  val create : ?unregistered:string list -> ?log:(Protocol.request -> unit) -> Core.Monitor.t -> t
  (** [log] journals an acknowledged mutation (default: none); set it
      later with {!set_log} when the WAL outlives this value. *)

  val monitor : t -> Core.Monitor.t

  val unregistered : t -> string list
  (** Current tombstones (for snapshotting). *)

  val set_log : t -> (Protocol.request -> unit) -> unit

  val register : ?id:int -> t -> string -> Core.Monitor.registered
  (** Apply + journal one registration (with the pinned id), clearing
      the source's tombstone.
      @raise the {!Core.Monitor.add} errors on a bad constraint. *)

  val apply : t -> Protocol.request -> ((string * Fcv_util.Telemetry.json) list, Protocol.error_code * string) result
  (** Answer one mutating request with the response fields a client
      would see, or the error code + message.  Non-mutating requests
      return [Ok []] and journal nothing. *)
end

val snapshot_rotate :
  dir:string -> fsync_every:int -> Mutator.t -> Wal.t option -> int * Wal.t option
(** Cut a snapshot generation from the mutator's monitor + tombstones
    and rotate to the new generation's fresh (empty, durably created)
    WAL, returning the new generation number and WAL handle.  The
    empty WAL is created {e before} the [CURRENT] rename, so snapshot
    and log switch atomically together. *)

type config = {
  addr : string;  (** Unix socket path or "host:port" ({!Protocol.sockaddr_of_string}) *)
  state_dir : string option;  (** durability root; [None] = in-memory only *)
  fsync_every : int;  (** WAL fsync cadence (1 = every record, 0 = never) *)
  snapshot_every : int;
      (** cut a snapshot automatically every this many WAL records
          (0 = only on [snapshot] requests and shutdown) *)
  idle_timeout : float;  (** close sessions silent this long, in seconds (0 = never) *)
  partial_timeout : float;
      (** close sessions holding a half-received line this long —
          the request read timeout (0 = never) *)
  max_line : int;  (** max request-line bytes before the session is killed *)
  max_sessions : int;
  jobs : int;
      (** worker domains for the coalesced validate pass
          ({!Core.Monitor.set_jobs}); the event loop itself stays
          single-threaded.  1 = validate inline. *)
}

val default_config : addr:string -> config
(** fsync every record, snapshot every 10k records, 60 s idle timeout,
    10 s partial-request timeout, 1 MiB lines, 64 sessions, 1 job. *)

type t

val create : ?unregistered:string list -> config -> Core.Monitor.t -> t
(** Bind and listen (unlinking a stale Unix socket path), open the
    live generation's WAL when [state_dir] is set.  [unregistered]
    seeds the tombstone list (from {!recover}).  SIGPIPE is ignored
    process-wide. *)

val monitor : t -> Core.Monitor.t

val register : ?id:int -> t -> string -> Core.Monitor.registered
(** Register a constraint through the durability path (apply, then
    WAL-log with the pinned id) — what a client [register] request
    does; used directly for [--constraints] startup files so their ids
    survive crash recovery.  Clears the source's tombstone.
    @raise the {!Core.Monitor.add} errors on a bad constraint. *)

val poll : ?timeout:float -> t -> bool
(** One event-loop round: accept, read, process (with update
    coalescing), flush, reap timed-out sessions, auto-snapshot.
    Returns [false] once the server has stopped. *)

val draining : t -> bool

val request_drain : t -> unit
(** Ask for a graceful stop: the next {!poll} round answers what is
    queued (connects arriving meanwhile are refused with
    [shutting_down]), cuts a final snapshot and closes. *)

val stop : t -> unit
(** Immediate graceful stop: final snapshot, close every socket. *)

val kill : t -> unit
(** Crash simulation (for tests): the next {!poll} round closes every
    socket {e without} cutting a snapshot and returns [false], leaving
    exactly the on-disk state an abrupt kill would — recovery must
    come from the last snapshot plus the WAL.  Safe to call from
    another thread than the one polling. *)

val snapshot : t -> unit
(** Cut a snapshot generation now and rotate to its fresh WAL (no-op
    without [state_dir]). *)

val run : t -> unit
(** Daemon entry point: install SIGTERM/SIGINT drain handlers and
    {!poll} until stopped. *)

val apply_logged : Core.Monitor.t -> Protocol.request -> unit
(** Apply one WAL record (register / unregister / insert / delete) to
    a monitor — the replay semantics; non-mutating requests are
    ignored. *)

type recovered = {
  monitor : Core.Monitor.t;
  replayed : int;  (** WAL records replayed over the snapshot *)
  from_snapshot : bool;
  unregistered : string list;
      (** tombstones: sources explicitly unregistered (from the
          snapshot, updated through the replay) — pass to {!create}
          and do not re-register these from startup files *)
}

val recover :
  ?max_nodes:int ->
  state_dir:string ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  recovered
(** Rebuild the monitor a daemon should resume from: the latest
    snapshot if one exists (else a fresh monitor over [load_base ()]),
    then the live generation's WAL replayed over it — truncating any
    torn tail so subsequent appends stay recoverable. *)
