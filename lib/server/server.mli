(** The constraint service: a long-running daemon multiplexing
    concurrent, pipelined client sessions over a sharded {!Tier},
    with WAL-backed durability and group commit.

    Design points (see DESIGN.md §"Sharded serving"):
    - single-threaded [select] event loop — sessions interleave at
      request granularity; a connection may have many requests in
      flight (one read queues every complete line) and replies come
      back in per-session request order;
    - {e sharding}: constraints and tables partition across N shards
      ({!Tier}), each with its own monitor, WAL generation sequence,
      snapshot lineage and GC; a [validate] fans out — one dirty-set
      pass per shard — and merges verdicts by constraint id;
    - {e update coalescing}: within one loop round, every session's
      burst of inserts/deletes is applied before validation runs, and
      all sessions awaiting [validate] share one fan-out pass;
    - {e durability with group commit}: mutating requests are applied
      and journaled per shard, their replies {e staged}; when the
      group-commit window fills — and at the end of every round — the
      tier fsyncs each dirty WAL once and the staged replies are
      released, so an acknowledged mutation is always durable while
      the write path pays one fsync per WAL per batch, not per
      mutation.  Snapshots bound replay length and switch atomically
      {e together with} a fresh per-generation WAL, per shard;
    - {e isolation}: malformed lines get an error response, oversized
      or half-dead sessions are closed, handler exceptions become
      [internal] error responses — one bad client never kills the
      loop;
    - graceful drain on SIGTERM/SIGINT (or a [shutdown] request):
      queued requests are answered, final snapshots are cut, sockets
      are closed.

    The loop is exposed as {!poll} (one round) so tests can drive
    server and clients deterministically from a single thread; {!run}
    is the daemon entry point.

    The durable core is factored out of the event loop — {!Mutator}
    (apply-then-journal), {!Shard} (per-shard WAL + snapshot lineage)
    and {!Tier} (routing, fan-out, group commit) — and the
    fault-injection simulator ([lib/sim]) drives those layers
    directly, so its crash points exercise the daemon's real
    durability code at every per-shard effect. *)

(** Compatibility re-export of {!Mutator} (the apply-then-journal
    engine lived here before the tier was sharded). *)
module Mutator = Mutator

type config = {
  addr : string;  (** Unix socket path or "host:port" ({!Protocol.sockaddr_of_string}) *)
  state_dir : string option;  (** durability root; [None] = in-memory only *)
  fsync_every : int;
      (** [> 0]: fsync dirty WALs at each group commit (the durable
          default); [0]: never fsync (OS-buffered only) *)
  snapshot_every : int;
      (** cut a shard's snapshot automatically every this many of its
          WAL records (0 = only on [snapshot] requests and shutdown) *)
  idle_timeout : float;  (** close sessions silent this long, in seconds (0 = never) *)
  partial_timeout : float;
      (** close sessions holding a half-received line this long —
          the request read timeout (0 = never) *)
  max_line : int;  (** max request-line bytes before the session is killed *)
  max_sessions : int;
  jobs : int;
      (** worker domains per shard for the coalesced validate passes
          ({!Core.Monitor.set_jobs}); the event loop itself stays
          single-threaded.  1 = validate inline. *)
  shards : int;  (** serving-tier shard count (used by [fcv serve] to size {!Tier.recover}) *)
  group_commit_window : int;
      (** release acknowledgements after at most this many journaled
          mutations share one WAL fsync; every processing round also
          ends with a flush, bounding ack latency *)
}

val default_config : addr:string -> config
(** Durable group commit (window 8), snapshot every 10k records, 1
    shard, 60 s idle timeout, 10 s partial-request timeout, 1 MiB
    lines, 64 sessions, 1 job. *)

type t

val of_tier : config -> Tier.t -> t
(** Bind and listen (unlinking a stale Unix socket path) over an
    existing tier — the entry point for a sharded daemon
    ({!Tier.recover} + [of_tier]).  SIGPIPE is ignored process-wide;
    [config.jobs] is applied to every shard. *)

val create : ?unregistered:string list -> config -> Core.Monitor.t -> t
(** Single-shard convenience: wrap [monitor] in a 1-shard tier over
    [config.state_dir] (flat legacy layout, [SHARDS] lineage recorded)
    and listen.  [unregistered] seeds the tombstone list (from
    {!recover}). *)

val tier : t -> Tier.t

val monitor : t -> Core.Monitor.t
(** Shard 0's monitor (the only one on a single-shard server). *)

val register : ?id:int -> t -> string -> Core.Monitor.registered
(** Register a constraint through the durability path (apply, then
    WAL-log with the pinned id on its shard, then flush) — what a
    client [register] request does; used directly for [--constraints]
    startup files so their ids survive crash recovery.  Clears the
    source's tombstone.
    @raise the {!Core.Monitor.add} errors on a bad constraint. *)

val poll : ?timeout:float -> t -> bool
(** One event-loop round: accept, read (queueing every complete
    pipelined line), process (with update coalescing and the
    window-triggered group commits), release + flush, reap timed-out
    sessions, per-shard auto-snapshot.  Returns [false] once the
    server has stopped. *)

val draining : t -> bool

val request_drain : t -> unit
(** Ask for a graceful stop: the next {!poll} round answers what is
    queued (connects arriving meanwhile are refused with
    [shutting_down]), cuts final snapshots and closes. *)

val stop : t -> unit
(** Immediate graceful stop: final snapshot per shard, close every
    socket. *)

val kill : t -> unit
(** Crash simulation (for tests): the next {!poll} round closes every
    socket {e without} cutting snapshots — staged, un-flushed replies
    are dropped with it — leaving exactly the on-disk state an abrupt
    kill would; recovery must come from each shard's last snapshot
    plus its WAL.  Safe to call from another thread than the one
    polling. *)

val snapshot : t -> unit
(** Cut a snapshot generation on every shard now (no-op without
    [state_dir]). *)

val run : t -> unit
(** Daemon entry point: install SIGTERM/SIGINT drain handlers and
    {!poll} until stopped. *)

val apply_logged : Core.Monitor.t -> Protocol.request -> unit
(** Compatibility re-export of {!Mutator.apply_logged} (the WAL
    replay semantics). *)

type recovered = Shard.recovered = {
  monitor : Core.Monitor.t;
  replayed : int;  (** WAL records replayed over the snapshot *)
  from_snapshot : bool;
  unregistered : string list;
      (** tombstones: sources explicitly unregistered (from the
          snapshot, updated through the replay) — pass to {!create}
          and do not re-register these from startup files *)
}

val recover :
  ?max_nodes:int ->
  state_dir:string ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  recovered
(** Compatibility re-export of {!Shard.recover}: rebuild the monitor
    a single-shard daemon should resume from (snapshot + WAL replay
    with torn-tail truncation).  Sharded daemons use {!Tier.recover}. *)
