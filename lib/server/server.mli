(** The constraint service: a long-running daemon multiplexing
    concurrent client sessions over one {!Core.Monitor}, with
    WAL-backed durability.

    Design points (see DESIGN.md §"Constraint service"):
    - single-threaded [select] event loop — the BDD manager is
      single-threaded, so sessions interleave at request granularity;
    - {e update coalescing}: within one loop round, every session's
      burst of inserts/deletes is applied before validation runs, and
      all sessions awaiting [validate] share one dirty-set pass;
    - {e durability}: mutating requests append to the WAL (fsync'd per
      policy) before their response is sent; snapshots
      ({!Core.Index_io} + database + constraint registry) bound replay
      length and are switched atomically ({!State});
    - {e isolation}: malformed lines get an error response, oversized
      or half-dead sessions are closed, handler exceptions become
      [internal] error responses — one bad client never kills the
      loop;
    - graceful drain on SIGTERM/SIGINT (or a [shutdown] request):
      queued requests are answered, a final snapshot is cut, sockets
      are closed.

    The loop is exposed as {!poll} (one round) so tests can drive
    server and clients deterministically from a single thread; {!run}
    is the daemon entry point. *)

type config = {
  addr : string;  (** Unix socket path or "host:port" ({!Protocol.sockaddr_of_string}) *)
  state_dir : string option;  (** durability root; [None] = in-memory only *)
  fsync_every : int;  (** WAL fsync cadence (1 = every record, 0 = never) *)
  snapshot_every : int;
      (** cut a snapshot automatically every this many WAL records
          (0 = only on [snapshot] requests and shutdown) *)
  idle_timeout : float;  (** close sessions silent this long, in seconds (0 = never) *)
  partial_timeout : float;
      (** close sessions holding a half-received line this long —
          the request read timeout (0 = never) *)
  max_line : int;  (** max request-line bytes before the session is killed *)
  max_sessions : int;
}

val default_config : addr:string -> config
(** fsync every record, snapshot every 10k records, 60 s idle timeout,
    10 s partial-request timeout, 1 MiB lines, 64 sessions. *)

type t

val create : config -> Core.Monitor.t -> t
(** Bind and listen (unlinking a stale Unix socket path), open the
    WAL when [state_dir] is set.  SIGPIPE is ignored process-wide. *)

val monitor : t -> Core.Monitor.t

val poll : ?timeout:float -> t -> bool
(** One event-loop round: accept, read, process (with update
    coalescing), flush, reap timed-out sessions, auto-snapshot.
    Returns [false] once the server has stopped. *)

val draining : t -> bool

val request_drain : t -> unit
(** Ask for a graceful stop: the next {!poll} round answers what is
    queued, cuts a final snapshot and closes. *)

val stop : t -> unit
(** Immediate graceful stop: final snapshot, close every socket. *)

val kill : t -> unit
(** Crash simulation (for tests): the next {!poll} round closes every
    socket {e without} cutting a snapshot and returns [false], leaving
    exactly the on-disk state an abrupt kill would — recovery must
    come from the last snapshot plus the WAL.  Safe to call from
    another thread than the one polling. *)

val snapshot : t -> unit
(** Cut a snapshot now and reset the WAL (no-op without [state_dir]). *)

val run : t -> unit
(** Daemon entry point: install SIGTERM/SIGINT drain handlers and
    {!poll} until stopped. *)

val apply_logged : Core.Monitor.t -> Protocol.request -> unit
(** Apply one WAL record (register / unregister / insert / delete) to
    a monitor — the replay semantics; non-mutating requests are
    ignored. *)

val recover :
  ?max_nodes:int ->
  state_dir:string ->
  load_base:(unit -> Fcv_relation.Database.t) ->
  unit ->
  Core.Monitor.t * int * bool
(** Rebuild the monitor a daemon should resume from: the latest
    snapshot if one exists (else a fresh monitor over [load_base ()]),
    then the WAL replayed over it.  Returns
    [(monitor, wal records replayed, started from snapshot)]. *)
