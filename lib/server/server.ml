(** The constraint-service daemon: a single-threaded [select] loop
    multiplexing pipelined client sessions over a sharded {!Tier},
    coalescing update bursts into one dirty-set pass per shard per
    validation, journaling mutations to the per-shard WALs, and
    releasing acknowledgements behind the tier's group commit.  See
    server.mli for the design summary.

    The durable core — route a mutation, apply + journal it per
    shard, group-commit, rotate snapshots — lives in {!Mutator} /
    {!Shard} / {!Tier} so the fault-injection simulator drives the
    exact code paths the daemon runs, without the sockets. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module P = Protocol

(* Compatibility re-exports: the durable core used to live here. *)
module Mutator = Mutator

let apply_logged = Mutator.apply_logged

type recovered = Shard.recovered = {
  monitor : Core.Monitor.t;
  replayed : int;
  from_snapshot : bool;
  unregistered : string list;
}

let recover = Shard.recover

(* -- daemon ---------------------------------------------------------------- *)

type config = {
  addr : string;
  state_dir : string option;
  fsync_every : int;
  snapshot_every : int;
  idle_timeout : float;
  partial_timeout : float;
  max_line : int;
  max_sessions : int;
  jobs : int;
  shards : int;
  group_commit_window : int;
}

let default_config ~addr =
  {
    addr;
    state_dir = None;
    fsync_every = 1;
    snapshot_every = 10_000;
    idle_timeout = 60.;
    partial_timeout = 10.;
    max_line = 1 lsl 20;
    max_sessions = 64;
    jobs = 1;
    shards = 1;
    group_commit_window = 8;
  }

type t = {
  config : config;
  tier : Tier.t;
  listen_fd : Unix.file_descr;
  unix_path : string option;  (** to unlink on close *)
  mutable sessions : Session.t list;  (** arrival order *)
  mutable next_session : int;
  mutable requests : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable kill_requested : bool;
  started : float;
  readbuf : Bytes.t;
}

let tier t = t.tier
let monitor t = Shard.monitor (Tier.shards t.tier).(0)
let draining t = t.draining
let request_drain t = t.draining <- true

let of_tier config tier =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the select loop stays single-threaded; only the per-shard
     validate passes inside it fan out (Monitor worker pools) *)
  Tier.set_jobs tier config.jobs;
  let sockaddr = P.sockaddr_of_string config.addr in
  let domain, unix_path =
    match sockaddr with
    | Unix.ADDR_UNIX path ->
      if Sys.file_exists path then Unix.unlink path;
      (Unix.PF_UNIX, Some path)
    | Unix.ADDR_INET _ -> (Unix.PF_INET, None)
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  if unix_path = None then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  {
    config;
    tier;
    listen_fd;
    unix_path;
    sessions = [];
    next_session = 0;
    requests = 0;
    draining = false;
    stopped = false;
    kill_requested = false;
    started = Unix.gettimeofday ();
    readbuf = Bytes.create 65536;
  }

let create ?(unregistered = []) config monitor =
  (match config.state_dir with
  | Some dir ->
    if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
    Tier.record_shards dir 1
  | None -> ());
  let shard = Shard.create ~unregistered ~sid:0 ?dir:config.state_dir monitor in
  of_tier config (Tier.of_shards ~fsync:(config.fsync_every > 0) [| shard |])

(* -- durability ------------------------------------------------------------ *)

(* The group commit: fsync every dirty shard WAL, then release the
   acknowledgements staged behind it — in per-session order.  Runs
   when the window fills and at the end of every processing round. *)
let release_all t =
  Tier.flush t.tier;
  List.iter Session.release t.sessions

let snapshot t =
  match t.config.state_dir with
  | None -> ()
  | Some _ ->
    T.with_span "server.snapshot" @@ fun () ->
    Tier.snapshot t.tier

(* -- request handling ------------------------------------------------------ *)

let json_of_report rep =
  T.Obj
    ([
       ("constraint", T.Int rep.Core.Monitor.constraint_.Core.Monitor.id);
       ("source", T.String rep.Core.Monitor.constraint_.Core.Monitor.source);
       ( "outcome",
         T.String
           (match rep.Core.Monitor.outcome with
           | Core.Checker.Satisfied -> "satisfied"
           | Core.Checker.Violated -> "violated") );
       ("fresh", T.Bool rep.Core.Monitor.fresh);
       ("ms", T.Float rep.Core.Monitor.elapsed_ms);
     ]
    @
    (* soft constraints report their measured violation rate and the
       threshold the verdict was taken against *)
    match rep.Core.Monitor.rate with
    | None -> []
    | Some rt ->
      [
        ("rate", T.Float rt.Core.Checker.ratio);
        ("threshold", T.Float rt.Core.Checker.threshold);
        ("violations", T.String (Fcv_bdd.Nat.to_string rt.Core.Checker.violations));
        ("bindings", T.String (Fcv_bdd.Nat.to_string rt.Core.Checker.total));
      ])

let shard_json s =
  let index = Core.Monitor.index (Shard.monitor s) in
  T.Obj
    [
      ("shard", T.Int (Shard.sid s));
      ("constraints", T.Int (List.length (Core.Monitor.constraints (Shard.monitor s))));
      ("bdd_nodes", T.Int (Fcv_bdd.Manager.size (Core.Index.mgr index)));
      ("wal_appended", T.Int (Shard.wal_appended s));
      ("since_snapshot", T.Int (Shard.since_snapshot s));
      ("dirty", T.Bool (Shard.is_dirty s));
    ]

let stats_json t =
  let shards = Tier.shards t.tier in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 shards in
  let index0 = Core.Monitor.index (monitor t) in
  let tables =
    List.map
      (fun n -> (n, T.Int (Tier.table_cardinality t.tier n)))
      (R.Database.table_names index0.Core.Index.db)
  in
  let mem f =
    sum (fun s -> f (Core.Index.lifecycle_stats (Core.Monitor.index (Shard.monitor s))))
  in
  [
    ("uptime_ms", T.Float ((Unix.gettimeofday () -. t.started) *. 1000.));
    ("sessions", T.Int (List.length t.sessions));
    ("requests", T.Int t.requests);
    ("jobs", T.Int (Core.Monitor.jobs (monitor t)));
    ("constraints", T.Int (List.length (Tier.constraints t.tier)));
    ( "indices",
      T.Int (sum (fun s -> List.length (Core.Index.entries (Core.Monitor.index (Shard.monitor s))))) );
    ( "bdd_nodes",
      T.Int (sum (fun s -> Fcv_bdd.Manager.size (Core.Index.mgr (Core.Monitor.index (Shard.monitor s))))) );
    ( "memory",
      T.Obj
        [
          ("live_nodes", T.Int (mem (fun ls -> ls.Core.Index.live)));
          ("peak_nodes", T.Int (mem (fun ls -> ls.Core.Index.peak)));
          ( "dead_ratio",
            T.Float
              (Array.fold_left
                 (fun acc s ->
                   max acc
                     (Core.Index.lifecycle_stats (Core.Monitor.index (Shard.monitor s)))
                       .Core.Index.dead)
                 0. shards) );
          ("levels_used", T.Int (mem (fun ls -> ls.Core.Index.levels_used)));
          ("levels_live", T.Int (mem (fun ls -> ls.Core.Index.levels_alive)));
          ("op_cache_entries", T.Int (mem (fun ls -> ls.Core.Index.cache_entries)));
          ("gc_runs", T.Int (mem (fun ls -> ls.Core.Index.gc_runs)));
          ("gc_reclaimed", T.Int (mem (fun ls -> ls.Core.Index.gc_reclaimed)));
          ("level_recycles", T.Int (mem (fun ls -> ls.Core.Index.level_recycles)));
          ("deferred_rebuilds", T.Int (mem (fun ls -> ls.Core.Index.deferred_rebuilds)));
        ] );
    ("tables", T.Obj tables);
    ( "hydration",
      (* replica refresh telemetry summed over parallel shards: delta
         catch-ups are the cheap path the mutation journal buys *)
      match
        Array.fold_left
          (fun acc s ->
            match Core.Monitor.replica_stats (Shard.monitor s) with
            | None -> acc
            | Some st -> (
              match acc with
              | None -> Some st
              | Some a ->
                Some
                  Core.Replica.
                    {
                      full = a.full + st.full;
                      delta = a.delta + st.delta;
                      delta_ops = a.delta_ops + st.delta_ops;
                      snapshot_bytes = a.snapshot_bytes + st.snapshot_bytes;
                      delta_bytes = a.delta_bytes + st.delta_bytes;
                    }))
          None shards
      with
      | None -> T.Null
      | Some st ->
        T.Obj
          [
            ("full", T.Int st.Core.Replica.full);
            ("delta", T.Int st.Core.Replica.delta);
            ("delta_ops", T.Int st.Core.Replica.delta_ops);
            ("snapshot_bytes", T.Int st.Core.Replica.snapshot_bytes);
            ("delta_bytes", T.Int st.Core.Replica.delta_bytes);
          ] );
    ( "wal",
      T.Obj
        [
          ("appended", T.Int (sum Shard.wal_appended));
          ("since_snapshot", T.Int (sum Shard.since_snapshot));
        ] );
    ( "group_commit",
      T.Obj
        [
          ("window", T.Int t.config.group_commit_window);
          ("pending", T.Int (Tier.pending t.tier));
        ] );
    ("shards", T.List (Array.to_list (Array.map shard_json shards)));
  ]

(* Registration through the durability path, flushed immediately — a
   --constraints startup file must be durable before the loop runs. *)
let register ?id t source =
  let reg = Tier.register ?id t.tier source in
  Tier.flush t.tier;
  reg

(* Answer one non-validate request.  Mutations go through
   {!Tier.apply} (apply + journal per shard on success) and their
   replies are {e staged} behind the group commit; when the window
   fills, flush and release.  Any escaping exception becomes an
   [internal] error response — a bad request must not kill the
   loop. *)
let handle t session rid req =
  let t0 = Fcv_util.Timer.now () in
  let reply line = Session.stage session line in
  (try
     match req with
     | P.Ping -> reply (P.ok_line ?id:rid [ ("pong", T.Bool true) ])
     | P.Register _ | P.Unregister _ | P.Insert _ | P.Delete _ | P.Repair _ ->
       (match Tier.apply t.tier req with
       | Ok fields -> reply (P.ok_line ?id:rid fields)
       | Error (code, msg) -> reply (P.error_line ?id:rid code msg));
       if Tier.pending t.tier >= t.config.group_commit_window then release_all t
     | P.Explain _ -> (
       (* read-only: routed through Tier.apply for the shard lookup,
          but journals nothing and stages immediately *)
       match Tier.apply t.tier req with
       | Ok fields -> reply (P.ok_line ?id:rid fields)
       | Error (code, msg) -> reply (P.error_line ?id:rid code msg))
     | P.Stats -> reply (P.ok_line ?id:rid (stats_json t))
     | P.Compact ->
       (* the select loop is single-threaded and validates are
          coalesced elsewhere, so no check is in flight here *)
       let reclaimed = Tier.gc t.tier in
       let index = Core.Monitor.index (monitor t) in
       reply
         (P.ok_line ?id:rid
            [
              ("reclaimed", T.Int reclaimed);
              ("nodes", T.Int (Fcv_bdd.Manager.size (Core.Index.mgr index)));
              ("gc_runs", T.Int index.Core.Index.gc_runs);
            ])
     | P.Snapshot ->
       snapshot t;
       reply (P.ok_line ?id:rid [ ("snapshot", T.Bool (t.config.state_dir <> None)) ])
     | P.Shutdown ->
       reply (P.ok_line ?id:rid [ ("draining", T.Bool true) ]);
       t.draining <- true
     | P.Validate -> assert false (* coalesced by [process] *)
   with e ->
     reply (P.error_line ?id:rid P.Internal (Printexc.to_string e)));
  session.Session.requests <- session.Session.requests + 1;
  t.requests <- t.requests + 1;
  if T.enabled () then
    T.observe
      (T.histogram ("server.op." ^ P.request_name req))
      ((Fcv_util.Timer.now () -. t0) *. 1000.)

(* Drain every session's request queue.  Sessions are pipelined: one
   read may queue many complete lines, and each outer round applies
   all sessions' update bursts first, then — if anyone asked — runs
   ONE tier validate (one dirty-set pass per shard, verdicts merged)
   whose reports answer every waiting session.  A session's requests
   keep their order: replies are staged in arrival order and its
   lines after a [validate] wait for the next round.  The round ends
   with a group commit, so every staged acknowledgement is released
   behind its WAL fsync. *)
let process t =
  let progress = ref true in
  while !progress do
    progress := false;
    let validators = ref [] in
    List.iter
      (fun session ->
        let continue = ref true in
        while !continue do
          match Session.next_line session with
          | None -> continue := false
          | Some line ->
            progress := true;
            if String.trim line = "" then ()
            else (
              match P.parse_request line with
              | Error (code, msg) ->
                Session.stage session (P.error_line code msg);
                session.Session.requests <- session.Session.requests + 1;
                t.requests <- t.requests + 1
              | Ok (rid, P.Validate) ->
                validators := (session, rid) :: !validators;
                continue := false
              | Ok (rid, req) -> handle t session rid req)
        done)
      t.sessions;
    if !validators <> [] then begin
      let t0 = Fcv_util.Timer.now () in
      let result =
        match Tier.validate t.tier with
        | reports ->
          let violated =
            List.length
              (List.filter (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports)
          in
          Ok
            [
              ("violated", T.Int violated);
              ("reports", T.List (List.map json_of_report reports));
            ]
        | exception e -> Error (Printexc.to_string e)
      in
      let ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
      List.iter
        (fun (session, rid) ->
          (match result with
          | Ok fields -> Session.stage session (P.ok_line ?id:rid fields)
          | Error msg -> Session.stage session (P.error_line ?id:rid P.Internal msg));
          session.Session.requests <- session.Session.requests + 1;
          t.requests <- t.requests + 1;
          if T.enabled () then T.observe (T.histogram "server.op.validate") ms)
        (List.rev !validators)
    end
  done;
  (* end-of-round group commit: the latency bound when the window
     never fills *)
  release_all t

(* -- the event loop -------------------------------------------------------- *)

let drop_session t session =
  (try Unix.close session.Session.fd with Unix.Unix_error _ -> ());
  t.sessions <- List.filter (fun s -> s != session) t.sessions

let accept_pending t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, peer ->
      let peer =
        match peer with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      in
      let session = Session.create ~id:t.next_session ~fd ~peer in
      t.next_session <- t.next_session + 1;
      let refuse code msg =
        Session.send session (P.error_line code msg);
        ignore (Session.flush session);
        (try Unix.close fd with Unix.Unix_error _ -> ())
      in
      if t.draining then
        (* still answer connects during drain: a refusal beats letting
           the client hang until its own timeout *)
        refuse P.Shutting_down "server is shutting down"
      else if List.length t.sessions >= t.config.max_sessions then
        refuse P.Internal "session limit reached"
      else begin
        t.sessions <- t.sessions @ [ session ];
        if T.enabled () then T.incr (T.counter "server.accepts")
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
  done

(* Read whatever is ready on [session]; [false] when it must be
   dropped (EOF with an empty queue, dead peer, or an over-long
   line).  One read may carry many pipelined request lines —
   {!Session.feed} queues them all. *)
let read_session t session =
  match Unix.read session.Session.fd t.readbuf 0 (Bytes.length t.readbuf) with
  | 0 ->
    (* EOF: answer what was already queued, then close *)
    session.Session.closing <- true;
    true
  | n -> (
    match Session.feed session ~max_line:t.config.max_line t.readbuf n with
    | `Ok -> true
    | `Line_too_long ->
      Session.send session
        (P.error_line P.Bad_request
           (Printf.sprintf "request line exceeds %d bytes" t.config.max_line));
      ignore (Session.flush session);
      false)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

let reap_timeouts t =
  let now = Unix.gettimeofday () in
  let expired session =
    let idle = t.config.idle_timeout in
    let partial = t.config.partial_timeout in
    (idle > 0. && now -. session.Session.last_activity > idle)
    || partial > 0.
       && (match session.Session.partial_since with
          | Some since -> now -. since > partial
          | None -> false)
  in
  List.iter
    (fun session ->
      if expired session then begin
        if T.enabled () then T.incr (T.counter "server.timeouts");
        drop_session t session
      end)
    t.sessions

let close_all t =
  List.iter (fun s -> try Unix.close s.Session.fd with Unix.Unix_error _ -> ()) t.sessions;
  t.sessions <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ()) t.unix_path;
  (* closes every shard's WAL and joins worker domains so the process
     can exit; harmless under the [kill] crash simulation — domains
     are not on-disk state *)
  Tier.close t.tier

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    snapshot t;
    close_all t
  end

let kill t = t.kill_requested <- true

let poll ?(timeout = 0.25) t =
  if t.kill_requested && not t.stopped then begin
    (* crash simulation: drop every fd — staged, un-flushed replies
       and all — without a final snapshot, so recovery exercises the
       per-shard snapshot + WAL path *)
    t.stopped <- true;
    close_all t
  end;
  if t.stopped then false
  else begin
    let watched = List.map (fun s -> s.Session.fd) t.sessions in
    let read_fds = t.listen_fd :: watched in
    let write_fds =
      List.filter_map
        (fun s -> if Session.has_output s then Some s.Session.fd else None)
        t.sessions
    in
    let ready_r, _, _ =
      try Unix.select read_fds write_fds [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd ready_r then accept_pending t;
    List.iter
      (fun session ->
        if List.memq session.Session.fd ready_r then
          if not (read_session t session) then drop_session t session)
      t.sessions;
    if T.enabled () then
      T.gauge_set (T.gauge "server.queue_depth")
        (List.fold_left (fun acc s -> acc + Session.queued s) 0 t.sessions);
    process t;
    List.iter
      (fun session ->
        if not (Session.flush session) then drop_session t session
        else if session.Session.closing && not (Session.has_output session) then
          drop_session t session)
      t.sessions;
    reap_timeouts t;
    if t.config.snapshot_every > 0 && not t.draining then
      Tier.auto_snapshot t.tier ~every:t.config.snapshot_every;
    if t.draining then stop t;
    not t.stopped
  end

let run t =
  let drain _ = t.draining <- true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  while poll t do
    ()
  done
