(** The constraint-service daemon: a single-threaded [select] loop
    multiplexing client sessions over one {!Core.Monitor}, coalescing
    update bursts into one dirty-set pass per validation, journaling
    mutations to the WAL before responding, and snapshotting through
    {!State}.  See server.mli for the design summary.

    The durable core — apply a mutation, journal it, rotate snapshots
    — lives in {!Mutator} / {!snapshot_rotate} so the fault-injection
    simulator drives the exact code paths the daemon runs, without the
    sockets. *)

module R = Fcv_relation
module T = Fcv_util.Telemetry
module P = Protocol

(* -- the durable mutation engine ------------------------------------------- *)

module Mutator = struct
  type t = {
    monitor : Core.Monitor.t;
    mutable unregistered : string list;
        (** tombstones: sources explicitly unregistered, persisted in
            snapshots so startup files don't resurrect them *)
    mutable log : P.request -> unit;
        (** journal an {e acknowledged} mutation (the WAL append +
            fsync); set by whoever owns the WAL handle *)
  }

  let create ?(unregistered = []) ?(log = fun _ -> ()) monitor = { monitor; unregistered; log }
  let monitor t = t.monitor
  let unregistered t = t.unregistered
  let set_log t log = t.log <- log

  (* Apply + journal one registration.  Re-registering digs up a
     tombstone.  Raises the {!Core.Monitor.add} errors on a bad
     constraint (callers that want a response code use [apply]). *)
  let register ?id t source =
    let reg = Core.Monitor.add ?id t.monitor source in
    t.unregistered <- List.filter (( <> ) source) t.unregistered;
    t.log (P.Register { source; id = Some reg.Core.Monitor.id });
    reg

  (* Answer one mutating request: apply first, journal only on
     success, so a failed mutation (the client gets an error) can
     never be replayed by recovery.  Non-mutating requests are [Ok []]
     — they carry no durable effect. *)
  let apply t req : ((string * T.json) list, P.error_code * string) result =
    let db = (Core.Monitor.index t.monitor).Core.Index.db in
    match req with
    | P.Register { source; id } -> (
      match register ?id t source with
      | reg -> Ok [ ("constraint", T.Int reg.Core.Monitor.id) ]
      | exception
          ( Core.Fol_parser.Error msg
          | Core.Typing.Type_error msg
          | Core.Compile.Unsupported msg
          | Invalid_argument msg ) ->
        Error (P.Constraint_error, msg))
    | P.Unregister c -> (
      match
        List.find_opt (fun r -> r.Core.Monitor.id = c) (Core.Monitor.constraints t.monitor)
      with
      | Some r ->
        Core.Monitor.remove t.monitor c;
        let source = r.Core.Monitor.source in
        if not (List.mem source t.unregistered) then t.unregistered <- source :: t.unregistered;
        t.log req;
        Ok []
      | None -> Error (P.Bad_request, Printf.sprintf "no constraint %d" c))
    | P.Insert (table, row) -> (
      match P.code_row ~intern:true db ~table row with
      | P.Coded coded ->
        Core.Monitor.insert t.monitor ~table_name:table coded;
        t.log req;
        Ok []
      | P.Unknown_value _ -> assert false (* intern never yields this *)
      | exception P.Malformed msg -> Error (P.Bad_request, msg)
      | exception Invalid_argument msg -> Error (P.Unknown_table, msg))
    | P.Delete (table, row) -> (
      match P.code_row ~intern:true db ~table row with
      | P.Coded coded ->
        let removed = Core.Monitor.delete t.monitor ~table_name:table coded in
        t.log req;
        Ok [ ("removed", T.Bool removed) ]
      | P.Unknown_value _ -> assert false
      | exception P.Malformed msg -> Error (P.Bad_request, msg)
      | exception Invalid_argument msg -> Error (P.Unknown_table, msg))
    | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping | P.Shutdown -> Ok []
end

(* Cut a snapshot generation and rotate to its fresh WAL.  The new
   generation's empty WAL is created (durably) before the CURRENT
   rename commits the snapshot, so snapshot and log switch as one: a
   crash on either side of the rename leaves a generation whose WAL
   holds exactly the records the snapshot does not cover. *)
let snapshot_rotate ~dir ~fsync_every mut wal =
  let gen =
    State.save ~dir
      ~unregistered:(Mutator.unregistered mut)
      ~prepare_wal:(fun ~gen -> Vfs.write_file (State.wal_path ~dir ~gen) "")
      (Mutator.monitor mut)
  in
  match wal with
  | None -> (gen, None)
  | Some wal ->
    Wal.close wal;
    (gen, Some (Wal.open_ ~fsync_every (State.wal_path ~dir ~gen)))

(* -- daemon ---------------------------------------------------------------- *)

type config = {
  addr : string;
  state_dir : string option;
  fsync_every : int;
  snapshot_every : int;
  idle_timeout : float;
  partial_timeout : float;
  max_line : int;
  max_sessions : int;
  jobs : int;
}

let default_config ~addr =
  {
    addr;
    state_dir = None;
    fsync_every = 1;
    snapshot_every = 10_000;
    idle_timeout = 60.;
    partial_timeout = 10.;
    max_line = 1 lsl 20;
    max_sessions = 64;
    jobs = 1;
  }

type recovered = {
  monitor : Core.Monitor.t;
  replayed : int;
  from_snapshot : bool;
  unregistered : string list;
}

type t = {
  config : config;
  mut : Mutator.t;
  listen_fd : Unix.file_descr;
  unix_path : string option;  (** to unlink on close *)
  mutable wal : Wal.t option;  (** rotates with the snapshot generation *)
  mutable wal_since_snapshot : int;
  mutable sessions : Session.t list;  (** arrival order *)
  mutable next_session : int;
  mutable requests : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable kill_requested : bool;
  started : float;
  readbuf : Bytes.t;
}

let monitor t = Mutator.monitor t.mut
let draining t = t.draining
let request_drain t = t.draining <- true

let create ?(unregistered = []) config monitor =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the select loop stays single-threaded; only the coalesced
     validate pass inside it fans out (Monitor worker pool) *)
  Core.Monitor.set_jobs monitor config.jobs;
  let sockaddr = P.sockaddr_of_string config.addr in
  let domain, unix_path =
    match sockaddr with
    | Unix.ADDR_UNIX path ->
      if Sys.file_exists path then Unix.unlink path;
      (Unix.PF_UNIX, Some path)
    | Unix.ADDR_INET _ -> (Unix.PF_INET, None)
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  if unix_path = None then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let wal =
    Option.map
      (fun dir ->
        if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
        Wal.open_ ~fsync_every:config.fsync_every
          (State.wal_path ~dir ~gen:(State.current_gen ~dir)))
      config.state_dir
  in
  let t =
    {
      config;
      mut = Mutator.create ~unregistered monitor;
      listen_fd;
      unix_path;
      wal;
      wal_since_snapshot = 0;
      sessions = [];
      next_session = 0;
      requests = 0;
      draining = false;
      stopped = false;
      kill_requested = false;
      started = Unix.gettimeofday ();
      readbuf = Bytes.create 65536;
    }
  in
  Mutator.set_log t.mut (fun req ->
      match t.wal with
      | None -> ()
      | Some wal ->
        Wal.append wal req;
        t.wal_since_snapshot <- t.wal_since_snapshot + 1);
  t

(* -- replay semantics (shared with recovery and the crash tests) ----------- *)

let apply_logged monitor req =
  let db = (Core.Monitor.index monitor).Core.Index.db in
  match req with
  | P.Register { source; id } -> ignore (Core.Monitor.add ?id monitor source)
  | P.Unregister c -> Core.Monitor.remove monitor c
  | P.Insert (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded -> Core.Monitor.insert monitor ~table_name:table coded
    | P.Unknown_value _ -> assert false (* intern never yields this *))
  | P.Delete (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded -> ignore (Core.Monitor.delete monitor ~table_name:table coded)
    | P.Unknown_value _ -> assert false)
  | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping | P.Shutdown -> ()

let recover ?(max_nodes = 0) ~state_dir ~load_base () =
  let monitor, unregistered, from_snapshot =
    match State.load ~dir:state_dir ~max_nodes with
    | Some (m, unreg) -> (m, unreg, true)
    | None ->
      let db = load_base () in
      (Core.Monitor.create (Core.Index.create ~max_nodes db), [], false)
  in
  (* track tombstones through the replay: an unregister buries its
     source, a (re-)register digs it up *)
  let unreg = ref unregistered in
  let note req =
    match req with
    | P.Register { source; _ } -> unreg := List.filter (( <> ) source) !unreg
    | P.Unregister c ->
      Option.iter
        (fun r ->
          let source = r.Core.Monitor.source in
          if not (List.mem source !unreg) then unreg := source :: !unreg)
        (List.find_opt
           (fun r -> r.Core.Monitor.id = c)
           (Core.Monitor.constraints monitor))
    | _ -> ()
  in
  let replayed =
    Wal.replay
      (State.wal_path ~dir:state_dir ~gen:(State.current_gen ~dir:state_dir))
      ~f:(fun req ->
        note req;
        apply_logged monitor req)
  in
  ({ monitor; replayed; from_snapshot; unregistered = !unreg } : recovered)

(* -- durability ------------------------------------------------------------ *)

let snapshot t =
  match t.config.state_dir with
  | None -> ()
  | Some dir ->
    T.with_span "server.snapshot" @@ fun () ->
    let _gen, wal = snapshot_rotate ~dir ~fsync_every:t.config.fsync_every t.mut t.wal in
    t.wal <- wal;
    t.wal_since_snapshot <- 0

(* -- request handling ------------------------------------------------------ *)

let json_of_report rep =
  T.Obj
    [
      ("constraint", T.Int rep.Core.Monitor.constraint_.Core.Monitor.id);
      ("source", T.String rep.Core.Monitor.constraint_.Core.Monitor.source);
      ( "outcome",
        T.String
          (match rep.Core.Monitor.outcome with
          | Core.Checker.Satisfied -> "satisfied"
          | Core.Checker.Violated -> "violated") );
      ("fresh", T.Bool rep.Core.Monitor.fresh);
      ("ms", T.Float rep.Core.Monitor.elapsed_ms);
    ]

let stats_json t =
  let index = Core.Monitor.index (monitor t) in
  let db = index.Core.Index.db in
  let tables =
    List.map
      (fun n -> (n, T.Int (R.Table.cardinality (R.Database.table db n))))
      (R.Database.table_names db)
  in
  [
    ("uptime_ms", T.Float ((Unix.gettimeofday () -. t.started) *. 1000.));
    ("sessions", T.Int (List.length t.sessions));
    ("requests", T.Int t.requests);
    ("jobs", T.Int (Core.Monitor.jobs (monitor t)));
    ("constraints", T.Int (List.length (Core.Monitor.constraints (monitor t))));
    ("indices", T.Int (List.length (Core.Index.entries index)));
    ("bdd_nodes", T.Int (Fcv_bdd.Manager.size (Core.Index.mgr index)));
    ( "memory",
      let ls = Core.Index.lifecycle_stats index in
      T.Obj
        [
          ("live_nodes", T.Int ls.Core.Index.live);
          ("peak_nodes", T.Int ls.Core.Index.peak);
          ("dead_ratio", T.Float ls.Core.Index.dead);
          ("levels_used", T.Int ls.Core.Index.levels_used);
          ("levels_live", T.Int ls.Core.Index.levels_alive);
          ("op_cache_entries", T.Int ls.Core.Index.cache_entries);
          ("gc_runs", T.Int ls.Core.Index.gc_runs);
          ("gc_reclaimed", T.Int ls.Core.Index.gc_reclaimed);
          ("level_recycles", T.Int ls.Core.Index.level_recycles);
          ("deferred_rebuilds", T.Int ls.Core.Index.deferred_rebuilds);
        ] );
    ("tables", T.Obj tables);
    ( "wal",
      T.Obj
        [
          ("appended", T.Int (match t.wal with Some w -> Wal.appended w | None -> 0));
          ("since_snapshot", T.Int t.wal_since_snapshot);
        ] );
  ]

let register ?id t source = Mutator.register ?id t.mut source

(* Answer one non-validate request.  Mutations go through
   {!Mutator.apply} (apply first, journal only on success).  Any
   escaping exception becomes an [internal] error response — a bad
   request must not kill the loop. *)
let handle t session rid req =
  let t0 = Fcv_util.Timer.now () in
  let reply line = Session.send session line in
  (try
     match req with
     | P.Ping -> reply (P.ok_line ?id:rid [ ("pong", T.Bool true) ])
     | P.Register _ | P.Unregister _ | P.Insert _ | P.Delete _ -> (
       match Mutator.apply t.mut req with
       | Ok fields -> reply (P.ok_line ?id:rid fields)
       | Error (code, msg) -> reply (P.error_line ?id:rid code msg))
     | P.Stats -> reply (P.ok_line ?id:rid (stats_json t))
     | P.Compact ->
       (* the select loop is single-threaded and validates are
          coalesced elsewhere, so no check is in flight here *)
       let reclaimed = Core.Monitor.gc (monitor t) in
       let index = Core.Monitor.index (monitor t) in
       reply
         (P.ok_line ?id:rid
            [
              ("reclaimed", T.Int reclaimed);
              ("nodes", T.Int (Fcv_bdd.Manager.size (Core.Index.mgr index)));
              ("gc_runs", T.Int index.Core.Index.gc_runs);
            ])
     | P.Snapshot ->
       snapshot t;
       reply (P.ok_line ?id:rid [ ("snapshot", T.Bool (t.config.state_dir <> None)) ])
     | P.Shutdown ->
       reply (P.ok_line ?id:rid [ ("draining", T.Bool true) ]);
       t.draining <- true
     | P.Validate -> assert false (* coalesced by [process] *)
   with e ->
     reply (P.error_line ?id:rid P.Internal (Printexc.to_string e)));
  session.Session.requests <- session.Session.requests + 1;
  t.requests <- t.requests + 1;
  if T.enabled () then
    T.observe
      (T.histogram ("server.op." ^ P.request_name req))
      ((Fcv_util.Timer.now () -. t0) *. 1000.)

(* Drain every session's request queue.  Each outer round applies all
   sessions' update bursts first, then — if anyone asked — runs ONE
   Monitor.validate (one dirty-set pass) whose reports answer every
   waiting session.  A session's requests keep their order: its lines
   after a [validate] wait for the next round. *)
let process t =
  let progress = ref true in
  while !progress do
    progress := false;
    let validators = ref [] in
    List.iter
      (fun session ->
        let continue = ref true in
        while !continue do
          match Session.next_line session with
          | None -> continue := false
          | Some line ->
            progress := true;
            if String.trim line = "" then ()
            else (
              match P.parse_request line with
              | Error (code, msg) ->
                Session.send session (P.error_line code msg);
                session.Session.requests <- session.Session.requests + 1;
                t.requests <- t.requests + 1
              | Ok (rid, P.Validate) ->
                validators := (session, rid) :: !validators;
                continue := false
              | Ok (rid, req) -> handle t session rid req)
        done)
      t.sessions;
    if !validators <> [] then begin
      let t0 = Fcv_util.Timer.now () in
      let result =
        match Core.Monitor.validate (monitor t) with
        | reports ->
          let violated =
            List.length
              (List.filter (fun r -> r.Core.Monitor.outcome = Core.Checker.Violated) reports)
          in
          Ok
            [
              ("violated", T.Int violated);
              ("reports", T.List (List.map json_of_report reports));
            ]
        | exception e -> Error (Printexc.to_string e)
      in
      let ms = (Fcv_util.Timer.now () -. t0) *. 1000. in
      List.iter
        (fun (session, rid) ->
          (match result with
          | Ok fields -> Session.send session (P.ok_line ?id:rid fields)
          | Error msg -> Session.send session (P.error_line ?id:rid P.Internal msg));
          session.Session.requests <- session.Session.requests + 1;
          t.requests <- t.requests + 1;
          if T.enabled () then T.observe (T.histogram "server.op.validate") ms)
        (List.rev !validators)
    end
  done

(* -- the event loop -------------------------------------------------------- *)

let drop_session t session =
  (try Unix.close session.Session.fd with Unix.Unix_error _ -> ());
  t.sessions <- List.filter (fun s -> s != session) t.sessions

let accept_pending t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, peer ->
      let peer =
        match peer with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
      in
      let session = Session.create ~id:t.next_session ~fd ~peer in
      t.next_session <- t.next_session + 1;
      let refuse code msg =
        Session.send session (P.error_line code msg);
        ignore (Session.flush session);
        (try Unix.close fd with Unix.Unix_error _ -> ())
      in
      if t.draining then
        (* still answer connects during drain: a refusal beats letting
           the client hang until its own timeout *)
        refuse P.Shutting_down "server is shutting down"
      else if List.length t.sessions >= t.config.max_sessions then
        refuse P.Internal "session limit reached"
      else begin
        t.sessions <- t.sessions @ [ session ];
        if T.enabled () then T.incr (T.counter "server.accepts")
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      continue := false
  done

(* Read whatever is ready on [session]; [false] when it must be
   dropped (EOF with an empty queue, dead peer, or an over-long
   line). *)
let read_session t session =
  match Unix.read session.Session.fd t.readbuf 0 (Bytes.length t.readbuf) with
  | 0 ->
    (* EOF: answer what was already queued, then close *)
    session.Session.closing <- true;
    true
  | n -> (
    match Session.feed session ~max_line:t.config.max_line t.readbuf n with
    | `Ok -> true
    | `Line_too_long ->
      Session.send session
        (P.error_line P.Bad_request
           (Printf.sprintf "request line exceeds %d bytes" t.config.max_line));
      ignore (Session.flush session);
      false)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

let reap_timeouts t =
  let now = Unix.gettimeofday () in
  let expired session =
    let idle = t.config.idle_timeout in
    let partial = t.config.partial_timeout in
    (idle > 0. && now -. session.Session.last_activity > idle)
    || partial > 0.
       && (match session.Session.partial_since with
          | Some since -> now -. since > partial
          | None -> false)
  in
  List.iter
    (fun session ->
      if expired session then begin
        if T.enabled () then T.incr (T.counter "server.timeouts");
        drop_session t session
      end)
    t.sessions

let close_all t =
  List.iter (fun s -> try Unix.close s.Session.fd with Unix.Unix_error _ -> ()) t.sessions;
  t.sessions <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Option.iter (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ()) t.unix_path;
  Option.iter Wal.close t.wal;
  (* join worker domains so the process can exit; harmless under the
     [kill] crash simulation — domains are not on-disk state *)
  Core.Monitor.stop (monitor t)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    snapshot t;
    close_all t
  end

let kill t = t.kill_requested <- true

let poll ?(timeout = 0.25) t =
  if t.kill_requested && not t.stopped then begin
    (* crash simulation: drop every fd without a final snapshot, so
       recovery exercises the snapshot + WAL path *)
    t.stopped <- true;
    close_all t
  end;
  if t.stopped then false
  else begin
    let watched = List.map (fun s -> s.Session.fd) t.sessions in
    let read_fds = t.listen_fd :: watched in
    let write_fds =
      List.filter_map
        (fun s -> if Session.has_output s then Some s.Session.fd else None)
        t.sessions
    in
    let ready_r, _, _ =
      try Unix.select read_fds write_fds [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq t.listen_fd ready_r then accept_pending t;
    List.iter
      (fun session ->
        if List.memq session.Session.fd ready_r then
          if not (read_session t session) then drop_session t session)
      t.sessions;
    if T.enabled () then
      T.gauge_set (T.gauge "server.queue_depth")
        (List.fold_left (fun acc s -> acc + Session.queued s) 0 t.sessions);
    process t;
    List.iter
      (fun session ->
        if not (Session.flush session) then drop_session t session
        else if session.Session.closing && not (Session.has_output session) then
          drop_session t session)
      t.sessions;
    reap_timeouts t;
    if
      t.config.snapshot_every > 0
      && t.wal_since_snapshot >= t.config.snapshot_every
      && not t.draining
    then snapshot t;
    if t.draining then stop t;
    not t.stopped
  end

let run t =
  let drain _ = t.draining <- true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  while poll t do
    ()
  done
