(** Write-ahead log: one {!Protocol} request line per record, appended
    before the mutation is applied, fsync'd per policy.  Replay
    tolerates a torn tail (crash mid-append). *)

module T = Fcv_util.Telemetry

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  buf : Buffer.t;  (** scratch for one record *)
  fsync_every : int;
  mutable appended : int;
  mutable unsynced : int;
}

let open_ ?(fsync_every = 1) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; buf = Buffer.create 256; fsync_every; appended = 0; unsynced = 0 }

(* Write the whole string, handling short writes. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let sync t =
  Unix.fsync t.fd;
  t.unsynced <- 0;
  if T.enabled () then T.incr (T.counter "server.wal.fsyncs")

let append t req =
  Buffer.clear t.buf;
  Buffer.add_string t.buf (Protocol.request_to_line req);
  Buffer.add_char t.buf '\n';
  write_all t.fd (Buffer.contents t.buf);
  t.appended <- t.appended + 1;
  t.unsynced <- t.unsynced + 1;
  if T.enabled () then T.incr (T.counter "server.wal.appends");
  if t.fsync_every > 0 && t.unsynced >= t.fsync_every then sync t

let appended t = t.appended

let close t = Unix.close t.fd

let replay path ~f =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let replayed = ref 0 in
        (try
           let stop = ref false in
           while not !stop do
             let line = input_line ic in
             if String.trim line <> "" then begin
               match Protocol.parse_request line with
               | Ok (_, req) ->
                 f req;
                 incr replayed
               | Error _ ->
                 (* torn tail from a crash mid-append: everything after
                    the first bad line is unusable *)
                 stop := true
             end
           done
         with End_of_file -> ());
        !replayed)
  end

let reset t =
  (* O_APPEND writes position atomically at the current end, so
     truncating the shared descriptor restarts the log in place *)
  Unix.ftruncate t.fd 0;
  t.unsynced <- 0;
  if T.enabled () then T.incr (T.counter "server.wal.resets")
