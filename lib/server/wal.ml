(** Write-ahead log: one {!Protocol} request line per record, appended
    once the mutation has been applied, fsync'd per policy before the
    response is sent.  Replay tolerates a torn tail (crash mid-append)
    and truncates it so the log stays appendable. *)

module T = Fcv_util.Telemetry

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  buf : Buffer.t;  (** scratch for one record *)
  fsync_every : int;
  mutable appended : int;
  mutable unsynced : int;
}

let open_ ?(fsync_every = 1) path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; buf = Buffer.create 256; fsync_every; appended = 0; unsynced = 0 }

(* Write the whole string, handling short writes. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let sync t =
  Unix.fsync t.fd;
  t.unsynced <- 0;
  if T.enabled () then T.incr (T.counter "server.wal.fsyncs")

let append t req =
  Buffer.clear t.buf;
  Buffer.add_string t.buf (Protocol.request_to_line req);
  Buffer.add_char t.buf '\n';
  write_all t.fd (Buffer.contents t.buf);
  t.appended <- t.appended + 1;
  t.unsynced <- t.unsynced + 1;
  if T.enabled () then T.incr (T.counter "server.wal.appends");
  if t.fsync_every > 0 && t.unsynced >= t.fsync_every then sync t

let appended t = t.appended

let close t = Unix.close t.fd

let replay path ~f =
  if not (Sys.file_exists path) then 0
  else begin
    let replayed, good_end =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let replayed = ref 0 in
          let good_end = ref 0 in
          (try
             let stop = ref false in
             let start = ref 0 in
             while not !stop do
               let line = input_line ic in
               let fin = pos_in ic in
               (* a record only counts once its '\n' is on disk: a
                  complete-looking final line without one was never
                  fully written, hence never acknowledged *)
               let terminated = fin - !start > String.length line in
               start := fin;
               if not terminated then stop := true
               else if String.trim line = "" then good_end := fin
               else (
                 match Protocol.parse_request line with
                 | Ok (_, req) ->
                   f req;
                   incr replayed;
                   good_end := fin
                 | Error _ ->
                   (* torn tail from a crash mid-append: everything
                      after the first bad line is unusable *)
                   stop := true)
             done
           with End_of_file -> ());
          (!replayed, !good_end))
    in
    (* Cut the torn tail off, so appends through a subsequently opened
       handle (O_APPEND) extend the valid prefix instead of landing
       after — or concatenated onto — an unparseable partial record,
       which would make them invisible to the next recovery. *)
    if good_end < (Unix.stat path).Unix.st_size then begin
      Unix.truncate path good_end;
      if T.enabled () then T.incr (T.counter "server.wal.truncated_tails")
    end;
    replayed
  end
