(** Write-ahead log: one {!Protocol} request line per record, appended
    once the mutation has been applied, fsync'd per policy before the
    response is sent.  Replay tolerates a torn tail (crash mid-append)
    and truncates it so the log stays appendable.

    Every file effect goes through {!Vfs}, so the fault-injection
    simulator can crash, short-write or drop any append or fsync. *)

module T = Fcv_util.Telemetry

type t = {
  path : string;
  handle : Vfs.handle;
  buf : Buffer.t;  (** scratch for one record *)
  fsync_every : int;
  mutable appended : int;
  mutable unsynced : int;
}

let open_ ?(fsync_every = 1) path =
  {
    path;
    handle = Vfs.open_append path;
    buf = Buffer.create 256;
    fsync_every;
    appended = 0;
    unsynced = 0;
  }

let sync t =
  Vfs.fsync t.handle;
  t.unsynced <- 0;
  if T.enabled () then T.incr (T.counter "server.wal.fsyncs")

let append t req =
  Buffer.clear t.buf;
  Buffer.add_string t.buf (Protocol.request_to_line req);
  Buffer.add_char t.buf '\n';
  Vfs.append t.handle (Buffer.contents t.buf);
  t.appended <- t.appended + 1;
  t.unsynced <- t.unsynced + 1;
  if T.enabled () then T.incr (T.counter "server.wal.appends");
  if t.fsync_every > 0 && t.unsynced >= t.fsync_every then sync t

let appended t = t.appended
let unsynced t = t.unsynced

let close t = Vfs.close t.handle

let replay path ~f =
  if not (Vfs.file_exists path) then 0
  else begin
    let log = Vfs.read_file path in
    let size = String.length log in
    let replayed = ref 0 in
    let good_end = ref 0 in
    let stop = ref false in
    let pos = ref 0 in
    while (not !stop) && !pos < size do
      match String.index_from_opt log !pos '\n' with
      | None ->
        (* a record only counts once its '\n' is on disk: a
           complete-looking final line without one was never fully
           written, hence never acknowledged *)
        stop := true
      | Some nl ->
        let line = String.sub log !pos (nl - !pos) in
        pos := nl + 1;
        if String.trim line = "" then good_end := !pos
        else (
          match Protocol.parse_request line with
          | Ok (_, req) ->
            f req;
            incr replayed;
            good_end := !pos
          | Error _ ->
            (* torn tail from a crash mid-append: everything after the
               first bad line is unusable *)
            stop := true)
    done;
    (* Cut the torn tail off, so appends through a subsequently opened
       handle (append mode) extend the valid prefix instead of landing
       after — or concatenated onto — an unparseable partial record,
       which would make them invisible to the next recovery. *)
    if !good_end < size then begin
      Vfs.truncate path !good_end;
      if T.enabled () then T.incr (T.counter "server.wal.truncated_tails")
    end;
    !replayed
  end
