(** The durable mutation engine: apply a mutating request to a
    monitor, journal it (through a caller-supplied [log] callback)
    {e only on success}, so a mutation the client saw fail can never
    be replayed by recovery.  Factored out of {!Server} so the
    per-shard durable unit ({!Shard}) and the fault-injection
    simulator drive the exact code paths the daemon runs, without the
    sockets. *)

module T = Fcv_util.Telemetry
module P = Protocol

type t = {
  monitor : Core.Monitor.t;
  mutable unregistered : string list;
      (** tombstones: sources explicitly unregistered, persisted in
          snapshots so startup files don't resurrect them *)
  mutable log : P.request -> unit;
      (** journal an {e acknowledged} mutation (the WAL append); set
          by whoever owns the WAL handle *)
}

let create ?(unregistered = []) ?(log = fun _ -> ()) monitor = { monitor; unregistered; log }
let monitor t = t.monitor
let unregistered t = t.unregistered
let set_log t log = t.log <- log

(* Apply + journal one registration.  Re-registering digs up a
   tombstone.  Raises the {!Core.Monitor.add} errors on a bad
   constraint (callers that want a response code use [apply]). *)
let register ?id t source =
  let reg = Core.Monitor.add ?id t.monitor source in
  t.unregistered <- List.filter (( <> ) source) t.unregistered;
  t.log (P.Register { source; id = Some reg.Core.Monitor.id });
  reg

(* Answer one mutating request: apply first, journal only on
   success, so a failed mutation (the client gets an error) can
   never be replayed by recovery.  Non-mutating requests are [Ok []]
   — they carry no durable effect. *)
let apply t req : ((string * T.json) list, P.error_code * string) result =
  let db = (Core.Monitor.index t.monitor).Core.Index.db in
  match req with
  | P.Register { source; id } -> (
    match register ?id t source with
    | reg -> Ok [ ("constraint", T.Int reg.Core.Monitor.id) ]
    | exception
        ( Core.Fol_parser.Error msg
        | Core.Typing.Type_error msg
        | Core.Compile.Unsupported msg
        | Invalid_argument msg ) ->
      Error (P.Constraint_error, msg))
  | P.Unregister c -> (
    match
      List.find_opt (fun r -> r.Core.Monitor.id = c) (Core.Monitor.constraints t.monitor)
    with
    | Some r ->
      Core.Monitor.remove t.monitor c;
      let source = r.Core.Monitor.source in
      if not (List.mem source t.unregistered) then t.unregistered <- source :: t.unregistered;
      t.log req;
      Ok []
    | None -> Error (P.Bad_request, Printf.sprintf "no constraint %d" c))
  | P.Insert (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded ->
      Core.Monitor.insert t.monitor ~table_name:table coded;
      t.log req;
      Ok []
    | P.Unknown_value _ -> assert false (* intern never yields this *)
    | exception P.Malformed msg -> Error (P.Bad_request, msg)
    | exception Invalid_argument msg -> Error (P.Unknown_table, msg))
  | P.Delete (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded ->
      let removed = Core.Monitor.delete t.monitor ~table_name:table coded in
      t.log req;
      Ok [ ("removed", T.Bool removed) ]
    | P.Unknown_value _ -> assert false
    | exception P.Malformed msg -> Error (P.Bad_request, msg)
    | exception Invalid_argument msg -> Error (P.Unknown_table, msg))
  | P.Repair _ | P.Explain _ | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping
  | P.Shutdown ->
    Ok [] (* repair is planned at the tier; an applied plan reaches the
             shard as ordinary Delete requests *)

(* -- replay semantics (shared with recovery and the crash tests) ----------- *)

let apply_logged monitor req =
  let db = (Core.Monitor.index monitor).Core.Index.db in
  match req with
  | P.Register { source; id } -> ignore (Core.Monitor.add ?id monitor source)
  | P.Unregister c -> Core.Monitor.remove monitor c
  | P.Insert (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded -> Core.Monitor.insert monitor ~table_name:table coded
    | P.Unknown_value _ -> assert false (* intern never yields this *))
  | P.Delete (table, row) -> (
    match P.code_row ~intern:true db ~table row with
    | P.Coded coded -> ignore (Core.Monitor.delete monitor ~table_name:table coded)
    | P.Unknown_value _ -> assert false)
  | P.Repair _ | P.Explain _ | P.Validate | P.Stats | P.Compact | P.Snapshot | P.Ping
  | P.Shutdown ->
    ()
