(** The constraint service's file-system effect layer.  Every durable
    effect the server performs — WAL appends and fsyncs, snapshot
    writes, the [CURRENT] rename, torn-tail truncation, generation
    sweeps — goes through this one dispatch table, so a test harness
    can swap the real file system for an instrumented one (the
    fault-injection simulator in [lib/sim] installs an in-memory
    backend that can short-write, drop, reorder or crash at any effect
    point).  The default backend is the real file system. *)

type handle
(** An open append-only file (the WAL). *)

type backend = {
  b_file_exists : string -> bool;
  b_mkdir : string -> int -> unit;
  b_readdir : string -> string array;
  b_remove : string -> unit;
  b_rename : string -> string -> unit;
  b_read_file : string -> string;
      (** whole contents. @raise Sys_error when absent. *)
  b_write_file : string -> string -> unit;
      (** create/truncate, write everything, flush, fsync — the
          durable whole-file write used for snapshot files. *)
  b_truncate : string -> int -> unit;
  b_file_size : string -> int;
  b_open_append : string -> handle;  (** create if missing, append-only *)
  b_append : handle -> string -> unit;  (** write the whole string *)
  b_fsync : handle -> unit;
  b_close : handle -> unit;
}

val real : backend
(** The real file system (Unix). *)

val set_backend : backend -> unit
(** Install a backend; affects every subsequent effect process-wide.
    Tests must restore {!real} (or the previous backend) when done —
    see {!with_backend}. *)

val current_backend : unit -> backend

val with_backend : backend -> (unit -> 'a) -> 'a
(** Run with [backend] installed, restoring the previous one on exit
    (including exceptional exit). *)

val make_handle : append:(string -> unit) -> fsync:(unit -> unit) -> close:(unit -> unit) -> handle
(** Build a handle for a custom backend. *)

(** {1 Effect entry points} — each dispatches through the installed
    backend. *)

val file_exists : string -> bool
val mkdir : string -> int -> unit
val readdir : string -> string array
val remove : string -> unit
val rename : string -> string -> unit
val read_file : string -> string
val write_file : string -> string -> unit
val truncate : string -> int -> unit
val file_size : string -> int
val open_append : string -> handle
val append : handle -> string -> unit
val fsync : handle -> unit
val close : handle -> unit

(** {1 Line reading} — a tiny in-memory reader so snapshot loaders can
    parse {!read_file} contents with [input_line] semantics. *)

type reader

val reader_of_string : string -> reader

val read_line : reader -> string
(** Next line (without its ['\n']).  @raise End_of_file at the end. *)
