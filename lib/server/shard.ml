(** One shard of the serving tier: a {!Mutator} over its own
    {!Core.Monitor}, its own WAL generation sequence and snapshot
    lineage under its own directory.  The WAL is opened with
    [fsync_every:0] — durability is the tier's {e group commit}: the
    owner syncs dirty shards explicitly ({!sync}) before releasing
    acknowledgements, batching many mutations into one fsync per WAL.

    Accounting exposed for the fault-injection simulator:
    - [journaled] counts records handed to the journal, bumped
      {e before} the WAL append so an in-flight record (its append
      started but never returned) is included — the upper bound of the
      durable window;
    - [on_journal] fires after each successful append (after the
      mutation was applied), so an oracle run can digest the shard
      after every journaled record. *)

module P = Protocol

type t = {
  sid : int;
  dir : string option;
  mut : Mutator.t;
  mutable wal : Wal.t option;  (** rotates with the snapshot generation *)
  mutable since_snapshot : int;
  mutable journaled : int;  (** monotonic across rotations; includes in-flight *)
  mutable dirty : bool;  (** appends not yet covered by a sync or rotation *)
  mutable on_journal : P.request -> unit;
}

let sid t = t.sid
let dir t = t.dir
let mut t = t.mut
let monitor t = Mutator.monitor t.mut
let unregistered t = Mutator.unregistered t.mut
let since_snapshot t = t.since_snapshot
let journaled t = t.journaled
let is_dirty t = t.dirty
let set_on_journal t f = t.on_journal <- f
let wal_appended t = match t.wal with Some w -> Wal.appended w | None -> 0

let log t req =
  t.journaled <- t.journaled + 1;
  t.since_snapshot <- t.since_snapshot + 1;
  t.dirty <- true;
  (match t.wal with Some w -> Wal.append w req | None -> ());
  t.on_journal req

let create ?(unregistered = []) ~sid ?dir monitor =
  let wal =
    Option.map
      (fun dir ->
        if not (Vfs.file_exists dir) then Vfs.mkdir dir 0o755;
        Wal.open_ ~fsync_every:0 (State.wal_path ~dir ~gen:(State.current_gen ~dir)))
      dir
  in
  let t =
    {
      sid;
      dir;
      mut = Mutator.create ~unregistered monitor;
      wal;
      since_snapshot = 0;
      journaled = 0;
      dirty = false;
      on_journal = ignore;
    }
  in
  Mutator.set_log t.mut (log t);
  t

(* Raw journal access for the simulator's planted bugs (journaling a
   record the mutator never acknowledged). *)
let raw_append t req = match t.wal with Some w -> Wal.append w req | None -> ()

let sync t =
  if t.dirty then begin
    (match t.wal with Some w -> Wal.sync w | None -> ());
    t.dirty <- false
  end

(* Cut a snapshot generation and rotate to its fresh WAL.  The new
   generation's empty WAL is created (durably) before the CURRENT
   rename commits the snapshot, so snapshot and log switch as one: a
   crash on either side of the rename leaves a generation whose WAL
   holds exactly the records the snapshot does not cover.  A committed
   snapshot covers every applied mutation, so the shard comes out
   clean (nothing left to sync). *)
let snapshot t =
  match t.dir with
  | None -> ()
  | Some dir ->
    let gen =
      State.save ~dir
        ~unregistered:(Mutator.unregistered t.mut)
        ~prepare_wal:(fun ~gen -> Vfs.write_file (State.wal_path ~dir ~gen) "")
        (Mutator.monitor t.mut)
    in
    (match t.wal with
    | None -> ()
    | Some wal ->
      Wal.close wal;
      t.wal <- Some (Wal.open_ ~fsync_every:0 (State.wal_path ~dir ~gen)));
    t.since_snapshot <- 0;
    t.dirty <- false

let close t =
  Option.iter Wal.close t.wal;
  t.wal <- None;
  Core.Monitor.stop (monitor t)

(* -- recovery --------------------------------------------------------------- *)

type recovered = {
  monitor : Core.Monitor.t;
  replayed : int;
  from_snapshot : bool;
  unregistered : string list;
}

let recover ?(max_nodes = 0) ~state_dir ~load_base () =
  let monitor, unregistered, from_snapshot =
    match State.load ~dir:state_dir ~max_nodes with
    | Some (m, unreg) -> (m, unreg, true)
    | None ->
      let db = load_base () in
      (Core.Monitor.create (Core.Index.create ~max_nodes db), [], false)
  in
  (* track tombstones through the replay: an unregister buries its
     source, a (re-)register digs it up *)
  let unreg = ref unregistered in
  let note req =
    match req with
    | P.Register { source; _ } -> unreg := List.filter (( <> ) source) !unreg
    | P.Unregister c ->
      Option.iter
        (fun r ->
          let source = r.Core.Monitor.source in
          if not (List.mem source !unreg) then unreg := source :: !unreg)
        (List.find_opt
           (fun r -> r.Core.Monitor.id = c)
           (Core.Monitor.constraints monitor))
    | _ -> ()
  in
  let replayed =
    Wal.replay
      (State.wal_path ~dir:state_dir ~gen:(State.current_gen ~dir:state_dir))
      ~f:(fun req ->
        note req;
        Mutator.apply_logged monitor req)
  in
  ({ monitor; replayed; from_snapshot; unregistered = !unreg } : recovered)
