(** Write-ahead log for the constraint service: every durable-state
    mutation ([register] / [unregister] / [insert] / [delete]) is
    appended — as its {!Protocol} request line — before it is applied,
    so a killed daemon replays the log over the last snapshot and
    recovers the same verdicts.

    Crash tolerance: a crash mid-append leaves a trailing partial
    line; {!replay} stops at the first malformed record and reports
    how many clean records preceded it. *)

type t

val open_ : ?fsync_every:int -> string -> t
(** Open (creating if missing) for appending.  [fsync_every] is the
    durability knob: fsync after every [n]-th append (default 1 =
    every append; 0 = never, OS-buffered only). *)

val append : t -> Protocol.request -> unit
(** Append one record (and fsync per policy). *)

val sync : t -> unit
(** Flush and fsync unconditionally. *)

val appended : t -> int
(** Records appended through this handle since {!open_}. *)

val close : t -> unit

val replay : string -> f:(Protocol.request -> unit) -> int
(** Apply [f] to each well-formed record in order; returns the number
    replayed.  A missing file replays 0 records; a malformed tail
    (crash damage) is ignored from the first bad line on. *)

val reset : t -> unit
(** Truncate the log in place — called right after a snapshot has been
    durably written, making the snapshot the new recovery base. *)
