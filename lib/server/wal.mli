(** Write-ahead log for the constraint service: every durable-state
    mutation ([register] / [unregister] / [insert] / [delete]) is
    appended — as its {!Protocol} request line — once it has been
    applied, and fsync'd before the response is sent, so a killed
    daemon replays the log over the last snapshot and recovers the
    same verdicts.

    The log is scoped to one snapshot generation ({!State.wal_path}):
    cutting a snapshot creates a fresh, empty log for the new
    generation before the generation is committed, so snapshot and log
    switch atomically and replay never re-applies records a snapshot
    already covers.

    Crash tolerance: a crash mid-append leaves a trailing partial
    line; {!replay} stops at the first malformed (or unterminated)
    record, reports how many clean records preceded it, and truncates
    the file to that valid prefix so later appends stay recoverable. *)

type t

val open_ : ?fsync_every:int -> string -> t
(** Open (creating if missing) for appending.  [fsync_every] is the
    durability knob: fsync after every [n]-th append (default 1 =
    every append; 0 = never, OS-buffered only). *)

val append : t -> Protocol.request -> unit
(** Append one record (and fsync per policy). *)

val sync : t -> unit
(** Flush and fsync unconditionally. *)

val appended : t -> int
(** Records appended through this handle since {!open_}. *)

val unsynced : t -> int
(** Records appended since the last fsync — what a crash could
    legitimately lose under a relaxed [fsync_every] policy (the
    fault-injection sim uses this to bound its durability oracle). *)

val close : t -> unit

val replay : string -> f:(Protocol.request -> unit) -> int
(** Apply [f] to each well-formed record in order; returns the number
    replayed.  A missing file replays 0 records; a malformed or
    newline-less tail (crash damage) is ignored from the first bad
    line on {e and truncated away}, so a handle opened afterwards
    appends right after the last replayed record. *)
