(** The shard router: maps each table to its owning shard by a stable
    hash of the table name, and each constraint to the shard owning
    its first watched table.

    Ownership must be {e stable across restarts and builds} — a
    table's rows live in its owner's WAL and snapshots — so the hash
    is our own (djb2-style) rather than [Hashtbl.hash], whose value is
    an implementation detail.

    Beyond ownership, the router tracks {e watcher} shards: a shard
    holding a constraint over a table it does not own must still see
    every mutation of that table (its monitor keeps a synced replica),
    so mutations fan out to the owner plus all watchers.  Watcher sets
    are derived state — recomputed from the constraint registries on
    every (un)registration and after recovery — never persisted. *)

let table_hash name =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land 0x3FFFFFFF) 5381 name

let owner ~shards table =
  if shards <= 1 then 0 else table_hash table mod shards

(* A constraint lives on the shard owning its first watched table; a
   closed constraint over no tables lands on shard 0. *)
let constraint_shard ~shards tables =
  match tables with [] -> 0 | t :: _ -> owner ~shards t

type t = {
  shards : int;
  watchers : (string, int list) Hashtbl.t;
      (** table -> non-owner shards watching it, sorted *)
}

let create shards = { shards; watchers = Hashtbl.create 16 }

let watches t ~shard table =
  match Hashtbl.find_opt t.watchers table with
  | Some l -> List.mem shard l
  | None -> false

(* Owner first, then watchers in shard order: deterministic fan-out so
   replayed and simulated runs journal in the same order. *)
let mutation_targets t table =
  let o = owner ~shards:t.shards table in
  o :: List.filter (( <> ) o) (Option.value ~default:[] (Hashtbl.find_opt t.watchers table))

(* Rebuild the watcher sets from the authoritative constraint
   registries: [watched] lists each shard's watched tables. *)
let recompute t ~watched =
  Hashtbl.reset t.watchers;
  List.iteri
    (fun shard tables ->
      List.iter
        (fun table ->
          if owner ~shards:t.shards table <> shard then begin
            let cur = Option.value ~default:[] (Hashtbl.find_opt t.watchers table) in
            if not (List.mem shard cur) then
              Hashtbl.replace t.watchers table (List.sort compare (shard :: cur))
          end)
        tables)
    watched
