(** The shard router: stable table -> owning-shard hashing, constraint
    placement (the shard owning a constraint's first watched table),
    and derived watcher sets — the non-owner shards whose constraints
    watch a table and must therefore receive its mutations. *)

val table_hash : string -> int
(** Stable (build-independent) hash of a table name. *)

val owner : shards:int -> string -> int
(** The shard owning [table]'s authoritative copy. *)

val constraint_shard : shards:int -> string list -> int
(** The shard a constraint over [tables] lives on (shard 0 for a
    closed constraint over no tables). *)

type t

val create : int -> t
(** A router over [n] shards with empty watcher sets. *)

val watches : t -> shard:int -> string -> bool
(** Is [shard] a registered (non-owner) watcher of [table]? *)

val mutation_targets : t -> string -> int list
(** Every shard that must apply a mutation of [table]: owner first,
    then watchers in shard order (deterministic journal order). *)

val recompute : t -> watched:string list list -> unit
(** Rebuild watcher sets from the constraint registries; [watched] is
    each shard's list of watched tables (index = shard id). *)
