(** The apply-then-journal engine: applies a mutating request to the
    monitor and journals it (through a caller-supplied [log] callback)
    {e only on success}, so a mutation the client saw fail can never
    be replayed by recovery.  Tracks unregister tombstones.  One
    mutator per shard; {!Shard} owns the WAL handle behind [log]. *)

type t

val create : ?unregistered:string list -> ?log:(Protocol.request -> unit) -> Core.Monitor.t -> t
(** [log] journals an acknowledged mutation (default: none); set it
    later with {!set_log} when the WAL outlives this value. *)

val monitor : t -> Core.Monitor.t

val unregistered : t -> string list
(** Current tombstones (for snapshotting). *)

val set_log : t -> (Protocol.request -> unit) -> unit

val register : ?id:int -> t -> string -> Core.Monitor.registered
(** Apply + journal one registration (with the pinned id), clearing
    the source's tombstone.
    @raise the {!Core.Monitor.add} errors on a bad constraint. *)

val apply : t -> Protocol.request -> ((string * Fcv_util.Telemetry.json) list, Protocol.error_code * string) result
(** Answer one mutating request with the response fields a client
    would see, or the error code + message.  Non-mutating requests
    return [Ok []] and journal nothing. *)

val apply_logged : Core.Monitor.t -> Protocol.request -> unit
(** Apply one WAL record (register / unregister / insert / delete) to
    a monitor — the replay semantics; non-mutating requests are
    ignored. *)
