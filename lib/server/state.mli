(** Durable state for the constraint service: a snapshot generation is
    the database (dictionaries verbatim + coded rows), the logical
    indices (one {!Core.Index_io} file) and the registered constraints
    with their ids.  Generations are switched atomically through a
    [CURRENT] pointer file, so a crash mid-snapshot leaves the previous
    generation (plus its WAL) intact.

    State-directory layout:
    {v
    CURRENT        "gen N" — the live generation (atomic rename)
    snap-N.db      database dump
    snap-N.idx     Index_io snapshot
    snap-N.cons    registered constraints (id, source)
    wal.log        update log since generation N (managed by Server)
    v} *)

exception Format_error of string

val save_db : Fcv_relation.Database.t -> out_channel -> unit

val load_db : in_channel -> Fcv_relation.Database.t
(** @raise Format_error on malformed input. *)

val wal_path : dir:string -> string

val save : dir:string -> Core.Monitor.t -> unit
(** Write the next snapshot generation and switch [CURRENT] to it;
    previous-generation files are deleted afterwards (best effort).
    Does {e not} touch the WAL — the server resets it once [save]
    returns. *)

val load : dir:string -> max_nodes:int -> Core.Monitor.t option
(** Restore the monitor from the live generation: database, indices
    (node budget re-imposed), constraints re-registered under their
    saved ids.  [None] when the directory holds no snapshot yet.
    @raise Format_error on a corrupt snapshot. *)
