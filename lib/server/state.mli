(** Durable state for the constraint service: a snapshot generation is
    the database (dictionaries verbatim + coded rows), the logical
    indices (one {!Core.Index_io} file), the registered constraints
    with their ids (plus unregister tombstones), and its own
    write-ahead log.  Generations are switched atomically through a
    [CURRENT] pointer file, so whichever generation a crash leaves
    current, its snapshot and its WAL agree: a crash mid-snapshot
    leaves the previous generation (with its full WAL) intact, a crash
    right after the switch leaves the new generation with its empty
    WAL — replay can never re-apply records a snapshot already covers.

    State-directory layout:
    {v
    CURRENT        "gen N" — the live generation (atomic rename)
    snap-N.db      database dump
    snap-N.idx     Index_io snapshot
    snap-N.cons    registered constraints (id, source) + tombstones
    wal-N.log      update log since generation N (managed by Server)
    v}

    All file effects go through {!Vfs}, so the fault-injection
    simulator can crash a save at any point of the commit sequence. *)

exception Format_error of string

val save_db : Fcv_relation.Database.t -> Buffer.t -> unit
(** Render the dump into [buf] (the caller commits it durably). *)

val load_db : string -> Fcv_relation.Database.t
(** Parse a dump from its full contents.
    @raise Format_error on malformed input. *)

val wal_path : dir:string -> gen:int -> string
(** The WAL covering updates since generation [gen] ([gen = 0] before
    any snapshot exists). *)

val current_path : string -> string
(** The [CURRENT] pointer file of a state directory (existence marks
    a directory that has cut at least one snapshot — {!Tier} uses it
    to recognise a legacy flat single-shard layout). *)

val current_gen : dir:string -> int
(** The live generation number; 0 when no snapshot has been cut yet
    (or the directory does not exist). *)

val save :
  ?unregistered:string list ->
  ?prepare_wal:(gen:int -> unit) ->
  dir:string ->
  Core.Monitor.t ->
  int
(** Write the next snapshot generation, switch [CURRENT] to it and
    return its number; every older generation's files — snapshots and
    WALs, including orphans from earlier interrupted saves — are swept
    afterwards (best effort).  [unregistered] are tombstone sources to
    persist.  [prepare_wal ~gen] is called after the new generation's
    files are durably written but {e before} the [CURRENT] rename —
    the server uses it to create the new generation's empty WAL so the
    log switches atomically with the snapshot. *)

val load : dir:string -> max_nodes:int -> (Core.Monitor.t * string list) option
(** Restore the live generation: database, indices (node budget
    re-imposed), constraints re-registered under their saved ids;
    also returns the persisted unregister tombstones.  [None] when the
    directory holds no snapshot yet.
    @raise Format_error on a corrupt snapshot. *)
