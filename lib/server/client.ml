(** Blocking line-oriented client: the [fcv client] subcommand, the
    daemon smoke test and the end-to-end tests all speak through
    this. *)

module T = Fcv_util.Telemetry
module P = Protocol

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect addr =
  let sockaddr = P.sockaddr_of_string addr in
  let domain =
    match sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd sockaddr;
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd; next_id = 0 }

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  output_string t.oc (P.request_to_line ~id:(T.Int id) req);
  output_char t.oc '\n';
  flush t.oc;
  let resp = P.parse_response (input_line t.ic) in
  (match resp.P.id with
  | Some (T.Int echoed) when echoed = id -> ()
  | _ -> raise (P.Malformed (Printf.sprintf "response id mismatch (request %d)" id)));
  resp

let ok_exn resp =
  if resp.P.ok then resp.P.body
  else begin
    let field name =
      match T.Json.member name resp.P.body with Some (T.String s) -> s | _ -> "?"
    in
    failwith (Printf.sprintf "server error [%s]: %s" (field "error") (field "message"))
  end

let stream_updates t ~on_validate ic =
  let updates = ref 0 in
  let validations = ref 0 in
  (try
     while true do
       match P.update_of_line (input_line ic) with
       | None -> ()
       | Some u ->
         let resp = request t (P.request_of_update u) in
         let body = ok_exn resp in
         (match u with
         | P.U_validate ->
           incr validations;
           on_validate body
         | P.U_insert _ | P.U_delete _ -> incr updates)
     done
   with End_of_file -> ());
  (!updates, !validations)
